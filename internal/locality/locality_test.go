package locality

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/hilbert"
)

// bruteReuse computes reuse distances by scanning backwards — the oracle
// for the Fenwick-tree analyzer.
func bruteReuse(trace []uint64) []int64 {
	out := make([]int64, len(trace))
	for i, a := range trace {
		out[i] = -1
		seen := map[uint64]bool{}
		for j := i - 1; j >= 0; j-- {
			if trace[j] == a {
				out[i] = int64(len(seen))
				break
			}
			seen[trace[j]] = true
		}
	}
	return out
}

func TestReuseAnalyzerMatchesBruteForce(t *testing.T) {
	trace := []uint64{1, 2, 3, 1, 2, 2, 4, 3, 1}
	want := bruteReuse(trace)
	ra := NewReuseAnalyzer(4) // deliberately small to exercise grow()
	for i, a := range trace {
		if got := ra.Access(a); got != want[i] {
			t.Fatalf("access %d (addr %d): distance %d, want %d", i, a, got, want[i])
		}
	}
	if ra.ColdAccesses() != 4 {
		t.Fatalf("cold accesses = %d, want 4", ra.ColdAccesses())
	}
}

// Property: the analyzer agrees with the brute-force oracle on random
// traces (small alphabet to force reuse).
func TestReuseAnalyzerProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		trace := make([]uint64, len(raw))
		for i, r := range raw {
			trace[i] = uint64(r % 16)
		}
		want := bruteReuse(trace)
		ra := NewReuseAnalyzer(2)
		for i, a := range trace {
			if ra.Access(a) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseSequentialIsZero(t *testing.T) {
	// Repeating the same address gives distance 0 after the first touch.
	ra := NewReuseAnalyzer(8)
	ra.Access(42)
	for i := 0; i < 10; i++ {
		if d := ra.Access(42); d != 0 {
			t.Fatalf("distance %d, want 0", d)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(1000)
	if h.Buckets[0] != 2 { // 0 and 1
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // 2 and 3
		t.Fatalf("bucket1 = %d", h.Buckets[1])
	}
	if h.Buckets[9] != 1 { // 512..1023
		t.Fatalf("bucket9 = %d", h.Buckets[9])
	}
	if h.MaxObserved() != 1000 || h.Total() != 5 {
		t.Fatal("histogram summary wrong")
	}
}

func TestCacheDirectoryBehaviour(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	// First touch misses, second hits.
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	// Same line (within 64 bytes) hits.
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	// Different line misses.
	if c.Access(64) {
		t.Fatal("new line hit")
	}
	if c.Misses() != 2 || c.Accesses() != 4 {
		t.Fatalf("counters: %d misses / %d accesses", c.Misses(), c.Accesses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way set: third distinct tag in one set evicts the LRU.
	c := NewCache(CacheConfig{SizeBytes: 2 * 64 * 4, LineBytes: 64, Assoc: 2}) // 4 sets
	setStride := uint64(4 * 64)                                                // same set every stride
	c.Access(0 * setStride)
	c.Access(1 * setStride)
	c.Access(0 * setStride) // 0 becomes MRU
	c.Access(2 * setStride) // evicts 1
	if !c.Access(0 * setStride) {
		t.Fatal("MRU line was evicted")
	}
	if c.Access(1 * setStride) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheWorkingSetThreshold(t *testing.T) {
	// A working set that fits must hit 100% after the cold warmup pass;
	// double the cache size must thrash under a cyclic scan.
	cfg := CacheConfig{SizeBytes: 1 << 14, LineBytes: 64, Assoc: 16}
	lines := cfg.SizeBytes / cfg.LineBytes
	fit := NewCache(cfg)
	for i := 0; i < lines/2; i++ {
		fit.Access(uint64(i * 64)) // warmup: all cold misses
	}
	warm := fit.Misses()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines/2; i++ {
			fit.Access(uint64(i * 64))
		}
	}
	if fit.Misses() != warm {
		t.Fatalf("fitting working set missed after warmup: %d → %d", warm, fit.Misses())
	}
	thrash := NewCache(cfg)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines*2; i++ {
			thrash.Access(uint64(i * 64))
		}
	}
	if r := thrash.MissRate(); r < 0.9 {
		t.Fatalf("cyclic over-capacity scan hit unexpectedly: miss %.0f%%", r*100)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(DefaultLLC())
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("reset failed")
	}
	if c.Access(0) {
		t.Fatal("content survived reset")
	}
}

func TestCacheBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 48, Assoc: 2})
}

func TestReplayNextFrontierCountsEdges(t *testing.T) {
	g := gen.TinySocial()
	var n int64
	ReplayNextFrontierCOO(g, 8, ConsumerFunc(func(uint64) { n++ }))
	if n != g.NumEdges() {
		t.Fatalf("replayed %d accesses, want %d", n, g.NumEdges())
	}
}

// The central claim of Figure 2: partitioning contracts reuse distances.
func TestPartitioningContractsReuseDistances(t *testing.T) {
	g := gen.TinySocial()
	curves := ReuseCurve(g, []int{1, 16, 64})
	h1, h16, h64 := curves[1], curves[16], curves[64]
	if h16.MaxObserved() >= h1.MaxObserved() {
		t.Fatalf("P=16 max distance %d not below P=1 %d",
			h16.MaxObserved(), h1.MaxObserved())
	}
	if h64.Mean() >= h1.Mean() {
		t.Fatalf("P=64 mean %v not below P=1 %v", h64.Mean(), h1.Mean())
	}
}

// §II.C: partitioning-by-source does not change the forward traversal's
// edge-visit order, so its next-array reuse distances are identical at
// every partition count (this is why the paper only partitions by
// destination).
func TestBySourcePartitioningDoesNotChangeOrder(t *testing.T) {
	g := gen.TinySocial()
	collect := func(p int) []uint64 {
		var trace []uint64
		ReplayNextFrontierBySource(g, p, ConsumerFunc(func(a uint64) { trace = append(trace, a) }))
		return trace
	}
	base := collect(1)
	for _, p := range []int{4, 16, 64} {
		got := collect(p)
		if len(got) != len(base) {
			t.Fatalf("P=%d: trace length %d vs %d", p, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("P=%d: access %d differs — by-source order should be invariant", p, i)
			}
		}
	}
	// Sanity contrast: by-destination DOES change the order for P>1.
	var a, b []uint64
	ReplayNextFrontierCOO(g, 1, ConsumerFunc(func(x uint64) { a = append(a, x) }))
	ReplayNextFrontierCOO(g, 16, ConsumerFunc(func(x uint64) { b = append(b, x) }))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("by-destination partitioning unexpectedly left the order unchanged")
	}
}

// The central claim of Figure 8: partitioning reduces the COO
// traversal's MPKI (the minimum over the sweep is well below the P=4
// value) while backward-CSC MPKI stays flat in P. At laptop scale the
// COO curve turns back up at very high P (the per-partition source scan
// re-fetches current lines once per partition), so the assertion is on
// the sweep minimum, not the last point.
func TestMPKITrends(t *testing.T) {
	g := gen.Preset("livejournal-sm")
	cfg := AdaptiveLLC(g.NumVertices())
	ps := []int{4, 24, 48, 96, 192}

	coo := MeasureMPKI(g, KindCOOForward, 1, ps, cfg)
	min := coo[0].MPKI
	for _, r := range coo {
		if r.MPKI < min {
			min = r.MPKI
		}
	}
	if !(min < coo[0].MPKI*0.75) {
		t.Fatalf("COO MPKI did not fall: P=4 %v, sweep min %v", coo[0].MPKI, min)
	}
	csc := MeasureMPKI(g, KindCSCBackward, 1, []int{4, 192}, cfg)
	ratio := csc[1].MPKI / csc[0].MPKI
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("CSC MPKI should be flat in P, got ratio %v", ratio)
	}
}

func TestReplayEdgeTraversalAccessCounts(t *testing.T) {
	g := gen.TinySocial()
	var n int64
	total := ReplayEdgeTraversal(g, 4, KindCOOForward, 1,
		hilbert.BySource, ConsumerFunc(func(uint64) { n++ }))
	if n != total {
		t.Fatalf("returned %d but emitted %d", total, n)
	}
	// 5 accesses per edge in the full-COO model.
	if total != 5*g.NumEdges() {
		t.Fatalf("accesses = %d, want %d", total, 5*g.NumEdges())
	}
}

func TestReplayActiveSubset(t *testing.T) {
	g := gen.TinySocial()
	var all, some int64
	ReplayEdgeTraversal(g, 4, KindCOOActive, 1, hilbert.BySource, ConsumerFunc(func(uint64) { all++ }))
	ReplayEdgeTraversal(g, 4, KindCOOActive, 4, hilbert.BySource, ConsumerFunc(func(uint64) { some++ }))
	if some >= all {
		t.Fatalf("active subset replay (%d) should emit fewer accesses than full (%d)", some, all)
	}
}

// §II.C's second claim: partitioning-by-destination leaves the *backward
// CSC* traversal's access order unchanged — partition ranges are
// contiguous ascending vertex ranges, so concatenating them reproduces
// the whole-graph scan exactly. This is why GG-v2 keeps one unpartitioned
// CSC and only partitions the computation ranges.
func TestByDestinationDoesNotChangeCSCOrder(t *testing.T) {
	g := gen.TinySocial()
	collect := func(p int) []uint64 {
		var tr []uint64
		ReplayEdgeTraversal(g, p, KindCSCBackward, 1, hilbert.BySource,
			ConsumerFunc(func(a uint64) { tr = append(tr, a) }))
		return tr
	}
	base := collect(1)
	for _, p := range []int{4, 48} {
		got := collect(p)
		if len(got) != len(base) {
			t.Fatalf("P=%d: trace length %d vs %d", p, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("P=%d: CSC access %d differs — order should be invariant", p, i)
			}
		}
	}
}
