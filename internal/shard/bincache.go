package shard

// The scatter/gather bin residency layer. A binCache is one store
// generation's retained update bins — host-shared, refcounted and
// byte-budgeted, mirroring SharedCache's invariants at every
// observation point, not just at quiescence:
//
//   - a bin pinned by an in-flight gather (pins > 0) is never evicted,
//   - with a budget set, resident bin bytes never exceed it, and
//   - an insert that cannot fit after evicting every cold unpinned bin
//     is refused, never blocked on: the sweep still gathers the bin
//     (transient, accounted under Rejected) and the budget stays a hard
//     bound rather than a high-water mark.
//
// Past the in-memory budget, cold bins spill to generation-suffixed
// files next to the store (bin-%04d-g%06d.spill): a bin is a pure
// re-encoding of its shard at one generation, so the file is written at
// most once per bin per generation and the next dense sweep replays it
// with one sequential read instead of re-fetching and re-scattering the
// base shard. Spill files are cache artifacts, not durable state — they
// carry a CRC and structural self-description, and any mismatch
// (truncation, corruption, a stale generation, a crashed writer) just
// deletes the file and re-scatters the shard, the path the aborted-
// sweep retention semantics already prove bit-identical.
//
// One binCache hangs off each hostCore, so every session of a Host
// shares one budget instead of multiplying the footprint per query;
// private engines own a private cache. All methods are safe for
// concurrent use.

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/graph"
)

// MinBinBudgetBytes is the smallest positive Options.BinBudgetBytes
// normalize accepts: one page. A budget below it could not hold even a
// minimal bin's segments, so every insert would be refused and every
// sweep would spill — a configuration that is always a mistake rather
// than a tuning choice. (A budget that merely turns out smaller than
// the store's bins at runtime is fine: bins are refused, spilled, and
// replayed sequentially from disk.)
const MinBinBudgetBytes int64 = 4096

// BinCacheStats is a point-in-time snapshot of a host's bin cache.
type BinCacheStats struct {
	Budget       int64 // configured byte budget; 0 = unbounded
	Bytes        int64 // encoded bin bytes resident now (<= Budget when bounded)
	PeakBytes    int64 // high-water mark of Bytes
	Resident     int64 // bins resident now
	Pinned       int64 // resident bins pinned by in-flight gathers right now
	Spilled      int64 // bins with a live spill file on disk
	Hits         int64 // gathers served from residency
	Replays      int64 // gathers restored from a spill file
	Evictions    int64 // unpinned bins evicted to make room
	Rejected     int64 // inserts refused because the cold unpinned set could not cover the bytes
	SpilledBytes int64 // encoded bytes written to spill files
}

// binEntry is one resident bin plus its refcount. pins counts the
// sweeps currently holding the bin between acquire/put and the end of
// their gather; eviction skips any entry with pins > 0.
type binEntry struct {
	b     *binShard
	bytes int64
	pins  int
}

// binCache is the refcounted, byte-budgeted bin LRU every session of a
// host shares. budget 0 disables eviction and spill entirely — the
// historical retain-everything semantics.
type binCache struct {
	budget int64
	dir    string // store directory spill files live in
	gen    int64  // store generation the bins (and spill files) describe

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *binEntry
	idx     map[int]*list.Element
	spilled map[int]bool // shard idx -> a valid spill file exists on disk
	bytes   int64
	closed  bool // drop ran: the host was evicted/rehosted

	peakBytes, hits, replays, evictions, rejected, spillBytes int64
}

// newBinCache builds the bin store for one opened store generation.
func newBinCache(budget int64, dir string, gen int64) *binCache {
	return &binCache{
		budget:  budget,
		dir:     dir,
		gen:     gen,
		ll:      list.New(),
		idx:     make(map[int]*list.Element),
		spilled: make(map[int]bool),
	}
}

// Stats returns a consistent snapshot of the cache counters.
func (c *binCache) Stats() BinCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := BinCacheStats{
		Budget:       c.budget,
		Bytes:        c.bytes,
		PeakBytes:    c.peakBytes,
		Resident:     int64(c.ll.Len()),
		Spilled:      int64(len(c.spilled)),
		Hits:         c.hits,
		Replays:      c.replays,
		Evictions:    c.evictions,
		Rejected:     c.rejected,
		SpilledBytes: c.spillBytes,
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*binEntry).pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// releaseFunc builds the one-shot unpin for ent. A pinned entry is
// never evicted, so ent is still live when the release runs; on a
// closed cache the final unpin also retires the entry, so a rehosted
// store's bin bytes reach zero once its old sessions drain.
func (c *binCache) releaseFunc(ent *binEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			ent.pins--
			if c.closed && ent.pins == 0 {
				if el, ok := c.idx[ent.b.idx]; ok && el.Value.(*binEntry) == ent {
					c.ll.Remove(el)
					delete(c.idx, ent.b.idx)
					c.bytes -= ent.bytes
				}
			}
			c.mu.Unlock()
		})
	}
}

// acquire returns shard si's bin pinned and promoted to most recently
// used, plus its release; the caller must invoke release when its
// gather is done. A miss means the sweep must replay the spill file
// (hasSpill) or re-scatter the shard.
func (c *binCache) acquire(si int) (*binShard, func(), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[si]
	if c.closed || !ok {
		return nil, nil, false
	}
	ent := el.Value.(*binEntry)
	c.ll.MoveToFront(el)
	ent.pins++
	c.hits++
	return ent.b, c.releaseFunc(ent), true
}

// put admits a freshly scattered (or spill-replayed) bin, pinned,
// evicting cold unpinned bins to make room. If another session raced
// the insert, its identical entry is adopted — same host, same store
// generation, same deterministic encoding — and b is dropped. If the
// bytes cannot fit after evicting everything evictable, the insert is
// refused: the returned release is a no-op and the caller gathers b
// uncached (a transient bin). Every bin that leaves (or never enters)
// memory is spilled to disk — written at most once per generation — so
// the next sweep replays it sequentially instead of re-reading the
// base shard. Returns the canonical bin to gather, its release, and
// the evicted-bin / spilled-byte counts this call incurred, for the
// calling session's stats.
func (c *binCache) put(b *binShard) (bin *binShard, release func(), evicted, spilledBytes int64) {
	var toSpill []*binShard
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return b, func() {}, 0, 0
	}
	if el, ok := c.idx[b.idx]; ok {
		ent := el.Value.(*binEntry)
		c.ll.MoveToFront(el)
		ent.pins++
		rel := c.releaseFunc(ent)
		c.mu.Unlock()
		return ent.b, rel, 0, 0
	}
	admitted := true
	if c.budget > 0 {
		for c.bytes+b.bytes > c.budget {
			var victim *list.Element
			for el := c.ll.Back(); el != nil; el = el.Prev() {
				if el.Value.(*binEntry).pins == 0 {
					victim = el
					break
				}
			}
			if victim == nil {
				admitted = false
				c.rejected++
				break
			}
			ent := victim.Value.(*binEntry)
			c.ll.Remove(victim)
			delete(c.idx, ent.b.idx)
			c.bytes -= ent.bytes
			c.evictions++
			evicted++
			if !c.spilled[ent.b.idx] {
				toSpill = append(toSpill, ent.b)
			}
		}
	}
	if admitted {
		ent := &binEntry{b: b, bytes: b.bytes, pins: 1}
		c.idx[b.idx] = c.ll.PushFront(ent)
		c.bytes += ent.bytes
		if c.bytes > c.peakBytes {
			c.peakBytes = c.bytes
		}
		release = c.releaseFunc(ent)
	} else {
		release = func() {}
		if !c.spilled[b.idx] {
			toSpill = append(toSpill, b)
		}
	}
	c.mu.Unlock()
	// Spill outside the lock: the writes are plain file I/O and the
	// budget invariant does not depend on them (the victims' bytes were
	// already subtracted). A failed write just loses the spill — the
	// shard re-scatters next sweep.
	for _, sb := range toSpill {
		spilledBytes += c.spill(sb)
	}
	return b, release, evicted, spilledBytes
}

// peekBin returns shard si's resident bin without pinning or promoting
// it — test inspection only; sweeps go through acquire.
func (c *binCache) peekBin(si int) *binShard {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[si]; ok {
		return el.Value.(*binEntry).b
	}
	return nil
}

// hasSpill reports whether shard si has a live spill file to replay.
func (c *binCache) hasSpill(si int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed && c.spilled[si]
}

// loadSpill reads and validates shard si's spill file, returning the
// decoded bin (not yet admitted — the caller puts it) and the file's
// size, the sequential disk bytes the replay moved. Any failure —
// missing file, truncation, CRC or structural mismatch — is an error;
// the caller drops the record and re-scatters.
func (c *binCache) loadSpill(si int, lo graph.VID) (*binShard, int64, error) {
	c.mu.Lock()
	ok := !c.closed && c.spilled[si]
	gen := c.gen
	path := c.spillPath(si)
	c.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("shard: no spill file recorded for shard %d", si)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	b, err := decodeSpill(data, gen, si, lo)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	c.replays++
	c.mu.Unlock()
	return b, int64(len(data)), nil
}

// dropSpill forgets shard si's spill record and deletes the file — the
// corrupt/unreadable recovery path.
func (c *binCache) dropSpill(si int) {
	c.mu.Lock()
	delete(c.spilled, si)
	path := c.spillPath(si)
	c.mu.Unlock()
	os.Remove(path)
}

// drop releases the whole bin store — the host-evict/rehost path. All
// unpinned bins leave memory immediately and every spill file is
// deleted; bins still pinned by in-flight gathers stay until their
// release, which (with the cache closed) retires them, so a drained
// old-generation host holds zero bin bytes and zero spill files.
func (c *binCache) drop() {
	c.mu.Lock()
	c.closed = true
	paths := make([]string, 0, len(c.spilled))
	for si := range c.spilled {
		paths = append(paths, c.spillPath(si))
	}
	c.spilled = make(map[int]bool)
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*binEntry)
		if ent.pins == 0 {
			c.ll.Remove(el)
			delete(c.idx, ent.b.idx)
			c.bytes -= ent.bytes
		}
	}
	c.mu.Unlock()
	for _, p := range paths {
		os.Remove(p)
	}
}

// spillPath returns shard si's spill file path. The generation suffix
// keeps a rehosted store's new bins from ever validating against an
// old generation's files (and vice versa) even if a crash leaks one.
func (c *binCache) spillPath(si int) string {
	return filepath.Join(c.dir, fmt.Sprintf("bin-%04d-g%06d.spill", si, c.gen))
}

// spill writes b's spill file via a unique temp + rename — atomic
// against concurrent writers (two private engines over one store
// produce interchangeable files; the last rename wins) — and records
// it. No fsync: a spill is a disposable cache artifact whose CRC
// catches a torn write, and the recovery is a re-scatter, not data
// loss. Returns the bytes written (0 on failure — spilling is best
// effort).
func (c *binCache) spill(b *binShard) int64 {
	data := encodeSpill(c.gen, b)
	f, err := os.CreateTemp(c.dir, "bin-spill-*.tmp")
	if err != nil {
		return 0
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, c.spillPath(b.idx))
	}
	if err != nil {
		os.Remove(tmp)
		return 0
	}
	c.mu.Lock()
	if c.closed {
		// Raced drop: the store was rehosted while this spill was in
		// flight; the file must not outlive the generation's cleanup.
		path := c.spillPath(b.idx)
		c.mu.Unlock()
		os.Remove(path)
		return 0
	}
	c.spilled[b.idx] = true
	c.spillBytes += int64(len(data))
	c.mu.Unlock()
	return int64(len(data))
}

// The spill file layout (all fixed-width fields little-endian):
//
//	magic   [8]byte  "ggbinsp1"
//	crc     uint32   IEEE CRC-32 of everything after this field
//	gen     int64    store generation the bin was scattered at
//	idx     uint32   shard index
//	lo      uint32   destination-range base the offsets are relative to
//	entries int64    (dstOffset, src) pairs across all segments
//	nsegs   uint32   segment count
//	lens    [nsegs]uint32
//	segs    concatenated segment streams, in order
const spillMagic = "ggbinsp1"

// spillHeaderSize is the fixed prefix before the per-segment lengths.
const spillHeaderSize = 8 + 4 + 8 + 4 + 4 + 8 + 4

// encodeSpill serialises b for its spill file.
func encodeSpill(gen int64, b *binShard) []byte {
	size := spillHeaderSize + 4*len(b.segs)
	for _, s := range b.segs {
		size += len(s)
	}
	buf := make([]byte, spillHeaderSize, size)
	copy(buf, spillMagic)
	binary.LittleEndian.PutUint64(buf[12:], uint64(gen))
	binary.LittleEndian.PutUint32(buf[20:], uint32(b.idx))
	binary.LittleEndian.PutUint32(buf[24:], uint32(b.lo))
	binary.LittleEndian.PutUint64(buf[28:], uint64(b.entries))
	binary.LittleEndian.PutUint32(buf[36:], uint32(len(b.segs)))
	var tmp [4]byte
	for _, s := range b.segs {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
		buf = append(buf, tmp[:]...)
	}
	for _, s := range b.segs {
		buf = append(buf, s...)
	}
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(buf[12:]))
	return buf
}

// decodeSpill parses and validates one spill file against the
// generation, shard index and destination base the caller expects.
// Every mismatch is an error — the caller's recovery is always the
// same safe move (delete the file, re-scatter the shard), so the
// decoder can afford to be strict.
func decodeSpill(data []byte, gen int64, idx int, lo graph.VID) (*binShard, error) {
	if len(data) < spillHeaderSize {
		return nil, fmt.Errorf("shard: bin spill truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != spillMagic {
		return nil, fmt.Errorf("shard: bin spill bad magic %q", data[:8])
	}
	if got, want := crc32.ChecksumIEEE(data[12:]), binary.LittleEndian.Uint32(data[8:12]); got != want {
		return nil, fmt.Errorf("shard: bin spill checksum mismatch (%08x != %08x)", got, want)
	}
	if g := int64(binary.LittleEndian.Uint64(data[12:])); g != gen {
		return nil, fmt.Errorf("shard: bin spill at generation %d, store is at %d", g, gen)
	}
	if i := binary.LittleEndian.Uint32(data[20:]); int(i) != idx {
		return nil, fmt.Errorf("shard: bin spill names shard %d, want %d", i, idx)
	}
	if l := graph.VID(binary.LittleEndian.Uint32(data[24:])); l != lo {
		return nil, fmt.Errorf("shard: bin spill base %d, shard range starts at %d", l, lo)
	}
	entries := int64(binary.LittleEndian.Uint64(data[28:]))
	if entries < 0 {
		return nil, fmt.Errorf("shard: bin spill declares %d entries", entries)
	}
	nsegs := int(binary.LittleEndian.Uint32(data[36:]))
	rest := data[spillHeaderSize:]
	if nsegs < 0 || nsegs > len(rest)/4 {
		return nil, fmt.Errorf("shard: bin spill declares %d segments in %d bytes", nsegs, len(data))
	}
	lens := rest[:4*nsegs]
	payload := rest[4*nsegs:]
	b := &binShard{idx: idx, lo: lo, segs: make([][]byte, nsegs), entries: entries}
	off := 0
	for t := 0; t < nsegs; t++ {
		n := int(binary.LittleEndian.Uint32(lens[4*t:]))
		if n < 0 || n > len(payload)-off {
			return nil, fmt.Errorf("shard: bin spill segment %d overruns payload", t)
		}
		b.segs[t] = payload[off : off+n : off+n]
		b.bytes += int64(n)
		off += n
	}
	if off != len(payload) {
		return nil, fmt.Errorf("shard: bin spill has %d trailing bytes", len(payload)-off)
	}
	return b, nil
}

// removeStaleSpills deletes leftover bin spill files in dir — Create's
// rebuild path. A rebuilt store restarts at generation 0 with new
// content, so a crashed earlier process's spills at the same
// generation must not be replayable against it.
func removeStaleSpills(dir string) {
	stale, _ := filepath.Glob(filepath.Join(dir, "bin-*.spill"))
	tmps, _ := filepath.Glob(filepath.Join(dir, "bin-spill-*.tmp"))
	for _, p := range append(stale, tmps...) {
		os.Remove(p)
	}
}
