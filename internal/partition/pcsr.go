package partition

import (
	"repro/internal/graph"
)

// CSRPart is one partition of the pruned partitioned CSR layout: the
// out-edges of the whole graph whose destination is homed here, indexed
// by source vertex. Only sources with at least one edge into the
// partition are stored ("pruned"), each alongside its vertex ID — the
// scheme of §II.E whose storage grows with the replication factor r(p):
//
//	r(p)·|V|·(b_e+b_v) + |E|·b_v
type CSRPart struct {
	Verts []graph.VID // replicated source vertex IDs, ascending
	Off   []int64     // len(Verts)+1; edges of Verts[k] are Dst[Off[k]:Off[k+1]]
	Dst   []graph.VID
}

// NumEdges returns the edge count of the part.
func (p *CSRPart) NumEdges() int64 { return int64(len(p.Dst)) }

// NumReplicas returns how many source vertices are replicated into the
// part.
func (p *CSRPart) NumReplicas() int { return len(p.Verts) }

// PCSR is the pruned partitioned CSR layout (partitioning-by-destination).
// Forward traversal over a partition updates only destinations inside the
// partition's range, but a source vertex appears in every partition it
// has an edge into — the replication the paper shows makes CSR
// non-scalable in P.
type PCSR struct {
	Part  *Partitioning
	Parts []*CSRPart
}

// NewPCSR builds the pruned partitioned CSR from g.
func NewPCSR(g *graph.Graph, pt *Partitioning) *PCSR {
	p := pt.P
	parts := make([]*CSRPart, p)
	for i := range parts {
		parts[i] = &CSRPart{Off: []int64{0}}
	}
	for v := 0; v < g.NumVertices(); v++ {
		ns := g.OutNeighbors(graph.VID(v))
		// Neighbours are sorted by destination and homes are contiguous,
		// so this vertex's edges form one run per partition.
		i := 0
		for i < len(ns) {
			h := pt.Home(ns[i])
			j := i + 1
			for j < len(ns) && ns[j] < pt.Bounds[h+1] {
				j++
			}
			part := parts[h]
			part.Verts = append(part.Verts, graph.VID(v))
			part.Dst = append(part.Dst, ns[i:j]...)
			part.Off = append(part.Off, int64(len(part.Dst)))
			i = j
		}
	}
	return &PCSR{Part: pt, Parts: parts}
}

// NumEdges returns the total edge count across partitions (equals the
// graph's |E|: edges are partitioned, not replicated — only vertices are).
func (pc *PCSR) NumEdges() int64 {
	var m int64
	for _, p := range pc.Parts {
		m += p.NumEdges()
	}
	return m
}

// TotalReplicas returns the total number of (partition, source-vertex)
// pairs, the numerator of the replication factor.
func (pc *PCSR) TotalReplicas() int64 {
	var r int64
	for _, p := range pc.Parts {
		r += int64(p.NumReplicas())
	}
	return r
}
