package shard

import (
	"container/list"
	"sync"

	"repro/internal/graph"
)

// resident is a shard decoded and regrouped for parallel application:
// edges are stably bucketed into destination sub-ranges whose bounds are
// aligned to 64 vertices, so each sub-range's task owns its frontier
// bitmap words exclusively and updates need no atomics. Bucketing
// preserves the shard file's edge order within each sub-range, and since
// all in-edges of a destination fall into one bucket, the per-destination
// application order is independent of the task count.
type resident struct {
	idx      int
	src, dst []graph.VID
	off      []int // len = tasks+1; task t owns edges [off[t], off[t+1])
}

// engineCache is the residency surface the sweep machinery drives:
// get/put pin the shard for the caller until the matching release (the
// fetch-to-apply span), peek and snapshot are the planner's non-mutating
// views. The private lruCache implements it with no-op pinning — one
// engine's sweeps are serial, so nothing can evict a shard mid-apply —
// and the multi-tenant sessionCache implements it over the shared
// refcounted SharedCache, where the pins are load-bearing.
type engineCache interface {
	get(i int) (*resident, bool)
	peek(i int) bool
	put(sh *resident)
	release(i int)
	snapshot() []int
	len() int
}

// lruCache keeps up to cap resident shards, evicting the least recently
// used. It is the mechanism that lets iterative algorithms (PageRank's
// fixed sweeps, label propagation) avoid re-reading cold files every
// EdgeMap when the working set fits the budget.
type lruCache struct {
	cap int
	mu  sync.Mutex
	ll  *list.List // front = most recently used; values are *resident
	idx map[int]*list.Element
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), idx: make(map[int]*list.Element)}
}

// get returns the resident shard i if cached, promoting it to most
// recently used.
func (c *lruCache) get(i int) (*resident, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[i]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*resident), true
}

// peek reports whether shard i is cached without promoting it — the
// stager's issue-time residency prediction. It deliberately leaves the
// LRU untouched: promotions happen only at reap time, in plan order,
// so the cache sees the exact get/put sequence a synchronous sweep
// would issue and the planner's simulation stays exact at any IODepth.
func (c *lruCache) peek(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.idx[i]
	return ok
}

// put inserts shard i, evicting from the cold end past capacity.
func (c *lruCache) put(sh *resident) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[sh.idx]; ok {
		c.ll.MoveToFront(el)
		el.Value = sh
		return
	}
	c.idx[sh.idx] = c.ll.PushFront(sh)
	for c.ll.Len() > c.cap {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.idx, cold.Value.(*resident).idx)
	}
}

// release is a no-op: a private engine's sweeps are serial, so a shard
// between fetch and apply cannot be evicted by anyone else — the pin
// discipline only carries weight on the shared sessionCache.
func (c *lruCache) release(int) {}

// snapshot returns the resident shard indices, most recently used
// first, without promoting anything — the sweep-order planner's view of
// the cache.
func (c *lruCache) snapshot() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*resident).idx)
	}
	return out
}

// len returns the number of resident shards.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
