package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/frontier"
)

// Telemetry counts EdgeMap invocations per frontier class. The paper
// reports, e.g., that PRDelta on Twitter runs 8 dense, 3 medium-dense and
// 22 sparse iterations — examples/pagerank prints exactly this breakdown.
type Telemetry struct {
	SparseIters int64
	MediumIters int64
	DenseIters  int64
}

func (t *Telemetry) add(c frontier.Class) {
	switch c {
	case frontier.Sparse:
		atomic.AddInt64(&t.SparseIters, 1)
	case frontier.Medium:
		atomic.AddInt64(&t.MediumIters, 1)
	case frontier.Dense:
		atomic.AddInt64(&t.DenseIters, 1)
	}
}

func (t *Telemetry) snapshot() Telemetry {
	return Telemetry{
		SparseIters: atomic.LoadInt64(&t.SparseIters),
		MediumIters: atomic.LoadInt64(&t.MediumIters),
		DenseIters:  atomic.LoadInt64(&t.DenseIters),
	}
}

// Total returns the total EdgeMap count.
func (t Telemetry) Total() int64 { return t.SparseIters + t.MediumIters + t.DenseIters }

// String renders the per-class breakdown.
func (t Telemetry) String() string {
	return fmt.Sprintf("sparse=%d medium=%d dense=%d", t.SparseIters, t.MediumIters, t.DenseIters)
}
