package repro

import (
	"math"
	"testing"
)

// Public-API surface tests: everything a downstream user would touch.

func TestPublicQuickstartFlow(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 1)
	eng := NewEngine(g, Options{})
	src := SourceVertex(g)

	parents := BFS(eng, src)
	if parents[src] != int32(src) {
		t.Fatal("source is not its own parent")
	}

	ranks := PageRank(eng, 10)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank mass %v", sum)
	}

	labels := ConnectedComponents(eng)
	if len(labels) != g.NumVertices() {
		t.Fatal("label array length")
	}

	dist := ShortestPaths(eng, src)
	if dist[src] != 0 {
		t.Fatal("source distance nonzero")
	}

	y := SpMV(eng)
	if len(y) != g.NumVertices() {
		t.Fatal("SpMV length")
	}

	beliefs := BeliefPropagation(eng, 5)
	for _, b := range beliefs {
		if b < 0 || b > 1 {
			t.Fatal("belief out of range")
		}
	}

	scores := BetweennessCentrality(eng, NewEngine(g.Reverse(), Options{}), src)
	if len(scores) != g.NumVertices() {
		t.Fatal("BC length")
	}
}

func TestPublicBaselines(t *testing.T) {
	g := RMAT(9, 8, 0.57, 0.19, 0.19, 2)
	engines := []System{
		NewLigra(g, 2),
		NewPolymer(g, 2),
		NewGGv1(g, 2),
		NewEngine(g, Options{Threads: 2}),
	}
	src := SourceVertex(g)
	var want []float32
	for _, e := range engines {
		d := ShortestPaths(e, src)
		if want == nil {
			want = d
		} else {
			for v := range d {
				if math.Abs(float64(d[v]-want[v])) > 1e-4 &&
					!(math.IsInf(float64(d[v]), 1) && math.IsInf(float64(want[v]), 1)) {
					t.Fatalf("%s: dist[%d]=%v, want %v", e.Name(), v, d[v], want[v])
				}
			}
		}
	}
}

func TestPublicPartitionAnalysis(t *testing.T) {
	g := Preset("usaroad-sm")
	pt := PartitionByDestination(g, 48, BalanceEdges)
	r := ReplicationFactor(g, pt)
	if r < 1 || r > 4 {
		t.Fatalf("road-graph replication %v out of expected band", r)
	}
}

func TestPublicPageRankDelta(t *testing.T) {
	g := PowerLaw(1<<10, 1<<14, 2.2, 3)
	eng := NewEngine(g, Options{})
	ranks := PageRankDelta(eng, 100)
	pr := PageRank(NewEngine(g, Options{}), 60)
	for v := range ranks {
		if math.Abs(ranks[v]-pr[v]) > 1e-3+0.1*pr[v] {
			t.Fatalf("PRDelta diverges at %d: %v vs %v", v, ranks[v], pr[v])
		}
	}
}

func TestPublicConstants(t *testing.T) {
	if LayoutAuto == LayoutCOO || DirForward == DirBackward {
		t.Fatal("constant collision")
	}
	if len(PresetNames()) != 8 {
		t.Fatal("preset count")
	}
	if w := WeightOf(1, 2); w <= 0 || w > 1 {
		t.Fatal("weight range")
	}
}

func TestPublicExtendedAlgorithms(t *testing.T) {
	// Symmetric graph so the undirected-notion algorithms are valid.
	var edges []Edge
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j += i%3 + 1 {
			edges = append(edges, Edge{Src: VID(i), Dst: VID(j)}, Edge{Src: VID(j), Dst: VID(i)})
		}
	}
	g := FromEdges(40, edges)
	eng := NewEngine(g, Options{Threads: 2})

	core := KCore(eng)
	if len(core) != 40 {
		t.Fatal("KCore length")
	}
	mis := MaximalIndependentSet(eng)
	for v, in := range mis {
		if !in {
			continue
		}
		for _, w := range g.OutNeighbors(VID(v)) {
			if int(w) != v && mis[w] {
				t.Fatal("MIS not independent")
			}
		}
	}
	colors := Coloring(eng)
	for v := range colors {
		for _, w := range g.OutNeighbors(VID(v)) {
			if int(w) != v && colors[w] == colors[v] {
				t.Fatal("colouring not proper")
			}
		}
	}
	ecc := Radii(eng)
	if len(ecc) != 40 {
		t.Fatal("Radii length")
	}
}

func TestPublicAutoEngine(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 5)
	eng := NewEngineAuto(g, Options{Threads: 2})
	if eng.Options().Partitions < 2 {
		t.Fatalf("auto partitions = %d", eng.Options().Partitions)
	}
	if labels := ConnectedComponents(eng); len(labels) != g.NumVertices() {
		t.Fatal("auto engine broken")
	}
}

func TestPublicGeneratorsExported(t *testing.T) {
	if g := ErdosRenyi(64, 128, 1); g.NumEdges() != 128 {
		t.Fatal("ErdosRenyi")
	}
	if g := RoadGrid(8, 8, 1); g.NumVertices() != 64 {
		t.Fatal("RoadGrid")
	}
	if g := PowerLaw(64, 256, 2.2, 1); g.NumEdges() != 256 {
		t.Fatal("PowerLaw")
	}
}

func TestPublicGraphIO(t *testing.T) {
	g := RMAT(8, 8, 0.57, 0.19, 0.19, 9)
	path := t.TempDir() + "/g.bin.gz"
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatal("round trip changed graph")
	}
}

func TestPublicTriangleCount(t *testing.T) {
	// Symmetric triangle: exactly one.
	g := FromEdges(3, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 0, Dst: 2}, {Src: 2, Dst: 0},
	})
	if got := TriangleCount(NewEngine(g, Options{Threads: 1})); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
}
