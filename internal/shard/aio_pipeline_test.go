package shard

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

// TestAIOReadsRunAheadToIODepth proves the read pipeline genuinely
// issues concurrent uncached reads: the first shard read is held open
// until a second read has begun, which an IODepth > 1 engine must
// permit by construction (the stager claims window credits and issues
// reads without waiting for earlier completions). The pre-aio engine —
// every load synchronous on the stager — would deadlock here; the
// timeout converts that into a failure. The sweep's output is then
// checked, so the forced read concurrency is also proven harmless.
func TestAIOReadsRunAheadToIODepth(t *testing.T) {
	g := gen.TinySocial()
	const depth = 4
	e := buildTestEngine(t, g, 12, Options{
		Threads: 2, CacheShards: 8, Window: 4, IODepth: depth,
		Topology: sched.Topology{Domains: 1},
	})

	var loads int64
	second := make(chan struct{})
	e.onLoadBegin = func(int) {
		if atomic.AddInt64(&loads, 1) == 2 {
			close(second)
		}
	}
	var holdOnce sync.Once
	e.onLoadEnd = func(int) {
		// Hold the first completing read until another read has begun,
		// so two reads provably executed at the same time.
		holdOnce.Do(func() {
			select {
			case <-second:
			case <-time.After(10 * time.Second):
				t.Error("no second read began while the first was held open: reads are serialised despite IODepth > 1")
			}
		})
	}

	counts := make([]int64, g.NumVertices())
	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { counts[v]++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
	}, api.DirAuto)

	indeg := make([]int64, g.NumVertices())
	for _, ed := range g.Edges() {
		indeg[ed.Dst]++
	}
	for v := range counts {
		if counts[v] != indeg[v] {
			t.Fatalf("concurrent-read sweep counted %d in-edges for vertex %d, want %d", counts[v], v, indeg[v])
		}
	}

	st := e.Stats()
	if st.ReadsInFlightPeak < 2 {
		t.Fatalf("ReadsInFlightPeak = %d, want >= 2 with IODepth = %d and the enforced interleaving", st.ReadsInFlightPeak, depth)
	}
	if st.ReadsInFlightPeak > depth {
		t.Fatalf("ReadsInFlightPeak = %d exceeds IODepth = %d", st.ReadsInFlightPeak, depth)
	}
	if len(st.ReadDepths) != depth+1 {
		t.Fatalf("ReadDepths has %d buckets, want IODepth+1 = %d", len(st.ReadDepths), depth+1)
	}
	var multi int64
	for d := 2; d < len(st.ReadDepths); d++ {
		multi += st.ReadDepths[d]
	}
	if multi == 0 {
		t.Fatalf("ReadDepths records no read beginning alongside another: %v", st.ReadDepths)
	}
}

// TestAIOJitterBitIdenticalAcrossIODepths is the slow-read fault
// injection ladder: per-shard read delays force completions to reorder
// across the in-flight reads, and an iterative CAS traversal plus
// PageRank must still be bit-identical at IODepth 1, 2 and 4 to the
// sequential NoPrefetch reference — the engine's reap-in-plan-order
// discipline, not completion timing, decides every result.
func TestAIOJitterBitIdenticalAcrossIODepths(t *testing.T) {
	g := gen.TinySocial()
	run := func(opts Options, jitter bool) ([]int64, []int32, []float64) {
		e := buildTestEngine(t, g, 10, opts)
		if jitter {
			e.onLoadBegin = func(si int) {
				// Deterministic per-shard delays, spread so that a later
				// plan entry's read regularly completes before an earlier
				// one's.
				time.Sleep(time.Duration(si%3) * time.Millisecond)
			}
		}
		parents := make([]int32, g.NumVertices())
		for i := range parents {
			parents[i] = -1
		}
		parents[0] = 0
		var sizes []int64
		f := frontier.FromVertex(g, 0)
		for !f.IsEmpty() {
			f = e.EdgeMap(f, bfsOp(parents), api.DirAuto)
			sizes = append(sizes, f.Count())
		}
		return sizes, parents, prOnSystem(e, 5)
	}

	wantSizes, wantParents, wantRanks := run(Options{Threads: 4, CacheShards: 4, NoPrefetch: true}, false)
	for _, depth := range []int{1, 2, 4} {
		sizes, parents, ranks := run(Options{
			Threads: 4, CacheShards: 4, Window: 4, IODepth: depth,
		}, true)
		if !reflect.DeepEqual(sizes, wantSizes) {
			t.Fatalf("IODepth=%d: frontier sizes %v, want %v", depth, sizes, wantSizes)
		}
		if !reflect.DeepEqual(parents, wantParents) {
			t.Fatalf("IODepth=%d: BFS parents diverge from the sequential reference", depth)
		}
		if !reflect.DeepEqual(ranks, wantRanks) {
			t.Fatalf("IODepth=%d: PageRank diverges bit-wise from the sequential reference", depth)
		}
	}
}

// TestAIOTeardownOnMidFlightReadError: a read failure with IODepth > 1
// — other reads genuinely in flight when the failure strikes — aborts
// the sweep with the engine's panic prefix, leaks no goroutine (the
// reader's workers included), keeps the LRU inside its budget, and
// leaves the engine fully serviceable: once the file is restored, a
// healthy sweep produces correct counts.
func TestAIOTeardownOnMidFlightReadError(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	dir := t.TempDir()
	const budget = 4
	e, err := Build(dir, g, 12, Options{Threads: 4, CacheShards: budget, Window: 4, IODepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, "shard-0005.bin")
	saved, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("mid-flight read failure did not panic")
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "shard: engine sweep:") {
				t.Errorf("recovered %v, want the engine's sweep panic prefix", r)
			}
		}()
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}()
	if n := e.cache.len(); n > budget {
		t.Fatalf("LRU holds %d shards after the failed sweep, budget is %d", n, budget)
	}

	// The engine must remain reusable once the fault clears.
	if err := os.WriteFile(victim, saved, 0o644); err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, g.NumVertices())
	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { counts[v]++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
	}, api.DirAuto)
	indeg := make([]int64, g.NumVertices())
	for _, ed := range g.Edges() {
		indeg[ed.Dst]++
	}
	for v := range counts {
		if counts[v] != indeg[v] {
			t.Fatalf("post-failure sweep counted %d in-edges for vertex %d, want %d", counts[v], v, indeg[v])
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		t.Fatalf("goroutines grew from %d to %d after mid-flight-failure teardown", baseline, now)
	}
}
