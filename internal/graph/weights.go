package graph

import "math"

// Edge weights are a deterministic function of the edge's endpoints rather
// than stored arrays. This keeps the CSR, CSC and COO views of a graph
// trivially consistent (the paper stores three layout copies; weights
// would otherwise have to be replicated in each) and costs a few ALU ops
// per edge, which is negligible next to the memory traffic the paper
// studies.

// WeightOf returns the weight of edge (u,v), a value in (0,1]. The same
// (u,v) always yields the same weight, in every layout.
func WeightOf(u, v VID) float32 {
	h := mix64(uint64(u)<<32 | uint64(v))
	// Map the top 24 bits to (0,1]: never zero so shortest-path weights
	// are strictly positive.
	return float32(h>>40+1) / float32(1<<24)
}

// mix64 is the splitmix64 finaliser: a high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 exposes the mixer for other packages needing a cheap deterministic
// hash (generators, belief-propagation priors).
func Mix64(x uint64) uint64 { return mix64(x) }

// WeightSumOut returns the sum of out-edge weights of v, used by SPMV and
// PageRank style normalisation checks.
func (g *Graph) WeightSumOut(v VID) float64 {
	var s float64
	for _, d := range g.OutNeighbors(v) {
		s += float64(WeightOf(v, d))
	}
	return s
}

// Uniform01 maps a hash to [0,1).
func Uniform01(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// ClampFinite replaces NaN/Inf by fallback; belief propagation uses it to
// keep messages well-conditioned regardless of graph structure.
func ClampFinite(x, fallback float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fallback
	}
	return x
}
