package algorithms

import (
	"math"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// BFResult holds single-source shortest-path distances under the
// deterministic positive edge weights of graph.WeightOf; unreachable
// vertices hold +Inf. Rounds is the number of relaxation rounds.
type BFResult struct {
	Dist   []float32
	Rounds int
}

// BellmanFord computes SSSP by frontier-driven relaxation (Table II:
// vertex-oriented, forward preference). Weights are strictly positive so
// the relaxation terminates in at most |V| rounds; the round cap guards
// the invariant.
//
// Relaxation is synchronous per round: each active source's distance is
// frozen before the EdgeMap so relaxations read stable values even while
// other workers lower the same vertex's distance as a destination. A
// source improved mid-round simply re-enters the frontier and forwards
// the better value next round.
func BellmanFord(sys api.System, src graph.VID) BFResult {
	g := sys.Graph()
	n := g.NumVertices()
	dist := NewF32s(n, float32(math.Inf(1)))
	dist.Set(src, 0)
	frozen := make([]float32, n)

	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			return dist.Min(v, frozen[u]+graph.WeightOf(u, v))
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return dist.AtomicMin(v, frozen[u]+graph.WeightOf(u, v))
		},
	}

	f := frontier.FromVertex(g, src)
	rounds := 0
	for !f.IsEmpty() {
		sys.VertexMap(f, func(u graph.VID) { frozen[u] = dist.Get(u) })
		f = sys.EdgeMap(f, op, api.DirForward)
		rounds++
		if rounds > n+1 {
			panic("algorithms: Bellman-Ford failed to converge on positive weights")
		}
	}
	return BFResult{Dist: dist.Slice(), Rounds: rounds}
}
