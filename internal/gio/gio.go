// Package gio reads and writes graphs in the formats a user of the
// framework encounters in the wild:
//
//   - EdgeList: whitespace-separated "src dst" lines, '#' comments
//     (SNAP's download format — how Twitter/LiveJournal/Orkut ship).
//   - AdjacencyGraph: Ligra's text format ("AdjacencyGraph\n n\n m\n"
//     followed by n offsets and m targets), so graphs prepared for the
//     original C++ systems load directly.
//   - Binary: a compact little-endian format with a magic header, for
//     fast reload of generated datasets.
//
// All readers validate structure and return errors rather than
// panicking: files are external input.
package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ReadEdgeList parses "src dst" pairs, one per line. Lines starting with
// '#' or '%' and blank lines are skipped, except that a header of the
// form "# vertices N ..." (as WriteEdgeList emits) fixes the vertex
// count, preserving trailing isolated vertices. Otherwise the count is
// 1 + max ID, or minVertices if larger.
func ReadEdgeList(r io.Reader, minVertices int) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			if n, ok := parseVertexHeader(text); ok && n > minVertices {
				minVertices = n
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: line %d: want 'src dst', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad source: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad destination: %v", line, err)
		}
		edges = append(edges, graph.Edge{Src: graph.VID(src), Dst: graph.VID(dst)})
		if int(src) > maxID {
			maxID = int(src)
		}
		if int(dst) > maxID {
			maxID = int(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: %v", err)
	}
	n := maxID + 1
	if n < minVertices {
		n = minVertices
	}
	return graph.FromEdges(n, edges), nil
}

// parseVertexHeader recognises "# vertices N ..." headers.
func parseVertexHeader(comment string) (int, bool) {
	fields := strings.Fields(strings.TrimLeft(comment, "#% "))
	if len(fields) >= 2 && fields[0] == "vertices" {
		if n, err := strconv.Atoi(fields[1]); err == nil && n >= 0 {
			return n, true
		}
	}
	return 0, false
}

// WriteEdgeList writes the graph as "src dst" lines in CSR order, with a
// "# vertices N edges M" header so isolated trailing vertices survive a
// round trip.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.OutNeighbors(graph.VID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteWeightedEdgeList writes "src dst weight" lines using the
// framework's deterministic edge weights (graph.WeightOf), for interop
// with weighted-graph tools; this repo's own readers ignore the third
// column (weights are recomputed from the endpoints).
func WriteWeightedEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices %d edges %d weighted\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.OutNeighbors(graph.VID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d %.9g\n", v, d, graph.WeightOf(graph.VID(v), d)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAdjacencyGraph parses Ligra's AdjacencyGraph text format.
func ReadAdjacencyGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("gio: %v", err)
	}
	if header != "AdjacencyGraph" {
		return nil, fmt.Errorf("gio: bad header %q, want AdjacencyGraph", header)
	}
	readInt := func(what string) (int64, error) {
		tok, err := next()
		if err != nil {
			return 0, fmt.Errorf("gio: reading %s: %v", what, err)
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("gio: bad %s %q", what, tok)
		}
		return v, nil
	}
	n64, err := readInt("vertex count")
	if err != nil {
		return nil, err
	}
	m64, err := readInt("edge count")
	if err != nil {
		return nil, err
	}
	if n64 < 0 || m64 < 0 || n64 > 1<<31 {
		return nil, fmt.Errorf("gio: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), m64
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i], err = readInt("offset")
		if err != nil {
			return nil, err
		}
	}
	offsets[n] = m
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] || offsets[i] < 0 || offsets[i] > m {
			return nil, fmt.Errorf("gio: offsets not monotone at %d", i)
		}
	}
	edges := make([]graph.Edge, 0, m)
	for v := 0; v < n; v++ {
		for e := offsets[v]; e < offsets[v+1]; e++ {
			t, err := readInt("target")
			if err != nil {
				return nil, err
			}
			if t < 0 || t >= n64 {
				return nil, fmt.Errorf("gio: target %d out of range", t)
			}
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: graph.VID(t)})
		}
	}
	return graph.FromEdges(n, edges), nil
}

// WriteAdjacencyGraph writes Ligra's AdjacencyGraph text format.
func WriteAdjacencyGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "AdjacencyGraph")
	fmt.Fprintln(bw, g.NumVertices())
	fmt.Fprintln(bw, g.NumEdges())
	off := g.OutOffsets()
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintln(bw, off[v])
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.OutNeighbors(graph.VID(v)) {
			if _, err := fmt.Fprintln(bw, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Binary format: magic, version, n, m, then CSR offsets and targets,
// little-endian. The CSC view is rebuilt on load.
const (
	binaryMagic   = 0x47475232 // "GGR2"
	binaryVersion = 1
)

// WriteBinary writes the compact binary format.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, binaryVersion, uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.OutOffsets()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.OutTargets()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads the compact binary format.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("gio: header: %v", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("gio: bad magic %#x", hdr[0])
	}
	if hdr[1] != binaryVersion {
		return nil, fmt.Errorf("gio: unsupported version %d", hdr[1])
	}
	n, m := int(hdr[2]), int64(hdr[3])
	if n < 0 || m < 0 || uint64(n) > 1<<31 {
		return nil, fmt.Errorf("gio: implausible sizes n=%d m=%d", n, m)
	}
	offsets := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("gio: offsets: %v", err)
	}
	if offsets[0] != 0 || offsets[n] != m {
		return nil, fmt.Errorf("gio: offsets span [%d,%d], want [0,%d]", offsets[0], offsets[n], m)
	}
	targets := make([]graph.VID, m)
	if err := binary.Read(br, binary.LittleEndian, targets); err != nil {
		return nil, fmt.Errorf("gio: targets: %v", err)
	}
	edges := make([]graph.Edge, 0, m)
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("gio: offsets not monotone at %d", v)
		}
		for e := offsets[v]; e < offsets[v+1]; e++ {
			t := targets[e]
			if int(t) >= n {
				return nil, fmt.Errorf("gio: target %d out of range", t)
			}
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: t})
		}
	}
	return graph.FromEdges(n, edges), nil
}
