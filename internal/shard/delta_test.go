package shard

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The delta-layer contract under test: after any sequence of
// ApplyBatch calls (and optional Compacts and reopens), the store's
// per-destination edge streams are identical to a store rebuilt from
// scratch from the merged edge multiset. Per-destination identity is
// the strongest equivalence the engine can observe — bucketing
// preserves it and all application order derives from it — so it is
// what the property battery compares.

// edgeMultiset tracks the expected live multiset under the batch
// semantics: inserts add copies, a tombstone removes all copies.
type edgeMultiset map[graph.Edge]int

func (m edgeMultiset) apply(ins, del []graph.Edge) {
	for _, e := range ins {
		m[e]++
	}
	for _, e := range del {
		delete(m, e)
	}
}

func (m edgeMultiset) edges() []graph.Edge {
	var out []graph.Edge
	for e, c := range m {
		for i := 0; i < c; i++ {
			out = append(out, e)
		}
	}
	return out
}

// perDest sweeps st into per-destination source sequences.
func perDest(t *testing.T, st *Store) map[graph.VID][]graph.VID {
	t.Helper()
	out := make(map[graph.VID][]graph.VID)
	if err := st.Sweep(func(u, v graph.VID) { out[v] = append(out[v], u) }); err != nil {
		t.Fatal(err)
	}
	return out
}

// checkEquivalent asserts st is per-destination identical to a store
// rebuilt from scratch from want's multiset, with the same geometry.
func checkEquivalent(t *testing.T, st *Store, want edgeMultiset) {
	t.Helper()
	n := st.NumVertices()
	ref, err := Create(t.TempDir(), graph.FromEdges(n, want.edges()),
		WriteOptions{Partitions: st.NumShards(), Format: st.Format()})
	if err != nil {
		t.Fatal(err)
	}
	got, wantStreams := perDest(t, st), perDest(t, ref)
	if !reflect.DeepEqual(got, wantStreams) {
		t.Fatalf("mutated store diverges from from-scratch rebuild: %d vs %d destinations", len(got), len(wantStreams))
	}
	var total int64
	for _, c := range want {
		total += int64(c)
	}
	if st.NumEdges() != total {
		t.Fatalf("store says %d edges, multiset has %d", st.NumEdges(), total)
	}
}

func multisetOf(g *graph.Graph) edgeMultiset {
	m := make(edgeMultiset)
	for _, e := range g.Edges() {
		m[e]++
	}
	return m
}

// TestApplyBatchRandomEquivalence is the property battery: random
// batches of inserts and deletes against random graphs, checked after
// every batch — through the live store, through a reopen, and again
// after compaction — against a from-scratch rebuild.
func TestApplyBatchRandomEquivalence(t *testing.T) {
	for _, format := range []Format{FormatV1, FormatV2} {
		for seed := int64(1); seed <= 3; seed++ {
			g := gen.ErdosRenyi(320, 1200, uint64(seed))
			n := g.NumVertices()
			dir := t.TempDir()
			st, err := Create(dir, g, WriteOptions{Partitions: 5, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			want := multisetOf(g)
			rng := rand.New(rand.NewSource(seed * 7919))
			existing := g.Edges()
			for round := 0; round < 4; round++ {
				var ins, del []graph.Edge
				for i := 0; i < 30; i++ {
					ins = append(ins, graph.Edge{Src: graph.VID(rng.Intn(n)), Dst: graph.VID(rng.Intn(n))})
				}
				for i := 0; i < 10; i++ {
					del = append(del, existing[rng.Intn(len(existing))]) // often present
					del = append(del, graph.Edge{Src: graph.VID(rng.Intn(n)), Dst: graph.VID(rng.Intn(n))})
				}
				prevGen := st.Generation()
				res, err := st.ApplyBatch(ins, del)
				if err != nil {
					t.Fatal(err)
				}
				if res.Generation != prevGen+1 || st.Generation() != res.Generation {
					t.Fatalf("generation %d after batch on %d", st.Generation(), prevGen)
				}
				want.apply(ins, del)
				checkEquivalent(t, st, want)
				if !reflect.DeepEqual(st.DirtyShards(prevGen), res.Dirty) {
					t.Fatalf("DirtyShards(%d) = %v, batch reported %v", prevGen, st.DirtyShards(prevGen), res.Dirty)
				}
				reopened, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				checkEquivalent(t, reopened, want)
				if reopened.Generation() != st.Generation() || reopened.PendingDeltas() != st.PendingDeltas() {
					t.Fatal("reopen does not round-trip the delta layer")
				}
			}
			if st.PendingDeltas() == 0 {
				t.Fatal("no deltas pending before compaction — test lost its bite")
			}
			cgen, err := st.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if st.PendingDeltas() != 0 || cgen != st.Generation() {
				t.Fatalf("compaction left %d deltas at generation %d (returned %d)", st.PendingDeltas(), st.Generation(), cgen)
			}
			checkEquivalent(t, st, want)
			reopened, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, reopened, want)
			// Compaction is idempotent with nothing pending: no bump.
			if g2, err := st.Compact(); err != nil || g2 != cgen {
				t.Fatalf("second compact returned (%d, %v), want (%d, nil)", g2, err, cgen)
			}
		}
	}
}

func TestApplyBatchEdgeCases(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	st, err := Create(dir, g, WriteOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := multisetOf(g)

	t.Run("EmptyBatchIsNoOp", func(t *testing.T) {
		res, err := st.ApplyBatch(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Generation != 0 || st.Generation() != 0 || st.PendingDeltas() != 0 {
			t.Fatalf("empty batch bumped the store to generation %d", st.Generation())
		}
	})

	t.Run("DeleteMissingEdge", func(t *testing.T) {
		missing := graph.Edge{Src: 0, Dst: graph.VID(g.NumVertices() - 1)}
		if want[missing] != 0 {
			t.Fatal("fixture edge unexpectedly present")
		}
		res, err := st.ApplyBatch(nil, []graph.Edge{missing})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deleted != 0 || res.Inserted != 0 {
			t.Fatalf("deleting a missing edge reported %d deleted / %d inserted", res.Deleted, res.Inserted)
		}
		checkEquivalent(t, st, want)
	})

	t.Run("InsertThenDeleteInOneBatch", func(t *testing.T) {
		var e graph.Edge
		for s := 0; want[e] != 0 || s == 0; s++ {
			e = graph.Edge{Src: graph.VID(s % g.NumVertices()), Dst: graph.VID((s * 3) % g.NumVertices())}
		}
		res, err := st.ApplyBatch([]graph.Edge{e}, []graph.Edge{e})
		if err != nil {
			t.Fatal(err)
		}
		// The tombstone removes all copies, including the same batch's
		// insert: the edge nets to absent, and both counters saw it.
		if res.Inserted != 1 || res.Deleted != 1 {
			t.Fatalf("insert-then-delete reported %d inserted / %d deleted, want 1 / 1", res.Inserted, res.Deleted)
		}
		checkEquivalent(t, st, want)
	})

	t.Run("TombstoneRemovesAllCopies", func(t *testing.T) {
		e := graph.Edge{Src: 3, Dst: 4}
		if _, err := st.ApplyBatch([]graph.Edge{e, e, e}, nil); err != nil {
			t.Fatal(err)
		}
		want.apply([]graph.Edge{e, e, e}, nil)
		checkEquivalent(t, st, want)
		res, err := st.ApplyBatch(nil, []graph.Edge{e})
		if err != nil {
			t.Fatal(err)
		}
		if wantDel := int64(3 + want[e] - 3); res.Deleted != 3+int64(want[e])-3 && res.Deleted < 3 {
			t.Fatalf("tombstone removed %d copies, want at least 3 (%d)", res.Deleted, wantDel)
		}
		want.apply(nil, []graph.Edge{e})
		checkEquivalent(t, st, want)
	})

	t.Run("TombstoneOnlyBatchRoundTrips", func(t *testing.T) {
		reopened, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalent(t, reopened, want)
	})
}

func TestApplyBatchValidation(t *testing.T) {
	st, err := Create(t.TempDir(), gen.TinySocial(), WriteOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := graph.VID(st.NumVertices())
	cases := []struct {
		name     string
		ins, del []graph.Edge
		op, fld  string
	}{
		{"InsertBadSource", []graph.Edge{{Src: n, Dst: 0}}, nil, "insert", "source"},
		{"InsertBadDestination", []graph.Edge{{Src: 0, Dst: n + 5}}, nil, "insert", "destination"},
		{"DeleteBadSource", nil, []graph.Edge{{Src: n, Dst: 0}}, "delete", "source"},
		{"DeleteBadDestination", nil, []graph.Edge{{Src: 0, Dst: n}}, "delete", "destination"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := st.ApplyBatch(tc.ins, tc.del)
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("got %v, want *BatchError", err)
			}
			if be.Op != tc.op || be.Field != tc.fld || be.Hi != n {
				t.Fatalf("BatchError = %+v, want op=%s field=%s hi=%d", be, tc.op, tc.fld, n)
			}
			if st.Generation() != 0 || st.PendingDeltas() != 0 {
				t.Fatal("rejected batch mutated the store")
			}
		})
	}
}

// TestPinnedGenerationStaysReadable is the retention contract: a Store
// value opened before mutations keeps serving exactly its generation's
// content — ApplyBatch and Compact never overwrite or delete the files
// an older manifest names.
func TestPinnedGenerationStaysReadable(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	if _, err := Create(dir, g, WriteOptions{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	pinned, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	original := multisetOf(g)

	mutator, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch := []graph.Edge{{Src: 0, Dst: 1}, {Src: 5, Dst: 0}}
	if _, err := mutator.ApplyBatch(batch, g.Edges()[:3]); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, pinned, original)
	if _, err := mutator.Compact(); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, pinned, original)

	// And a second mutation epoch on top of the compacted base.
	if _, err := mutator.ApplyBatch(batch, nil); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, pinned, original)
}

// TestEngineGenerationGuard pins the staleness contract: an engine
// built over generation G panics out of EdgeMap once the store has
// moved on, rather than sweeping a mix of old residents and new files.
func TestEngineGenerationGuard(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	st, err := Create(dir, g, WriteOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, g, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch([]graph.Edge{{Src: 0, Dst: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale engine swept a newer-generation store without panicking")
		}
	}()
	e.checkGen()
}
