package shard

// Prefetching (PCPM-style pipelining, Lakhotia et al.): a sweep's shard
// plan is known up front, so a dedicated staging goroutine reads shard
// i+1 from disk — or promotes it from the LRU — while the sweep
// goroutine applies shard i in parallel. The hand-off channel is
// unbuffered, which is what makes the pipeline a strict double buffer:
// at any moment at most one shard is being applied and at most one is
// staged ahead, and because all loads happen sequentially on the one
// staging goroutine, the engine's "at most one uncached load in flight"
// invariant survives unchanged.

// fetched is one staged shard handed from the prefetcher to the sweep.
// err is set when the shard failed to load; the sweep re-panics it, the
// same surfacing the unpipelined path uses.
type fetched struct {
	sh  *resident
	err error
}

// prefetcher owns the staging goroutine for one sweep.
type prefetcher struct {
	out  chan fetched  // unbuffered: the double-buffer hand-off
	quit chan struct{} // closed by stop to abandon undelivered work
	done chan struct{} // closed when the staging goroutine has exited
}

// prefetch starts staging the planned shard sequence. The caller must
// consume exactly len(plan) shards via next or call stop; stop is safe
// (and idempotent via defer) in both cases and returns only after the
// staging goroutine has exited, so no sweep leaks a goroutine even when
// an operator panics mid-apply.
func (e *Engine) prefetch(plan []int) *prefetcher {
	p := &prefetcher{
		out:  make(chan fetched),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		for _, si := range plan {
			sh, err := e.fetch(si, true)
			select {
			case p.out <- fetched{sh: sh, err: err}:
				if err != nil {
					return
				}
			case <-p.quit:
				return
			}
		}
	}()
	return p
}

// next blocks until the next planned shard is resident and returns it.
// A load failure panics on the sweep goroutine — EdgeMap cannot return
// an error through api.System — after the staging goroutine has already
// shut itself down.
func (p *prefetcher) next() *resident {
	f := <-p.out
	if f.err != nil {
		panic("shard: engine sweep: " + f.err.Error())
	}
	return f.sh
}

// stop tears the staging goroutine down and waits for it to exit. It is
// the teardown barrier: once stop returns, no prefetcher goroutine from
// this sweep is running and no further cache or stats mutation happens.
func (p *prefetcher) stop() {
	close(p.quit)
	<-p.done
}
