package locality

import "testing"

// ascendingSweeps builds s identical full sweeps over p shards.
func ascendingSweeps(p, s int) [][]int {
	plans := make([][]int, s)
	for i := range plans {
		plans[i] = make([]int, p)
		for j := range plans[i] {
			plans[i][j] = j
		}
	}
	return plans
}

// zigzagSweeps reverses every odd sweep — the boustrophedon schedule
// shard.OrderZigzag plans.
func zigzagSweeps(p, s int) [][]int {
	plans := ascendingSweeps(p, s)
	for i := 1; i < s; i += 2 {
		for a, b := 0, p-1; a < b; a, b = a+1, b-1 {
			plans[i][a], plans[i][b] = plans[i][b], plans[i][a]
		}
	}
	return plans
}

// TestMeasureSweepOrderZigzagClosedForm pins the scorer to the closed
// form of the boustrophedon win: with P shards, budget C < P and S
// sweeps, ascending loads S·P (the cyclic pattern never hits an LRU
// smaller than the cycle) while zigzag loads S·P − (S−1)·C.
func TestMeasureSweepOrderZigzagClosedForm(t *testing.T) {
	const p, c, s = 8, 3, 10
	cmp := MeasureSweepOrder(zigzagSweeps(p, s), c)
	if got, want := cmp.Ascending.Loads, int64(s*p); got != want {
		t.Fatalf("ascending loads = %d, want %d (cyclic LRU never hits)", got, want)
	}
	if got, want := cmp.Planned.Loads, int64(s*p-(s-1)*c); got != want {
		t.Fatalf("zigzag loads = %d, want %d", got, want)
	}
	if got, want := cmp.ReloadsAvoided, int64((s-1)*c); got != want {
		t.Fatalf("ReloadsAvoided = %d, want %d", got, want)
	}
	if cmp.Planned.Hits+cmp.Planned.Loads != cmp.Planned.Accesses {
		t.Fatalf("hits %d + loads %d != accesses %d",
			cmp.Planned.Hits, cmp.Planned.Loads, cmp.Planned.Accesses)
	}
	// The reuse story behind the load counts: ascending's only finite
	// distance is the full cycle (P−1 distinct shards between visits),
	// zigzag's reversal folds part of the schedule below the budget.
	if cmp.Ascending.MaxReuse != p-1 || cmp.Ascending.MeanReuse <= float64(c) {
		t.Fatalf("ascending reuse profile unexpected: mean %.2f max %d",
			cmp.Ascending.MeanReuse, cmp.Ascending.MaxReuse)
	}
	if cmp.Planned.MeanReuse >= cmp.Ascending.MeanReuse {
		t.Fatalf("zigzag mean reuse %.2f not below ascending %.2f",
			cmp.Planned.MeanReuse, cmp.Ascending.MeanReuse)
	}
}

// TestMeasureSweepOrderAscendingIsItsOwnBaseline: scoring the baseline
// schedule against itself must save nothing, whatever the budget.
func TestMeasureSweepOrderAscendingIsItsOwnBaseline(t *testing.T) {
	for _, c := range []int{1, 3, 8, 100} {
		cmp := MeasureSweepOrder(ascendingSweeps(8, 6), c)
		if cmp.ReloadsAvoided != 0 {
			t.Fatalf("budget %d: ascending vs itself avoided %d reloads", c, cmp.ReloadsAvoided)
		}
		if cmp.Planned != cmp.Ascending {
			t.Fatalf("budget %d: identical schedules scored differently: %+v vs %+v",
				c, cmp.Planned, cmp.Ascending)
		}
	}
}

// TestMeasureSweepOrderBudgetCoversCycle: once the budget holds every
// shard, ordering is a no-op win — both schedules pay one cold load per
// shard and hit thereafter.
func TestMeasureSweepOrderBudgetCoversCycle(t *testing.T) {
	const p, s = 8, 5
	cmp := MeasureSweepOrder(zigzagSweeps(p, s), p)
	if cmp.Planned.Loads != p || cmp.Ascending.Loads != p {
		t.Fatalf("whole-cycle budget should load each shard once: planned %d, ascending %d, want %d",
			cmp.Planned.Loads, cmp.Ascending.Loads, p)
	}
	if cmp.ReloadsAvoided != 0 {
		t.Fatalf("ReloadsAvoided = %d with the cycle cached, want 0", cmp.ReloadsAvoided)
	}
}

// TestMeasureSweepOrderRaggedSparsePlans: per-sweep shard sets need not
// match — sparse sweeps plan subsets — and the baseline must sort each
// sweep independently without leaking shards across sweeps.
func TestMeasureSweepOrderRaggedSparsePlans(t *testing.T) {
	plans := [][]int{
		{5, 1, 3},
		{3, 5},
		{},
		{2},
		{5, 3, 1},
	}
	cmp := MeasureSweepOrder(plans, 2)
	var visits int64
	for _, p := range plans {
		visits += int64(len(p))
	}
	if cmp.Planned.Accesses != visits || cmp.Ascending.Accesses != visits {
		t.Fatalf("accesses %d/%d, want %d", cmp.Planned.Accesses, cmp.Ascending.Accesses, visits)
	}
	// Schedules over the same sets can differ only in reuse, not volume.
	if cmp.Planned.Hits+cmp.Planned.Loads != visits {
		t.Fatalf("planned hits+loads != accesses: %+v", cmp.Planned)
	}
	if cmp.ReloadsAvoided != cmp.Ascending.Loads-cmp.Planned.Loads {
		t.Fatalf("ReloadsAvoided inconsistent: %+v", cmp)
	}
}
