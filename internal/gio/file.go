package gio

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// Load reads a graph from a file, dispatching on extension:
//
//	.el / .txt / .edges  edge list
//	.adj                 Ligra AdjacencyGraph
//	.bin / .ggr          binary
//
// A trailing ".gz" on any of the above transparently decompresses.
func Load(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("gio: %s: %v", path, err)
		}
		defer gz.Close()
		r = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	switch ext := filepath.Ext(name); ext {
	case ".el", ".txt", ".edges":
		return ReadEdgeList(r, 0)
	case ".adj":
		return ReadAdjacencyGraph(r)
	case ".bin", ".ggr":
		return ReadBinary(r)
	default:
		return nil, fmt.Errorf("gio: %s: unknown graph extension %q", path, ext)
	}
}

// Save writes a graph to a file, dispatching on extension exactly like
// Load (including ".gz" compression).
func Save(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	name := path
	if strings.HasSuffix(name, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	var werr error
	switch ext := filepath.Ext(name); ext {
	case ".el", ".txt", ".edges":
		werr = WriteEdgeList(w, g)
	case ".adj":
		werr = WriteAdjacencyGraph(w, g)
	case ".bin", ".ggr":
		werr = WriteBinary(w, g)
	default:
		werr = fmt.Errorf("gio: %s: unknown graph extension %q", path, ext)
	}
	if gz != nil {
		if err := gz.Close(); err != nil && werr == nil {
			werr = err
		}
	}
	if err := f.Close(); err != nil && werr == nil {
		werr = err
	}
	if werr != nil {
		os.Remove(path)
	}
	return werr
}
