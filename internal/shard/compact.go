package shard

import (
	"fmt"
	"path/filepath"
)

// compactedShardName names the generation-suffixed base file Compact
// writes for shard si. Compaction never reuses a live file name —
// the previous generation's bases stay on disk untouched, so a Store
// opened before the swap keeps reading exactly the files its manifest
// names, and a crash mid-compaction (new bases written, manifest not
// yet swapped) leaves the directory opening as the old generation
// with the orphaned gen-files inert.
func compactedShardName(si int, gen int64) string {
	return fmt.Sprintf("shard-%04d-g%06d.bin", si, gen)
}

// Compact folds every pending delta into fresh generation-suffixed
// base files and swaps in a manifest with no delta layer, bumping the
// generation. Reads through the receiver afterwards touch one file
// per shard again. A store with no pending deltas is left unchanged
// (no generation bump). Returns the generation the store serves on
// return.
//
// Like ApplyBatch, Compact must not race reads through the same Store
// value; superseded files are retained, so other Store values opened
// earlier (pinned sessions) stay readable throughout and afterwards.
func (s *Store) Compact() (int64, error) {
	if s.PendingDeltas() == 0 {
		return s.m.Generation, nil
	}
	gen := s.m.Generation + 1
	newM := s.m.clone()
	if newM.BaseFiles == nil {
		newM.BaseFiles = make([]string, newM.Shards)
		for i := range newM.BaseFiles {
			newM.BaseFiles[i] = filepath.Base(shardPath(s.dir, i))
		}
	}
	for i := 0; i < newM.Shards; i++ {
		if len(s.deltas(i)) == 0 {
			continue
		}
		c, _, err := s.loadShard(i)
		if err != nil {
			return 0, err
		}
		name := compactedShardName(i, gen)
		if err := writeShardFile(filepath.Join(s.dir, name), c, s.format); err != nil {
			return 0, err
		}
		newM.BaseFiles[i] = name
		newM.BaseEdgeCounts[i] = int64(len(c.Src))
	}
	newM.Deltas = nil
	newM.Generation = gen
	if err := writeManifest(s.dir, newM); err != nil {
		return 0, err
	}
	s.m = newM
	return gen, nil
}
