// Package graph provides the core graph representations shared by every
// engine in this repository: a dual CSR/CSC indexed form and a COO edge
// list, together with builders, degree queries and validation.
//
// Vertex identifiers are 32-bit (VID). Edge counts are int64 so that the
// arithmetic matches the storage-size model of the paper even for graphs
// larger than 2^31 edges.
package graph

import (
	"fmt"
	"sort"
)

// VID is a vertex identifier.
type VID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VID
}

// Graph is a directed graph stored simultaneously in CSR (out-edges) and
// CSC (in-edges) form. Both views are built once at construction; all
// engines share the same Graph value.
//
// CSR: out-edges of v are OutDst[OutOff[v]:OutOff[v+1]], sorted by
// destination. CSC: in-edges of v are InSrc[InOff[v]:InOff[v+1]], sorted by
// source. Edge weights are not stored; they are a deterministic function
// of (src,dst) — see WeightOf — so all layouts agree without replication.
type Graph struct {
	n      int
	m      int64
	outOff []int64
	outDst []VID
	inOff  []int64
	inSrc  []VID
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (directed edge count).
func (g *Graph) NumEdges() int64 { return g.m }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VID) int64 { return g.outOff[v+1] - g.outOff[v] }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VID) int64 { return g.inOff[v+1] - g.inOff[v] }

// OutNeighbors returns the out-neighbour slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) OutNeighbors(v VID) []VID { return g.outDst[g.outOff[v]:g.outOff[v+1]] }

// InNeighbors returns the in-neighbour slice of v (sources of in-edges).
// The slice aliases the graph's storage and must not be modified.
func (g *Graph) InNeighbors(v VID) []VID { return g.inSrc[g.inOff[v]:g.inOff[v+1]] }

// OutOffsets exposes the CSR index array (length NumVertices+1).
func (g *Graph) OutOffsets() []int64 { return g.outOff }

// OutTargets exposes the CSR destination array (length NumEdges).
func (g *Graph) OutTargets() []VID { return g.outDst }

// InOffsets exposes the CSC index array (length NumVertices+1).
func (g *Graph) InOffsets() []int64 { return g.inOff }

// InSources exposes the CSC source array (length NumEdges).
func (g *Graph) InSources() []VID { return g.inSrc }

// FromEdges builds a Graph with n vertices from a directed edge list.
// Duplicate edges and self-loops are kept as supplied. Panics if an
// endpoint is out of range, since that is a programming error in the
// caller (generators always produce in-range endpoints).
func FromEdges(n int, edges []Edge) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, n))
		}
	}
	g := &Graph{n: n, m: int64(len(edges))}
	g.outOff, g.outDst = buildAdjacency(n, edges, func(e Edge) (VID, VID) { return e.Src, e.Dst })
	g.inOff, g.inSrc = buildAdjacency(n, edges, func(e Edge) (VID, VID) { return e.Dst, e.Src })
	return g
}

// buildAdjacency performs a counting sort of edges by key(e) and returns
// the offset and value arrays. Values within a bucket are sorted so that
// neighbour lists are ordered, which some algorithms and tests rely on.
func buildAdjacency(n int, edges []Edge, key func(Edge) (VID, VID)) ([]int64, []VID) {
	off := make([]int64, n+1)
	for _, e := range edges {
		k, _ := key(e)
		off[k+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	vals := make([]VID, len(edges))
	cursor := make([]int64, n)
	for _, e := range edges {
		k, v := key(e)
		vals[off[k]+cursor[k]] = v
		cursor[k]++
	}
	for v := 0; v < n; v++ {
		seg := vals[off[v]:off[v+1]]
		if len(seg) > 1 {
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}
	}
	return off, vals
}

// Edges materialises the edge list in CSR order (sorted by source, then
// destination). The result is freshly allocated.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for v := 0; v < g.n; v++ {
		for _, d := range g.OutNeighbors(VID(v)) {
			out = append(out, Edge{Src: VID(v), Dst: d})
		}
	}
	return out
}

// Reverse returns a new graph with every edge direction flipped. The CSR
// of the result is the CSC of the receiver and vice versa, so this is a
// cheap pointer swap plus copy of the small header.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n: g.n, m: g.m,
		outOff: g.inOff, outDst: g.inSrc,
		inOff: g.outOff, inSrc: g.outDst,
	}
}

// Validate checks the structural invariants of both views: offsets are
// monotone and span [0,m]; every stored endpoint is in range; the CSR and
// CSC views describe the same multiset of edges.
func (g *Graph) Validate() error {
	if err := validateView(g.n, g.m, g.outOff, g.outDst, "CSR"); err != nil {
		return err
	}
	if err := validateView(g.n, g.m, g.inOff, g.inSrc, "CSC"); err != nil {
		return err
	}
	// Compare the multiset of edges between views via a canonical sort.
	fwd := g.Edges()
	bwd := make([]Edge, 0, g.m)
	for v := 0; v < g.n; v++ {
		for _, s := range g.InNeighbors(VID(v)) {
			bwd = append(bwd, Edge{Src: s, Dst: VID(v)})
		}
	}
	sortEdges(fwd)
	sortEdges(bwd)
	for i := range fwd {
		if fwd[i] != bwd[i] {
			return fmt.Errorf("graph: CSR/CSC disagree at edge %d: %v vs %v", i, fwd[i], bwd[i])
		}
	}
	return nil
}

func validateView(n int, m int64, off []int64, vals []VID, name string) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: %s offsets length %d, want %d", name, len(off), n+1)
	}
	if off[0] != 0 || off[n] != m {
		return fmt.Errorf("graph: %s offsets span [%d,%d], want [0,%d]", name, off[0], off[n], m)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("graph: %s offsets not monotone at %d", name, i)
		}
	}
	if int64(len(vals)) != m {
		return fmt.Errorf("graph: %s values length %d, want %d", name, len(vals), m)
	}
	for i, v := range vals {
		if int(v) >= n {
			return fmt.Errorf("graph: %s value %d out of range at %d", name, v, i)
		}
	}
	return nil
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

// SortEdges sorts an edge list in CSR order (by source, then destination).
func SortEdges(es []Edge) { sortEdges(es) }

// MaxOutDegree returns the largest out-degree in the graph, or 0 for an
// empty graph.
func (g *Graph) MaxOutDegree() int64 {
	var max int64
	for v := 0; v < g.n; v++ {
		if d := g.OutDegree(VID(v)); d > max {
			max = d
		}
	}
	return max
}

// MaxInDegree returns the largest in-degree in the graph.
func (g *Graph) MaxInDegree() int64 {
	var max int64
	for v := 0; v < g.n; v++ {
		if d := g.InDegree(VID(v)); d > max {
			max = d
		}
	}
	return max
}
