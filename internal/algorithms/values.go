// Package algorithms implements the eight graph algorithms of the
// paper's Table II — BFS, BC, CC, PR, PRDelta, SPMV, BF and BP — written
// once against the engine-neutral api.System interface so every
// experiment can run them unchanged on Ligra, Polymer, GraphGrind-v1 and
// GraphGrind-v2. Serial reference implementations used as test oracles
// live in reference.go.
package algorithms

import (
	"math"
	"sync/atomic"

	"repro/internal/graph"
)

// F64s is a float64 array supporting both plain and atomic accumulation.
// Values are stored as IEEE-754 bit patterns in uint64 so atomic updates
// are CAS loops on the bits; the plain accessors reinterpret in place.
// Engines guarantee the plain methods are only used on
// destination-exclusive paths.
type F64s struct{ bits []uint64 }

// NewF64s allocates an array of n values initialised to init.
func NewF64s(n int, init float64) *F64s {
	a := &F64s{bits: make([]uint64, n)}
	if init != 0 {
		b := math.Float64bits(init)
		for i := range a.bits {
			a.bits[i] = b
		}
	}
	return a
}

// Len returns the array length.
func (a *F64s) Len() int { return len(a.bits) }

// Get returns element i. The load uses the atomic primitive so that
// reads racing with a writer on another engine path are well-defined and
// race-detector-clean; on amd64 this compiles to a plain MOV.
func (a *F64s) Get(i graph.VID) float64 {
	return math.Float64frombits(atomic.LoadUint64(&a.bits[i]))
}

// Set stores element i (atomic store primitive, single-writer semantics).
func (a *F64s) Set(i graph.VID, v float64) {
	atomic.StoreUint64(&a.bits[i], math.Float64bits(v))
}

// Add accumulates into element i. The load/store pair is not one atomic
// operation: callers must hold exclusive ownership of index i (the
// engines' partition-exclusive paths guarantee this).
func (a *F64s) Add(i graph.VID, v float64) {
	a.Set(i, a.Get(i)+v)
}

// AtomicAdd accumulates into element i with a CAS loop.
func (a *F64s) AtomicAdd(i graph.VID, v float64) {
	p := &a.bits[i]
	for {
		old := atomic.LoadUint64(p)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}

// Fill sets every element to v.
func (a *F64s) Fill(v float64) {
	b := math.Float64bits(v)
	for i := range a.bits {
		a.bits[i] = b
	}
}

// Slice copies the values out as []float64.
func (a *F64s) Slice() []float64 {
	out := make([]float64, len(a.bits))
	for i := range a.bits {
		out[i] = math.Float64frombits(a.bits[i])
	}
	return out
}

// F32s is a float32 array with plain and atomic min-update, used for
// shortest-path distances.
type F32s struct{ bits []uint32 }

// NewF32s allocates n values initialised to init.
func NewF32s(n int, init float32) *F32s {
	a := &F32s{bits: make([]uint32, n)}
	b := math.Float32bits(init)
	for i := range a.bits {
		a.bits[i] = b
	}
	return a
}

// Len returns the array length.
func (a *F32s) Len() int { return len(a.bits) }

// Get returns element i (atomic load primitive; see F64s.Get).
func (a *F32s) Get(i graph.VID) float32 {
	return math.Float32frombits(atomic.LoadUint32(&a.bits[i]))
}

// Set stores element i.
func (a *F32s) Set(i graph.VID, v float32) {
	atomic.StoreUint32(&a.bits[i], math.Float32bits(v))
}

// Min lowers element i to v if v is smaller; reports whether it changed.
// Single-writer version for destination-exclusive paths.
func (a *F32s) Min(i graph.VID, v float32) bool {
	if v < a.Get(i) {
		a.Set(i, v)
		return true
	}
	return false
}

// AtomicMin lowers element i to v atomically; reports whether this call
// lowered it.
func (a *F32s) AtomicMin(i graph.VID, v float32) bool {
	p := &a.bits[i]
	for {
		old := atomic.LoadUint32(p)
		if v >= math.Float32frombits(old) {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, math.Float32bits(v)) {
			return true
		}
	}
}

// Slice copies values out.
func (a *F32s) Slice() []float32 {
	out := make([]float32, len(a.bits))
	for i := range a.bits {
		out[i] = math.Float32frombits(a.bits[i])
	}
	return out
}

// I32s is an int32 array with plain and atomic compare-and-claim /
// min-update, used for BFS parents and CC labels.
type I32s struct{ vals []int32 }

// NewI32s allocates n values initialised to init.
func NewI32s(n int, init int32) *I32s {
	a := &I32s{vals: make([]int32, n)}
	if init != 0 {
		for i := range a.vals {
			a.vals[i] = init
		}
	}
	return a
}

// Len returns the array length.
func (a *I32s) Len() int { return len(a.vals) }

// Get returns element i (atomic load primitive; see F64s.Get).
func (a *I32s) Get(i graph.VID) int32 { return atomic.LoadInt32(&a.vals[i]) }

// Set stores element i.
func (a *I32s) Set(i graph.VID, v int32) { atomic.StoreInt32(&a.vals[i], v) }

// CompareAndSet claims element i: if it equals expect, store v.
// Single-writer version for destination-exclusive paths.
func (a *I32s) CompareAndSet(i graph.VID, expect, v int32) bool {
	if a.Get(i) == expect {
		a.Set(i, v)
		return true
	}
	return false
}

// AtomicCompareAndSet is the CAS version of CompareAndSet.
func (a *I32s) AtomicCompareAndSet(i graph.VID, expect, v int32) bool {
	return atomic.CompareAndSwapInt32(&a.vals[i], expect, v)
}

// Min lowers element i to v if smaller; reports change. Single-writer
// version for destination-exclusive paths.
func (a *I32s) Min(i graph.VID, v int32) bool {
	if v < a.Get(i) {
		a.Set(i, v)
		return true
	}
	return false
}

// AtomicMin lowers element i to v atomically; reports whether this call
// lowered it.
func (a *I32s) AtomicMin(i graph.VID, v int32) bool {
	p := &a.vals[i]
	for {
		old := atomic.LoadInt32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt32(p, old, v) {
			return true
		}
	}
}

// Slice returns the backing slice (not a copy); callers treat it as
// read-only after the algorithm finishes.
func (a *I32s) Slice() []int32 { return a.vals }
