package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Differential round-trip property for the two on-disk formats: a graph
// written v1 and written v2 must decode to the same shards. "Same" is
// the equivalence the engine's semantics run on — v2 re-sorts each
// shard by (dst, src), so file order differs, but every destination's
// source sequence must be identical edge for edge (the engine applies
// each destination's in-edges in file order, and destination-only
// writes make that order the whole story; both formats keep it
// ascending). The test also pins the v2 decoder to exactly the sorted
// order the encoder promises, and the byte claim the format exists for:
// the v2 store is strictly smaller on disk.

// randomTestGraph builds a reproducible random multigraph (parallel
// edges and self-loops included — both legal in COO shards).
func randomTestGraph(r *rand.Rand) *graph.Graph {
	n := 64 + r.Intn(4)*64 // 1..4 aligned destination units per shard boundary step
	edges := make([]graph.Edge, r.Intn(4000))
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VID(r.Intn(n)),
			Dst: graph.VID(r.Intn(n)),
		}
	}
	return graph.FromEdges(n, edges)
}

// perDstSequences groups a shard's sources by destination, preserving
// file order within each destination.
func perDstSequences(c *graph.COO) map[graph.VID][]graph.VID {
	seq := make(map[graph.VID][]graph.VID)
	for i := range c.Src {
		seq[c.Dst[i]] = append(seq[c.Dst[i]], c.Src[i])
	}
	return seq
}

func TestFormatRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := randomTestGraph(r)
		p := 1 + r.Intn(6)
		v1, err := WriteFormat(t.TempDir(), g, p, FormatV1)
		if err != nil {
			t.Fatalf("trial %d: write v1: %v", trial, err)
		}
		v2, err := WriteFormat(t.TempDir(), g, p, FormatV2)
		if err != nil {
			t.Fatalf("trial %d: write v2: %v", trial, err)
		}
		if v1.NumShards() != v2.NumShards() {
			t.Fatalf("trial %d: shard counts differ: v1 %d, v2 %d", trial, v1.NumShards(), v2.NumShards())
		}
		for i := 0; i < v1.NumShards(); i++ {
			c1, err := v1.LoadShard(i)
			if err != nil {
				t.Fatalf("trial %d: load v1 shard %d: %v", trial, i, err)
			}
			c2, err := v2.LoadShard(i)
			if err != nil {
				t.Fatalf("trial %d: load v2 shard %d: %v", trial, i, err)
			}
			if len(c1.Src) != len(c2.Src) {
				t.Fatalf("trial %d shard %d: edge counts differ: v1 %d, v2 %d", trial, i, len(c1.Src), len(c2.Src))
			}
			// The v2 decoder must reproduce exactly the (dst, src) sort the
			// encoder wrote.
			for e := 1; e < len(c2.Src); e++ {
				if c2.Dst[e] < c2.Dst[e-1] ||
					(c2.Dst[e] == c2.Dst[e-1] && c2.Src[e] < c2.Src[e-1]) {
					t.Fatalf("trial %d shard %d: v2 not (dst,src)-sorted at edge %d", trial, i, e)
				}
			}
			// Identical shards under the engine's equivalence: every
			// destination sees the same source sequence.
			s1, s2 := perDstSequences(c1), perDstSequences(c2)
			if len(s1) != len(s2) {
				t.Fatalf("trial %d shard %d: destination sets differ (%d vs %d)", trial, i, len(s1), len(s2))
			}
			for d, seq1 := range s1 {
				seq2 := s2[d]
				if len(seq1) != len(seq2) {
					t.Fatalf("trial %d shard %d: destination %d has %d v1 edges, %d v2 edges", trial, i, d, len(seq1), len(seq2))
				}
				for e := range seq1 {
					if seq1[e] != seq2[e] {
						t.Fatalf("trial %d shard %d: destination %d source sequence differs at %d: v1 %d, v2 %d",
							trial, i, d, e, seq1[e], seq2[e])
					}
				}
			}
		}
		d1, err := v1.DiskBytes()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := v2.DiskBytes()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() > 0 && d2 >= d1 {
			t.Fatalf("trial %d: v2 store not smaller: v1 %d bytes, v2 %d bytes (%d edges)", trial, d1, d2, g.NumEdges())
		}
	}
}

// TestV2HugeCountRejected pins the decoder's overflow guard: a v2
// header declaring an edge count near MaxInt64 — large enough that the
// naive minimum-size arithmetic would wrap negative — must surface as
// an error before anything is allocated, never as a makeslice panic.
func TestV2HugeCountRejected(t *testing.T) {
	var buf []byte
	buf = append(buf, shardMagicV2[:]...)
	var tmp [binary.MaxVarintLen64]byte
	const huge = 1<<63 - 1
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], huge)]...)
	path := filepath.Join(t.TempDir(), "shard-0000.bin")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readShardFile(path, FormatV2, 256, 64, 128, huge); err == nil {
		t.Fatal("v2 decoder accepted a near-MaxInt64 edge count")
	}
}

// TestFormatBytesOnMicroGraph pins the headline number on the standard
// micro graph: the compressed store is strictly smaller than the raw
// one, and the engine's byte counters see it — a full cold sweep over a
// v2 store records BytesRead < BytesLogical (the raw v1 pricing of the
// same loads), while a v1 store records exact equality.
func TestFormatBytesOnMicroGraph(t *testing.T) {
	g := gen.TinySocial()
	v1, err := WriteFormat(t.TempDir(), g, 8, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := WriteFormat(t.TempDir(), g, 8, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := v1.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := v2.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if d2 >= d1 {
		t.Fatalf("v2 store is %d bytes, v1 is %d — compression did not shrink the micro graph", d2, d1)
	}
	if want := v1EncodedBytes(0)*int64(v1.NumShards()) + 8*g.NumEdges(); d1 != want {
		t.Fatalf("v1 store is %d bytes, want %d (8 per edge + headers)", d1, want)
	}
	for _, tc := range []struct {
		st         *Store
		compressed bool
	}{{v1, false}, {v2, true}} {
		eng, err := NewEngine(tc.st, g, Options{CacheShards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.st.Sweep(func(_, _ graph.VID) {}); err != nil {
			t.Fatal(err)
		}
		// Drive the byte counters through the engine path: one dense sweep
		// with a 1-shard LRU decodes every planned shard from disk.
		eng.EdgeMap(frontier.All(g), api.EdgeOp{
			Update:       func(u, v graph.VID) bool { return true },
			UpdateAtomic: func(u, v graph.VID) bool { return true },
		}, api.DirAuto)
		st := eng.Stats()
		if st.BytesRead <= 0 || st.BytesLogical <= 0 {
			t.Fatalf("%v: byte counters not maintained: %+v", tc.st.Format(), st)
		}
		if tc.compressed && st.BytesRead >= st.BytesLogical {
			t.Fatalf("v2 sweep read %d bytes, logical (raw) volume %d — no compression observed", st.BytesRead, st.BytesLogical)
		}
		if !tc.compressed && st.BytesRead != st.BytesLogical {
			t.Fatalf("v1 sweep read %d bytes but logical volume is %d — v1 pricing must be exact", st.BytesRead, st.BytesLogical)
		}
	}
}

// chunkRecorder wraps a reader and records how it is consumed: how many
// Read calls arrive and the largest single request.
type chunkRecorder struct {
	r      io.Reader
	reads  int
	maxReq int
}

func (c *chunkRecorder) Read(p []byte) (int, error) {
	c.reads++
	if len(p) > c.maxReq {
		c.maxReq = len(p)
	}
	return c.r.Read(p)
}

// TestV1DecodeStreamsInChunks pins the decode-during-read fix: the raw
// (v1) decoder must consume its input incrementally — bounded chunk
// requests, many of them — rather than one file-sized read per stream,
// so on the aio path a shard's decode overlaps its own in-flight read.
// It also pins that per-chunk validation still reports the exact edge
// index of a range violation, like the old decode-then-validate pass.
func TestV1DecodeStreamsInChunks(t *testing.T) {
	const n = 1 << 16
	// Several full chunks per stream plus a ragged tail.
	count := int64(3*(v1DecodeChunkBytes/vidBytes) + 100)
	r := rand.New(rand.NewSource(7))
	src := make([]graph.VID, count)
	dst := make([]graph.VID, count)
	for i := range src {
		src[i] = graph.VID(r.Intn(n))
		dst[i] = graph.VID(r.Intn(n))
	}
	encode := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, src); err != nil {
			t.Fatal(err)
		}
		if err := binary.Write(&buf, binary.LittleEndian, dst); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	cr := &chunkRecorder{r: encode()}
	c, err := decodeShardV1(cr, "test-shard", n, 0, graph.VID(n), count)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if c.Src[i] != src[i] || c.Dst[i] != dst[i] {
			t.Fatalf("edge %d decoded as (%d,%d), want (%d,%d)", i, c.Src[i], c.Dst[i], src[i], dst[i])
		}
	}
	if cr.maxReq > v1DecodeChunkBytes {
		t.Fatalf("decoder requested %d bytes in a single read, cap is %d — the whole-array read is back",
			cr.maxReq, v1DecodeChunkBytes)
	}
	if want := 2 * int(count) * vidBytes / v1DecodeChunkBytes; cr.reads < want {
		t.Fatalf("decoder issued %d reads over %d chunks of data — not consuming incrementally", cr.reads, want)
	}

	// A violation deep in a later chunk still names its exact edge.
	const bad = 40000
	dst[bad] = graph.VID(n + 5) // outside [lo, hi)
	_, err = decodeShardV1(encode(), "test-shard", n, 0, graph.VID(n), count)
	var re *VIDRangeError
	if !errors.As(err, &re) {
		t.Fatalf("out-of-range destination decoded without a *VIDRangeError (err = %v)", err)
	}
	if re.Edge != bad || re.Field != "destination" {
		t.Fatalf("range error names edge %d field %q, want %d %q", re.Edge, re.Field, bad, "destination")
	}
}
