//go:build linux && aio_direct

package aio

import (
	"os"
	"syscall"
)

// posixFadvRandom is POSIX_FADV_RANDOM: tell the kernel the file will
// be read in a non-sequential pattern, which disables readahead.
const posixFadvRandom = 1

// Open opens a shard file for the uncached fast path: cold shard
// sweeps touch each byte exactly once, so kernel readahead beyond the
// streaming decoder's own reads is wasted bandwidth that competes with
// the other IODepth-1 reads in flight. Readahead is disabled with
// posix_fadvise(POSIX_FADV_RANDOM); the advice is best-effort, so a
// filesystem that rejects it (or a kernel without fadvise) silently
// falls back to default readahead rather than failing the sweep.
//
// A full O_DIRECT path is the next step behind this same build tag:
// it additionally requires logical-block-aligned buffers and offsets,
// which the streaming v2 decoder does not guarantee yet, so for now
// the fast path only drops readahead.
func Open(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, posixFadvRandom, 0, 0)
	return f, nil
}
