package locality

import (
	"repro/internal/graph"
	"repro/internal/hilbert"
)

// MPKI estimation (Figure 8). The paper reads hardware LLC-miss counters;
// we replay the traversal's access stream through the cache simulator and
// scale misses by a fixed instruction model. The instruction constants
// only scale the curves — the figure's content is the *trend* of misses
// with partition count, which comes entirely from the simulated trace.

// Instruction-cost model: instructions executed per modelled memory
// access region. Graph analytics does very little arithmetic per edge, so
// a handful of instructions per access matches the paper's "MPKI values
// are high" observation.
const instrPerAccess = 3.0

// MPKIResult is one point of a Figure 8 series.
type MPKIResult struct {
	Partitions int
	Misses     int64
	Accesses   int64
	MPKI       float64
}

// MeasureMPKI replays one iteration of the given traversal kind at each
// partition count and returns the simulated MPKI curve.
func MeasureMPKI(g *graph.Graph, kinds EdgeTraversalKind, activeEvery int, partitions []int, cfg CacheConfig) []MPKIResult {
	out := make([]MPKIResult, 0, len(partitions))
	for _, p := range partitions {
		cache := NewCache(cfg)
		ReplayEdgeTraversal(g, p, kinds, activeEvery, hilbert.BySource, ConsumerFunc(func(a uint64) { cache.Access(a) }))
		instr := float64(cache.Accesses()) * instrPerAccess
		out = append(out, MPKIResult{
			Partitions: p,
			Misses:     cache.Misses(),
			Accesses:   cache.Accesses(),
			MPKI:       float64(cache.Misses()) / (instr / 1000),
		})
	}
	return out
}

// ReuseCurve runs the Figure 2 experiment: the reuse-distance histogram
// of next-frontier updates at each partition count.
func ReuseCurve(g *graph.Graph, partitions []int) map[int]Histogram {
	out := make(map[int]Histogram, len(partitions))
	for _, p := range partitions {
		ra := NewReuseAnalyzer(int(g.NumEdges()))
		ReplayNextFrontierCOO(g, p, ConsumerFunc(func(a uint64) { ra.Access(a) }))
		out[p] = ra.Histogram()
	}
	return out
}
