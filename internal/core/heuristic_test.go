package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

func TestHeuristicPartitionsScalesWithGraph(t *testing.T) {
	small := gen.Chain(1 << 10)
	big := gen.Chain(1 << 21)
	cfg := HeuristicConfig{Threads: 8, Topology: sched.Topology{Domains: 4}}
	ps := HeuristicPartitions(small, cfg)
	pb := HeuristicPartitions(big, cfg)
	if pb <= ps {
		t.Fatalf("bigger graph got fewer partitions: %d vs %d", pb, ps)
	}
}

func TestHeuristicRespectsFloorAndCap(t *testing.T) {
	cfg := HeuristicConfig{Threads: 16, Topology: sched.Topology{Domains: 4}}
	// Tiny graph: floor at one partition per thread, domain-rounded.
	p := HeuristicPartitions(gen.Chain(64), cfg)
	if p < 16 || p%4 != 0 {
		t.Fatalf("floor violated: %d", p)
	}
	// Huge vertex count with a tiny cache budget: capped at 480.
	cfg.CacheBytes = 1 << 10
	p = HeuristicPartitions(gen.Chain(1<<20), cfg)
	if p > 480 || p%4 != 0 {
		t.Fatalf("cap violated: %d", p)
	}
}

func TestHeuristicPerPartitionFootprint(t *testing.T) {
	g := gen.Chain(1 << 18)
	cfg := HeuristicConfig{CacheBytes: 64 << 10, BytesPerVertex: 8,
		Threads: 4, Topology: sched.Topology{Domains: 4}}
	p := HeuristicPartitions(g, cfg)
	perPart := int64(g.NumVertices()) * 8 / int64(p)
	if perPart > 64<<10 {
		t.Fatalf("per-partition footprint %d exceeds cache budget", perPart)
	}
}

func TestNewEngineAuto(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngineAuto(g, Options{Threads: 4})
	if e.Options().Partitions < 4 {
		t.Fatalf("auto engine partitions = %d", e.Options().Partitions)
	}
	// Explicit partitions win over the heuristic.
	e2 := NewEngineAuto(g, Options{Partitions: 8, Threads: 4})
	if e2.Options().Partitions != 8 {
		t.Fatalf("explicit partitions overridden: %d", e2.Options().Partitions)
	}
	var _ *graph.Graph = e.Graph()
}
