package locality

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sched"
)

func TestNUMANextAccessesAlwaysLocal(t *testing.T) {
	// The defining property of partitioning-by-destination under the
	// modelled placement: zero remote next-array updates, at any P.
	g := gen.TinySocial()
	for _, p := range []int{4, 16, 64} {
		tr := MeasureNUMATraffic(g, p, sched.Topology{Domains: 4})
		if tr.RemoteNext != 0 {
			t.Fatalf("P=%d: %d remote next-array accesses, want 0", p, tr.RemoteNext)
		}
		if tr.LocalNext != g.NumEdges() {
			t.Fatalf("P=%d: local next accesses %d, want %d", p, tr.LocalNext, g.NumEdges())
		}
	}
}

func TestNUMACurReadsMostlyRemote(t *testing.T) {
	// Current-array reads hit all domains; with D=4 and hash-like
	// structure roughly 3/4 are remote.
	g := gen.TinySocial()
	tr := MeasureNUMATraffic(g, 16, sched.Topology{Domains: 4})
	frac := float64(tr.RemoteCur) / float64(tr.LocalCur+tr.RemoteCur)
	if frac < 0.4 || frac > 0.95 {
		t.Fatalf("remote cur fraction %.2f implausible for 4 domains", frac)
	}
	if tr.LocalShare <= 0.5 {
		t.Fatalf("local share %.2f should exceed 1/2 (all next accesses local)", tr.LocalShare)
	}
}

func TestNUMADomainLoadsBalanced(t *testing.T) {
	g := gen.Preset("livejournal-sm")
	tr := MeasureNUMATraffic(g, 48, sched.Topology{Domains: 4})
	var min, max int64 = 1 << 62, 0
	var sum int64
	for _, l := range tr.DomainLoads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	if sum != g.NumEdges() {
		t.Fatalf("domain loads sum %d, want %d", sum, g.NumEdges())
	}
	if float64(max) > 1.5*float64(min) {
		t.Fatalf("domain imbalance: min %d max %d", min, max)
	}
}

func TestNUMASingleDomainAllLocal(t *testing.T) {
	g := gen.TinySocial()
	tr := MeasureNUMATraffic(g, 8, sched.Topology{Domains: 1})
	if tr.RemoteCur != 0 || tr.RemoteNext != 0 || tr.LocalShare != 1 {
		t.Fatalf("single domain should be fully local: %+v", tr)
	}
}
