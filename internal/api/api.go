// Package api defines the engine-neutral programming interface shared by
// the GraphGrind-v2 engine (internal/core) and the Ligra / Polymer /
// GraphGrind-v1 baselines: the EdgeMap operator contract and the System
// interface the algorithms in internal/algorithms are written against.
//
// The interface is deliberately Ligra-shaped (the paper's framework "is
// fully compatible with the Ligra API"). The one divergence the paper
// introduces is that GraphGrind-v2 ignores the programmer's traversal
// direction hint: Algorithm 2 decides from frontier density instead.
package api

import (
	"repro/internal/frontier"
	"repro/internal/graph"
)

// EdgeOp is the per-edge operator passed to EdgeMap.
//
// Update is invoked when the engine guarantees the destination is written
// by exactly one goroutine (backward CSC ranges, per-partition COO); it
// may use plain loads/stores. UpdateAtomic is invoked on paths where
// multiple workers may target the same destination (forward CSR) and must
// synchronise, typically with CAS. Both return true when the destination
// value changed and the destination should join the next frontier.
//
// Cond filters destinations before edges are applied (e.g. "parent not
// yet set" for BFS); traversals skip or early-exit a destination whose
// Cond is false. A nil Cond means "always true".
type EdgeOp struct {
	Update       func(src, dst graph.VID) bool
	UpdateAtomic func(src, dst graph.VID) bool
	Cond         func(dst graph.VID) bool
}

// CondOf returns the operator's condition, defaulting to always-true.
func (op EdgeOp) CondOf() func(graph.VID) bool {
	if op.Cond != nil {
		return op.Cond
	}
	return func(graph.VID) bool { return true }
}

// Direction is the traversal-direction hint that Ligra-era systems
// require the programmer to supply (Table II). GraphGrind-v2 ignores it.
type Direction int

const (
	// DirAuto lets the engine decide (only GG-v2 honours density-based
	// auto selection; baselines treat it as forward).
	DirAuto Direction = iota
	// DirForward requests traversal over out-edges of active vertices.
	DirForward
	// DirBackward requests traversal over in-edges of condition-passing
	// destinations.
	DirBackward
)

func (d Direction) String() string {
	switch d {
	case DirForward:
		return "forward"
	case DirBackward:
		return "backward"
	default:
		return "auto"
	}
}

// System is the engine interface the algorithms run on.
type System interface {
	// Name identifies the engine in experiment output ("L", "P",
	// "GG-v1", "GG-v2").
	Name() string
	// Graph returns the underlying graph.
	Graph() *graph.Graph
	// EdgeMap applies op over the active edges of f and returns the new
	// frontier (vertices whose update returned true, deduplicated).
	EdgeMap(f *frontier.Frontier, op EdgeOp, dir Direction) *frontier.Frontier
	// VertexMap applies fn to every active vertex of f in parallel.
	VertexMap(f *frontier.Frontier, fn func(v graph.VID))
	// VertexFilter returns the sub-frontier of f where pred holds.
	VertexFilter(f *frontier.Frontier, pred func(v graph.VID) bool) *frontier.Frontier
	// Threads returns the engine's parallelism (algorithms use it to
	// size per-worker scratch).
	Threads() int
}
