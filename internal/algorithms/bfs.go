package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// BFSResult holds the parent array of a breadth-first search; Parents[v]
// is -1 for unreached vertices and v's BFS parent otherwise (the source
// is its own parent). Rounds is the number of EdgeMap iterations.
type BFSResult struct {
	Parents []int32
	Rounds  int
}

// BFS runs breadth-first search from src. Table II classifies BFS as a
// vertex-oriented algorithm with a backward dense-traversal preference,
// which is the hint passed to baseline engines; GraphGrind-v2 ignores it.
func BFS(sys api.System, src graph.VID) BFSResult {
	g := sys.Graph()
	n := g.NumVertices()
	parents := NewI32s(n, -1)
	parents.Set(src, int32(src))

	op := api.EdgeOp{
		Cond: func(v graph.VID) bool { return parents.Get(v) < 0 },
		Update: func(u, v graph.VID) bool {
			return parents.CompareAndSet(v, -1, int32(u))
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return parents.AtomicCompareAndSet(v, -1, int32(u))
		},
	}

	f := frontier.FromVertex(g, src)
	rounds := 0
	for !f.IsEmpty() {
		f = sys.EdgeMap(f, op, api.DirBackward)
		rounds++
	}
	return BFSResult{Parents: parents.Slice(), Rounds: rounds}
}

// BFSDepths converts a parent array into hop counts from the source (-1
// when unreached), used by tests to compare against the serial oracle
// (parent arrays themselves are not unique).
func BFSDepths(g *graph.Graph, parents []int32, src graph.VID) []int32 {
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	// Parents form a forest rooted at src; walk each chain memoising.
	var walk func(v graph.VID) int32
	walk = func(v graph.VID) int32 {
		if depth[v] >= 0 {
			return depth[v]
		}
		p := parents[v]
		if p < 0 {
			return -1
		}
		d := walk(graph.VID(p))
		if d < 0 {
			return -1
		}
		depth[v] = d + 1
		return depth[v]
	}
	for v := 0; v < n; v++ {
		if parents[v] >= 0 {
			walk(graph.VID(v))
		}
	}
	return depth
}
