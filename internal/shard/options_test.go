package shard

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestOptionsNormalizeRejections: every negative knob and every
// contradictory combination is rejected with a typed *OptionsError
// naming the offending field — construction-time validation, not a
// mid-sweep surprise.
func TestOptionsNormalizeRejections(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative-threads", Options{Threads: -1}, "Threads"},
		{"negative-cacheshards", Options{CacheShards: -2}, "CacheShards"},
		{"negative-sparsediv", Options{SparseDiv: -1}, "SparseDiv"},
		{"negative-window", Options{Window: -4}, "Window"},
		{"negative-iodepth", Options{IODepth: -1}, "IODepth"},
		{"negative-domains", Options{Topology: sched.Topology{Domains: -3}}, "Topology.Domains"},
		{"iodepth-exceeds-budget", Options{CacheShards: 4, IODepth: 5}, "IODepth"},
		{"iodepth-under-noprefetch", Options{NoPrefetch: true, IODepth: 2}, "IODepth"},
		{"window-narrower-than-iodepth", Options{CacheShards: 8, Window: 2, IODepth: 4}, "Window"},
		{"negative-sweepmode", Options{SweepMode: -1}, "SweepMode"},
		{"unknown-sweepmode", Options{SweepMode: 7}, "SweepMode"},
		{"scattergather-under-noprefetch", Options{NoPrefetch: true, SweepMode: SweepScatterGather}, "SweepMode"},
		{"scattergather-iodepth-exceeds-budget", Options{SweepMode: SweepScatterGather, CacheShards: 2, IODepth: 3}, "IODepth"},
		{"scattergather-window-under-iodepth", Options{SweepMode: SweepScatterGather, CacheShards: 8, Window: 1, IODepth: 2}, "Window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.opts.normalize()
			if err == nil {
				t.Fatalf("normalize(%+v) accepted an invalid configuration", tc.opts)
			}
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("normalize returned %T (%v), want *OptionsError", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("error names field %q, want %q (%v)", oe.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), "shard: invalid Options."+tc.field) {
				t.Fatalf("error text %q lacks the canonical prefix", err)
			}
		})
	}
}

// TestOptionsNormalizeDefaults pins the zero-value construction idiom
// and the documented monotone adjustments: zeros select defaults,
// Window defaults to max(Domains, IODepth) and is clamped down to the
// LRU budget, and a valid IODepth survives untouched.
func TestOptionsNormalizeDefaults(t *testing.T) {
	cases := []struct {
		name            string
		in              Options
		iodepth, window int
		cacheShards     int
	}{
		{"all-zero", Options{}, 1, sched.DefaultTopology().Domains, DefaultCacheShards},
		{"window-clamped-to-budget", Options{CacheShards: 3, Window: 5}, 1, 3, 3},
		{"window-defaults-to-iodepth", Options{CacheShards: 6, IODepth: 3, Topology: sched.Topology{Domains: 2}}, 3, 3, 6},
		{"window-defaults-to-domains", Options{CacheShards: 8, IODepth: 2}, 2, sched.DefaultTopology().Domains, 8},
		{"explicit-survives", Options{CacheShards: 4, Window: 4, IODepth: 2}, 2, 4, 4},
		{"default-window-clamped", Options{CacheShards: 2, IODepth: 2, Topology: sched.Topology{Domains: 8}}, 2, 2, 2},
		// Scatter/gather inherits the same window/IODepth resolution —
		// the mode changes the apply, not the staging pipeline.
		{"scattergather-all-defaults", Options{SweepMode: SweepScatterGather}, 1, sched.DefaultTopology().Domains, DefaultCacheShards},
		{"scattergather-iodepth-survives", Options{SweepMode: SweepScatterGather, CacheShards: 6, IODepth: 3, Topology: sched.Topology{Domains: 2}}, 3, 3, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.in.normalize()
			if err != nil {
				t.Fatalf("normalize(%+v): %v", tc.in, err)
			}
			if got.IODepth != tc.iodepth || got.Window != tc.window || got.CacheShards != tc.cacheShards {
				t.Fatalf("normalize(%+v) = IODepth %d, Window %d, CacheShards %d; want %d, %d, %d",
					tc.in, got.IODepth, got.Window, got.CacheShards, tc.iodepth, tc.window, tc.cacheShards)
			}
			if got.Window < got.IODepth {
				t.Fatalf("normalized Window %d < IODepth %d: downstream code relies on this never happening", got.Window, got.IODepth)
			}
		})
	}
}
