package gio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.TinySocial()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, g2)
}

func TestEdgeListCommentsAndBlanks(t *testing.T) {
	in := `# a comment
% another comment

0 1
1 2

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeListMinVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("n = %d, want 10", g.NumVertices())
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",      // too few fields
		"a b\n",    // non-numeric
		"0 -1\n",   // negative
		"0 99e9\n", // not an integer
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestAdjacencyGraphRoundTrip(t *testing.T) {
	g := gen.TinySocial()
	var buf bytes.Buffer
	if err := WriteAdjacencyGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadAdjacencyGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, g2)
}

func TestAdjacencyGraphLigraExample(t *testing.T) {
	// The 3-vertex example from Ligra's README.
	in := "AdjacencyGraph\n3\n4\n0\n1\n2\n1\n2\n0\n2\n"
	g, err := ReadAdjacencyGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Fatalf("got %d/%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.OutNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("neighbours of 0: %v", got)
	}
	if got := g.OutNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("neighbours of 2: %v", got)
	}
}

func TestAdjacencyGraphErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":     "NotAGraph\n1\n0\n0\n",
		"truncated":      "AdjacencyGraph\n3\n4\n0\n1\n",
		"bad offset":     "AdjacencyGraph\n2\n1\n0\nx\n0\n",
		"target range":   "AdjacencyGraph\n1\n1\n0\n7\n",
		"negative sizes": "AdjacencyGraph\n-1\n0\n",
		"non-monotone":   "AdjacencyGraph\n2\n2\n2\n0\n0\n0\n",
	}
	for name, in := range cases {
		if _, err := ReadAdjacencyGraph(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{gen.TinySocial(), gen.Chain(5), graph.FromEdges(3, nil)} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, g, g2)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("hello world, not a graph"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Corrupt the magic of a valid stream.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.Chain(4)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.TinySocial()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{8, 31, len(b) / 2, len(b) - 1} {
		if _, err := ReadBinary(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCrossFormatAgreement(t *testing.T) {
	// The same graph written in all three formats must read back equal.
	g := gen.TinyRoad()
	var el, adj, bin bytes.Buffer
	if err := WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteAdjacencyGraph(&adj, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g1, err := ReadEdgeList(&el, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadAdjacencyGraph(&adj)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g1, g2)
	sameGraph(t, g2, g3)
}

func TestWeightedEdgeList(t *testing.T) {
	g := gen.Chain(4)
	var buf bytes.Buffer
	if err := WriteWeightedEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "weighted") {
		t.Fatal("missing weighted header")
	}
	// Three edges, three weight columns parseable as floats in (0,1].
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		var u, v int
		var w float64
		if _, err := fmt.Sscanf(l, "%d %d %g", &u, &v, &w); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		if w <= 0 || w > 1 {
			t.Fatalf("weight %v out of range", w)
		}
		if float32(w) != graph.WeightOf(graph.VID(u), graph.VID(v)) {
			t.Fatalf("weight mismatch on (%d,%d)", u, v)
		}
	}
	// The ordinary reader still accepts the file (ignoring weights).
	g2, err := ReadEdgeList(strings.NewReader(out), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("weighted file not readable as plain edge list")
	}
}
