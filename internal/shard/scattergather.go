package shard

// Partition-centric two-phase sweeps (Options.SweepMode =
// SweepScatterGather): the PCPM design — Lakhotia et al., "Accelerating
// PageRank using Partition-Centric Processing" — mapped onto the
// store's locality partitions. A dense sweep splits into:
//
//   scatter — each staged shard's edges are streamed exactly once and
//   re-encoded into a compact per-shard bin of (dstOffset, src) pairs:
//   pure sequential appends, one segment per destination sub-range
//   bucket, on the shard's own NUMA domain, so no scatter ever writes
//   across domains. Shards flow through the same ordered, windowed,
//   IODepth-bounded staging pipeline as an edge-centric sweep.
//
//   gather — after the window barrier, each domain replays only its own
//   bins into its 64-aligned destination ranges: pure sequential reads,
//   no atomics. Segments mirror the resident's bucket boundaries, so
//   gather's parallel replay writes the same disjoint destination
//   sub-ranges in the same per-destination order as the edge-centric
//   apply — bit-identical by the same disjointness argument that makes
//   the concurrent in-place apply safe.
//
// Bins encode the full shard (the frontier filter moves to gather, and
// the operator's Cond/Update run only there, where destination state
// mutates), which makes them operator- and frontier-independent: bins
// are retained in the host-shared bin cache, and later dense sweeps
// replay them without touching the plan, the LRU, or the disk. That
// retention is the mode's win condition — on an iterative dense
// algorithm the edges are read from disk once and every further
// iteration moves only ~3 bin bytes per edge from memory, versus the
// edge-centric path re-reading (or re-decoding from the LRU) the
// shards each sweep. With Options.BinBudgetBytes set the cache bounds
// that footprint: cold bins spill to files next to the store and
// replay with one sequential read; a fully evicted or corrupt spilled
// bin just re-scatters (see bincache.go).

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// SweepMode selects the dense-sweep strategy; see Options.SweepMode.
type SweepMode int

const (
	// SweepEdgeCentric applies each staged shard in place — the
	// historical path and the differential baseline.
	SweepEdgeCentric SweepMode = iota
	// SweepScatterGather runs dense sweeps as scatter (stream edges
	// once, append per-shard update bins) then gather (each domain
	// replays its own bins), retaining bins across sweeps.
	SweepScatterGather
)

func (m SweepMode) valid() bool { return m >= SweepEdgeCentric && m <= SweepScatterGather }

func (m SweepMode) String() string {
	switch m {
	case SweepEdgeCentric:
		return "edge-centric"
	case SweepScatterGather:
		return "scatter-gather"
	}
	return fmt.Sprintf("SweepMode(%d)", int(m))
}

// SweepModes returns every valid mode, for ablation loops.
func SweepModes() []SweepMode { return []SweepMode{SweepEdgeCentric, SweepScatterGather} }

// ParseSweepMode parses a mode name as printed by SweepMode.String —
// the -sweepmode flag surface.
func ParseSweepMode(s string) (SweepMode, error) {
	for _, m := range SweepModes() {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("shard: unknown sweep mode %q (have edge-centric, scatter-gather)", s)
}

// binShard is one shard's scattered update bin: every (dstOffset, src)
// pair the shard contributes to its own destination range, delta-
// encoded as zigzag uvarints. Segment t holds bucket t's pairs in
// bucket order, so the segment set inherits the resident's disjoint
// 64-aligned destination sub-ranges. Deltas are signed (zigzag)
// because v1 buckets keep the shard file's source-major order, where
// destinations bounce around within the bucket; v2 buckets are
// (dst,src)-sorted and encode near-minimally either way.
type binShard struct {
	idx     int
	lo      graph.VID // destination-range base the offsets are relative to
	segs    [][]byte  // per-bucket encoded streams, bucket order preserved
	entries int64     // (dstOffset, src) pairs across all segments
	bytes   int64     // encoded bytes across all segments
}

// zigzag maps a signed delta onto the uvarint-friendly unsigned line
// (0,-1,1,-2,... -> 0,1,2,3,...); unzigzag inverts it.
func zigzag(x int64) uint64   { return uint64(x<<1) ^ uint64(x>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// sweepScatterGather runs one dense EdgeMap as scatter then gather.
// Every plan entry resolves its bin through the host-shared bin cache,
// pinned for the sweep's duration (a pinned bin is never evicted, so
// gather replays exactly what was resolved): a memory hit skips the
// fetch entirely, a spilled bin replays from its file with one
// sequential read, and the rest flow, order-planned, through the same
// staging window as an edge-centric sweep, with scatterShard standing
// in for the apply. The gather barrier then replays every planned bin,
// one goroutine per domain. Panics (operator, load failure) propagate
// exactly like the edge-centric path: scatter runs no operator code,
// so its only failures are load errors re-raised by wait; gather
// failures are re-raised verbatim after all gather goroutines join —
// and the deferred release below drops every pin either way, so an
// aborted sweep leaves no bin unevictable.
func (e *Engine) sweepScatterGather(f *frontier.Frontier, plan []int, cur *frontier.Bitmap, cond func(graph.VID) bool, op api.EdgeOp, next *frontier.Bitmap, accs []sweepAccum) {
	atomic.AddInt64(&e.stats.ScatterGatherSweeps, 1)
	// held[si] is plan entry si's pinned bin for this sweep. Slots are
	// written by the resolve loop below (sweep goroutine) or by the
	// concurrent scatter applies (distinct slots, one plan entry per
	// shard) and read only after wait's barrier — the same write-once
	// discipline the per-engine bin slices used.
	held := make([]*binShard, e.st.NumShards())
	releases := make([]func(), e.st.NumShards())
	defer func() {
		for _, rel := range releases {
			if rel != nil {
				rel()
			}
		}
	}()
	scatterPlan := make([]int, 0, len(plan))
	for _, si := range plan {
		if b, rel, ok := e.bins.acquire(si); ok {
			held[si], releases[si] = b, rel
			atomic.AddInt64(&e.stats.BinShardsReused, 1)
			continue
		}
		if e.bins.hasSpill(si) {
			lo, _ := e.st.Range(si)
			b, diskBytes, err := e.bins.loadSpill(si, lo)
			if err == nil {
				atomic.AddInt64(&e.stats.BinSpillReplays, 1)
				atomic.AddInt64(&e.stats.BinSpillBytesRead, diskBytes)
				e.admitBin(held, releases, b)
				continue
			}
			// A missing, truncated or corrupt spill file is never an
			// error and never a wrong result: drop it and re-scatter the
			// shard — the same recovery a fully evicted bin takes.
			e.bins.dropSpill(si)
		}
		scatterPlan = append(scatterPlan, si)
	}
	// Order-plan only the shards actually fetched: the planner's LRU
	// simulation stays exact (PlannedCacheHits still equals the
	// CacheHits the scatter then collects) because reused and replayed
	// bins never touch the cache.
	scatterPlan = e.orderPlan(scatterPlan)
	if len(scatterPlan) > 0 {
		w := e.startSweep(scatterPlan, func(sh *resident) {
			// A bin is valid the moment it is scattered — it is just the
			// shard re-encoded — so bins admitted before an aborted
			// sweep's failure point stay cached (pins dropped by the
			// deferred release); the failed shard's slot stays nil.
			e.admitBin(held, releases, e.scatterShard(sh))
		})
		defer w.stop()
		w.wait()
	}
	// A complete frontier admits every edge, so gather can skip the
	// per-edge frontier test (cur is all-ones); incomplete dense
	// frontiers filter at replay time — the same test, the same edge
	// order, just deferred from the edge-centric apply loop.
	needCur := f.Count() != int64(e.g.NumVertices())
	e.gatherPlan(plan, held, needCur, cur, cond, op, next, accs)
}

// admitBin offers a freshly scattered or spill-replayed bin to the bin
// cache, pinned, and records the canonical bin (another session may
// have raced the insert with an identical one) plus its release in
// this sweep's slots. A refused insert — the budget could not cover
// the bytes even after evicting every cold unpinned bin — still
// gathers: the bin is used transient and was spilled by the cache, so
// the next sweep replays it from disk instead of re-scattering.
func (e *Engine) admitBin(held []*binShard, releases []func(), b *binShard) {
	bin, rel, evicted, spilledBytes := e.bins.put(b)
	held[b.idx], releases[b.idx] = bin, rel
	if evicted > 0 {
		atomic.AddInt64(&e.stats.BinShardsEvicted, evicted)
	}
	if spilledBytes > 0 {
		atomic.AddInt64(&e.stats.BinBytesSpilled, spilledBytes)
	}
}

// scatterShard encodes one resident shard into its bin on the shard's
// owning domain, one worker task per bucket — the scatter phase's only
// work. It runs as the staging window's "apply" (on the domain's apply
// goroutine), so it keeps the same occupancy bookkeeping and hooks as
// applyShard; DomainShards/DomainEdges are charged at gather, the
// phase that performs the edge work.
func (e *Engine) scatterShard(sh *resident) *binShard {
	si := sh.idx
	dom := e.domainOf[si]
	lo, _ := e.st.Range(si)
	level := atomic.AddInt32(&e.applying, 1)
	// Deferred for the same reason as applyShard: a panic below (none
	// today — scatter runs no operator code) must not wedge the count.
	defer atomic.AddInt32(&e.applying, -1)
	if l := int(level) - 1; l >= 0 && l < len(e.stats.ApplyLevels) {
		atomic.AddInt64(&e.stats.ApplyLevels[l], 1)
	}
	for {
		peak := atomic.LoadInt64(&e.stats.ConcurrentApplyPeak)
		if int64(level) <= peak ||
			atomic.CompareAndSwapInt64(&e.stats.ConcurrentApplyPeak, peak, int64(level)) {
			break
		}
	}
	if e.onApplyBegin != nil {
		e.onApplyBegin(si)
	}
	tasks := len(sh.off) - 1
	b := &binShard{idx: si, lo: lo, segs: make([][]byte, tasks)}
	e.domains[dom].ParallelTasks(tasks, func(task, _ int) {
		src := sh.src[sh.off[task]:sh.off[task+1]]
		dst := sh.dst[sh.off[task]:sh.off[task+1]]
		// Typical pairs cost ~3 bytes (small deltas both streams).
		buf := make([]byte, 0, 3*len(src)+8)
		var tmp [binary.MaxVarintLen64]byte
		var prevD, prevS int64
		for i := range src {
			d, s := int64(dst[i]-lo), int64(src[i])
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], zigzag(d-prevD))]...)
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], zigzag(s-prevS))]...)
			prevD, prevS = d, s
		}
		b.segs[task] = buf
	})
	for t := range b.segs {
		b.bytes += int64(len(b.segs[t]))
	}
	b.entries = int64(len(sh.src))
	atomic.AddInt64(&e.stats.BinBytesWritten, b.bytes)
	if e.onApplyEnd != nil {
		e.onApplyEnd(si)
	}
	return b
}

// gatherPlan replays every planned shard's bin, one goroutine per
// modelled NUMA domain over that domain's own bins in plan order — the
// phase-level barrier mirroring the window's applyLoop/fail/wait
// discipline: the first failure wins, remaining domains stop at their
// next bin boundary, every goroutine joins before the panic is
// re-raised verbatim on the sweep goroutine, so no gather goroutine
// outlives its EdgeMap and a panicking operator tears down cleanly.
func (e *Engine) gatherPlan(plan []int, held []*binShard, needCur bool, cur *frontier.Bitmap, cond func(graph.VID) bool, op api.EdgeOp, next *frontier.Bitmap, accs []sweepAccum) {
	perDomain := make([][]*binShard, len(e.domains))
	for _, si := range plan {
		b := held[si]
		if b == nil {
			// Unreachable: every plan entry was either reused or just
			// scattered (an aborted scatter panics before gather runs).
			panic(fmt.Sprintf("shard: engine sweep: shard %d has no scatter bin", si))
		}
		perDomain[e.domainOf[si]] = append(perDomain[e.domainOf[si]], b)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		cause   any
		aborted int32
	)
	for d := range perDomain {
		if len(perDomain[d]) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int, bins []*binShard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					atomic.StoreInt32(&aborted, 1)
					mu.Lock()
					if cause == nil {
						cause = r
					}
					mu.Unlock()
				}
			}()
			for _, b := range bins {
				if atomic.LoadInt32(&aborted) != 0 {
					return
				}
				e.gatherBin(d, b, needCur, cur, cond, op, next, accs)
			}
		}(d, perDomain[d])
	}
	wg.Wait()
	if cause != nil {
		panic(cause)
	}
}

// gatherBin replays one bin on its domain's workers, one task per
// segment. Segments are the resident's buckets, so every destination
// (and every next-frontier bitmap word) is written by exactly one
// worker, per-destination order is bucket order, and the non-atomic
// Update path is safe — exactly applyShard's contract, with the edges
// decoded from the bin instead of the resident.
func (e *Engine) gatherBin(dom int, b *binShard, needCur bool, cur *frontier.Bitmap, cond func(graph.VID) bool, op api.EdgeOp, next *frontier.Bitmap, accs []sweepAccum) {
	atomic.AddInt64(&e.stats.DomainShards[dom], 1)
	atomic.AddInt64(&e.stats.DomainEdges[dom], b.entries)
	atomic.AddInt64(&e.stats.BinBytesRead, b.bytes)
	level := atomic.AddInt32(&e.applying, 1)
	defer atomic.AddInt32(&e.applying, -1)
	if l := int(level) - 1; l >= 0 && l < len(e.stats.ApplyLevels) {
		atomic.AddInt64(&e.stats.ApplyLevels[l], 1)
	}
	for {
		peak := atomic.LoadInt64(&e.stats.ConcurrentApplyPeak)
		if int64(level) <= peak ||
			atomic.CompareAndSwapInt64(&e.stats.ConcurrentApplyPeak, peak, int64(level)) {
			break
		}
	}
	mine := accs[dom*e.pool.Threads() : (dom+1)*e.pool.Threads()]
	e.domains[dom].ParallelTasks(len(b.segs), func(task, worker int) {
		a := &mine[worker]
		seg := b.segs[task]
		var prevD, prevS int64
		for pos := 0; pos < len(seg); {
			du, n := binary.Uvarint(seg[pos:])
			if n <= 0 {
				panic("shard: corrupt scatter bin (destination delta)")
			}
			pos += n
			su, n := binary.Uvarint(seg[pos:])
			if n <= 0 {
				panic("shard: corrupt scatter bin (source delta)")
			}
			pos += n
			prevD += unzigzag(du)
			prevS += unzigzag(su)
			u, v := graph.VID(prevS), b.lo+graph.VID(prevD)
			if needCur && !cur.Get(u) {
				continue
			}
			if !cond(v) {
				continue
			}
			if op.Update(u, v) && !next.Get(v) {
				next.Set(v)
				a.count++
				a.outDeg += e.g.OutDegree(v)
			}
		}
	})
}
