package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// ColoringResult holds a proper vertex colouring (no edge joins two
// vertices of the same colour on a symmetric graph).
type ColoringResult struct {
	Colors    []int32
	NumColors int32
	Rounds    int
}

// Coloring computes a proper colouring by iterated MIS (the Luby/Jones-
// Plassmann connection): each MIS of the still-uncoloured subgraph
// receives the next colour. The colour count is at most the graph
// degeneracy + 1 in expectation for random priorities; the point here is
// exercising repeated frontier-restricted MIS rounds through the engine,
// not optimal colouring. Intended for symmetric graphs.
func Coloring(sys api.System) ColoringResult {
	g := sys.Graph()
	n := g.NumVertices()
	colors := NewI32s(n, -1)

	res := ColoringResult{}
	remaining := int64(n)
	for color := int32(0); remaining > 0; color++ {
		// MIS over the uncoloured subgraph: reuse the MIS machinery but
		// restrict every step to uncoloured vertices.
		set := misOnSubgraph(sys, func(v graph.VID) bool { return colors.Get(v) < 0 })
		var colored int64
		for v := 0; v < n; v++ {
			if set[v] {
				colors.Set(graph.VID(v), color)
				colored++
			}
		}
		if colored == 0 {
			panic("algorithms: Coloring made no progress") // MIS of a non-empty graph is non-empty
		}
		remaining -= colored
		res.NumColors = color + 1
		res.Rounds++
		if res.Rounds > n+1 {
			panic("algorithms: Coloring failed to converge")
		}
	}
	res.Colors = colors.Slice()
	return res
}

// misOnSubgraph runs one Luby MIS restricted to vertices where live(v)
// holds, ignoring edges to non-live vertices.
func misOnSubgraph(sys api.System, live func(graph.VID) bool) []bool {
	g := sys.Graph()
	n := g.NumVertices()
	const (
		undecided int32 = 0
		inSet     int32 = 1
		outOfSet  int32 = 2
	)
	state := NewI32s(n, undecided)
	blocked := NewI32s(n, 0)

	mark := api.EdgeOp{
		Cond: func(v graph.VID) bool { return live(v) && state.Get(v) == undecided },
		Update: func(u, v graph.VID) bool {
			if live(u) && state.Get(u) == undecided && misPriority(u) < misPriority(v) {
				blocked.Set(v, 1)
			}
			return false
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			if live(u) && state.Get(u) == undecided && misPriority(u) < misPriority(v) {
				blocked.Set(v, 1)
			}
			return false
		},
	}
	exclude := api.EdgeOp{
		Cond: func(v graph.VID) bool { return live(v) && state.Get(v) == undecided },
		Update: func(u, v graph.VID) bool {
			return state.CompareAndSet(v, undecided, outOfSet)
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return state.AtomicCompareAndSet(v, undecided, outOfSet)
		},
	}

	all := sys.VertexFilter(frontier.All(g), func(v graph.VID) bool { return live(v) })
	undecidedF := all
	guard := 0
	for !undecidedF.IsEmpty() {
		sys.VertexMap(undecidedF, func(v graph.VID) { blocked.Set(v, 0) })
		sys.EdgeMap(undecidedF, mark, api.DirForward)
		winners := sys.VertexFilter(undecidedF, func(v graph.VID) bool {
			return state.Get(v) == undecided && blocked.Get(v) == 0
		})
		sys.VertexMap(winners, func(v graph.VID) { state.Set(v, inSet) })
		sys.EdgeMap(winners, exclude, api.DirForward)
		undecidedF = sys.VertexFilter(undecidedF, func(v graph.VID) bool {
			return state.Get(v) == undecided
		})
		if guard++; guard > n+1 {
			panic("algorithms: MIS subround failed to converge")
		}
	}
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		out[v] = state.Get(graph.VID(v)) == inSet
	}
	return out
}

// VerifyColoring checks properness on a symmetric graph: no edge joins
// equal colours and every vertex is coloured. Returns "" when valid.
func VerifyColoring(g *graph.Graph, colors []int32) string {
	for v := 0; v < g.NumVertices(); v++ {
		if colors[v] < 0 {
			return "uncoloured vertex"
		}
		for _, w := range g.OutNeighbors(graph.VID(v)) {
			if int(w) != v && colors[w] == colors[v] {
				return "monochromatic edge"
			}
		}
	}
	return ""
}
