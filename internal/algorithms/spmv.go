package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// SPMVResult holds y = Aᵀx where A's nonzeros are the graph's edges with
// the deterministic weights of graph.WeightOf (y[v] = Σ_{u→v} w(u,v)·x[u]).
type SPMVResult struct {
	Y []float64
}

// SPMV performs one sparse matrix-vector multiplication over the full
// edge set (Table II: edge-oriented, forward preference, 1 iteration).
// The input vector is x[u] = 1 + (u mod 7), a fixed pattern shared with
// the serial oracle.
func SPMV(sys api.System) SPMVResult {
	g := sys.Graph()
	n := g.NumVertices()
	y := NewF64s(n, 0)

	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			y.Add(v, float64(graph.WeightOf(u, v))*SPMVInput(u))
			return true
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			y.AtomicAdd(v, float64(graph.WeightOf(u, v))*SPMVInput(u))
			return true
		},
	}
	sys.EdgeMap(frontier.All(g), op, api.DirForward)
	return SPMVResult{Y: y.Slice()}
}

// SPMVInput is the fixed input vector element for u.
func SPMVInput(u graph.VID) float64 { return float64(1 + u%7) }
