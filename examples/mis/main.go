// MIS example: maximal independent set on a symmetric social graph,
// demonstrating that the framework's Ligra-compatible API runs classic
// applications beyond the paper's Table II set, and verifying the result
// structurally.
package main

import (
	"fmt"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/gen"
)

func main() {
	g := gen.Symmetrise(gen.PowerLaw(1<<14, 1<<18, 2.3, 5))
	fmt.Printf("graph: symmetric power-law, %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	eng := repro.NewEngineAuto(g, repro.Options{})
	fmt.Printf("engine: %d partitions (heuristic)\n", eng.Options().Partitions)

	res := algorithms.MIS(eng)
	size := 0
	for _, in := range res.InSet {
		if in {
			size++
		}
	}
	fmt.Printf("MIS: %d members (%.1f%% of vertices) in %d rounds\n",
		size, 100*float64(size)/float64(g.NumVertices()), res.Rounds)

	if msg := algorithms.VerifyMIS(g, res.InSet); msg != "" {
		panic("invalid MIS: " + msg)
	}
	fmt.Println("independence and maximality verified ✓")

	// Coreness of the same graph, for flavour.
	kc := algorithms.KCore(eng)
	fmt.Printf("graph degeneracy (max core): %d\n", kc.MaxCore)
}
