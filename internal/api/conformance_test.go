package api

import (
	"strings"
	"testing"

	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

// serialSystem is a minimal, obviously correct System used to validate
// the conformance checker itself: a serial backward sweep over the
// in-memory CSC. The fault knobs inject the contract violations the
// checker must detect.
type serialSystem struct {
	g    *graph.Graph
	pool *sched.Pool

	dropCondGate bool // apply edges even when Cond is false
	doubleApply  bool // apply every edge twice
	overActivate bool // put rejected destinations in the next frontier
}

func newSerialSystem(g *graph.Graph) *serialSystem {
	return &serialSystem{g: g, pool: sched.NewPool(1)}
}

func (s *serialSystem) Name() string        { return "serial" }
func (s *serialSystem) Graph() *graph.Graph { return s.g }
func (s *serialSystem) Threads() int        { return 1 }

func (s *serialSystem) EdgeMap(f *frontier.Frontier, op EdgeOp, _ Direction) *frontier.Frontier {
	n := s.g.NumVertices()
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(n)
	var count, outDeg int64
	for v := 0; v < n; v++ {
		dst := graph.VID(v)
		for _, u := range s.g.InNeighbors(dst) {
			if !cur.Get(u) {
				continue
			}
			if !cond(dst) && !s.dropCondGate {
				continue
			}
			changed := op.Update(u, dst)
			if s.doubleApply {
				op.Update(u, dst)
			}
			if (changed || s.overActivate) && !next.Get(dst) {
				next.Set(dst)
				count++
				outDeg += s.g.OutDegree(dst)
			}
		}
	}
	nf := frontier.FromBitmap(n, next)
	nf.SetStats(count, outDeg)
	return nf
}

func (s *serialSystem) VertexMap(f *frontier.Frontier, fn func(graph.VID)) {
	f.ForEach(fn)
}

func (s *serialSystem) VertexFilter(f *frontier.Frontier, pred func(graph.VID) bool) *frontier.Frontier {
	return VertexFilter(s.pool, s.g, f, pred)
}

func TestCheckSystemAcceptsCorrectSystem(t *testing.T) {
	for _, g := range []*graph.Graph{gen.TinySocial(), gen.Chain(70), gen.Star(65), graph.FromEdges(3, nil)} {
		if err := CheckSystem(newSerialSystem(g)); err != nil {
			t.Errorf("conformant system rejected: %v", err)
		}
	}
}

func TestCheckSystemCatchesViolations(t *testing.T) {
	g := gen.TinySocial()
	cases := []struct {
		name    string
		mutate  func(*serialSystem)
		keyword string // expected fragment of the error
	}{
		{"dropped Cond gate", func(s *serialSystem) { s.dropCondGate = true }, "Cond=false"},
		{"double application", func(s *serialSystem) { s.doubleApply = true }, "updates"},
		{"over-activation", func(s *serialSystem) { s.overActivate = true }, "frontier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSerialSystem(g)
			tc.mutate(sys)
			err := CheckSystem(sys)
			if err == nil {
				t.Fatalf("checker accepted a system with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.keyword) {
				t.Fatalf("error %q does not mention %q", err, tc.keyword)
			}
		})
	}
}
