package locality

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sched"
)

// NUMA traffic model. Go cannot pin pages, so the experiments cannot
// measure real cross-socket traffic; what they can do is count, for the
// modelled placement (§III.D: partition i's vertex slice lives on domain
// i mod D, and partition i is processed by a core of that domain), how
// many of a traversal's accesses would be domain-local. This quantifies
// the placement property Polymer and GraphGrind get from
// partitioning-by-destination: every next-array *update* is local by
// construction; only current-array *reads* cross domains.

// NUMATraffic summarises the locality of one dense COO iteration.
type NUMATraffic struct {
	LocalNext   int64 // next-array accesses to the worker's own domain
	RemoteNext  int64
	LocalCur    int64 // current-array reads from the worker's own domain
	RemoteCur   int64
	LocalShare  float64 // fraction of all vertex-array accesses that are local
	DomainLoads []int64 // edges processed per domain
}

// MeasureNUMATraffic walks the partitioned COO and classifies each
// vertex-array access as local or remote under the round-robin
// partition→domain placement — the placement shard.Engine uses for its
// sweeps (shard i's destination range lives on domain i mod D).
func MeasureNUMATraffic(g *graph.Graph, p int, topo sched.Topology) NUMATraffic {
	if topo.Domains <= 0 {
		topo = sched.DefaultTopology()
	}
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	return measureTraffic(g, pt, topo, func(v graph.VID) int {
		return topo.DomainOf(pt.Home(v))
	})
}

// MeasureNUMAPlacement generalises MeasureNUMATraffic to an arbitrary
// data placement: home(v) names the domain holding v's vertex-array
// slice, while computation keeps the round-robin discipline (partition
// i is processed by a core of domain i mod D). It exists to score
// placements against each other — e.g. the partition-aware placement
// versus an unplaced baseline that stripes vertex pages across domains
// with no regard for partition structure.
func MeasureNUMAPlacement(g *graph.Graph, p int, topo sched.Topology, home func(graph.VID) int) NUMATraffic {
	if topo.Domains <= 0 {
		topo = sched.DefaultTopology()
	}
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	return measureTraffic(g, pt, topo, home)
}

// measureTraffic runs one dense COO iteration under the modelled
// execution (partition i processed on domain i mod D) and classifies
// every vertex-array access by the data placement home.
func measureTraffic(g *graph.Graph, pt *partition.Partitioning, topo sched.Topology, home func(graph.VID) int) NUMATraffic {
	pcoo := partition.NewPCOO(g, pt)
	var t NUMATraffic
	t.DomainLoads = make([]int64, topo.Domains)
	for pi, part := range pcoo.Parts {
		dom := topo.DomainOf(pi)
		t.DomainLoads[dom] += part.NumEdges()
		for i := range part.Src {
			// Under the partition-aware placement the destination's home
			// partition is pi by construction, so the next-array access
			// is always local. Verified, not assumed: home() is consulted.
			if home(part.Dst[i]) == dom {
				t.LocalNext++
			} else {
				t.RemoteNext++
			}
			if home(part.Src[i]) == dom {
				t.LocalCur++
			} else {
				t.RemoteCur++
			}
		}
	}
	total := t.LocalNext + t.RemoteNext + t.LocalCur + t.RemoteCur
	if total > 0 {
		t.LocalShare = float64(t.LocalNext+t.LocalCur) / float64(total)
	}
	return t
}
