package algorithms

import (
	"math"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/polymer"
)

// systemsUnder returns one instance of every engine configuration the
// correctness suite must agree on, built over g (and its reverse where
// needed).
func systemsUnder(t *testing.T, g *graph.Graph) map[string][2]api.System {
	t.Helper()
	rg := g.Reverse()
	out := map[string][2]api.System{
		"ligra":    {ligra.New(g, 0), ligra.New(rg, 0)},
		"polymer":  {polymer.New(g, polymer.Polymer(), 0), polymer.New(rg, polymer.Polymer(), 0)},
		"ggv1":     {polymer.New(g, polymer.GGv1(), 0), polymer.New(rg, polymer.GGv1(), 0)},
		"ggv2":     {core.NewEngine(g, core.Options{}), core.NewEngine(rg, core.Options{})},
		"ggv2-p4":  {core.NewEngine(g, core.Options{Partitions: 4}), core.NewEngine(rg, core.Options{Partitions: 4})},
		"ggv2-coo": {core.NewEngine(g, core.Options{Layout: core.LayoutCOO}), core.NewEngine(rg, core.Options{Layout: core.LayoutCOO})},
		"ggv2-cooA": {
			core.NewEngine(g, core.Options{Layout: core.LayoutCOO, ForceAtomics: true}),
			core.NewEngine(rg, core.Options{Layout: core.LayoutCOO, ForceAtomics: true}),
		},
		"ggv2-csc": {core.NewEngine(g, core.Options{Layout: core.LayoutCSC}), core.NewEngine(rg, core.Options{Layout: core.LayoutCSC})},
		"ggv2-csr": {core.NewEngine(g, core.Options{Layout: core.LayoutCSR}), core.NewEngine(rg, core.Options{Layout: core.LayoutCSR})},
		"ggv2-t1":  {core.NewEngine(g, core.Options{Threads: 1}), core.NewEngine(rg, core.Options{Threads: 1})},
	}
	return out
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"social": gen.TinySocial(),
		"road":   gen.TinyRoad(),
		"chain":  gen.Chain(64),
		"star":   gen.Star(64),
		"paper":  gen.PaperExample(),
	}
}

func TestBFSAgreesWithSerial(t *testing.T) {
	for gname, g := range testGraphs() {
		src := SourceVertex(g)
		want := SerialBFSDepths(g, src)
		for sname, pair := range systemsUnder(t, g) {
			res := BFS(pair[0], src)
			got := BFSDepths(g, res.Parents, src)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: BFS depth of %d = %d, want %d", gname, sname, v, got[v], want[v])
				}
			}
		}
	}
}

func TestBFSParentsAreValidEdges(t *testing.T) {
	g := gen.TinySocial()
	src := SourceVertex(g)
	for sname, pair := range systemsUnder(t, g) {
		res := BFS(pair[0], src)
		for v, p := range res.Parents {
			if p < 0 || graph.VID(v) == src {
				continue
			}
			if !graph.HasEdge(g, graph.VID(p), graph.VID(v)) {
				t.Fatalf("%s: parent %d of %d is not an in-neighbour", sname, p, v)
			}
		}
	}
}

func TestCCAgreesWithSerial(t *testing.T) {
	for gname, g := range testGraphs() {
		want := SerialCCLabels(g)
		for sname, pair := range systemsUnder(t, g) {
			res := CC(pair[0])
			for v := range want {
				if res.Labels[v] != want[v] {
					t.Fatalf("%s/%s: CC label of %d = %d, want %d", gname, sname, v, res.Labels[v], want[v])
				}
			}
		}
	}
}

func TestCCOnSymmetricGraphCountsComponents(t *testing.T) {
	// Two disjoint symmetric cliques → exactly 2 components.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(j)})
				edges = append(edges, graph.Edge{Src: graph.VID(i + 5), Dst: graph.VID(j + 5)})
			}
		}
	}
	g := graph.FromEdges(10, edges)
	res := CC(core.NewEngine(g, core.Options{}))
	if n := NumComponents(res.Labels); n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPRAgreesWithSerial(t *testing.T) {
	for gname, g := range testGraphs() {
		want := SerialPR(g, 10)
		for sname, pair := range systemsUnder(t, g) {
			res := PR(pair[0], 10)
			if d := maxAbsDiff(res.Ranks, want); d > 1e-9 {
				t.Fatalf("%s/%s: PR max diff %g", gname, sname, d)
			}
		}
	}
}

func TestPRMassConserved(t *testing.T) {
	g := gen.TinySocial()
	res := PR(core.NewEngine(g, core.Options{}), 10)
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PR mass = %v, want 1", sum)
	}
}

func TestPRDeltaConvergesToPageRank(t *testing.T) {
	for gname, g := range testGraphs() {
		want := SerialPR(g, 60)
		for sname, pair := range systemsUnder(t, g) {
			res := PRDelta(pair[0], 200)
			// PRDelta stops forwarding deltas below Eps2 (1%) of a
			// vertex's rank; the truncation compounds along deep paths
			// (chain graph), so compare with a 10% relative tolerance.
			for v := range want {
				if d := math.Abs(res.Ranks[v] - want[v]); d > 1e-4+0.10*want[v] {
					t.Fatalf("%s/%s: PRDelta rank[%d]=%g, want %g (diff %g)",
						gname, sname, v, res.Ranks[v], want[v], d)
				}
			}
		}
	}
}

func TestPRDeltaFrontierShrinks(t *testing.T) {
	g := gen.TinySocial()
	res := PRDelta(core.NewEngine(g, core.Options{}), 100)
	if len(res.ActiveCounts) < 3 {
		t.Fatalf("expected several iterations, got %d", len(res.ActiveCounts))
	}
	first, last := res.ActiveCounts[0], res.ActiveCounts[len(res.ActiveCounts)-1]
	if last >= first {
		t.Fatalf("active counts did not shrink: first=%d last=%d", first, last)
	}
}

func TestSPMVAgreesWithSerial(t *testing.T) {
	for gname, g := range testGraphs() {
		want := SerialSPMV(g)
		for sname, pair := range systemsUnder(t, g) {
			res := SPMV(pair[0])
			if d := maxAbsDiff(res.Y, want); d > 1e-9 {
				t.Fatalf("%s/%s: SPMV max diff %g", gname, sname, d)
			}
		}
	}
}

func TestBellmanFordAgreesWithDijkstra(t *testing.T) {
	for gname, g := range testGraphs() {
		src := SourceVertex(g)
		want := SerialSSSP(g, src)
		for sname, pair := range systemsUnder(t, g) {
			res := BellmanFord(pair[0], src)
			for v := range want {
				w, got := want[v], res.Dist[v]
				if math.IsInf(float64(w), 1) != math.IsInf(float64(got), 1) {
					t.Fatalf("%s/%s: reachability of %d differs: %v vs %v", gname, sname, v, got, w)
				}
				if !math.IsInf(float64(w), 1) && math.Abs(float64(got-w)) > 1e-4 {
					t.Fatalf("%s/%s: dist[%d] = %v, want %v", gname, sname, v, got, w)
				}
			}
		}
	}
}

func TestBCAgreesWithSerial(t *testing.T) {
	for gname, g := range testGraphs() {
		src := SourceVertex(g)
		want := SerialBC(g, src)
		for sname, pair := range systemsUnder(t, g) {
			res := BC(pair[0], pair[1], src)
			if d := maxAbsDiff(res.Scores, want); d > 1e-6 {
				t.Fatalf("%s/%s: BC max diff %g", gname, sname, d)
			}
		}
	}
}

func TestBPAgreesWithSerial(t *testing.T) {
	for gname, g := range testGraphs() {
		want := SerialBP(g, 10)
		for sname, pair := range systemsUnder(t, g) {
			res := BP(pair[0], 10)
			if d := maxAbsDiff(res.Beliefs, want); d > 1e-6 {
				t.Fatalf("%s/%s: BP max diff %g", gname, sname, d)
			}
		}
	}
}

func TestBPBeliefsAreProbabilities(t *testing.T) {
	g := gen.TinySocial()
	res := BP(core.NewEngine(g, core.Options{}), 10)
	for v, b := range res.Beliefs {
		if b < 0 || b > 1 || math.IsNaN(b) {
			t.Fatalf("belief[%d] = %v out of [0,1]", v, b)
		}
	}
}

func TestSpecsCoverTableII(t *testing.T) {
	specs := AllSpecs()
	if len(specs) != 8 {
		t.Fatalf("want 8 algorithms, got %d", len(specs))
	}
	wantCodes := map[string]api.Direction{
		"BC": api.DirBackward, "CC": api.DirBackward, "PR": api.DirBackward,
		"BFS": api.DirBackward, "PRDelta": api.DirForward, "SPMV": api.DirForward,
		"BF": api.DirForward, "BP": api.DirForward,
	}
	for _, s := range specs {
		dir, ok := wantCodes[s.Code]
		if !ok {
			t.Fatalf("unexpected spec %q", s.Code)
		}
		if s.Dir != dir {
			t.Fatalf("%s: direction %v, want %v (Table II)", s.Code, s.Dir, dir)
		}
	}
}

func TestAllSpecsRunOnAllEngines(t *testing.T) {
	g := gen.TinySocial()
	src := SourceVertex(g)
	for sname, pair := range systemsUnder(t, g) {
		for _, spec := range AllSpecs() {
			spec.Run(pair[0], pair[1], src) // must not panic
		}
		_ = sname
	}
}

func TestSourceVertexIsMaxOutDegree(t *testing.T) {
	g := gen.Star(10)
	if s := SourceVertex(g); s != 0 {
		t.Fatalf("star source = %d, want 0", s)
	}
}
