// Package repro is the public API of the GraphGrind-v2 reproduction: a
// shared-memory graph analytics framework that accelerates traversal by
// exploiting the temporal locality of partitioning-by-destination
// (Sun, Vandierendonck & Nikolopoulos, ICPP 2017).
//
// The typical flow is: obtain a Graph (from an edge list or a generator),
// build an Engine over it, and run algorithms:
//
//	g := repro.RMAT(16, 16, 0.57, 0.19, 0.19, 1)
//	eng := repro.NewEngine(g, repro.Options{})
//	ranks := repro.PageRankDelta(eng, 60)
//
// Engines for the paper's baselines (Ligra, Polymer, GraphGrind-v1) are
// available through NewLigra, NewPolymer and NewGGv1 and accept the same
// algorithms, enabling apples-to-apples comparisons.
package repro

import (
	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/hilbert"
	"repro/internal/ligra"
	"repro/internal/partition"
	"repro/internal/polymer"
)

// Core graph types.
type (
	// Graph is the dual CSR/CSC graph representation.
	Graph = graph.Graph
	// VID is a vertex identifier.
	VID = graph.VID
	// Edge is a directed edge.
	Edge = graph.Edge
)

// FromEdges builds a graph with n vertices from a directed edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// WeightOf returns the deterministic weight of edge (u,v) used by the
// weighted algorithms (Bellman-Ford, SPMV, BP).
func WeightOf(u, v VID) float32 { return graph.WeightOf(u, v) }

// Generators (see internal/gen for parameter semantics).
var (
	// RMAT generates a directed R-MAT graph with 2^scale vertices.
	RMAT = gen.RMAT
	// PowerLaw generates a Zipf-degree directed graph.
	PowerLaw = gen.PowerLaw
	// ErdosRenyi generates a uniform random directed graph.
	ErdosRenyi = gen.ErdosRenyi
	// RoadGrid generates an undirected road-network-like lattice.
	RoadGrid = gen.RoadGrid
	// Preset builds one of the Table I dataset substitutes by name.
	Preset = gen.Preset
	// PresetNames lists the available presets.
	PresetNames = gen.PresetNames
)

// Engine configuration re-exports.
type (
	// Options configures the GraphGrind-v2 engine.
	Options = core.Options
	// Layout forces a single traversal layout (experiments only).
	Layout = core.Layout
	// System is the engine interface all algorithms run on.
	System = api.System
	// EdgeOp is the per-edge operator for custom EdgeMap computations.
	EdgeOp = api.EdgeOp
	// Direction is the baseline engines' traversal hint.
	Direction = api.Direction
)

// Layout and direction constants.
const (
	LayoutAuto = core.LayoutAuto
	LayoutCSR  = core.LayoutCSR
	LayoutCSC  = core.LayoutCSC
	LayoutCOO  = core.LayoutCOO

	DirAuto     = api.DirAuto
	DirForward  = api.DirForward
	DirBackward = api.DirBackward
)

// NewEngine builds the GraphGrind-v2 engine (three layouts, Algorithm 2
// dispatch, atomic-free partition-exclusive updates).
func NewEngine(g *Graph, opts Options) *core.Engine { return core.NewEngine(g, opts) }

// NewLigra builds the Ligra baseline engine.
func NewLigra(g *Graph, threads int) System { return ligra.New(g, threads) }

// NewPolymer builds the Polymer baseline engine.
func NewPolymer(g *Graph, threads int) System { return polymer.New(g, polymer.Polymer(), threads) }

// NewGGv1 builds the GraphGrind-v1 baseline engine.
func NewGGv1(g *Graph, threads int) System { return polymer.New(g, polymer.GGv1(), threads) }

// Partitioning analysis re-exports (Figures 3 and 4).
var (
	// PartitionByDestination runs Algorithm 1 with aligned boundaries.
	PartitionByDestination = partition.ByDestination
	// ReplicationFactor computes the pruned-CSR replication factor.
	ReplicationFactor = partition.ReplicationFactor
)

// Criterion constants for PartitionByDestination.
const (
	BalanceEdges    = partition.BalanceEdges
	BalanceVertices = partition.BalanceVertices
)

// EdgeOrder constants for Options.EdgeOrder (Figure 7).
const (
	OrderBySource      = hilbert.BySource
	OrderByDestination = hilbert.ByDestination
	OrderByHilbert     = hilbert.ByHilbert
)

// Algorithms. Each runs on any System.

// BFS runs breadth-first search from src and returns the parent array.
func BFS(sys System, src VID) []int32 { return algorithms.BFS(sys, src).Parents }

// ConnectedComponents runs label propagation and returns per-vertex
// component labels.
func ConnectedComponents(sys System) []int32 { return algorithms.CC(sys).Labels }

// PageRank runs the power method for iters iterations.
func PageRank(sys System, iters int) []float64 { return algorithms.PR(sys, iters).Ranks }

// PageRankDelta runs delta-forwarding PageRank until convergence or
// maxIters.
func PageRankDelta(sys System, maxIters int) []float64 {
	return algorithms.PRDelta(sys, maxIters).Ranks
}

// SpMV multiplies the graph's weighted adjacency (transposed) with the
// fixed input vector.
func SpMV(sys System) []float64 { return algorithms.SPMV(sys).Y }

// ShortestPaths runs Bellman-Ford from src under the deterministic
// positive edge weights.
func ShortestPaths(sys System, src VID) []float32 { return algorithms.BellmanFord(sys, src).Dist }

// BetweennessCentrality computes single-source dependency scores; rsys
// must be an engine over g.Reverse().
func BetweennessCentrality(sys, rsys System, src VID) []float64 {
	return algorithms.BC(sys, rsys, src).Scores
}

// BeliefPropagation runs loopy BP for iters iterations and returns
// per-vertex marginals.
func BeliefPropagation(sys System, iters int) []float64 {
	return algorithms.BP(sys, iters).Beliefs
}

// SourceVertex returns the deterministic experiment root: the vertex
// with the highest out-degree.
func SourceVertex(g *Graph) VID { return algorithms.SourceVertex(g) }

// Beyond-Table-II applications (API-generality demonstrations).

// KCore returns per-vertex coreness (intended for symmetric graphs).
func KCore(sys System) []int32 { return algorithms.KCore(sys).Coreness }

// MaximalIndependentSet returns a deterministic MIS membership array
// (intended for symmetric graphs).
func MaximalIndependentSet(sys System) []bool { return algorithms.MIS(sys).InSet }

// Radii returns per-vertex eccentricity estimates from a 64-source
// bit-parallel BFS.
func Radii(sys System) []int32 { return algorithms.Radii(sys).Ecc }

// Coloring returns a proper vertex colouring via iterated MIS (intended
// for symmetric graphs).
func Coloring(sys System) []int32 { return algorithms.Coloring(sys).Colors }

// LoadGraph reads a graph from disk, dispatching on extension
// (.el/.txt/.edges, .adj, .bin/.ggr, each optionally .gz).
func LoadGraph(path string) (*Graph, error) { return gio.Load(path) }

// SaveGraph writes a graph to disk, dispatching on extension like
// LoadGraph.
func SaveGraph(path string, g *Graph) error { return gio.Save(path, g) }

// TriangleCount counts triangles on a symmetric graph.
func TriangleCount(sys System) int64 { return algorithms.TriangleCount(sys).Triangles }

// NewEngineAuto builds a GraphGrind-v2 engine whose partition count is
// chosen by the locality heuristic of §IV.G (per-partition vertex slice
// sized to cache) when Options.Partitions is zero.
func NewEngineAuto(g *Graph, opts Options) *core.Engine { return core.NewEngineAuto(g, opts) }
