package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// PresetSpec describes one Table-I dataset substitute.
type PresetSpec struct {
	Name     string
	Kind     string // "rmat", "powerlaw", "road", "er"
	Directed bool
	Build    func() *graph.Graph
	// PaperVertices/PaperEdges record the original dataset's size for
	// documentation in the Table I reproduction.
	PaperVertices string
	PaperEdges    string
}

// presets mirrors Table I at laptop scale. Scale factors were chosen so
// the largest graph ("friendster-sm") has a few million edges: large
// enough for partition sweeps to 384 partitions to show locality effects,
// small enough to run the full experiment suite in minutes.
var presets = []PresetSpec{
	{
		Name: "twitter-sm", Kind: "rmat", Directed: true,
		PaperVertices: "41.7M", PaperEdges: "1.467B",
		Build: func() *graph.Graph { return RMAT(17, 16, 0.57, 0.19, 0.19, 42) },
	},
	{
		Name: "friendster-sm", Kind: "rmat", Directed: true,
		PaperVertices: "125M", PaperEdges: "1.81B",
		Build: func() *graph.Graph { return RMAT(18, 12, 0.55, 0.20, 0.20, 43) },
	},
	{
		Name: "orkut-sm", Kind: "powerlaw", Directed: false,
		PaperVertices: "3.07M", PaperEdges: "234M",
		Build: func() *graph.Graph { return Symmetrise(PowerLaw(1<<15, 1<<21, 2.3, 44)) },
	},
	{
		Name: "livejournal-sm", Kind: "powerlaw", Directed: true,
		PaperVertices: "4.85M", PaperEdges: "69.0M",
		Build: func() *graph.Graph { return PowerLaw(1<<16, 1<<20, 2.4, 45) },
	},
	{
		Name: "yahoo-sm", Kind: "powerlaw", Directed: false,
		PaperVertices: "1.64M", PaperEdges: "30.4M",
		Build: func() *graph.Graph { return Symmetrise(PowerLaw(1<<14, 1<<18, 2.2, 46)) },
	},
	{
		Name: "usaroad-sm", Kind: "road", Directed: false,
		PaperVertices: "23.9M", PaperEdges: "58M",
		Build: func() *graph.Graph { return RoadGrid(512, 512, 47) },
	},
	{
		Name: "powerlaw-sm", Kind: "powerlaw", Directed: true,
		PaperVertices: "100M", PaperEdges: "1.5B",
		Build: func() *graph.Graph { return PowerLaw(1<<17, 1<<21, 2.0, 48) },
	},
	{
		Name: "rmat27-sm", Kind: "rmat", Directed: true,
		PaperVertices: "134M", PaperEdges: "1.342B",
		Build: func() *graph.Graph { return RMAT(18, 10, 0.57, 0.19, 0.19, 49) },
	},
}

// Preset builds the named dataset substitute. It panics on unknown names
// (the name set is fixed; misuse is a programming error).
func Preset(name string) *graph.Graph {
	for _, p := range presets {
		if p.Name == name {
			return p.Build()
		}
	}
	panic(fmt.Sprintf("gen: unknown preset %q (have %v)", name, PresetNames()))
}

// PresetNames returns all preset names in Table I order.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// Presets returns the preset table, for the Table I reproduction.
func Presets() []PresetSpec {
	out := make([]PresetSpec, len(presets))
	copy(out, presets)
	return out
}

// Tiny presets used widely in tests; exported so tests across packages
// share the same fixtures.

// TinySocial is a small RMAT graph (2^10 vertices) with social-network
// skew: fast to build, dense enough to exercise all three frontier
// classes.
func TinySocial() *graph.Graph { return RMAT(10, 16, 0.57, 0.19, 0.19, 7) }

// TinyRoad is a small lattice with high diameter.
func TinyRoad() *graph.Graph { return RoadGrid(48, 48, 9) }

// SortedPresetKinds returns the distinct generator kinds used by presets,
// sorted; exists for documentation output.
func SortedPresetKinds() []string {
	seen := map[string]bool{}
	for _, p := range presets {
		seen[p.Kind] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
