//go:build !linux || !aio_direct

package aio

import "os"

// Open opens a shard file for reading. The default build is a plain
// os.Open: reads go through the page cache with kernel readahead, the
// right behaviour for the tests' tiny stores and for any file that may
// be re-read soon. Building with -tags aio_direct on Linux swaps in
// the uncached fast path (see open_direct_linux.go) behind this same
// signature, so the engine's read code is identical either way.
func Open(path string) (*os.File, error) {
	return os.Open(path)
}
