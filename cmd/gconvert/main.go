// Command gconvert converts graphs between the supported on-disk
// formats (see internal/gio): SNAP edge lists (.el/.txt/.edges), Ligra
// AdjacencyGraph (.adj), and the compact binary format (.bin/.ggr), each
// optionally gzip-compressed (.gz). It can also materialise a generated
// preset to disk, which is how the repo's datasets are exported for use
// with the original C++ systems, and shard a graph into an out-of-core
// store directory (-shardout) in either shard-file encoding
// (-shardformat v1 raw / v2 delta+uvarint compressed).
//
// Examples:
//
//	gconvert -in graph.el -out graph.adj
//	gconvert -preset twitter-sm -out twitter.bin.gz
//	gconvert -in big.adj -out big.el.gz -stats
//	gconvert -preset livejournal-sm -shardout lj-shards -shards 24
//	gconvert -in big.el -shardout big-shards -shardformat v1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/shard"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph file")
		preset   = flag.String("preset", "", "generate this preset instead of reading a file: "+strings.Join(gen.PresetNames(), ", "))
		out      = flag.String("out", "", "output graph file")
		shardOut = flag.String("shardout", "", "write an out-of-core shard store to this directory")
		shards   = flag.Int("shards", 24, "partition count for -shardout")
		shardFmt = flag.String("shardformat", shard.DefaultFormat.String(), "shard-file encoding for -shardout: v1 (raw uint32 pairs) or v2 (delta+uvarint compressed)")
		stats    = flag.Bool("stats", false, "print graph statistics")
	)
	flag.Parse()
	if (*out == "" && *shardOut == "") || (*in == "") == (*preset == "") {
		fmt.Fprintln(os.Stderr, "gconvert: need -out and/or -shardout, and exactly one of -in / -preset")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "gconvert: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	format, err := shard.ParseFormat(*shardFmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
		os.Exit(2)
	}

	var g *graph.Graph
	var label string
	if *in != "" {
		label = *in
		g, err = gio.Load(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
			os.Exit(1)
		}
	} else {
		label = *preset
		g = gen.Preset(*preset)
	}

	if *stats {
		fmt.Println(graph.ComputeStats(label, g).String())
	}
	if *out != "" {
		if err := gio.Save(*out, g); err != nil {
			fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
			os.Exit(1)
		}
		fi, err := os.Stat(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d vertices, %d edges, %.1f KiB\n",
			*out, g.NumVertices(), g.NumEdges(), float64(fi.Size())/1024)
	}
	if *shardOut != "" {
		st, err := shard.Create(*shardOut, g, shard.WriteOptions{Partitions: *shards, Format: format})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
			os.Exit(1)
		}
		disk, err := st.DiskBytes()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
			os.Exit(1)
		}
		bpe := 0.0
		if g.NumEdges() > 0 {
			bpe = float64(disk) / float64(g.NumEdges())
		}
		fmt.Printf("sharded %s: %d shards (%v format), %.1f KiB on disk, %.2f bytes/edge (raw v1 is 8)\n",
			*shardOut, st.NumShards(), st.Format(), float64(disk)/1024, bpe)
	}
}
