package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/aio"
	"repro/internal/graph"
)

// Format selects the on-disk encoding of the per-shard edge files.
//
// FormatV1 is the original raw layout: an int64 edge count followed by
// the source and destination arrays as little-endian uint32s — fixed
// 8 bytes per edge, in the partitioner's CSR (source-major) order.
//
// FormatV2 is the compressed layout: within each shard the edges are
// sorted by (destination, source), both streams are delta-encoded and
// written as uvarints. Destination deltas are almost always zero (runs
// of in-edges) or tiny, and source deltas within a run are gaps between
// sorted neighbour IDs, so a typical shard costs 2–4 bytes per edge —
// the bandwidth lever for an engine whose dense sweeps re-read the
// whole edge set from disk every iteration. The re-sorting is
// semantics-preserving: per-destination source order is ascending in
// both formats (v1 inherits it from the CSR walk), and the engine's
// apply only depends on per-destination order, so results are
// bit-identical across formats.
type Format int

const (
	// FormatV1 is the raw uint32-pairs layout of ggrind-shards-v1 stores.
	FormatV1 Format = 1
	// FormatV2 is the (dst,src)-sorted delta+uvarint layout of
	// ggrind-shards-v2 stores — the default Write format.
	FormatV2 Format = 2
)

// DefaultFormat is the format Write uses when none is specified.
const DefaultFormat = FormatV2

// String returns the flag-friendly name ("v1", "v2").
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat converts a -shardformat flag value into a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "1":
		return FormatV1, nil
	case "v2", "2":
		return FormatV2, nil
	}
	return 0, fmt.Errorf("shard: unknown format %q (want v1 or v2)", s)
}

func (f Format) valid() bool { return f == FormatV1 || f == FormatV2 }

// manifestMagic returns the manifest magic string for stores of this
// format.
func (f Format) manifestMagic() string {
	if f == FormatV2 {
		return manifestMagicV2
	}
	return manifestMagicV1
}

// VIDRangeError reports a decoded vertex ID outside its permitted
// half-open range [Lo, Hi) — a source at or beyond the vertex count, or
// a destination outside its shard's destination range. Both decoders
// return it (wrapped in the usual path context) instead of silently
// producing edges the engine's partition-exclusive apply would turn
// into out-of-bounds writes or cross-shard corruption.
type VIDRangeError struct {
	Path  string // shard file
	Edge  int64  // index of the offending edge within the file
	Field string // "source" or "destination"
	VID   uint64 // decoded value (pre-truncation, hence 64-bit)
	Lo    graph.VID
	Hi    graph.VID
}

func (e *VIDRangeError) Error() string {
	return fmt.Sprintf("shard: %s: %s %d outside [%d,%d) at edge %d",
		e.Path, e.Field, e.VID, e.Lo, e.Hi, e.Edge)
}

// vidBytes is the on-disk size of one vertex ID in FormatV1
// (graph.VID = uint32).
const vidBytes = 4

// v1EncodedBytes is the FormatV1 (raw) size of a shard with the given
// edge count — the logical byte volume Stats.BytesLogical accounts
// loads at, so BytesLogical/BytesRead is the live compression ratio.
func v1EncodedBytes(edges int64) int64 { return 8 + 2*vidBytes*edges }

// shardMagicV2 opens every FormatV2 shard file; v1 files have no magic
// (they begin with the raw edge count), so the two layouts cannot be
// confused without the mismatch surfacing as a structural error.
var shardMagicV2 = [4]byte{'G', 'G', 'S', '2'}

// writeShardFile encodes one shard's COO in the given format. c is not
// modified: the v2 path sorts a copy. The bytes are written to a
// temporary name, fsync'd and atomically renamed into place: a crash
// mid-conversion leaves at worst a stale *.tmp (which Open ignores),
// never a half-written file under the shard's real name that a later
// sweep would decode as corrupt.
func writeShardFile(path string, c *graph.COO, format Format) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	switch format {
	case FormatV1:
		err = writeShardV1(f, c)
	case FormatV2:
		err = writeShardV2(f, c)
	default:
		err = fmt.Errorf("shard: cannot write format %v", format)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func writeShardV1(f *os.File, c *graph.COO) error {
	if err := binary.Write(f, binary.LittleEndian, int64(len(c.Src))); err != nil {
		return err
	}
	if err := binary.Write(f, binary.LittleEndian, c.Src); err != nil {
		return err
	}
	return binary.Write(f, binary.LittleEndian, c.Dst)
}

func writeShardV2(f *os.File, c *graph.COO) error {
	src := append([]graph.VID(nil), c.Src...)
	dst := append([]graph.VID(nil), c.Dst...)
	sort.Sort(&dstSrcOrder{src: src, dst: dst})
	w := bufio.NewWriter(f)
	if _, err := w.Write(shardMagicV2[:]); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(len(src))); err != nil {
		return err
	}
	if err := encodeV2Stream(w, src, dst); err != nil {
		return err
	}
	return w.Flush()
}

// putUvarint writes one uvarint to w.
func putUvarint(w *bufio.Writer, x uint64) error {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], x)
	_, err := w.Write(tmp[:k])
	return err
}

// encodeV2Stream writes an already (dst,src)-sorted edge list as the
// v2 delta+uvarint stream pair: destination deltas against the
// previous destination (the first edge's is absolute — the implicit
// previous destination is 0), sources absolute at the start of each
// destination run and delta-encoded within a run (non-negative by the
// sort). Base shard files carry one such stream; delta shard files
// carry two (inserts, then tombstones), each with its own delta state.
func encodeV2Stream(w *bufio.Writer, src, dst []graph.VID) error {
	var prevDst, prevSrc graph.VID
	for i := range src {
		d, s := dst[i], src[i]
		if err := putUvarint(w, uint64(d-prevDst)); err != nil {
			return err
		}
		if i == 0 || d != prevDst {
			if err := putUvarint(w, uint64(s)); err != nil {
				return err
			}
		} else {
			if err := putUvarint(w, uint64(s-prevSrc)); err != nil {
				return err
			}
		}
		prevDst, prevSrc = d, s
	}
	return nil
}

// dstSrcOrder sorts parallel src/dst slices by (dst, src) — the v2
// on-disk order. Equal pairs (parallel edges) are interchangeable, so
// the unstable sort is still deterministic in output.
type dstSrcOrder struct {
	src, dst []graph.VID
}

func (o *dstSrcOrder) Len() int { return len(o.src) }
func (o *dstSrcOrder) Less(i, j int) bool {
	if o.dst[i] != o.dst[j] {
		return o.dst[i] < o.dst[j]
	}
	return o.src[i] < o.src[j]
}
func (o *dstSrcOrder) Swap(i, j int) {
	o.src[i], o.src[j] = o.src[j], o.src[i]
	o.dst[i], o.dst[j] = o.dst[j], o.dst[i]
}

// readShardFile decodes one shard file in the given format, returning
// the COO and the on-disk bytes consumed (the file size). Every decoded
// source must be a vertex and every destination must fall inside the
// shard's [lo,hi) range — violations surface as *VIDRangeError, never
// as silently corrupt edges — and no allocation is sized by untrusted
// input before it is validated against the file's actual size.
func readShardFile(path string, format Format, n int, lo, hi graph.VID, wantEdges int64) (*graph.COO, int64, error) {
	switch format {
	case FormatV1:
		return readShardV1(path, n, lo, hi, wantEdges)
	case FormatV2:
		return readShardV2(path, n, lo, hi, wantEdges)
	}
	return nil, 0, fmt.Errorf("shard: cannot read format %v", format)
}

func readShardV1(path string, n int, lo, hi graph.VID, wantEdges int64) (c *graph.COO, size int64, err error) {
	f, err := aio.Open(path)
	if err != nil {
		return nil, 0, err
	}
	// Propagate close errors like the write path does: a delayed I/O
	// error surfacing at close must not let an otherwise-successful
	// decode pass as valid.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			c, size, err = nil, 0, fmt.Errorf("shard: %s: close: %v", path, cerr)
		}
	}()
	var count int64
	if err := binary.Read(f, binary.LittleEndian, &count); err != nil {
		return nil, 0, fmt.Errorf("shard: %s: %v", path, err)
	}
	if count != wantEdges || count < 0 {
		return nil, 0, fmt.Errorf("shard: %s: edge count %d, manifest says %d", path, count, wantEdges)
	}
	// Validate the edge count against the file's actual size before
	// allocating anything sized by it: a corrupt (or hostile) manifest
	// could otherwise declare an absurd count and turn LoadShard into an
	// allocation of arbitrary size. The arithmetic cannot overflow —
	// counts above MaxInt64/(2*vidBytes) are rejected first.
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("shard: %s: %v", path, err)
	}
	const maxCount = (1<<63 - 1 - 8) / (2 * vidBytes)
	if count > maxCount || fi.Size() != v1EncodedBytes(count) {
		return nil, 0, fmt.Errorf("shard: %s: file is %d bytes, want %d for %d edges",
			path, fi.Size(), v1EncodedBytes(count), count)
	}
	c, err = decodeShardV1(f, path, n, lo, hi, count)
	if err != nil {
		return nil, 0, err
	}
	return c, fi.Size(), nil
}

// v1DecodeChunkBytes is the streaming granularity of the raw (v1)
// decoder: words are converted and validated chunk by chunk as they
// arrive, so on the aio path a shard's decode overlaps its own
// in-flight read instead of waiting for the whole array (the decoder
// used to issue one file-sized binary.Read per stream). 64 KiB keeps
// the scratch buffer cache-resident while amortising the read syscalls.
const v1DecodeChunkBytes = 64 << 10

// decodeShardV1 decodes count edges' source then destination arrays
// from r incrementally — never requesting more than v1DecodeChunkBytes
// per read — validating each chunk as it lands. count must already be
// validated against the file size (readShardV1 does); r is positioned
// after the edge-count header. Split from the file plumbing so tests
// can pin the incremental consumption against a counting reader.
func decodeShardV1(r io.Reader, path string, n int, lo, hi graph.VID, count int64) (*graph.COO, error) {
	c := &graph.COO{N: n, Src: make([]graph.VID, count), Dst: make([]graph.VID, count)}
	err := decodeV1Array(r, c.Src, func(i int64, v graph.VID) error {
		if int(v) >= n {
			return &VIDRangeError{Path: path, Edge: i, Field: "source", VID: uint64(v), Lo: 0, Hi: graph.VID(n)}
		}
		return nil
	})
	if err != nil {
		if _, ok := err.(*VIDRangeError); ok {
			return nil, err
		}
		return nil, fmt.Errorf("shard: %s: sources: %v", path, err)
	}
	err = decodeV1Array(r, c.Dst, func(i int64, v graph.VID) error {
		if v < lo || v >= hi {
			return &VIDRangeError{Path: path, Edge: i, Field: "destination", VID: uint64(v), Lo: lo, Hi: hi}
		}
		return nil
	})
	if err != nil {
		if _, ok := err.(*VIDRangeError); ok {
			return nil, err
		}
		return nil, fmt.Errorf("shard: %s: destinations: %v", path, err)
	}
	return c, nil
}

// decodeV1Array fills out with little-endian uint32 words read from r
// in at-most-v1DecodeChunkBytes chunks, calling check on every decoded
// word before accepting it.
func decodeV1Array(r io.Reader, out []graph.VID, check func(int64, graph.VID) error) error {
	buf := make([]byte, v1DecodeChunkBytes)
	for done := 0; done < len(out); {
		words := len(out) - done
		if max := len(buf) / vidBytes; words > max {
			words = max
		}
		if _, err := io.ReadFull(r, buf[:words*vidBytes]); err != nil {
			return err
		}
		for k := 0; k < words; k++ {
			v := graph.VID(binary.LittleEndian.Uint32(buf[k*vidBytes:]))
			if err := check(int64(done), v); err != nil {
				return err
			}
			out[done] = v
			done++
		}
	}
	return nil
}

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int64 {
	var tmp [binary.MaxVarintLen64]byte
	return int64(binary.PutUvarint(tmp[:], x))
}

func readShardV2(path string, n int, lo, hi graph.VID, wantEdges int64) (c *graph.COO, size int64, err error) {
	f, err := aio.Open(path)
	if err != nil {
		return nil, 0, err
	}
	// See readShardV1: close errors fail the decode, like the write path.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			c, size, err = nil, 0, fmt.Errorf("shard: %s: close: %v", path, cerr)
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("shard: %s: %v", path, err)
	}
	br := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("shard: %s: v2 magic: %v", path, err)
	}
	if magic != shardMagicV2 {
		return nil, 0, fmt.Errorf("shard: %s: not a v2 shard file (magic %q)", path, magic[:])
	}
	count64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: %s: edge count varint: %v", path, err)
	}
	// Bound the count before any arithmetic on it: beyond maxCount the
	// minimum-size computation below would overflow int64 and a hostile
	// count could slip past it into the allocation — the v2 counterpart
	// of readShardV1's maxCount guard.
	const maxCount = (1<<63 - 1 - 4 - binary.MaxVarintLen64) / 2
	if count64 > maxCount || int64(count64) != wantEdges {
		return nil, 0, fmt.Errorf("shard: %s: edge count %d, manifest says %d", path, count64, wantEdges)
	}
	count := int64(count64)
	// Every edge costs at least two varint bytes, so the smallest file
	// that can hold the declared count is known before any allocation —
	// the v2 counterpart of the v1 exact-size check (varint streams are
	// variable-width, so a lower bound is the strongest prior check; the
	// trailing-bytes check below makes the size agreement exact).
	if minSize := 4 + uvarintLen(count64) + 2*count; fi.Size() < minSize {
		return nil, 0, fmt.Errorf("shard: %s: file is %d bytes, need at least %d for %d edges",
			path, fi.Size(), minSize, count)
	}
	srcArr, dstArr, err := decodeV2Stream(br, path, n, lo, hi, count)
	if err != nil {
		return nil, 0, err
	}
	c = &graph.COO{N: n, Src: srcArr, Dst: dstArr}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, 0, fmt.Errorf("shard: %s: after %d edges: %v", path, count, err)
		}
		return nil, 0, fmt.Errorf("shard: %s: trailing bytes after %d edges", path, count)
	}
	return c, fi.Size(), nil
}

// decodeV2Stream reads count edges in the v2 delta+uvarint layout from
// br (encodeV2Stream's inverse), validating every decoded source
// against [0,n) and every destination against [lo,hi) — violations
// surface as *VIDRangeError — and rejecting any delta that would wrap.
// The delta state starts fresh per stream, so a delta shard file's two
// streams decode independently with the same routine.
func decodeV2Stream(br *bufio.Reader, path string, n int, lo, hi graph.VID, count int64) ([]graph.VID, []graph.VID, error) {
	src := make([]graph.VID, count)
	dst := make([]graph.VID, count)
	var prevDst, prevSrc uint64
	for i := int64(0); i < count; i++ {
		dDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, fmt.Errorf("shard: %s: destination delta at edge %d: %v", path, i, err)
		}
		d := prevDst + dDelta
		if d < prevDst || d < uint64(lo) || d >= uint64(hi) {
			return nil, nil, &VIDRangeError{Path: path, Edge: i, Field: "destination", VID: d, Lo: lo, Hi: hi}
		}
		sv, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, fmt.Errorf("shard: %s: source varint at edge %d: %v", path, i, err)
		}
		s := sv
		if i > 0 && d == prevDst {
			s = prevSrc + sv
		}
		if s < sv || s >= uint64(n) {
			return nil, nil, &VIDRangeError{Path: path, Edge: i, Field: "source", VID: s, Lo: 0, Hi: graph.VID(n)}
		}
		dst[i], src[i] = graph.VID(d), graph.VID(s)
		prevDst, prevSrc = d, s
	}
	return src, dst, nil
}
