// Package sched provides the parallel runtime shared by all engines: a
// bounded worker pool, chunked parallel-for loops, and a modelled NUMA
// topology that pins partitions to domains. Go offers no physical NUMA
// placement, so the model preserves the paper's *ownership* discipline —
// one partition is processed by exactly one worker at a time, and workers
// are grouped into domains — which is the property the atomic-free update
// path depends on.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs tasks on a fixed number of workers. A Pool with Threads=1
// executes inline, which tests use for deterministic sequencing.
type Pool struct {
	threads int
	ids     []int // 0..threads-1, the worker IDs runTasks hands out
}

// NewPool returns a pool with the given parallelism; threads <= 0 selects
// GOMAXPROCS.
func NewPool(threads int) *Pool {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	ids := make([]int, threads)
	for i := range ids {
		ids[i] = i
	}
	return &Pool{threads: threads, ids: ids}
}

// Threads returns the pool's parallelism.
func (p *Pool) Threads() int { return p.threads }

// ParallelFor runs fn(i) for i in [0,n) across the pool using dynamic
// chunk self-scheduling: workers grab chunks of the given size from a
// shared counter, which load-balances skewed iterations (high-degree
// vertices) without a work-stealing deque.
func (p *Pool) ParallelFor(n int, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	workers := p.threads
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ParallelForChunks is ParallelFor with the worker ID and chunk bounds
// exposed: workers self-schedule chunks of size chunk from [0,n) and call
// fn(worker, lo, hi) per chunk. Engines use the worker ID to index
// per-worker accumulators without atomics.
func (p *Pool) ParallelForChunks(n, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	workers := p.threads
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(w, start, end)
			}
		}(w)
	}
	wg.Wait()
}

// ParallelRange splits [0,n) into one contiguous block per worker and
// runs fn(worker, lo, hi). Used when per-worker accumulators must be
// indexed by worker ID (frontier statistics aggregation).
func (p *Pool) ParallelRange(n int, fn func(worker, lo, hi int)) {
	workers := p.threads
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ParallelTasks runs exactly k tasks, self-scheduled over the pool's
// workers: fn(task, worker). Each task runs on exactly one worker; at
// most Threads() run concurrently. This is the "one partition per thread"
// execution the paper's atomic-free path requires.
func (p *Pool) ParallelTasks(k int, fn func(task, worker int)) {
	runTasks(p.ids, k, fn)
}

// runTasks is the shared task-scheduling kernel behind Pool.ParallelTasks
// and DomainView.ParallelTasks: k tasks self-scheduled over at most
// len(ids) goroutines, each callback carrying the worker ID it runs as.
// One goroutine (or k <= 1) executes inline.
//
// A panicking task does not crash the process: the first panic value is
// captured, the remaining workers stop claiming tasks, and the panic is
// re-raised on the calling goroutine once every worker has exited — the
// same surfacing an inline (single-worker) run gets for free. Callers
// that recover therefore observe no leaked worker goroutines. Tasks
// already running when the panic fires still complete. The value is
// re-raised verbatim so recover sites can inspect it, at the price of
// the worker's original stack trace; a task that needs the faulting
// frames preserved should capture them itself before panicking.
func runTasks(ids []int, k int, fn func(task, worker int)) {
	if k <= 0 {
		return
	}
	workers := len(ids)
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for t := 0; t < k; t++ {
			fn(t, ids[0])
		}
		return
	}
	var next int64
	var stop int32
	var panicMu sync.Mutex
	var panicVal any
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
					atomic.StoreInt32(&stop, 1)
				}
			}()
			for atomic.LoadInt32(&stop) == 0 {
				t := int(atomic.AddInt64(&next, 1)) - 1
				if t >= k {
					return
				}
				fn(t, w)
			}
		}(ids[i])
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// DefaultChunk is the grain for vertex-indexed parallel-for loops; 1024
// vertices amortises the scheduling counter while staying fine enough to
// balance power-law degree skew.
const DefaultChunk = 1024
