package hilbert

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestHilbertRoundTripProperty(t *testing.T) {
	const order = 12
	f := func(x16, y16 uint16) bool {
		x := uint32(x16) % (1 << order)
		y := uint32(y16) % (1 << order)
		d := XY2D(order, x, y)
		rx, ry := D2XY(order, d)
		return rx == x && ry == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertBijectionSmall(t *testing.T) {
	// Order 4: all 256 points must map to distinct curve positions
	// covering [0,256).
	const order = 4
	seen := make([]bool, 256)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := XY2D(order, x, y)
			if d >= 256 {
				t.Fatalf("d=%d out of range", d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve index %d", d)
			}
			seen[d] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive curve positions must be grid neighbours (the locality
	// property everything rests on).
	const order = 5
	px, py := D2XY(order, 0)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := D2XY(order, d)
		dx, dy := int64(x)-int64(px), int64(y)-int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("positions %d and %d not adjacent: (%d,%d)→(%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestOrderFor(t *testing.T) {
	cases := map[int]uint{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := OrderFor(n); got != want {
			t.Fatalf("OrderFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func edgeMultiset(c *graph.COO) map[graph.Edge]int {
	m := make(map[graph.Edge]int)
	for i := range c.Src {
		m[graph.Edge{Src: c.Src[i], Dst: c.Dst[i]}]++
	}
	return m
}

func TestSortPreservesEdges(t *testing.T) {
	g := gen.TinySocial()
	for _, ord := range []EdgeOrder{BySource, ByDestination, ByHilbert} {
		c := graph.COOFromGraph(g)
		before := edgeMultiset(c)
		Sort(c, ord)
		after := edgeMultiset(c)
		if len(before) != len(after) {
			t.Fatalf("%v: edge multiset changed", ord)
		}
		for e, n := range before {
			if after[e] != n {
				t.Fatalf("%v: edge %v count changed", ord, e)
			}
		}
	}
}

func TestSortBySourceOrder(t *testing.T) {
	g := gen.TinySocial()
	c := graph.COOFromGraph(g)
	Sort(c, ByDestination) // scramble from CSR order
	Sort(c, BySource)
	for i := 1; i < len(c.Src); i++ {
		if c.Src[i-1] > c.Src[i] ||
			(c.Src[i-1] == c.Src[i] && c.Dst[i-1] > c.Dst[i]) {
			t.Fatal("not in source order")
		}
	}
}

func TestSortByDestinationOrder(t *testing.T) {
	g := gen.TinySocial()
	c := graph.COOFromGraph(g)
	Sort(c, ByDestination)
	for i := 1; i < len(c.Dst); i++ {
		if c.Dst[i-1] > c.Dst[i] ||
			(c.Dst[i-1] == c.Dst[i] && c.Src[i-1] > c.Src[i]) {
			t.Fatal("not in destination order")
		}
	}
}

func TestSortByHilbertOrdersKeys(t *testing.T) {
	g := gen.TinySocial()
	c := graph.COOFromGraph(g)
	Sort(c, ByHilbert)
	ord := OrderFor(c.N)
	for i := 1; i < len(c.Src); i++ {
		if XY2D(ord, c.Src[i-1], c.Dst[i-1]) > XY2D(ord, c.Src[i], c.Dst[i]) {
			t.Fatal("not in Hilbert order")
		}
	}
}

func TestHilbertImprovesJointLocality(t *testing.T) {
	// Sum of |Δsrc| + |Δdst| between consecutive edges should be smaller
	// in Hilbert order than in source order, which optimises only src.
	g := gen.TinySocial()
	jump := func(c *graph.COO) (s int64) {
		for i := 1; i < len(c.Src); i++ {
			s += abs64(int64(c.Src[i]) - int64(c.Src[i-1]))
			s += abs64(int64(c.Dst[i]) - int64(c.Dst[i-1]))
		}
		return
	}
	src := graph.COOFromGraph(g)
	Sort(src, BySource)
	hil := graph.COOFromGraph(g)
	Sort(hil, ByHilbert)
	if jump(hil) >= jump(src) {
		t.Fatalf("hilbert jump %d not below source jump %d", jump(hil), jump(src))
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEdgeOrderStrings(t *testing.T) {
	if BySource.String() != "source" || ByDestination.String() != "destination" || ByHilbert.String() != "hilbert" {
		t.Fatal("order strings wrong")
	}
}
