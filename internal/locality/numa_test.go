package locality

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sched"
)

func TestNUMANextAccessesAlwaysLocal(t *testing.T) {
	// The defining property of partitioning-by-destination under the
	// modelled placement: zero remote next-array updates, at any P.
	g := gen.TinySocial()
	for _, p := range []int{4, 16, 64} {
		tr := MeasureNUMATraffic(g, p, sched.Topology{Domains: 4})
		if tr.RemoteNext != 0 {
			t.Fatalf("P=%d: %d remote next-array accesses, want 0", p, tr.RemoteNext)
		}
		if tr.LocalNext != g.NumEdges() {
			t.Fatalf("P=%d: local next accesses %d, want %d", p, tr.LocalNext, g.NumEdges())
		}
	}
}

func TestNUMACurReadsMostlyRemote(t *testing.T) {
	// Current-array reads hit all domains; with D=4 and hash-like
	// structure roughly 3/4 are remote.
	g := gen.TinySocial()
	tr := MeasureNUMATraffic(g, 16, sched.Topology{Domains: 4})
	frac := float64(tr.RemoteCur) / float64(tr.LocalCur+tr.RemoteCur)
	if frac < 0.4 || frac > 0.95 {
		t.Fatalf("remote cur fraction %.2f implausible for 4 domains", frac)
	}
	if tr.LocalShare <= 0.5 {
		t.Fatalf("local share %.2f should exceed 1/2 (all next accesses local)", tr.LocalShare)
	}
}

func TestNUMADomainLoadsBalanced(t *testing.T) {
	g := gen.Preset("livejournal-sm")
	tr := MeasureNUMATraffic(g, 48, sched.Topology{Domains: 4})
	var min, max int64 = 1 << 62, 0
	var sum int64
	for _, l := range tr.DomainLoads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	if sum != g.NumEdges() {
		t.Fatalf("domain loads sum %d, want %d", sum, g.NumEdges())
	}
	if float64(max) > 1.5*float64(min) {
		t.Fatalf("domain imbalance: min %d max %d", min, max)
	}
}

func TestNUMASingleDomainAllLocal(t *testing.T) {
	g := gen.TinySocial()
	tr := MeasureNUMATraffic(g, 8, sched.Topology{Domains: 1})
	if tr.RemoteCur != 0 || tr.RemoteNext != 0 || tr.LocalShare != 1 {
		t.Fatalf("single domain should be fully local: %+v", tr)
	}
}

func TestNUMAPlacementGeneralisesTraffic(t *testing.T) {
	// MeasureNUMAPlacement with the partition-aware placement must
	// reproduce MeasureNUMATraffic exactly — same model, explicit home.
	g := gen.TinySocial()
	const p = 16
	topo := sched.Topology{Domains: 4}
	want := MeasureNUMATraffic(g, p, topo)
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	got := MeasureNUMAPlacement(g, p, topo, func(v graph.VID) int {
		return topo.DomainOf(pt.Home(v))
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement-general measurement %+v differs from %+v", got, want)
	}
}

func TestNUMAPlacementScoresStripedWorse(t *testing.T) {
	// An unplaced baseline (64-vertex pages striped across domains,
	// ignoring partition structure) must lose the all-local next-array
	// property and the overall local share.
	g := gen.TinySocial()
	const p = 16
	topo := sched.Topology{Domains: 4}
	placed := MeasureNUMATraffic(g, p, topo)
	striped := MeasureNUMAPlacement(g, p, topo, func(v graph.VID) int {
		return int(v) / partition.BoundaryAlign % topo.Domains
	})
	if striped.RemoteNext == 0 {
		t.Fatal("striped placement kept all next accesses local; baseline is not a baseline")
	}
	if striped.LocalShare >= placed.LocalShare {
		t.Fatalf("striped local share %.3f should be below placed %.3f",
			striped.LocalShare, placed.LocalShare)
	}
}
