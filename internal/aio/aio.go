// Package aio is the engine's asynchronous shard-read layer: a
// goroutine-pool implementation of the io_uring-style submission queue
// the staging window models. A Reader keeps up to depth reads in
// flight at once across per-NUMA-domain queues — submissions for a
// domain are executed by that domain's workers, so under a real NUMA
// runtime the bytes land on the socket that will apply them — and each
// submission resolves a Ticket the consumer reaps in its own order.
// The read closures own decode as well as I/O (the engine submits
// read+streaming-decode as one unit), so decode overlaps both the
// other in-flight reads and the concurrent applies.
//
// The Reader makes no ordering promises across tickets: completions
// may reorder freely (slow reads finish late, short queues finish
// early). Consumers that need an order — the staging goroutine needs
// plan order, so the LRU sees the exact get/put sequence a synchronous
// sweep would issue — reap tickets in that order themselves.
package aio

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed resolves every ticket whose read had not started when the
// Reader was closed.
var ErrClosed = errors.New("aio: reader closed")

// Ticket is one submitted read's completion handle.
type Ticket[T any] struct {
	done chan struct{}
	val  T
	err  error
}

func (t *Ticket[T]) resolve(v T, err error) {
	t.val, t.err = v, err
	close(t.done)
}

// Ready reports whether the read has completed (successfully or not)
// without blocking.
func (t *Ticket[T]) Ready() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when the read completes.
func (t *Ticket[T]) Done() <-chan struct{} { return t.done }

// Wait blocks until the read completes and returns its result.
func (t *Ticket[T]) Wait() (T, error) {
	<-t.done
	return t.val, t.err
}

type request[T any] struct {
	read   func() (T, error)
	ticket *Ticket[T]
}

// Reader issues submitted reads from per-domain queues with at most
// depth reads executing at any moment, reader-wide. Submit never
// blocks: a submission that would overflow its domain's queue
// capacity resolves with an error instead (the engine sizes queues to
// the plan's per-domain counts, so overflow never happens in a
// well-formed sweep). Close is idempotent and waits for the workers
// to exit; reads still queued at Close resolve ErrClosed without
// executing.
type Reader[T any] struct {
	sem    chan struct{} // reader-wide in-flight budget, capacity = depth
	quit   chan struct{}
	notify func() // called after every completion (may be nil)
	queues []chan request[T]

	mu     sync.Mutex // guards closed and the queue sends racing Close
	closed bool
	wg     sync.WaitGroup

	inFlight int64
	peak     int64
}

// Budget is a sharable in-flight read budget: a semaphore of depth
// slots that one or many Readers draw from. A private Reader gets its
// own (New); a daemon hosting concurrent sweeps over one device hands
// the same Budget to every Reader it starts (NewShared), so the total
// reads in flight across all of them never exceed the device budget —
// N queries share the read-ahead, they do not multiply it.
type Budget struct {
	sem chan struct{}
}

// NewBudget builds an in-flight read budget of depth slots, floored
// at 1.
func NewBudget(depth int) *Budget {
	if depth < 1 {
		depth = 1
	}
	return &Budget{sem: make(chan struct{}, depth)}
}

// Cap returns the budget's slot count.
func (b *Budget) Cap() int { return cap(b.sem) }

// New builds a Reader with one queue per domain: caps[d] is domain d's
// queue capacity (a domain with no planned reads may pass 0 and gets
// no queue or workers). depth is the reader-wide in-flight budget,
// floored at 1. Each domain runs min(depth, caps[d]) workers — more
// could never execute simultaneously. notify, if non-nil, is invoked
// after every ticket resolves; consumers blocked waiting for "some
// ticket became ready" use it as their wake-up. A notify that signals
// a condition variable must take the mutex guarding the consumer's
// check-then-wait before broadcasting — an unserialized broadcast can
// land between the check and the wait and be lost.
func New[T any](caps []int, depth int, notify func()) *Reader[T] {
	return NewShared[T](caps, NewBudget(depth), notify)
}

// NewShared builds a Reader like New but drawing its in-flight slots
// from a caller-owned Budget, which may be shared with other Readers.
// Close releases only this Reader's workers; slots held by a read
// still executing return to the Budget when it finishes, so a shared
// Budget survives any of its Readers.
func NewShared[T any](caps []int, b *Budget, notify func()) *Reader[T] {
	depth := b.Cap()
	r := &Reader[T]{
		sem:    b.sem,
		quit:   make(chan struct{}),
		notify: notify,
		queues: make([]chan request[T], len(caps)),
	}
	for d, c := range caps {
		if c <= 0 {
			continue
		}
		r.queues[d] = make(chan request[T], c)
		workers := depth
		if c < workers {
			workers = c
		}
		r.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go r.serve(r.queues[d])
		}
	}
	return r
}

// serve is one domain worker: it claims a slot of the reader-wide
// budget, executes the read, resolves the ticket. After Close it
// drains its queue resolving everything ErrClosed so no reaper can
// block on an abandoned ticket.
func (r *Reader[T]) serve(q chan request[T]) {
	defer r.wg.Done()
	for req := range q {
		select {
		case <-r.quit:
			var zero T
			req.ticket.resolve(zero, ErrClosed)
		default:
			select {
			case <-r.quit:
				var zero T
				req.ticket.resolve(zero, ErrClosed)
			case r.sem <- struct{}{}:
				// The select above picks randomly when quit and a sem
				// slot are both ready, so re-check quit with priority:
				// a read still queued at Close must resolve ErrClosed
				// without executing, per the Close contract.
				select {
				case <-r.quit:
					<-r.sem
					var zero T
					req.ticket.resolve(zero, ErrClosed)
				default:
					n := atomic.AddInt64(&r.inFlight, 1)
					for {
						p := atomic.LoadInt64(&r.peak)
						if n <= p || atomic.CompareAndSwapInt64(&r.peak, p, n) {
							break
						}
					}
					v, err := req.read()
					atomic.AddInt64(&r.inFlight, -1)
					<-r.sem
					req.ticket.resolve(v, err)
				}
			}
		}
		if r.notify != nil {
			r.notify()
		}
	}
}

// Submit enqueues read on domain's queue and returns its ticket. A
// submission to a closed Reader, to a domain that was given no queue
// capacity, or to a domain whose queue is full resolves immediately
// with an error instead of executing.
func (r *Reader[T]) Submit(domain int, read func() (T, error)) *Ticket[T] {
	t := &Ticket[T]{done: make(chan struct{})}
	var q chan request[T]
	if domain >= 0 && domain < len(r.queues) {
		q = r.queues[domain]
	}
	if q == nil {
		var zero T
		t.resolve(zero, fmt.Errorf("aio: domain %d has no read queue", domain))
		return t
	}
	// The send happens under mu so it cannot race a concurrent Close
	// closing the channel. It must stay non-blocking: a blocking send
	// while holding mu would deadlock a concurrent Close if a caller
	// ever outran the queue capacity, so overflow resolves the ticket
	// with an error instead of blocking.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		var zero T
		t.resolve(zero, ErrClosed)
		return t
	}
	select {
	case q <- request[T]{read: read, ticket: t}:
		r.mu.Unlock()
	default:
		r.mu.Unlock()
		var zero T
		t.resolve(zero, fmt.Errorf("aio: domain %d read queue full (capacity %d)", domain, cap(q)))
	}
	return t
}

// InFlight returns the number of reads executing right now.
func (r *Reader[T]) InFlight() int { return int(atomic.LoadInt64(&r.inFlight)) }

// PeakInFlight returns the maximum simultaneous reads observed over
// the Reader's lifetime.
func (r *Reader[T]) PeakInFlight() int64 { return atomic.LoadInt64(&r.peak) }

// Close stops the Reader and waits for its workers to exit: reads
// already executing finish and resolve normally, queued reads resolve
// ErrClosed without executing. Idempotent.
func (r *Reader[T]) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.quit)
		for _, q := range r.queues {
			if q != nil {
				close(q)
			}
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
}
