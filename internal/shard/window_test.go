package shard

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/sched"
)

// TestConcurrentApplyPeakDensePageRank is the headline occupancy check:
// with the paper's 4 domains and a 4-deep window, a dense PageRank
// sweep applies at least two shards simultaneously — the cross-domain
// concurrency the sequential pipeline never had. The interleaving is
// enforced, not hoped for: the first apply is held open until a second
// apply has begun on another domain, which the window must permit by
// construction (the held apply frees its staging credit, so the stager
// runs ahead and the next shard's domain starts immediately). A
// pipeline that serialised applies would deadlock here; the timeout
// converts that into a failure. The ranks are then checked against the
// serial oracle, so the forced concurrency is also proven harmless.
func TestConcurrentApplyPeakDensePageRank(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 16, Options{
		Threads: 4, CacheShards: 8, Window: 4,
		Topology: sched.Topology{Domains: 4},
	})

	var mu sync.Mutex
	begun := 0
	second := make(chan struct{})
	e.onApplyBegin = func(int) {
		mu.Lock()
		begun++
		n := begun
		if n == 2 {
			close(second)
		}
		mu.Unlock()
		if n == 1 {
			select {
			case <-second:
			case <-time.After(10 * time.Second):
				t.Error("no second apply began while the first was held open: applies are serialised")
			}
		}
	}

	got := prOnSystem(e, 5)
	want := serialPR(g, 5)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v under concurrent apply", v, got[v], want[v])
		}
	}

	st := e.Stats()
	if st.ConcurrentApplyPeak < 2 {
		t.Fatalf("ConcurrentApplyPeak = %d, want >= 2 with D=4 k=4", st.ConcurrentApplyPeak)
	}
	var multi int64
	for l := 1; l < len(st.ApplyLevels); l++ {
		multi += st.ApplyLevels[l]
	}
	if multi == 0 {
		t.Fatal("ApplyLevels records no apply beginning alongside another")
	}
	if st.DenseSweeps == 0 {
		t.Fatal("the PageRank sweeps were not classified dense")
	}
}

// TestStatsSafeUnderConcurrentSweeps hammers Stats() from several
// goroutines while windowed multi-domain sweeps run. Under -race this
// proves the snapshot path is coherent with the concurrent counter
// mutation (satellite: Stats must be safe before the tentpole lands);
// the shape assertions catch torn or mis-sized snapshots.
func TestStatsSafeUnderConcurrentSweeps(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 16, Options{Threads: 4, CacheShards: 4, Window: 4})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := e.Stats()
				if st.ShardLoads < 0 || st.CacheHits < 0 || st.ConcurrentApplyPeak < 0 {
					t.Error("negative counter in a mid-sweep snapshot")
					return
				}
				if len(st.ApplyLevels) != e.Topology().Domains ||
					len(st.WindowDepths) != e.Options().Window+1 {
					t.Errorf("snapshot slice sizes %d/%d drifted", len(st.ApplyLevels), len(st.WindowDepths))
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}
	close(stop)
	wg.Wait()

	st := e.Stats()
	var applies, domainShards int64
	for _, l := range st.ApplyLevels {
		applies += l
	}
	for _, d := range st.DomainShards {
		domainShards += d
	}
	if applies != domainShards {
		t.Fatalf("ApplyLevels sums to %d applies but DomainShards to %d", applies, domainShards)
	}
}

// TestSweepWindowInvariants is the property test pinning the pipeline's
// invariants across window depths, IO depths, budgets, domain counts
// and thread counts, asserted from an event trace recorded by the
// engine hooks:
//
//  1. never more than IODepth uncached loads in flight (exactly one on
//     the historical IODepth = 1 configurations);
//  2. window depth <= max(IODepth, min(k, LRU budget - in-flight
//     applies)), sampled atomically with the apply count at every
//     staging hand-off, and staged + mid-apply shards <= budget +
//     IODepth (the engine's footprint: the LRU budget plus the reads
//     in flight — the pre-aio "budget + 1" at depth one);
//  3. every staged shard is applied exactly once per sweep, and nothing
//     is applied that was not staged;
//  4. never more than min(Domains, Threads) applies in flight, so
//     Threads keeps meaning total parallelism even when domains
//     outnumber workers and Split dealt borrowed worker IDs.
func TestSweepWindowInvariants(t *testing.T) {
	g := gen.TinySocial()
	configs := []Options{
		{Threads: 1, CacheShards: 1, Window: 1},
		{Threads: 2, CacheShards: 2, Window: 2, Topology: sched.Topology{Domains: 2}},
		{Threads: 4, CacheShards: 3, Window: 5}, // window clamped to the budget
		{Threads: 4, CacheShards: 8, Window: 4},
		{Threads: 2, CacheShards: 4, Window: 1, Topology: sched.Topology{Domains: 8}},
		{Threads: 8, CacheShards: 2, Window: 2, Topology: sched.Topology{Domains: 3}},
		{Threads: 4, CacheShards: 4, Window: 4, IODepth: 2},
		{Threads: 4, CacheShards: 4, Window: 4, IODepth: 4, Topology: sched.Topology{Domains: 2}},
		{Threads: 8, CacheShards: 2, Window: 2, IODepth: 2, Topology: sched.Topology{Domains: 4}},
		{Threads: 2, CacheShards: 6, IODepth: 3}, // defaulted window must cover the read budget
	}
	for ci, opts := range configs {
		t.Run(fmt.Sprintf("config-%d", ci), func(t *testing.T) {
			e := buildTestEngine(t, g, 12, opts)
			k, budget, iodepth := e.opts.Window, e.opts.CacheShards, e.opts.IODepth
			applyCap := e.Topology().Domains
			if th := e.Threads(); th < applyCap {
				applyCap = th
			}

			var mu sync.Mutex
			loadsInFlight, maxLoadsInFlight := 0, 0
			applies, maxApplies := 0, 0
			staged := map[int]int{}
			applied := map[int]int{}
			stageEvents := 0
			e.onLoadBegin = func(int) {
				mu.Lock()
				loadsInFlight++
				if loadsInFlight > maxLoadsInFlight {
					maxLoadsInFlight = loadsInFlight
				}
				mu.Unlock()
			}
			e.onLoadEnd = func(int) {
				mu.Lock()
				loadsInFlight--
				mu.Unlock()
			}
			e.onStage = func(si, depth, applying int) {
				limit := budget - applying
				if limit > k {
					limit = k
				}
				if limit < iodepth {
					limit = iodepth
				}
				if depth > limit {
					t.Errorf("window depth %d with %d applies in flight exceeds max(IODepth=%d, min(k=%d, budget=%d - applying)) = %d",
						depth, applying, iodepth, k, budget, limit)
				}
				if depth+applying > budget+iodepth {
					t.Errorf("%d staged + %d applying shards exceed the footprint contract of budget %d + IODepth %d",
						depth, applying, budget, iodepth)
				}
				mu.Lock()
				staged[si]++
				stageEvents++
				mu.Unlock()
			}
			e.onApplyBegin = func(si int) {
				mu.Lock()
				applied[si]++
				applies++
				if applies > maxApplies {
					maxApplies = applies
				}
				mu.Unlock()
			}
			e.onApplyEnd = func(int) {
				mu.Lock()
				applies--
				mu.Unlock()
			}

			sweep := func(run func()) {
				mu.Lock()
				staged, applied = map[int]int{}, map[int]int{}
				mu.Unlock()
				run()
				mu.Lock()
				defer mu.Unlock()
				for si, n := range staged {
					if applied[si] != n {
						t.Errorf("shard %d staged %d times but applied %d times in one sweep", si, n, applied[si])
					}
					if n != 1 {
						t.Errorf("shard %d staged %d times in one sweep, want exactly once", si, n)
					}
				}
				for si := range applied {
					if staged[si] == 0 {
						t.Errorf("shard %d applied without being staged", si)
					}
				}
			}

			// A dense sweep, then a full multi-round traversal (sparse and
			// dense rounds, cache hits and evictions).
			sweep(func() { e.EdgeMap(frontier.All(g), passOp(), api.DirAuto) })
			parents := newParents(g.NumVertices())
			f := frontier.FromVertex(g, 0)
			parents[0] = 0
			for !f.IsEmpty() {
				next := f
				sweep(func() { next = e.EdgeMap(f, bfsOp(parents), api.DirAuto) })
				f = next
			}

			mu.Lock()
			defer mu.Unlock()
			if maxLoadsInFlight > iodepth {
				t.Fatalf("%d uncached loads in flight at once, want at most IODepth = %d", maxLoadsInFlight, iodepth)
			}
			if maxLoadsInFlight == 0 {
				t.Fatal("no loads observed; the trace recorded nothing")
			}
			if st := e.Stats(); st.ReadsInFlightPeak < 1 || st.ReadsInFlightPeak > int64(iodepth) {
				t.Fatalf("ReadsInFlightPeak = %d outside [1, IODepth = %d]", st.ReadsInFlightPeak, iodepth)
			}
			if maxApplies > applyCap {
				t.Fatalf("%d applies in flight at once, cap is min(Domains, Threads) = %d", maxApplies, applyCap)
			}
			var histogram int64
			for _, n := range e.Stats().WindowDepths {
				histogram += n
			}
			if int(histogram) != stageEvents {
				t.Fatalf("WindowDepths histogram sums to %d but %d hand-offs were staged", histogram, stageEvents)
			}
		})
	}
}

// newParents returns a parent array initialised to -1, the bfsOp
// convention.
func newParents(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = -1
	}
	return p
}

// TestWindowRunsAheadToDepthK proves the stager actually uses the
// configured depth: with the single apply goroutine held open
// (Domains: 1 serialises applies), the stager must keep loading until
// exactly k shards sit staged, then stall on the window bound. Both
// directions are asserted — reaching k (a shallower window would stall
// early; the hold makes the hand-off deterministic) and never
// exceeding it (checked by TestSweepWindowInvariants' bound too).
func TestWindowRunsAheadToDepthK(t *testing.T) {
	g := gen.TinySocial()
	const k = 3
	e := buildTestEngine(t, g, 12, Options{
		Threads: 1, CacheShards: 8, Window: k,
		Topology: sched.Topology{Domains: 1},
	})

	var mu sync.Mutex
	maxDepth := 0
	deepEnough := make(chan struct{})
	var once sync.Once
	e.onStage = func(_, depth, _ int) {
		mu.Lock()
		if depth > maxDepth {
			maxDepth = depth
		}
		mu.Unlock()
		if depth >= k {
			once.Do(func() { close(deepEnough) })
		}
	}
	var applyOnce sync.Once
	e.onApplyBegin = func(int) {
		applyOnce.Do(func() {
			select {
			case <-deepEnough:
			case <-time.After(10 * time.Second):
				t.Error("stager never filled the window to depth k while the apply was held")
			}
		})
	}

	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)

	mu.Lock()
	defer mu.Unlock()
	if maxDepth != k {
		t.Fatalf("max window depth %d, want exactly k=%d", maxDepth, k)
	}
	st := e.Stats()
	if st.WindowDepths[k] == 0 {
		t.Fatalf("WindowDepths[%d] = 0 despite the window provably reaching depth %d: %v", k, k, st.WindowDepths)
	}
}
