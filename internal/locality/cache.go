package locality

import "math/bits"

// Cache is a set-associative LRU cache simulator operating on byte
// addresses. It models a single level (the LLC the paper's MPKI counters
// observe).
type Cache struct {
	lineShift uint
	setMask   uint64
	assoc     int
	// sets[s] holds up to assoc line tags in LRU order, most recent
	// first. Linear scan is fine for the small associativities modelled.
	sets [][]uint64

	accesses int64
	misses   int64
}

// CacheConfig sizes a simulated cache.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Assoc     int // ways
}

// DefaultLLC models a last-level-cache slice proportioned for the scaled
// graphs: 512 KiB, 16-way, 64-byte lines. The paper's Xeon E7-4860 v2 has
// a 30 MiB LLC for 41M-vertex graphs; 512 KiB is the same ratio of cache
// to vertex-data footprint at our 2^17–2^18 vertex scale.
func DefaultLLC() CacheConfig {
	return CacheConfig{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 16}
}

// AdaptiveLLC sizes the simulated LLC relative to the graph's per-vertex
// data: one eighth of the next-array footprint (n × 4 bytes), the same
// cache-to-data ratio as the paper's 30 MiB LLC against its 160 MiB
// Twitter vertex arrays. Fig. 8 uses this so the locality trends appear
// at laptop graph scale. The size is rounded up to a power of two to
// keep the set count a power of two.
func AdaptiveLLC(numVertices int) CacheConfig {
	size := numVertices * vertexBytes / 8
	if size < 16<<10 {
		size = 16 << 10
	}
	p := 1
	for p < size {
		p <<= 1
	}
	return CacheConfig{SizeBytes: p, LineBytes: 64, Assoc: 16}
}

// NewCache builds a simulator from the config. Panics on non-power-of-two
// geometry, which would be a configuration bug.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("locality: line size must be a power of two")
	}
	if cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic("locality: cache size and associativity must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	numSets := lines / cfg.Assoc
	if numSets == 0 {
		numSets = 1
	}
	if numSets&(numSets-1) != 0 {
		panic("locality: set count must be a power of two")
	}
	c := &Cache{
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(numSets - 1),
		assoc:     cfg.Assoc,
		sets:      make([][]uint64, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Assoc)
	}
	return c
}

// Access simulates one access to the byte address and reports whether it
// hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	tag := addr >> c.lineShift
	s := tag & c.setMask
	set := c.sets[s]
	for i, t := range set {
		if t == tag {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return true
		}
	}
	c.misses++
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[s] = set
	return false
}

// Accesses returns the total simulated accesses.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the total simulated misses.
func (c *Cache) Misses() int64 { return c.misses }

// MissRate returns misses/accesses (0 for an untouched cache).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.accesses, c.misses = 0, 0
}
