package graph

// COO is a coordinate-list view of a graph: parallel source and
// destination arrays. The COO layout is the only layout whose storage is
// independent of the number of partitions (2|E|·b_v bytes), which is why
// the paper uses it for aggressively partitioned dense traversal.
type COO struct {
	N   int
	Src []VID
	Dst []VID
}

// NumEdges returns the number of edges in the list.
func (c *COO) NumEdges() int64 { return int64(len(c.Src)) }

// COOFromGraph materialises the COO view of g in CSR order (sorted by
// source vertex): the exact order a forward whole-graph traversal visits
// edges.
func COOFromGraph(g *Graph) *COO {
	c := &COO{
		N:   g.NumVertices(),
		Src: make([]VID, g.NumEdges()),
		Dst: make([]VID, g.NumEdges()),
	}
	var i int64
	for v := 0; v < g.n; v++ {
		for _, d := range g.OutNeighbors(VID(v)) {
			c.Src[i] = VID(v)
			c.Dst[i] = d
			i++
		}
	}
	return c
}

// COOFromEdges builds a COO view directly from an edge list, preserving
// the given order.
func COOFromEdges(n int, edges []Edge) *COO {
	c := &COO{N: n, Src: make([]VID, len(edges)), Dst: make([]VID, len(edges))}
	for i, e := range edges {
		c.Src[i] = e.Src
		c.Dst[i] = e.Dst
	}
	return c
}

// Edges materialises the COO content as an edge list in stored order.
func (c *COO) Edges() []Edge {
	out := make([]Edge, len(c.Src))
	for i := range c.Src {
		out[i] = Edge{Src: c.Src[i], Dst: c.Dst[i]}
	}
	return out
}

// Slice returns a sub-list view [lo,hi) sharing storage with c.
func (c *COO) Slice(lo, hi int64) *COO {
	return &COO{N: c.N, Src: c.Src[lo:hi], Dst: c.Dst[lo:hi]}
}
