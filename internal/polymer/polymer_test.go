package polymer

import (
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

func countingOp(n int) (api.EdgeOp, *int64) {
	var edges int64
	seen := make([]int32, n)
	return api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			atomic.AddInt64(&edges, 1)
			return atomic.CompareAndSwapInt32(&seen[v], 0, 1)
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			atomic.AddInt64(&edges, 1)
			return atomic.CompareAndSwapInt32(&seen[v], 0, 1)
		},
	}, &edges
}

func TestConfigs(t *testing.T) {
	g := gen.TinySocial()
	p := New(g, Polymer(), 0)
	if p.Name() != "Polymer" {
		t.Fatal("polymer name")
	}
	if p.Partitioning().P != 4 {
		t.Fatalf("polymer partitions = %d, want 4 (one per NUMA domain)", p.Partitioning().P)
	}
	v1 := New(g, GGv1(), 0)
	if v1.Name() != "GG-v1" {
		t.Fatal("ggv1 name")
	}
}

func TestGGv1BalancesEdgesBetterThanPolymer(t *testing.T) {
	g := gen.Preset("livejournal-sm")
	pol := New(g, Polymer(), 1).Partitioning()
	v1 := New(g, GGv1(), 1).Partitioning()
	// GG-v1's contribution is edge balance: its in-edge imbalance must
	// not exceed Polymer's vertex-balanced split.
	imb := func(loads []int64) float64 {
		var sum, max int64
		for _, l := range loads {
			sum += l
			if l > max {
				max = l
			}
		}
		return float64(max) * float64(len(loads)) / float64(sum)
	}
	if imb(v1.InEdgeCounts(g)) > imb(pol.InEdgeCounts(g)) {
		t.Fatalf("GG-v1 imbalance %.2f worse than Polymer %.2f",
			imb(v1.InEdgeCounts(g)), imb(pol.InEdgeCounts(g)))
	}
}

func TestDenseForwardAppliesAllEdges(t *testing.T) {
	g := gen.TinySocial()
	for _, cfg := range []Config{Polymer(), GGv1()} {
		e := New(g, cfg, 0)
		op, edges := countingOp(g.NumVertices())
		e.EdgeMap(frontier.All(g), op, api.DirForward)
		if *edges != g.NumEdges() {
			t.Fatalf("%s: applied %d edges, want %d", cfg.SystemName, *edges, g.NumEdges())
		}
	}
}

func TestSparsePartitionedCoversAllEdgesOfActives(t *testing.T) {
	g := gen.TinySocial()
	e := New(g, GGv1(), 0)
	var leaf graph.VID
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VID(v)) >= 1 && g.OutDegree(graph.VID(v)) <= 3 {
			leaf = graph.VID(v)
			break
		}
	}
	op, edges := countingOp(g.NumVertices())
	e.EdgeMap(frontier.FromVertex(g, leaf), op, api.DirForward)
	if *edges != g.OutDegree(leaf) {
		t.Fatalf("sparse path applied %d edges, want %d", *edges, g.OutDegree(leaf))
	}
}

func TestBackwardMatchesForwardFrontier(t *testing.T) {
	g := gen.TinySocial()
	e := New(g, Polymer(), 0)
	opF, _ := countingOp(g.NumVertices())
	fwd := e.EdgeMap(frontier.All(g), opF, api.DirForward)
	opB, _ := countingOp(g.NumVertices())
	bwd := e.EdgeMap(frontier.All(g), opB, api.DirBackward)
	if fwd.Count() != bwd.Count() {
		t.Fatalf("forward %d vs backward %d", fwd.Count(), bwd.Count())
	}
}
