package shard

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestWriteOpenRoundTrip(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	st, err := Write(dir, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices() != g.NumVertices() || st.NumEdges() != g.NumEdges() {
		t.Fatal("sizes wrong")
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumShards() != st.NumShards() {
		t.Fatal("shard count changed on reopen")
	}
}

func TestSweepVisitsEveryEdgeOnce(t *testing.T) {
	g := gen.TinySocial()
	st, err := Write(t.TempDir(), g, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.Edge]int{}
	if err := st.Sweep(func(u, v graph.VID) { seen[graph.Edge{Src: u, Dst: v}]++ }); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range seen {
		total += int64(c)
	}
	if total != g.NumEdges() {
		t.Fatalf("swept %d edges, want %d", total, g.NumEdges())
	}
	for _, e := range g.Edges() {
		if seen[e] == 0 {
			t.Fatalf("edge %v missing from shards", e)
		}
	}
}

func TestShardDestinationsInRange(t *testing.T) {
	g := gen.TinyRoad()
	st, err := Write(t.TempDir(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.NumShards(); i++ {
		lo, hi := st.Range(i)
		c, err := st.LoadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range c.Dst {
			if d < lo || d >= hi {
				t.Fatalf("shard %d: destination %d outside [%d,%d)", i, d, lo, hi)
			}
		}
	}
}

func TestOutOfCorePageRankMatchesInMemory(t *testing.T) {
	g := gen.Preset("yahoo-sm")
	st, err := Write(t.TempDir(), g, 24)
	if err != nil {
		t.Fatal(err)
	}
	outDeg, err := st.OutDegrees()
	if err != nil {
		t.Fatal(err)
	}
	got, err := PageRank(st, 10, outDeg)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.SerialPR(g, 10)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestOutDegreesMatchGraph(t *testing.T) {
	g := gen.TinySocial()
	st, err := Write(t.TempDir(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := st.OutDegrees()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if deg[v] != g.OutDegree(graph.VID(v)) {
			t.Fatalf("out-degree[%d] = %d, want %d", v, deg[v], g.OutDegree(graph.VID(v)))
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	g := gen.Chain(32)
	dir := t.TempDir()
	if _, err := Write(dir, g, 4); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestLoadShardValidates(t *testing.T) {
	g := gen.Chain(32)
	dir := t.TempDir()
	st, err := Write(dir, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate a shard file; reload must fail.
	path := filepath.Join(dir, "shard-0000.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadShard(0); err == nil {
		t.Fatal("truncated shard accepted")
	}
	if _, err := st.LoadShard(99); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}
