package shard

import (
	"fmt"
	"sync/atomic"

	"repro/internal/aio"
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sched"
)

// Options configures the out-of-core engine.
type Options struct {
	// Threads is the worker parallelism for intra-shard application and
	// vertex operators; 0 selects GOMAXPROCS.
	Threads int
	// CacheShards is the LRU budget in resident shards; 0 selects
	// DefaultCacheShards. The engine's edge-data footprint is bounded by
	// this many decoded shards plus the one being loaded.
	CacheShards int
	// SparseDiv is the density threshold divisor: a frontier with
	// |F| + Σ out-deg ≤ |E|/SparseDiv takes the sparse path (load only
	// shards with active sources); denser frontiers stream the full
	// shard sequence. 0 selects the paper's 20.
	SparseDiv int64
	// NoPrefetch disables the sweep pipeline: shards are loaded and
	// applied strictly alternately on the sweep goroutine, the pre-
	// pipeline behaviour and the sequential reference the differential
	// suites compare against. The zero value — prefetch on — runs the
	// windowed, cross-domain concurrent pipeline.
	NoPrefetch bool
	// Window is the staging window depth k: how many shards the
	// pipeline may hold staged ahead of the applies (loaded from disk,
	// loading, or promoted from the LRU, not yet begun applying). The
	// original double buffer is k = 1; deeper windows let the staging
	// goroutine run ahead — an io_uring submission queue of depth k,
	// with up to IODepth of its entries genuinely reading at once — so
	// the concurrent per-domain applies never starve. At any moment the
	// depth is additionally bounded by max(IODepth, min(k, CacheShards −
	// in-flight applies)), keeping staged shards inside the LRU budget.
	// 0 selects max(domain count, IODepth); values above CacheShards
	// are clamped to it, and an explicit value below IODepth is
	// rejected (the window must cover every in-flight read). Ignored
	// when NoPrefetch is set.
	Window int
	// IODepth is the uncached-read budget: how many shard reads the
	// staging pipeline may keep in flight simultaneously through the
	// internal/aio reader. 1 — the default — is the historical "one
	// uncached load in flight" engine; deeper budgets issue up to
	// IODepth reads ahead of the reap point, each executed (read +
	// streaming decode) on a worker of the NUMA domain that will apply
	// the shard. Results are bit-identical at any depth: reads complete
	// out of order, but shards are admitted to the LRU and handed to
	// the applies strictly in plan order. Must fit the cache
	// (IODepth ≤ CacheShards; the engine's footprint contract is
	// CacheShards + IODepth decoded shards) and is contradictory with
	// NoPrefetch — it disables the pipeline that would issue the reads;
	// both combinations are rejected with *OptionsError.
	IODepth int
	// Topology is the modelled NUMA topology shards are placed on;
	// the zero value selects sched.DefaultTopology (4 domains, the
	// paper's machine). Shard i's destination range lives on domain
	// i mod Domains and is applied by that domain's workers — which
	// confines each shard's apply to Threads/Domains workers, the
	// price of the ownership discipline (a real NUMA machine pays it
	// back in local bandwidth; the model only keeps the books).
	// Domains: 1 restores full-pool applies.
	Topology sched.Topology
	// Order is the sweep-order policy: how the planner permutes each
	// EdgeMap's shard plan before the staging goroutine walks it. The
	// zero value — OrderAscending — is the historical ascending-index
	// stream and the differential baseline; OrderZigzag and
	// OrderResidencyFirst reorder the same shard set to keep the LRU
	// tail of one sweep alive into the next (see plan.go). Every policy
	// is bit-identical: shards own disjoint destination ranges, so plan
	// order can change only when a shard is read, never what is computed.
	Order Order
	// Format is the shard-file encoding Build writes; 0 selects
	// DefaultFormat (v2, delta+uvarint compressed). Engines over
	// already-written stores read whatever the manifest declares, and
	// the resolved Options always report that actual store format —
	// NewEngine overwrites this field from the store.
	Format Format
	// SweepMode selects how dense sweeps move updates from edges to
	// destination state. SweepEdgeCentric — the zero value — applies
	// each staged shard in place, the historical path and the
	// differential baseline. SweepScatterGather splits every dense
	// sweep into two sequential phases (the PCPM design, Lakhotia et
	// al.): scatter streams each staged shard's edges once and appends
	// a compact (dstOffset, src) zigzag-delta-varint bin — one bin per
	// shard, so bins inherit the 64-aligned disjoint destination ranges
	// and never cross modelled NUMA domains — and gather has each
	// domain replay only its own bins into its destination ranges: pure
	// sequential reads, no atomics, bit-identical to the edge-centric
	// apply by the same disjointness argument (per-destination update
	// order is bucket order either way). Bins encode the full shard
	// (the frontier filter moves to gather), so they are retained and
	// replayed by every later dense sweep without touching the plan,
	// the LRU or the disk — the bytes-moved win on iterative dense
	// algorithms. Sparse frontiers always take the edge-centric path
	// (PCPM only wins when dense). Composes with Window, IODepth and
	// Order; rejected with NoPrefetch, which disables the staging
	// pipeline the scatter phase runs on. See scattergather.go.
	SweepMode SweepMode
	// BinBudgetBytes bounds the in-memory footprint of the
	// scatter/gather mode's retained update bins. 0 — the default —
	// retains every bin for the store's lifetime (footprint roughly the
	// v2-compressed store size). A positive budget turns the bin store
	// into a byte-budgeted refcounted LRU shared by every session of a
	// Host: resident bin bytes never exceed the budget at any
	// observation point, a bin pinned by an in-flight gather is never
	// evicted, and an insert that cannot fit is refused (used once,
	// uncached) rather than blocked on. Bins leaving memory spill to
	// generation-suffixed files next to the store and replay with one
	// sequential read on the next dense sweep; a missing or corrupt
	// spill file silently re-scatters the shard. Values below
	// MinBinBudgetBytes (except 0) and combinations with
	// SweepEdgeCentric — which keeps no bins to budget — are rejected
	// with *OptionsError. See bincache.go.
	BinBudgetBytes int64
}

// DefaultCacheShards is the default LRU budget. It is deliberately small
// — out of core means most shards live on disk — while still letting
// mid-size working sets (BFS wavefronts that revisit the same ranges)
// hit the cache.
const DefaultCacheShards = 8

// OptionsError is the typed rejection normalize returns for a
// nonsensical or contradictory Options value. Zero values still select
// defaults (the long-standing construction idiom), and Window is still
// clamped down to CacheShards (a documented, monotone adjustment); but
// negative knobs and genuinely contradictory combinations — an IODepth
// the cache cannot hold, a window narrower than the read budget it
// must cover, NoPrefetch with a multi-read budget — are errors, never
// silent rewrites that run something other than what was asked for.
type OptionsError struct {
	Field  string // the offending Options field
	Value  int64  // the rejected value
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("shard: invalid Options.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// normalize resolves zero values to defaults and validates the result.
func (o Options) normalize() (Options, error) {
	if o.Threads < 0 {
		return o, &OptionsError{"Threads", int64(o.Threads), "must be >= 0 (0 selects GOMAXPROCS)"}
	}
	if o.CacheShards < 0 {
		return o, &OptionsError{"CacheShards", int64(o.CacheShards), "must be >= 0 (0 selects DefaultCacheShards)"}
	}
	if o.SparseDiv < 0 {
		return o, &OptionsError{"SparseDiv", o.SparseDiv, "must be >= 0 (0 selects the paper's 20)"}
	}
	if o.Window < 0 {
		return o, &OptionsError{"Window", int64(o.Window), "must be >= 0 (0 selects max(Domains, IODepth))"}
	}
	if o.IODepth < 0 {
		return o, &OptionsError{"IODepth", int64(o.IODepth), "must be >= 0 (0 selects 1, the synchronous read path)"}
	}
	if o.Topology.Domains < 0 {
		return o, &OptionsError{"Topology.Domains", int64(o.Topology.Domains), "must be >= 0 (0 selects the default topology)"}
	}
	if !o.SweepMode.valid() {
		return o, &OptionsError{"SweepMode", int64(o.SweepMode), "unknown sweep mode (have edge-centric, scatter-gather)"}
	}
	if o.NoPrefetch && o.SweepMode == SweepScatterGather {
		return o, &OptionsError{"SweepMode", int64(o.SweepMode),
			"contradicts NoPrefetch: the scatter phase runs on the staging pipeline NoPrefetch disables"}
	}
	if o.BinBudgetBytes < 0 {
		return o, &OptionsError{"BinBudgetBytes", o.BinBudgetBytes, "must be >= 0 (0 retains every bin unbounded)"}
	}
	if o.BinBudgetBytes > 0 && o.BinBudgetBytes < MinBinBudgetBytes {
		return o, &OptionsError{"BinBudgetBytes", o.BinBudgetBytes,
			fmt.Sprintf("below MinBinBudgetBytes = %d; a budget that cannot hold even one bin's segments refuses every insert", MinBinBudgetBytes)}
	}
	if o.BinBudgetBytes > 0 && o.SweepMode != SweepScatterGather {
		return o, &OptionsError{"BinBudgetBytes", o.BinBudgetBytes,
			"only meaningful with SweepMode = SweepScatterGather; the edge-centric sweep keeps no bins to budget"}
	}
	if o.CacheShards == 0 {
		o.CacheShards = DefaultCacheShards
	}
	if o.SparseDiv == 0 {
		o.SparseDiv = 20
	}
	if o.Topology.Domains == 0 {
		o.Topology = sched.DefaultTopology()
	}
	if o.IODepth == 0 {
		o.IODepth = 1
	}
	if o.IODepth > o.CacheShards {
		return o, &OptionsError{"IODepth", int64(o.IODepth),
			fmt.Sprintf("exceeds CacheShards = %d; every in-flight read holds a cache slot, so the budget cannot cover it", o.CacheShards)}
	}
	if o.NoPrefetch && o.IODepth > 1 {
		return o, &OptionsError{"IODepth", int64(o.IODepth),
			"contradicts NoPrefetch: the sequential path cannot issue concurrent reads"}
	}
	if o.Window == 0 {
		o.Window = o.Topology.Domains
		if o.Window < o.IODepth {
			o.Window = o.IODepth
		}
	} else if o.Window < o.IODepth {
		return o, &OptionsError{"Window", int64(o.Window),
			fmt.Sprintf("narrower than IODepth = %d; the staging window must cover every in-flight read", o.IODepth)}
	}
	if o.Window > o.CacheShards {
		o.Window = o.CacheShards
	}
	return o, nil
}

// Validate reports whether o would be accepted by engine construction,
// without building anything — the flag-parse-time check the CLIs use to
// reject a nonsensical combination with a usage error (exit 2) instead
// of a construction failure later. The returned error is the same typed
// *OptionsError NewEngine/NewHost would produce.
func (o Options) Validate() error {
	_, err := o.normalize()
	return err
}

// Stats counts the engine's sweep, pipeline and I/O activity.
type Stats struct {
	DenseSweeps   int64 // EdgeMaps that streamed the full shard sequence
	SparseSweeps  int64 // EdgeMaps that loaded only shards with active sources
	ShardLoads    int64 // shard files decoded from disk (by either path)
	CacheHits     int64 // shard applications served from the LRU cache
	ShardsSkipped int64 // shard visits avoided by frontier-awareness

	// I/O volume. BytesRead is the on-disk size of every shard file
	// decoded; BytesLogical prices the same loads at the raw v1
	// encoding (8-byte header + 8 bytes/edge), so BytesLogical /
	// BytesRead is the live compression ratio of the store being swept
	// (1.0 on v1 stores). Like the occupancy counters, both are atomic
	// and safe to sample mid-sweep.
	BytesRead    int64
	BytesLogical int64

	// Sweep-order planner counters. PlannedCacheHits is the number of
	// plan entries the planner predicted the LRU would serve as the
	// cache stood at plan time — an exact simulation of the sweep's own
	// fetch sequence, so over a fault-free run it equals the CacheHits
	// those sweeps then collect. ReloadsAvoided is the number of disk
	// loads a whole-run ascending baseline would have issued minus the
	// loads the chosen order actually needs, accumulated sweep by sweep
	// against a persistent shadow of the baseline's cache (reordering
	// one sweep also changes what the next sweep finds resident, so the
	// saving compounds); identically 0 under OrderAscending. Both count
	// completed sweeps only: a sweep aborted by an operator panic or a
	// load failure charges nothing (its partial fetches still show in
	// CacheHits/ShardLoads, which track what actually happened).
	PlannedCacheHits int64
	ReloadsAvoided   int64

	// Scatter/gather counters (zero under SweepEdgeCentric).
	// ScatterGatherSweeps counts dense EdgeMaps that ran the two-phase
	// path — sparse sweeps fall back to edge-centric and count under
	// SparseSweeps only. BinBytesWritten / BinBytesRead are the encoded
	// bin traffic: bytes the scatter phase appended and bytes the gather
	// phase replayed (retained bins are written once and read every
	// sweep, so over an iterative dense run BinBytesRead grows while
	// BinBytesWritten and BytesRead do not — the mode's bytes-moved
	// win). BinShardsReused counts dense-sweep plan entries whose bin
	// was already resident from an earlier sweep: gathers that needed no
	// shard fetch at all. In this mode DomainShards/DomainEdges count
	// gathered bins and their entries — the phase that applies edge work
	// to a domain's destination ranges.
	//
	// The bin-budget counters (zero with BinBudgetBytes = 0) charge the
	// session whose operation triggered them, not the session that
	// scattered the bin: BinShardsEvicted counts cold bins this
	// session's inserts pushed out of the budget, BinBytesSpilled the
	// spill-file bytes those evictions (and refused inserts) wrote, and
	// BinSpillReplays / BinSpillBytesRead the bins — and sequential disk
	// bytes — this session's dense sweeps restored from spill files
	// instead of re-scattering. Host-wide aggregates (residency, peak,
	// hit/eviction totals across sessions) live in Host.BinStats.
	ScatterGatherSweeps int64
	BinShardsReused     int64
	BinBytesWritten     int64
	BinBytesRead        int64
	BinShardsEvicted    int64
	BinBytesSpilled     int64
	BinSpillReplays     int64
	BinSpillBytesRead   int64

	// Multi-tenant counters (zero on private engines; see host.go).
	// SharedReads counts uncached reads this session resolved without
	// touching disk because another session's load for the same shard
	// was already in flight — or had just landed — in the shared cache
	// (single-flight). CoScheduledSweeps counts dense sweeps that joined
	// another query's disk pass as a follower instead of walking the
	// store themselves; CoSharedShards counts the plan entries such
	// sweeps applied straight from the leader's publications, shards
	// that cost this query neither a load nor a cache fetch.
	SharedReads       int64
	CoScheduledSweeps int64
	CoSharedShards    int64

	// Pipeline counters (zero when NoPrefetch).
	PrefetchHits    int64 // staged shards promoted from the LRU cache
	PrefetchLoads   int64 // staged shards decoded from disk for the stager
	OverlappedLoads int64 // pipeline loads that overlapped an in-progress apply

	// Async-read occupancy (the internal/aio path; NoPrefetch engines
	// only ever record depth 1). ReadDepths[d] counts uncached reads
	// that began with d reads in flight engine-wide, itself included
	// (index 0 is unused; the histogram is sized IODepth+1);
	// ReadsInFlightPeak is the maximum simultaneous uncached reads
	// observed. An IODepth=1 engine records ReadsInFlightPeak == 1 on
	// any sweep that loads — the historical invariant, now measured
	// rather than assumed.
	ReadDepths        []int64
	ReadsInFlightPeak int64

	// Concurrent-apply occupancy. ApplyLevels[l] counts shard applies
	// that began with l+1 shards mid-apply engine-wide (ApplyLevels[0]
	// is a lone apply, ApplyLevels[Domains-1] full occupancy);
	// ConcurrentApplyPeak is the maximum simultaneous applies observed.
	// The unpipelined path only ever records level 0.
	ApplyLevels         []int64
	ConcurrentApplyPeak int64

	// WindowDepths[d] counts staging hand-offs that completed with d
	// shards resident in the window (loaded or loading, not yet begun
	// applying); index 0 is unused. The depth never exceeds
	// max(1, min(Options.Window, CacheShards − in-flight applies)).
	WindowDepths []int64

	// Modelled NUMA placement: per-domain shard applications and edges
	// applied, indexed by domain. Placement is round-robin by shard
	// index (Topology.DomainOf), so a balanced sweep shows near-equal
	// domain loads.
	DomainShards []int64
	DomainEdges  []int64
}

// Engine runs the engine-neutral algorithm API out of core: it
// implements api.System on top of a Store, so every algorithm in
// internal/algorithms executes unmodified while edge data streams from
// disk. Dense and medium sweeps touch only per-vertex state (frontier
// bitmaps, the CSR degree index for frontier statistics, the
// source-range summaries) plus the resident shards; sparse sweeps
// additionally walk the in-memory out-neighbour lists of just the
// active vertices — O(frontier work) — to plan the exact shard set to
// load. The Graph handle is therefore load-bearing: the api.System
// contract exposes it for algorithm-side metadata, and the sparse
// planner reads its adjacency. A deployment that drops the in-memory
// adjacency would substitute summary-based planning (over-approximate
// but sound) in planSparse; the edge *application* never reads it.
//
// Writes are partition-exclusive end to end: a shard holds all in-edges
// of its 64-aligned destination range, and each resident shard is
// applied in parallel over 64-aligned destination sub-ranges, so the
// non-atomic EdgeOp.Update path is always used — the out-of-core
// counterpart of the paper's "COO + na" configuration.
//
// Sweeps are pipelined (plan → stage → apply → publish): once the
// planner fixes the shard order, a staging goroutine keeps up to
// Options.Window shards staged ahead — promoted from the LRU, or read
// through the internal/aio reader with up to Options.IODepth uncached
// reads in flight at once — and up to
// min(Domains, Threads) staged shards are applied simultaneously, one
// per modelled NUMA domain, each by the workers of the domain that
// owns its destination range (round-robin by shard index, the
// placement Polymer uses for in-memory partitions, here also run with
// Polymer's all-sockets-at-once concurrency). Results are bit-identical with the
// pipeline on or off and at any window depth: shards own disjoint
// destination ranges and operators write destination state only, so
// each destination's updates happen in shard-file order regardless of
// cross-domain timing.
//
// EdgeMap cannot return an error through the api.System interface, so a
// shard that fails to load mid-sweep panics with the underlying error.
// Engines over corrupt directories fail fast in NewEngine instead when
// the manifest is unreadable.
type Engine struct {
	st   *Store
	g    *graph.Graph
	pool *sched.Pool
	opts Options
	// gen is the store generation the engine was built over. The
	// engine's graph metadata, feeds and planner state all describe
	// that generation; after an ApplyBatch or Compact on the store the
	// engine is stale, and every sweep entry point checks the pin
	// rather than silently mixing views (see checkGen).
	gen int64

	home  []int32    // vertex -> shard whose destination range holds it
	feeds [][]uint64 // per-shard source-range summary (Store.SourceSummary)
	cache engineCache

	// Multi-tenant wiring (all nil on private engines): sessions built
	// by Host.NewSession share the refcounted byte-budgeted cache, the
	// aio read budget and the co-scheduling board with every other
	// session on the same store. See host.go and copass.go.
	shared   *SharedCache
	board    *passBoard
	ioBudget *aio.Budget

	// Modelled NUMA placement: shard si's destination range lives on
	// domain domainOf[si] and is applied by domains[domainOf[si]]'s
	// workers (a per-domain view of pool).
	domainOf []int32
	domains  []*sched.DomainView

	// Sweep-order planner state: hilbertKey[si] is shard si's position
	// on the Hilbert curve over (shard, source-range centroid), the tail
	// order OrderResidencyFirst schedules uncached shards in; sweepSeq
	// numbers the planned sweeps so OrderZigzag can alternate direction;
	// shadow models the cache a whole-run ascending baseline would hold,
	// the counterfactual ReloadsAvoided is charged against; pending is
	// the current sweep's staged accounting, published by commitPlan
	// only when the sweep completes. All of these are touched only by
	// orderPlan/commitPlan on the sweep goroutine — EdgeMap calls are
	// serial per engine, like every api.System.
	hilbertKey []uint64
	sweepSeq   int64
	shadow     *shadowLRU
	pending    *plannedStats

	// Scatter/gather bin store (SweepScatterGather engines only; nil
	// otherwise): each shard's retained scatter bin — the whole shard
	// re-encoded as (dstOffset, src) zigzag-delta varint segments — is
	// built by the first dense sweep that visits the shard and replayed
	// by every later one. Bins never go stale within a generation, and
	// the cache is owned by the hostCore, so every session of a Host
	// shares one copy (and, with Options.BinBudgetBytes set, one byte
	// budget with LRU eviction and disk spill — see bincache.go)
	// instead of duplicating the footprint per query. Unbounded, the
	// footprint is roughly the v2-compressed store size.
	bins *binCache

	// applying counts shards currently mid-apply (up to one per domain
	// on the pipelined path); the read path samples it to count loads
	// that overlapped an apply, and applyShard derives the occupancy
	// stats from it. loading counts uncached shard reads in flight
	// (at most Options.IODepth; exactly one at a time on the
	// NoPrefetch and IODepth=1 paths) and feeds the ReadDepths and
	// ReadsInFlightPeak stats.
	applying int32
	loading  int32

	stats Stats

	// Test hooks (nil outside tests): onLoadBegin fires before a shard
	// file is read (on an aio worker goroutine when the pipeline is on,
	// up to IODepth concurrently), onLoadEnd after it is decoded and
	// bucketed; onApplyBegin/onApplyEnd bracket
	// one shard's parallel application (on its domain's apply goroutine
	// when the pipeline is on, on the sweep goroutine otherwise);
	// onStage fires when a staged shard enters the window, carrying the
	// observed window depth and in-flight apply count.
	onLoadBegin, onLoadEnd   func(shard int)
	onApplyBegin, onApplyEnd func(shard int)
	onStage                  func(shard, depth, applying int)
	// onCoLead fires when a dense sweep opens a co-scheduled pass (its
	// publications become joinable); onCoFollow when a sweep joins one.
	onCoLead, onCoFollow func()
}

var _ api.System = (*Engine)(nil)

// hostCore is the store-derived immutable substrate one construction
// pays for and every execution context shares: the resolved options,
// the worker pool and its per-domain views, the vertex→shard map, the
// source summaries and the planner's Hilbert keys. A private engine
// owns its core alone; a Host hands one core to N sessions.
type hostCore struct {
	st   *Store
	g    *graph.Graph
	opts Options
	pool *sched.Pool

	home       []int32
	feeds      [][]uint64
	domainOf   []int32
	domains    []*sched.DomainView
	hilbertKey []uint64
	gen        int64
	bins       *binCache // scatter/gather bin store; nil when edge-centric
}

// newHostCore validates (st, g, opts) and builds the shared substrate —
// the construction half of the construction/execution split.
func newHostCore(st *Store, g *graph.Graph, opts Options) (*hostCore, error) {
	if st.NumVertices() != g.NumVertices() || st.NumEdges() != g.NumEdges() {
		return nil, fmt.Errorf("shard: store is %dv/%de but graph is %dv/%de",
			st.NumVertices(), st.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if !opts.Order.valid() {
		return nil, fmt.Errorf("shard: unknown sweep order %v", opts.Order)
	}
	// The resolved options describe the engine as it runs: whatever
	// format was requested for writing, this engine decodes the opened
	// store's actual encoding.
	opts.Format = st.format
	feeds, err := st.SourceSummary()
	if err != nil {
		return nil, err
	}
	home := make([]int32, g.NumVertices())
	for i := 0; i < st.NumShards(); i++ {
		lo, hi := st.Range(i)
		for v := lo; v < hi; v++ {
			home[v] = int32(i)
		}
	}
	pool := sched.NewPool(opts.Threads)
	domainOf := make([]int32, st.NumShards())
	for i := range domainOf {
		domainOf[i] = int32(opts.Topology.DomainOf(i))
	}
	var bins *binCache
	if opts.SweepMode == SweepScatterGather {
		bins = newBinCache(opts.BinBudgetBytes, st.dir, st.Generation())
	}
	return &hostCore{
		st:         st,
		g:          g,
		opts:       opts,
		pool:       pool,
		home:       home,
		feeds:      feeds,
		domainOf:   domainOf,
		domains:    opts.Topology.Split(pool),
		hilbertKey: hilbertKeys(feeds, st.NumShards()),
		gen:        st.Generation(),
		bins:       bins,
	}, nil
}

// newEngine builds one execution context over the core: per-sweep
// planner state, per-query stats, and the residency backend — a
// private LRU for standalone engines, a session view of the shared
// refcounted cache for Host sessions.
func (c *hostCore) newEngine(cache engineCache) *Engine {
	return &Engine{
		st:         c.st,
		g:          c.g,
		pool:       c.pool,
		opts:       c.opts,
		home:       c.home,
		feeds:      c.feeds,
		cache:      cache,
		gen:        c.gen,
		domainOf:   c.domainOf,
		domains:    c.domains,
		hilbertKey: c.hilbertKey,
		shadow:     newShadowLRU(c.opts.CacheShards),
		bins:       c.bins,
		stats: Stats{
			DomainShards: make([]int64, c.opts.Topology.Domains),
			DomainEdges:  make([]int64, c.opts.Topology.Domains),
			ApplyLevels:  make([]int64, c.opts.Topology.Domains),
			WindowDepths: make([]int64, c.opts.Window+1),
			ReadDepths:   make([]int64, c.opts.IODepth+1),
		},
	}
}

// NewEngine builds the out-of-core engine for an opened store. g must be
// the graph the store was written from (its per-vertex metadata — not
// its adjacency — backs the api.System contract); mismatched dimensions
// are rejected. The engine is private: it owns its LRU cache and serves
// one query at a time. A store that must serve N concurrent queries is
// opened once through NewHost instead.
func NewEngine(st *Store, g *graph.Graph, opts Options) (*Engine, error) {
	core, err := newHostCore(st, g, opts)
	if err != nil {
		return nil, err
	}
	return core.newEngine(newLRUCache(core.opts.CacheShards)), nil
}

// Build shards g into dir with p partitions and returns an engine over
// the new store — the one-call construction examples and tests use.
func Build(dir string, g *graph.Graph, p int, opts Options) (*Engine, error) {
	st, err := Create(dir, g, WriteOptions{Partitions: p, Format: opts.Format})
	if err != nil {
		return nil, err
	}
	return NewEngine(st, g, opts)
}

// Name implements api.System.
func (e *Engine) Name() string { return "OOC" }

// Graph implements api.System.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Threads implements api.System.
func (e *Engine) Threads() int { return e.pool.Threads() }

// Store returns the underlying shard store.
func (e *Engine) Store() *Store { return e.st }

// Options returns the resolved engine options.
func (e *Engine) Options() Options { return e.opts }

// Stats returns a snapshot of the engine's sweep, pipeline and I/O
// counters. Every counter is maintained atomically (the slice-valued
// ones element-wise), so Stats is safe to call from any goroutine at
// any time — including while a concurrent multi-domain sweep is
// mutating the counters. The snapshot is per-field consistent, not a
// single linearised point across fields.
func (e *Engine) Stats() Stats {
	s := Stats{
		DenseSweeps:         atomic.LoadInt64(&e.stats.DenseSweeps),
		SparseSweeps:        atomic.LoadInt64(&e.stats.SparseSweeps),
		ShardLoads:          atomic.LoadInt64(&e.stats.ShardLoads),
		CacheHits:           atomic.LoadInt64(&e.stats.CacheHits),
		ShardsSkipped:       atomic.LoadInt64(&e.stats.ShardsSkipped),
		BytesRead:           atomic.LoadInt64(&e.stats.BytesRead),
		BytesLogical:        atomic.LoadInt64(&e.stats.BytesLogical),
		PlannedCacheHits:    atomic.LoadInt64(&e.stats.PlannedCacheHits),
		ReloadsAvoided:      atomic.LoadInt64(&e.stats.ReloadsAvoided),
		SharedReads:         atomic.LoadInt64(&e.stats.SharedReads),
		CoScheduledSweeps:   atomic.LoadInt64(&e.stats.CoScheduledSweeps),
		CoSharedShards:      atomic.LoadInt64(&e.stats.CoSharedShards),
		ScatterGatherSweeps: atomic.LoadInt64(&e.stats.ScatterGatherSweeps),
		BinShardsReused:     atomic.LoadInt64(&e.stats.BinShardsReused),
		BinBytesWritten:     atomic.LoadInt64(&e.stats.BinBytesWritten),
		BinBytesRead:        atomic.LoadInt64(&e.stats.BinBytesRead),
		BinShardsEvicted:    atomic.LoadInt64(&e.stats.BinShardsEvicted),
		BinBytesSpilled:     atomic.LoadInt64(&e.stats.BinBytesSpilled),
		BinSpillReplays:     atomic.LoadInt64(&e.stats.BinSpillReplays),
		BinSpillBytesRead:   atomic.LoadInt64(&e.stats.BinSpillBytesRead),
		PrefetchHits:        atomic.LoadInt64(&e.stats.PrefetchHits),
		PrefetchLoads:       atomic.LoadInt64(&e.stats.PrefetchLoads),
		OverlappedLoads:     atomic.LoadInt64(&e.stats.OverlappedLoads),
		ReadsInFlightPeak:   atomic.LoadInt64(&e.stats.ReadsInFlightPeak),
		ConcurrentApplyPeak: atomic.LoadInt64(&e.stats.ConcurrentApplyPeak),
		DomainShards:        make([]int64, len(e.stats.DomainShards)),
		DomainEdges:         make([]int64, len(e.stats.DomainEdges)),
		ApplyLevels:         make([]int64, len(e.stats.ApplyLevels)),
		WindowDepths:        make([]int64, len(e.stats.WindowDepths)),
		ReadDepths:          make([]int64, len(e.stats.ReadDepths)),
	}
	for d := range s.DomainShards {
		s.DomainShards[d] = atomic.LoadInt64(&e.stats.DomainShards[d])
		s.DomainEdges[d] = atomic.LoadInt64(&e.stats.DomainEdges[d])
	}
	for l := range s.ApplyLevels {
		s.ApplyLevels[l] = atomic.LoadInt64(&e.stats.ApplyLevels[l])
	}
	for d := range s.WindowDepths {
		s.WindowDepths[d] = atomic.LoadInt64(&e.stats.WindowDepths[d])
	}
	for d := range s.ReadDepths {
		s.ReadDepths[d] = atomic.LoadInt64(&e.stats.ReadDepths[d])
	}
	return s
}

// Topology returns the modelled NUMA topology shards are placed on.
func (e *Engine) Topology() sched.Topology { return e.opts.Topology }

// ShardDomain returns the modelled NUMA domain owning shard si's
// destination range. The assignment is round-robin by shard index — the
// same placement locality.MeasureNUMATraffic models — so it is
// deterministic for a given store and topology.
func (e *Engine) ShardDomain(si int) int { return int(e.domainOf[si]) }

// VertexMap implements api.System.
func (e *Engine) VertexMap(f *frontier.Frontier, fn func(graph.VID)) {
	api.VertexMap(e.pool, f, fn)
}

// VertexFilter implements api.System.
func (e *Engine) VertexFilter(f *frontier.Frontier, pred func(graph.VID) bool) *frontier.Frontier {
	return api.VertexFilter(e.pool, e.g, f, pred)
}

// EdgeMap applies op over the active edges of f with a frontier-aware,
// concurrent shard sweep: plan → stage → apply → publish. The planner
// picks the shard sequence (exact for sparse frontiers, summary-pruned
// for dense ones); a staging goroutine keeps up to Options.Window
// shards staged ahead (at most Options.IODepth uncached reads in
// flight, admitted to the LRU strictly in plan order); up to
// min(Domains, Threads) staged shards are applied simultaneously, one
// per modelled NUMA domain, each by its own domain's workers; the next
// frontier is published
// once, after the barrier, with aggregated statistics. Results are
// bit-identical to the sequential NoPrefetch sweep at any window depth
// and domain count: shards own disjoint 64-aligned destination ranges,
// operators write destination state only, and all in-edges of a
// destination live in one shard, so neither staging depth nor
// cross-domain interleaving can reorder any destination's updates. The
// direction hint is ignored: every traversal is a destination-grouped
// sweep, which is the only order an out-of-core layout supports
// without a second edge copy on disk.
// checkGen panics if the store moved past the generation this engine
// was built over. An ApplyBatch or Compact changes on-disk content the
// engine's cached residents, graph metadata and planner state do not
// reflect; sweeping anyway would silently mix the two views. Mutators
// that also serve queries reopen the store and rebuild hosts instead
// (internal/serve does), so a trip here is always a caller bug.
func (e *Engine) checkGen() {
	if g := e.st.Generation(); g != e.gen {
		panic(fmt.Sprintf("shard: engine built over store generation %d, store is now at %d; rebuild the engine after ApplyBatch/Compact", e.gen, g))
	}
}

func (e *Engine) EdgeMap(f *frontier.Frontier, op api.EdgeOp, _ api.Direction) *frontier.Frontier {
	e.checkGen()
	n := e.g.NumVertices()
	if f.Count() == 0 {
		return frontier.New(n)
	}
	var plan []int
	// Reuse the central Algorithm 2 thresholds; only the sparse/non-sparse
	// cut matters here (denseDiv is irrelevant for a two-way split).
	sparse := f.Classify(e.g, e.opts.SparseDiv, 2) == frontier.Sparse
	if sparse {
		atomic.AddInt64(&e.stats.SparseSweeps, 1)
		plan = e.planSparse(f)
	} else {
		atomic.AddInt64(&e.stats.DenseSweeps, 1)
		plan = e.planDense(f)
	}
	atomic.AddInt64(&e.stats.ShardsSkipped, int64(e.st.NumShards()-len(plan)))

	cur := f.Bitmap()
	cond := op.CondOf()
	next := frontier.NewBitmap(n)
	// One accumulator stripe per domain: concurrent applies on distinct
	// domains never share an entry even when Split had to deal the same
	// pool-global worker ID to several domains (Threads < Domains).
	accs := make([]sweepAccum, len(e.domains)*e.pool.Threads())
	switch {
	case !sparse && e.opts.SweepMode == SweepScatterGather:
		// Dense sweeps in scatter/gather mode take the two-phase path;
		// sparse sweeps stay edge-centric below (PCPM only wins when the
		// bins amortise over dense iterations — see scattergather.go).
		// The order planner runs inside, on the subset of shards whose
		// bins are not yet resident — the only shards fetched.
		e.sweepScatterGather(f, plan, cur, cond, op, next, accs)
	case e.opts.NoPrefetch:
		// Unpipelined: load and apply alternate on the sweep goroutine —
		// the sequential reference the concurrent pipeline must match
		// bit for bit. The sweep-order planner sits between plan and
		// stage: it permutes the baseline plan (never its membership) per
		// Options.Order, so the sweep sees an ordered plan exactly as it
		// would an ascending one.
		plan = e.orderPlan(plan)
		for _, si := range plan {
			sh := e.load(si)
			func() {
				// The pin taken by load must drop even when the operator
				// panics out of the sweep, or a shared session would leave
				// the shard unevictable forever.
				defer e.cache.release(si)
				e.applyShard(si, sh, cur, cond, op, next, accs)
			}()
		}
	default:
		e.sweepPipelined(plan, sparse, cur, cond, op, next, accs)
	}
	// The sweep completed (an aborted one panics out above): publish the
	// planner accounting staged at plan time, so stats never describe
	// fetches a failed sweep did not perform.
	e.commitPlan()
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(n, next)
	nf.SetStats(count, outDeg)
	return nf
}

// planSparse computes the exact set of shards holding at least one edge
// from an active source, by walking the in-memory CSR adjacency of only
// the active vertices — O(|F| + Σ out-deg) work, the same bound that
// made the frontier sparse. Shards outside the set are never loaded.
func (e *Engine) planSparse(f *frontier.Frontier) []int {
	marked := make([]bool, e.st.NumShards())
	f.ForEach(func(u graph.VID) {
		for _, v := range e.g.OutNeighbors(u) {
			marked[e.home[v]] = true
		}
	})
	plan := make([]int, 0, len(marked))
	for i, m := range marked {
		if m {
			plan = append(plan, i)
		}
	}
	return plan
}

// planDense streams the full shard sequence but still skips shards whose
// source-range summary intersects no active range — the coarse,
// classification-style activity test (cost O(|V|/64 + P²/64), no edge
// work). A shard with no edges at all has an empty summary and is always
// skipped.
func (e *Engine) planDense(f *frontier.Frontier) []int {
	p := e.st.NumShards()
	active := make([]uint64, summaryWords(p))
	bm := f.Bitmap()
	words := bm.Words()
	for i := 0; i < p; i++ {
		lo, hi := e.st.Range(i)
		// Interior bounds are BoundaryAlign-aligned, so ranges map to
		// disjoint word runs (the final range owns the tail).
		for w, whi := int(lo)/64, (int(hi)+63)/64; w < whi; w++ {
			if words[w] != 0 {
				active[i/64] |= 1 << (i % 64)
				break
			}
		}
	}
	plan := make([]int, 0, p)
	for i := 0; i < p; i++ {
		feeds := e.feeds[i]
		for w := range feeds {
			if feeds[w]&active[w] != 0 {
				plan = append(plan, i)
				break
			}
		}
	}
	return plan
}

// load returns shard si ready for application on the NoPrefetch path:
// loads happen one at a time on the sweep goroutine, so at most one
// uncached shard is in flight (the pipelined path bounds the same
// quantity by Options.IODepth; see window.go). A load failure panics —
// EdgeMap cannot return an error.
func (e *Engine) load(si int) *resident {
	sh, err := e.fetch(si, false)
	if err != nil {
		panic(fmt.Sprintf("shard: engine sweep: %v", err))
	}
	return sh
}

// fetch is the synchronous load path: shard si from the LRU cache when
// resident, otherwise decoded from disk on the calling goroutine.
// prefetching marks calls on behalf of the staging pipeline, which
// additionally maintain the pipeline counters — including overlap, a
// disk load that intersected an in-progress apply.
func (e *Engine) fetch(si int, prefetching bool) (*resident, error) {
	if sh, ok := e.cache.get(si); ok {
		atomic.AddInt64(&e.stats.CacheHits, 1)
		if prefetching {
			atomic.AddInt64(&e.stats.PrefetchHits, 1)
		}
		return sh, nil
	}
	res, err := e.readShard(si)
	if err != nil {
		return nil, err
	}
	e.finishLoad(res, prefetching)
	return res.sh, nil
}

// loadResult is one uncached read's outcome, carried from the reading
// goroutine (an aio worker, or the reaper itself on the synchronous
// paths) to the reap point where it is admitted to the cache.
type loadResult struct {
	sh         *resident
	diskBytes  int64
	overlapped bool // the read intersected an in-progress apply
	shared     bool // served by another session's load; no disk touched
}

// readShard executes one uncached read — decode from disk, bucket for
// the owning domain's workers — without touching the LRU or the load
// counters; those belong to the reap point (finishLoad), which runs in
// plan order. readShard itself may run on any goroutine, concurrently
// with up to IODepth-1 other reads. On shared sessions the read is
// single-flight through the SharedCache: if another session's load for
// the same shard is in flight (or just landed), this session shares
// its result instead of touching disk.
func (e *Engine) readShard(si int) (loadResult, error) {
	if e.shared == nil {
		return e.readShardDisk(si)
	}
	var res loadResult
	sh, shared, err := e.shared.load(cacheKey{e.st, si}, func() (*resident, error) {
		r, err := e.readShardDisk(si)
		if err != nil {
			return nil, err
		}
		res = r
		return r.sh, nil
	})
	if err != nil {
		return loadResult{}, err
	}
	if shared {
		return loadResult{sh: sh, shared: true}, nil
	}
	return res, nil
}

// readShardDisk is the actual disk read + decode + bucket, plus the
// in-flight read occupancy stats.
func (e *Engine) readShardDisk(si int) (loadResult, error) {
	if e.onLoadBegin != nil {
		e.onLoadBegin(si)
	}
	depth := atomic.AddInt32(&e.loading, 1)
	defer atomic.AddInt32(&e.loading, -1)
	if d := int(depth); d >= 1 && d < len(e.stats.ReadDepths) {
		atomic.AddInt64(&e.stats.ReadDepths[d], 1)
	}
	for {
		peak := atomic.LoadInt64(&e.stats.ReadsInFlightPeak)
		if int64(depth) <= peak ||
			atomic.CompareAndSwapInt64(&e.stats.ReadsInFlightPeak, peak, int64(depth)) {
			break
		}
	}
	overlapped := atomic.LoadInt32(&e.applying) != 0
	coo, diskBytes, err := e.st.loadShard(si)
	if err != nil {
		return loadResult{}, err
	}
	sh := e.bucket(si, coo)
	if atomic.LoadInt32(&e.applying) != 0 {
		overlapped = true
	}
	if e.onLoadEnd != nil {
		e.onLoadEnd(si)
	}
	return loadResult{sh: sh, diskBytes: diskBytes, overlapped: overlapped}, nil
}

// finishLoad admits one completed uncached read: the I/O counters and
// the cache insertion. On the pipelined path it runs on the staging
// goroutine in plan order — reads may complete out of order, but the
// LRU sees the same insertion sequence a synchronous sweep would issue.
func (e *Engine) finishLoad(res loadResult, prefetching bool) {
	if res.shared {
		// Another session's disk load (or a raced insert) covered this
		// read: no disk traffic to account to this session — it neither
		// loaded the shard nor found it resident at fetch time.
		atomic.AddInt64(&e.stats.SharedReads, 1)
		e.cache.put(res.sh)
		return
	}
	atomic.AddInt64(&e.stats.BytesRead, res.diskBytes)
	atomic.AddInt64(&e.stats.BytesLogical, v1EncodedBytes(int64(len(res.sh.src))))
	atomic.AddInt64(&e.stats.ShardLoads, 1)
	if prefetching {
		atomic.AddInt64(&e.stats.PrefetchLoads, 1)
		if res.overlapped {
			atomic.AddInt64(&e.stats.OverlappedLoads, 1)
		}
	}
	e.cache.put(res.sh)
}

// admit resolves plan entry si at its reap point on the staging
// goroutine: from the LRU if resident, else from the async read
// ticket issued for it (at submission time, or by pump's fallback
// when an issue-time hit prediction was invalidated by an interleaved
// eviction). The synchronous readShard branch is defensive only —
// pump always supplies a ticket for a shard the cache no longer
// holds, so every uncached read stays under the reader's IODepth
// budget.
func (e *Engine) admit(si int, t *aio.Ticket[loadResult]) (*resident, error) {
	if sh, ok := e.cache.get(si); ok {
		atomic.AddInt64(&e.stats.CacheHits, 1)
		atomic.AddInt64(&e.stats.PrefetchHits, 1)
		return sh, nil
	}
	var res loadResult
	var err error
	if t != nil {
		res, err = t.Wait()
	} else {
		res, err = e.readShard(si)
	}
	if err != nil {
		return nil, err
	}
	e.finishLoad(res, true)
	return res.sh, nil
}

// tasksPerWorker oversubscribes intra-shard tasks relative to workers so
// self-scheduling can balance skewed destination sub-ranges.
const tasksPerWorker = 4

// bucket regroups a decoded shard's edges into destination sub-ranges
// aligned to partition.BoundaryAlign via a stable counting sort. Within
// a bucket the shard file's order is preserved, and all in-edges of a
// destination share a bucket, so per-destination application order does
// not depend on the task count.
func (e *Engine) bucket(si int, coo *graph.COO) *resident {
	lo, hi := e.st.Range(si)
	units := (int(hi-lo) + partition.BoundaryAlign - 1) / partition.BoundaryAlign
	// Size tasks for the workers that will actually apply this shard —
	// its owning domain's view, not the full pool.
	tasks := e.domains[e.domainOf[si]].Threads() * tasksPerWorker
	if tasks > units {
		tasks = units
	}
	if tasks < 1 {
		tasks = 1
	}
	// unitTask[u] is the task owning 64-vertex unit u; units are dealt to
	// tasks in contiguous, near-equal runs.
	unitTask := make([]int32, units)
	for t := 0; t < tasks; t++ {
		for u := t * units / tasks; u < (t+1)*units/tasks; u++ {
			unitTask[u] = int32(t)
		}
	}
	taskOf := func(d graph.VID) int32 {
		return unitTask[int(d-lo)/partition.BoundaryAlign]
	}
	counts := make([]int, tasks+1)
	for _, d := range coo.Dst {
		counts[taskOf(d)+1]++
	}
	for t := 0; t < tasks; t++ {
		counts[t+1] += counts[t]
	}
	sh := &resident{
		idx: si,
		src: make([]graph.VID, len(coo.Src)),
		dst: make([]graph.VID, len(coo.Dst)),
		off: counts,
	}
	cursor := make([]int, tasks)
	for i, d := range coo.Dst {
		t := taskOf(d)
		at := sh.off[t] + cursor[t]
		sh.src[at] = coo.Src[i]
		sh.dst[at] = d
		cursor[t]++
	}
	return sh
}

// sweepAccum collects per-worker next-frontier statistics, padded to a
// cache line.
type sweepAccum struct {
	count  int64
	outDeg int64
	_      [6]int64
}

// applyShard runs op over one resident shard in parallel with the
// workers of the shard's modelled NUMA domain: one task per destination
// sub-range, so every destination (and every next-frontier bitmap word)
// is written by exactly one worker and the non-atomic Update path is
// safe. Distinct shards may be applied concurrently (one per domain);
// their destination ranges — and hence their bitmap words and operator
// writes — are disjoint. accs is the full Domains×Threads accumulator
// block; each call writes only its own domain's stripe, indexed by the
// pool-global worker ID within it.
func (e *Engine) applyShard(si int, sh *resident, cur *frontier.Bitmap, cond func(graph.VID) bool, op api.EdgeOp, next *frontier.Bitmap, accs []sweepAccum) {
	dom := e.domainOf[si]
	atomic.AddInt64(&e.stats.DomainShards[dom], 1)
	atomic.AddInt64(&e.stats.DomainEdges[dom], int64(len(sh.src)))
	level := atomic.AddInt32(&e.applying, 1)
	// Deferred, not inline at the end: a panicking operator must not
	// leave the count stuck, or every later load on this engine would
	// count as overlapped and the window bound would over-shrink.
	defer atomic.AddInt32(&e.applying, -1)
	if l := int(level) - 1; l >= 0 && l < len(e.stats.ApplyLevels) {
		atomic.AddInt64(&e.stats.ApplyLevels[l], 1)
	}
	for {
		peak := atomic.LoadInt64(&e.stats.ConcurrentApplyPeak)
		if int64(level) <= peak ||
			atomic.CompareAndSwapInt64(&e.stats.ConcurrentApplyPeak, peak, int64(level)) {
			break
		}
	}
	if e.onApplyBegin != nil {
		e.onApplyBegin(si)
	}
	mine := accs[int(dom)*e.pool.Threads() : (int(dom)+1)*e.pool.Threads()]
	e.domains[dom].ParallelTasks(len(sh.off)-1, func(task, worker int) {
		a := &mine[worker]
		src := sh.src[sh.off[task]:sh.off[task+1]]
		dst := sh.dst[sh.off[task]:sh.off[task+1]]
		for i := range src {
			u, v := src[i], dst[i]
			if !cur.Get(u) || !cond(v) {
				continue
			}
			if op.Update(u, v) && !next.Get(v) {
				next.Set(v)
				a.count++
				a.outDeg += e.g.OutDegree(v)
			}
		}
	})
	if e.onApplyEnd != nil {
		e.onApplyEnd(si)
	}
}
