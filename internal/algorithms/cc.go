package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// CCResult holds per-vertex component labels: the minimum vertex ID
// reachable in the label-propagation closure. Rounds counts EdgeMap
// iterations until the frontier emptied.
type CCResult struct {
	Labels []int32
	Rounds int
}

// CC computes connected components by label propagation (Table II:
// edge-oriented, backward preference). Labels start as vertex IDs and
// the minimum label propagates along edges until no label changes.
//
// Propagation is synchronous: each round reads the previous round's
// labels and writes the next round's. This keeps the non-atomic engine
// paths free of read/write races (source labels are never written while
// an EdgeMap is in flight) at the cost of a per-round label copy — the
// trade Ligra's synchronous Components makes as well. On directed graphs
// this computes the fixpoint along edge direction; tests use symmetric
// graphs where this equals undirected components.
func CC(sys api.System) CCResult {
	g := sys.Graph()
	n := g.NumVertices()
	labels := NewI32s(n, 0)
	prev := make([]int32, n)
	for v := 0; v < n; v++ {
		labels.Set(graph.VID(v), int32(v))
	}

	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			return labels.Min(v, prev[u])
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return labels.AtomicMin(v, prev[u])
		},
	}

	f := frontier.All(g)
	rounds := 0
	for !f.IsEmpty() {
		sys.VertexMap(f, func(u graph.VID) { prev[u] = labels.Get(u) })
		f = sys.EdgeMap(f, op, api.DirBackward)
		rounds++
		if rounds > n+1 {
			panic("algorithms: CC failed to converge") // monotone labels must settle
		}
	}
	return CCResult{Labels: labels.Slice(), Rounds: rounds}
}

// NumComponents counts distinct labels in a CC result.
func NumComponents(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
