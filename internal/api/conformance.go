package api

import (
	"fmt"
	"sync/atomic"

	"repro/internal/frontier"
	"repro/internal/graph"
)

// CheckSystem verifies the System contract on the engine's own graph and
// returns the first violation found, or nil. It is engine-neutral: every
// System implementation — in-memory or out-of-core — must pass it, and
// engine test suites run it as a conformance gate before the per-
// algorithm differential tests.
//
// The checks pin down the parts of the contract algorithms rely on:
//
//   - EdgeMap applies the operator to every active edge exactly once,
//     for each direction hint, and honours Cond as a destination gate.
//   - The returned frontier contains exactly the destinations whose
//     update returned true, deduplicated, with a consistent count.
//   - An update that returns false keeps the destination out of the
//     next frontier even though the edge was applied.
//   - VertexMap visits each active vertex exactly once; VertexFilter
//     returns exactly the predicate-satisfying subset.
//
// Operators passed to the engine use the atomic update on the
// UpdateAtomic path, so the check is race-free on every legal engine
// schedule; a non-atomic engine bug surfaces as a count mismatch (or a
// race-detector report under -race).
func CheckSystem(sys System) error {
	g := sys.Graph()
	if g == nil {
		return fmt.Errorf("%s: Graph() returned nil", sys.Name())
	}
	if sys.Threads() < 1 {
		return fmt.Errorf("%s: Threads() = %d, want >= 1", sys.Name(), sys.Threads())
	}
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	for _, dir := range []Direction{DirAuto, DirForward, DirBackward} {
		if err := checkFullEdgeMap(sys, g, dir); err != nil {
			return err
		}
	}
	if err := checkCondGate(sys, g); err != nil {
		return err
	}
	if err := checkSingleSource(sys, g); err != nil {
		return err
	}
	if err := checkRejectedUpdates(sys, g); err != nil {
		return err
	}
	if err := checkEmptyFrontier(sys, g); err != nil {
		return err
	}
	if err := checkVertexOps(sys, g); err != nil {
		return err
	}
	return nil
}

// countingOp returns an operator that tallies per-destination
// applications and a handle to read the tallies back.
func countingOp(n int, ret bool) (EdgeOp, []int64) {
	counts := make([]int64, n)
	return EdgeOp{
		Update: func(u, v graph.VID) bool {
			counts[v]++ // engine guarantees destination exclusivity here
			return ret
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			atomic.AddInt64(&counts[v], 1)
			return ret
		},
	}, counts
}

// checkFullEdgeMap: over the all-vertices frontier, every edge is
// applied exactly once and the next frontier is exactly the set of
// vertices with in-edges.
func checkFullEdgeMap(sys System, g *graph.Graph, dir Direction) error {
	n := g.NumVertices()
	op, counts := countingOp(n, true)
	nf := sys.EdgeMap(frontier.All(g), op, dir)
	if nf == nil {
		return fmt.Errorf("%s: EdgeMap(%v) returned nil frontier", sys.Name(), dir)
	}
	var want int64
	for v := 0; v < n; v++ {
		indeg := g.InDegree(graph.VID(v))
		if counts[v] != indeg {
			return fmt.Errorf("%s: EdgeMap(%v) applied %d updates to vertex %d, want in-degree %d",
				sys.Name(), dir, counts[v], v, indeg)
		}
		if active := nf.Has(graph.VID(v)); active != (indeg > 0) {
			return fmt.Errorf("%s: EdgeMap(%v) next frontier has vertex %d = %v, want %v",
				sys.Name(), dir, v, active, indeg > 0)
		}
		if indeg > 0 {
			want++
		}
	}
	if nf.Count() != want {
		return fmt.Errorf("%s: EdgeMap(%v) next frontier count %d, want %d", sys.Name(), dir, nf.Count(), want)
	}
	return nil
}

// checkCondGate: a false Cond keeps a destination untouched and out of
// the next frontier.
func checkCondGate(sys System, g *graph.Graph) error {
	n := g.NumVertices()
	op, counts := countingOp(n, true)
	op.Cond = func(v graph.VID) bool { return v%2 == 0 }
	nf := sys.EdgeMap(frontier.All(g), op, DirAuto)
	for v := 0; v < n; v++ {
		if v%2 == 1 {
			if counts[v] != 0 {
				return fmt.Errorf("%s: Cond=false destination %d received %d updates", sys.Name(), v, counts[v])
			}
			if nf.Has(graph.VID(v)) {
				return fmt.Errorf("%s: Cond=false destination %d joined the next frontier", sys.Name(), v)
			}
			continue
		}
		if indeg := g.InDegree(graph.VID(v)); counts[v] != indeg {
			return fmt.Errorf("%s: Cond=true destination %d received %d updates, want %d",
				sys.Name(), v, counts[v], indeg)
		}
	}
	return nil
}

// checkSingleSource: from a one-vertex frontier, exactly that vertex's
// out-edges are applied and its distinct out-neighbours activate.
func checkSingleSource(sys System, g *graph.Graph) error {
	n := g.NumVertices()
	src := maxOutDegreeVertex(g)
	if g.OutDegree(src) == 0 {
		return nil // edgeless graph; full-frontier checks covered it
	}
	op, counts := countingOp(n, true)
	nf := sys.EdgeMap(frontier.FromVertex(g, src), op, DirAuto)
	wantCounts := make([]int64, n)
	for _, v := range g.OutNeighbors(src) {
		wantCounts[v]++
	}
	var want int64
	for v := 0; v < n; v++ {
		if counts[v] != wantCounts[v] {
			return fmt.Errorf("%s: single-source EdgeMap applied %d updates to vertex %d, want %d",
				sys.Name(), counts[v], v, wantCounts[v])
		}
		if active := nf.Has(graph.VID(v)); active != (wantCounts[v] > 0) {
			return fmt.Errorf("%s: single-source next frontier has vertex %d = %v, want %v",
				sys.Name(), v, active, wantCounts[v] > 0)
		}
		if wantCounts[v] > 0 {
			want++
		}
	}
	if nf.Count() != want {
		return fmt.Errorf("%s: single-source next frontier count %d, want %d", sys.Name(), nf.Count(), want)
	}
	return nil
}

// checkRejectedUpdates: updates that return false are still applied but
// activate nothing.
func checkRejectedUpdates(sys System, g *graph.Graph) error {
	n := g.NumVertices()
	op, counts := countingOp(n, false)
	nf := sys.EdgeMap(frontier.All(g), op, DirAuto)
	if nf.Count() != 0 {
		return fmt.Errorf("%s: all updates returned false but next frontier has %d vertices",
			sys.Name(), nf.Count())
	}
	for v := 0; v < n; v++ {
		if indeg := g.InDegree(graph.VID(v)); counts[v] != indeg {
			return fmt.Errorf("%s: rejected-update EdgeMap applied %d updates to vertex %d, want %d",
				sys.Name(), counts[v], v, indeg)
		}
	}
	return nil
}

// checkEmptyFrontier: an empty frontier maps to an empty frontier with
// no operator calls.
func checkEmptyFrontier(sys System, g *graph.Graph) error {
	op, counts := countingOp(g.NumVertices(), true)
	nf := sys.EdgeMap(frontier.New(g.NumVertices()), op, DirAuto)
	if nf == nil || nf.Count() != 0 {
		return fmt.Errorf("%s: empty-frontier EdgeMap returned a non-empty frontier", sys.Name())
	}
	for v, c := range counts {
		if c != 0 {
			return fmt.Errorf("%s: empty-frontier EdgeMap applied %d updates to vertex %d", sys.Name(), c, v)
		}
	}
	return nil
}

// checkVertexOps: VertexMap visits each active vertex exactly once and
// VertexFilter selects exactly the predicate-satisfying subset.
func checkVertexOps(sys System, g *graph.Graph) error {
	n := g.NumVertices()
	visits := make([]int64, n)
	sys.VertexMap(frontier.All(g), func(v graph.VID) {
		atomic.AddInt64(&visits[v], 1)
	})
	for v := 0; v < n; v++ {
		if visits[v] != 1 {
			return fmt.Errorf("%s: VertexMap visited vertex %d %d times", sys.Name(), v, visits[v])
		}
	}
	pred := func(v graph.VID) bool { return v%3 == 0 }
	sub := sys.VertexFilter(frontier.All(g), pred)
	var want int64
	for v := 0; v < n; v++ {
		if keep := pred(graph.VID(v)); sub.Has(graph.VID(v)) != keep {
			return fmt.Errorf("%s: VertexFilter has vertex %d = %v, want %v",
				sys.Name(), v, sub.Has(graph.VID(v)), keep)
		} else if keep {
			want++
		}
	}
	if sub.Count() != want {
		return fmt.Errorf("%s: VertexFilter count %d, want %d", sys.Name(), sub.Count(), want)
	}
	return nil
}

func maxOutDegreeVertex(g *graph.Graph) graph.VID {
	var best graph.VID
	var bestDeg int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VID(v)); d > bestDeg {
			bestDeg, best = d, graph.VID(v)
		}
	}
	return best
}
