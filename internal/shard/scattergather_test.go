package shard

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// decodeBinSegments replays a bin's varint streams back into explicit
// (src, dst) pairs, one slice per segment — the test-side inverse of
// scatterShard's encoder.
func decodeBinSegments(t *testing.T, b *binShard) [][][2]graph.VID {
	t.Helper()
	segs := make([][][2]graph.VID, len(b.segs))
	for ti, seg := range b.segs {
		var prevD, prevS int64
		for pos := 0; pos < len(seg); {
			du, n := binary.Uvarint(seg[pos:])
			if n <= 0 {
				t.Fatalf("shard %d segment %d: truncated destination delta at byte %d", b.idx, ti, pos)
			}
			pos += n
			su, n := binary.Uvarint(seg[pos:])
			if n <= 0 {
				t.Fatalf("shard %d segment %d: truncated source delta at byte %d", b.idx, ti, pos)
			}
			pos += n
			prevD += unzigzag(du)
			prevS += unzigzag(su)
			segs[ti] = append(segs[ti], [2]graph.VID{graph.VID(prevS), b.lo + graph.VID(prevD)})
		}
	}
	return segs
}

// TestScatterGatherBitIdenticalToEdgeCentric is the engine-level core of
// the differential rungs: the most schedule-sensitive workload (an
// iterative CAS BFS whose rounds cross the sparse/dense boundary, so
// scatter/gather engines mix bin replays with edge-centric fallbacks)
// and float accumulation (PageRank, where any reassociation would move
// bits) produce results identical to the edge-centric mode under a
// tight LRU that forces bin reuse to matter.
func TestScatterGatherBitIdenticalToEdgeCentric(t *testing.T) {
	g := gen.TinySocial()
	bfs := func(mode SweepMode) ([]int64, []int32) {
		e := buildTestEngine(t, g, 10, Options{Threads: 4, CacheShards: 2, SweepMode: mode})
		parents := make([]int32, g.NumVertices())
		for i := range parents {
			parents[i] = -1
		}
		src := graph.VID(0)
		parents[src] = int32(src)
		var sizes []int64
		f := frontier.FromVertex(g, src)
		for !f.IsEmpty() {
			f = e.EdgeMap(f, bfsOp(parents), api.DirAuto)
			sizes = append(sizes, f.Count())
		}
		return sizes, parents
	}
	ecSizes, ecParents := bfs(SweepEdgeCentric)
	sgSizes, sgParents := bfs(SweepScatterGather)
	if len(ecSizes) != len(sgSizes) {
		t.Fatalf("edge-centric BFS ran %d rounds, scatter/gather ran %d", len(ecSizes), len(sgSizes))
	}
	for r := range ecSizes {
		if ecSizes[r] != sgSizes[r] {
			t.Fatalf("round %d: frontier %d edge-centric vs %d scatter/gather", r, ecSizes[r], sgSizes[r])
		}
	}
	for v := range ecParents {
		if ecParents[v] != sgParents[v] {
			t.Fatalf("parent[%d] = %d edge-centric vs %d scatter/gather", v, ecParents[v], sgParents[v])
		}
	}

	ec := buildTestEngine(t, g, 10, Options{Threads: 4, CacheShards: 2})
	sg := buildTestEngine(t, g, 10, Options{Threads: 4, CacheShards: 2, SweepMode: SweepScatterGather})
	ecRanks := prOnSystem(ec, 10)
	sgRanks := prOnSystem(sg, 10)
	for v := range ecRanks {
		if math.Float64bits(ecRanks[v]) != math.Float64bits(sgRanks[v]) {
			t.Fatalf("rank[%d] = %v edge-centric vs %v scatter/gather: modes are not bit-identical", v, ecRanks[v], sgRanks[v])
		}
	}
	if got := sg.Stats().ScatterGatherSweeps; got != 10 {
		t.Fatalf("scatter/gather engine ran %d two-phase sweeps across 10 dense PR iterations, want 10", got)
	}
}

// TestScatterGatherBinsPartitionShards is the bin-partition property
// test: after one complete dense sweep, the retained bins (a) decode to
// exactly the store's edge multiset — bins cover every shard's
// destination range, no edge dropped or duplicated; (b) keep every
// destination inside the owning shard's 64-aligned range; (c) keep
// segments on disjoint 64-vertex units, the invariant that makes
// gather's parallel replay write-exclusive; and (d) are gathered only
// by the shard's own modelled NUMA domain.
func TestScatterGatherBinsPartitionShards(t *testing.T) {
	g := gen.TinySocial()
	const p = 8
	e := buildTestEngine(t, g, p, Options{Threads: 4, CacheShards: p, SweepMode: SweepScatterGather})
	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)

	want := make(map[[2]graph.VID]int)
	for _, ed := range g.Edges() {
		want[[2]graph.VID{ed.Src, ed.Dst}]++
	}
	got := make(map[[2]graph.VID]int)
	binsPerDomain := make([]int64, e.opts.Topology.Domains)
	for si := 0; si < e.st.NumShards(); si++ {
		b := e.bins.peekBin(si)
		if b == nil {
			continue
		}
		binsPerDomain[e.domainOf[si]]++
		lo, hi := e.st.Range(si)
		if b.lo != lo {
			t.Fatalf("shard %d bin base %d, want range start %d", si, b.lo, lo)
		}
		unitOwner := make(map[int]int)
		for ti, seg := range decodeBinSegments(t, b) {
			for _, ed := range seg {
				u, v := ed[0], ed[1]
				if int(u) >= g.NumVertices() {
					t.Fatalf("shard %d decoded source %d out of range", si, u)
				}
				if v < lo || v >= hi {
					t.Fatalf("shard %d decoded destination %d outside its range [%d,%d)", si, v, lo, hi)
				}
				unit := int(v-lo) / 64
				if owner, ok := unitOwner[unit]; ok && owner != ti {
					t.Fatalf("shard %d: 64-vertex unit %d written by segments %d and %d — gather would race", si, unit, owner, ti)
				}
				unitOwner[unit] = ti
				got[[2]graph.VID{u, v}]++
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("bins decode %d distinct edges, store holds %d", len(got), len(want))
	}
	for ed, n := range want {
		if got[ed] != n {
			t.Fatalf("edge %v appears %d times in bins, %d in the graph", ed, got[ed], n)
		}
	}

	st := e.Stats()
	for d := range binsPerDomain {
		if st.DomainShards[d] != binsPerDomain[d] {
			t.Fatalf("domain %d gathered %d bins, owns %d — bins crossed domains", d, st.DomainShards[d], binsPerDomain[d])
		}
	}
}

// TestScatterGatherReusesBins pins the mode's bytes-moved win: an
// iterative dense run scatters each shard once, then every later sweep
// replays the retained bins — no further shard loads, bin bytes read
// each sweep, bin bytes written only the first.
func TestScatterGatherReusesBins(t *testing.T) {
	g := gen.TinySocial()
	const iters = 5
	ec := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2})
	sg := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2, SweepMode: SweepScatterGather})
	prOnSystem(ec, iters)
	prOnSystem(sg, iters)

	ecs, sgs := ec.Stats(), sg.Stats()
	if sgs.ScatterGatherSweeps != iters {
		t.Fatalf("ScatterGatherSweeps = %d, want %d", sgs.ScatterGatherSweeps, iters)
	}
	if sgs.BinShardsReused == 0 {
		t.Fatal("no bin was reused across dense iterations")
	}
	if sgs.BinBytesWritten == 0 || sgs.BinBytesRead == 0 {
		t.Fatalf("bin traffic not recorded: written %d, read %d", sgs.BinBytesWritten, sgs.BinBytesRead)
	}
	if sgs.BinBytesRead <= sgs.BinBytesWritten {
		t.Fatalf("BinBytesRead %d <= BinBytesWritten %d; retained bins should be read every sweep but written once",
			sgs.BinBytesRead, sgs.BinBytesWritten)
	}
	if sgs.ShardLoads >= ecs.ShardLoads {
		t.Fatalf("scatter/gather loaded %d shards, edge-centric %d; bin retention should beat the thrashing LRU",
			sgs.ShardLoads, ecs.ShardLoads)
	}
	// The first sweep scatters every planned shard; later sweeps load
	// nothing, so total loads equal the distinct planned shards and the
	// read volume is one cold pass over the store.
	if sgs.ShardLoads*int64(iters) != ecs.ShardLoads {
		t.Fatalf("scatter/gather loaded %d shards across %d iterations, edge-centric %d; expected exactly one cold pass",
			sgs.ShardLoads, iters, ecs.ShardLoads)
	}
}

// TestScatterGatherSparseFallsBack: sparse frontiers take the
// edge-centric path — no two-phase sweep, no bin traffic — and the
// traversal still matches the edge-centric engine exactly.
func TestScatterGatherSparseFallsBack(t *testing.T) {
	g := gen.Chain(256)
	e := buildTestEngine(t, g, 8, Options{Threads: 2, CacheShards: 2, SweepMode: SweepScatterGather})
	parents := make([]int32, g.NumVertices())
	for i := range parents {
		parents[i] = -1
	}
	parents[0] = 0
	f := frontier.FromVertex(g, 0)
	f = e.EdgeMap(f, bfsOp(parents), api.DirAuto)
	st := e.Stats()
	if st.SparseSweeps != 1 {
		t.Fatalf("single-vertex chain frontier classified as dense (SparseSweeps = %d)", st.SparseSweeps)
	}
	if st.ScatterGatherSweeps != 0 || st.BinBytesWritten != 0 || st.BinBytesRead != 0 {
		t.Fatalf("sparse sweep took the scatter/gather path: %+v", st)
	}
	if f.Count() != 1 || parents[1] != 0 {
		t.Fatalf("sparse fallback produced a wrong BFS step: frontier %d, parent[1] = %d", f.Count(), parents[1])
	}

	// A dense sweep on the same engine still runs two-phase.
	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	if got := e.Stats().ScatterGatherSweeps; got != 1 {
		t.Fatalf("dense sweep after the sparse fallback ran %d two-phase sweeps, want 1", got)
	}
}

// TestScatterGatherTeardownOnOperatorPanic mirrors the edge-centric
// fault battery for the two-phase path: a panicking operator strikes
// during gather (scatter runs no operator code), the original panic
// value propagates from EdgeMap, no gather or pipeline goroutine leaks,
// the LRU stays inside budget, the retained bins stay valid, and the
// engine remains fully serviceable. Round 0 panics with fresh scatters;
// later rounds panic with every bin reused — both teardown shapes.
func TestScatterGatherTeardownOnOperatorPanic(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	const budget = 4
	e := buildTestEngine(t, g, 12, Options{Threads: 8, CacheShards: budget, Window: 4, SweepMode: SweepScatterGather})
	boom := api.EdgeOp{
		Update:       func(u, v graph.VID) bool { panic("operator boom") },
		UpdateAtomic: func(u, v graph.VID) bool { panic("operator boom") },
	}
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Error("operator panic did not propagate from the scatter/gather sweep")
				} else if s, ok := r.(string); !ok || s != "operator boom" {
					t.Errorf("recovered %v, want the original operator panic value", r)
				}
			}()
			e.EdgeMap(frontier.All(g), boom, api.DirAuto)
		}()
		if n := e.cache.len(); n > budget {
			t.Fatalf("round %d: LRU holds %d shards after the panic, budget is %d", i, n, budget)
		}
	}

	// Bins scattered before the aborted gathers are just the shards
	// re-encoded, so they must replay correctly: count in-edges through
	// the gather path and check against the graph.
	counts := make([]int64, g.NumVertices())
	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { counts[v]++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
	}, api.DirAuto)
	indeg := make([]int64, g.NumVertices())
	for _, ed := range g.Edges() {
		indeg[ed.Dst]++
	}
	for v := range counts {
		if counts[v] != indeg[v] {
			t.Fatalf("post-panic gather counted %d in-edges for vertex %d, want %d", counts[v], v, indeg[v])
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after scatter/gather teardown:\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}
}

// TestScatterGatherTeardownOnLoadError: a shard-read failure mid-scatter
// aborts the sweep before gather runs — the engine's sweep panic
// surfaces, the failed shard is neither scattered nor binned, no
// goroutine leaks, the LRU budget holds, and once the file returns the
// engine produces exact results again.
func TestScatterGatherTeardownOnLoadError(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	dir := t.TempDir()
	const budget = 2
	e, err := Build(dir, g, 12, Options{Threads: 4, CacheShards: budget, Window: 2, SweepMode: SweepScatterGather})
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, "shard-0005.bin")
	aside := victim + ".aside"
	if err := os.Rename(victim, aside); err != nil {
		t.Fatal(err)
	}
	scattered := make(map[int]int)
	var mu sync.Mutex
	e.onApplyBegin = func(si int) {
		mu.Lock()
		scattered[si]++
		mu.Unlock()
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("mid-scatter load failure did not panic")
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "shard: engine sweep:") {
				t.Errorf("recovered %v, want the engine's sweep panic prefix", r)
			}
		}()
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}()

	mu.Lock()
	for si, n := range scattered {
		if n != 1 {
			t.Errorf("shard %d scattered %d times during the aborted sweep", si, n)
		}
		if si == 5 {
			t.Error("the unreadable shard was scattered")
		}
	}
	mu.Unlock()
	if e.bins.peekBin(5) != nil {
		t.Error("the unreadable shard acquired a bin")
	}
	if n := e.cache.len(); n > budget {
		t.Fatalf("LRU holds %d shards after the failed sweep, budget is %d", n, budget)
	}

	// Engine reusable once the file is back: the in-edge count must be
	// exact, mixing bins retained from the aborted sweep with a fresh
	// scatter of shard 5.
	if err := os.Rename(aside, victim); err != nil {
		t.Fatal(err)
	}
	e.onApplyBegin = nil
	counts := make([]int64, g.NumVertices())
	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { counts[v]++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
	}, api.DirAuto)
	indeg := make([]int64, g.NumVertices())
	for _, ed := range g.Edges() {
		indeg[ed.Dst]++
	}
	for v := range counts {
		if counts[v] != indeg[v] {
			t.Fatalf("post-recovery sweep counted %d in-edges for vertex %d, want %d", counts[v], v, indeg[v])
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after load-error teardown:\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}
}
