package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// storeEdges drains a store into a sorted-insensitive edge multiset
// keyed by (src, dst) for before/after comparison.
func storeEdges(t *testing.T, s *Store) map[[2]graph.VID]int {
	t.Helper()
	edges := map[[2]graph.VID]int{}
	if err := s.Sweep(func(u, v graph.VID) { edges[[2]graph.VID{u, v}]++ }); err != nil {
		t.Fatalf("sweeping the store: %v", err)
	}
	return edges
}

// TestWriteLeavesNoTempFiles: the atomic-rename write path must not
// litter the store directory — every temp name is renamed into place
// or removed, so Open never has stale partial files to trip over.
func TestWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, gen.TinySocial(), 8); err != nil {
		t.Fatal(err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("Write left temp files behind: %v", tmps)
	}
}

// TestCrashMidRewriteLeavesOldStore simulates a writer killed partway
// through re-converting a store: the temp files it was building (shard
// and manifest alike, filled with garbage) are still on disk, but the
// rename never happened. Because the manifest is only renamed into
// place after every shard file it names is durable, the directory must
// reopen as the old, complete store with its edge multiset intact —
// the stale temp files are inert.
func TestCrashMidRewriteLeavesOldStore(t *testing.T) {
	dir := t.TempDir()
	g := gen.TinySocial()
	s, err := Write(dir, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := storeEdges(t, s)

	garbage := []byte("torn half-written shard data from a dead writer")
	for _, name := range []string{"shard-0003.bin.tmp", "shard-0007.bin.tmp", "manifest.json.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), garbage, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening after a simulated mid-rewrite crash: %v", err)
	}
	if got := storeEdges(t, reopened); len(got) != len(want) {
		t.Fatalf("reopened store has %d distinct edges, want %d", len(got), len(want))
	} else {
		for e, n := range want {
			if got[e] != n {
				t.Fatalf("edge %v appears %d times after reopen, want %d", e, got[e], n)
			}
		}
	}
}

// TestTornShardFileNeverDecodesSilently: a shard file that disagrees
// with the manifest — here rewritten with a different edge count, as a
// torn or swapped file would be — must surface as a typed validation
// error from the read path, never as silently wrong edges.
func TestTornShardFileNeverDecodesSilently(t *testing.T) {
	for _, format := range []Format{FormatV1, FormatV2} {
		t.Run(format.String(), func(t *testing.T) {
			dir := t.TempDir()
			if _, err := WriteFormat(dir, gen.TinySocial(), 8, format); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// A well-formed shard file whose edge count provably
			// contradicts the manifest: one edge more than it declares.
			n := s.m.EdgeCounts[2] + 1
			bad := &graph.COO{N: s.m.Vertices, Src: make([]graph.VID, n), Dst: make([]graph.VID, n)}
			if err := writeShardFile(shardPath(dir, 2), bad, format); err != nil {
				t.Fatal(err)
			}
			if _, err := s.LoadShard(2); err == nil {
				t.Fatal("LoadShard decoded a shard file that contradicts the manifest")
			} else if !strings.Contains(err.Error(), "manifest says") {
				t.Fatalf("LoadShard error %q, want the edge-count-vs-manifest rejection", err)
			}
			// Truncation — the classic torn write — is rejected too.
			path := shardPath(dir, 3)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.LoadShard(3); err == nil {
				t.Fatal("LoadShard decoded a truncated shard file")
			}
		})
	}
}
