// PageRank-delta example: runs the paper's flagship workload (PRDelta on
// a social-network graph) and prints the frontier-class progression that
// motivates the three-layout design — early iterations are dense (COO),
// middle ones medium (CSC backward) and the long tail sparse (CSR
// forward).
package main

import (
	"fmt"

	"repro"
	"repro/internal/algorithms"
)

func main() {
	g := repro.Preset("livejournal-sm")
	fmt.Printf("graph: livejournal-sm, %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	eng := repro.NewEngine(g, repro.Options{Partitions: 384})
	res := algorithms.PRDelta(eng, 60)

	fmt.Printf("PRDelta converged in %d iterations\n", res.Iters)
	fmt.Println("active vertices per iteration:")
	for i, c := range res.ActiveCounts {
		frac := float64(c) / float64(g.NumVertices()) * 100
		fmt.Printf("  iter %2d: %8d active (%5.1f%%)\n", i, c, frac)
	}

	tel := eng.Telemetry()
	fmt.Printf("\nfrontier classes used: %d dense (COO), %d medium (CSC), %d sparse (CSR)\n",
		tel.DenseIters, tel.MediumIters, tel.SparseIters)
	fmt.Println("(the paper reports 8 dense, 3 medium, 22 sparse for PRDelta on Twitter)")

	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	// Mass drifts a few percent above 1: deltas below the activation
	// threshold are dropped rather than forwarded (PRDelta's documented
	// approximation), and dropped negative deltas outnumber positive
	// ones on skewed graphs.
	fmt.Printf("rank mass: %.4f (≈1; small drift from delta truncation)\n", sum)
}
