package shard

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// twoClusters builds a graph of two disjoint 256-vertex communities
// (a chain plus some longer chords each), so with 64-aligned
// partitioning the shards split cleanly into cluster-A shards and
// cluster-B shards and a batch confined to cluster B has a dirty
// frontier that never reaches cluster A.
func twoClusters() []graph.Edge {
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		base := graph.VID(c * 256)
		for v := graph.VID(0); v < 255; v++ {
			edges = append(edges, graph.Edge{Src: base + v, Dst: base + v + 1})
		}
		for v := graph.VID(0); v < 256-17; v += 13 {
			edges = append(edges, graph.Edge{Src: base + v + 17, Dst: base + v})
		}
	}
	return edges
}

const tcN = 512 // twoClusters vertex count

// buildMutated creates a store missing `held`, applies held as a
// batch, and returns the store reopened at the new generation plus
// the merged graph — the standard mutate-then-requery fixture.
func buildMutated(t *testing.T, dir string, all, held []graph.Edge, p int) (*Store, *graph.Graph, []int) {
	t.Helper()
	heldSet := make(map[graph.Edge]bool, len(held))
	for _, e := range held {
		heldSet[e] = true
	}
	var initial []graph.Edge
	for _, e := range all {
		if !heldSet[e] {
			initial = append(initial, e)
		}
	}
	st, err := Create(dir, graph.FromEdges(tcN, initial), WriteOptions{Partitions: p})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.ApplyBatch(held, nil)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return reopened, graph.FromEdges(tcN, all), res.Dirty
}

// TestIncrementalPRMatchesFull pins the re-convergence contract: after
// a batch confined to one community, restarting from the previous
// fixed point over only the dirty shards lands within 1e-12 of a full
// recompute on the mutated store — while loading strictly fewer
// shards.
func TestIncrementalPRMatchesFull(t *testing.T) {
	const p, tol = 8, 1e-15
	all := twoClusters()
	// Hold back some cluster-B chords: the batch's sources and
	// destinations all live in [256, 512).
	var held []graph.Edge
	for _, e := range all {
		if e.Src >= 256 && e.Src != e.Dst+17 && e.Src < e.Dst {
			held = append(held, e)
		}
	}
	if len(held) == 0 {
		t.Fatal("fixture holds back no edges")
	}

	dir := t.TempDir()
	st, g, dirty := buildMutated(t, dir, all, held, p)
	for _, si := range dirty {
		if lo, _ := st.Range(si); lo < 256 {
			t.Fatalf("batch confined to cluster B dirtied cluster-A shard %d", si)
		}
	}

	// The previous fixed point: converge on the pre-batch store.
	preDir := t.TempDir()
	heldSet := make(map[graph.Edge]bool)
	for _, e := range held {
		heldSet[e] = true
	}
	var initial []graph.Edge
	for _, e := range all {
		if !heldSet[e] {
			initial = append(initial, e)
		}
	}
	g0 := graph.FromEdges(tcN, initial)
	st0, err := Create(preDir, g0, WriteOptions{Partitions: p})
	if err != nil {
		t.Fatal(err)
	}
	e0, err := NewEngine(st0, g0, Options{Threads: 2, CacheShards: p})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := e0.IncrementalPR(nil, nil, tol, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// CacheShards >= shard count, so ShardLoads counts distinct shards
	// visited: the locality claim is about I/O, not visit arithmetic.
	eInc, err := NewEngine(st, g, Options{Threads: 2, CacheShards: p})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := eInc.IncrementalPR(prev.Ranks, dirty, tol, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eFull, err := NewEngine(st, g, Options{Threads: 2, CacheShards: p})
	if err != nil {
		t.Fatal(err)
	}
	full, err := eFull.IncrementalPR(nil, nil, tol, 1000)
	if err != nil {
		t.Fatal(err)
	}

	var maxDiff float64
	for v := range full.Ranks {
		if d := math.Abs(full.Ranks[v] - inc.Ranks[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-12 {
		t.Fatalf("incremental ranks diverge from full recompute by %g, want <= 1e-12", maxDiff)
	}
	incLoads, fullLoads := eInc.Stats().ShardLoads, eFull.Stats().ShardLoads
	if incLoads >= fullLoads {
		t.Fatalf("incremental loaded %d shards, full loaded %d — no locality win", incLoads, fullLoads)
	}
	if inc.ShardVisits >= full.ShardVisits {
		t.Fatalf("incremental visited %d shards, full visited %d", inc.ShardVisits, full.ShardVisits)
	}
}

// TestIncrementalCCInsertOnlyExact pins exactness: labels are monotone
// under insert-only batches, so re-converging from the previous fixed
// point equals a full recompute bit-for-bit — here with a batch that
// merges the two communities.
func TestIncrementalCCInsertOnlyExact(t *testing.T) {
	const p = 8
	all := twoClusters()
	bridge := []graph.Edge{{Src: 3, Dst: 300}, {Src: 7, Dst: 400}}
	all = append(all, bridge...)

	dir := t.TempDir()
	st, g, dirty := buildMutated(t, dir, all, bridge, p)

	// Previous fixed point on the pre-batch (disconnected) store.
	var initial []graph.Edge
	for _, e := range all[:len(all)-len(bridge)] {
		initial = append(initial, e)
	}
	g0 := graph.FromEdges(tcN, initial)
	st0, err := Create(t.TempDir(), g0, WriteOptions{Partitions: p})
	if err != nil {
		t.Fatal(err)
	}
	e0, err := NewEngine(st0, g0, Options{Threads: 2, CacheShards: p})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := e0.IncrementalCC(nil, nil, tcN+1)
	if err != nil {
		t.Fatal(err)
	}
	// The two communities must be distinct before the bridge for the
	// test to show propagation across them.
	if prev.Labels[300] == prev.Labels[3] {
		t.Fatal("communities already merged before the bridge batch")
	}

	eInc, err := NewEngine(st, g, Options{Threads: 2, CacheShards: p})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := eInc.IncrementalCC(prev.Labels, dirty, tcN+1)
	if err != nil {
		t.Fatal(err)
	}
	eFull, err := NewEngine(st, g, Options{Threads: 2, CacheShards: p})
	if err != nil {
		t.Fatal(err)
	}
	full, err := eFull.IncrementalCC(nil, nil, tcN+1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range full.Labels {
		if full.Labels[v] != inc.Labels[v] {
			t.Fatalf("vertex %d: incremental label %d, full label %d", v, inc.Labels[v], full.Labels[v])
		}
	}
	if inc.Labels[300] != inc.Labels[3] {
		t.Fatal("bridge edge did not propagate the lower community's label")
	}
	if inc.ShardVisits >= full.ShardVisits {
		t.Fatalf("incremental visited %d shards, full visited %d", inc.ShardVisits, full.ShardVisits)
	}
}

// TestIncrementalValidation pins the argument errors.
func TestIncrementalValidation(t *testing.T) {
	g := graph.FromEdges(tcN, twoClusters())
	st, err := Create(t.TempDir(), g, WriteOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, g, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IncrementalPR(make([]float64, 3), nil, 1e-9, 10); err == nil {
		t.Fatal("short prev ranks accepted")
	}
	if _, err := e.IncrementalPR(nil, nil, 0, 10); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := e.IncrementalPR(nil, []int{99}, 1e-9, 10); err == nil {
		t.Fatal("out-of-range seed shard accepted")
	}
	if _, err := e.IncrementalCC(make([]int32, 3), nil, 10); err == nil {
		t.Fatal("short prev labels accepted")
	}
	if _, err := e.IncrementalPR(nil, nil, 1e-9, 0); err == nil {
		t.Fatal("zero sweep budget converged")
	}
}
