package shard

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// writeManifest marshals m and swaps it in as dir's manifest.json —
// atomic temp+fsync+rename, then a directory sync so the swap itself
// is durable. Every manifest swap in a store's life goes through here:
// creation, each ApplyBatch generation bump, each Compact fold. The
// manifest is always written after the files it names are durable and
// never names a file an older manifest needs under a changed meaning,
// so a crash before, during or after the swap leaves the directory
// opening as exactly one complete generation.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeFileAtomic writes data to path via a fsync'd temporary file and
// an atomic rename — the manifest's durability discipline. A reader
// racing the write (or surviving a crash during it) sees either the
// old file or the new one, never a torn prefix; combined with the
// shard files' own temp+rename writes and the final directory sync, a
// conversion that dies at any point leaves the directory openable as
// whatever complete store it last had, or failing with a typed
// validation error — never silently corrupt.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making the renames inside it durable:
// without it a crash after a "successful" conversion can roll the
// directory entries back to files that no longer exist.
func syncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
