package sched

// Topology models the NUMA structure of the paper's evaluation machine
// (4 domains). Graph partitions are assigned to domains round-robin —
// the paper allocates equal partition counts per domain — and the
// experiment harness can report per-domain load. Because Go cannot pin
// memory pages, the model's role is bookkeeping: deciding which
// partitions belong together and validating that partition counts are
// multiples of the domain count as the paper requires.
type Topology struct {
	Domains int
}

// DefaultTopology mirrors the paper's 4-socket machine.
func DefaultTopology() Topology { return Topology{Domains: 4} }

// DomainOf returns the domain that owns partition p under round-robin
// assignment.
func (t Topology) DomainOf(p int) int {
	if t.Domains <= 0 {
		return 0
	}
	return p % t.Domains
}

// PartitionsFor rounds the requested partition count up to a multiple of
// the domain count, as §III.D prescribes ("we consider only multiples of
// 4 and allocate the same number of partitions on each NUMA domain").
func (t Topology) PartitionsFor(requested int) int {
	if t.Domains <= 1 || requested <= 0 {
		if requested < 1 {
			return 1
		}
		return requested
	}
	r := requested % t.Domains
	if r == 0 {
		return requested
	}
	return requested + t.Domains - r
}

// DomainLoads aggregates per-partition loads into per-domain loads.
func (t Topology) DomainLoads(partLoads []int64) []int64 {
	d := t.Domains
	if d <= 0 {
		d = 1
	}
	out := make([]int64, d)
	for p, l := range partLoads {
		out[t.DomainOf(p)] += l
	}
	return out
}

// DomainView is a Pool restricted to the workers one NUMA domain owns —
// the modelled counterpart of Polymer pinning a partition's processing
// threads to the socket that holds the partition's memory. Go cannot pin
// OS threads to sockets, so the view preserves the *scheduling*
// discipline instead: a task set run through a DomainView executes on at
// most Threads() concurrent goroutines, and every callback carries the
// pool-global worker ID of a worker the domain owns.
//
// Views are stateless and safe for concurrent use: distinct domains'
// ParallelTasks may run simultaneously (the Polymer all-sockets-at-once
// execution the concurrent shard apply models). When the pool has at
// least as many workers as the topology has domains, Split hands every
// domain a disjoint worker-ID set, so per-worker accumulators indexed by
// [0, Pool.Threads()) stay exclusive even across concurrently running
// domains; with fewer workers than domains, borrowed IDs repeat across
// views and concurrent callers must shard accumulators per domain
// instead (shard.Engine does).
type DomainView struct {
	workers []int // pool-global worker IDs owned by this domain
}

// Split deals the pool's worker IDs round-robin across the topology's
// domains, mirroring the round-robin partition→domain placement of
// DomainOf. Every domain gets at least one worker: when the pool has
// fewer workers than the topology has domains, domain d borrows worker
// d mod Threads() — the model of a machine whose cores are shared
// between domains. Borrowed IDs repeat across views, so callers that
// run domains concurrently must not index shared per-worker state by
// the pool-global ID alone; stripe it per domain (see DomainView).
func (t Topology) Split(p *Pool) []*DomainView {
	d := t.Domains
	if d <= 0 {
		d = 1
	}
	views := make([]*DomainView, d)
	for i := range views {
		views[i] = &DomainView{}
	}
	for w := 0; w < p.Threads(); w++ {
		views[w%d].workers = append(views[w%d].workers, w)
	}
	for i, v := range views {
		if len(v.workers) == 0 {
			v.workers = []int{i % p.Threads()}
		}
	}
	return views
}

// Threads returns the number of workers the domain owns.
func (v *DomainView) Threads() int { return len(v.workers) }

// Workers returns the pool-global worker IDs the domain owns, in
// ascending order (Split deals IDs round-robin, preserving order).
func (v *DomainView) Workers() []int { return v.workers }

// ParallelTasks runs exactly k tasks self-scheduled over just this
// domain's workers: fn(task, worker) where worker is the pool-global
// worker ID. Semantics match Pool.ParallelTasks — each task runs on
// exactly one worker, at most Threads() run concurrently — with the
// concurrency and worker identities confined to the domain.
func (v *DomainView) ParallelTasks(k int, fn func(task, worker int)) {
	runTasks(v.workers, k, fn)
}
