package bench

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sched"
)

func TestReorderAblationShape(t *testing.T) {
	// Big enough that the vertex arrays dwarf the adaptive LLC (1/8
	// ratio); TinySocial fits in cache entirely and shows no effect.
	g := gen.RMAT(15, 16, 0.57, 0.19, 0.19, 21)
	fig := ReorderAblation("rmat15", g, []int{1, 48})
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 strategies, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Fatalf("%s: miss rate %v out of (0,1]", s.Name, y)
			}
		}
	}
	// Partitioning must help under every ordering: P=16 miss rate below
	// P=1 for the identity order at least.
	for _, s := range fig.Series {
		if s.Name == "identity" && s.Y[1] >= s.Y[0] {
			t.Fatalf("partitioning did not reduce identity-order misses: %v", s.Y)
		}
	}
}

func TestThresholdAblationPaperChoiceCompetitive(t *testing.T) {
	g := gen.TinySocial()
	fig := ThresholdAblation("tiny", g, 1, 2)
	ys := fig.Series[0].Y
	if len(ys) != 7 {
		t.Fatalf("want 7 configs, got %d", len(ys))
	}
	// The paper's thresholds (config 0) should not be dramatically worse
	// than the best config on this workload (generous 3x bound: the
	// tiny graph makes timings noisy, we only guard against the adaptive
	// engine being fundamentally mis-tuned).
	best := ys[0]
	for _, y := range ys {
		if y < best {
			best = y
		}
	}
	if ys[0] > 3*best {
		t.Fatalf("paper thresholds %.4fs vs best %.4fs", ys[0], best)
	}
}

func TestBySourceAblationFlat(t *testing.T) {
	g := gen.TinySocial()
	fig := BySourceAblation("tiny", g, []int{1, 16, 64})
	var dst, src *Series
	for i := range fig.Series {
		switch fig.Series[i].Name {
		case "by-destination":
			dst = &fig.Series[i]
		case "by-source":
			src = &fig.Series[i]
		}
	}
	if dst == nil || src == nil {
		t.Fatal("missing series")
	}
	// By-source mean distance is exactly constant in P.
	for i := 1; i < len(src.Y); i++ {
		if src.Y[i] != src.Y[0] {
			t.Fatalf("by-source not flat: %v", src.Y)
		}
	}
	// By-destination improves markedly by P=64.
	if dst.Y[2] >= dst.Y[0]*0.8 {
		t.Fatalf("by-destination did not contract: %v", dst.Y)
	}
}

func TestNUMAFigureInvariants(t *testing.T) {
	g := gen.TinySocial()
	fig := NUMAFigure("tiny", g, []int{4, 16, 64}, sched.Topology{Domains: 4})
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("%s: fraction %v out of [0,1]", s.Name, y)
			}
			if s.Name == "next-updates" && y != 1 {
				t.Fatalf("next updates must be 100%% local at point %d, got %v", i, y)
			}
			if s.Name == "all-accesses" && y <= 0.5 {
				t.Fatalf("local share %v must exceed 1/2", y)
			}
		}
	}
}
