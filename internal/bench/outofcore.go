package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/shard"
)

// OutOfCoreResult is one algorithm's in-memory vs. out-of-core timing.
type OutOfCoreResult struct {
	Alg       string
	InMemory  float64 // seconds
	OutOfCore float64 // seconds
	Slowdown  float64 // OutOfCore / InMemory
}

// PrefetchResult is the pipeline ablation: the same cold-cache
// multi-iteration PageRank run with the sweep pipeline on and off. A
// one-shard LRU defeats caching across sweeps, so every iteration
// re-reads (nearly) the whole store and the double buffer's load/apply
// overlap is the only difference between the two columns.
type PrefetchResult struct {
	On      float64 // seconds, prefetch pipeline enabled
	Off     float64 // seconds, loads and applies strictly alternating
	Speedup float64 // Off / On: >1 means the pipeline won
}

// OutOfCore runs a representative algorithm slate on the in-memory
// GG-v2 engine and on the shard.Engine over the same graph, reporting
// the streaming overhead the LRU cache and frontier-aware sweeps are
// meant to bound, plus the prefetch-pipeline ablation on a cold-cache
// PageRank. dir receives the shard files; shards and threads 0 select
// defaults. The returned figure has one X index per algorithm (the note
// lines give the mapping) and one series per engine.
func OutOfCore(g *graph.Graph, dir string, shards, threads, reps int) (*Figure, []OutOfCoreResult, PrefetchResult, error) {
	if shards <= 0 {
		shards = 16
	}
	inMem := core.NewEngine(g, core.Options{Threads: threads})
	// Domains: 1 keeps the headline Slowdown column measuring streaming
	// overhead alone, comparable with pre-placement numbers — the
	// default 4-domain topology would confine each apply to a quarter
	// of the pool. The pipeline ablation below runs the shipped default.
	ooc, err := shard.Build(dir, g, shards, shard.Options{Threads: threads, Topology: sched.Topology{Domains: 1}})
	if err != nil {
		return nil, nil, PrefetchResult{}, err
	}
	runs := []struct {
		alg string
		run func(sys api.System)
	}{
		{"PR", func(sys api.System) { algorithms.PR(sys, 10) }},
		{"BFS", func(sys api.System) { algorithms.BFS(sys, algorithms.SourceVertex(g)) }},
		{"CC", func(sys api.System) { algorithms.CC(sys) }},
		{"SPMV", func(sys api.System) { algorithms.SPMV(sys) }},
	}
	fig := &Figure{
		ID:     "OOC",
		Title:  "in-memory vs. out-of-core engine",
		XLabel: "algorithm#",
		YLabel: "seconds",
		Series: []Series{{Name: "GG-v2"}, {Name: "OOC"}},
	}
	var results []OutOfCoreResult
	for i, r := range runs {
		mem := MedianTime(reps, func() { r.run(inMem) })
		str := MedianTime(reps, func() { r.run(ooc) })
		res := OutOfCoreResult{
			Alg:       r.alg,
			InMemory:  Seconds(mem),
			OutOfCore: Seconds(str),
			Slowdown:  Speedup(str, mem),
		}
		results = append(results, res)
		fig.Series[0].X = append(fig.Series[0].X, float64(i))
		fig.Series[0].Y = append(fig.Series[0].Y, res.InMemory)
		fig.Series[1].X = append(fig.Series[1].X, float64(i))
		fig.Series[1].Y = append(fig.Series[1].Y, res.OutOfCore)
		fig.Notes = append(fig.Notes, fmt.Sprintf("alg %d = %s (%.1fx streaming overhead)", i, r.alg, res.Slowdown))
	}
	st := ooc.Stats()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"OOC engine: %d shards, %d disk loads, %d cache hits, %d shard visits skipped",
		ooc.Store().NumShards(), st.ShardLoads, st.CacheHits, st.ShardsSkipped))

	// Pipeline ablation: cold-cache (one-shard LRU) 10-iteration
	// PageRank, prefetch on vs off over the already-written store,
	// both under the engine's default (4-domain) placement.
	pfOn, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: 1})
	if err != nil {
		return nil, nil, PrefetchResult{}, err
	}
	pfOff, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: 1, NoPrefetch: true})
	if err != nil {
		return nil, nil, PrefetchResult{}, err
	}
	on := MedianTime(reps, func() { algorithms.PR(pfOn, 10) })
	off := MedianTime(reps, func() { algorithms.PR(pfOff, 10) })
	pf := PrefetchResult{On: Seconds(on), Off: Seconds(off), Speedup: Speedup(off, on)}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"cold-cache PR ablation: prefetch on %.3fs vs off %.3fs (%.2fx)", pf.On, pf.Off, pf.Speedup))
	ast := pfOn.Stats()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"OOC pipeline: %d prefetch loads (%d overlapped an apply), %d prefetch cache promotions, domain shards %v",
		ast.PrefetchLoads, ast.OverlappedLoads, ast.PrefetchHits, ast.DomainShards))
	return fig, results, pf, nil
}
