package shard

// The construction/execution split for multi-tenant serving. A Host is
// one opened store's shared substrate — the validated options, worker
// pool, NUMA views, vertex→shard map, source summaries, Hilbert keys —
// plus the three things N concurrent queries must share rather than
// duplicate: the refcounted byte-budgeted SharedCache, the aio read
// budget, and the co-scheduling passBoard. NewSession stamps out one
// execution context (an *Engine implementing api.System) per query:
// sessions get their own stats, planner state and vertex-state arrays
// but fetch through the shared cache, read under the shared I/O
// budget, and co-schedule their dense sweeps through the shared board.
//
// Each session individually keeps the full api.System contract —
// EdgeMap/VertexMap calls on *one* session are serial, like any other
// engine — while distinct sessions run concurrently: everything they
// share is either immutable (the core), internally synchronized (the
// cache, the board, the budget, the stateless sched.Pool, the
// scatter/gather bin cache), or owned per-session (frontiers,
// accumulators, stats). Update bins in particular are host-shared —
// one byte budget and one copy per store, however many sessions sweep
// it — see bincache.go.

import (
	"repro/internal/aio"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Host serves one store to N concurrent sessions.
type Host struct {
	core   *hostCore
	cache  *SharedCache
	board  passBoard
	budget *aio.Budget
}

// NewHost opens the store's shared substrate. cache is the daemon-wide
// shared LRU — pass the same value to every Host so all stores share
// one byte budget; nil builds a private SharedCache with
// DefaultCacheBytes. opts validates exactly as NewEngine's, and every
// session inherits the resolved value. The host-wide uncached-read
// budget equals the resolved Options.IODepth: a lone session gets the
// same read-ahead a private engine would, and concurrent sessions
// share that budget instead of multiplying it.
func NewHost(st *Store, g *graph.Graph, cache *SharedCache, opts Options) (*Host, error) {
	core, err := newHostCore(st, g, opts)
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = NewSharedCache(DefaultCacheBytes)
	}
	return &Host{
		core:   core,
		cache:  cache,
		budget: aio.NewBudget(core.opts.IODepth),
	}, nil
}

// BuildHost shards g into dir and returns a host over the new store —
// the one-call counterpart of Build for multi-tenant use.
func BuildHost(dir string, g *graph.Graph, p int, cache *SharedCache, opts Options) (*Host, error) {
	st, err := Create(dir, g, WriteOptions{Partitions: p, Format: opts.Format})
	if err != nil {
		return nil, err
	}
	return NewHost(st, g, cache, opts)
}

// NewSession returns a fresh execution context over the host's store.
// The session implements api.System; its results are bit-identical to
// a private engine's on the same store, whatever other sessions are
// doing concurrently. Sessions need no teardown — a session that
// finishes (or panics out of) its last sweep holds no cache pins and
// no goroutines.
func (h *Host) NewSession() *Engine {
	e := h.core.newEngine(newSessionCache(h.cache, h.core.st))
	e.shared = h.cache
	e.board = &h.board
	e.ioBudget = h.budget
	return e
}

// Store returns the hosted store.
func (h *Host) Store() *Store { return h.core.st }

// Graph returns the graph the store was written from.
func (h *Host) Graph() *graph.Graph { return h.core.g }

// Options returns the resolved options every session inherits.
func (h *Host) Options() Options { return h.core.opts }

// Cache returns the shared cache the host's sessions fetch through.
func (h *Host) Cache() *SharedCache { return h.cache }

// BinStats returns a snapshot of the host's scatter/gather bin cache —
// the one store-wide bin budget every session shares. Edge-centric
// hosts (no bin store) report the zero value.
func (h *Host) BinStats() BinCacheStats {
	if h.core.bins == nil {
		return BinCacheStats{}
	}
	return h.core.bins.Stats()
}

// Topology returns the modelled NUMA topology sessions place shards on.
func (h *Host) Topology() sched.Topology { return h.core.opts.Topology }

// Evict drops the host's unpinned resident shards from the shared
// cache and releases its scatter/gather bin store (unpinned bins leave
// memory immediately, every spill file is deleted) — the close-store
// path, which internal/serve takes when an update or compaction
// rehosts the store at a new generation. Shards and bins pinned by
// in-flight queries stay until released — then shards age out by LRU
// and bins retire outright, so a drained old host holds zero bin
// bytes.
func (h *Host) Evict() {
	h.cache.dropStore(h.core.st)
	if h.core.bins != nil {
		h.core.bins.drop()
	}
}
