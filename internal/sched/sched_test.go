package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCoversAll(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 7, 1000} {
			p := NewPool(threads)
			hits := make([]int32, n)
			p.ParallelFor(n, 16, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d hit %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestParallelForChunksCoversAll(t *testing.T) {
	p := NewPool(4)
	const n = 1013
	hits := make([]int32, n)
	p.ParallelForChunks(n, 7, func(w, lo, hi int) {
		if w < 0 || w >= p.Threads() {
			t.Errorf("bad worker id %d", w)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestParallelRangeBlocksDisjoint(t *testing.T) {
	p := NewPool(3)
	const n = 100
	owner := make([]int32, n)
	p.ParallelRange(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&owner[i], 1)
		}
	})
	for i, c := range owner {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestParallelTasksEachOnce(t *testing.T) {
	p := NewPool(4)
	const k = 37
	hits := make([]int32, k)
	p.ParallelTasks(k, func(task, worker int) {
		atomic.AddInt32(&hits[task], 1)
		if worker < 0 || worker >= 4 {
			t.Errorf("bad worker %d", worker)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestPoolDefaults(t *testing.T) {
	if NewPool(0).Threads() < 1 {
		t.Fatal("default pool has no threads")
	}
	if NewPool(-3).Threads() < 1 {
		t.Fatal("negative threads not defaulted")
	}
	if NewPool(7).Threads() != 7 {
		t.Fatal("explicit thread count ignored")
	}
}

func TestTopologyPartitionsFor(t *testing.T) {
	topo := Topology{Domains: 4}
	cases := map[int]int{1: 4, 4: 4, 5: 8, 8: 8, 383: 384, 384: 384, 0: 1}
	for in, want := range cases {
		if got := topo.PartitionsFor(in); got != want {
			t.Fatalf("PartitionsFor(%d) = %d, want %d", in, got, want)
		}
	}
	single := Topology{Domains: 1}
	if single.PartitionsFor(5) != 5 {
		t.Fatal("single domain should not round")
	}
}

func TestTopologyDomainAssignment(t *testing.T) {
	topo := Topology{Domains: 4}
	counts := make([]int, 4)
	for p := 0; p < 384; p++ {
		counts[topo.DomainOf(p)]++
	}
	for d, c := range counts {
		if c != 96 {
			t.Fatalf("domain %d holds %d partitions, want 96", d, c)
		}
	}
}

func TestDomainLoads(t *testing.T) {
	topo := Topology{Domains: 2}
	loads := topo.DomainLoads([]int64{1, 10, 100, 1000})
	if loads[0] != 101 || loads[1] != 1010 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestSingleWorkerInlinePaths(t *testing.T) {
	// All loop primitives short-circuit to inline execution on one
	// worker; verify each covers [0,n).
	p := NewPool(1)
	var a, b, c, d int
	p.ParallelFor(5, 2, func(int) { a++ })
	p.ParallelForChunks(5, 2, func(_, lo, hi int) { b += hi - lo })
	p.ParallelRange(5, func(_, lo, hi int) { c += hi - lo })
	p.ParallelTasks(5, func(int, int) { d++ })
	if a != 5 || b != 5 || c != 5 || d != 5 {
		t.Fatalf("inline coverage: %d %d %d %d", a, b, c, d)
	}
	// Zero-size loops are no-ops.
	p.ParallelFor(0, 2, func(int) { t.Error("called") })
	p.ParallelRange(0, func(int, int, int) { t.Error("called") })
	p.ParallelTasks(0, func(int, int) { t.Error("called") })
	p.ParallelForChunks(0, 2, func(int, int, int) { t.Error("called") })
}

func TestDefaultTopology(t *testing.T) {
	if DefaultTopology().Domains != 4 {
		t.Fatal("paper machine has 4 NUMA domains")
	}
	zero := Topology{}
	if zero.DomainOf(3) != 0 {
		t.Fatal("zero topology should map everything to domain 0")
	}
}

func TestSplitPartitionsWorkersAcrossDomains(t *testing.T) {
	// With workers >= domains, Split deals every worker ID to exactly
	// one domain — the disjointness per-worker accumulators rely on.
	topo := Topology{Domains: 4}
	p := NewPool(10)
	views := topo.Split(p)
	if len(views) != 4 {
		t.Fatalf("got %d views, want 4", len(views))
	}
	seen := map[int]int{}
	for d, v := range views {
		if v.Threads() == 0 {
			t.Fatalf("domain %d owns no workers", d)
		}
		for _, w := range v.Workers() {
			if w < 0 || w >= p.Threads() {
				t.Fatalf("domain %d owns out-of-pool worker %d", d, w)
			}
			seen[w]++
		}
	}
	if len(seen) != p.Threads() {
		t.Fatalf("%d workers assigned, pool has %d", len(seen), p.Threads())
	}
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d assigned to %d domains", w, c)
		}
	}
}

func TestSplitSharesWorkersWhenScarce(t *testing.T) {
	// Fewer workers than domains: every domain still gets a worker
	// (borrowed round-robin), so applies never stall on an empty view.
	topo := Topology{Domains: 8}
	views := topo.Split(NewPool(3))
	for d, v := range views {
		if v.Threads() != 1 {
			t.Fatalf("domain %d has %d workers, want exactly 1 borrowed", d, v.Threads())
		}
		if w := v.Workers()[0]; w != d%3 {
			t.Fatalf("domain %d borrowed worker %d, want %d", d, w, d%3)
		}
	}
}

func TestDomainViewParallelTasks(t *testing.T) {
	// Every task runs exactly once, and only on worker IDs the domain
	// owns.
	topo := Topology{Domains: 3}
	p := NewPool(7)
	views := topo.Split(p)
	for d, v := range views {
		owned := map[int]bool{}
		for _, w := range v.Workers() {
			owned[w] = true
		}
		const k = 40
		var ran [k]int64
		var badWorker int64
		v.ParallelTasks(k, func(task, worker int) {
			atomic.AddInt64(&ran[task], 1)
			if !owned[worker] {
				atomic.AddInt64(&badWorker, 1)
			}
		})
		for task := range ran {
			if ran[task] != 1 {
				t.Fatalf("domain %d: task %d ran %d times", d, task, ran[task])
			}
		}
		if badWorker != 0 {
			t.Fatalf("domain %d: %d callbacks carried foreign worker IDs", d, badWorker)
		}
	}
}

// TestParallelTasksPanicPropagates: a panicking task surfaces on the
// calling goroutine — recoverable — and leaves no worker goroutines
// behind, for both the inline single-worker path and the multi-worker
// path. This is what lets the out-of-core engine tear a concurrent
// sweep down cleanly when an operator panics mid-apply.
func TestParallelTasksPanicPropagates(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		p := NewPool(threads)
		baseline := runtime.NumGoroutine()
		var ran int32
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("threads=%d: panic did not propagate", threads)
				}
				if s, ok := r.(string); !ok || s != "task boom" {
					t.Fatalf("threads=%d: recovered %v, want the original panic value", threads, r)
				}
			}()
			p.ParallelTasks(64, func(task, worker int) {
				atomic.AddInt32(&ran, 1)
				if task == 3 {
					panic("task boom")
				}
			})
		}()
		if atomic.LoadInt32(&ran) == 0 {
			t.Fatalf("threads=%d: no task ran before the panic", threads)
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > baseline {
			t.Fatalf("threads=%d: goroutines grew from %d to %d after a panicking task set",
				threads, baseline, now)
		}
	}
}

// TestDomainViewPanicPropagates: the same guarantee through a domain
// view, which is the path the concurrent shard apply actually uses.
func TestDomainViewPanicPropagates(t *testing.T) {
	views := Topology{Domains: 2}.Split(NewPool(4))
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate through DomainView.ParallelTasks")
		}
	}()
	views[0].ParallelTasks(16, func(task, worker int) {
		if task == 2 {
			panic("domain boom")
		}
	})
}

// TestDomainViewsRunConcurrently: distinct domains' views can execute
// task sets simultaneously — the modelled all-sockets-at-once execution
// the concurrent shard apply relies on — and, with enough pool workers,
// every callback still carries a worker ID the domain exclusively owns,
// so Domains×Threads accumulator blocks stay race-free.
func TestDomainViewsRunConcurrently(t *testing.T) {
	const domains = 4
	pool := NewPool(8)
	views := Topology{Domains: domains}.Split(pool)
	owned := make([]map[int]bool, domains)
	for d, v := range views {
		owned[d] = map[int]bool{}
		for _, w := range v.Workers() {
			owned[d][w] = true
		}
		for o := 0; o < d; o++ {
			for w := range owned[d] {
				if owned[o][w] {
					t.Fatalf("domains %d and %d share worker %d with %d workers over %d domains",
						o, d, w, pool.Threads(), domains)
				}
			}
		}
	}

	// Every domain blocks its first task until all domains have one
	// running; with any cross-view serialisation this deadlocks, and the
	// timeout converts that into a failure.
	var started int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for d := 0; d < domains; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			views[d].ParallelTasks(3, func(task, worker int) {
				if !owned[d][worker] {
					t.Errorf("domain %d ran on worker %d it does not own", d, worker)
				}
				if task == 0 {
					if atomic.AddInt32(&started, 1) == domains {
						close(release)
					}
					select {
					case <-release:
					case <-time.After(10 * time.Second):
						t.Error("domains never ran concurrently")
					}
				}
			})
		}(d)
	}
	wg.Wait()
}
