package core

import (
	"time"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/hilbert"
	"repro/internal/partition"
	"repro/internal/sched"
	"sync"
)

// Engine is the GraphGrind-v2 runtime for one graph. Construction builds
// the three layout copies (§III.B: "where the state-of-the-art stores 2
// copies of the graph, we store 3"); EdgeMap then dispatches per
// iteration via Algorithm 2 unless a layout is forced.
type Engine struct {
	g    *graph.Graph
	opts Options
	pool *sched.Pool

	pt   *partition.Partitioning // by-destination vertex ranges
	pcoo *partition.PCOO         // dense layout
	pcsr *partition.PCSR         // only when Options.BuildCSRPartitions

	// Lazily-built chunk schedules for the atomics-forced traversals.
	chunksOnce    sync.Once
	chunks        []edgeChunk
	csrChunksOnce sync.Once
	csrChunksV    []edgeChunk

	telemetry Telemetry
}

var _ api.System = (*Engine)(nil)

// NewEngine builds the engine and its layouts for g.
func NewEngine(g *graph.Graph, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		g:    g,
		opts: opts,
		pool: sched.NewPool(opts.Threads),
		pt:   partition.ByDestination(g, opts.Partitions, opts.Criterion),
	}
	e.pcoo = partition.NewPCOO(g, e.pt)
	if opts.EdgeOrder != hilbert.BySource {
		for _, part := range e.pcoo.Parts {
			hilbert.Sort(part, opts.EdgeOrder)
		}
	}
	if opts.BuildCSRPartitions {
		e.pcsr = partition.NewPCSR(g, e.pt)
	}
	return e
}

// Name implements api.System.
func (e *Engine) Name() string { return "GG-v2" }

// Graph implements api.System.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Threads implements api.System.
func (e *Engine) Threads() int { return e.pool.Threads() }

// Options returns the resolved engine options.
func (e *Engine) Options() Options { return e.opts }

// Partitioning exposes the by-destination partitioning (experiments
// inspect balance and replication).
func (e *Engine) Partitioning() *partition.Partitioning { return e.pt }

// Telemetry returns a snapshot of per-class iteration counts.
func (e *Engine) Telemetry() Telemetry { return e.telemetry.snapshot() }

// EdgeMap applies op over the active edges of f (Algorithm 2). The
// direction hint is ignored: the engine decides from frontier density,
// which is the paper's headline usability claim.
func (e *Engine) EdgeMap(f *frontier.Frontier, op api.EdgeOp, _ api.Direction) *frontier.Frontier {
	if f.Count() == 0 {
		return frontier.New(e.g.NumVertices())
	}
	var label string
	var traverse func() *frontier.Frontier
	switch e.opts.Layout {
	case LayoutCSR:
		e.telemetry.add(frontier.Dense)
		label, traverse = "forced-CSR", func() *frontier.Frontier { return e.denseCSR(f, op) }
	case LayoutCSC:
		e.telemetry.add(frontier.Medium)
		label, traverse = "forced-CSC", func() *frontier.Frontier { return e.backwardCSC(f, op) }
	case LayoutCOO:
		e.telemetry.add(frontier.Dense)
		label, traverse = "forced-COO", func() *frontier.Frontier { return e.denseCOO(f, op) }
	default:
		cls := f.Classify(e.g, e.opts.SparseDiv, e.opts.DenseDiv)
		e.telemetry.add(cls)
		label = cls.String()
		switch cls {
		case frontier.Dense:
			traverse = func() *frontier.Frontier { return e.denseCOO(f, op) }
		case frontier.Medium:
			traverse = func() *frontier.Frontier { return e.backwardCSC(f, op) }
		default:
			traverse = func() *frontier.Frontier { return e.sparseCSR(f, op) }
		}
	}
	if rec := e.opts.Trace; rec != nil {
		start := time.Now()
		out := traverse()
		rec.Record(label, f.Count(), f.OutDegree(e.g), time.Since(start))
		return out
	}
	return traverse()
}

// VertexMap implements api.System.
func (e *Engine) VertexMap(f *frontier.Frontier, fn func(graph.VID)) {
	api.VertexMap(e.pool, f, fn)
}

// VertexFilter implements api.System.
func (e *Engine) VertexFilter(f *frontier.Frontier, pred func(graph.VID) bool) *frontier.Frontier {
	return api.VertexFilter(e.pool, e.g, f, pred)
}

// nextAccum collects the per-worker next-frontier statistics every
// traversal needs: active count and Σ out-degree, padded to avoid false
// sharing between workers.
type nextAccum struct {
	count  int64
	outDeg int64
	_      [6]int64 // pad to a cache line
}

func (e *Engine) newAccums() []nextAccum { return make([]nextAccum, e.pool.Threads()) }

func finishFrontier(n int, bm *frontier.Bitmap, accs []nextAccum) *frontier.Frontier {
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(n, bm)
	nf.SetStats(count, outDeg)
	return nf
}
