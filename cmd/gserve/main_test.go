package main

// Daemon smoke test: build the real binary, boot it on an ephemeral
// port with a preloaded store, run one query over HTTP, and check that
// SIGTERM shuts it down cleanly. This is the process-level counterpart
// of internal/serve's in-process tests — it exercises flag parsing,
// the bound-address announcement, and signal handling.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/shard"
)

func TestGserveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	storeDir := t.TempDir()
	if _, err := shard.Create(storeDir, gen.TinySocial(), shard.WriteOptions{Partitions: 8}); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "gserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building gserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store", "tiny="+storeDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "gserve: listening on <addr>" once connectable.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "gserve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address: %v", sc.Err())
	}
	base := "http://" + addr

	body, _ := json.Marshal(map[string]any{"store": "tiny", "algo": "pagerank", "iters": 3})
	resp, err := http.Post(base+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submitting query to daemon: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(fmt.Sprintf("%s/v1/queries/%s?wait=1", base, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Status string `json:"status"`
		Error  string `json:"error"`
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Status != "done" || info.Digest == "" {
		t.Fatalf("query finished %q (%s) with digest %q", info.Status, info.Error, info.Digest)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon ignored SIGTERM")
	}
}

// TestGserveBadBinFlagsExitTwo pins the CLI contract for the bin-budget
// knobs: malformed or inconsistent values must be rejected at parse
// time with exit status 2 (flag-error convention), never survive into
// a booted daemon.
func TestGserveBadBinFlagsExitTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "gserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building gserve: %v\n%s", err, out)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"negative budget", []string{"-bin-budget", "-1"}},
		{"budget below one bin", []string{"-sweepmode", "scatter-gather", "-bin-budget", "100"}},
		{"budget without scatter-gather", []string{"-bin-budget", "8192"}},
		{"bogus sweep mode", []string{"-sweepmode", "bogus"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-addr", "127.0.0.1:0"}, tc.args...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			if err == nil {
				t.Fatalf("daemon accepted %v:\n%s", tc.args, out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("want exit status 2 for %v, got %v\n%s", tc.args, err, out)
			}
		})
	}
}
