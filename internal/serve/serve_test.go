package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shard"
)

// writeStore shards TinySocial into a fresh directory and returns the
// directory plus the graph it was written from.
func writeStore(t *testing.T, p int) (string, *graph.Graph) {
	t.Helper()
	g := gen.TinySocial()
	dir := t.TempDir()
	if _, err := shard.Write(dir, g, p); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
}

// TestServeHTTPRoundTrip drives the whole API surface over real HTTP:
// open a store, list it, run one of each algorithm to completion,
// check the PageRank digest against a private solo engine, read stats,
// close the store, and confirm the error paths answer with errors
// rather than panics.
func TestServeHTTPRoundTrip(t *testing.T) {
	dir, g := writeStore(t, 12)
	s := New(Config{Options: shard.Options{Threads: 4}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var opened storeInfo
	if resp := postJSON(t, c, ts.URL+"/v1/stores", map[string]string{"name": "tiny", "dir": dir}, &opened); resp.StatusCode != http.StatusCreated {
		t.Fatalf("open store: %s", resp.Status)
	}
	if opened.Vertices != g.NumVertices() || opened.Edges != g.NumEdges() || opened.Shards != 12 {
		t.Fatalf("opened store reports %d vertices / %d edges / %d shards, want %d / %d / 12",
			opened.Vertices, opened.Edges, opened.Shards, g.NumVertices(), g.NumEdges())
	}
	var listed []storeInfo
	getJSON(t, c, ts.URL+"/v1/stores", &listed)
	if len(listed) != 1 || listed[0].Name != "tiny" {
		t.Fatalf("store listing = %+v, want exactly [tiny]", listed)
	}

	// A private engine over its own copy of the store is the oracle.
	solo, err := shard.Build(t.TempDir(), g, 12, shard.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantPR := digestF64(algorithms.PR(solo, 10).Ranks)

	for _, spec := range []QuerySpec{
		{Store: "tiny", Algo: "pagerank"},
		{Store: "tiny", Algo: "bfs", Src: 1},
		{Store: "tiny", Algo: "cc"},
		{Store: "tiny", Algo: "spmv"},
	} {
		var sub struct {
			ID string `json:"id"`
		}
		if resp := postJSON(t, c, ts.URL+"/v1/queries", spec, &sub); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s", spec.Algo, resp.Status)
		}
		var info queryInfo
		getJSON(t, c, ts.URL+"/v1/queries/"+sub.ID+"?wait=1", &info)
		if info.Status != "done" {
			t.Fatalf("%s finished %q (%s), want done", spec.Algo, info.Status, info.Error)
		}
		if info.Digest == "" {
			t.Fatalf("%s reported no digest", spec.Algo)
		}
		if spec.Algo == "pagerank" && info.Loads <= 0 {
			// The first query on a cold store must hit the disk; later
			// queries may run entirely off its resident shards.
			t.Fatalf("first query reported %d loads on a cold store", info.Loads)
		}
		if spec.Algo == "pagerank" && info.Digest != wantPR {
			t.Fatalf("served pagerank digest %s, solo engine digest %s: not bit-identical", info.Digest, wantPR)
		}
	}

	var stats statsInfo
	getJSON(t, c, ts.URL+"/v1/stats", &stats)
	if stats.Queries != 4 || len(stats.Stores) != 1 {
		t.Fatalf("stats report %d queries over %d stores, want 4 over 1", stats.Queries, len(stats.Stores))
	}
	if stats.Cache.Loads == 0 || stats.Cache.Bytes > stats.Cache.Budget {
		t.Fatalf("cache stats implausible after four queries: %+v", stats.Cache)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stores/tiny", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close store: %s", resp.Status)
	}

	// Error paths: unknown store, unknown algorithm, unknown query.
	if resp := postJSON(t, c, ts.URL+"/v1/queries", QuerySpec{Store: "tiny", Algo: "pagerank"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query on closed store: %s, want 400", resp.Status)
	}
	if resp := postJSON(t, c, ts.URL+"/v1/queries", QuerySpec{Store: "nope", Algo: "sssp"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: %s, want 400", resp.Status)
	}
	r2, err := c.Get(ts.URL + "/v1/queries/q999")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown query: %s, want 404", r2.Status)
	}
}

// TestServeSessionConformance runs the api.System contract check over
// a served session — the adapter the differential ladder drives.
func TestServeSessionConformance(t *testing.T) {
	dir, _ := writeStore(t, 8)
	s := New(Config{Options: shard.Options{Threads: 4}})
	if err := s.OpenStore("tiny", dir); err != nil {
		t.Fatal(err)
	}
	sys, err := s.Session("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := api.CheckSystem(sys); err != nil {
		t.Fatalf("served session violates the System contract: %v", err)
	}
}

// TestServedConcurrentPRBFS is the daemon-level acceptance test:
// PageRank and BFS submitted concurrently against one server must
// digest bit-identically to solo runs on private servers, and the
// shared cache must have performed strictly fewer loads than the two
// solo runs summed.
func TestServedConcurrentPRBFS(t *testing.T) {
	dir, _ := writeStore(t, 12)

	runOne := func(spec QuerySpec) (string, int64) {
		s := New(Config{Options: shard.Options{Threads: 4}})
		if err := s.OpenStore("tiny", dir); err != nil {
			t.Fatal(err)
		}
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		info := s.queries[id].info()
		s.mu.Unlock()
		if info.Status != "done" {
			t.Fatalf("solo %s finished %q (%s)", spec.Algo, info.Status, info.Error)
		}
		return info.Digest, info.Loads
	}
	prSpec := QuerySpec{Store: "tiny", Algo: "pagerank", Iters: 5}
	bfsSpec := QuerySpec{Store: "tiny", Algo: "bfs", Src: 1}
	wantPR, prLoads := runOne(prSpec)
	wantBFS, bfsLoads := runOne(bfsSpec)
	soloLoads := prLoads + bfsLoads

	s := New(Config{Options: shard.Options{Threads: 4}})
	if err := s.OpenStore("tiny", dir); err != nil {
		t.Fatal(err)
	}
	var ids [2]string
	var wg sync.WaitGroup
	for i, spec := range []QuerySpec{prSpec, bfsSpec} {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		wg.Add(1)
		go func() { defer wg.Done(); s.Wait(id) }()
	}
	wg.Wait()

	digests := map[string]string{}
	for _, id := range ids {
		s.mu.Lock()
		info := s.queries[id].info()
		s.mu.Unlock()
		if info.Status != "done" {
			t.Fatalf("concurrent %s finished %q (%s)", info.Algo, info.Status, info.Error)
		}
		digests[info.Algo] = info.Digest
	}
	if digests["pagerank"] != wantPR {
		t.Fatalf("concurrent pagerank digest %s, solo %s: not bit-identical", digests["pagerank"], wantPR)
	}
	if digests["bfs"] != wantBFS {
		t.Fatalf("concurrent bfs digest %s, solo %s: not bit-identical", digests["bfs"], wantBFS)
	}

	concurrent := s.Cache().Stats().Loads
	if concurrent >= soloLoads {
		t.Fatalf("concurrent PR+BFS performed %d loads, want strictly fewer than the solo sum %d (%d + %d)",
			concurrent, soloLoads, prLoads, bfsLoads)
	}
	fmt.Printf("served PR+BFS: concurrent loads %d vs solo sum %d\n", concurrent, soloLoads)
}
