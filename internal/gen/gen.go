// Package gen produces deterministic synthetic graphs that stand in for
// the paper's datasets (Table I). The real Twitter/Friendster/Orkut/
// LiveJournal/Yahoo/USAroad files are not available offline, so each is
// replaced by a generator whose degree skew, direction and density mimic
// the original at laptop scale; see DESIGN.md §2 for the substitution
// argument.
//
// All generators are pure functions of their parameters and seed, so every
// experiment is reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// rng is a splitmix64-seeded xoshiro-style generator. We avoid math/rand
// so that streams are cheap to fork per vertex/per edge and stable across
// Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return graph.Mix64(r.s)
}

func (r *rng) float64() float64 { return graph.Uniform01(r.next()) }

// intn returns a uniform value in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("gen: intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// RMAT generates a directed R-MAT graph with 2^scale vertices and
// approximately edgeFactor·2^scale edges using the classic recursive
// quadrant probabilities (a,b,c,d). Kronecker noise is added per level so
// degree distributions are smooth, matching common RMAT implementations.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed uint64) *graph.Graph {
	if scale < 0 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of range", scale))
	}
	n := 1 << scale
	m := n * edgeFactor
	d := 1 - a - b - c
	if d < 0 {
		panic("gen: RMAT probabilities exceed 1")
	}
	r := newRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		for level := 0; level < scale; level++ {
			// Perturb quadrant probabilities by ±10% per level.
			na := a * (0.9 + 0.2*r.float64())
			nb := b * (0.9 + 0.2*r.float64())
			nc := c * (0.9 + 0.2*r.float64())
			nd := d * (0.9 + 0.2*r.float64())
			norm := na + nb + nc + nd
			p := r.float64() * norm
			switch {
			case p < na:
				// top-left: no bit set
			case p < na+nb:
				v |= 1 << level
			case p < na+nb+nc:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		edges = append(edges, graph.Edge{Src: graph.VID(u), Dst: graph.VID(v)})
	}
	return graph.FromEdges(n, edges)
}

// PowerLaw generates a directed graph with n vertices and ~m edges whose
// degree distribution follows a power law P(deg=k) ∝ k^−alpha (the
// paper's synthetic Powerlaw graph uses α = 2.0). It is a Chung-Lu style
// model: endpoints are sampled proportionally to target degrees via the
// alias method. A degree exponent α corresponds to a rank-weight
// exponent s = 1/(α−1) (weight of the i-th most popular vertex ∝ i^−s).
func PowerLaw(n int, m int64, alpha float64, seed uint64) *graph.Graph {
	if n <= 0 {
		panic("gen: PowerLaw needs n > 0")
	}
	if alpha <= 1 {
		panic("gen: PowerLaw needs degree exponent alpha > 1")
	}
	s := 1 / (alpha - 1)
	weights := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w := math.Pow(float64(i+1), -s)
		weights[i] = w
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	// Shuffle vertex ranks so high-degree vertices are not all low IDs;
	// real datasets have no such correlation and partitioning-by-
	// destination balance depends on it.
	r := newRNG(seed)
	perm := make([]graph.VID, n)
	for i := range perm {
		perm[i] = graph.VID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	alias := newAlias(weights, r)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u := perm[alias.sample(r)]
		v := perm[alias.sample(r)]
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	return graph.FromEdges(n, edges)
}

// aliasTable implements Walker's alias method for O(1) sampling from a
// discrete distribution.
type aliasTable struct {
	prob  []float64
	alias []int
}

func newAlias(p []float64, r *rng) *aliasTable {
	n := len(p)
	t := &aliasTable{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range p {
		scaled[i] = w * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

func (t *aliasTable) sample(r *rng) int {
	i := r.intn(len(t.prob))
	if r.float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// ErdosRenyi generates a directed G(n, m) graph: m edges sampled uniformly
// with replacement.
func ErdosRenyi(n int, m int64, seed uint64) *graph.Graph {
	r := newRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.VID(r.intn(n)),
			Dst: graph.VID(r.intn(n)),
		})
	}
	return graph.FromEdges(n, edges)
}

// RoadGrid generates an undirected (symmetrised) rows×cols lattice with a
// small fraction of long-range shortcut edges removed/absent — a stand-in
// for the USAroad graph: bounded degree (≤4), huge diameter, no skew.
func RoadGrid(rows, cols int, seed uint64) *graph.Graph {
	n := rows * cols
	edges := make([]graph.Edge, 0, 4*n)
	id := func(r, c int) graph.VID { return graph.VID(r*cols + c) }
	rnd := newRNG(seed)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Drop ~3% of road segments so the network is irregular like
			// a real road graph but stays overwhelmingly connected.
			if c+1 < cols && rnd.float64() >= 0.03 {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r, c+1)})
				edges = append(edges, graph.Edge{Src: id(r, c+1), Dst: id(r, c)})
			}
			if r+1 < rows && rnd.float64() >= 0.03 {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r+1, c)})
				edges = append(edges, graph.Edge{Src: id(r+1, c), Dst: id(r, c)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Symmetrise returns a graph with the union of g's edges and their
// reversals, used to build the undirected datasets (Orkut, Yahoo_mem).
func Symmetrise(g *graph.Graph) *graph.Graph {
	es := g.Edges()
	out := make([]graph.Edge, 0, 2*len(es))
	for _, e := range es {
		out = append(out, e)
		if e.Src != e.Dst {
			out = append(out, graph.Edge{Src: e.Dst, Dst: e.Src})
		}
	}
	return graph.FromEdges(g.NumVertices(), out)
}

// Chain generates a directed path 0→1→…→n-1, useful in tests.
func Chain(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1)})
	}
	return graph.FromEdges(n, edges)
}

// Star generates a directed star: centre 0 points at every other vertex.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.VID(i)})
	}
	return graph.FromEdges(n, edges)
}

// Complete generates a complete directed graph on n vertices (no self
// loops), for small-n exhaustive tests.
func Complete(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(j)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// PaperExample builds the 6-vertex, 14-edge example graph from Figure 1 of
// the paper, used to cross-check partitioning against the worked example.
func PaperExample() *graph.Graph {
	// CSR of Fig. 1: vertex 0 → {1,2,3,4,5}; 2 → {4}; 3 → {4,5};
	// 4 → {5}; 5 → {0,1,2,3,4}. offsets [0,5,5,6,8,9,14].
	pairs := [][2]graph.VID{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
		{2, 4},
		{3, 4}, {3, 5},
		{4, 5},
		{5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 4},
	}
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{Src: p[0], Dst: p[1]}
	}
	return graph.FromEdges(6, edges)
}
