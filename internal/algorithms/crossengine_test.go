package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/polymer"
	"repro/internal/sched"
	"repro/internal/shard"
)

// Cross-engine property tests: on randomly generated graphs, every
// engine must agree with the serial oracle for every algorithm. This is
// the broad-coverage counterpart to the fixed-fixture tests in
// algorithms_test.go.

// randomGraph deterministically expands fuzz bytes into a graph.
func randomGraph(raw []uint16, nBits uint8) *graph.Graph {
	n := 1 << (3 + nBits%6) // 8..256 vertices
	edges := make([]graph.Edge, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		edges = append(edges, graph.Edge{
			Src: graph.VID(int(raw[i]) % n),
			Dst: graph.VID(int(raw[i+1]) % n),
		})
	}
	return graph.FromEdges(n, edges)
}

// oocEngine shards g into a fresh temp directory and returns the
// out-of-core engine over it, with the sweep pipeline (prefetch) on —
// its default. The small cache budget forces eviction and re-reads, so
// the differential suite also exercises the LRU path.
func oocEngine(t *testing.T, g *graph.Graph) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 4, shard.Options{CacheShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocNoPrefetchEngine is the OOC-prefetch differential variant's
// counterpart: the same engine with the pipeline disabled — the strict
// sequential sweep — so every oracle-agreement property doubles as a
// pipeline-on/off equivalence check.
func oocNoPrefetchEngine(t *testing.T, g *graph.Graph) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 4, shard.Options{CacheShards: 2, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocWindowEngine is the concurrent-apply differential variant: a
// k-deep staging window over a multi-domain topology, so up to D
// shards are applied simultaneously by their domains' worker views.
// Every oracle-agreement property therefore also pins the concurrent
// sweep to the sequential semantics.
func oocWindowEngine(t *testing.T, g *graph.Graph, window int) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 4, shard.Options{
		Threads: 4, CacheShards: 4, Window: window,
		Topology: sched.Topology{Domains: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocIODepthEngine is the async-read differential variant: the
// windowed multi-domain engine with the aio reader issuing up to depth
// uncached shard reads concurrently. Reads complete out of plan order
// under load, but admission stays plan-ordered, so every
// oracle-agreement property also pins the overlapped-read pipeline to
// the sequential semantics.
func oocIODepthEngine(t *testing.T, g *graph.Graph, depth int) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 8, shard.Options{
		Threads: 4, CacheShards: 4, Window: 4, IODepth: depth,
		Topology: sched.Topology{Domains: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocV1StoreEngine is the on-disk format differential variant: the same
// pipelined engine over a store written in the legacy raw (v1) shard
// encoding instead of the default compressed (v2) one. Decoded shards
// must be per-destination identical across formats, so every
// oracle-agreement property and the full pipeline ladder also pin
// v1-store and v2-store execution to bit-identical results.
func oocV1StoreEngine(t *testing.T, g *graph.Graph) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 4, shard.Options{CacheShards: 2, Format: shard.FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocOrderEngine is the sweep-order differential variant: the pipelined
// engine with the given non-default order policy over a deliberately
// tight LRU, so the planner actually permutes plans mid-algorithm (a
// multi-round traversal alternates zigzag parity and keeps shifting the
// resident set residency-first fronts). Ordering may change only when a
// shard is read — every oracle-agreement property pins that.
func oocOrderEngine(t *testing.T, g *graph.Graph, order shard.Order) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 4, shard.Options{CacheShards: 2, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocScatterGatherEngine is the partition-centric differential variant:
// dense sweeps scatter each staged shard into a per-shard update bin and
// gather replays each domain's own bins, with bins retained across
// sweeps (so multi-round algorithms mix cold scatters, full-reuse
// gathers and sparse edge-centric fallbacks). Bit-identical by the same
// disjoint-destination-range argument as the concurrent apply — which
// is exactly what every oracle-agreement property pins.
func oocScatterGatherEngine(t *testing.T, g *graph.Graph, window, depth int) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 8, shard.Options{
		Threads: 4, CacheShards: 4, Window: window, IODepth: depth,
		SweepMode: shard.SweepScatterGather,
		Topology:  sched.Topology{Domains: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocBinBudgetEngine is the eviction-pressure rung: the scatter/gather
// sweep runs under the smallest legal bin budget, so every bin that
// can't pin into 4 KiB spills to disk and gathers replay (or silently
// re-scatter) instead of hitting resident bins. Budget pressure must
// change bytes moved, never a single result bit.
func oocBinBudgetEngine(t *testing.T, g *graph.Graph) *shard.Engine {
	t.Helper()
	e, err := shard.Build(t.TempDir(), g, 8, shard.Options{
		Threads: 4, CacheShards: 4, Window: 4,
		SweepMode:      shard.SweepScatterGather,
		BinBudgetBytes: shard.MinBinBudgetBytes,
		Topology:       sched.Topology{Domains: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// oocSharedSessionEngine is the multi-tenant differential variant: a
// session of a shard.Host, fetching through the daemon's refcounted
// byte-budgeted SharedCache instead of a private LRU. The deliberately
// tiny byte budget keeps the cache evicting and refusing inserts
// (transient shards) mid-algorithm, so every oracle-agreement property
// also pins the shared-residency path to the private-engine semantics.
func oocSharedSessionEngine(t *testing.T, g *graph.Graph) *shard.Engine {
	t.Helper()
	h, err := shard.BuildHost(t.TempDir(), g, 4, shard.NewSharedCache(1<<13), shard.Options{
		Threads: 4, CacheShards: 2,
		Topology: sched.Topology{Domains: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h.NewSession()
}

// oocMutatedStoreEngine is the log-structured differential variant: the
// engine runs over a store whose content equals g's edge multiset but
// arrived there through mutation — an eighth of g's edges held back and
// re-inserted via ApplyBatch, plus a few foreign edges (absent from g)
// planted at creation and tombstoned by the same batch. With compact
// set, the deltas are additionally folded into generation-suffixed base
// files before the engine is built. Either way the engine must be
// bit-identical to one over a from-scratch store of g: base+delta
// merging (and compaction) preserve per-destination edge streams
// exactly, which is all any sweep path observes.
func oocMutatedStoreEngine(t *testing.T, g *graph.Graph, compact bool) *shard.Engine {
	t.Helper()
	edges := g.Edges()
	k := len(edges) / 8
	held := edges[:k]
	present := make(map[graph.Edge]bool, len(edges))
	for _, e := range edges {
		present[e] = true
	}
	var foreign []graph.Edge
	n := graph.VID(g.NumVertices())
	for s := graph.VID(0); s < n && len(foreign) < 3; s++ {
		e := graph.Edge{Src: s, Dst: (s*7 + 3) % n}
		if !present[e] {
			foreign = append(foreign, e)
		}
	}
	initial := append(append([]graph.Edge(nil), edges[k:]...), foreign...)
	dir := t.TempDir()
	st, err := shard.Create(dir, graph.FromEdges(g.NumVertices(), initial), shard.WriteOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(held, foreign); err != nil {
		t.Fatal(err)
	}
	if compact {
		if _, err := st.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen: the engine sees the store exactly as a later process would.
	st, err = shard.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := shard.NewEngine(st, g, shard.Options{CacheShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func enginesFor(t *testing.T, g *graph.Graph) []api.System {
	return []api.System{
		core.NewEngine(g, core.Options{}),
		core.NewEngine(g, core.Options{Layout: core.LayoutCOO}),
		core.NewEngine(g, core.Options{Layout: core.LayoutCSC}),
		ligra.New(g, 0),
		polymer.New(g, polymer.GGv1(), 0),
		oocEngine(t, g),
		oocNoPrefetchEngine(t, g),
		oocWindowEngine(t, g, 4),
		oocIODepthEngine(t, g, 2),
		oocIODepthEngine(t, g, 4),
		oocV1StoreEngine(t, g),
		oocOrderEngine(t, g, shard.OrderZigzag),
		oocOrderEngine(t, g, shard.OrderResidencyFirst),
		oocScatterGatherEngine(t, g, 1, 1),
		oocScatterGatherEngine(t, g, 4, 4),
		oocBinBudgetEngine(t, g),
		oocSharedSessionEngine(t, g),
		oocMutatedStoreEngine(t, g, false),
		oocMutatedStoreEngine(t, g, true),
	}
}

// TestSystemConformance gates the differential suite: every registered
// engine must satisfy the api.System contract checks on representative
// graphs before algorithm agreement means anything.
func TestSystemConformance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"social": gen.TinySocial(),
		"road":   gen.TinyRoad(),
		"star":   gen.Star(100),
		"empty":  graph.FromEdges(16, nil),
	}
	for gname, g := range graphs {
		for _, sys := range enginesFor(t, g) {
			if err := api.CheckSystem(sys); err != nil {
				t.Errorf("%s: %v", gname, err)
			}
		}
	}
}

func TestCrossEngineBFSProperty(t *testing.T) {
	f := func(raw []uint16, nBits uint8) bool {
		g := randomGraph(raw, nBits)
		if g.NumEdges() == 0 {
			return true
		}
		src := SourceVertex(g)
		want := SerialBFSDepths(g, src)
		for _, sys := range enginesFor(t, g) {
			got := BFSDepths(g, BFS(sys, src).Parents, src)
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEngineCCProperty(t *testing.T) {
	f := func(raw []uint16, nBits uint8) bool {
		g := randomGraph(raw, nBits)
		want := SerialCCLabels(g)
		for _, sys := range enginesFor(t, g) {
			got := CC(sys).Labels
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEngineSSSPProperty(t *testing.T) {
	f := func(raw []uint16, nBits uint8) bool {
		g := randomGraph(raw, nBits)
		if g.NumEdges() == 0 {
			return true
		}
		src := SourceVertex(g)
		want := SerialSSSP(g, src)
		for _, sys := range enginesFor(t, g) {
			got := BellmanFord(sys, src).Dist
			for v := range want {
				wInf := math.IsInf(float64(want[v]), 1)
				gInf := math.IsInf(float64(got[v]), 1)
				if wInf != gInf {
					return false
				}
				if !wInf && math.Abs(float64(got[v]-want[v])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEngineSPMVProperty(t *testing.T) {
	f := func(raw []uint16, nBits uint8) bool {
		g := randomGraph(raw, nBits)
		want := SerialSPMV(g)
		for _, sys := range enginesFor(t, g) {
			got := SPMV(sys).Y
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEnginePRProperty(t *testing.T) {
	f := func(raw []uint16, nBits uint8) bool {
		g := randomGraph(raw, nBits)
		want := SerialPR(g, 5)
		for _, sys := range enginesFor(t, g) {
			got := PR(sys, 5).Ranks
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEngineBCProperty(t *testing.T) {
	f := func(raw []uint16, nBits uint8) bool {
		g := randomGraph(raw, nBits)
		if g.NumEdges() == 0 {
			return true
		}
		src := SourceVertex(g)
		want := SerialBC(g, src)
		rg := g.Reverse()
		pairs := [][2]api.System{
			{core.NewEngine(g, core.Options{}), core.NewEngine(rg, core.Options{})},
			{ligra.New(g, 0), ligra.New(rg, 0)},
			{oocEngine(t, g), oocEngine(t, rg)},
		}
		for _, pair := range pairs {
			got := BC(pair[0], pair[1], src).Scores
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
