package shard

// Co-scheduling battery: a hook-gated deterministic proof that a
// follower really consumes the leader's disk pass, and the tentpole's
// headline regression — concurrent PageRank + BFS through shared
// sessions must be bit-identical to solo runs AND touch the disk
// strictly less than the two solo runs summed.

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestCoScheduledPassSharesShards forces the leader/follower
// interleaving deterministically: the leader opens its pass and then
// every apply blocks until the follower has joined, so at most
// applyCap publications can precede the join and the rest — at least
// 12-applyCap shards — are snooped by the follower. Both sessions
// count in-degrees, which verifies each plan applied every edge
// exactly once whatever mix of snooped and remainder shards served it.
func TestCoScheduledPassSharesShards(t *testing.T) {
	g := gen.TinySocial()
	h := buildHostOver(t, g, 12, 64<<20, Options{Threads: 4})
	n := g.NumVertices()

	leader := h.NewSession()
	follower := h.NewSession()

	led := make(chan struct{})
	joined := make(chan struct{})
	leader.onCoLead = func() { close(led) }
	leader.onApplyBegin = func(int) {
		select {
		case <-joined:
		case <-time.After(10 * time.Second):
			t.Error("follower never joined the open pass")
		}
	}
	follower.onCoFollow = func() { close(joined) }

	countOp := func(acc []int64) api.EdgeOp {
		return api.EdgeOp{
			Update:       func(u, v graph.VID) bool { acc[v]++; return true },
			UpdateAtomic: func(u, v graph.VID) bool { panic("shard engine called UpdateAtomic") },
		}
	}
	leadAcc := make([]int64, n)
	followAcc := make([]int64, n)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leader.EdgeMap(frontier.All(g), countOp(leadAcc), api.DirBackward)
	}()
	select {
	case <-led:
	case <-time.After(10 * time.Second):
		t.Fatal("first dense sweep never led a pass")
	}
	follower.EdgeMap(frontier.All(g), countOp(followAcc), api.DirBackward)
	wg.Wait()

	if s := follower.Stats(); s.CoScheduledSweeps != 1 {
		t.Fatalf("follower ran %d co-scheduled sweeps, want exactly 1", s.CoScheduledSweeps)
	} else if s.CoSharedShards == 0 {
		t.Fatal("follower joined the pass but applied none of the leader's publications")
	}
	if s := leader.Stats(); s.CoScheduledSweeps != 0 {
		t.Fatalf("leader accounted %d co-scheduled sweeps, want 0", s.CoScheduledSweeps)
	}

	for v := 0; v < n; v++ {
		want := g.InDegree(graph.VID(v))
		if leadAcc[v] != want || followAcc[v] != want {
			t.Fatalf("in-degree[%d]: leader %d, follower %d, want %d — an edge was dropped or double-applied",
				v, leadAcc[v], followAcc[v], want)
		}
	}
}

// TestCoScheduledPRBFSBitIdentical is the acceptance gate: PageRank and
// BFS running concurrently through two sessions of one host must
// produce float64-bit-identical ranks and an identical parent array to
// solo runs on private hosts — and together perform strictly fewer
// shard loads than the two solo runs summed.
func TestCoScheduledPRBFSBitIdentical(t *testing.T) {
	g := gen.TinySocial()
	const shards = 12
	const budget = 64 << 20
	src := graph.VID(1)

	soloPRHost := buildHostOver(t, g, shards, budget, Options{Threads: 4})
	soloPR := soloPRHost.NewSession()
	wantRanks := prOnSystem(soloPR, 5)
	soloBFSHost := buildHostOver(t, g, shards, budget, Options{Threads: 4})
	soloBFS := soloBFSHost.NewSession()
	wantParents := algorithms.BFS(soloBFS, src).Parents
	soloLoads := soloPR.Stats().ShardLoads + soloBFS.Stats().ShardLoads

	h := buildHostOver(t, g, shards, budget, Options{Threads: 4})
	pr := h.NewSession()
	bfs := h.NewSession()
	var gotRanks []float64
	var gotParents []int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); gotRanks = prOnSystem(pr, 5) }()
	go func() { defer wg.Done(); gotParents = algorithms.BFS(bfs, src).Parents }()
	wg.Wait()

	for v := range wantRanks {
		if math.Float64bits(gotRanks[v]) != math.Float64bits(wantRanks[v]) {
			t.Fatalf("rank[%d] = %x, want %x: co-scheduled PR not bit-identical to solo",
				v, math.Float64bits(gotRanks[v]), math.Float64bits(wantRanks[v]))
		}
	}
	for v := range wantParents {
		if gotParents[v] != wantParents[v] {
			t.Fatalf("parent[%d] = %d, want %d: co-scheduled BFS diverged from solo",
				v, gotParents[v], wantParents[v])
		}
	}

	concurrent := h.Cache().Stats().Loads
	if concurrent >= soloLoads {
		t.Fatalf("concurrent PR+BFS performed %d loads, want strictly fewer than the solo sum %d",
			concurrent, soloLoads)
	}
	if concurrent > int64(shards) {
		t.Fatalf("whole-store budget but %d loads for %d shards: residency or single-flight leaked a re-read",
			concurrent, shards)
	}
}
