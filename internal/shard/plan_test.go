package shard

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestOrderParseAndString pins the CLI spellings and the constructor's
// rejection of out-of-range policies.
func TestOrderParseAndString(t *testing.T) {
	for _, o := range Orders() {
		got, err := ParseOrder(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseOrder(%q) = %v, %v; want %v", o.String(), got, err, o)
		}
	}
	if _, err := ParseOrder("hilbert-ish"); err == nil {
		t.Fatal("ParseOrder accepted an unknown policy")
	}
	st, err := Write(t.TempDir(), gen.Chain(64), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(st, gen.Chain(64), Options{Order: Order(99)}); err == nil {
		t.Fatal("NewEngine accepted an invalid sweep order")
	}
}

// TestOrderPoliciesPermuteBaselinePlan is the planner's core safety
// property: whatever the frontier, the cache contents and the LRU
// budget, every policy emits a permutation of the baseline plan — the
// same shard set, each shard exactly once. Randomised across sparse and
// dense plans, warm and cold caches, and CacheShards settings.
func TestOrderPoliciesPermuteBaselinePlan(t *testing.T) {
	g := gen.Symmetrise(gen.PowerLaw(1<<9, 1<<12, 2.3, 5))
	n := g.NumVertices()
	st, err := Write(t.TempDir(), g, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, order := range Orders() {
		for _, cacheShards := range []int{1, 3, 12, 64} {
			e, err := NewEngine(st, g, Options{Order: order, CacheShards: cacheShards})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 40; trial++ {
				// Random warm state: fetch a few shards so the resident
				// set the planner consults varies from trial to trial.
				for i := 0; i < rng.Intn(4); i++ {
					if _, err := e.fetch(rng.Intn(st.NumShards()), false); err != nil {
						t.Fatal(err)
					}
				}
				// Random frontier, from a single vertex up to ~all of them.
				var vs []graph.VID
				p := []float64{0.002, 0.05, 0.5, 1}[trial%4]
				for v := 0; v < n; v++ {
					if rng.Float64() < p {
						vs = append(vs, graph.VID(v))
					}
				}
				f := frontier.FromList(n, vs)
				var baseline []int
				if trial%2 == 0 {
					baseline = e.planSparse(f)
				} else {
					baseline = e.planDense(f)
				}
				ordered := e.orderPlan(append([]int(nil), baseline...))
				if len(ordered) != len(baseline) {
					t.Fatalf("%v cache=%d: ordered plan has %d shards, baseline %d",
						order, cacheShards, len(ordered), len(baseline))
				}
				seen := make(map[int]bool, len(ordered))
				for _, si := range ordered {
					if seen[si] {
						t.Fatalf("%v cache=%d: shard %d appears twice in %v", order, cacheShards, si, ordered)
					}
					seen[si] = true
				}
				for _, si := range baseline {
					if !seen[si] {
						t.Fatalf("%v cache=%d: shard %d dropped from plan %v -> %v",
							order, cacheShards, si, baseline, ordered)
					}
				}
			}
		}
	}
}

// TestOrderZigzagDensePageRankFewerLoads is the locality regression
// gate: a 10-sweep cold-cache dense PageRank with CacheShards <
// NumShards must perform strictly fewer shard loads under OrderZigzag
// (and no more under OrderResidencyFirst) than under OrderAscending,
// record ReloadsAvoided > 0, and produce bit-identical ranks under all
// three policies. Ascending's cyclic pattern gets zero LRU hits, so any
// regression that loses the reordering win shows up as equal loads.
func TestOrderZigzagDensePageRankFewerLoads(t *testing.T) {
	// Uniform destinations: every shard holds in-edges, so the dense
	// plan is the full shard sequence and the cyclic-eviction pathology
	// is fully armed.
	g := gen.ErdosRenyi(1<<10, 1<<13, 7)
	const shards = 8
	const cacheShards = 4 // < shards: the regime where order matters
	st, err := Write(t.TempDir(), g, shards)
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		order Order
		loads int64
		saved int64
		ranks []float64
	}
	var runs []run
	for _, order := range Orders() {
		e, err := NewEngine(st, g, Options{Order: order, CacheShards: cacheShards})
		if err != nil {
			t.Fatal(err)
		}
		ranks := prOnSystem(e, 10)
		s := e.Stats()
		if s.DenseSweeps != 10 || s.SparseSweeps != 0 {
			t.Fatalf("%v: expected 10 dense sweeps, got %d dense + %d sparse",
				order, s.DenseSweeps, s.SparseSweeps)
		}
		// The planner's prediction is an exact simulation of the sweep's
		// own fetch sequence, so it must equal the hits the LRU served.
		if s.PlannedCacheHits != s.CacheHits {
			t.Fatalf("%v: planner predicted %d cache hits, engine measured %d",
				order, s.PlannedCacheHits, s.CacheHits)
		}
		runs = append(runs, run{order: order, loads: s.ShardLoads, saved: s.ReloadsAvoided, ranks: ranks})
	}
	asc, zig, res := runs[0], runs[1], runs[2]
	if perSweep := asc.loads / 10; perSweep <= cacheShards {
		t.Fatalf("fixture broken: ascending planned only %d shards/sweep against a %d-shard budget", perSweep, cacheShards)
	}
	if asc.saved != 0 {
		t.Fatalf("ascending recorded ReloadsAvoided = %d, want 0 by definition", asc.saved)
	}
	if zig.loads >= asc.loads {
		t.Fatalf("zigzag loaded %d shards, ascending %d; want strictly fewer", zig.loads, asc.loads)
	}
	if zig.saved <= 0 {
		t.Fatalf("zigzag recorded ReloadsAvoided = %d, want > 0", zig.saved)
	}
	if zig.saved != asc.loads-zig.loads {
		t.Fatalf("zigzag ReloadsAvoided = %d but loads dropped by %d", zig.saved, asc.loads-zig.loads)
	}
	if res.loads > asc.loads {
		t.Fatalf("residency-first loaded %d shards, ascending %d; must never load more", res.loads, asc.loads)
	}
	if res.loads >= asc.loads {
		t.Fatalf("residency-first loaded %d shards, ascending %d; want strictly fewer on the cyclic dense sweep", res.loads, asc.loads)
	}
	for _, r := range runs[1:] {
		for v := range asc.ranks {
			if r.ranks[v] != asc.ranks[v] {
				t.Fatalf("%v: rank[%d] = %v differs from ascending %v (must be bit-identical)",
					r.order, v, r.ranks[v], asc.ranks[v])
			}
		}
	}
}

// TestOrderPlannerEdgeCases tables the degenerate plans the policies
// must handle: empty plans, single-shard plans, budgets that hold the
// whole store (ordering must be a no-op win) and sparse plans (ordering
// still applies).
func TestOrderPlannerEdgeCases(t *testing.T) {
	g := gen.TinySocial()
	st, err := Write(t.TempDir(), g, 8)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty-plan", func(t *testing.T) {
		for _, order := range Orders() {
			e, err := NewEngine(st, g, Options{Order: order, CacheShards: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if got := e.orderPlan(nil); len(got) != 0 {
					t.Fatalf("%v: ordered empty plan became %v", order, got)
				}
			}
			if s := e.Stats(); s.PlannedCacheHits != 0 || s.ReloadsAvoided != 0 {
				t.Fatalf("%v: empty plans charged stats %+v", order, s)
			}
		}
	})

	t.Run("single-shard", func(t *testing.T) {
		for _, order := range Orders() {
			e, err := NewEngine(st, g, Options{Order: order, CacheShards: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ { // both zigzag parities, warm and cold
				if got := e.orderPlan([]int{3}); len(got) != 1 || got[0] != 3 {
					t.Fatalf("%v: ordered [3] became %v", order, got)
				}
			}
		}
	})

	t.Run("cache-holds-store", func(t *testing.T) {
		// CacheShards >= NumShards: every policy pays the disk exactly
		// once per shard and ordering is a no-op win — identical loads,
		// nothing left to avoid.
		var loads []int64
		for _, order := range Orders() {
			e, err := NewEngine(st, g, Options{Order: order, CacheShards: st.NumShards()})
			if err != nil {
				t.Fatal(err)
			}
			prOnSystem(e, 10)
			s := e.Stats()
			if s.ReloadsAvoided != 0 {
				t.Fatalf("%v: ReloadsAvoided = %d with the whole store cached, want 0", order, s.ReloadsAvoided)
			}
			if s.PlannedCacheHits != s.CacheHits {
				t.Fatalf("%v: planner predicted %d hits, engine measured %d", order, s.PlannedCacheHits, s.CacheHits)
			}
			loads = append(loads, s.ShardLoads)
		}
		for i, l := range loads {
			if l != loads[0] {
				t.Fatalf("policy %v loaded %d shards, ascending %d; must be identical when the store fits",
					Orders()[i], l, loads[0])
			}
		}
	})

	t.Run("aborted-sweep-charges-nothing", func(t *testing.T) {
		// Planner stats are staged at plan time but committed only when
		// the sweep completes: a sweep killed by an operator panic must
		// neither charge its predicted hits nor advance the ascending
		// shadow baseline past fetches that never happened. NoPrefetch
		// keeps the abort point deterministic (loads and applies
		// alternate on the sweep goroutine).
		e, err := NewEngine(st, g, Options{Order: OrderZigzag, CacheShards: 2, NoPrefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		countOp := api.EdgeOp{
			Update:       func(u, v graph.VID) bool { return true },
			UpdateAtomic: func(u, v graph.VID) bool { panic("atomic path unreachable") },
		}
		all := frontier.All(g)
		e.EdgeMap(all, countOp, api.DirAuto) // sweep 0: cold, commits 0 hits
		before := e.Stats()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panicking operator did not abort the sweep")
				}
			}()
			e.EdgeMap(all, api.EdgeOp{
				Update:       func(u, v graph.VID) bool { panic("operator failure") },
				UpdateAtomic: func(u, v graph.VID) bool { panic("operator failure") },
			}, api.DirAuto)
		}()
		after := e.Stats()
		if after.PlannedCacheHits != before.PlannedCacheHits || after.ReloadsAvoided != before.ReloadsAvoided {
			t.Fatalf("aborted sweep charged planner stats: %+v -> %+v", before, after)
		}
		// The engine stays usable and the planner's exactness survives:
		// the next committed sweep's prediction matches the hits the
		// cache actually serves it.
		preHits, prePlanned := after.CacheHits, after.PlannedCacheHits
		e.EdgeMap(all, countOp, api.DirAuto)
		final := e.Stats()
		if got, want := final.PlannedCacheHits-prePlanned, final.CacheHits-preHits; got != want {
			t.Fatalf("post-abort sweep predicted %d hits but collected %d", got, want)
		}
	})

	t.Run("sparse-plans-are-ordered", func(t *testing.T) {
		// A sparse frontier plans a subset of shards; the policies apply
		// to it exactly as to a dense plan. Zigzag reverses every odd
		// planned sweep; residency-first fronts whatever the LRU holds.
		zig, err := NewEngine(st, g, Options{Order: OrderZigzag, CacheShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		f := frontier.FromList(g.NumVertices(), sparseSources(g, 3))
		baseline := zig.planSparse(f)
		if len(baseline) < 2 {
			t.Fatalf("fixture too small: sparse plan %v needs >= 2 shards", baseline)
		}
		first := zig.orderPlan(append([]int(nil), baseline...))
		second := zig.orderPlan(append([]int(nil), baseline...))
		if !sort.IntsAreSorted(first) {
			t.Fatalf("zigzag sweep 0 should be ascending, got %v", first)
		}
		for i, si := range second {
			if si != baseline[len(baseline)-1-i] {
				t.Fatalf("zigzag sweep 1 should reverse %v, got %v", baseline, second)
			}
		}

		res, err := NewEngine(st, g, Options{Order: OrderResidencyFirst, CacheShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		warm := baseline[len(baseline)-1]
		if _, err := res.fetch(warm, false); err != nil {
			t.Fatal(err)
		}
		ordered := res.orderPlan(append([]int(nil), baseline...))
		if ordered[0] != warm {
			t.Fatalf("residency-first should front resident shard %d, got plan %v", warm, ordered)
		}
	})
}

// sparseSources picks k spread-out vertices with out-edges, giving the
// sparse planner a multi-shard plan.
func sparseSources(g *graph.Graph, k int) []graph.VID {
	var vs []graph.VID
	step := g.NumVertices() / k
	if step == 0 {
		step = 1
	}
	for v := 0; v < g.NumVertices() && len(vs) < k; v += step {
		for u := v; u < g.NumVertices(); u++ {
			if g.OutDegree(graph.VID(u)) > 0 {
				vs = append(vs, graph.VID(u))
				break
			}
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	// FromList wants duplicate-free input.
	uniq := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// TestOrderZigzagMatchesClosedForm pins the zigzag win to its closed
// form on a clean cyclic sweep: with P shards, budget C < P and S dense
// sweeps, ascending loads S*P while zigzag loads S*P - (S-1)*C.
func TestOrderZigzagMatchesClosedForm(t *testing.T) {
	g := gen.ErdosRenyi(1<<10, 1<<13, 9) // uniform in-edges: every shard is fed every sweep
	const shards, cacheShards, sweeps = 10, 3, 10
	st, err := Write(t.TempDir(), g, shards)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, g, Options{Order: OrderZigzag, CacheShards: cacheShards})
	if err != nil {
		t.Fatal(err)
	}
	// The closed form is per planned shard, so read the dense plan size
	// off the engine rather than assuming every shard has edges.
	m := int64(len(e.planDense(frontier.All(g))))
	if m <= cacheShards {
		t.Fatalf("fixture broken: dense plan has %d shards against a %d-shard budget", m, cacheShards)
	}
	prOnSystem(e, sweeps)
	s := e.Stats()
	if s.DenseSweeps != sweeps {
		t.Fatalf("expected %d dense sweeps, got %d", sweeps, s.DenseSweeps)
	}
	want := sweeps*m - (sweeps-1)*cacheShards
	if s.ShardLoads != want {
		t.Fatalf("zigzag loads = %d across %d sweeps of %d planned shards, closed form wants %d",
			s.ShardLoads, sweeps, m, want)
	}
	if got := s.ReloadsAvoided; got != int64((sweeps-1)*cacheShards) {
		t.Fatalf("ReloadsAvoided = %d, closed form wants %d", got, (sweeps-1)*cacheShards)
	}
}

// TestOrderResidencyFirstHilbertTailIsDeterministic pins the uncached
// tail of a residency-first plan to the engine's precomputed Hilbert
// keys, so the policy stays reproducible across runs and engines.
func TestOrderResidencyFirstHilbertTailIsDeterministic(t *testing.T) {
	g := gen.Symmetrise(gen.PowerLaw(1<<8, 1<<11, 2.3, 7))
	st, err := Write(t.TempDir(), g, 12)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, g, Options{Order: OrderResidencyFirst, CacheShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([]int, st.NumShards())
	for i := range baseline {
		baseline[i] = i
	}
	ordered := e.orderPlan(append([]int(nil), baseline...))
	// Cold cache: no resident prefix, the whole plan is the Hilbert tail.
	for i := 1; i < len(ordered); i++ {
		a, b := ordered[i-1], ordered[i]
		if e.hilbertKey[a] > e.hilbertKey[b] || (e.hilbertKey[a] == e.hilbertKey[b] && a > b) {
			t.Fatalf("cold residency-first plan %v not in Hilbert-key order at %d", ordered, i)
		}
	}
}
