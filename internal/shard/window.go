package shard

// The sweep pipeline's concurrency model (PCPM-style pipelining,
// Lakhotia et al., generalised to Polymer's all-sockets-at-once
// execution): a sweep's shard plan is known up front, so a single
// staging goroutine walks it in order, issuing uncached reads through
// the internal/aio reader — up to Options.IODepth in flight at once,
// each executed by a worker of the modelled NUMA domain that owns the
// shard — and reaping the completions strictly in plan order, handing
// each shard to the apply goroutine of its domain. Up to
// min(D, Threads) shards are applied simultaneously, one per domain,
// each by its own domain's worker view (the cap keeps aggregate
// parallelism at the pool size when domains outnumber workers); this
// is safe, and bit-identical to a sequential sweep, because shards own
// disjoint 64-aligned destination ranges and every operator writes
// destination state only, so no two concurrent applies ever touch the
// same vertex or the same next-frontier bitmap word.
//
// The split between issue and reap is what keeps deeper IODepths
// bit-identical *and* stats-identical: reads complete out of order,
// but the LRU is only consulted and mutated at the reap point, on the
// staging goroutine, in plan order — the exact get/put sequence a
// synchronous sweep would issue, which is also why the planner's
// shadow-LRU prediction (PlannedCacheHits) stays exact at any depth.
//
// The stager is throttled by a bounded window: at most
// max(IODepth, min(Window, CacheShards − in-flight applies)) shards
// may sit staged ahead (issued, loading, loaded or promoted, not yet
// begun applying), and staged plus mid-apply shards together never
// exceed CacheShards + IODepth, the engine's footprint of "the LRU
// budget plus the reads in flight". IODepth = 1 is exactly the
// pre-aio pipeline: a floor of one, a footprint of CacheShards + 1,
// one uncached load in flight.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/aio"
)

// loadFailure wraps a shard-read error so teardown can tell it apart
// from an operator panic: load failures are surfaced with the engine's
// "shard: engine sweep:" prefix, operator panics are re-raised verbatim.
type loadFailure struct{ err error }

// stagedRead is one plan entry the stager has claimed a window credit
// for: ticket is its in-flight async read, or nil when the stager
// predicted the LRU would serve it at reap time.
type stagedRead struct {
	si     int
	ticket *aio.Ticket[loadResult]
}

// sweepWindow owns one sweep's pipeline: the staging goroutine, the
// aio reader, the per-domain apply goroutines and the bounded-window
// accounting that couples them to the LRU budget.
type sweepWindow struct {
	e        *Engine
	k        int // window depth cap (Options.Window, already bounded by the LRU budget)
	depth    int // uncached-read budget (Options.IODepth)
	applyCap int // max simultaneous applies: min(Domains, Pool.Threads())
	reader   *aio.Reader[loadResult]

	mu       sync.Mutex
	cond     *sync.Cond
	staged   int // shards holding a window credit: issued, loading, loaded or promoted, not yet begun applying
	applying int // shards mid-apply across all domains
	aborted  bool
	cause    any // first failure: a loadFailure or an operator panic value

	queues     []chan *resident // per-domain hand-off, capacity = that domain's plan share
	applyWG    sync.WaitGroup   // one count per running apply goroutine
	stagerDone chan struct{}    // closed when the staging goroutine has exited
}

// startSweep launches the pipeline for a planned shard sequence: one
// apply goroutine per domain with work, fed in plan order through
// per-domain queues, the aio reader sized to the plan's per-domain
// shares, plus the staging goroutine. apply runs one resident shard
// (it is the closure over this EdgeMap's frontier and operator state).
// The caller must invoke wait, and should defer stop as the teardown
// barrier — stop is idempotent and returns only after every pipeline
// goroutine (the reader's workers included) has exited, so no sweep
// leaks goroutines even when wait re-raises a failure.
func (e *Engine) startSweep(plan []int, apply func(*resident)) *sweepWindow {
	w := &sweepWindow{e: e, k: e.opts.Window, depth: e.opts.IODepth, stagerDone: make(chan struct{})}
	// Concurrency never exceeds the pool: a machine modelled with T
	// workers runs at most T domain applies at once, so Threads keeps
	// meaning total parallelism even when Split had to deal borrowed
	// worker IDs to more domains than workers.
	w.applyCap = len(e.domains)
	if t := e.pool.Threads(); t < w.applyCap {
		w.applyCap = t
	}
	if w.applyCap < 1 {
		w.applyCap = 1
	}
	w.cond = sync.NewCond(&w.mu)
	perDomain := make([]int, len(e.domains))
	for _, si := range plan {
		perDomain[e.domainOf[si]]++
	}
	// The reader's queues are sized to the per-domain plan shares, so
	// Submit never blocks; its completion callback wakes the stager,
	// which may be waiting in pump for its FIFO head to become ready.
	// The broadcast must hold w.mu: pump checks Ready() under the lock
	// and then waits, so an unserialized completion could slip into
	// that gap and its wakeup would be lost — if it were the last wake
	// source, the stager would block forever.
	notify := func() {
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	if e.ioBudget != nil {
		// Shared sessions draw reads from the host-wide budget, so the
		// device sees at most that many uncached reads in flight across
		// every concurrent query on the store.
		w.reader = aio.NewShared[loadResult](perDomain, e.ioBudget, notify)
	} else {
		w.reader = aio.New[loadResult](perDomain, w.depth, notify)
	}
	w.queues = make([]chan *resident, len(e.domains))
	for d, n := range perDomain {
		if n == 0 {
			continue
		}
		// Full-capacity queues: the stager never blocks on a hand-off,
		// only on window credits, so teardown has a single wake-up path.
		w.queues[d] = make(chan *resident, n)
		w.applyWG.Add(1)
		go w.applyLoop(d, apply)
	}
	go w.stage(plan)
	return w
}

// stage is the staging goroutine: for each plan entry it claims a
// window credit (reaping ready reads while it waits), predicts the
// LRU's answer with a non-promoting peek, and either issues an async
// read on the shard's domain queue or records a predicted hit.
// Completions are reaped — admitted to the cache, counted, handed to
// the applies — strictly in plan order by pump, never here. On a load
// failure or an abort it closes the queues early; the apply goroutines
// drain and exit.
func (w *sweepWindow) stage(plan []int) {
	defer close(w.stagerDone)
	defer func() {
		for _, q := range w.queues {
			if q != nil {
				close(q)
			}
		}
	}()
	var fifo []stagedRead
	for _, si := range plan {
		if !w.pump(&fifo, true) {
			return
		}
		var t *aio.Ticket[loadResult]
		if !w.e.cache.peek(si) {
			idx := si
			t = w.reader.Submit(int(w.e.domainOf[si]), func() (loadResult, error) {
				return w.e.readShard(idx)
			})
		}
		fifo = append(fifo, stagedRead{si: si, ticket: t})
	}
	w.pump(&fifo, false)
}

// pump drives the reap side of the pipeline while the stager has
// something to wait for: every time the FIFO head's read has completed
// (or the head never needed one), the head is reaped — admitted to the
// LRU and counted in plan order, recorded in the window stats, handed
// to its domain's apply queue. With wantCredit, pump returns true once
// it has claimed a window credit for the next plan entry; without, it
// returns true once the FIFO has fully drained (end of plan). false
// means the sweep aborted or a load failed — the failed shard's credit
// is released and the failure recorded here.
func (w *sweepWindow) pump(fifo *[]stagedRead, wantCredit bool) bool {
	w.mu.Lock()
	for {
		if w.aborted {
			w.mu.Unlock()
			return false
		}
		if len(*fifo) > 0 {
			head := (*fifo)[0]
			if head.ticket == nil || head.ticket.Ready() {
				*fifo = (*fifo)[1:]
				w.mu.Unlock()
				if head.ticket == nil && !w.e.cache.peek(head.si) {
					// The issue-time hit prediction was invalidated by an
					// interleaved eviction (an earlier reap pushed this
					// shard off the cold end). Read it through the reader
					// like any other miss, so the IODepth bound covers
					// the fallback too; the planner simulation already
					// predicted a miss at this plan position, so the
					// stats stay exact.
					idx := head.si
					head.ticket = w.reader.Submit(int(w.e.domainOf[idx]), func() (loadResult, error) {
						return w.e.readShard(idx)
					})
				}
				sh, err := w.e.admit(head.si, head.ticket)
				if err != nil {
					w.release()
					w.fail(loadFailure{err})
					return false
				}
				w.recordStaged(head.si)
				w.queues[w.e.domainOf[head.si]] <- sh
				w.mu.Lock()
				continue
			}
		}
		if wantCredit && w.staged < w.limitLocked() &&
			w.staged+w.applying < w.e.opts.CacheShards+w.depth {
			w.staged++
			w.mu.Unlock()
			return true
		}
		if !wantCredit && len(*fifo) == 0 {
			w.mu.Unlock()
			return true
		}
		w.cond.Wait()
	}
}

// applyLoop is one domain's apply goroutine: it applies the domain's
// shards strictly in plan order, concurrently with the other domains'
// loops. An operator panic is captured, recorded as the sweep's failure
// and re-raised later on the sweep goroutine by wait — the loop keeps
// draining its queue so the stager can never wedge on teardown.
func (w *sweepWindow) applyLoop(d int, apply func(*resident)) {
	defer w.applyWG.Done()
	for sh := range w.queues[d] {
		w.beginApply()
		func() {
			defer w.endApply()
			// Drop the cache pin admit took for this shard on every exit:
			// applied, drained after an abort, or panicked mid-apply — a
			// leaked pin on a shared session would make the shard
			// unevictable for every other query on the store.
			defer w.e.cache.release(sh.idx)
			defer func() {
				if r := recover(); r != nil {
					w.fail(r)
				}
			}()
			if !w.isAborted() {
				apply(sh)
			}
		}()
	}
}

// limitLocked is the dynamic window bound: the configured depth k,
// shrunk so staged shards plus in-flight applies stay inside the LRU
// budget, floored at IODepth so the read pipeline never self-throttles
// below its budget (at IODepth = 1 this is the original floor of one:
// with a one-shard budget the pre-aio pipeline already kept one shard
// staged ahead of the apply).
func (w *sweepWindow) limitLocked() int {
	l := w.e.opts.CacheShards - w.applying
	if l > w.k {
		l = w.k
	}
	if l < w.depth {
		l = w.depth
	}
	return l
}

// release returns an unused credit (the read behind it failed).
func (w *sweepWindow) release() {
	w.mu.Lock()
	w.staged--
	w.cond.Broadcast()
	w.mu.Unlock()
}

// recordStaged samples the window depth right after a shard became
// resident, feeding the WindowDepths histogram and the test hook.
func (w *sweepWindow) recordStaged(si int) {
	w.mu.Lock()
	depth, applying := w.staged, w.applying
	w.mu.Unlock()
	if depth >= 1 && depth < len(w.e.stats.WindowDepths) {
		atomic.AddInt64(&w.e.stats.WindowDepths[depth], 1)
	}
	if h := w.e.onStage; h != nil {
		h(si, depth, applying)
	}
}

// beginApply moves one shard from the window into the applying set,
// freeing its credit so the stager can run ahead. It blocks while the
// engine is already running applyCap simultaneous applies, so aggregate
// apply parallelism never exceeds the pool's Threads (an abort lifts
// the wait; the caller then skips the apply and drains).
func (w *sweepWindow) beginApply() {
	w.mu.Lock()
	for !w.aborted && w.applying >= w.applyCap {
		w.cond.Wait()
	}
	w.staged--
	w.applying++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// endApply retires one in-flight apply, which can widen the dynamic
// window bound.
func (w *sweepWindow) endApply() {
	w.mu.Lock()
	w.applying--
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *sweepWindow) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}

// fail records the sweep's first failure and aborts the pipeline; later
// failures (a second domain panicking while the first unwinds) are
// dropped, matching errgroup-style first-error semantics.
func (w *sweepWindow) fail(cause any) {
	w.mu.Lock()
	if !w.aborted {
		w.aborted = true
		w.cause = cause
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// wait blocks until the pipeline has fully drained, then re-raises the
// sweep's failure — if any — on the calling (sweep) goroutine: load
// errors with the engine's panic prefix, operator panics verbatim.
// EdgeMap cannot return an error through api.System, so this is the
// same surfacing the unpipelined path uses.
func (w *sweepWindow) wait() {
	<-w.stagerDone
	w.applyWG.Wait()
	w.mu.Lock()
	cause := w.cause
	w.mu.Unlock()
	switch c := cause.(type) {
	case nil:
	case loadFailure:
		panic(fmt.Sprintf("shard: engine sweep: %v", c.err))
	default:
		panic(c)
	}
}

// stop is the teardown barrier: it aborts whatever is still pending and
// returns only after the staging goroutine, every apply goroutine and
// the aio reader's workers have exited, so no further cache or stats
// mutation happens. Reads still in flight at the abort finish on their
// workers and are discarded unreaped (their tickets die with the
// stager's FIFO); reads still queued resolve ErrClosed without
// executing. It is idempotent and safe after wait.
func (w *sweepWindow) stop() {
	w.mu.Lock()
	w.aborted = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.stagerDone
	w.applyWG.Wait()
	w.reader.Close()
}
