package algorithms

import (
	"math"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Damping is the PageRank damping factor used throughout (the standard
// 0.85).
const Damping = 0.85

// PRResult holds PageRank scores and the iteration count executed.
type PRResult struct {
	Ranks []float64
	Iters int
}

// PR is the simple power-method PageRank of Table II (edge-oriented,
// backward preference), run for a fixed number of iterations (the paper
// uses 10). Every iteration is dense: the full edge set participates.
//
// Dangling vertices (out-degree 0) have their mass redistributed
// uniformly, keeping Σ ranks = 1 so results are comparable with the
// serial oracle.
func PR(sys api.System, iters int) PRResult {
	g := sys.Graph()
	n := g.NumVertices()
	if n == 0 {
		return PRResult{Ranks: nil, Iters: 0}
	}
	ranks := NewF64s(n, 1/float64(n))
	contrib := NewF64s(n, 0) // per-vertex rank[u]/outdeg[u], frozen per iteration
	acc := NewF64s(n, 0)

	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			acc.Add(v, contrib.Get(u))
			return true
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			acc.AtomicAdd(v, contrib.Get(u))
			return true
		},
	}

	all := frontier.All(g)
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			d := g.OutDegree(graph.VID(v))
			r := ranks.Get(graph.VID(v))
			if d == 0 {
				dangling += r
				contrib.Set(graph.VID(v), 0)
			} else {
				contrib.Set(graph.VID(v), r/float64(d))
			}
		}
		acc.Fill(0)
		sys.EdgeMap(all, op, api.DirBackward)
		base := (1-Damping)/float64(n) + Damping*dangling/float64(n)
		sys.VertexMap(all, func(v graph.VID) {
			ranks.Set(v, base+Damping*acc.Get(v))
		})
	}
	return PRResult{Ranks: ranks.Slice(), Iters: iters}
}

// PRDeltaResult holds the converged ranks, the iteration count, and the
// per-iteration active-vertex counts (whose decay produces the paper's
// dense → medium → sparse frontier progression).
type PRDeltaResult struct {
	Ranks        []float64
	Iters        int
	ActiveCounts []int64
}

// PRDeltaEps and PRDeltaEps2 are Ligra's PageRankDelta thresholds: a
// vertex stays active while the magnitude of its rank change exceeds
// Eps2 times its rank; Eps bounds total residual for termination.
const (
	PRDeltaEps  = 1e-9
	PRDeltaEps2 = 0.01
)

// PRDelta is the delta-forwarding PageRank of Table II (edge-oriented,
// forward preference): only vertices whose rank changed materially
// propagate their delta. Early iterations are dense, later ones sparse —
// the workload the paper uses to demonstrate the three frontier classes
// (on Twitter: 8 dense, 3 medium-dense, 22 sparse).
func PRDelta(sys api.System, maxIters int) PRDeltaResult {
	g := sys.Graph()
	n := g.NumVertices()
	if n == 0 {
		return PRDeltaResult{}
	}
	// The rank vector starts at the uniform distribution r₀ = 1/n; each
	// round adds the change delta_k = r_k − r_{k−1}, so the first delta
	// subtracts the starting mass (Ligra's PageRankDelta does the same).
	ranks := NewF64s(n, 1/float64(n))
	delta := NewF64s(n, 1/float64(n)) // mass being forwarded this round
	contrib := NewF64s(n, 0)
	acc := NewF64s(n, 0)

	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			acc.Add(v, contrib.Get(u))
			return true
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			acc.AtomicAdd(v, contrib.Get(u))
			return true
		},
	}

	f := frontier.All(g)
	all := frontier.All(g)
	res := PRDeltaResult{}
	for it := 0; it < maxIters && !f.IsEmpty(); it++ {
		res.ActiveCounts = append(res.ActiveCounts, f.Count())
		// Freeze contributions of the active set, then accumulate fresh.
		// Active dangling vertices (out-degree 0) contribute their delta
		// uniformly, exactly as the power method redistributes dangling
		// mass — without this, star-like graphs leak rank.
		var dangling float64
		for _, u := range f.List() {
			if d := g.OutDegree(u); d > 0 {
				contrib.Set(u, delta.Get(u)/float64(d))
			} else {
				contrib.Set(u, 0)
				dangling += delta.Get(u)
			}
		}
		acc.Fill(0)
		sys.EdgeMap(f, op, api.DirForward)

		// New deltas: δ_k = d·M·δ_{k−1} + d·D/n, where D is the dangling
		// delta mass; round one additionally carries the teleport term
		// r₁ − r₀ = (1−d)/n − 1/n.
		uniform := Damping * dangling / float64(n)
		if it == 0 {
			uniform += (1-Damping)/float64(n) - 1/float64(n)
		}
		sys.VertexMap(all, func(v graph.VID) {
			nd := Damping*acc.Get(v) + uniform
			ranks.Add(v, nd)
			delta.Set(v, nd)
		})
		f = sys.VertexFilter(all, func(v graph.VID) bool {
			d := math.Abs(delta.Get(v))
			return d > PRDeltaEps2*ranks.Get(v) && d > PRDeltaEps
		})
		res.Iters++
	}
	res.Ranks = ranks.Slice()
	return res
}
