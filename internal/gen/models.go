package gen

import (
	"fmt"

	"repro/internal/graph"
)

// Additional random-graph models beyond the Table I substitutes. They
// broaden the test surface (small-world clustering, preferential
// attachment, general Kronecker initiators) and give examples/benches
// more workload shapes to draw on.

// SmallWorld generates a Watts-Strogatz graph: a ring where each vertex
// connects to its k nearest neighbours (k even), with each edge rewired
// to a uniform random endpoint with probability beta. Returned as a
// symmetric directed graph. Low beta keeps the lattice's high diameter;
// beta ≈ 0.1 produces the classic small-world regime.
func SmallWorld(n, k int, beta float64, seed uint64) *graph.Graph {
	if k%2 != 0 || k <= 0 || k >= n {
		panic(fmt.Sprintf("gen: SmallWorld needs even 0 < k < n, got k=%d n=%d", k, n))
	}
	r := newRNG(seed)
	type arc struct{ u, v int }
	arcs := make([]arc, 0, n*k/2)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.float64() < beta {
				// Rewire to a random non-self endpoint.
				v = r.intn(n)
				for v == u {
					v = r.intn(n)
				}
			}
			arcs = append(arcs, arc{u, v})
		}
	}
	edges := make([]graph.Edge, 0, 2*len(arcs))
	for _, a := range arcs {
		edges = append(edges, graph.Edge{Src: graph.VID(a.u), Dst: graph.VID(a.v)})
		edges = append(edges, graph.Edge{Src: graph.VID(a.v), Dst: graph.VID(a.u)})
	}
	return graph.FromEdges(n, edges)
}

// PreferentialAttachment generates a Barabási-Albert graph: vertices
// arrive one at a time and attach m edges to existing vertices chosen
// proportionally to their current degree (implemented with the repeated-
// endpoints trick: sampling a uniform position in the edge list is
// degree-proportional sampling). Returned as a symmetric directed graph.
func PreferentialAttachment(n, m int, seed uint64) *graph.Graph {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("gen: PreferentialAttachment needs 1 <= m < n, got m=%d n=%d", m, n))
	}
	r := newRNG(seed)
	// endpoints records every edge endpoint ever created; sampling a
	// uniform element is degree-proportional.
	endpoints := make([]graph.VID, 0, 2*n*m)
	var edges []graph.Edge
	addEdge := func(u, v graph.VID) {
		edges = append(edges, graph.Edge{Src: u, Dst: v}, graph.Edge{Src: v, Dst: u})
		endpoints = append(endpoints, u, v)
	}
	// Seed clique over the first m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			addEdge(graph.VID(i), graph.VID(j))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[graph.VID]bool{}
		for len(chosen) < m {
			t := endpoints[r.intn(len(endpoints))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			addEdge(graph.VID(v), t)
		}
	}
	return graph.FromEdges(n, edges)
}

// Kronecker generates a stochastic Kronecker graph from a 2×2 initiator
// matrix probabilities (p11, p12, p21, p22 need not sum to 1; they scale
// the expected edge count m = edgeFactor·2^scale like RMAT but without
// per-level noise, so the structure is exactly self-similar).
func Kronecker(scale, edgeFactor int, p [2][2]float64, seed uint64) *graph.Graph {
	n := 1 << scale
	m := n * edgeFactor
	total := p[0][0] + p[0][1] + p[1][0] + p[1][1]
	if total <= 0 {
		panic("gen: Kronecker initiator must have positive mass")
	}
	r := newRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		for level := 0; level < scale; level++ {
			x := r.float64() * total
			switch {
			case x < p[0][0]:
			case x < p[0][0]+p[0][1]:
				v |= 1 << level
			case x < p[0][0]+p[0][1]+p[1][0]:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		edges = append(edges, graph.Edge{Src: graph.VID(u), Dst: graph.VID(v)})
	}
	return graph.FromEdges(n, edges)
}
