package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/shard"
)

// OutOfCoreResult is one algorithm's in-memory vs. out-of-core timing.
type OutOfCoreResult struct {
	Alg       string
	InMemory  float64 // seconds
	OutOfCore float64 // seconds
	Slowdown  float64 // OutOfCore / InMemory
}

// OutOfCore runs a representative algorithm slate on the in-memory
// GG-v2 engine and on the shard.Engine over the same graph, reporting
// the streaming overhead the LRU cache and frontier-aware sweeps are
// meant to bound. dir receives the shard files; shards and threads 0
// select defaults. The returned figure has one X index per algorithm
// (the note lines give the mapping) and one series per engine.
func OutOfCore(g *graph.Graph, dir string, shards, threads, reps int) (*Figure, []OutOfCoreResult, error) {
	if shards <= 0 {
		shards = 16
	}
	inMem := core.NewEngine(g, core.Options{Threads: threads})
	ooc, err := shard.Build(dir, g, shards, shard.Options{Threads: threads})
	if err != nil {
		return nil, nil, err
	}
	runs := []struct {
		alg string
		run func(sys api.System)
	}{
		{"PR", func(sys api.System) { algorithms.PR(sys, 10) }},
		{"BFS", func(sys api.System) { algorithms.BFS(sys, algorithms.SourceVertex(g)) }},
		{"CC", func(sys api.System) { algorithms.CC(sys) }},
		{"SPMV", func(sys api.System) { algorithms.SPMV(sys) }},
	}
	fig := &Figure{
		ID:     "OOC",
		Title:  "in-memory vs. out-of-core engine",
		XLabel: "algorithm#",
		YLabel: "seconds",
		Series: []Series{{Name: "GG-v2"}, {Name: "OOC"}},
	}
	var results []OutOfCoreResult
	for i, r := range runs {
		mem := MedianTime(reps, func() { r.run(inMem) })
		str := MedianTime(reps, func() { r.run(ooc) })
		res := OutOfCoreResult{
			Alg:       r.alg,
			InMemory:  Seconds(mem),
			OutOfCore: Seconds(str),
			Slowdown:  Speedup(str, mem),
		}
		results = append(results, res)
		fig.Series[0].X = append(fig.Series[0].X, float64(i))
		fig.Series[0].Y = append(fig.Series[0].Y, res.InMemory)
		fig.Series[1].X = append(fig.Series[1].X, float64(i))
		fig.Series[1].Y = append(fig.Series[1].Y, res.OutOfCore)
		fig.Notes = append(fig.Notes, fmt.Sprintf("alg %d = %s (%.1fx streaming overhead)", i, r.alg, res.Slowdown))
	}
	st := ooc.Stats()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"OOC engine: %d shards, %d disk loads, %d cache hits, %d shard visits skipped",
		ooc.Store().NumShards(), st.ShardLoads, st.CacheHits, st.ShardsSkipped))
	return fig, results, nil
}
