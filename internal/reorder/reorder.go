// Package reorder implements vertex relabelling strategies. The paper's
// related-work section positions partitioning against locality-aware
// vertex orderings (METIS, Gorder, Rabbit Order); this package provides
// light-weight representatives of that family so the ablation benches
// can compare "reorder the vertices" against "partition the edges" on
// identical substrates:
//
//   - ByDegreeDesc: hub clustering — place high-degree vertices first
//     (the heart of Rabbit Order's first phase and of frequency-based
//     relabelling).
//   - ByBFS: breadth-first order from a root — the classic
//     Cuthill-McKee-style bandwidth reduction for graphs.
//   - Random: a seeded random permutation, the worst-case baseline.
//   - Identity: no-op, for harness symmetry.
//
// Apply relabels a graph under a permutation; the permutation proofs
// (bijectivity, edge conservation) are enforced by tests.
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy names a reordering for harness output.
type Strategy int

const (
	// Identity leaves vertex IDs unchanged.
	Identity Strategy = iota
	// ByDegreeDesc orders vertices by decreasing (in+out) degree.
	ByDegreeDesc
	// ByBFS orders vertices by BFS discovery from the max-degree root;
	// unreached vertices follow in ID order.
	ByBFS
	// Random applies a seeded uniform permutation.
	Random
)

func (s Strategy) String() string {
	switch s {
	case Identity:
		return "identity"
	case ByDegreeDesc:
		return "degree"
	case ByBFS:
		return "bfs"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all reorderings in harness order.
func Strategies() []Strategy { return []Strategy{Identity, ByDegreeDesc, ByBFS, Random} }

// Permutation returns perm where perm[old] = new ID under the strategy.
func Permutation(g *graph.Graph, s Strategy, seed uint64) []graph.VID {
	n := g.NumVertices()
	perm := make([]graph.VID, n)
	switch s {
	case Identity:
		for i := range perm {
			perm[i] = graph.VID(i)
		}
	case ByDegreeDesc:
		order := make([]graph.VID, n)
		for i := range order {
			order[i] = graph.VID(i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			da := g.OutDegree(order[a]) + g.InDegree(order[a])
			db := g.OutDegree(order[b]) + g.InDegree(order[b])
			return da > db
		})
		for newID, old := range order {
			perm[old] = graph.VID(newID)
		}
	case ByBFS:
		root := maxDegreeVertex(g)
		visited := make([]bool, n)
		queue := []graph.VID{root}
		visited[root] = true
		next := graph.VID(0)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			perm[u] = next
			next++
			for _, v := range g.OutNeighbors(u) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
			for _, v := range g.InNeighbors(u) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			if !visited[v] {
				perm[v] = next
				next++
			}
		}
	case Random:
		for i := range perm {
			perm[i] = graph.VID(i)
		}
		// Fisher-Yates with the shared deterministic mixer.
		state := seed
		for i := n - 1; i > 0; i-- {
			state = graph.Mix64(state + uint64(i))
			j := int(state % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
	default:
		panic(fmt.Sprintf("reorder: unknown strategy %v", s))
	}
	return perm
}

func maxDegreeVertex(g *graph.Graph) graph.VID {
	var best graph.VID
	var bestDeg int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VID(v)) + g.InDegree(graph.VID(v)); d > bestDeg {
			bestDeg, best = d, graph.VID(v)
		}
	}
	return best
}

// Apply relabels g under perm (perm[old] = new) and returns the new
// graph. Panics if perm is not a bijection on [0,n) — that is a
// programming error, not input.
func Apply(g *graph.Graph, perm []graph.VID) *graph.Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic(fmt.Sprintf("reorder: permutation length %d, graph has %d vertices", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			panic("reorder: not a bijection")
		}
		seen[p] = true
	}
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for _, d := range g.OutNeighbors(graph.VID(v)) {
			edges = append(edges, graph.Edge{Src: perm[v], Dst: perm[d]})
		}
	}
	return graph.FromEdges(n, edges)
}

// Bandwidth returns the mean |src−dst| gap over all edges — the metric
// BFS/RCM-style orderings minimise; lower means endpoints live closer
// in the vertex arrays.
func Bandwidth(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.OutNeighbors(graph.VID(v)) {
			gap := int64(v) - int64(d)
			if gap < 0 {
				gap = -gap
			}
			sum += float64(gap)
		}
	}
	return sum / float64(g.NumEdges())
}
