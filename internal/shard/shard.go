// Package shard provides GraphChi-style out-of-core processing — the
// system the paper's partitioning-by-destination originates from (§II.B
// cites GraphChi's scheme; out-of-core engines "determine the
// partitioning factor such that individual partitions fit in core
// memory").
//
// The package has two layers. Store is the storage substrate: a graph's
// partitioned COO is written to one file per shard, and iteration
// streams shards from disk so resident edge data is bounded by a single
// shard regardless of |E|. Two on-disk encodings coexist (see Format):
// the legacy raw uint32 pairs (v1) and the default delta+uvarint
// compressed layout (v2), which cuts the bytes every dense sweep
// re-reads from disk to a fraction of the raw size. Decoding is
// defensive end to end — manifests and shard files are validated
// structurally (magic, bounds, alignment, edge-count/file-size
// agreement, varint ranges) before anything is allocated or trusted, so
// corrupt or hostile directories surface as errors, never panics.
//
// Engine builds a full api.System on top of the Store, so every
// algorithm written against the engine-neutral API runs unmodified out
// of core. Each EdgeMap is a pipelined sweep in four stages:
//
//	plan     — pick the shard set: exact (walk only the active
//	           vertices' out-lists) for sparse frontiers, source-range
//	           summary pruning for dense ones; then order it by the
//	           configured sweep-order policy (Options.Order — ascending,
//	           zigzag or residency-first), which keeps the LRU tail of
//	           one sweep alive into the next without changing results;
//	prefetch — a dedicated staging goroutine keeps up to Window shards
//	           staged ahead while earlier shards are being applied:
//	           cached shards are promoted from the LRU, uncached ones
//	           are read through the internal/aio reader with up to
//	           IODepth reads in flight at once, reaped strictly in plan
//	           order (IODepth = 1, Window = 1 is the original strict
//	           double buffer);
//	apply    — the resident shard is applied in parallel over 64-aligned
//	           destination sub-ranges by the workers of the modelled
//	           NUMA domain that owns the shard's destination range
//	           (round-robin shard→domain placement, Polymer-style), so
//	           updates are partition-exclusive and need no atomics;
//	publish  — the next frontier and its statistics are assembled once,
//	           after the last shard.
//
// The same partitioning invariant as in-memory processing holds: a
// shard holds all in-edges of its vertex range, so updates from a shard
// sweep are confined to that range — which is also why the per-domain
// placement makes every next-array update domain-local by construction
// (locality.MeasureNUMATraffic quantifies this).
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/partition"
)

// manifest is the on-disk index of a sharded graph.
type manifest struct {
	Magic    string      `json:"magic"`
	Vertices int         `json:"vertices"`
	Edges    int64       `json:"edges"`
	Shards   int         `json:"shards"`
	Bounds   []graph.VID `json:"bounds"`
	// EdgeCounts is the *live* per-shard edge count — base file plus
	// pending deltas merged — and always sums to Edges. For a store
	// with no deltas it equals the base files' counts.
	EdgeCounts []int64 `json:"edge_counts"`
	// SrcSummary[i] is a bitset over the P destination ranges: bit j is
	// set iff shard i contains an edge whose source lies in range j. The
	// engine's frontier-aware sweep intersects it with the frontier's
	// active ranges to skip shards. Optional: stores written before the
	// field existed compute it lazily with one streaming pass. For
	// mutated stores it describes the live (merged) content exactly —
	// ApplyBatch recomputes and persists it per affected shard.
	SrcSummary [][]uint64 `json:"src_summary,omitempty"`

	// The log-structured delta layer (delta.go, compact.go). All five
	// fields are optional: stores written before the layer existed
	// carry none of them and read as generation 0 with no deltas.
	//
	// Generation counts manifest swaps — ApplyBatch and Compact each
	// bump it once. BaseFiles names each shard's base file (nil → the
	// legacy shard-%04d.bin names; compaction re-points entries at
	// generation-suffixed files and never overwrites a live one).
	// BaseEdgeCounts is the edge count stored in each base *file*
	// (nil → EdgeCounts: no deltas were ever applied, so file and live
	// counts agree). Deltas lists each shard's pending delta files
	// oldest-first. DirtyGen records the generation at which a shard's
	// sweep inputs last changed — its edge content, or the out-degree
	// of a source feeding it — the seed incremental re-convergence
	// starts from (Store.DirtyShards).
	Generation     int64        `json:"generation,omitempty"`
	BaseFiles      []string     `json:"base_files,omitempty"`
	BaseEdgeCounts []int64      `json:"base_edge_counts,omitempty"`
	Deltas         [][]deltaRef `json:"deltas,omitempty"`
	DirtyGen       []int64      `json:"dirty_gen,omitempty"`
}

// The manifest magic doubles as the store's format declaration: v1
// stores hold raw uint32-pair shard files, v2 stores hold the
// (dst,src)-sorted delta+uvarint files (see Format).
const (
	manifestMagicV1 = "ggrind-shards-v1"
	manifestMagicV2 = "ggrind-shards-v2"
)

// Store is an opened sharded graph directory.
type Store struct {
	dir    string
	format Format
	m      manifest
}

// DefaultPartitions is the shard count Create selects when
// WriteOptions.Partitions is zero.
const DefaultPartitions = 16

// WriteOptions parameterizes Create, validating like engine Options
// do: nonsense values are rejected with a typed *OptionsError at
// construction time, zero values select documented defaults.
type WriteOptions struct {
	// Partitions is the destination-range shard count; 0 selects
	// DefaultPartitions.
	Partitions int
	// Format is the shard-file encoding; 0 selects DefaultFormat.
	Format Format
}

// normalize validates wo and resolves its defaults.
func (wo WriteOptions) normalize() (WriteOptions, error) {
	if wo.Partitions < 0 {
		return wo, &OptionsError{"Partitions", int64(wo.Partitions), "must be >= 0 (0 selects DefaultPartitions)"}
	}
	if wo.Partitions == 0 {
		wo.Partitions = DefaultPartitions
	}
	if wo.Format == 0 {
		wo.Format = DefaultFormat
	}
	if !wo.Format.valid() {
		return wo, &OptionsError{"Format", int64(wo.Format), "unknown shard-file format (have v1, v2)"}
	}
	return wo, nil
}

// Create shards g into dir (created if needed), partitioned by
// destination, and returns the opened store at generation 0. It is
// the one writer entry point: the batch-mutation (ApplyBatch) and
// compaction (Compact) surfaces hang off the Store it returns.
func Create(dir string, g *graph.Graph, wo WriteOptions) (*Store, error) {
	wo, err := wo.normalize()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A rebuild restarts at generation 0 with new content: leftover bin
	// spill files from an earlier store in this directory would carry
	// the same generation suffix and must never replay against the new
	// shards.
	removeStaleSpills(dir)
	pt := partition.ByDestination(g, wo.Partitions, partition.BalanceEdges)
	pcoo := partition.NewPCOO(g, pt)
	m := manifest{
		Magic:    wo.Format.manifestMagic(),
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Shards:   pt.P,
		Bounds:   pt.Bounds,
	}
	for i, part := range pcoo.Parts {
		m.EdgeCounts = append(m.EdgeCounts, part.NumEdges())
		summary := make([]uint64, summaryWords(pt.P))
		for _, u := range part.Src {
			j := pt.Home(u)
			summary[j/64] |= 1 << (j % 64)
		}
		m.SrcSummary = append(m.SrcSummary, summary)
		if err := writeShardFile(shardPath(dir, i), part, wo.Format); err != nil {
			return nil, err
		}
	}
	// The manifest is written last, atomically, and the directory is
	// synced after it (writeManifest): the manifest names only shard
	// files that are already durable, so a crash anywhere in the
	// conversion leaves a directory that opens as the previous complete
	// store (or fails Open's validation with a typed error), never one
	// that silently decodes torn data.
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	return &Store{dir: dir, format: wo.Format, m: m}, nil
}

// Write shards g into dir with p partitions in the default format.
//
// Deprecated: use Create(dir, g, WriteOptions{Partitions: p}).
func Write(dir string, g *graph.Graph, p int) (*Store, error) {
	return Create(dir, g, WriteOptions{Partitions: p})
}

// WriteFormat is Write with an explicit shard-file format.
//
// Deprecated: use Create(dir, g, WriteOptions{Partitions: p, Format: format}).
func WriteFormat(dir string, g *graph.Graph, p int, format Format) (*Store, error) {
	return Create(dir, g, WriteOptions{Partitions: p, Format: format})
}

// Open loads an existing sharded graph directory.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %v", err)
	}
	var format Format
	switch m.Magic {
	case manifestMagicV1:
		format = FormatV1
	case manifestMagicV2:
		format = FormatV2
	default:
		return nil, fmt.Errorf("shard: bad magic %q", m.Magic)
	}
	if m.Shards != len(m.EdgeCounts) || len(m.Bounds) != m.Shards+1 {
		return nil, fmt.Errorf("shard: inconsistent manifest")
	}
	if m.Vertices < 0 || m.Edges < 0 {
		return nil, fmt.Errorf("shard: negative sizes in manifest (%d vertices, %d edges)", m.Vertices, m.Edges)
	}
	if m.Bounds[0] != 0 || int(m.Bounds[m.Shards]) != m.Vertices {
		return nil, fmt.Errorf("shard: bounds span [%d,%d], want [0,%d]", m.Bounds[0], m.Bounds[m.Shards], m.Vertices)
	}
	var edgeSum int64
	for i := 0; i < m.Shards; i++ {
		if m.Bounds[i] > m.Bounds[i+1] {
			return nil, fmt.Errorf("shard: bounds not monotone at %d", i)
		}
		// Interior bounds must be BoundaryAlign-aligned (or the exhausted
		// tail |V|): the engine's non-atomic parallel apply relies on
		// ranges never sharing a frontier-bitmap word, so a foreign store
		// violating it would corrupt frontiers silently.
		if i > 0 && int(m.Bounds[i])%partition.BoundaryAlign != 0 && int(m.Bounds[i]) != m.Vertices {
			return nil, fmt.Errorf("shard: bound %d (%d) not aligned to %d vertices", i, m.Bounds[i], partition.BoundaryAlign)
		}
		if m.EdgeCounts[i] < 0 {
			return nil, fmt.Errorf("shard: negative edge count for shard %d", i)
		}
		edgeSum += m.EdgeCounts[i]
	}
	if edgeSum != m.Edges {
		return nil, fmt.Errorf("shard: edge counts sum to %d, manifest says %d", edgeSum, m.Edges)
	}
	if m.SrcSummary != nil {
		if len(m.SrcSummary) != m.Shards {
			return nil, fmt.Errorf("shard: source summary covers %d shards, want %d", len(m.SrcSummary), m.Shards)
		}
		for i, s := range m.SrcSummary {
			if len(s) != summaryWords(m.Shards) {
				return nil, fmt.Errorf("shard: source summary %d has %d words, want %d", i, len(s), summaryWords(m.Shards))
			}
		}
	}
	if err := validateDeltaLayer(&m); err != nil {
		return nil, err
	}
	return &Store{dir: dir, format: format, m: m}, nil
}

// validateDeltaLayer structurally checks the optional log-structured
// fields before anything is read through them: lengths must match the
// shard count, file names must be plain names inside the store
// directory (a hostile manifest must not reach outside it), counts and
// generations must be in range. Byte-level agreement — delta counts vs
// file contents, merged counts vs EdgeCounts — is enforced again at
// read time per file.
func validateDeltaLayer(m *manifest) error {
	if m.Generation < 0 {
		return fmt.Errorf("shard: negative generation %d", m.Generation)
	}
	if m.BaseFiles != nil && len(m.BaseFiles) != m.Shards {
		return fmt.Errorf("shard: base files cover %d shards, want %d", len(m.BaseFiles), m.Shards)
	}
	for i, name := range m.BaseFiles {
		if !validStoreFileName(name) {
			return fmt.Errorf("shard: bad base file name %q for shard %d", name, i)
		}
	}
	if m.BaseEdgeCounts != nil && len(m.BaseEdgeCounts) != m.Shards {
		return fmt.Errorf("shard: base edge counts cover %d shards, want %d", len(m.BaseEdgeCounts), m.Shards)
	}
	for i, c := range m.BaseEdgeCounts {
		if c < 0 {
			return fmt.Errorf("shard: negative base edge count for shard %d", i)
		}
	}
	if m.Deltas != nil && len(m.Deltas) != m.Shards {
		return fmt.Errorf("shard: delta lists cover %d shards, want %d", len(m.Deltas), m.Shards)
	}
	for i, refs := range m.Deltas {
		prevGen := int64(0)
		for _, ref := range refs {
			if !validStoreFileName(ref.File) {
				return fmt.Errorf("shard: bad delta file name %q for shard %d", ref.File, i)
			}
			if ref.Gen <= prevGen || ref.Gen > m.Generation {
				return fmt.Errorf("shard: delta generation %d for shard %d outside (%d,%d]", ref.Gen, i, prevGen, m.Generation)
			}
			if ref.Ins < 0 || ref.Del < 0 || ref.Ins > maxDeltaEdges || ref.Del > maxDeltaEdges {
				return fmt.Errorf("shard: delta %s declares %d inserts / %d tombstones", ref.File, ref.Ins, ref.Del)
			}
			prevGen = ref.Gen
		}
	}
	if m.DirtyGen != nil && len(m.DirtyGen) != m.Shards {
		return fmt.Errorf("shard: dirty generations cover %d shards, want %d", len(m.DirtyGen), m.Shards)
	}
	for i, g := range m.DirtyGen {
		if g < 0 || g > m.Generation {
			return fmt.Errorf("shard: dirty generation %d for shard %d outside [0,%d]", g, i, m.Generation)
		}
	}
	return nil
}

// validStoreFileName accepts only plain file names — no separators, no
// dot-dot, nothing that could step outside the store directory.
func validStoreFileName(name string) bool {
	return name != "" && name != "." && name != ".." && name == filepath.Base(name)
}

// Format returns the store's shard-file encoding (declared by the
// manifest magic).
func (s *Store) Format() Format { return s.format }

// DiskBytes returns the total on-disk size of the store's live shard
// files — base files plus pending deltas; the manifest and files
// orphaned by compaction excluded, so the figure divides by |E| into a
// clean bytes-per-edge.
func (s *Store) DiskBytes() (int64, error) {
	var total int64
	for i := 0; i < s.m.Shards; i++ {
		fi, err := os.Stat(s.basePath(i))
		if err != nil {
			return 0, err
		}
		total += fi.Size()
		for _, ref := range s.deltas(i) {
			fi, err := os.Stat(filepath.Join(s.dir, ref.File))
			if err != nil {
				return 0, err
			}
			total += fi.Size()
		}
	}
	return total, nil
}

// NumVertices returns |V|.
func (s *Store) NumVertices() int { return s.m.Vertices }

// NumEdges returns |E|.
func (s *Store) NumEdges() int64 { return s.m.Edges }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return s.m.Shards }

// Range returns shard i's destination vertex range.
func (s *Store) Range(i int) (lo, hi graph.VID) { return s.m.Bounds[i], s.m.Bounds[i+1] }

// Home returns the shard whose destination range contains v.
func (s *Store) Home(v graph.VID) int {
	pt := partition.Partitioning{P: s.m.Shards, Bounds: s.m.Bounds}
	return pt.Home(v)
}

func summaryWords(p int) int { return (p + 63) / 64 }

// SourceSummary returns, per shard, the bitset of destination ranges
// that contain at least one of the shard's edge sources. Stores written
// by this version persist it in the manifest; older directories are
// summarised with one streaming pass, cached for the Store's lifetime.
func (s *Store) SourceSummary() ([][]uint64, error) {
	if s.m.SrcSummary != nil {
		return s.m.SrcSummary, nil
	}
	summary := make([][]uint64, s.m.Shards)
	for i := range summary {
		summary[i] = make([]uint64, summaryWords(s.m.Shards))
		c, err := s.LoadShard(i)
		if err != nil {
			return nil, err
		}
		for _, u := range c.Src {
			j := s.Home(u)
			summary[i][j/64] |= 1 << (j % 64)
		}
	}
	s.m.SrcSummary = summary
	return summary, nil
}

// LoadShard reads shard i's edges from disk, validating that every
// source is a vertex and every destination falls inside the shard's
// range (the invariant the engine's partition-exclusive apply assumes);
// out-of-range IDs surface as *VIDRangeError.
func (s *Store) LoadShard(i int) (*graph.COO, error) {
	c, _, err := s.loadShard(i)
	return c, err
}

// loadShard is LoadShard plus the on-disk byte count of the decoded
// file(s) — the engine's BytesRead accounting. A shard with pending
// deltas decodes its base file and merges the delta files in
// (mergeDeltas); a shard without any returns the base COO untouched,
// preserving the legacy file order (v1 stores stream in CSR order).
func (s *Store) loadShard(i int) (*graph.COO, int64, error) {
	if i < 0 || i >= s.m.Shards {
		return nil, 0, fmt.Errorf("shard: index %d out of range", i)
	}
	c, size, err := readShardFile(s.basePath(i), s.format, s.m.Vertices, s.m.Bounds[i], s.m.Bounds[i+1], s.baseEdgeCount(i))
	if err != nil || len(s.deltas(i)) == 0 {
		return c, size, err
	}
	return s.mergeDeltas(i, c, size)
}

// basePath returns shard i's base file path — the legacy fixed name
// unless compaction re-pointed the manifest at a generation-suffixed
// file.
func (s *Store) basePath(i int) string {
	if s.m.BaseFiles != nil {
		return filepath.Join(s.dir, s.m.BaseFiles[i])
	}
	return shardPath(s.dir, i)
}

// baseEdgeCount returns the edge count stored in shard i's base file
// (EdgeCounts holds the live merged count once deltas exist).
func (s *Store) baseEdgeCount(i int) int64 {
	if s.m.BaseEdgeCounts != nil {
		return s.m.BaseEdgeCounts[i]
	}
	return s.m.EdgeCounts[i]
}

// deltas returns shard i's pending delta refs, oldest first.
func (s *Store) deltas(i int) []deltaRef {
	if s.m.Deltas == nil {
		return nil
	}
	return s.m.Deltas[i]
}

// Sweep streams every shard once, in order, calling fn for each edge.
// Only one shard is resident at a time.
func (s *Store) Sweep(fn func(u, v graph.VID)) error {
	for i := 0; i < s.m.Shards; i++ {
		c, err := s.LoadShard(i)
		if err != nil {
			return err
		}
		for e := range c.Src {
			fn(c.Src[e], c.Dst[e])
		}
	}
	return nil
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.bin", i))
}

// OutDegrees extracts the per-vertex out-degree from the shards in one
// pass (needed when the in-memory graph is gone).
func (s *Store) OutDegrees() ([]int64, error) {
	deg := make([]int64, s.NumVertices())
	err := s.Sweep(func(u, _ graph.VID) { deg[u]++ })
	return deg, err
}
