package core

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/sched"
)

// sparseCSR is the sparse-frontier path (§III.A.1): a forward traversal
// of the *unpartitioned* CSR over only the active vertices. There is too
// little work to benefit from partition locality, so the whole-graph
// index is used. Destinations may be hit by several workers, so the
// atomic update runs and the next frontier is claimed with test-and-set.
func (e *Engine) sparseCSR(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	active := f.List()
	next := frontier.NewBitmap(g.NumVertices())

	type out struct {
		verts  []graph.VID
		outDeg int64
		_      [7]int64
	}
	outs := make([]out, e.pool.Threads())
	// Chunk small: sparse lists are short but degrees are skewed.
	e.pool.ParallelForChunks(len(active), 16, func(w, lo, hi int) {
		o := &outs[w]
		for i := lo; i < hi; i++ {
			u := active[i]
			for _, v := range g.OutNeighbors(u) {
				if cond(v) && op.UpdateAtomic(u, v) && next.TestAndSet(v) {
					o.verts = append(o.verts, v)
					o.outDeg += g.OutDegree(v)
				}
			}
		}
	})
	var total int
	var outDeg int64
	for i := range outs {
		total += len(outs[i].verts)
		outDeg += outs[i].outDeg
	}
	merged := make([]graph.VID, 0, total)
	for i := range outs {
		merged = append(merged, outs[i].verts...)
	}
	nf := frontier.FromList(g.NumVertices(), merged)
	nf.SetStats(int64(total), outDeg)
	return nf
}

// backwardCSC is the medium-dense path (§III.A.3): a backward traversal
// of the *whole-graph* CSC, parallelised over the partitioning's vertex
// ranges ("partitioned computation chunk"). Partitioning-by-destination
// leaves CSC edge order unchanged, so the unpartitioned layout is used;
// each range is owned by one worker, so updates need no atomics, and a
// destination whose Cond turns false is abandoned early (direction-
// optimising early exit).
func (e *Engine) backwardCSC(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	accs := e.newAccums()

	e.pool.ParallelTasks(e.pt.P, func(task, worker int) {
		lo, hi := e.pt.Range(task)
		a := &accs[worker]
		for v := lo; v < hi; v++ {
			if !cond(v) {
				continue
			}
			added := false
			for _, u := range g.InNeighbors(v) {
				if !cur.Get(u) {
					continue
				}
				if op.Update(u, v) {
					if !added {
						next.Set(v)
						a.count++
						a.outDeg += g.OutDegree(v)
						added = true
					}
					if !cond(v) {
						break // destination saturated (e.g. BFS parent set)
					}
				}
			}
		}
	})
	return finishFrontier(g.NumVertices(), next, accs)
}

// denseCOO is the dense-frontier path (§III.A.2): traversal of the
// partitioned COO. In the paper's configuration each partition is
// processed sequentially by one worker — update sets are disjoint by
// partitioning-by-destination, so no atomics are needed ("COO + na").
// With Options.ForceAtomics the partitions are instead split into edge
// chunks processed by any worker using atomic updates ("COO + a"),
// reproducing the 6.1%–23.7% atomics penalty.
func (e *Engine) denseCOO(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	if e.opts.ForceAtomics {
		return e.denseCOOAtomic(f, op)
	}
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	accs := e.newAccums()

	e.pool.ParallelTasks(len(e.pcoo.Parts), func(task, worker int) {
		part := e.pcoo.Parts[task]
		a := &accs[worker]
		src, dst := part.Src, part.Dst
		for i := range src {
			u, v := src[i], dst[i]
			if !cur.Get(u) || !cond(v) {
				continue
			}
			if op.Update(u, v) && !next.Get(v) {
				next.Set(v)
				a.count++
				a.outDeg += g.OutDegree(v)
			}
		}
	})
	return finishFrontier(g.NumVertices(), next, accs)
}

// denseCOOAtomic is the "+a" variant: edge chunks are self-scheduled
// across workers regardless of partition ownership, so updates go through
// UpdateAtomic and next-frontier membership through test-and-set. All
// partitions are covered by a single task pool (one barrier per EdgeMap,
// like the "+na" path) so the measured difference is the atomics cost,
// not scheduling overhead.
func (e *Engine) denseCOOAtomic(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	accs := e.newAccums()

	chunks := e.cooChunks()
	e.pool.ParallelTasks(len(chunks), func(task, worker int) {
		c := chunks[task]
		part := e.pcoo.Parts[c.part]
		src, dst := part.Src[c.lo:c.hi], part.Dst[c.lo:c.hi]
		a := &accs[worker]
		for i := range src {
			u, v := src[i], dst[i]
			if !cur.Get(u) || !cond(v) {
				continue
			}
			if op.UpdateAtomic(u, v) && next.TestAndSet(v) {
				a.count++
				a.outDeg += g.OutDegree(v)
			}
		}
	})
	return finishFrontier(g.NumVertices(), next, accs)
}

// edgeChunk addresses a contiguous run of one COO partition's edges.
type edgeChunk struct {
	part   int
	lo, hi int
}

// cooChunks lazily splits every COO partition into ~4K-edge chunks for
// the atomics-forced traversal; computed once per engine.
func (e *Engine) cooChunks() []edgeChunk {
	e.chunksOnce.Do(func() {
		const grain = 4 * sched.DefaultChunk
		for p, part := range e.pcoo.Parts {
			n := len(part.Src)
			for lo := 0; lo < n; lo += grain {
				hi := lo + grain
				if hi > n {
					hi = n
				}
				e.chunks = append(e.chunks, edgeChunk{part: p, lo: lo, hi: hi})
			}
		}
	})
	return e.chunks
}

// denseCSR is the forced partitioned-CSR forward traversal ("CSR + a",
// Figures 5/6). The layout is partitioned by destination, but traversal
// parallelism is over the replicated source vertices inside each
// partition, so several workers can update one destination: atomics are
// unavoidable (§IV.A). The work increase with P comes from visiting each
// source once per partition it is replicated in (§II.F).
func (e *Engine) denseCSR(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	accs := e.newAccums()

	chunks := e.csrChunks()
	e.pool.ParallelTasks(len(chunks), func(task, worker int) {
		c := chunks[task]
		part := e.pcsr.Parts[c.part]
		a := &accs[worker]
		for k := c.lo; k < c.hi; k++ {
			u := part.Verts[k]
			if !cur.Get(u) {
				continue
			}
			for _, v := range part.Dst[part.Off[k]:part.Off[k+1]] {
				if cond(v) && op.UpdateAtomic(u, v) && next.TestAndSet(v) {
					a.count++
					a.outDeg += g.OutDegree(v)
				}
			}
		}
	})
	return finishFrontier(g.NumVertices(), next, accs)
}

// csrChunks splits each CSR partition's replicated vertex list into
// fixed-size runs; computed once per engine.
func (e *Engine) csrChunks() []edgeChunk {
	e.csrChunksOnce.Do(func() {
		for p, part := range e.pcsr.Parts {
			n := len(part.Verts)
			for lo := 0; lo < n; lo += sched.DefaultChunk {
				hi := lo + sched.DefaultChunk
				if hi > n {
					hi = n
				}
				e.csrChunksV = append(e.csrChunksV, edgeChunk{part: p, lo: lo, hi: hi})
			}
		}
	})
	return e.csrChunksV
}
