package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID: "T", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{30, 40}},
		},
		Notes: []string{"hello"},
	}
	out := f.Render()
	for _, want := range []string{"== T: test ==", "a", "b", "note: hello", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// X=1 has no value for series b → a dash.
	if !strings.Contains(out, "-") {
		t.Fatal("missing placeholder for absent point")
	}
}

func TestMedianTime(t *testing.T) {
	d := MedianTime(3, func() { time.Sleep(time.Millisecond) })
	if d < 500*time.Microsecond || d > 100*time.Millisecond {
		t.Fatalf("median %v implausible", d)
	}
	if MedianTime(0, func() {}) < 0 {
		t.Fatal("zero reps mishandled")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2*time.Second, time.Second) != 2 {
		t.Fatal("speedup math")
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero division")
	}
}

func TestBuildSystemNames(t *testing.T) {
	g := gen.TinySocial()
	for _, name := range SystemNames() {
		sys := BuildSystem(name, g, 16, 1)
		if sys.Graph() != g {
			t.Fatalf("%s: wrong graph", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown system should panic")
		}
	}()
	BuildSystem("nope", g, 1, 1)
}

func TestTables(t *testing.T) {
	t2 := Table2()
	for _, code := range []string{"BC", "CC", "PR", "BFS", "PRDelta", "SPMV", "BF", "BP"} {
		if !strings.Contains(t2, code) {
			t.Fatalf("Table II missing %s", code)
		}
	}
}

func TestFig2ShowsContraction(t *testing.T) {
	g := gen.TinySocial()
	fig := Fig2(g, []int{1, 16})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// P=16's histogram must end at a lower bucket than P=1's.
	if len(fig.Series[1].X) >= len(fig.Series[0].X) {
		t.Fatalf("P=16 histogram (%d buckets) not narrower than P=1 (%d)",
			len(fig.Series[1].X), len(fig.Series[0].X))
	}
}

func TestFig3Monotone(t *testing.T) {
	graphs := map[string]*graph.Graph{"tiny": gen.TinySocial()}
	fig := Fig3(graphs, []int{2, 8, 32})
	ys := fig.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i]+1e-9 < ys[i-1] {
			t.Fatalf("replication not monotone: %v", ys)
		}
	}
}

func TestFig4COOFlat(t *testing.T) {
	g := gen.TinySocial()
	fig := Fig4("tiny", g, []int{4, 64})
	for _, s := range fig.Series {
		if s.Name == "COO" && s.Y[0] != s.Y[1] {
			t.Fatalf("COO storage not flat: %v", s.Y)
		}
		if s.Name == "CSR" && s.Y[1] <= s.Y[0] {
			t.Fatalf("CSR storage not growing: %v", s.Y)
		}
	}
}

func TestFig5SmokeAndShape(t *testing.T) {
	g := gen.TinySocial()
	figs := Fig5("tiny", g, []string{"PR", "BFS"}, []int{4, 16}, 1, 2)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for code, fig := range figs {
		if len(fig.Series) != 4 {
			t.Fatalf("%s: want 4 layout series, got %d", code, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Y) != 2 {
				t.Fatalf("%s/%s: %d points", code, s.Name, len(s.Y))
			}
			for _, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s/%s: non-positive time", code, s.Name)
				}
			}
		}
	}
}

func TestFig7SourceNormalisedToOne(t *testing.T) {
	g := gen.TinySocial()
	fig := Fig7("tiny", g, []string{"PR"}, 16, 1, 2)
	for _, s := range fig.Series {
		if s.Name == "source" {
			if s.Y[0] != 1.0 {
				t.Fatalf("source series should be exactly 1.0, got %v", s.Y[0])
			}
		}
	}
}

func TestFig8SeriesComplete(t *testing.T) {
	g := gen.TinySocial()
	fig := Fig8("tiny", g, []int{4, 16})
	if len(fig.Series) != 3 {
		t.Fatalf("want PR/BF/BFS series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s: MPKI %v", s.Name, y)
			}
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	g := gen.TinySocial()
	fig := Fig9("tiny", g, []string{"BFS", "SPMV"}, 16, 1, 2)
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 systems, got %d", len(fig.Series))
	}
}

func TestFig10Smoke(t *testing.T) {
	g := gen.TinySocial()
	fig := Fig10("tiny", g, []int{1, 2}, 16, 1)
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("%s: %d points", s.Name, len(s.Y))
		}
	}
}

func TestAtomicsAblationSmoke(t *testing.T) {
	g := gen.TinySocial()
	fig := AtomicsAblation("tiny", g, []string{"PR"}, 16, 1, 2)
	if len(fig.Series) != 2 || len(fig.Notes) != 1 {
		t.Fatalf("unexpected shape: %d series, %d notes", len(fig.Series), len(fig.Notes))
	}
}

func TestPartitionSweepIsMultiplesOf4(t *testing.T) {
	for _, p := range PartitionSweep() {
		if p%4 != 0 {
			t.Fatalf("sweep value %d not a multiple of 4", p)
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		ID: "T", XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2}, Y: []float64{30}},
		},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "x,a,b\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1,10,\n") {
		t.Fatalf("missing empty cell for absent point: %q", out)
	}
	if !strings.Contains(out, "2,20,30\n") {
		t.Fatalf("missing full row: %q", out)
	}
}

func TestSpeedupSummary(t *testing.T) {
	fig := &Figure{
		Series: []Series{
			{Name: "L", X: []float64{0, 1}, Y: []float64{2, 4}},
			{Name: "GG-v2", X: []float64{0, 1}, Y: []float64{1, 2}},
		},
	}
	out := SpeedupSummary(fig)
	if !strings.Contains(out, "vs L") || !strings.Contains(out, "2.00") {
		t.Fatalf("summary wrong: %q", out)
	}
	if SpeedupSummary(&Figure{}) != "" {
		t.Fatal("missing GG-v2 should yield empty summary")
	}
}
