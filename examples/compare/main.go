// Compare example: run the same algorithm on all four systems (Ligra,
// Polymer, GraphGrind-v1, GraphGrind-v2) over the same graph — the
// Figure 9 experiment in miniature — and verify the engines agree on the
// result while differing in speed.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	g := repro.Preset("orkut-sm")
	fmt.Printf("graph: orkut-sm, %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	systems := []struct {
		name string
		sys  repro.System
	}{
		{"Ligra", repro.NewLigra(g, 0)},
		{"Polymer", repro.NewPolymer(g, 0)},
		{"GG-v1", repro.NewGGv1(g, 0)},
		{"GG-v2", repro.NewEngine(g, repro.Options{Partitions: 384})},
	}

	var reference []int32
	fmt.Println("\nconnected components (label propagation):")
	for _, s := range systems {
		best := time.Duration(0)
		var labels []int32
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			labels = repro.ConnectedComponents(s.sys)
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		comps := map[int32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		fmt.Printf("  %-8s %10v  (%d components)\n", s.name, best, len(comps))
		if reference == nil {
			reference = labels
		} else {
			for v := range labels {
				if labels[v] != reference[v] {
					panic(fmt.Sprintf("engines disagree at vertex %d", v))
				}
			}
		}
	}
	fmt.Println("all engines agree on every label ✓")
}
