package locality

// Hierarchy chains cache levels into an inclusive L2→LLC model: an
// access first probes L2; on an L2 miss it probes the LLC. Per-level
// miss counters let experiments separate "fits in L2" from "fits in
// LLC" effects — the two inflection points a partition-count sweep
// crosses as per-partition working sets shrink.
type Hierarchy struct {
	levels []*Cache
	names  []string
}

// NewHierarchy builds a hierarchy from inner (fastest, probed first) to
// outer. Panics on empty configuration.
func NewHierarchy(levels ...LevelConfig) *Hierarchy {
	if len(levels) == 0 {
		panic("locality: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	for _, l := range levels {
		h.levels = append(h.levels, NewCache(l.Config))
		h.names = append(h.names, l.Name)
	}
	return h
}

// LevelConfig names one level of a hierarchy.
type LevelConfig struct {
	Name   string
	Config CacheConfig
}

// TypicalHierarchy models a per-core L2 in front of a shared LLC slice
// sized by AdaptiveLLC for the graph; the L2 is kept at 1/8 of the LLC
// so the hierarchy stays properly nested even for small graphs.
func TypicalHierarchy(numVertices int) *Hierarchy {
	llc := AdaptiveLLC(numVertices)
	l2 := CacheConfig{SizeBytes: llc.SizeBytes / 8, LineBytes: 64, Assoc: 8}
	if l2.SizeBytes < 4<<10 {
		l2.SizeBytes = 4 << 10
	}
	return NewHierarchy(
		LevelConfig{Name: "L2", Config: l2},
		LevelConfig{Name: "LLC", Config: llc},
	)
}

// Access probes levels inner→outer, stopping at the first hit; deeper
// levels are only consulted (and filled) on a miss, making the model
// inclusive on the access path.
func (h *Hierarchy) Access(addr uint64) {
	for _, c := range h.levels {
		if c.Access(addr) {
			return
		}
	}
}

// LevelStats describes one level's counters.
type LevelStats struct {
	Name     string
	Accesses int64
	Misses   int64
	MissRate float64
}

// Stats returns per-level counters, inner first.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, c := range h.levels {
		out[i] = LevelStats{
			Name:     h.names[i],
			Accesses: c.Accesses(),
			Misses:   c.Misses(),
			MissRate: c.MissRate(),
		}
	}
	return out
}

// MemoryAccesses returns the misses of the outermost level — the
// accesses that reach DRAM.
func (h *Hierarchy) MemoryAccesses() int64 {
	return h.levels[len(h.levels)-1].Misses()
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
}
