package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shard"
)

// writeStore shards TinySocial into a fresh directory and returns the
// directory plus the graph it was written from.
func writeStore(t *testing.T, p int) (string, *graph.Graph) {
	t.Helper()
	g := gen.TinySocial()
	dir := t.TempDir()
	if _, err := shard.Create(dir, g, shard.WriteOptions{Partitions: p}); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
}

// TestServeHTTPRoundTrip drives the whole API surface over real HTTP:
// open a store, list it, run one of each algorithm to completion,
// check the PageRank digest against a private solo engine, read stats,
// close the store, and confirm the error paths answer with errors
// rather than panics.
func TestServeHTTPRoundTrip(t *testing.T) {
	dir, g := writeStore(t, 12)
	s := New(Config{Options: shard.Options{Threads: 4}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var opened storeInfo
	if resp := postJSON(t, c, ts.URL+"/v1/stores", map[string]string{"name": "tiny", "dir": dir}, &opened); resp.StatusCode != http.StatusCreated {
		t.Fatalf("open store: %s", resp.Status)
	}
	if opened.Vertices != g.NumVertices() || opened.Edges != g.NumEdges() || opened.Shards != 12 {
		t.Fatalf("opened store reports %d vertices / %d edges / %d shards, want %d / %d / 12",
			opened.Vertices, opened.Edges, opened.Shards, g.NumVertices(), g.NumEdges())
	}
	var listed []storeInfo
	getJSON(t, c, ts.URL+"/v1/stores", &listed)
	if len(listed) != 1 || listed[0].Name != "tiny" {
		t.Fatalf("store listing = %+v, want exactly [tiny]", listed)
	}

	// A private engine over its own copy of the store is the oracle.
	solo, err := shard.Build(t.TempDir(), g, 12, shard.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantPR := digestF64(algorithms.PR(solo, 10).Ranks)

	for _, spec := range []QuerySpec{
		{Store: "tiny", Algo: "pagerank"},
		{Store: "tiny", Algo: "bfs", Src: 1},
		{Store: "tiny", Algo: "cc"},
		{Store: "tiny", Algo: "spmv"},
	} {
		var sub struct {
			ID string `json:"id"`
		}
		if resp := postJSON(t, c, ts.URL+"/v1/queries", spec, &sub); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s", spec.Algo, resp.Status)
		}
		var info queryInfo
		getJSON(t, c, ts.URL+"/v1/queries/"+sub.ID+"?wait=1", &info)
		if info.Status != "done" {
			t.Fatalf("%s finished %q (%s), want done", spec.Algo, info.Status, info.Error)
		}
		if info.Digest == "" {
			t.Fatalf("%s reported no digest", spec.Algo)
		}
		if spec.Algo == "pagerank" && info.Loads <= 0 {
			// The first query on a cold store must hit the disk; later
			// queries may run entirely off its resident shards.
			t.Fatalf("first query reported %d loads on a cold store", info.Loads)
		}
		if spec.Algo == "pagerank" && info.Digest != wantPR {
			t.Fatalf("served pagerank digest %s, solo engine digest %s: not bit-identical", info.Digest, wantPR)
		}
	}

	var stats statsInfo
	getJSON(t, c, ts.URL+"/v1/stats", &stats)
	if stats.Queries != 4 || len(stats.Stores) != 1 {
		t.Fatalf("stats report %d queries over %d stores, want 4 over 1", stats.Queries, len(stats.Stores))
	}
	if stats.Cache.Loads == 0 || stats.Cache.Bytes > stats.Cache.Budget {
		t.Fatalf("cache stats implausible after four queries: %+v", stats.Cache)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stores/tiny", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close store: %s", resp.Status)
	}

	// Error paths: unknown store, unknown algorithm, unknown query —
	// each answering with the uniform envelope and its machine code.
	var env errEnvelope
	if resp := postJSON(t, c, ts.URL+"/v1/queries", QuerySpec{Store: "tiny", Algo: "pagerank"}, &env); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query on closed store: %s, want 404", resp.Status)
	}
	if env.Error.Code != "store_not_found" || env.Error.Message == "" {
		t.Fatalf("closed-store envelope = %+v, want code store_not_found", env)
	}
	if resp := postJSON(t, c, ts.URL+"/v1/queries", QuerySpec{Store: "nope", Algo: "sssp"}, &env); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: %s, want 400", resp.Status)
	}
	if env.Error.Code != "invalid_argument" {
		t.Fatalf("unknown-algorithm envelope = %+v, want code invalid_argument", env)
	}
	r2, err := c.Get(ts.URL + "/v1/queries/q999")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown query: %s, want 404", r2.Status)
	}
	if err := json.NewDecoder(r2.Body).Decode(&env); err != nil || env.Error.Code != "query_not_found" {
		t.Fatalf("unknown-query envelope = %+v (%v), want code query_not_found", env, err)
	}
	if resp := postJSON(t, c, ts.URL+"/v1/stores", map[string]string{"name": "", "dir": dir}, &env); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty store name: %s, want 400", resp.Status)
	}
}

// TestServeUpdatesAndCompact drives the mutation endpoints end to end:
// a batch changes the PageRank digest (and only then), generations
// bump through the store listing, a session pinned before the batch
// keeps answering with the old content, a bad batch comes back 400
// with the envelope, and compaction folds the deltas without changing
// results.
func TestServeUpdatesAndCompact(t *testing.T) {
	dir, g := writeStore(t, 8)
	s := New(Config{Options: shard.Options{Threads: 2}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if resp := postJSON(t, c, ts.URL+"/v1/stores", map[string]string{"name": "tiny", "dir": dir}, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("open store: %s", resp.Status)
	}
	var env errEnvelope
	if resp := postJSON(t, c, ts.URL+"/v1/stores", map[string]string{"name": "tiny", "dir": dir}, &env); resp.StatusCode != http.StatusConflict || env.Error.Code != "store_exists" {
		t.Fatalf("reopen store: %s / %+v, want 409 store_exists", resp.Status, env)
	}

	runPR := func() string {
		var sub struct {
			ID string `json:"id"`
		}
		if resp := postJSON(t, c, ts.URL+"/v1/queries", QuerySpec{Store: "tiny", Algo: "pagerank"}, &sub); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit pagerank: %s", resp.Status)
		}
		var info queryInfo
		getJSON(t, c, ts.URL+"/v1/queries/"+sub.ID+"?wait=1", &info)
		if info.Status != "done" {
			t.Fatalf("pagerank finished %q (%s)", info.Status, info.Error)
		}
		return info.Digest
	}
	before := runPR()

	// A session captured now is pinned to generation 0 across the
	// mutations below.
	pinned, err := s.Session("tiny")
	if err != nil {
		t.Fatal(err)
	}
	wantPinned := digestF64(algorithms.PR(pinned, 10).Ranks)
	if wantPinned != before {
		t.Fatalf("pinned session digest %s, served digest %s", wantPinned, before)
	}

	// Mutate: drop one real edge, add two new ones.
	e0 := g.Edges()[0]
	var upd struct {
		Generation int64 `json:"generation"`
		Dirty      []int `json:"dirty"`
		Inserted   int64 `json:"inserted"`
		Deleted    int64 `json:"deleted"`
	}
	body := map[string]any{
		"insert": []map[string]uint32{{"src": 0, "dst": 9}, {"src": 9, "dst": 3}},
		"delete": []map[string]uint32{{"src": uint32(e0.Src), "dst": uint32(e0.Dst)}},
	}
	if resp := postJSON(t, c, ts.URL+"/v1/stores/tiny/updates", body, &upd); resp.StatusCode != http.StatusOK {
		t.Fatalf("apply updates: %s", resp.Status)
	}
	// RMAT graphs carry parallel edges and the tombstone removes every
	// copy, so Deleted counts at least one.
	if upd.Generation != 1 || upd.Inserted != 2 || upd.Deleted < 1 || len(upd.Dirty) == 0 {
		t.Fatalf("update result = %+v, want generation 1, 2 inserted, >=1 deleted, non-empty dirty", upd)
	}

	after := runPR()
	if after == before {
		t.Fatal("PageRank digest unchanged by an edge batch")
	}
	var listed []storeInfo
	getJSON(t, c, ts.URL+"/v1/stores", &listed)
	if len(listed) != 1 || listed[0].Generation != 1 || listed[0].PendingDeltas == 0 {
		t.Fatalf("store listing after update = %+v, want generation 1 with pending deltas", listed)
	}
	if got := digestF64(algorithms.PR(pinned, 10).Ranks); got != wantPinned {
		t.Fatalf("pinned session digest changed across the mutation: %s vs %s", got, wantPinned)
	}

	// A batch naming a vertex outside the store is a 400 with the
	// envelope, and mutates nothing.
	bad := map[string]any{"insert": []map[string]uint32{{"src": 1 << 20, "dst": 0}}}
	if resp := postJSON(t, c, ts.URL+"/v1/stores/tiny/updates", bad, &env); resp.StatusCode != http.StatusBadRequest || env.Error.Code != "invalid_argument" {
		t.Fatalf("bad batch: %s / %+v, want 400 invalid_argument", resp.Status, env)
	}
	if got := runPR(); got != after {
		t.Fatal("rejected batch changed query results")
	}

	// Compact folds the deltas; results and generation-after-compact
	// stay consistent.
	var comp struct {
		Generation int64 `json:"generation"`
	}
	if resp := postJSON(t, c, ts.URL+"/v1/stores/tiny/compact", nil, &comp); resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %s", resp.Status)
	}
	if comp.Generation != 2 {
		t.Fatalf("compacted to generation %d, want 2", comp.Generation)
	}
	getJSON(t, c, ts.URL+"/v1/stores", &listed)
	if listed[0].Generation != 2 || listed[0].PendingDeltas != 0 {
		t.Fatalf("store listing after compact = %+v, want generation 2 with no pending deltas", listed)
	}
	if got := runPR(); got != after {
		t.Fatal("compaction changed query results")
	}
	// Compacting again is a no-op: same generation.
	if resp := postJSON(t, c, ts.URL+"/v1/stores/tiny/compact", nil, &comp); resp.StatusCode != http.StatusOK || comp.Generation != 2 {
		t.Fatalf("idempotent compact: %s, generation %d", resp.Status, comp.Generation)
	}
	// Unknown store on both mutation routes: 404 with the envelope.
	if resp := postJSON(t, c, ts.URL+"/v1/stores/nope/updates", body, &env); resp.StatusCode != http.StatusNotFound || env.Error.Code != "store_not_found" {
		t.Fatalf("updates on unknown store: %s / %+v", resp.Status, env)
	}
	if resp := postJSON(t, c, ts.URL+"/v1/stores/nope/compact", nil, &env); resp.StatusCode != http.StatusNotFound || env.Error.Code != "store_not_found" {
		t.Fatalf("compact on unknown store: %s / %+v", resp.Status, env)
	}
}

// TestServeDeprecatedAliases pins the compatibility surface: the
// unversioned spellings answer identically to their /v1/ successors,
// plus RFC 8594-style deprecation headers naming the successor.
func TestServeDeprecatedAliases(t *testing.T) {
	dir, _ := writeStore(t, 8)
	s := New(Config{Options: shard.Options{Threads: 2}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if resp := postJSON(t, c, ts.URL+"/stores", map[string]string{"name": "tiny", "dir": dir}, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("open store via alias: %s", resp.Status)
	}
	resp, err := c.Get(ts.URL + "/stores")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list via alias: %s", resp.Status)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("alias response missing the Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</v1/stores>; rel="successor-version"` {
		t.Fatalf("alias Link header = %q", link)
	}
	var listed []storeInfo
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil || len(listed) != 1 {
		t.Fatalf("alias listing = %+v (%v)", listed, err)
	}
	// The versioned route answers without the deprecation headers.
	r2, err := c.Get(ts.URL + "/v1/stores")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.Header.Get("Deprecation") != "" || r2.Header.Get("Link") != "" {
		t.Fatal("versioned route carries deprecation headers")
	}
}

// TestServeSessionConformance runs the api.System contract check over
// a served session — the adapter the differential ladder drives.
func TestServeSessionConformance(t *testing.T) {
	dir, _ := writeStore(t, 8)
	s := New(Config{Options: shard.Options{Threads: 4}})
	if err := s.OpenStore("tiny", dir); err != nil {
		t.Fatal(err)
	}
	sys, err := s.Session("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := api.CheckSystem(sys); err != nil {
		t.Fatalf("served session violates the System contract: %v", err)
	}
}

// TestServedConcurrentPRBFS is the daemon-level acceptance test:
// PageRank and BFS submitted concurrently against one server must
// digest bit-identically to solo runs on private servers, and the
// shared cache must have performed strictly fewer loads than the two
// solo runs summed.
func TestServedConcurrentPRBFS(t *testing.T) {
	dir, _ := writeStore(t, 12)

	runOne := func(spec QuerySpec) (string, int64) {
		s := New(Config{Options: shard.Options{Threads: 4}})
		if err := s.OpenStore("tiny", dir); err != nil {
			t.Fatal(err)
		}
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		info := s.queries[id].info()
		s.mu.Unlock()
		if info.Status != "done" {
			t.Fatalf("solo %s finished %q (%s)", spec.Algo, info.Status, info.Error)
		}
		return info.Digest, info.Loads
	}
	prSpec := QuerySpec{Store: "tiny", Algo: "pagerank", Iters: 5}
	bfsSpec := QuerySpec{Store: "tiny", Algo: "bfs", Src: 1}
	wantPR, prLoads := runOne(prSpec)
	wantBFS, bfsLoads := runOne(bfsSpec)
	soloLoads := prLoads + bfsLoads

	s := New(Config{Options: shard.Options{Threads: 4}})
	if err := s.OpenStore("tiny", dir); err != nil {
		t.Fatal(err)
	}
	var ids [2]string
	var wg sync.WaitGroup
	for i, spec := range []QuerySpec{prSpec, bfsSpec} {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		wg.Add(1)
		go func() { defer wg.Done(); s.Wait(id) }()
	}
	wg.Wait()

	digests := map[string]string{}
	for _, id := range ids {
		s.mu.Lock()
		info := s.queries[id].info()
		s.mu.Unlock()
		if info.Status != "done" {
			t.Fatalf("concurrent %s finished %q (%s)", info.Algo, info.Status, info.Error)
		}
		digests[info.Algo] = info.Digest
	}
	if digests["pagerank"] != wantPR {
		t.Fatalf("concurrent pagerank digest %s, solo %s: not bit-identical", digests["pagerank"], wantPR)
	}
	if digests["bfs"] != wantBFS {
		t.Fatalf("concurrent bfs digest %s, solo %s: not bit-identical", digests["bfs"], wantBFS)
	}

	concurrent := s.Cache().Stats().Loads
	if concurrent >= soloLoads {
		t.Fatalf("concurrent PR+BFS performed %d loads, want strictly fewer than the solo sum %d (%d + %d)",
			concurrent, soloLoads, prLoads, bfsLoads)
	}
	fmt.Printf("served PR+BFS: concurrent loads %d vs solo sum %d\n", concurrent, soloLoads)
}

// TestBinBudgetRehostReleasesBins is the bin-lifecycle regression test
// for mutations: a scatter/gather daemon retains bins (and spill
// files) for the generation it serves; when an update rehosts the
// store, the old host's bin store must drain to exactly zero — bytes,
// residents and spill files — even while a generation-pinned session
// keeps answering queries with the old content, and the new host must
// start accumulating bins of its own under the same budget.
func TestBinBudgetRehostReleasesBins(t *testing.T) {
	dir, g := writeStore(t, 8)
	const budget = int64(16 << 10) // half this store's bin footprint: spills happen
	s := New(Config{Options: shard.Options{
		Threads: 2, CacheShards: 4,
		SweepMode: shard.SweepScatterGather, BinBudgetBytes: budget,
	}})
	if err := s.OpenStore("tiny", dir); err != nil {
		t.Fatal(err)
	}
	old, err := s.lookupHost("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := s.Session("tiny")
	if err != nil {
		t.Fatal(err)
	}
	before := digestF64(algorithms.PR(pinned, 10).Ranks)

	bs := old.BinStats()
	if bs.Bytes <= 0 || bs.Bytes > budget || bs.SpilledBytes <= 0 {
		t.Fatalf("pre-mutation bin stats %+v, want resident bytes within budget and spill traffic", bs)
	}
	spills, err := filepath.Glob(filepath.Join(dir, "bin-*-g000000.spill"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spills) == 0 {
		t.Fatal("half-footprint budget produced no generation-0 spill files")
	}

	if _, err := s.ApplyUpdates("tiny", []graph.Edge{{Src: 0, Dst: 9}}, nil); err != nil {
		t.Fatal(err)
	}

	// The pinned session still serves generation 0 bit-exactly — and its
	// post-rehost sweeps (re-scattering into the closed bin cache) must
	// not resurrect any retained state.
	if got := digestF64(algorithms.PR(pinned, 10).Ranks); got != before {
		t.Fatalf("pinned session digest changed across the rehost: %s vs %s", got, before)
	}
	bs = old.BinStats()
	if bs.Bytes != 0 || bs.Resident != 0 || bs.Pinned != 0 || bs.Spilled != 0 {
		t.Fatalf("drained old host still holds bins: %+v", bs)
	}
	spills, err = filepath.Glob(filepath.Join(dir, "bin-*-g000000.spill"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spills) != 0 {
		t.Fatalf("generation-0 spill files survived the rehost: %v", spills)
	}

	// Compaction rehosts again; the generation-1 host must drain the
	// same way once nothing runs on it.
	if _, err := s.CompactStore("tiny"); err != nil {
		t.Fatal(err)
	}
	if got, err := filepath.Glob(filepath.Join(dir, "bin-*.spill")); err != nil || len(got) != 0 {
		t.Fatalf("spill files survived the compaction rehost: %v (%v)", got, err)
	}

	// The fresh host accumulates bins again, inside the same budget, and
	// serves the mutated content.
	sess, err := s.Session("tiny")
	if err != nil {
		t.Fatal(err)
	}
	after := digestF64(algorithms.PR(sess, 10).Ranks)
	if after == before {
		t.Fatal("PageRank digest unchanged by the edge insertion")
	}
	cur, err := s.lookupHost("tiny")
	if err != nil {
		t.Fatal(err)
	}
	bs = cur.BinStats()
	if bs.PeakBytes <= 0 || bs.PeakBytes > budget {
		t.Fatalf("rehosted store's bin stats %+v, want fresh residency within the shared budget", bs)
	}
	_ = g
}
