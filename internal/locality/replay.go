package locality

import (
	"repro/internal/graph"
	"repro/internal/hilbert"
	"repro/internal/partition"
)

// The replayers regenerate the exact order in which each traversal
// touches the per-vertex "current" and "next" arrays and the graph
// structure arrays, and feed the resulting byte addresses to a consumer
// (reuse analyzer or cache simulator). Address space layout: each array
// lives in its own 1 GiB region so distinct arrays never alias.

// Consumer receives one byte address per memory access.
type Consumer interface {
	Access(addr uint64)
}

// consumerFunc adapts a function to Consumer.
type consumerFunc func(uint64)

func (f consumerFunc) Access(a uint64) { f(a) }

// ConsumerFunc wraps fn as a Consumer.
func ConsumerFunc(fn func(uint64)) Consumer { return consumerFunc(fn) }

const (
	regionShift = 30 // 1 GiB per array region
	regionCur   = 0  // current vertex data (read side)
	regionNext  = 1  // next vertex data (update side)
	regionSrcA  = 2  // COO source array / CSR destinations
	regionDstA  = 3  // COO destination array
	regionIdx   = 4  // CSR/CSC offset array
)

const vertexBytes = 4 // uint32 values, 16 per 64-byte line

func vaddr(region int, idx int64) uint64 {
	return uint64(region)<<regionShift + uint64(idx)*vertexBytes
}

// ReplayNextFrontierCOO replays only the updates to the next arrays of a
// forward edge-oriented traversal over the partitioned COO in CSR order —
// the access stream of Figure 2 ("reuse distance distribution of updates
// to the next frontier in PRDelta"). Element granularity: one access per
// edge to next[dst].
func ReplayNextFrontierCOO(g *graph.Graph, p int, c Consumer) {
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	pcoo := partition.NewPCOO(g, pt)
	for _, part := range pcoo.Parts {
		for i := range part.Dst {
			c.Access(vaddr(regionNext, int64(part.Dst[i])))
		}
	}
}

// ReplayNextFrontierBySource replays the same next-array update stream
// under partitioning-by-*source*. §II.C argues this scheme leaves the
// forward edge-visit order identical to the unpartitioned graph — each
// partition holds consecutive source vertices' out-edges in CSR order —
// so the reuse-distance distribution must be independent of p. The test
// suite asserts exactly that.
func ReplayNextFrontierBySource(g *graph.Graph, p int, c Consumer) {
	pt := partition.BySource(g, p, partition.BalanceEdges)
	for task := 0; task < pt.P; task++ {
		lo, hi := pt.Range(task)
		for u := lo; u < hi; u++ {
			for _, d := range g.OutNeighbors(u) {
				c.Access(vaddr(regionNext, int64(d)))
			}
		}
	}
}

// EdgeTraversalKind selects which traversal's access stream to replay
// for the MPKI experiments of Figure 8.
type EdgeTraversalKind int

const (
	// KindCOOForward replays a dense edge-oriented iteration (PR-like)
	// over the partitioned COO: streams the Src/Dst arrays, reads
	// cur[src], reads+writes next[dst].
	KindCOOForward EdgeTraversalKind = iota
	// KindCSCBackward replays a backward vertex-oriented iteration
	// (BFS-like) over the whole-graph CSC with partitioned computation
	// ranges: streams the index array, writes next[v], reads cur[src]
	// randomly. Partitioning-by-destination leaves this order unchanged,
	// which is why its MPKI stays flat in Figure 8.
	KindCSCBackward
	// KindCOOActive replays a COO traversal where only a subset of
	// sources are active (BF-like mid-phase): the edge arrays still
	// stream but only active edges touch the vertex arrays.
	KindCOOActive
)

// ReplayEdgeTraversal replays one full-graph iteration of the given kind
// at partition count p, emitting every modelled memory access.
// activeEvery controls KindCOOActive: source u is active when
// u%activeEvery == 0 (pass 1 for all-active).
func ReplayEdgeTraversal(g *graph.Graph, p int, kind EdgeTraversalKind, activeEvery int, order hilbert.EdgeOrder, c Consumer) (accesses int64) {
	if activeEvery < 1 {
		activeEvery = 1
	}
	switch kind {
	case KindCSCBackward:
		pt := partition.ByDestination(g, p, partition.BalanceVertices)
		var i int64
		for task := 0; task < pt.P; task++ {
			lo, hi := pt.Range(task)
			for v := lo; v < hi; v++ {
				c.Access(vaddr(regionIdx, int64(v)))
				c.Access(vaddr(regionNext, int64(v)))
				accesses += 2
				for _, u := range g.InNeighbors(v) {
					c.Access(vaddr(regionSrcA, i))
					c.Access(vaddr(regionCur, int64(u)))
					accesses += 2
					i++
				}
			}
		}
	default:
		pt := partition.ByDestination(g, p, partition.BalanceEdges)
		pcoo := partition.NewPCOO(g, pt)
		var i int64
		for _, part := range pcoo.Parts {
			if order != hilbert.BySource {
				hilbert.Sort(part, order)
			}
			for e := range part.Src {
				u, v := part.Src[e], part.Dst[e]
				c.Access(vaddr(regionSrcA, i))
				c.Access(vaddr(regionDstA, i))
				accesses += 2
				i++
				if kind == KindCOOActive && int(u)%activeEvery != 0 {
					continue
				}
				c.Access(vaddr(regionCur, int64(u)))
				c.Access(vaddr(regionNext, int64(v)))
				c.Access(vaddr(regionNext, int64(v))) // read-modify-write
				accesses += 3
			}
		}
	}
	return accesses
}
