// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§IV) as formatted text, shared
// by cmd/experiments and the root-level Go benchmarks. Each FigN
// function returns a Figure whose series mirror the corresponding plot's
// curves; absolute values differ from the paper (simulated substrate,
// scaled graphs) but the shapes are comparable.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Series is one curve of a figure: parallel X/Y values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a rendered experiment: an identifier, axis labels, and a set
// of series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the figure as an aligned text table: one row per X
// value, one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			v, ok := s.lookup(x)
			if !ok {
				fmt.Fprintf(&b, " %14s", "-")
			} else {
				fmt.Fprintf(&b, " %14.4g", v)
			}
		}
		b.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func (s *Series) lookup(x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// WriteCSV emits the figure as "x,series1,series2,..." rows (dash-free:
// absent points are empty cells), for plotting outside the repo.
func (f *Figure) WriteCSV(w io.Writer) error {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range f.Series {
			if v, ok := s.lookup(x); ok {
				row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// MedianTime runs fn reps times and returns the median wall time. The
// paper averages 20 runs; experiments here default to fewer reps and the
// median, which is robust to GC pauses on a shared machine.
func MedianTime(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		fn()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[reps/2]
}

// Seconds converts a duration to float seconds for series values.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Speedup returns base/other as a multiplicative factor.
func Speedup(base, other time.Duration) float64 {
	if other == 0 {
		return 0
	}
	return float64(base) / float64(other)
}
