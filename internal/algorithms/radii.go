package algorithms

import (
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// RadiiResult holds per-vertex eccentricity estimates (lower bounds) from
// the multi-source bit-parallel BFS, and the graph radius/diameter
// estimates derived from them.
type RadiiResult struct {
	Ecc         []int32
	DiameterEst int32
	Rounds      int
}

// Radii estimates vertex eccentricities with Ligra's Radii approach: 64
// BFS runs proceed simultaneously, one bit of a word per source, and a
// vertex's estimate is the last round in which it acquired a new bit.
// Sources are the 64 highest-out-degree vertices (deterministic), which
// bound the estimate well on social graphs.
func Radii(sys api.System) RadiiResult {
	g := sys.Graph()
	n := g.NumVertices()
	if n == 0 {
		return RadiiResult{}
	}
	visited := make([]uint64, n)
	nextVisited := make([]uint64, n)
	ecc := NewI32s(n, 0)

	sources := topKByOutDegree(g, 64)
	for i, s := range sources {
		visited[s] |= 1 << uint(i)
		nextVisited[s] |= 1 << uint(i)
	}

	var round int32
	op := api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			add := visited[u] &^ visited[v]
			if add == 0 {
				return false
			}
			// v is destination-exclusive here; plain RMW on its word.
			old := atomic.LoadUint64(&nextVisited[v])
			atomic.StoreUint64(&nextVisited[v], old|add)
			changed := old|add != old
			if changed {
				ecc.Set(v, round)
			}
			return changed
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			add := visited[u] &^ visited[v]
			if add == 0 {
				return false
			}
			for {
				old := atomic.LoadUint64(&nextVisited[v])
				if old|add == old {
					return false
				}
				if atomic.CompareAndSwapUint64(&nextVisited[v], old, old|add) {
					ecc.Set(v, round)
					return true
				}
			}
		},
	}

	f := frontier.FromList(n, sources)
	res := RadiiResult{}
	for !f.IsEmpty() {
		round++
		f = sys.EdgeMap(f, op, api.DirForward)
		// Commit this round's bits: visited ← nextVisited for changed
		// vertices (copying all is simpler and race-free after the
		// EdgeMap barrier).
		sys.VertexMap(frontier.All(g), func(v graph.VID) {
			visited[v] = atomic.LoadUint64(&nextVisited[v])
		})
		res.Rounds++
		if res.Rounds > n+1 {
			panic("algorithms: Radii failed to converge")
		}
	}
	res.Ecc = ecc.Slice()
	for _, e := range res.Ecc {
		if e > res.DiameterEst {
			res.DiameterEst = e
		}
	}
	return res
}

// topKByOutDegree returns the k highest-out-degree vertices (ties to
// lower IDs), at most n of them.
func topKByOutDegree(g *graph.Graph, k int) []graph.VID {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	// Selection into a small array: k is 64, n can be large; simple
	// partial selection is fine.
	best := make([]vd, 0, k)
	for v := 0; v < n; v++ {
		d := g.OutDegree(graph.VID(v))
		if len(best) < k {
			best = append(best, vd{graph.VID(v), d})
			if len(best) == k {
				sortVD(best)
			}
			continue
		}
		if d > best[k-1].d {
			best[k-1] = vd{graph.VID(v), d}
			// Bubble up into place.
			for i := k - 1; i > 0 && best[i].d > best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	if len(best) < k {
		sortVD(best)
	}
	out := make([]graph.VID, len(best))
	for i, b := range best {
		out[i] = b.v
	}
	return out
}

type vd struct {
	v graph.VID
	d int64
}

func sortVD(a []vd) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].d > a[j-1].d; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// SerialRadii runs the same 64-source BFS serially as oracle.
func SerialRadii(g *graph.Graph) []int32 {
	n := g.NumVertices()
	ecc := make([]int32, n)
	sources := topKByOutDegree(g, 64)
	dist := make([]int32, n)
	for i := range sources {
		for j := range dist {
			dist[j] = -1
		}
		src := sources[i]
		dist[src] = 0
		queue := []graph.VID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.OutNeighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > ecc[v] {
						ecc[v] = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
	}
	return ecc
}
