package locality

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sched"
)

// NUMA traffic model. Go cannot pin pages, so the experiments cannot
// measure real cross-socket traffic; what they can do is count, for the
// modelled placement (§III.D: partition i's vertex slice lives on domain
// i mod D, and partition i is processed by a core of that domain), how
// many of a traversal's accesses would be domain-local. This quantifies
// the placement property Polymer and GraphGrind get from
// partitioning-by-destination: every next-array *update* is local by
// construction; only current-array *reads* cross domains.

// NUMATraffic summarises the locality of one dense COO iteration.
type NUMATraffic struct {
	LocalNext   int64 // next-array accesses to the worker's own domain
	RemoteNext  int64
	LocalCur    int64 // current-array reads from the worker's own domain
	RemoteCur   int64
	LocalShare  float64 // fraction of all vertex-array accesses that are local
	DomainLoads []int64 // edges processed per domain
}

// MeasureNUMATraffic walks the partitioned COO and classifies each
// vertex-array access as local or remote under the round-robin
// partition→domain placement.
func MeasureNUMATraffic(g *graph.Graph, p int, topo sched.Topology) NUMATraffic {
	if topo.Domains <= 0 {
		topo = sched.DefaultTopology()
	}
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	pcoo := partition.NewPCOO(g, pt)
	var t NUMATraffic
	t.DomainLoads = make([]int64, topo.Domains)
	for pi, part := range pcoo.Parts {
		dom := topo.DomainOf(pi)
		t.DomainLoads[dom] += part.NumEdges()
		for i := range part.Src {
			// The destination's home partition is pi by construction, so
			// the next-array access is always local. Verified, not
			// assumed: Home() is consulted.
			if topo.DomainOf(pt.Home(part.Dst[i])) == dom {
				t.LocalNext++
			} else {
				t.RemoteNext++
			}
			if topo.DomainOf(pt.Home(part.Src[i])) == dom {
				t.LocalCur++
			} else {
				t.RemoteCur++
			}
		}
	}
	total := t.LocalNext + t.RemoteNext + t.LocalCur + t.RemoteCur
	if total > 0 {
		t.LocalShare = float64(t.LocalNext+t.LocalCur) / float64(total)
	}
	return t
}
