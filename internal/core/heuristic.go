package core

import (
	"repro/internal/graph"
	"repro/internal/sched"
)

// The paper leaves the partitioning degree as a hidden parameter and
// notes (§IV.G) that "it would be convenient to determine [it]
// heuristically". This file provides that heuristic, derived from the
// paper's own locality argument: a partition's random accesses are
// confined to its vertex range, so the per-partition slice of the next
// arrays should fit in the cache level being targeted, while the count
// stays at least one per thread (for atomic-free updates), a multiple of
// the NUMA domain count (§III.D), and below the point where scheduling
// overhead dominates (the paper observes degradation at 480).

// HeuristicConfig tunes HeuristicPartitions.
type HeuristicConfig struct {
	// CacheBytes is the per-core cache budget the partition's vertex
	// slice should fit in; 0 selects 256 KiB (half a typical L2).
	CacheBytes int64
	// BytesPerVertex is the next-array payload per vertex; 0 selects 8
	// (a frontier bit plus a float64 accumulator is the common case).
	BytesPerVertex int64
	// MaxPartitions caps the result; 0 selects 480, where the paper
	// observed scheduling overhead overtaking locality gains.
	MaxPartitions int
	// Threads and Topology mirror Options; zero values use defaults.
	Threads  int
	Topology sched.Topology
}

// HeuristicPartitions picks a partition count for g per the rules above.
func HeuristicPartitions(g *graph.Graph, cfg HeuristicConfig) int {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 256 << 10
	}
	if cfg.BytesPerVertex <= 0 {
		cfg.BytesPerVertex = 8
	}
	if cfg.MaxPartitions <= 0 {
		cfg.MaxPartitions = 480
	}
	if cfg.Threads <= 0 {
		cfg.Threads = sched.NewPool(0).Threads()
	}
	if cfg.Topology.Domains <= 0 {
		cfg.Topology = sched.DefaultTopology()
	}

	footprint := int64(g.NumVertices()) * cfg.BytesPerVertex
	p := int((footprint + cfg.CacheBytes - 1) / cfg.CacheBytes)
	if p < cfg.Threads {
		p = cfg.Threads // one partition per thread enables the na path
	}
	p = cfg.Topology.PartitionsFor(p)
	if p > cfg.MaxPartitions {
		// Keep the domain multiple while clamping.
		p = cfg.MaxPartitions - cfg.MaxPartitions%cfg.Topology.Domains
		if p <= 0 {
			p = cfg.Topology.Domains
		}
	}
	return p
}

// NewEngineAuto builds an engine with the heuristic partition count.
func NewEngineAuto(g *graph.Graph, opts Options) *Engine {
	if opts.Partitions <= 0 {
		opts.Partitions = HeuristicPartitions(g, HeuristicConfig{
			Threads:  opts.Threads,
			Topology: opts.Topology,
		})
	}
	return NewEngine(g, opts)
}
