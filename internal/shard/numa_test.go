package shard

import (
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/locality"
	"repro/internal/partition"
	"repro/internal/sched"
)

// TestShardDomainAssignmentDeterministicAndTotal: the shard→domain map
// is a function of (store, topology) alone — identical across engine
// rebuilds — and places every shard in exactly one valid domain, with
// the round-robin shape locality.MeasureNUMATraffic models.
func TestShardDomainAssignmentDeterministicAndTotal(t *testing.T) {
	g := gen.TinySocial()
	st, err := Write(t.TempDir(), g, 12)
	if err != nil {
		t.Fatal(err)
	}
	topo := sched.Topology{Domains: 4}
	build := func() []int {
		e, err := NewEngine(st, g, Options{Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		doms := make([]int, st.NumShards())
		for i := range doms {
			doms[i] = e.ShardDomain(i)
		}
		return doms
	}
	want := build()
	for i, d := range want {
		if d < 0 || d >= topo.Domains {
			t.Fatalf("shard %d assigned to domain %d outside [0,%d)", i, d, topo.Domains)
		}
		if d != topo.DomainOf(i) {
			t.Fatalf("shard %d on domain %d, want round-robin %d", i, d, topo.DomainOf(i))
		}
	}
	for rebuild := 0; rebuild < 3; rebuild++ {
		got := build()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rebuild %d: shard %d moved from domain %d to %d", rebuild, i, want[i], got[i])
			}
		}
	}
}

// TestDomainLoadsCoverSweep: after a full dense sweep, every applied
// shard is accounted to exactly its assigned domain — counts sum to the
// number of applications and land where ShardDomain says.
func TestDomainLoadsCoverSweep(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 12, Options{Topology: sched.Topology{Domains: 4}})

	perShard := make([]int64, e.st.NumShards())
	e.onApplyBegin = func(si int) { perShard[si]++ }
	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)

	st := e.Stats()
	wantDomains := make([]int64, e.Topology().Domains)
	var applied int64
	for si, c := range perShard {
		wantDomains[e.ShardDomain(si)] += c
		applied += c
	}
	if applied == 0 {
		t.Fatal("dense sweep applied nothing")
	}
	var counted, edges int64
	for d := range st.DomainShards {
		if st.DomainShards[d] != wantDomains[d] {
			t.Fatalf("domain %d credited %d shards, want %d", d, st.DomainShards[d], wantDomains[d])
		}
		counted += st.DomainShards[d]
		edges += st.DomainEdges[d]
	}
	if counted != applied {
		t.Fatalf("domain shard counts sum to %d, %d shards were applied", counted, applied)
	}
	if edges != g.NumEdges() {
		t.Fatalf("domain edge counts sum to %d, graph has %d edges", edges, g.NumEdges())
	}
}

// TestNUMAPlacementNoWorseThanUnplaced scores the engine's placement
// (round-robin partition→domain, the one MeasureNUMATraffic models)
// against an unplaced baseline that stripes 64-vertex pages across
// domains with no regard for partition structure, on generated
// power-law graphs. The partition-aware placement must keep every
// next-array update domain-local and beat — at worst match — the
// baseline's overall local share.
func TestNUMAPlacementNoWorseThanUnplaced(t *testing.T) {
	topo := sched.DefaultTopology()
	const p = 16
	for _, seed := range []uint64{3, 7, 11} {
		g := gen.PowerLaw(1<<10, 1<<13, 2.3, seed)
		placed := locality.MeasureNUMATraffic(g, p, topo)
		striped := locality.MeasureNUMAPlacement(g, p, topo, func(v graph.VID) int {
			return int(v) / partition.BoundaryAlign % topo.Domains
		})
		if placed.RemoteNext != 0 {
			t.Errorf("seed %d: partition-aware placement has %d remote next-array updates, want 0",
				seed, placed.RemoteNext)
		}
		if placed.LocalShare < striped.LocalShare {
			t.Errorf("seed %d: placed local share %.3f worse than unplaced baseline %.3f",
				seed, placed.LocalShare, striped.LocalShare)
		}
	}
}

// TestConformanceAcrossTopologies: the pipelined engine satisfies the
// api.System contract whatever the domain/worker ratio — more domains
// than workers, more workers than domains, and a single domain.
func TestConformanceAcrossTopologies(t *testing.T) {
	g := gen.TinySocial()
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"one-domain", Options{Threads: 4, Topology: sched.Topology{Domains: 1}}},
		{"domains-exceed-workers", Options{Threads: 2, Topology: sched.Topology{Domains: 8}}},
		{"workers-exceed-domains", Options{Threads: 8, Topology: sched.Topology{Domains: 2}}},
		{"serial-many-domains", Options{Threads: 1, Topology: sched.Topology{Domains: 4}}},
	} {
		e := buildTestEngine(t, g, 8, tc.opts)
		if err := api.CheckSystem(e); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}
