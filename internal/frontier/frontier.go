package frontier

import (
	"fmt"

	"repro/internal/graph"
)

// Class is the paper's three-way frontier classification (§III.A).
type Class int

const (
	// Sparse frontiers (< |E|/20 active edge work) traverse the
	// unpartitioned CSR forward.
	Sparse Class = iota
	// Medium frontiers (between |E|/20 and |E|/2) traverse the
	// unpartitioned CSC backward over partitioned computation ranges.
	Medium
	// Dense frontiers (> |E|/2) traverse the partitioned COO.
	Dense
)

func (c Class) String() string {
	switch c {
	case Sparse:
		return "sparse"
	case Medium:
		return "medium"
	case Dense:
		return "dense"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Frontier is the set of active vertices. It keeps both representations
// lazily: a sparse list and/or a dense bitmap, converting on demand. The
// density statistic |F| + Σ_{v∈F} out-deg(v) is tracked so Algorithm 2
// can classify without an extra pass when the producer already knows it.
type Frontier struct {
	n                int
	list             []graph.VID // valid if hasList
	bitmap           *Bitmap     // valid if hasBits
	hasList, hasBits bool

	count  int64 // |F|
	outDeg int64 // Σ out-deg over F; -1 if unknown
}

// New returns an empty frontier over n vertices.
func New(n int) *Frontier {
	return &Frontier{n: n, hasList: true, outDeg: 0}
}

// FromVertex returns a frontier containing the single vertex v, with its
// out-degree statistic filled from g.
func FromVertex(g *graph.Graph, v graph.VID) *Frontier {
	return &Frontier{
		n: g.NumVertices(), list: []graph.VID{v}, hasList: true,
		count: 1, outDeg: g.OutDegree(v),
	}
}

// FromList returns a frontier over n vertices containing vs (must be
// sorted or at least duplicate-free; engines produce duplicate-free
// lists). The out-degree statistic is unknown until SetStats or
// ComputeStats is called.
func FromList(n int, vs []graph.VID) *Frontier {
	return &Frontier{n: n, list: vs, hasList: true, count: int64(len(vs)), outDeg: -1}
}

// FromBitmap wraps a dense bitmap; count is computed, out-degree unknown.
func FromBitmap(n int, b *Bitmap) *Frontier {
	return &Frontier{n: n, bitmap: b, hasBits: true, count: b.Count(), outDeg: -1}
}

// All returns a frontier with every vertex active, with statistics
// filled (|F| = n, Σ out-deg = |E|).
func All(g *graph.Graph) *Frontier {
	n := g.NumVertices()
	b := NewBitmap(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Mask the tail so Count stays exact.
	if n%64 != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = ^uint64(0) >> (64 - uint(n%64))
	}
	return &Frontier{n: n, bitmap: b, hasBits: true, count: int64(n), outDeg: g.NumEdges()}
}

// Len returns the number of vertices the frontier ranges over (not the
// active count).
func (f *Frontier) Len() int { return f.n }

// Count returns |F|, the number of active vertices.
func (f *Frontier) Count() int64 { return f.count }

// IsEmpty reports whether no vertex is active — the usual termination
// condition of the iteration loop.
func (f *Frontier) IsEmpty() bool { return f.count == 0 }

// SetStats records |F| and Σ out-deg when the producer tracked them.
func (f *Frontier) SetStats(count, outDeg int64) {
	f.count = count
	f.outDeg = outDeg
}

// OutDegree returns Σ out-deg over the active set, computing it from g if
// unknown. The result is cached.
func (f *Frontier) OutDegree(g *graph.Graph) int64 {
	if f.outDeg >= 0 {
		return f.outDeg
	}
	var s int64
	f.ForEach(func(v graph.VID) { s += g.OutDegree(v) })
	f.outDeg = s
	return s
}

// Classify applies Algorithm 2's thresholds: the frontier is Dense when
// |F| + Σ out-deg > m/denseDiv, Medium when > m/sparseDiv, else Sparse.
// The paper uses denseDiv=2 and sparseDiv=20.
func (f *Frontier) Classify(g *graph.Graph, sparseDiv, denseDiv int64) Class {
	m := g.NumEdges()
	work := f.count + f.OutDegree(g)
	if work > m/denseDiv {
		return Dense
	}
	if work > m/sparseDiv {
		return Medium
	}
	return Sparse
}

// Has reports whether v is active.
func (f *Frontier) Has(v graph.VID) bool {
	if f.hasBits {
		return f.bitmap.Get(v)
	}
	for _, u := range f.list {
		if u == v {
			return true
		}
	}
	return false
}

// List returns the sparse representation, materialising it if needed.
func (f *Frontier) List() []graph.VID {
	if !f.hasList {
		f.list = f.bitmap.ToList()
		f.hasList = true
	}
	return f.list
}

// Bitmap returns the dense representation, materialising it if needed.
func (f *Frontier) Bitmap() *Bitmap {
	if !f.hasBits {
		f.bitmap = NewBitmap(f.n)
		for _, v := range f.list {
			f.bitmap.Set(v)
		}
		f.hasBits = true
	}
	return f.bitmap
}

// ForEach visits every active vertex. Order is ascending when the dense
// form exists, insertion order otherwise.
func (f *Frontier) ForEach(fn func(graph.VID)) {
	if f.hasBits {
		f.bitmap.ForEach(fn)
		return
	}
	for _, v := range f.list {
		fn(v)
	}
}
