package api

import (
	"sync/atomic"
	"testing"

	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

func TestCondOfDefaultsTrue(t *testing.T) {
	op := EdgeOp{}
	if !op.CondOf()(3) {
		t.Fatal("nil Cond should default to true")
	}
	op.Cond = func(v graph.VID) bool { return v == 1 }
	if op.CondOf()(2) || !op.CondOf()(1) {
		t.Fatal("explicit Cond not used")
	}
}

func TestDirectionStrings(t *testing.T) {
	if DirAuto.String() != "auto" || DirForward.String() != "forward" || DirBackward.String() != "backward" {
		t.Fatal("direction strings")
	}
}

func TestVertexMapVisitsExactlyActive(t *testing.T) {
	g := gen.TinySocial()
	pool := sched.NewPool(4)
	f := frontier.FromList(g.NumVertices(), []graph.VID{1, 5, 9})
	var count int64
	VertexMap(pool, f, func(v graph.VID) {
		if v != 1 && v != 5 && v != 9 {
			t.Errorf("unexpected vertex %d", v)
		}
		atomic.AddInt64(&count, 1)
	})
	if count != 3 {
		t.Fatalf("visited %d", count)
	}
	VertexMap(pool, frontier.New(10), func(graph.VID) { t.Error("visited empty frontier") })
}

func TestVertexFilterStats(t *testing.T) {
	g := gen.Star(10)
	pool := sched.NewPool(2)
	f := VertexFilter(pool, g, frontier.All(g), func(v graph.VID) bool { return v < 2 })
	if f.Count() != 2 {
		t.Fatalf("count = %d", f.Count())
	}
	if f.OutDegree(g) != 9 { // vertex 0 (deg 9) + vertex 1 (deg 0)
		t.Fatalf("outdeg = %d", f.OutDegree(g))
	}
	empty := VertexFilter(pool, g, frontier.All(g), func(graph.VID) bool { return false })
	if !empty.IsEmpty() {
		t.Fatal("filter-all-out not empty")
	}
}
