package shard

// The log-structured delta layer: a Store is no longer write-once.
// ApplyBatch appends one v2-encoded delta shard per affected base
// shard — (dst,src)-sorted inserts plus edge tombstones for deletes —
// and swaps in a new manifest generation with the usual
// temp+fsync+rename discipline, so a crash at any point leaves the
// previous generation intact and openable. Reads merge base plus
// deltas as linear zips of sorted streams (mergeDeltas), preserving
// the per-destination ascending-source order every engine path
// assumes: a mutated store is per-destination identical to a
// from-scratch rebuild of the same edge multiset, so every sweep
// mode, order, window depth, IODepth and co-pass path works unchanged
// over it. Compact (compact.go) folds the deltas back into
// generation-suffixed base files.
//
// Files of superseded generations are never overwritten or deleted,
// so a Store value opened before a swap — a session pinning its
// generation — keeps reading exactly the files its manifest names.
// The flip side: a Store value must not serve reads concurrently with
// ApplyBatch/Compact on the *same* value; mutators that also serve
// (internal/serve) reopen the directory per mutation and swap hosts,
// and Engine.EdgeMap panics on a generation mismatch rather than
// silently mixing an old in-memory view with new on-disk content.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/aio"
	"repro/internal/graph"
)

// deltaRef is the manifest record of one pending delta shard file.
type deltaRef struct {
	File string `json:"file"`
	Gen  int64  `json:"gen"`
	Ins  int64  `json:"ins"`
	Del  int64  `json:"del"`
}

// deltaMagic opens every delta shard file; base files start with
// shardMagicV2 (or a raw v1 count), so the layouts cannot be confused
// without the mismatch surfacing structurally.
var deltaMagic = [4]byte{'G', 'G', 'D', '2'}

// maxDeltaEdges bounds a delta file's declared insert or tombstone
// count: past it the minimum-size arithmetic in readDeltaFile could
// overflow int64 (each edge costs at least two stream bytes).
const maxDeltaEdges = (1<<63 - 1 - 4 - 2*binary.MaxVarintLen64) / 4

// BatchError reports a batch edge referencing a vertex outside the
// store — the typed rejection ApplyBatch returns and the serve layer
// maps to 400. The partition geometry is fixed at Create time, so
// growing |V| means rebuilding the store, not batching.
type BatchError struct {
	Op    string // "insert" or "delete"
	Index int    // index within the offending batch slice
	Field string // "source" or "destination"
	VID   graph.VID
	Hi    graph.VID // exclusive bound (the store's vertex count)
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("shard: batch %s %d: %s %d outside [0,%d)", e.Op, e.Index, e.Field, e.VID, e.Hi)
}

// BatchResult reports one applied batch.
type BatchResult struct {
	// Generation is the manifest generation the batch created.
	Generation int64
	// Dirty lists (ascending) the shards whose sweep inputs changed:
	// content-changed shards plus shards fed by a source whose
	// out-degree changed, per the source-range summaries — exactly
	// what DirtyShards(pre-batch generation) reports afterwards.
	Dirty []int
	// Inserted counts the batch's insert edges; Deleted counts the
	// live copies its tombstones actually removed (an edge inserted
	// and deleted by the same batch contributes to both).
	Inserted, Deleted int64
}

// Generation returns the store's manifest generation — 0 for a fresh
// or legacy store, bumped once by every ApplyBatch and Compact.
func (s *Store) Generation() int64 { return s.m.Generation }

// PendingDeltas returns the number of delta files awaiting compaction.
func (s *Store) PendingDeltas() int {
	n := 0
	for _, refs := range s.m.Deltas {
		n += len(refs)
	}
	return n
}

// DirtyShards returns, ascending, the shards whose sweep inputs
// changed after generation since: their edge content, or the
// out-degree of a source feeding them. It is the seed for incremental
// re-convergence (Engine.IncrementalPR / IncrementalCC) — converge on
// generation G, mutate, then re-converge seeded with DirtyShards(G).
func (s *Store) DirtyShards(since int64) []int {
	var out []int
	for i, g := range s.m.DirtyGen {
		if g > since {
			out = append(out, i)
		}
	}
	return out
}

// ApplyBatch applies one batch of edge insertions and deletions: the
// store's new edge multiset is (old ⊎ ins) \ del, where every delete
// tombstone removes *all* copies of its (src,dst) pair — including
// copies inserted by the same batch, so an insert-then-delete within
// one batch nets to absent. Edges may reference only existing
// vertices; violations return *BatchError. An empty batch is a no-op
// and does not bump the generation.
//
// Durability: one delta file per affected shard is written first
// (temp+fsync+rename), the manifest swap commits last — a crash at
// any point leaves the previous generation. On return the receiver
// serves the new generation; engines built over the store earlier
// keep their old in-memory view and must be rebuilt (EdgeMap panics
// on the generation mismatch). ApplyBatch must not run concurrently
// with reads through the same Store value — reopen the directory per
// mutation when serving (internal/serve does).
func (s *Store) ApplyBatch(ins, del []graph.Edge) (*BatchResult, error) {
	if len(ins) == 0 && len(del) == 0 {
		return &BatchResult{Generation: s.m.Generation}, nil
	}
	n := graph.VID(s.m.Vertices)
	if err := checkBatch("insert", ins, n); err != nil {
		return nil, err
	}
	if err := checkBatch("delete", del, n); err != nil {
		return nil, err
	}
	// Summaries must exist before the swap: the new manifest persists
	// exact summaries for affected shards and inherits the rest, and
	// the dirty propagation below intersects against them.
	if _, err := s.SourceSummary(); err != nil {
		return nil, err
	}

	// Group both sides by the destination's home shard, (dst,src)-
	// sorted — the delta file order and the order the linear merge
	// consumes. Tombstones are deduplicated: one removes all copies,
	// so repeats are redundant (and would break the zip's invariants).
	p := s.m.Shards
	insBy := groupByHome(s, ins, false)
	delBy := groupByHome(s, del, true)

	gen := s.m.Generation + 1
	newM := s.m.clone()
	if newM.BaseEdgeCounts == nil {
		// EdgeCounts diverges from the base files' counts from here on;
		// materialize the file-level counts first.
		newM.BaseEdgeCounts = append([]int64(nil), s.m.EdgeCounts...)
	}
	if newM.Deltas == nil {
		newM.Deltas = make([][]deltaRef, p)
	}
	if newM.DirtyGen == nil {
		newM.DirtyGen = make([]int64, p)
	}

	res := &BatchResult{Generation: gen}
	// Home ranges of sources whose out-degree may have changed — any
	// source named by the batch (deleting a missing edge over-marks;
	// that is only conservative).
	touched := make([]uint64, summaryWords(p))
	mark := func(es []graph.Edge) {
		for _, e := range es {
			j := s.Home(e.Src)
			touched[j/64] |= 1 << (j % 64)
		}
	}
	mark(ins)
	mark(del)

	contentDirty := make([]bool, p)
	for si := 0; si < p; si++ {
		bIns, bDel := insBy[si], delBy[si]
		if len(bIns.src) == 0 && len(bDel.src) == 0 {
			continue
		}
		// Merge in memory to learn the exact new live count and source
		// summary — the same zip loadShard will replay, so the counts
		// written here are exactly what reads reproduce.
		cur, _, err := s.loadShard(si)
		if err != nil {
			return nil, err
		}
		curS := append([]graph.VID(nil), cur.Src...)
		curD := append([]graph.VID(nil), cur.Dst...)
		sort.Sort(&dstSrcOrder{src: curS, dst: curD})
		mS, mD := mergeSortedPairs(curS, curD, bIns.src, bIns.dst)
		mS, mD = removeAllPairs(mS, mD, bDel.src, bDel.dst)

		name := deltaFileName(si, gen)
		if err := writeDeltaFile(filepath.Join(s.dir, name), bIns, bDel); err != nil {
			return nil, err
		}
		refs := append([]deltaRef(nil), newM.Deltas[si]...)
		newM.Deltas[si] = append(refs, deltaRef{
			File: name, Gen: gen, Ins: int64(len(bIns.src)), Del: int64(len(bDel.src)),
		})
		res.Inserted += int64(len(bIns.src))
		res.Deleted += int64(len(cur.Src)) + int64(len(bIns.src)) - int64(len(mS))
		newM.Edges += int64(len(mS)) - newM.EdgeCounts[si]
		newM.EdgeCounts[si] = int64(len(mS))
		sum := make([]uint64, summaryWords(p))
		for _, u := range mS {
			j := s.Home(u)
			sum[j/64] |= 1 << (j % 64)
		}
		newM.SrcSummary[si] = sum
		contentDirty[si] = true
	}

	// A shard is dirty if its content changed, or if it holds any edge
	// from a touched source range — the out-degree of such a source
	// changes the weight of every edge it feeds anywhere. The pre-batch
	// summaries are the right side to intersect: untouched shards'
	// summaries did not change, and content-changed shards are dirty
	// regardless.
	for j := 0; j < p; j++ {
		dirty := contentDirty[j]
		for w := 0; !dirty && w < len(touched); w++ {
			dirty = s.m.SrcSummary[j][w]&touched[w] != 0
		}
		if dirty {
			newM.DirtyGen[j] = gen
			res.Dirty = append(res.Dirty, j)
		}
	}

	newM.Generation = gen
	if err := writeManifest(s.dir, newM); err != nil {
		return nil, err
	}
	s.m = newM
	return res, nil
}

// checkBatch validates one side of a batch against the vertex count.
func checkBatch(op string, es []graph.Edge, n graph.VID) error {
	for i, e := range es {
		if e.Src >= n {
			return &BatchError{Op: op, Index: i, Field: "source", VID: e.Src, Hi: n}
		}
		if e.Dst >= n {
			return &BatchError{Op: op, Index: i, Field: "destination", VID: e.Dst, Hi: n}
		}
	}
	return nil
}

// pairList is one shard's half of a batch as parallel (dst,src)-sorted
// arrays — the shape the encoder and the linear merges consume.
type pairList struct {
	src, dst []graph.VID
}

// groupByHome splits a validated batch by the destination's home
// shard, sorting each group by (dst,src); dedup additionally collapses
// equal pairs (tombstones).
func groupByHome(s *Store, es []graph.Edge, dedup bool) map[int]pairList {
	out := make(map[int]pairList)
	for _, e := range es {
		si := s.Home(e.Dst)
		pl := out[si]
		pl.src = append(pl.src, e.Src)
		pl.dst = append(pl.dst, e.Dst)
		out[si] = pl
	}
	for si, pl := range out {
		sort.Sort(&dstSrcOrder{src: pl.src, dst: pl.dst})
		if dedup {
			k := 0
			for i := range pl.src {
				if i > 0 && pl.src[i] == pl.src[i-1] && pl.dst[i] == pl.dst[i-1] {
					continue
				}
				pl.src[k], pl.dst[k] = pl.src[i], pl.dst[i]
				k++
			}
			pl.src, pl.dst = pl.src[:k], pl.dst[:k]
		}
		out[si] = pl
	}
	return out
}

// clone deep-copies the manifest far enough that the per-shard rows
// ApplyBatch/Compact replace never alias the old generation's view
// (row slices are replaced wholesale, so copying the spines suffices).
func (m manifest) clone() manifest {
	m.Bounds = append([]graph.VID(nil), m.Bounds...)
	m.EdgeCounts = append([]int64(nil), m.EdgeCounts...)
	if m.SrcSummary != nil {
		m.SrcSummary = append([][]uint64(nil), m.SrcSummary...)
	}
	if m.BaseFiles != nil {
		m.BaseFiles = append([]string(nil), m.BaseFiles...)
	}
	if m.BaseEdgeCounts != nil {
		m.BaseEdgeCounts = append([]int64(nil), m.BaseEdgeCounts...)
	}
	if m.Deltas != nil {
		m.Deltas = append([][]deltaRef(nil), m.Deltas...)
	}
	if m.DirtyGen != nil {
		m.DirtyGen = append([]int64(nil), m.DirtyGen...)
	}
	return m
}

func deltaFileName(si int, gen int64) string {
	return fmt.Sprintf("delta-%04d-g%06d.bin", si, gen)
}

// writeDeltaFile encodes one delta shard — magic, uvarint insert and
// tombstone counts, then the two v2-encoded streams — under the same
// temp+fsync+rename discipline as base shard files.
func writeDeltaFile(path string, ins, del pairList) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = func() error {
		w := bufio.NewWriter(f)
		if _, err := w.Write(deltaMagic[:]); err != nil {
			return err
		}
		if err := putUvarint(w, uint64(len(ins.src))); err != nil {
			return err
		}
		if err := putUvarint(w, uint64(len(del.src))); err != nil {
			return err
		}
		if err := encodeV2Stream(w, ins.src, ins.dst); err != nil {
			return err
		}
		if err := encodeV2Stream(w, del.src, del.dst); err != nil {
			return err
		}
		return w.Flush()
	}()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readDeltaFile decodes one delta shard file with the base decoders'
// defensive posture: magic, declared counts against the manifest's
// ref, a minimum-size bound before any allocation, every ID validated
// in range, and no trailing bytes. Close errors fail the decode.
func readDeltaFile(path string, n int, lo, hi graph.VID, ref deltaRef) (ins, del pairList, size int64, err error) {
	f, err := aio.Open(path)
	if err != nil {
		return pairList{}, pairList{}, 0, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			ins, del, size, err = pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: close: %v", path, cerr)
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: %v", path, err)
	}
	br := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: delta magic: %v", path, err)
	}
	if magic != deltaMagic {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: not a delta shard file (magic %q)", path, magic[:])
	}
	insCount, err := binary.ReadUvarint(br)
	if err != nil {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: insert count varint: %v", path, err)
	}
	delCount, err := binary.ReadUvarint(br)
	if err != nil {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: tombstone count varint: %v", path, err)
	}
	// Bound both counts before any arithmetic or allocation sized by
	// them (the v2 decoder's maxCount guard, doubled for two streams),
	// then hold them to the manifest's declaration.
	if insCount > maxDeltaEdges || delCount > maxDeltaEdges ||
		int64(insCount) != ref.Ins || int64(delCount) != ref.Del {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: declares %d inserts / %d tombstones, manifest says %d / %d",
			path, insCount, delCount, ref.Ins, ref.Del)
	}
	// Every edge costs at least two stream bytes; the trailing-bytes
	// check below makes the size agreement exact.
	minSize := 4 + uvarintLen(insCount) + uvarintLen(delCount) + 2*int64(insCount) + 2*int64(delCount)
	if fi.Size() < minSize {
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: file is %d bytes, need at least %d for %d+%d edges",
			path, fi.Size(), minSize, insCount, delCount)
	}
	ins.src, ins.dst, err = decodeV2Stream(br, path, n, lo, hi, int64(insCount))
	if err != nil {
		return pairList{}, pairList{}, 0, err
	}
	del.src, del.dst, err = decodeV2Stream(br, path, n, lo, hi, int64(delCount))
	if err != nil {
		return pairList{}, pairList{}, 0, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: after %d edges: %v", path, insCount+delCount, err)
		}
		return pairList{}, pairList{}, 0, fmt.Errorf("shard: %s: trailing bytes after %d edges", path, insCount+delCount)
	}
	return ins, del, fi.Size(), nil
}

// mergeDeltas folds shard i's pending delta files into its decoded
// base COO. The base is (dst,src)-sorted once (v2 bases already are,
// making the sort a near-no-op; v1 bases arrive in CSR order), then
// each generation's inserts are zipped in and its tombstones filtered
// out — all linear passes over sorted streams. The result's
// per-destination source order is ascending, exactly what a
// from-scratch rebuild of the merged multiset decodes to, which is
// why every engine path is bit-identical over a mutated store.
func (s *Store) mergeDeltas(i int, base *graph.COO, size int64) (*graph.COO, int64, error) {
	src := append([]graph.VID(nil), base.Src...)
	dst := append([]graph.VID(nil), base.Dst...)
	sort.Sort(&dstSrcOrder{src: src, dst: dst})
	lo, hi := s.m.Bounds[i], s.m.Bounds[i+1]
	for _, ref := range s.m.Deltas[i] {
		ins, del, n, err := readDeltaFile(filepath.Join(s.dir, ref.File), s.m.Vertices, lo, hi, ref)
		if err != nil {
			return nil, 0, err
		}
		size += n
		src, dst = mergeSortedPairs(src, dst, ins.src, ins.dst)
		src, dst = removeAllPairs(src, dst, del.src, del.dst)
	}
	if int64(len(src)) != s.m.EdgeCounts[i] {
		return nil, 0, fmt.Errorf("shard: %s: %d edges after merging %d deltas, manifest says %d",
			s.basePath(i), len(src), len(s.m.Deltas[i]), s.m.EdgeCounts[i])
	}
	return &graph.COO{N: base.N, Src: src, Dst: dst}, size, nil
}

// pairLess orders (dst,src) pairs — the v2 on-disk order.
func pairLess(d1, s1, d2, s2 graph.VID) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return s1 < s2
}

// mergeSortedPairs zips two (dst,src)-sorted edge lists into one,
// preserving duplicates from both sides (parallel edges are legal).
func mergeSortedPairs(aS, aD, bS, bD []graph.VID) ([]graph.VID, []graph.VID) {
	if len(bS) == 0 {
		return aS, aD
	}
	outS := make([]graph.VID, 0, len(aS)+len(bS))
	outD := make([]graph.VID, 0, len(aS)+len(bS))
	i, j := 0, 0
	for i < len(aS) && j < len(bS) {
		if !pairLess(bD[j], bS[j], aD[i], aS[i]) {
			outS, outD = append(outS, aS[i]), append(outD, aD[i])
			i++
		} else {
			outS, outD = append(outS, bS[j]), append(outD, bD[j])
			j++
		}
	}
	outS = append(append(outS, aS[i:]...), bS[j:]...)
	outD = append(append(outD, aD[i:]...), bD[j:]...)
	return outS, outD
}

// removeAllPairs filters, in place, every copy of every (dst,src)
// pair named in the sorted tombstone list out of the sorted edge
// list. A tombstone matching nothing is a no-op (deleting a missing
// edge is legal); the cursor does not advance on a match, so runs of
// parallel copies all fall to one tombstone.
func removeAllPairs(aS, aD, tS, tD []graph.VID) ([]graph.VID, []graph.VID) {
	if len(tS) == 0 {
		return aS, aD
	}
	k, j := 0, 0
	for i := 0; i < len(aS); i++ {
		for j < len(tS) && pairLess(tD[j], tS[j], aD[i], aS[i]) {
			j++
		}
		if j < len(tS) && tD[j] == aD[i] && tS[j] == aS[i] {
			continue
		}
		aS[k], aD[k] = aS[i], aD[i]
		k++
	}
	return aS[:k], aD[:k]
}
