package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hilbert"
	"repro/internal/trace"
)

// countingOp returns an op that counts edge applications and activates
// every destination once.
func countingOp(n int) (api.EdgeOp, *int64) {
	var edges int64
	seen := make([]int32, n)
	return api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			atomic.AddInt64(&edges, 1)
			return atomic.CompareAndSwapInt32(&seen[v], 0, 1)
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			atomic.AddInt64(&edges, 1)
			return atomic.CompareAndSwapInt32(&seen[v], 0, 1)
		},
	}, &edges
}

func TestEdgeMapVisitsEveryActiveEdgeOnce(t *testing.T) {
	g := gen.TinySocial()
	for _, opts := range []Options{
		{},
		{Layout: LayoutCOO},
		{Layout: LayoutCOO, ForceAtomics: true},
		{Layout: LayoutCSC},
		{Layout: LayoutCSR},
		{Partitions: 4},
		{Threads: 1},
	} {
		e := NewEngine(g, opts)
		op, edges := countingOp(g.NumVertices())
		e.EdgeMap(frontier.All(g), op, api.DirAuto)
		if *edges != g.NumEdges() {
			t.Fatalf("opts %+v: applied %d edges, want %d", opts, *edges, g.NumEdges())
		}
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngine(g, Options{})
	op, edges := countingOp(g.NumVertices())
	out := e.EdgeMap(frontier.New(g.NumVertices()), op, api.DirAuto)
	if !out.IsEmpty() || *edges != 0 {
		t.Fatal("empty frontier traversed")
	}
}

func TestEdgeMapCondFilters(t *testing.T) {
	g := gen.Star(100)
	e := NewEngine(g, Options{})
	var applied int64
	op := api.EdgeOp{
		Cond:         func(v graph.VID) bool { return v%2 == 0 },
		Update:       func(u, v graph.VID) bool { atomic.AddInt64(&applied, 1); return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&applied, 1); return true },
	}
	out := e.EdgeMap(frontier.FromVertex(g, 0), op, api.DirAuto)
	// Destinations 2,4,...,98 pass Cond (vertex 0 has no in-edge).
	if out.Count() != 49 {
		t.Fatalf("next frontier %d, want 49", out.Count())
	}
	if applied != 49 {
		t.Fatalf("applied %d, want 49", applied)
	}
}

func TestNextFrontierStatsAccurate(t *testing.T) {
	g := gen.TinySocial()
	for _, layout := range []Layout{LayoutAuto, LayoutCOO, LayoutCSC, LayoutCSR} {
		e := NewEngine(g, Options{Layout: layout})
		op, _ := countingOp(g.NumVertices())
		out := e.EdgeMap(frontier.All(g), op, api.DirAuto)
		var wantCount, wantDeg int64
		list := out.List()
		wantCount = int64(len(list))
		for _, v := range list {
			wantDeg += g.OutDegree(v)
		}
		if out.Count() != wantCount {
			t.Fatalf("layout %v: count %d vs list %d", layout, out.Count(), wantCount)
		}
		if out.OutDegree(g) != wantDeg {
			t.Fatalf("layout %v: outdeg %d vs recomputed %d", layout, out.OutDegree(g), wantDeg)
		}
	}
}

func TestAutoDecisionUsesAllThreeClasses(t *testing.T) {
	// A BFS-like workload on a social graph passes through sparse,
	// medium and dense frontiers; the telemetry must see all three.
	g := gen.TinySocial()
	e := NewEngine(g, Options{})
	parents := make([]int32, g.NumVertices())
	for i := range parents {
		parents[i] = -1
	}
	src := graph.VID(0)
	var maxV graph.VID
	var maxD int64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VID(v)); d > maxD {
			maxD, maxV = d, graph.VID(v)
		}
	}
	src = maxV
	parents[src] = int32(src)
	op := api.EdgeOp{
		Cond: func(v graph.VID) bool { return atomic.LoadInt32(&parents[v]) < 0 },
		Update: func(u, v graph.VID) bool {
			return atomic.CompareAndSwapInt32(&parents[v], -1, int32(u))
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return atomic.CompareAndSwapInt32(&parents[v], -1, int32(u))
		},
	}
	f := frontier.FromVertex(g, src)
	for !f.IsEmpty() {
		f = e.EdgeMap(f, op, api.DirAuto)
	}
	tel := e.Telemetry()
	if tel.SparseIters == 0 || tel.MediumIters == 0 || tel.DenseIters == 0 {
		t.Fatalf("expected all three classes, got %s", tel.String())
	}
	if tel.Total() != tel.SparseIters+tel.MediumIters+tel.DenseIters {
		t.Fatal("telemetry total inconsistent")
	}
}

func TestForcedLayoutTelemetry(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngine(g, Options{Layout: LayoutCSC})
	op, _ := countingOp(g.NumVertices())
	e.EdgeMap(frontier.All(g), op, api.DirAuto)
	tel := e.Telemetry()
	if tel.MediumIters != 1 || tel.Total() != 1 {
		t.Fatalf("forced CSC telemetry: %s", tel.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngine(g, Options{})
	o := e.Options()
	if o.Partitions%o.Topology.Domains != 0 {
		t.Fatalf("partitions %d not a multiple of domains %d", o.Partitions, o.Topology.Domains)
	}
	if o.SparseDiv != 20 || o.DenseDiv != 2 {
		t.Fatalf("thresholds %d/%d", o.SparseDiv, o.DenseDiv)
	}
	if e.Name() != "GG-v2" {
		t.Fatal("name")
	}
	if e.Graph() != g {
		t.Fatal("graph accessor")
	}
}

func TestCustomThresholds(t *testing.T) {
	g := gen.TinySocial()
	// With DenseDiv enormous, everything classifies at most medium; with
	// SparseDiv = 1 nothing is sparse.
	e := NewEngine(g, Options{SparseDiv: 1000000, DenseDiv: 1000000})
	op, _ := countingOp(g.NumVertices())
	e.EdgeMap(frontier.FromVertex(g, 0), op, api.DirAuto)
	if tel := e.Telemetry(); tel.DenseIters != 1 {
		t.Fatalf("tiny frontier with huge divisors should be dense: %s", tel.String())
	}
}

func TestEdgeOrderOptionPreservesResults(t *testing.T) {
	g := gen.TinySocial()
	var outs []int64
	for _, ord := range []hilbert.EdgeOrder{hilbert.BySource, hilbert.ByDestination, hilbert.ByHilbert} {
		e := NewEngine(g, Options{Layout: LayoutCOO, EdgeOrder: ord})
		op, edges := countingOp(g.NumVertices())
		out := e.EdgeMap(frontier.All(g), op, api.DirAuto)
		if *edges != g.NumEdges() {
			t.Fatalf("order %v lost edges", ord)
		}
		outs = append(outs, out.Count())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("edge order changed next frontier: %v", outs)
	}
}

func TestVertexMapAndFilter(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngine(g, Options{})
	var visits int64
	e.VertexMap(frontier.All(g), func(graph.VID) { atomic.AddInt64(&visits, 1) })
	if visits != int64(g.NumVertices()) {
		t.Fatalf("visited %d, want %d", visits, g.NumVertices())
	}
	f := e.VertexFilter(frontier.All(g), func(v graph.VID) bool { return v < 10 })
	if f.Count() != 10 {
		t.Fatalf("filtered %d, want 10", f.Count())
	}
	var wantDeg int64
	for v := graph.VID(0); v < 10; v++ {
		wantDeg += g.OutDegree(v)
	}
	if f.OutDegree(g) != wantDeg {
		t.Fatalf("filter stats: %d vs %d", f.OutDegree(g), wantDeg)
	}
}

func TestLayoutStrings(t *testing.T) {
	if LayoutAuto.String() != "auto" || LayoutCSR.String() != "CSR" ||
		LayoutCSC.String() != "CSC" || LayoutCOO.String() != "COO" {
		t.Fatal("layout strings")
	}
}

func TestTopologyRoundingOfPartitions(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngine(g, Options{Partitions: 5})
	if e.Options().Partitions != 8 {
		t.Fatalf("partitions = %d, want 8 (rounded to 4-domain multiple)", e.Options().Partitions)
	}
}

// Concurrent EdgeMap calls on one engine must not interfere: layouts are
// read-only after construction and all per-call state is local.
func TestConcurrentEdgeMapsSafe(t *testing.T) {
	g := gen.TinySocial()
	e := NewEngine(g, Options{})
	done := make(chan int64, 4)
	for w := 0; w < 4; w++ {
		go func() {
			op, edges := countingOp(g.NumVertices())
			e.EdgeMap(frontier.All(g), op, api.DirAuto)
			done <- *edges
		}()
	}
	for w := 0; w < 4; w++ {
		if got := <-done; got != g.NumEdges() {
			t.Fatalf("concurrent EdgeMap applied %d edges, want %d", got, g.NumEdges())
		}
	}
}

func TestTraceOptionRecordsEvents(t *testing.T) {
	g := gen.TinySocial()
	rec := trace.New()
	e := NewEngine(g, Options{Trace: rec})
	op, _ := countingOp(g.NumVertices())
	e.EdgeMap(frontier.All(g), op, api.DirAuto)
	e.EdgeMap(frontier.FromVertex(g, 0), op, api.DirAuto)
	if rec.Len() != 2 {
		t.Fatalf("trace events = %d, want 2", rec.Len())
	}
	ev := rec.Events()
	if ev[0].FrontierSz != int64(g.NumVertices()) {
		t.Fatalf("event 0 frontier = %d", ev[0].FrontierSz)
	}
	if ev[0].Class != "dense" {
		t.Fatalf("event 0 class = %q", ev[0].Class)
	}
	if ev[1].Duration <= 0 {
		t.Fatal("event 1 missing duration")
	}
}

func TestTraceForcedLayoutLabels(t *testing.T) {
	g := gen.TinySocial()
	rec := trace.New()
	e := NewEngine(g, Options{Trace: rec, Layout: LayoutCOO})
	op, _ := countingOp(g.NumVertices())
	e.EdgeMap(frontier.All(g), op, api.DirAuto)
	if ev := rec.Events(); len(ev) != 1 || ev[0].Class != "forced-COO" {
		t.Fatalf("events: %+v", rec.Events())
	}
}
