package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestAlgorithm1OnPaperExample(t *testing.T) {
	// Figure 1: 6 vertices, 14 edges, 2 partitions by destination with
	// edge balancing splits as {0,1,2,3} (7 in-edges) and {4,5} (7).
	g := gen.PaperExample()
	pt := ByDestinationUnaligned(g, 2, BalanceEdges)
	if pt.Bounds[1] != 4 {
		t.Fatalf("cut at %d, want 4 (bounds %v)", pt.Bounds[1], pt.Bounds)
	}
	counts := pt.InEdgeCounts(g)
	if counts[0] != 7 || counts[1] != 7 {
		t.Fatalf("edge counts %v, want [7 7]", counts)
	}
}

func TestReplicationFactorPaperExample(t *testing.T) {
	// §II.D: the average replication factor of the Figure 1 partitioned
	// CSR is 7/6.
	g := gen.PaperExample()
	pt := ByDestinationUnaligned(g, 2, BalanceEdges)
	r := ReplicationFactor(g, pt)
	if math.Abs(r-7.0/6.0) > 1e-12 {
		t.Fatalf("replication factor %v, want 7/6", r)
	}
}

func TestReplicationMatchesBuiltPCSR(t *testing.T) {
	g := gen.TinySocial()
	for _, p := range []int{2, 4, 16, 64} {
		pt := ByDestination(g, p, BalanceEdges)
		want := ReplicationFactor(g, pt)
		pcsr := NewPCSR(g, pt)
		got := float64(pcsr.TotalReplicas()) / float64(g.NumVertices())
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("P=%d: analytic %v vs built %v", p, want, got)
		}
	}
}

func TestReplicationMonotoneAndBounded(t *testing.T) {
	g := gen.TinySocial()
	prev := 0.0
	worst := WorstCaseReplicationFactor(g)
	for _, p := range []int{1, 2, 4, 8, 16, 64, 256} {
		pt := ByDestination(g, p, BalanceEdges)
		r := ReplicationFactor(g, pt)
		if r < 1 && g.NumEdges() > 0 {
			// Vertices with zero out-degree contribute 0 replicas, so r
			// can dip below 1 only if many exist; TinySocial has hubs so
			// expect >= prev regardless.
			t.Logf("replication %v below 1 at P=%d", r, p)
		}
		if r+1e-9 < prev {
			t.Fatalf("replication not monotone: %v after %v at P=%d", r, prev, p)
		}
		if r > worst+1e-9 {
			t.Fatalf("replication %v exceeds worst case %v", r, worst)
		}
		prev = r
	}
}

func TestPartitioningInvariants(t *testing.T) {
	g := gen.TinySocial()
	n := g.NumVertices()
	for _, p := range []int{1, 3, 4, 7, 48, 500, 5000} {
		for _, crit := range []Criterion{BalanceEdges, BalanceVertices} {
			pt := ByDestination(g, p, crit)
			if err := pt.Validate(n); err != nil {
				t.Fatalf("P=%d crit=%v: %v", p, crit, err)
			}
			// Every vertex's home agrees with its range.
			for v := 0; v < n; v += 13 {
				h := pt.Home(graph.VID(v))
				lo, hi := pt.Range(h)
				if graph.VID(v) < lo || graph.VID(v) >= hi {
					t.Fatalf("home(%d)=%d but range [%d,%d)", v, h, lo, hi)
				}
			}
			// Aligned boundaries (except the final bound n).
			for i := 1; i < pt.P; i++ {
				b := int(pt.Bounds[i])
				if b != n && b%BoundaryAlign != 0 {
					t.Fatalf("bound %d not aligned", b)
				}
			}
		}
	}
}

// Property: partitioning by destination conserves edges and confines each
// vertex's in-edges to a single partition, on random graphs.
func TestPCOOEdgeConservationProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		const n = 192
		p := int(pRaw%8) + 1
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{Src: graph.VID(raw[i] % n), Dst: graph.VID(raw[i+1] % n)})
		}
		g := graph.FromEdges(n, edges)
		pt := ByDestination(g, p, BalanceEdges)
		pcoo := NewPCOO(g, pt)
		if pcoo.NumEdges() != g.NumEdges() {
			return false
		}
		for i, part := range pcoo.Parts {
			lo, hi := pt.Range(i)
			for _, d := range part.Dst {
				if d < lo || d >= hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPCSREdgeConservation(t *testing.T) {
	g := gen.TinySocial()
	for _, p := range []int{1, 4, 48} {
		pt := ByDestination(g, p, BalanceEdges)
		pcsr := NewPCSR(g, pt)
		if pcsr.NumEdges() != g.NumEdges() {
			t.Fatalf("P=%d: %d edges, want %d", p, pcsr.NumEdges(), g.NumEdges())
		}
		// Rebuild the edge multiset and compare.
		var rebuilt []graph.Edge
		for _, part := range pcsr.Parts {
			for k, u := range part.Verts {
				for _, v := range part.Dst[part.Off[k]:part.Off[k+1]] {
					rebuilt = append(rebuilt, graph.Edge{Src: u, Dst: v})
				}
			}
		}
		graph.SortEdges(rebuilt)
		orig := g.Edges()
		graph.SortEdges(orig)
		if len(rebuilt) != len(orig) {
			t.Fatalf("P=%d: rebuilt %d edges, want %d", p, len(rebuilt), len(orig))
		}
		for i := range orig {
			if rebuilt[i] != orig[i] {
				t.Fatalf("P=%d: edge %d differs: %v vs %v", p, i, rebuilt[i], orig[i])
			}
		}
	}
}

func TestPCSRDestinationsInRange(t *testing.T) {
	g := gen.TinySocial()
	pt := ByDestination(g, 16, BalanceEdges)
	pcsr := NewPCSR(g, pt)
	for i, part := range pcsr.Parts {
		lo, hi := pt.Range(i)
		for _, v := range part.Dst {
			if v < lo || v >= hi {
				t.Fatalf("partition %d: destination %d outside [%d,%d)", i, v, lo, hi)
			}
		}
		// Verts strictly ascending.
		for k := 1; k < len(part.Verts); k++ {
			if part.Verts[k-1] >= part.Verts[k] {
				t.Fatalf("partition %d: Verts not ascending", i)
			}
		}
	}
}

func TestBySourcePartitioning(t *testing.T) {
	g := gen.TinySocial()
	pt := BySource(g, 8, BalanceEdges)
	if err := pt.Validate(g.NumVertices()); err != nil {
		t.Fatal(err)
	}
	counts := pt.OutEdgeCounts(g)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != g.NumEdges() {
		t.Fatalf("out-edge counts sum %d, want %d", sum, g.NumEdges())
	}
}

func TestEdgeBalanceQuality(t *testing.T) {
	g := gen.Preset("livejournal-sm")
	pt := ByDestination(g, 48, BalanceEdges)
	imb := Imbalance(pt.InEdgeCounts(g))
	// Perfect balance is 1.0; hubs and 64-alignment allow some skew, but
	// edge balancing should stay far from the vertex-balanced skew.
	vpt := ByDestination(g, 48, BalanceVertices)
	vimb := Imbalance(vpt.InEdgeCounts(g))
	if imb >= vimb {
		t.Fatalf("edge balancing (%.2f) should beat vertex balancing (%.2f)", imb, vimb)
	}
}

func TestStorageModelShapes(t *testing.T) {
	g := gen.TinySocial()
	ps := []int{1, 4, 16, 64, 256}
	curve := Curve(g, ps)
	for i := 1; i < len(curve); i++ {
		if curve[i].COO != curve[0].COO {
			t.Fatal("COO storage must be independent of P")
		}
		if curve[i].CSC != curve[0].CSC {
			t.Fatal("CSC storage must be independent of P")
		}
		if curve[i].CSRUnpruned <= curve[i-1].CSRUnpruned {
			t.Fatal("unpruned CSR must grow linearly with P")
		}
		if curve[i].CSRPruned+1 < curve[i-1].CSRPruned {
			t.Fatal("pruned CSR must not shrink with P")
		}
	}
	// COO = 2|E|bv exactly.
	if curve[0].COO != 2*g.NumEdges()*DefaultBv {
		t.Fatalf("COO bytes %d", curve[0].COO)
	}
}

func TestStorageModelMatchesBuiltLayouts(t *testing.T) {
	g := gen.TinySocial()
	pt := ByDestination(g, 16, BalanceEdges)
	pcoo := NewPCOO(g, pt)
	if got := MeasuredPCOOBytes(pcoo); got != 2*g.NumEdges()*DefaultBv {
		t.Fatalf("measured COO bytes %d", got)
	}
	pcsr := NewPCSR(g, pt)
	measured := MeasuredPCSRBytes(pcsr)
	model := Model(g, 16, DefaultBe, DefaultBv).CSRPruned
	// The model omits the +1 offset slot per replica; allow small slack.
	ratio := float64(measured) / float64(model)
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("measured CSR %d vs model %d (ratio %.2f)", measured, model, ratio)
	}
}

func TestImbalance(t *testing.T) {
	if Imbalance(nil) != 1 {
		t.Fatal("empty loads")
	}
	if Imbalance([]int64{5, 5, 5}) != 1 {
		t.Fatal("uniform loads")
	}
	if got := Imbalance([]int64{10, 0, 2}); got != 10/4.0 {
		t.Fatalf("imbalance = %v", got)
	}
}

func TestReplicationCurve(t *testing.T) {
	g := gen.TinySocial()
	ps := []int{2, 8, 32}
	c := ReplicationCurve(g, ps, BalanceEdges)
	if len(c) != 3 {
		t.Fatal("curve length")
	}
	if c[0] > c[1] || c[1] > c[2] {
		t.Fatalf("curve not monotone: %v", c)
	}
}

func TestMorePartitionsThanVertices(t *testing.T) {
	g := gen.Chain(10)
	pt := ByDestination(g, 100, BalanceEdges)
	if err := pt.Validate(10); err != nil {
		t.Fatal(err)
	}
	pcoo := NewPCOO(g, pt)
	if pcoo.NumEdges() != g.NumEdges() {
		t.Fatal("edges lost with P > n")
	}
}

// Property: ByDestination with edge balancing never cuts worse than the
// naive equal-vertex split on in-edge load, for random skewed graphs.
func TestEdgeBalanceNeverWorseProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		const n = 256
		p := int(pRaw%4)*4 + 4 // 4..16
		edges := make([]graph.Edge, 0, len(raw))
		for i := 0; i+1 < len(raw); i += 2 {
			// Skew destinations toward low IDs to stress the cut logic.
			dst := graph.VID(int(raw[i+1]) % (int(raw[i])%n + 1))
			edges = append(edges, graph.Edge{Src: graph.VID(raw[i] % n), Dst: dst})
		}
		if len(edges) == 0 {
			return true
		}
		g := graph.FromEdges(n, edges)
		eb := Imbalance(ByDestination(g, p, BalanceEdges).InEdgeCounts(g))
		vb := Imbalance(ByDestination(g, p, BalanceVertices).InEdgeCounts(g))
		// Allow slack: 64-alignment can cost a little on tiny graphs.
		return eb <= vb*1.5+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHomeBinarySearchMatchesLinear(t *testing.T) {
	g := gen.TinySocial()
	pt := ByDestination(g, 48, BalanceEdges)
	for v := 0; v < g.NumVertices(); v++ {
		h := pt.Home(graph.VID(v))
		linear := -1
		for i := 0; i < pt.P; i++ {
			lo, hi := pt.Range(i)
			if graph.VID(v) >= lo && graph.VID(v) < hi {
				linear = i
				break
			}
		}
		if h != linear {
			t.Fatalf("Home(%d) = %d, linear scan says %d", v, h, linear)
		}
	}
}
