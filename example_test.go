package repro_test

import (
	"fmt"

	"repro"
)

// ExampleNewEngine demonstrates the minimal end-to-end flow: build a
// graph, build the engine, run an algorithm.
func ExampleNewEngine() {
	// A 16-vertex directed cycle.
	edges := make([]repro.Edge, 16)
	for i := range edges {
		edges[i] = repro.Edge{Src: repro.VID(i), Dst: repro.VID((i + 1) % 16)}
	}
	g := repro.FromEdges(16, edges)
	eng := repro.NewEngine(g, repro.Options{Threads: 2})

	parents := repro.BFS(eng, 0)
	reached := 0
	for _, p := range parents {
		if p >= 0 {
			reached++
		}
	}
	fmt.Println("reached:", reached)
	// Output: reached: 16
}

// ExampleConnectedComponents shows that disconnected pieces get distinct
// labels.
func ExampleConnectedComponents() {
	g := repro.FromEdges(4, []repro.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	})
	labels := repro.ConnectedComponents(repro.NewEngine(g, repro.Options{Threads: 1}))
	fmt.Println(labels[0] == labels[1], labels[2] == labels[3], labels[0] == labels[2])
	// Output: true true false
}

// ExampleShortestPaths runs weighted SSSP on a two-hop path.
func ExampleShortestPaths() {
	g := repro.FromEdges(3, []repro.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	dist := repro.ShortestPaths(repro.NewEngine(g, repro.Options{Threads: 1}), 0)
	want := repro.WeightOf(0, 1) + repro.WeightOf(1, 2)
	fmt.Println(dist[0] == 0, dist[2] == want)
	// Output: true true
}

// ExampleNewLigra runs the same computation on a baseline engine.
func ExampleNewLigra() {
	g := repro.FromEdges(3, []repro.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	lig := repro.NewLigra(g, 1)
	parents := repro.BFS(lig, 0)
	fmt.Println(parents[1], parents[2])
	// Output: 0 0
}
