package repro

// Benchmark harness: one benchmark family per table/figure of the
// paper's evaluation (§IV). These are the quick, go-test-native versions
// of the experiments; cmd/experiments runs the full-size sweeps and
// prints the paper-style rows. Benchmarks share lazily-built graphs so
// `go test -bench=.` stays tractable.

import (
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gas"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hilbert"
	"repro/internal/locality"
	"repro/internal/partition"
	"repro/internal/shard"
)

var (
	benchGraphOnce sync.Once
	benchG         *graph.Graph // social-network shaped, ~1M edges
	benchRoad      *graph.Graph
)

func benchGraphs() (*graph.Graph, *graph.Graph) {
	benchGraphOnce.Do(func() {
		benchG = gen.RMAT(16, 16, 0.57, 0.19, 0.19, 42)
		benchRoad = gen.RoadGrid(256, 256, 47)
	})
	return benchG, benchRoad
}

// BenchmarkTable1_BuildGraphs times dataset construction (generator +
// CSR/CSC build), the substrate cost behind Table I.
func BenchmarkTable1_BuildGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.RMAT(12, 16, 0.57, 0.19, 0.19, uint64(i+1))
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkFig2_ReuseDistance times the reuse-distance analysis of
// next-frontier updates at a high partition count.
func BenchmarkFig2_ReuseDistance(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra := locality.NewReuseAnalyzer(int(g.NumEdges()))
		locality.ReplayNextFrontierCOO(g, 192, locality.ConsumerFunc(func(a uint64) { ra.Access(a) }))
	}
}

// BenchmarkFig3_ReplicationFactor times the replication-factor analysis
// across the sweep.
func BenchmarkFig3_ReplicationFactor(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []int{4, 48, 384} {
			pt := partition.ByDestination(g, p, partition.BalanceEdges)
			partition.ReplicationFactor(g, pt)
		}
	}
}

// BenchmarkFig4_StorageModel times the storage model evaluation.
func BenchmarkFig4_StorageModel(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Curve(g, []int{4, 48, 384})
	}
}

// BenchmarkFig5 runs every algorithm × layout configuration at the
// paper's productive partition count (Figures 5 and 6).
func BenchmarkFig5(b *testing.B) {
	g, _ := benchGraphs()
	rg := g.Reverse()
	src := algorithms.SourceVertex(g)
	for _, lc := range bench.LayoutConfigs() {
		opts := lc.Opts
		opts.Partitions = 192
		sys := core.NewEngine(g, opts)
		rsys := core.NewEngine(rg, opts)
		for _, spec := range algorithms.AllSpecs() {
			spec := spec
			b.Run(spec.Code+"/"+lc.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec.Run(sys, rsys, src)
				}
				b.SetBytes(g.NumEdges() * 8)
			})
		}
	}
}

// BenchmarkFig6_PartitionSweep sweeps the partition count for BFS on the
// road graph (the small-graph regime of Figure 6).
func BenchmarkFig6_PartitionSweep(b *testing.B) {
	_, road := benchGraphs()
	src := algorithms.SourceVertex(road)
	for _, p := range []int{4, 48, 192, 384} {
		sys := core.NewEngine(road, core.Options{Partitions: p})
		b.Run(bname("P", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algorithms.BFS(sys, src)
			}
		})
	}
}

// BenchmarkFig7_EdgeOrder compares the three COO edge sort orders for a
// PR iteration (Figure 7).
func BenchmarkFig7_EdgeOrder(b *testing.B) {
	g, _ := benchGraphs()
	for _, ord := range []hilbert.EdgeOrder{hilbert.BySource, hilbert.ByHilbert, hilbert.ByDestination} {
		sys := core.NewEngine(g, core.Options{Layout: core.LayoutCOO, Partitions: 192, EdgeOrder: ord})
		b.Run(ord.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algorithms.PR(sys, 3)
			}
		})
	}
}

// BenchmarkFig8_MPKISimulation times the cache simulation behind the
// MPKI curves.
func BenchmarkFig8_MPKISimulation(b *testing.B) {
	g, _ := benchGraphs()
	cfg := locality.AdaptiveLLC(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		locality.MeasureMPKI(g, locality.KindCOOForward, 1, []int{48}, cfg)
	}
}

// BenchmarkFig9_Systems compares the four systems on PRDelta, the
// paper's headline speedup (Figure 9).
func BenchmarkFig9_Systems(b *testing.B) {
	g, _ := benchGraphs()
	for _, name := range bench.SystemNames() {
		sys := bench.BuildSystem(name, g, 192, 0)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algorithms.PRDelta(sys, 60)
			}
			b.SetBytes(g.NumEdges() * 8)
		})
	}
}

// BenchmarkFig10_Scalability runs PRDelta on GG-v2 across thread counts
// (Figure 10).
func BenchmarkFig10_Scalability(b *testing.B) {
	g, _ := benchGraphs()
	for _, th := range []int{1, 2, 4, 8} {
		sys := core.NewEngine(g, core.Options{Partitions: 192, Threads: th})
		b.Run(bname("T", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algorithms.PRDelta(sys, 60)
			}
		})
	}
}

// BenchmarkAtomicsAblation isolates the cost of hardware atomics in the
// dense COO path (§III.C: the paper reports 6.1%–23.7%).
func BenchmarkAtomicsAblation(b *testing.B) {
	g, _ := benchGraphs()
	for _, cfg := range []struct {
		name  string
		force bool
	}{{"COO_na", false}, {"COO_a", true}} {
		sys := core.NewEngine(g, core.Options{Layout: core.LayoutCOO, Partitions: 192, ForceAtomics: cfg.force})
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algorithms.PR(sys, 3)
			}
			b.SetBytes(3 * g.NumEdges() * 8)
		})
	}
}

// BenchmarkAblationReorder times the reorder-vs-partitioning ablation.
func BenchmarkAblationReorder(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.ReorderAblation("bench", g, []int{48})
	}
}

// BenchmarkAblationBySource times the by-source locality contrast.
func BenchmarkAblationBySource(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.BySourceAblation("bench", g, []int{48})
	}
}

// BenchmarkEngineConstruction times layout building (3 copies).
func BenchmarkEngineConstruction(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(g, core.Options{Partitions: 192})
	}
}

func bname(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + string(buf[i:])
}

// BenchmarkExtendedAlgorithms covers the beyond-Table-II applications on
// a symmetric graph.
func BenchmarkExtendedAlgorithms(b *testing.B) {
	g := gen.Symmetrise(gen.PowerLaw(1<<13, 1<<17, 2.3, 11))
	sys := core.NewEngine(g, core.Options{})
	b.Run("KCore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algorithms.KCore(sys)
		}
	})
	b.Run("MIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algorithms.MIS(sys)
		}
	})
	b.Run("Radii", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algorithms.Radii(sys)
		}
	})
	b.Run("Coloring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algorithms.Coloring(sys)
		}
	})
}

// BenchmarkShardSweep times the out-of-core substrate's disk sweep,
// one sub-benchmark per on-disk format. Throughput is priced at the
// store's actual shard-file bytes, so the v1/v2 MB/s columns are the
// raw-decode and varint-decode disk bandwidths respectively, and the
// v1 column stays comparable with pre-v2 runs.
func BenchmarkShardSweep(b *testing.B) {
	g, _ := benchGraphs()
	for _, format := range []shard.Format{shard.FormatV1, shard.FormatV2} {
		b.Run(format.String(), func(b *testing.B) {
			st, err := shard.Create(b.TempDir(), g, shard.WriteOptions{Partitions: 24, Format: format})
			if err != nil {
				b.Fatal(err)
			}
			disk, err := st.DiskBytes()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var edges int64
				if err := st.Sweep(func(u, v graph.VID) { edges++ }); err != nil {
					b.Fatal(err)
				}
				if edges != g.NumEdges() {
					b.Fatal("edge count mismatch")
				}
			}
			b.SetBytes(disk)
		})
	}
}

// BenchmarkGASPageRank times the gather-apply-scatter adapter.
func BenchmarkGASPageRank(b *testing.B) {
	g, _ := benchGraphs()
	sys := core.NewEngine(g, core.Options{})
	prog := gas.PageRankProgram(g, 1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gas.Run(sys, prog)
	}
}
