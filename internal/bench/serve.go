package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/shard"
)

// ServeReplayResult is the many-client daemon replay: N concurrent
// clients each drive R rounds of a fixed query mix (PageRank, BFS, CC)
// against one gserve core over real HTTP, all sessions sharing the
// daemon's shard cache, I/O budget and co-scheduled passes. Latency is
// measured per query, submit to completion. The solo column prices the
// same trace with every query on a private daemon — what the replay
// would have cost with no sharing — and BitIdentical reports whether
// every served digest matched its solo counterpart, which the engine's
// determinism argument says must always hold.
type ServeReplayResult struct {
	Clients int
	Rounds  int
	Queries int // completed queries (Clients × Rounds × mix size)

	P50 float64 // seconds, median query latency
	P99 float64 // seconds, 99th-percentile query latency
	QPS float64 // completed queries per second of replay wall time

	ServedLoads  int64 // shard loads the shared daemon performed for the whole trace
	SoloLoads    int64 // shard loads the trace costs with a private daemon per query
	BitIdentical bool  // every served digest == its solo digest
}

func (r ServeReplayResult) String() string {
	return fmt.Sprintf(
		"serve replay: %d clients × %d rounds = %d queries | p50 %.1fms p99 %.1fms %.0f qps | loads %d shared vs %d solo (%.1fx) | bit-identical %v",
		r.Clients, r.Rounds, r.Queries,
		r.P50*1e3, r.P99*1e3, r.QPS,
		r.ServedLoads, r.SoloLoads, float64(r.SoloLoads)/float64(max64(r.ServedLoads, 1)),
		r.BitIdentical)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// replayMix is the fixed per-round query trace each client replays.
var replayMix = []serve.QuerySpec{
	{Store: "replay", Algo: "pagerank", Iters: 5},
	{Store: "replay", Algo: "bfs", Src: 1},
	{Store: "replay", Algo: "cc"},
}

// ReplayServe shards g into p partitions in a temporary store, boots
// the daemon core behind a real HTTP server, and replays the query mix
// from clients concurrent clients for rounds rounds each.
func ReplayServe(g *graph.Graph, p, clients, rounds int) (ServeReplayResult, error) {
	dir, err := os.MkdirTemp("", "gserve-replay-")
	if err != nil {
		return ServeReplayResult{}, err
	}
	defer os.RemoveAll(dir)
	if _, err := shard.Create(dir, g, shard.WriteOptions{Partitions: p}); err != nil {
		return ServeReplayResult{}, err
	}

	// Solo baseline: each distinct query on its own private daemon.
	soloDigest := make(map[string]string, len(replayMix))
	soloLoadsPer := make(map[string]int64, len(replayMix))
	for _, spec := range replayMix {
		s := serve.New(serve.Config{})
		if err := s.OpenStore("replay", dir); err != nil {
			return ServeReplayResult{}, err
		}
		ts := httptest.NewServer(s.Handler())
		info, err := runQuery(ts.Client(), ts.URL, spec)
		ts.Close()
		if err != nil {
			return ServeReplayResult{}, fmt.Errorf("solo %s: %w", spec.Algo, err)
		}
		soloDigest[spec.Algo] = info.Digest
		soloLoadsPer[spec.Algo] = info.Loads
	}

	s := serve.New(serve.Config{})
	if err := s.OpenStore("replay", dir); err != nil {
		return ServeReplayResult{}, err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res := ServeReplayResult{Clients: clients, Rounds: rounds, BitIdentical: true}
	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var mu sync.Mutex // guards res.BitIdentical
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for round := 0; round < rounds; round++ {
				// Stagger each client's starting point in the mix so the
				// daemon sees heterogeneous concurrent queries, the regime
				// co-scheduling and shared residency exist for.
				for q := 0; q < len(replayMix); q++ {
					spec := replayMix[(c+q)%len(replayMix)]
					t0 := time.Now()
					info, err := runQuery(client, ts.URL, spec)
					if err != nil {
						errs[c] = fmt.Errorf("client %d %s: %w", c, spec.Algo, err)
						return
					}
					latencies[c] = append(latencies[c], time.Since(t0).Seconds())
					if info.Digest != soloDigest[spec.Algo] {
						mu.Lock()
						res.BitIdentical = false
						mu.Unlock()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ServeReplayResult{}, err
		}
	}

	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
		res.SoloLoads += soloTraceLoads(soloLoadsPer, len(ls))
	}
	sort.Float64s(all)
	res.Queries = len(all)
	res.P50 = percentile(all, 50)
	res.P99 = percentile(all, 99)
	res.QPS = float64(res.Queries) / wall
	res.ServedLoads = s.Cache().Stats().Loads
	return res, nil
}

// soloTraceLoads prices n queries of the mix at solo cost, in mix order.
func soloTraceLoads(per map[string]int64, n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += per[replayMix[i%len(replayMix)].Algo]
	}
	return sum
}

// percentile reads the pth percentile from sorted (nearest-rank).
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// queryStatus is the subset of the daemon's query response the replayer
// reads.
type queryStatus struct {
	Status string `json:"status"`
	Error  string `json:"error"`
	Digest string `json:"digest"`
	Loads  int64  `json:"loads"`
}

// runQuery submits spec and blocks until the daemon reports it done.
func runQuery(client *http.Client, base string, spec serve.QuerySpec) (queryStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return queryStatus{}, err
	}
	resp, err := client.Post(base+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		return queryStatus{}, err
	}
	var sub struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return queryStatus{}, err
	}
	if sub.ID == "" {
		return queryStatus{}, fmt.Errorf("submit refused: %s", sub.Error)
	}
	resp, err = client.Get(base + "/v1/queries/" + sub.ID + "?wait=1")
	if err != nil {
		return queryStatus{}, err
	}
	var info queryStatus
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		return queryStatus{}, err
	}
	if info.Status != "done" {
		return queryStatus{}, fmt.Errorf("query finished %q (%s)", info.Status, info.Error)
	}
	return info, nil
}
