package bench

import (
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/shard"
)

func TestOutOfCoreComparisonRuns(t *testing.T) {
	g := gen.TinySocial()
	fig, results, pf, win, iod, fr, or, sgr, bbr, ur, err := OutOfCore(g, t.TempDir(), 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, r := range results {
		if r.InMemory <= 0 || r.OutOfCore <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Alg, r)
		}
	}
	// The ablations must produce real timings for every column; which
	// side wins on a micro graph under the OS page cache is not a
	// stable property, so only the shape is asserted here.
	if pf.On <= 0 || pf.Off <= 0 || pf.Speedup <= 0 {
		t.Fatalf("prefetch ablation has non-positive entries: %+v", pf)
	}
	if win.K1 <= 0 || win.KD <= 0 || win.Speedup <= 0 {
		t.Fatalf("window ablation has non-positive timings: %+v", win)
	}
	if win.PeakK1 < 1 || win.PeakKD < 1 {
		t.Fatalf("window ablation recorded no applies: %+v", win)
	}
	if win.Domains < 2 {
		t.Fatalf("window ablation ran with %d domains; the occupancy comparison needs several", win.Domains)
	}
	// The async-read ablation's traffic claims are categorical: the
	// depth-1 column is the synchronous pipeline (never more than one
	// read in flight), the deep column may not exceed its budget, and
	// plan-ordered admission makes the disk traffic identical across
	// depths. Wall-clock stays shape-only (a regression guard with
	// generous slack — which depth wins on a micro graph under the OS
	// page cache is not a stable property).
	if iod.D1 <= 0 || iod.DN <= 0 || iod.Speedup <= 0 {
		t.Fatalf("iodepth ablation has non-positive timings: %+v", iod)
	}
	if iod.Depth < 2 {
		t.Fatalf("iodepth ablation ran at depth %d; the overlap comparison needs several", iod.Depth)
	}
	if iod.PeakD1 != 1 {
		t.Fatalf("depth-1 run peaked at %d reads in flight, want exactly 1", iod.PeakD1)
	}
	if iod.PeakDN < 1 || iod.PeakDN > int64(iod.Depth) {
		t.Fatalf("depth-%d run peaked at %d reads in flight, want within [1, %d]", iod.Depth, iod.PeakDN, iod.Depth)
	}
	if iod.LoadsD1 != iod.LoadsDN {
		t.Fatalf("disk traffic differs across IO depths: %d loads at depth 1, %d at depth %d", iod.LoadsD1, iod.LoadsDN, iod.Depth)
	}
	if iod.LoadsD1 <= 0 {
		t.Fatalf("iodepth ablation recorded no loads: %+v", iod)
	}
	if iod.DN > 2*iod.D1 {
		t.Fatalf("deep read queue regressed cold-cache wall time beyond slack: depth 1 %.3fs, depth %d %.3fs", iod.D1, iod.Depth, iod.DN)
	}
	// The format ablation's claim is categorical, not statistical: on the
	// standard micro graph the compressed store must be strictly smaller
	// on disk AND the cold-cache sweep must decode strictly fewer bytes.
	// (Timings stay shape-only — which format wins wall-clock on a micro
	// graph under the OS page cache is not a stable property.)
	if fr.V1Time <= 0 || fr.V2Time <= 0 || fr.Speedup <= 0 {
		t.Fatalf("format ablation has non-positive timings: %+v", fr)
	}
	if fr.V2Disk >= fr.V1Disk {
		t.Fatalf("v2 store is not smaller on disk: v1 %d bytes, v2 %d bytes", fr.V1Disk, fr.V2Disk)
	}
	if fr.V2Bytes >= fr.V1Bytes {
		t.Fatalf("v2 sweep did not read fewer bytes: v1 %d, v2 %d", fr.V1Bytes, fr.V2Bytes)
	}
	if fr.Ratio <= 1 {
		t.Fatalf("compression ratio %.3f not > 1: %+v", fr.Ratio, fr)
	}
	if fr.V1BytesPerEdge <= fr.V2BytesPerEdge || fr.V2BytesPerEdge <= 0 {
		t.Fatalf("bytes/edge not improved: v1 %.2f, v2 %.2f", fr.V1BytesPerEdge, fr.V2BytesPerEdge)
	}
	// The order ablation's claims are categorical on the deterministic
	// fixture: same store, same LRU budget, only the plan order differs,
	// so the locality-aware policies must never load more shards — or
	// read more bytes — than the ascending baseline, and with the LRU at
	// half the shard count zigzag's boustrophedon must strictly win.
	if len(or.Columns) != 3 {
		t.Fatalf("order ablation has %d columns, want 3: %+v", len(or.Columns), or)
	}
	asc, zig, res := or.Columns[0], or.Columns[1], or.Columns[2]
	if asc.Order != shard.OrderAscending || zig.Order != shard.OrderZigzag || res.Order != shard.OrderResidencyFirst {
		t.Fatalf("order ablation columns out of order: %+v", or.Columns)
	}
	for _, col := range or.Columns {
		if col.Time <= 0 || col.Loads <= 0 {
			t.Fatalf("order ablation column %s has non-positive entries: %+v", col.Order, col)
		}
	}
	if asc.ReloadsAvoided != 0 {
		t.Fatalf("ascending baseline avoided %d reloads, want 0 by definition", asc.ReloadsAvoided)
	}
	if res.Loads > asc.Loads || res.BytesRead > asc.BytesRead {
		t.Fatalf("residency-first must never load more than ascending: %+v vs %+v", res, asc)
	}
	if zig.Loads > asc.Loads || zig.BytesRead > asc.BytesRead {
		t.Fatalf("zigzag must never load more than ascending: %+v vs %+v", zig, asc)
	}
	if zig.Loads >= asc.Loads || zig.ReloadsAvoided <= 0 {
		t.Fatalf("zigzag should strictly beat ascending with a half-store LRU: %+v vs %+v", zig, asc)
	}
	if res.Loads >= asc.Loads || res.ReloadsAvoided <= 0 {
		t.Fatalf("residency-first should strictly beat ascending with a half-store LRU: %+v vs %+v", res, asc)
	}
	// The sweep-mode ablation's claim is categorical, the whole reason the
	// scatter/gather mode exists: at high frontier density over a raw
	// store with a thrashing LRU, the two-phase sweep must move strictly
	// fewer total bytes (disk + bin writes + bin replays) than the
	// edge-centric re-reads — while producing bit-identical ranks. The
	// cold pass must really have happened (disk bytes and bin writes
	// positive) and later iterations must really have reused bins.
	if sgr.ECTime <= 0 || sgr.SGTime <= 0 || sgr.Speedup <= 0 {
		t.Fatalf("scatter/gather ablation has non-positive timings: %+v", sgr)
	}
	if sgr.ECDiskBytes <= 0 || sgr.SGDiskBytes <= 0 || sgr.BinBytesWritten <= 0 || sgr.BinBytesRead <= 0 {
		t.Fatalf("scatter/gather ablation has idle byte counters: %+v", sgr)
	}
	if sgr.BinShardsReused <= 0 {
		t.Fatalf("scatter/gather ablation never reused a bin across iterations: %+v", sgr)
	}
	if sgr.SGMovedBytes != sgr.SGDiskBytes+sgr.BinBytesWritten+sgr.BinBytesRead {
		t.Fatalf("SGMovedBytes does not add up: %+v", sgr)
	}
	if sgr.SGMovedBytes >= sgr.ECDiskBytes {
		t.Fatalf("scatter/gather moved %d bytes, edge-centric re-read %d — the bytes-moved win is the mode's whole claim",
			sgr.SGMovedBytes, sgr.ECDiskBytes)
	}
	if !sgr.RanksIdentical {
		t.Fatalf("scatter/gather PageRank diverged from edge-centric: %+v", sgr)
	}
	// The bin-budget ablation's claims are categorical, the whole reason
	// the budget exists: the budget may only move bin bytes between
	// memory and spill files, never change what is computed (ranks
	// bit-identical across every column and the edge-centric reference);
	// the unbounded column must never spill; the half column must move
	// strictly fewer bytes than the everything-spills column; and even
	// the worst case — every bin replayed from disk every sweep — must
	// pull strictly fewer disk bytes than edge-centric re-reads.
	if bbr.Footprint <= 0 || bbr.Footprint != bbr.Full.BinWrites {
		t.Fatalf("bin-budget ablation footprint does not match the unbounded column's bin writes: %+v", bbr)
	}
	if bbr.Half.Budget <= shard.MinBinBudgetBytes || bbr.Half.Budget >= bbr.Footprint {
		t.Fatalf("half budget %d not strictly between MinBinBudgetBytes and the footprint %d — the columns would not separate", bbr.Half.Budget, bbr.Footprint)
	}
	for _, col := range []BinBudgetColumn{bbr.Full, bbr.Half, bbr.Zero} {
		if col.Time <= 0 || col.Loads <= 0 || col.DiskBytes <= 0 || col.BinWrites <= 0 || col.BinReads <= 0 {
			t.Fatalf("bin-budget column (budget %d) has idle counters: %+v", col.Budget, col)
		}
	}
	if bbr.Full.Spilled != 0 || bbr.Full.SpillReads != 0 || bbr.Full.Evictions != 0 || bbr.Full.Replays != 0 {
		t.Fatalf("unbounded column spilled or evicted bins: %+v", bbr.Full)
	}
	if bbr.Zero.Spilled <= 0 || bbr.Zero.Replays <= 0 {
		t.Fatalf("minimum-budget column never spilled or replayed — the starved rung exercised nothing: %+v", bbr.Zero)
	}
	if bbr.Half.MovedBytes >= bbr.Zero.MovedBytes {
		t.Fatalf("half budget moved %d bytes, minimum budget %d — residency under the larger budget must save traffic", bbr.Half.MovedBytes, bbr.Zero.MovedBytes)
	}
	if zeroDisk := bbr.Zero.DiskBytes + bbr.Zero.SpillReads; zeroDisk >= bbr.ECDiskBytes {
		t.Fatalf("everything-spills column pulled %d bytes from disk, edge-centric re-read %d — compressed replays beating raw re-reads is the spill path's whole claim", zeroDisk, bbr.ECDiskBytes)
	}
	if !bbr.RanksIdentical {
		t.Fatalf("bin budget changed PageRank bits: %+v", bbr)
	}
	// The update ablation's claims are categorical, the whole reason the
	// delta layer exists: the batch must have really appended deltas and
	// dirtied a strict subset of the store, the incremental re-run must
	// load strictly fewer shards (and make strictly fewer shard visits)
	// than the from-scratch re-run, and both must land on the same fixed
	// point to within 1e-12 per rank. Wall-clock stays shape-only.
	if ur.ApplyTime <= 0 || ur.CompactTime <= 0 || ur.FullTime <= 0 || ur.IncTime <= 0 || ur.Speedup <= 0 {
		t.Fatalf("update ablation has non-positive timings: %+v", ur)
	}
	if ur.Inserted <= 0 || ur.Deleted != 0 {
		t.Fatalf("update ablation batch miscounted: %+v", ur)
	}
	if ur.DirtyShards <= 0 || ur.DirtyShards >= ur.TotalShards {
		t.Fatalf("batch dirtied %d of %d shards; the ablation needs a strict subset so locality has something to save", ur.DirtyShards, ur.TotalShards)
	}
	if ur.IncLoads >= ur.FullLoads {
		t.Fatalf("incremental re-convergence loaded %d shards, full re-run %d — strictly fewer is the delta layer's whole claim", ur.IncLoads, ur.FullLoads)
	}
	if ur.IncVisits >= ur.FullVisits {
		t.Fatalf("incremental re-convergence visited %d shards, full re-run %d, want strictly fewer", ur.IncVisits, ur.FullVisits)
	}
	if ur.MaxDiff > 1e-12 {
		t.Fatalf("incremental and full fixed points disagree by %g, want <= 1e-12", ur.MaxDiff)
	}
	text := fig.Render()
	for _, want := range []string{"GG-v2", "OOC", "cache hits", "prefetch", "cold-cache PR ablation", "domain shards", "occupancy ablation", "apply levels", "async-read ablation", "format ablation", "order ablation", "scatter/gather ablation", "bin-budget ablation", "update ablation"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, text)
		}
	}
}

// TestOutOfCoreComparisonAgrees pins the comparison to correctness, not
// just timing: the engine being benchmarked must produce the in-memory
// engine's PageRank.
func TestOutOfCoreComparisonAgrees(t *testing.T) {
	g := gen.TinySocial()
	ooc, err := shard.Build(t.TempDir(), g, 8, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := algorithms.PR(ooc, 10).Ranks
	want := algorithms.SerialPR(g, 10)
	for v := range want {
		diff := got[v] - want[v]
		if diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}
