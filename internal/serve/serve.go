// Package serve is the multi-tenant graph-serving daemon core: a
// registry of open shard stores hosted behind one byte-budgeted,
// refcounted shard LRU, serving concurrent queries over HTTP/JSON.
// Opening a store builds a shard.Host (the construction half of the
// engine); each submitted query stamps out a session (the execution
// half) with its own vertex-state arrays while sharing the cache, the
// I/O budget and the co-scheduling pass board with every other query
// on the same store. A shard resident for one in-flight query is free
// for all others; eviction touches only shards no query is applying.
//
// Stores are mutable: POST /v1/stores/{name}/updates applies a batch
// of edge insertions and deletions (shard.Store.ApplyBatch) and
// /compact folds pending deltas. A mutation reopens the directory at
// its new generation and swaps the hosted engine; queries already in
// flight keep their sessions over the previous generation — the store
// layer never deletes a superseded generation's files — and queries
// submitted after the swap see the new content.
//
// Results carry an FNV-1a digest of the raw value bits, so clients —
// and the trace replayer in internal/bench — can assert bit-identity
// between served, co-scheduled runs and solo runs without shipping
// whole vertex arrays; passing "values": true returns the arrays too.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/graph"
	"repro/internal/shard"
)

// Sentinel errors the HTTP layer maps to statuses; server methods wrap
// them with context, so test with errors.Is.
var (
	ErrStoreNotFound = errors.New("store not open")
	ErrStoreExists   = errors.New("store already open")
	ErrQueryNotFound = errors.New("no such query")
)

// Config parameterizes a Server.
type Config struct {
	// CacheBytes is the daemon-wide shared-cache budget; <= 0 selects
	// shard.DefaultCacheBytes. All stores share this one budget.
	CacheBytes int64
	// Options is the engine option set every hosted store resolves at
	// open time (Threads, IODepth, sweep mode, ...). The zero value is
	// the engine's defaults.
	Options shard.Options
}

// Server hosts stores and runs queries. All methods are safe for
// concurrent use; it serves its HTTP API via Handler.
type Server struct {
	cache *shard.SharedCache
	opts  shard.Options

	mu      sync.Mutex
	stores  map[string]*hostedStore
	queries map[string]*query
	seq     int
}

type hostedStore struct {
	name string
	dir  string
	host *shard.Host // current generation's engine; swapped under Server.mu

	// upd serializes mutations (updates, compaction) of this store.
	// Queries never take it — they capture the host pointer under
	// Server.mu and run against whatever generation they caught.
	upd sync.Mutex
}

// query is one submitted unit of work and its lifecycle record.
type query struct {
	id    string
	store string
	algo  string

	mu       sync.Mutex
	done     chan struct{}
	status   string // "running", "done", "failed"
	err      string
	digest   string
	loads    int64
	wall     time.Duration
	values   any // populated only when the submission asked for values
	submitAt time.Time
}

// New builds an empty server.
func New(cfg Config) *Server {
	return &Server{
		cache:   shard.NewSharedCache(cfg.CacheBytes),
		opts:    cfg.Options,
		stores:  make(map[string]*hostedStore),
		queries: make(map[string]*query),
	}
}

// openHost opens dir at its current generation and builds a host over
// it: topology rebuilt from the store itself (one sweep over base plus
// deltas), so a store opens from its directory alone.
func (s *Server) openHost(dir string) (*shard.Host, error) {
	st, err := shard.Open(dir)
	if err != nil {
		return nil, err
	}
	edges := make([]graph.Edge, 0, st.NumEdges())
	if err := st.Sweep(func(u, v graph.VID) {
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}); err != nil {
		return nil, err
	}
	g := graph.FromEdges(st.NumVertices(), edges)
	return shard.NewHost(st, g, s.cache, s.opts)
}

// OpenStore opens the sharded store in dir under the given name and
// hosts it on the shared cache.
func (s *Server) OpenStore(name, dir string) error {
	if name == "" {
		return fmt.Errorf("serve: store name must be non-empty")
	}
	s.mu.Lock()
	if _, ok := s.stores[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: store %q: %w", name, ErrStoreExists)
	}
	s.mu.Unlock()

	host, err := s.openHost(dir)
	if err != nil {
		return fmt.Errorf("serve: open store %q: %w", name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stores[name]; ok {
		return fmt.Errorf("serve: store %q: %w", name, ErrStoreExists)
	}
	s.stores[name] = &hostedStore{name: name, dir: dir, host: host}
	return nil
}

// CloseStore unregisters the store and drops its unpinned shards from
// the shared LRU; shards pinned by in-flight queries stay until those
// queries release them, then age out.
func (s *Server) CloseStore(name string) error {
	s.mu.Lock()
	hs, ok := s.stores[name]
	if ok {
		delete(s.stores, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: store %q: %w", name, ErrStoreNotFound)
	}
	hs.host.Evict()
	return nil
}

// lookupHost captures a store's current host under the registry lock —
// the only safe way to read hostedStore.host, which mutations swap.
func (s *Server) lookupHost(store string) (*shard.Host, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs, ok := s.stores[store]
	if !ok {
		return nil, fmt.Errorf("serve: store %q: %w", store, ErrStoreNotFound)
	}
	return hs.host, nil
}

// Session returns a fresh api.System over an open store — the
// conformance adapter: one served session is a complete engine from
// the API's point of view, and the differential test ladder runs
// through exactly this. The session is pinned to the store generation
// current at the call; it stays valid across later mutations.
func (s *Server) Session(store string) (api.System, error) {
	host, err := s.lookupHost(store)
	if err != nil {
		return nil, err
	}
	return host.NewSession(), nil
}

// ApplyUpdates applies one batch of edge insertions and deletions to
// an open store and rehosts it at the new generation. The mutation
// runs on a fresh Store value opened from the directory, so in-flight
// queries (pinned to the previous generation's host) race nothing;
// once the swap completes, new sessions serve the new content.
// Batches for the same store serialize; invalid edges come back as a
// *shard.BatchError (HTTP 400 through the API).
func (s *Server) ApplyUpdates(name string, ins, del []graph.Edge) (*shard.BatchResult, error) {
	s.mu.Lock()
	hs, ok := s.stores[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: store %q: %w", name, ErrStoreNotFound)
	}
	hs.upd.Lock()
	defer hs.upd.Unlock()
	st, err := shard.Open(hs.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: update store %q: %w", name, err)
	}
	res, err := st.ApplyBatch(ins, del)
	if err != nil {
		return nil, fmt.Errorf("serve: update store %q: %w", name, err)
	}
	if err := s.rehost(hs); err != nil {
		return nil, fmt.Errorf("serve: rehost store %q after update: %w", name, err)
	}
	return res, nil
}

// CompactStore folds an open store's pending deltas into fresh base
// files and rehosts it. A store with nothing pending is left exactly
// as it is. Returns the generation the store serves afterwards.
func (s *Server) CompactStore(name string) (int64, error) {
	s.mu.Lock()
	hs, ok := s.stores[name]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("serve: store %q: %w", name, ErrStoreNotFound)
	}
	hs.upd.Lock()
	defer hs.upd.Unlock()
	st, err := shard.Open(hs.dir)
	if err != nil {
		return 0, fmt.Errorf("serve: compact store %q: %w", name, err)
	}
	before := st.Generation()
	gen, err := st.Compact()
	if err != nil {
		return 0, fmt.Errorf("serve: compact store %q: %w", name, err)
	}
	if gen != before {
		if err := s.rehost(hs); err != nil {
			return 0, fmt.Errorf("serve: rehost store %q after compaction: %w", name, err)
		}
	}
	return gen, nil
}

// rehost swaps hs's engine for one freshly opened at the directory's
// current generation, then releases the old generation's unpinned
// residents. Callers hold hs.upd; the pointer swap itself happens
// under the registry lock, where every reader captures it.
func (s *Server) rehost(hs *hostedStore) error {
	host, err := s.openHost(hs.dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	_, stillOpen := s.stores[hs.name]
	old := hs.host
	hs.host = host
	s.mu.Unlock()
	old.Evict()
	if !stillOpen {
		// Lost a race with CloseStore: nothing references hs anymore,
		// so drop the new host's residency too.
		host.Evict()
	}
	return nil
}

// QuerySpec is one query submission.
type QuerySpec struct {
	Store string `json:"store"`
	Algo  string `json:"algo"`            // pagerank | bfs | cc | spmv
	Iters int    `json:"iters,omitempty"` // pagerank; default 10
	Src   uint32 `json:"src,omitempty"`   // bfs
	// Values asks for the full result arrays in the status response
	// (digest-only otherwise).
	Values bool `json:"values,omitempty"`
}

// Submit starts spec asynchronously and returns its query ID. The
// query runs on its own session; a panicking operator fails that query
// alone.
func (s *Server) Submit(spec QuerySpec) (string, error) {
	run, err := algoFor(spec)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	hs, ok := s.stores[spec.Store]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("serve: store %q: %w", spec.Store, ErrStoreNotFound)
	}
	// Capture the host while the lock protects it: a concurrent
	// mutation may swap hs.host the moment we let go.
	host := hs.host
	s.seq++
	q := &query{
		id:       fmt.Sprintf("q%d", s.seq),
		store:    spec.Store,
		algo:     spec.Algo,
		status:   "running",
		done:     make(chan struct{}),
		submitAt: time.Now(),
	}
	s.queries[q.id] = q
	s.mu.Unlock()

	sess := host.NewSession()
	go func() {
		defer close(q.done)
		defer func() {
			if r := recover(); r != nil {
				q.mu.Lock()
				q.status = "failed"
				q.err = fmt.Sprintf("query panicked: %v", r)
				q.mu.Unlock()
			}
		}()
		start := time.Now()
		values, digest := run(sess)
		wall := time.Since(start)
		q.mu.Lock()
		q.status = "done"
		q.digest = digest
		q.loads = sess.Stats().ShardLoads
		q.wall = wall
		if spec.Values {
			q.values = values
		}
		q.mu.Unlock()
	}()
	return q.id, nil
}

// Wait blocks until query id finishes (however it finishes).
func (s *Server) Wait(id string) error {
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: query %q: %w", id, ErrQueryNotFound)
	}
	<-q.done
	return nil
}

// algoFor resolves a spec to its runner: the algorithm over one
// session, returning the raw values and their bit digest.
func algoFor(spec QuerySpec) (func(api.System) (any, string), error) {
	switch spec.Algo {
	case "pagerank":
		iters := spec.Iters
		if iters <= 0 {
			iters = 10
		}
		return func(sys api.System) (any, string) {
			r := algorithms.PR(sys, iters)
			return r.Ranks, digestF64(r.Ranks)
		}, nil
	case "bfs":
		return func(sys api.System) (any, string) {
			r := algorithms.BFS(sys, graph.VID(spec.Src))
			return r.Parents, digestI32(r.Parents)
		}, nil
	case "cc":
		return func(sys api.System) (any, string) {
			r := algorithms.CC(sys)
			return r.Labels, digestI32(r.Labels)
		}, nil
	case "spmv":
		return func(sys api.System) (any, string) {
			r := algorithms.SPMV(sys)
			return r.Y, digestF64(r.Y)
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown algorithm %q (want pagerank, bfs, cc or spmv)", spec.Algo)
	}
}

// digestF64 hashes the exact bit patterns, so two runs digest equal iff
// their float64 results are bit-identical.
func digestF64(xs []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func digestI32(xs []int32) string {
	h := fnv.New64a()
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// storeInfo is the wire form of one hosted store. Bins is the store's
// scatter/gather bin-cache snapshot — the host-wide budget every
// session shares — present only when the daemon serves in
// scatter/gather mode.
type storeInfo struct {
	Name          string               `json:"name"`
	Dir           string               `json:"dir"`
	Vertices      int                  `json:"vertices"`
	Edges         int64                `json:"edges"`
	Shards        int                  `json:"shards"`
	Generation    int64                `json:"generation"`
	PendingDeltas int                  `json:"pending_deltas"`
	Bins          *shard.BinCacheStats `json:"bins,omitempty"`
}

func (s *Server) storeInfoLocked(hs *hostedStore) storeInfo {
	st := hs.host.Store()
	info := storeInfo{
		Name: hs.name, Dir: hs.dir,
		Vertices: st.NumVertices(), Edges: st.NumEdges(), Shards: st.NumShards(),
		Generation: st.Generation(), PendingDeltas: st.PendingDeltas(),
	}
	if s.opts.SweepMode == shard.SweepScatterGather {
		bins := hs.host.BinStats()
		info.Bins = &bins
	}
	return info
}

// queryInfo is the wire form of one query's status.
type queryInfo struct {
	ID     string  `json:"id"`
	Store  string  `json:"store"`
	Algo   string  `json:"algo"`
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Digest string  `json:"digest,omitempty"`
	Loads  int64   `json:"loads"`
	WallMS float64 `json:"wall_ms"`
	Values any     `json:"values,omitempty"`
}

func (q *query) info() queryInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	return queryInfo{
		ID: q.id, Store: q.store, Algo: q.algo, Status: q.status,
		Error: q.err, Digest: q.digest, Loads: q.loads,
		WallMS: float64(q.wall) / float64(time.Millisecond),
		Values: q.values,
	}
}

// statsInfo is the wire form of GET /v1/stats.
type statsInfo struct {
	Cache   shard.SharedCacheStats `json:"cache"`
	Stores  []storeInfo            `json:"stores"`
	Queries int                    `json:"queries"`
}

// Stats snapshots the daemon: the shared-cache counters (budget,
// resident and pinned bytes, hits, loads, shared reads, evictions,
// rejections) plus the hosted stores and total queries submitted.
func (s *Server) Stats() statsInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := statsInfo{Cache: s.cache.Stats(), Queries: len(s.queries)}
	for _, hs := range s.stores {
		out.Stores = append(out.Stores, s.storeInfoLocked(hs))
	}
	sort.Slice(out.Stores, func(i, j int) bool { return out.Stores[i].Name < out.Stores[j].Name })
	return out
}

// Cache exposes the daemon-wide shared cache (tests and the bench
// replayer read its counters).
func (s *Server) Cache() *shard.SharedCache { return s.cache }

// wireEdge is the JSON form of one edge in an updates request.
type wireEdge struct {
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
}

func toEdges(ws []wireEdge) []graph.Edge {
	if ws == nil {
		return nil
	}
	out := make([]graph.Edge, len(ws))
	for i, w := range ws {
		out[i] = graph.Edge{Src: graph.VID(w.Src), Dst: graph.VID(w.Dst)}
	}
	return out
}

// errStatus maps an error to its HTTP status and machine-readable
// code. Typed validation failures from the shard layer — bad options,
// bad batch edges — are client errors, as are malformed requests;
// the sentinels map to 404/409.
func errStatus(err error) (int, string) {
	var oe *shard.OptionsError
	var be *shard.BatchError
	switch {
	case errors.Is(err, ErrStoreNotFound):
		return http.StatusNotFound, "store_not_found"
	case errors.Is(err, ErrQueryNotFound):
		return http.StatusNotFound, "query_not_found"
	case errors.Is(err, ErrStoreExists):
		return http.StatusConflict, "store_exists"
	case errors.As(err, &oe), errors.As(err, &be):
		return http.StatusBadRequest, "invalid_argument"
	default:
		return http.StatusBadRequest, "invalid_argument"
	}
}

// Handler returns the HTTP/JSON API. Every route lives under /v1/;
// the unversioned spellings from the daemon's first release remain as
// deprecated aliases that answer identically plus a Deprecation header
// pointing at the successor.
//
//	POST   /v1/stores                 {"name": "...", "dir": "..."}  open a store
//	GET    /v1/stores                                                list open stores
//	DELETE /v1/stores/{name}                                         close a store
//	POST   /v1/stores/{name}/updates  {"insert": [{"src","dst"}...],
//	                                   "delete": [...]}              apply a batch, bump the generation
//	POST   /v1/stores/{name}/compact                                 fold pending deltas
//	POST   /v1/queries                QuerySpec                      submit; returns {"id": "..."}
//	GET    /v1/queries/{id}[?wait=1]                                 status / result
//	GET    /v1/stats                                                 cache + registry snapshot
//
// Errors are a uniform envelope: {"error": {"code": "...", "message":
// "..."}} with code one of store_not_found, query_not_found,
// store_exists, invalid_argument.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	// handle registers the /v1/ route and its deprecated unversioned
	// alias. The alias serves the same handler with RFC 8594-style
	// deprecation headers, so existing clients keep working while being
	// told where to go.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" "+strings.TrimPrefix(path, "/v1"), func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
			h(w, r)
		})
	}

	handle("POST /v1/stores", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
			Dir  string `json:"dir"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, err)
			return
		}
		if err := s.OpenStore(req.Name, req.Dir); err != nil {
			httpErr(w, err)
			return
		}
		s.mu.Lock()
		info := s.storeInfoLocked(s.stores[req.Name])
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, info)
	})

	handle("GET /v1/stores", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats().Stores)
	})

	handle("DELETE /v1/stores/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CloseStore(r.PathValue("name")); err != nil {
			httpErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	handle("POST /v1/stores/{name}/updates", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Insert []wireEdge `json:"insert"`
			Delete []wireEdge `json:"delete"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, err)
			return
		}
		res, err := s.ApplyUpdates(r.PathValue("name"), toEdges(req.Insert), toEdges(req.Delete))
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": res.Generation,
			"dirty":      res.Dirty,
			"inserted":   res.Inserted,
			"deleted":    res.Deleted,
		})
	})

	handle("POST /v1/stores/{name}/compact", func(w http.ResponseWriter, r *http.Request) {
		gen, err := s.CompactStore(r.PathValue("name"))
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"generation": gen})
	})

	handle("POST /v1/queries", func(w http.ResponseWriter, r *http.Request) {
		var spec QuerySpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpErr(w, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	handle("GET /v1/queries/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		q, ok := s.queries[id]
		s.mu.Unlock()
		if !ok {
			httpErr(w, fmt.Errorf("serve: query %q: %w", id, ErrQueryNotFound))
			return
		}
		if r.URL.Query().Get("wait") != "" {
			select {
			case <-q.done:
			case <-r.Context().Done():
				writeJSON(w, http.StatusRequestTimeout, errEnvelope{errBody{"timeout", r.Context().Err().Error()}})
				return
			}
		}
		writeJSON(w, http.StatusOK, q.info())
	})

	handle("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errEnvelope is the uniform error shape every route answers with.
type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func httpErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeJSON(w, status, errEnvelope{errBody{code, err.Error()}})
}
