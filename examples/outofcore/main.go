// Out-of-core example: shard a graph to disk GraphChi-style (the system
// the paper's partitioning-by-destination comes from) and run the
// ordinary algorithm suite on shard.Engine — the same PageRank and BFS
// code that runs on the in-memory engines, but with edge data streaming
// from disk through the concurrent sweep (plan → stage → apply →
// publish): the planner picks the shard order, a staging goroutine
// keeps up to k shards resident ahead — issuing up to IODepth uncached
// reads concurrently through the async reader and reaping completions
// in plan order — up to D staged shards are applied simultaneously,
// one per modelled NUMA domain, each by that domain's workers, and the
// LRU cache keeps hot shards resident across iterations. See README.md
// for the window, async-read and placement model in detail.
package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/locality"
	"repro/internal/shard"
)

func main() {
	g := repro.Preset("livejournal-sm")
	fmt.Printf("graph: livejournal-sm, %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	dir := filepath.Join(os.TempDir(), "ggrind-shards")
	defer os.RemoveAll(dir)

	const shards = 24
	// A 4-shard LRU budget: resident edge data stays bounded by ~4/24
	// of the graph however many iterations run, and the budget is wide
	// enough for the default staging window — max(Domains, IODepth)
	// deep, 4 here — to keep all four modelled NUMA domains applying
	// at once.
	ooc, err := shard.Build(dir, g, shards, shard.Options{CacheShards: 4})
	if err != nil {
		panic(err)
	}
	bytes, err := ooc.Store().DiskBytes()
	if err != nil {
		panic(err)
	}
	fmt.Printf("sharded to %s: %d shards (%v format), %.1f MiB on disk (%.2f bytes/edge), LRU budget 4 shards, window k=%d\n",
		dir, ooc.Store().NumShards(), ooc.Store().Format(), float64(bytes)/(1<<20),
		float64(bytes)/float64(g.NumEdges()), ooc.Options().Window)

	// The default store is the delta+uvarint compressed (v2) layout;
	// write the same graph in the legacy raw encoding to see what each
	// dense sweep stops paying for.
	v1dir := dir + "-v1"
	defer os.RemoveAll(v1dir)
	v1st, err := shard.Create(v1dir, g, shard.WriteOptions{Partitions: shards, Format: shard.FormatV1})
	if err != nil {
		panic(err)
	}
	v1bytes, err := v1st.DiskBytes()
	if err != nil {
		panic(err)
	}
	fmt.Printf("same graph as a raw v1 store: %.1f MiB (%.2f bytes/edge) — v2 is %.2fx smaller\n",
		float64(v1bytes)/(1<<20), float64(v1bytes)/float64(g.NumEdges()),
		float64(v1bytes)/float64(bytes))

	// 1. The generic algorithm layer runs unmodified out of core;
	// PageRank matches the in-memory engine exactly.
	oocPR := algorithms.PR(ooc, 10).Ranks
	inMem := repro.PageRank(repro.NewEngine(g, repro.Options{}), 10)
	var maxDiff float64
	for v := range oocPR {
		if d := math.Abs(oocPR[v] - inMem[v]); d > maxDiff {
			maxDiff = d
		}
	}
	st := ooc.Stats()
	fmt.Printf("PageRank (10 dense sweeps, streaming): max diff vs in-memory %.2e, %d disk loads\n",
		maxDiff, st.ShardLoads)
	fmt.Printf("  io: %.1f MiB decoded from disk, %.1f MiB at raw v1 pricing — %.2fx compression in flight\n",
		float64(st.BytesRead)/(1<<20), float64(st.BytesLogical)/(1<<20),
		float64(st.BytesLogical)/float64(st.BytesRead))
	fmt.Printf("  pipeline: %d prefetch loads, %d overlapped an apply; NUMA domain shards %v\n",
		st.PrefetchLoads, st.OverlappedLoads, st.DomainShards)
	fmt.Printf("  occupancy: peak %d concurrent shard applies, apply levels %v, window hand-off depths %v\n",
		st.ConcurrentApplyPeak, st.ApplyLevels, st.WindowDepths)
	if maxDiff > 1e-9 {
		panic("results diverge")
	}

	// 1b. The same sweeps with the async reader issuing up to 4 uncached
	// reads concurrently. Reaping in plan order keeps the results — and
	// even the disk traffic — identical to the depth-1 run; only the
	// read overlap changes.
	deep, err := shard.NewEngine(ooc.Store(), g, shard.Options{CacheShards: 4, IODepth: 4})
	if err != nil {
		panic(err)
	}
	deepPR := algorithms.PR(deep, 10).Ranks
	for v := range deepPR {
		if deepPR[v] != oocPR[v] {
			panic("IODepth changed results")
		}
	}
	dst := deep.Stats()
	fmt.Printf("PageRank again at IODepth=4: bit-identical ranks, %d disk loads (same traffic), peak %d reads in flight, read depth histogram %v\n",
		dst.ShardLoads, dst.ReadsInFlightPeak, dst.ReadDepths)

	// 2. BFS from a low-degree vertex: early wavefronts are sparse, so
	// the frontier-aware planner loads only shards fed by active
	// sources and skips the rest.
	src := minDegreeVertex(g)
	before := ooc.Stats()
	bfs := algorithms.BFS(ooc, src)
	after := ooc.Stats()
	reached := 0
	for _, p := range bfs.Parents {
		if p >= 0 {
			reached++
		}
	}
	fmt.Printf("BFS from low-degree vertex %d: reached %d vertices in %d rounds\n",
		src, reached, bfs.Rounds)
	fmt.Printf("  %d sparse + %d dense sweeps, skipped %d shard visits\n",
		after.SparseSweeps-before.SparseSweeps,
		after.DenseSweeps-before.DenseSweeps,
		after.ShardsSkipped-before.ShardsSkipped)

	// 3. With the LRU sized to the store, iterative algorithms pay the
	// disk exactly once per shard and run from memory afterwards.
	cached, err := shard.NewEngine(ooc.Store(), g, shard.Options{CacheShards: shards})
	if err != nil {
		panic(err)
	}
	algorithms.PR(cached, 10)
	cst := cached.Stats()
	fmt.Printf("PageRank with a %d-shard LRU: %d disk loads, %d cache hits\n",
		shards, cst.ShardLoads, cst.CacheHits)

	// 4. In between those extremes — the LRU at half the store — the
	// sweep *order* decides how much of the budget survives from one
	// dense sweep into the next. Ascending index is the pathological
	// case: a cyclic pattern over 24 shards against a 12-shard LRU hits
	// never, because each sweep evicts its own tail just before the next
	// sweep wants it. The planner's zigzag (boustrophedon) and
	// residency-first policies reorder the identical shard set — results
	// are bit-identical, only the disk traffic changes.
	fmt.Printf("sweep-order ablation: 10-sweep dense PageRank, %d shards, %d-shard LRU\n",
		shards, shards/2)
	var ranks0 []float64
	for _, order := range shard.Orders() {
		eng, err := shard.NewEngine(ooc.Store(), g, shard.Options{CacheShards: shards / 2, Order: order})
		if err != nil {
			panic(err)
		}
		ranks := algorithms.PR(eng, 10).Ranks
		if ranks0 == nil {
			ranks0 = ranks
		}
		for v := range ranks0 {
			if ranks[v] != ranks0[v] {
				panic("sweep order changed results")
			}
		}
		ost := eng.Stats()
		fmt.Printf("  %-16s %3d loads (%4.1f/sweep), %3d cache hits, %4.1f MiB read, %3d reloads avoided\n",
			order.String()+":", ost.ShardLoads, float64(ost.ShardLoads)/10,
			ost.CacheHits, float64(ost.BytesRead)/(1<<20), ost.ReloadsAvoided)
	}

	// The offline scorer tells the same story from the schedule alone
	// (it derives the ascending baseline itself): reuse distances of the
	// boustrophedon sequence fold under the LRU budget where the
	// ascending cycle's never do.
	zig := make([][]int, 10)
	for s := range zig {
		zig[s] = make([]int, shards)
		for i := range zig[s] {
			if s%2 == 1 {
				zig[s][i] = shards - 1 - i
			} else {
				zig[s][i] = i
			}
		}
	}
	cmp := locality.MeasureSweepOrder(zig, shards/2)
	fmt.Printf("  scorer: ascending mean reuse distance %.1f (max %d) -> %d loads; zigzag %.1f (max %d) -> %d loads, %d avoided\n",
		cmp.Ascending.MeanReuse, cmp.Ascending.MaxReuse, cmp.Ascending.Loads,
		cmp.Planned.MeanReuse, cmp.Planned.MaxReuse, cmp.Planned.Loads, cmp.ReloadsAvoided)

	// 5. The sweep-*mode* ablation: when the LRU thrashes, edge-centric
	// dense sweeps re-read evicted shards from disk every iteration.
	// SweepScatterGather streams each shard once into compact
	// delta-encoded per-partition update bins (scatter) and has each
	// modelled NUMA domain replay only its own bins (gather); the bins
	// are operator-independent and retained, so every later dense sweep
	// runs with zero disk traffic. Run over the raw v1 store so both
	// columns price disk bytes identically (8 per edge). Results are
	// bit-identical — same disjoint 64-aligned destination ranges, same
	// per-destination order — only the bytes moved change.
	fmt.Printf("sweep-mode ablation: 10-sweep dense PageRank, v1 store, %d-shard LRU\n", shards/4)
	var ecMoved, sgMoved float64
	var ranksEC []float64
	for _, mode := range shard.SweepModes() {
		eng, err := shard.NewEngine(v1st, g, shard.Options{CacheShards: shards / 4, SweepMode: mode})
		if err != nil {
			panic(err)
		}
		ranks := algorithms.PR(eng, 10).Ranks
		if ranksEC == nil {
			ranksEC = ranks
		}
		for v := range ranksEC {
			if ranks[v] != ranksEC[v] {
				panic("sweep mode changed results")
			}
		}
		mst := eng.Stats()
		moved := float64(mst.BytesRead+mst.BinBytesWritten+mst.BinBytesRead) / (1 << 20)
		fmt.Printf("  %-16s %3d loads, %6.1f MiB disk + %5.1f MiB bins written + %5.1f MiB bins replayed = %6.1f MiB moved (%d bin reuses)\n",
			mode.String()+":", mst.ShardLoads, float64(mst.BytesRead)/(1<<20),
			float64(mst.BinBytesWritten)/(1<<20), float64(mst.BinBytesRead)/(1<<20),
			moved, mst.BinShardsReused)
		if mode == shard.SweepEdgeCentric {
			ecMoved = moved
		} else {
			sgMoved = moved
		}
	}
	fmt.Printf("  scatter/gather moves %.2fx fewer bytes per 10-sweep run, bit-identical ranks\n", ecMoved/sgMoved)

	// 6. The store is mutable, log-structured-ly: ApplyBatch validates
	// the batch, appends one delta shard per affected base shard
	// (inserts plus tombstones — a tombstone removes every copy of its
	// edge) and swings the manifest to a new generation; untouched
	// shards are not rewritten and live files are never modified.
	// Engines are pinned to the generation they were built over, so
	// mutate, reopen, rebuild — the serve daemon does exactly this.
	// First converge PageRank on the current store: the pre-batch fixed
	// point the incremental solver will start from. (IncrementalPR's
	// strictly local kernel skips the dangling-mass redistribution of
	// algorithms.PR, so its fixed point is compared against itself.)
	const tol = 1e-12
	baseFP, err := cached.IncrementalPR(nil, nil, tol, 500)
	if err != nil {
		panic(err)
	}
	hub := g.Edges()[0]
	res, err := ooc.Store().ApplyBatch(
		[]graph.Edge{{Src: hub.Dst, Dst: hub.Src}, {Src: hub.Src, Dst: hub.Src + 1}},
		[]graph.Edge{hub})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ApplyBatch: generation %d, +%d/-%d edges (tombstones remove all copies), %d/%d shards dirty\n",
		res.Generation, res.Inserted, res.Deleted, len(res.Dirty), shards)

	// Reopen at the new generation; sweeps now merge base + deltas in
	// the same per-destination order a rebuilt store would have.
	mst, err := shard.Open(dir)
	if err != nil {
		panic(err)
	}
	medges := make([]graph.Edge, 0, mst.NumEdges())
	if err := mst.Sweep(func(u, v graph.VID) {
		medges = append(medges, graph.Edge{Src: u, Dst: v})
	}); err != nil {
		panic(err)
	}
	mg := graph.FromEdges(mst.NumVertices(), medges)
	inc, err := shard.NewEngine(mst, mg, shard.Options{CacheShards: shards})
	if err != nil {
		panic(err)
	}
	full, err := shard.NewEngine(mst, mg, shard.Options{CacheShards: shards})
	if err != nil {
		panic(err)
	}
	// Re-converge two ways: incrementally — seeded with the pre-batch
	// ranks and the batch's dirty shards, sweeping only where the fixed
	// point actually moved — and from scratch. Same answer, strictly
	// fewer shard visits. (On this well-connected graph the batch's
	// influence eventually reaches every shard, so the saving shows up
	// in visits — sweeps × shards actually swept — rather than distinct
	// shards loaded; a batch confined to one region of a partitioned
	// store saves loads too, which is what the bench update ablation
	// measures.)
	incFP, err := inc.IncrementalPR(baseFP.Ranks, res.Dirty, tol, 500)
	if err != nil {
		panic(err)
	}
	fullFP, err := full.IncrementalPR(nil, nil, tol, 500)
	if err != nil {
		panic(err)
	}
	var incDiff float64
	for v := range fullFP.Ranks {
		if d := math.Abs(incFP.Ranks[v] - fullFP.Ranks[v]); d > incDiff {
			incDiff = d
		}
	}
	fmt.Printf("incremental re-convergence: %d shard loads, %d visits vs full re-run's %d loads, %d visits; max rank diff %.2e\n",
		inc.Stats().ShardLoads, incFP.ShardVisits, full.Stats().ShardLoads, fullFP.ShardVisits, incDiff)
	if incDiff > 1e-9 {
		panic("incremental re-convergence diverged from the full re-run")
	}
	if incFP.ShardVisits >= fullFP.ShardVisits {
		panic("incremental re-convergence did not save shard visits")
	}

	// Compaction folds the deltas into fresh generation-suffixed base
	// files. The old generation's files stay on disk, so engines (and
	// serve sessions) pinned to it remain readable until they finish.
	gen, err := mst.Compact()
	if err != nil {
		panic(err)
	}
	cst2, err := shard.Open(dir)
	if err != nil {
		panic(err)
	}
	fmt.Printf("compacted to base generation %d: %d edges, %d delta files pending\n",
		gen, cst2.NumEdges(), cst2.PendingDeltas())

	fmt.Println("out-of-core engine matches the in-memory engine ✓")
}

// minDegreeVertex returns the vertex with the smallest nonzero
// out-degree (lowest ID on ties) — a deliberately peripheral BFS root.
func minDegreeVertex(g *graph.Graph) graph.VID {
	var best graph.VID
	var bestDeg int64 = math.MaxInt64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VID(v)); d > 0 && d < bestDeg {
			bestDeg, best = d, graph.VID(v)
		}
	}
	return best
}
