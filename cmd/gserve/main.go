// gserve is the multi-tenant graph-serving daemon: one process hosting
// N sharded stores behind a single byte-budgeted, refcounted shard
// cache, running concurrent queries that share residency, the I/O
// budget and — for dense sweeps — the disk pass itself. The HTTP/JSON
// API (internal/serve) lives under /v1/ (the unversioned spellings
// remain as deprecated aliases): open, list and close stores, apply
// edge-update batches (POST /v1/stores/{name}/updates) and compact the
// resulting deltas (POST /v1/stores/{name}/compact), submit queries
// and report cache/registry stats. Mutations rehost the store at its
// new generation; queries already running finish on the generation
// they started against. Errors are a uniform {"error": {"code",
// "message"}} envelope.
//
//	gserve -addr 127.0.0.1:8080 -store social=/data/social12 -cache-bytes 268435456
//
// Stores may be preloaded with repeated -store name=dir flags or opened
// later over the API. The daemon prints the bound address on stdout
// (useful with -addr :0) and shuts down cleanly on SIGINT/SIGTERM,
// finishing in-flight HTTP exchanges first.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/shard"
)

// storeFlags collects repeated -store name=dir mounts.
type storeFlags []string

func (s *storeFlags) String() string { return strings.Join(*s, ",") }

func (s *storeFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=dir, got %q", v)
	}
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var stores storeFlags
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	cacheBytes := flag.Int64("cache-bytes", shard.DefaultCacheBytes, "shared shard-cache budget in bytes, across all stores")
	threads := flag.Int("threads", 0, "worker threads per query session (0 = engine default)")
	sweepmode := flag.String("sweepmode", shard.SweepEdgeCentric.String(), "dense-sweep strategy for every session: edge-centric or scatter-gather")
	binBudget := flag.Int64("bin-budget", 0, "scatter/gather bin budget in bytes, shared across each store's sessions (0 = unbounded; needs -sweepmode scatter-gather)")
	flag.Var(&stores, "store", "preload a store as name=dir (repeatable)")
	flag.Parse()

	mode, err := shard.ParseSweepMode(*sweepmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gserve:", err)
		os.Exit(2)
	}
	opts := shard.Options{Threads: *threads, SweepMode: mode, BinBudgetBytes: *binBudget}
	// Reject a nonsensical option set at flag-parse time — usage error,
	// exit 2 — rather than failing every store open later.
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gserve:", err)
		os.Exit(2)
	}

	s := serve.New(serve.Config{
		CacheBytes: *cacheBytes,
		Options:    opts,
	})
	for _, mount := range stores {
		name, dir, _ := strings.Cut(mount, "=")
		if err := s.OpenStore(name, dir); err != nil {
			return err
		}
		fmt.Printf("gserve: store %s = %s\n", name, dir)
	}

	// Listen before announcing, so the printed address is connectable
	// the moment it appears (the smoke test and scripts key off it).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("gserve: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("gserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
