package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Native fuzz targets for the decoding surfaces a shard directory
// exposes: the JSON manifest, the binary shard files in both on-disk
// formats (raw v1, delta+uvarint v2), the GGD2 delta-shard files and
// the bin spill files the budgeted scatter/gather cache replays. The
// contract under fuzz is the
// one TestStoreFailurePaths pins with fixed fixtures — arbitrary bytes
// must produce an error or a valid store, never a panic and never an
// allocation sized by untrusted input. The corrupt-input table tests
// seeded the committed corpora under testdata/fuzz (see
// TestRegenFuzzCorpus).

// FuzzManifest feeds arbitrary bytes to Open as manifest.json. When Open
// accepts, the resulting store's accessors and shard loading must also
// be panic-free (shard files are absent, so loads error).
func FuzzManifest(f *testing.F) {
	for _, seed := range manifestSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			return
		}
		if !st.Format().valid() {
			t.Fatalf("Open accepted a manifest with invalid format %v", st.Format())
		}
		for i := 0; i < st.NumShards(); i++ {
			lo, hi := st.Range(i)
			if lo > hi || int(hi) > st.NumVertices() {
				t.Fatalf("Open accepted shard %d with range [%d,%d) over %d vertices", i, lo, hi, st.NumVertices())
			}
			if _, err := st.LoadShard(i); err == nil {
				t.Fatalf("LoadShard(%d) succeeded with no shard file on disk", i)
			}
		}
	})
}

// FuzzShardFile feeds arbitrary bytes to the v1 (raw uint32-pairs)
// shard-file decoder. The declared edge count is read from the fuzzed
// header itself and passed as the manifest's expectation — modelling a
// hostile directory whose manifest and shard header agree — so the
// decoder's only defence is validating the declared count against the
// file's actual size before allocating.
func FuzzShardFile(f *testing.F) {
	for _, seed := range shardFileSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "shard-0000.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var want int64
		if len(data) >= 8 {
			want = int64(binary.LittleEndian.Uint64(data[:8]))
		}
		const n, lo, hi = 256, 64, 128
		c, _, err := readShardFile(path, FormatV1, n, lo, hi, want)
		if err != nil {
			return
		}
		checkDecodedInvariants(t, c, want, n, lo, hi)
	})
}

// FuzzShardFileV2 feeds arbitrary bytes to the v2 (delta+uvarint)
// streaming decoder. As in the v1 target, the manifest's edge-count
// expectation is read from the fuzzed header when it parses, so the
// decoder is exercised on inputs whose header and manifest agree —
// truncated varints, overflowing deltas and trailing garbage must all
// surface as errors, and anything accepted must decode to in-range,
// (dst,src)-sorted edges.
func FuzzShardFileV2(f *testing.F) {
	for _, seed := range shardFileV2Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "shard-0000.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		want := int64(-1) // mismatches any parsed count unless the header declares one
		if len(data) > 4 && bytes.Equal(data[:4], shardMagicV2[:]) {
			if c, k := binary.Uvarint(data[4:]); k > 0 && c <= math.MaxInt64 {
				want = int64(c)
			}
		}
		const n, lo, hi = 256, 64, 128
		c, _, err := readShardFile(path, FormatV2, n, lo, hi, want)
		if err != nil {
			return
		}
		checkDecodedInvariants(t, c, want, n, lo, hi)
		for i := 1; i < len(c.Dst); i++ {
			if c.Dst[i] < c.Dst[i-1] ||
				(c.Dst[i] == c.Dst[i-1] && c.Src[i] < c.Src[i-1]) {
				t.Fatalf("accepted v2 stream not sorted by (dst,src) at edge %d: (%d,%d) after (%d,%d)",
					i, c.Src[i], c.Dst[i], c.Src[i-1], c.Dst[i-1])
			}
		}
	})
}

// FuzzDeltaShard feeds arbitrary bytes to the delta shard-file decoder.
// As in the base-format targets, the manifest's expectation (the
// deltaRef) is parsed from the fuzzed header when it parses, so the
// decoder runs on inputs whose header and manifest agree — its
// defences are the size bound, the per-ID range checks on both
// streams, and the trailing-byte check. Accepted inputs must decode to
// in-range, (dst,src)-sorted insert and tombstone streams.
func FuzzDeltaShard(f *testing.F) {
	for _, seed := range deltaShardSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "delta-0000-g000001.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ref := deltaRef{Gen: 1, Ins: -1, Del: -1} // mismatches unless the header declares counts
		if len(data) > 4 && bytes.Equal(data[:4], deltaMagic[:]) {
			if ic, k := binary.Uvarint(data[4:]); k > 0 && ic <= math.MaxInt64 {
				if dc, k2 := binary.Uvarint(data[4+k:]); k2 > 0 && dc <= math.MaxInt64 {
					ref.Ins, ref.Del = int64(ic), int64(dc)
				}
			}
		}
		const n, lo, hi = 256, 64, 128
		ins, del, _, err := readDeltaFile(path, n, lo, hi, ref)
		if err != nil {
			return
		}
		for _, pl := range []struct {
			name string
			want int64
			pairList
		}{{"insert", ref.Ins, ins}, {"tombstone", ref.Del, del}} {
			if int64(len(pl.src)) != pl.want || int64(len(pl.dst)) != pl.want {
				t.Fatalf("decoded %d/%d %s edges, header says %d", len(pl.src), len(pl.dst), pl.name, pl.want)
			}
			for i := range pl.src {
				if int(pl.src[i]) >= n {
					t.Fatalf("accepted %s source %d >= %d vertices", pl.name, pl.src[i], n)
				}
				if pl.dst[i] < lo || pl.dst[i] >= hi {
					t.Fatalf("accepted %s destination %d outside [%d,%d)", pl.name, pl.dst[i], lo, hi)
				}
				if i > 0 && pairLess(pl.dst[i], pl.src[i], pl.dst[i-1], pl.src[i-1]) {
					t.Fatalf("accepted %s stream not sorted by (dst,src) at edge %d", pl.name, i)
				}
			}
		}
	})
}

// checkDecodedInvariants asserts what acceptance by either decoder
// means: the declared edge count was honoured and every edge satisfies
// the invariants the engine's partition-exclusive apply assumes.
func checkDecodedInvariants(t *testing.T, c *graph.COO, want int64, n int, lo, hi graph.VID) {
	t.Helper()
	if int64(len(c.Src)) != want || int64(len(c.Dst)) != want {
		t.Fatalf("decoded %d/%d edges, header says %d", len(c.Src), len(c.Dst), want)
	}
	for i := range c.Src {
		if int(c.Src[i]) >= n {
			t.Fatalf("accepted source %d >= %d vertices", c.Src[i], n)
		}
		if c.Dst[i] < lo || c.Dst[i] >= hi {
			t.Fatalf("accepted destination %d outside [%d,%d)", c.Dst[i], lo, hi)
		}
	}
}

// manifestSeeds returns the corpus: valid v1 and v2 manifests plus the
// corrupt shapes TestStoreFailurePaths enumerates, serialised to bytes.
func manifestSeeds() [][]byte {
	valid := validManifest()
	mutate := func(edit func(*manifest)) []byte {
		m := valid
		// Deep-copy the slices an edit may alias.
		m.Bounds = append([]graph.VID(nil), valid.Bounds...)
		m.EdgeCounts = append([]int64(nil), valid.EdgeCounts...)
		m.SrcSummary = append([][]uint64(nil), valid.SrcSummary...)
		edit(&m)
		data, err := json.Marshal(m)
		if err != nil {
			panic(err)
		}
		return data
	}
	return [][]byte{
		mutate(func(*manifest) {}),
		// The same store declared in the other format — the structural
		// fields are format-independent, so both magics must open.
		mutate(func(m *manifest) { m.Magic = manifestMagicV1 }),
		[]byte("{"),
		[]byte("null"),
		[]byte(`{"magic":"ggrind-shards-v1"}`),
		[]byte(`{"magic":"ggrind-shards-v2"}`),
		mutate(func(m *manifest) { m.Magic = "not-a-shard-store" }),
		mutate(func(m *manifest) { m.Magic = "ggrind-shards-v3" }),
		mutate(func(m *manifest) { m.EdgeCounts = m.EdgeCounts[:1] }),
		mutate(func(m *manifest) { m.Bounds = m.Bounds[:2] }),
		mutate(func(m *manifest) { m.SrcSummary = m.SrcSummary[:1] }),
		mutate(func(m *manifest) { m.Bounds[1] = graph.VID(m.Vertices) + 64 }),
		mutate(func(m *manifest) { m.Bounds[1], m.Bounds[2] = m.Bounds[2], m.Bounds[1] }),
		mutate(func(m *manifest) { m.EdgeCounts[0]++ }),
		mutate(func(m *manifest) { m.Bounds[1] += 3 }),
		mutate(func(m *manifest) { m.Vertices = -1 }),
		mutate(func(m *manifest) { m.Edges = 1 << 60; m.EdgeCounts[0] = 1 << 60 }),
	}
}

// validManifest writes a real 4-shard store (default v2 format) and
// returns its manifest.
func validManifest() manifest {
	dir, err := os.MkdirTemp("", "shard-fuzz-seed-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st, err := Write(dir, gen.Chain(256), 4)
	if err != nil {
		panic(err)
	}
	return st.m
}

// rawShardFile writes Chain(256) as a 4-shard store in the given format
// and returns shard 1's bytes — the shard owning destinations [64,128),
// the range both fuzz targets decode against.
func rawShardFile(format Format) []byte {
	dir, err := os.MkdirTemp("", "shard-fuzz-seed-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	if _, err := WriteFormat(dir, gen.Chain(256), 4, format); err != nil {
		panic(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "shard-0001.bin"))
	if err != nil {
		panic(err)
	}
	return data
}

// shardFileSeeds returns the v1 corpus: a real shard file plus the
// header and payload corruptions from the fixed-fixture tests.
func shardFileSeeds() [][]byte {
	valid := rawShardFile(FormatV1)
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	hugeCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeCount[:8], 1<<60)
	badDst := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badDst[len(badDst)-4:], 200)
	empty := make([]byte, 8)          // zero edges, consistent size
	v2Bytes := rawShardFile(FormatV2) // mixed-format: a v2 file fed to the v1 decoder
	return [][]byte{valid, truncated, hugeCount, badDst, empty, {1, 2, 3}, v2Bytes}
}

// shardFileV2Seeds returns the v2 corpus: a real compressed shard plus
// the varint-level corruptions the streaming decoder must reject —
// truncated varints, deltas that overflow the destination range or the
// vertex count, trailing bytes, counts that outrun the file, and a raw
// v1 file (the mixed-format manifest case).
func shardFileV2Seeds() [][]byte {
	valid := rawShardFile(FormatV2)
	truncMidVarint := append([]byte(nil), valid[:len(valid)-1]...)
	trailing := append(append([]byte(nil), valid...), 0)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	// Hand-built streams over the fuzz target's fixed geometry
	// (n=256, destinations [64,128)).
	build := func(count uint64, vals ...uint64) []byte {
		var buf bytes.Buffer
		buf.Write(shardMagicV2[:])
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], count)])
		for _, v := range vals {
			buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
		}
		return buf.Bytes()
	}
	return [][]byte{
		valid,
		truncMidVarint,
		trailing,
		badMagic,
		build(0),                           // empty shard, exact size
		build(1, 64, 3),                    // single in-range edge (3 -> 64)
		build(1, 63, 3),                    // destination below the range
		build(1, 128, 3),                   // destination at the range's end
		build(2, 64, 3, 1<<40, 0),          // destination delta overflows the range
		build(1, 64, 300),                  // source beyond the vertex count
		build(2, 64, 3, 0, 1<<40),          // source delta overflows the vertex count
		build(2, 64, 3, 0, math.MaxUint64), // source delta wraps uint64
		build(1<<40, 64, 3),                // declared count outruns the file
		build(1<<63-1, 64, 3),              // count so large the min-size bound would overflow
		shardMagicV2[:],                    // magic only, count truncated
		build(1, 64),                       // source varint missing
		rawShardFile(FormatV1),             // mixed-format: raw v1 bytes
	}
}

// deltaShardSeeds returns the delta corpus: a real delta file written
// by ApplyBatch, plus hand-built corruptions over the fuzz target's
// fixed geometry (n=256, destinations [64,128)).
func deltaShardSeeds() [][]byte {
	valid := func() []byte {
		dir, err := os.MkdirTemp("", "shard-fuzz-seed-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := Create(dir, gen.Chain(256), WriteOptions{Partitions: 4})
		if err != nil {
			panic(err)
		}
		// Destinations in [64,128) → shard 1 gets the delta file.
		res, err := st.ApplyBatch(
			[]graph.Edge{{Src: 3, Dst: 64}, {Src: 5, Dst: 64}, {Src: 0, Dst: 100}},
			[]graph.Edge{{Src: 69, Dst: 70}},
		)
		if err != nil {
			panic(err)
		}
		if len(res.Dirty) == 0 {
			panic("seed batch dirtied nothing")
		}
		data, err := os.ReadFile(filepath.Join(dir, deltaFileName(1, 1)))
		if err != nil {
			panic(err)
		}
		return data
	}()
	build := func(ins, del uint64, vals ...uint64) []byte {
		var buf bytes.Buffer
		buf.Write(deltaMagic[:])
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], ins)])
		buf.Write(tmp[:binary.PutUvarint(tmp[:], del)])
		for _, v := range vals {
			buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
		}
		return buf.Bytes()
	}
	return [][]byte{
		valid,
		valid[:len(valid)-1],                     // truncated mid-varint
		append(append([]byte(nil), valid...), 0), // trailing byte
		deltaMagic[:],                            // counts truncated
		shardMagicV2[:],                          // a base v2 file fed to the delta decoder
		build(0, 0),                              // empty delta, exact size
		build(1, 0, 64, 3),                       // one in-range insert
		build(0, 1, 64, 3),                       // one in-range tombstone
		build(1, 1, 64, 3, 64, 3),                // both streams, fresh delta state each
		build(1, 0, 63, 3),                       // insert destination below the range
		build(0, 1, 128, 3),                      // tombstone destination at the range's end
		build(2, 0, 64, 3, 1<<40, 0),             // destination delta overflows the range
		build(1, 0, 64, 300),                     // source beyond the vertex count
		build(2, 0, 64, 3, 0, math.MaxUint64),    // source delta wraps uint64
		build(1<<40, 0, 64, 3),                   // declared count outruns the file
		build(1<<63-1, 1<<63-1),                  // counts so large the size bound would overflow
		build(1, 0, 64),                          // insert source varint missing
		build(1, 1, 64, 3),                       // tombstone stream missing entirely
	}
}

// FuzzBinSpill feeds arbitrary bytes to the bin spill-file decoder the
// budgeted scatter/gather cache replays. Like FuzzShardFile, the
// expected identity (generation, shard index, range base) is read from
// the fuzzed header itself — modelling a file whose name and header
// agree — so the checksum and structural validation are the decoder's
// only defence. Accepted inputs must satisfy the bin accounting
// invariants and re-encode to exactly the accepted bytes.
func FuzzBinSpill(f *testing.F) {
	for _, seed := range binSpillSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, idx, lo := int64(1), 7, graph.VID(448)
		if len(data) >= spillHeaderSize {
			gen = int64(binary.LittleEndian.Uint64(data[12:]))
			idx = int(binary.LittleEndian.Uint32(data[20:]))
			lo = graph.VID(binary.LittleEndian.Uint32(data[24:]))
		}
		b, err := decodeSpill(data, gen, idx, lo)
		if err != nil {
			return
		}
		if b.idx != idx || b.lo != lo {
			t.Fatalf("accepted bin carries identity (%d, %d), header declared (%d, %d)", b.idx, b.lo, idx, lo)
		}
		if b.entries < 0 {
			t.Fatalf("accepted bin declares %d entries", b.entries)
		}
		var total int64
		for _, s := range b.segs {
			total += int64(len(s))
		}
		if total != b.bytes {
			t.Fatalf("accepted bin accounts %d bytes, segments hold %d", b.bytes, total)
		}
		if re := encodeSpill(gen, b); !bytes.Equal(re, data) {
			t.Fatalf("accepted spill does not round-trip: %d bytes in, %d re-encoded", len(data), len(re))
		}
	})
}

func binSpillSeeds() [][]byte {
	valid := func() []byte {
		b := &binShard{
			idx:     7,
			lo:      448,
			segs:    [][]byte{{0x02, 0x06}, {0x04, 0x01, 0x02, 0x03}},
			entries: 3,
			bytes:   6,
		}
		return encodeSpill(1, b)
	}()
	mutate := func(f func(d []byte)) []byte {
		d := append([]byte(nil), valid...)
		f(d)
		return d
	}
	reCRC := func(d []byte) {
		binary.LittleEndian.PutUint32(d[8:12], crc32.ChecksumIEEE(d[12:]))
	}
	return [][]byte{
		valid,
		valid[:len(valid)-1],                     // trailing segment byte lost
		valid[:spillHeaderSize-1],                // header truncated
		append(append([]byte(nil), valid...), 0), // trailing byte
		nil,                                      // empty file
		mutate(func(d []byte) { d[0] = 'X' }),    // stomped magic
		mutate(func(d []byte) { d[len(d)-1] ^= 0xFF }), // payload flip, stale CRC
		mutate(func(d []byte) { // stale generation, valid CRC
			binary.LittleEndian.PutUint64(d[12:], 99)
			reCRC(d)
		}),
		mutate(func(d []byte) { // negative entry count, valid CRC
			binary.LittleEndian.PutUint64(d[28:], ^uint64(0))
			reCRC(d)
		}),
		mutate(func(d []byte) { // segment count outruns the file, valid CRC
			binary.LittleEndian.PutUint32(d[36:], 1<<30)
			reCRC(d)
		}),
		mutate(func(d []byte) { // first segment overruns the payload, valid CRC
			binary.LittleEndian.PutUint32(d[spillHeaderSize:], 1<<20)
			reCRC(d)
		}),
	}
}

// TestRegenFuzzCorpus rewrites the committed seed corpora under
// testdata/fuzz from the seed generators above. It is a no-op unless
// REGEN_FUZZ_CORPUS=1, so the corpora stay deterministic artefacts of
// the table tests rather than hand-maintained binaries.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "1" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzManifest", manifestSeeds())
	write("FuzzShardFile", shardFileSeeds())
	write("FuzzShardFileV2", shardFileV2Seeds())
	write("FuzzDeltaShard", deltaShardSeeds())
	write("FuzzBinSpill", binSpillSeeds())
}
