package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hilbert"
	"repro/internal/locality"
	"repro/internal/partition"
)

// PartitionSweep is the paper's partition-count axis (Figures 3, 5, 8),
// restricted to multiples of 4 as §III.D requires.
func PartitionSweep() []int { return []int{4, 8, 12, 24, 48, 96, 192, 384, 480} }

// Table1 renders the graph characterisation table over the Table I
// preset substitutes, including the original datasets' sizes for
// reference.
func Table1() string {
	var b strings.Builder
	b.WriteString("== Table I: graphs (scaled substitutes; paper sizes in brackets) ==\n")
	for _, p := range gen.Presets() {
		g := p.Build()
		s := graph.ComputeStats(p.Name, g)
		fmt.Fprintf(&b, "%s  [paper: |V|=%s |E|=%s] kind=%s directed=%v\n",
			s.String(), p.PaperVertices, p.PaperEdges, p.Kind, p.Directed)
	}
	return b.String()
}

// Table2 renders the algorithm characterisation table.
func Table2() string {
	var b strings.Builder
	b.WriteString("== Table II: algorithms ==\n")
	fmt.Fprintf(&b, "%-8s %-10s %-6s %s\n", "Code", "Traversal", "V/E", "Description")
	for _, s := range algorithms.AllSpecs() {
		ve := "V"
		if s.EdgeOriented {
			ve = "E"
		}
		desc := s.Description
		if s.Iterations != "" {
			desc += " (" + s.Iterations + ")"
		}
		fmt.Fprintf(&b, "%-8s %-10s %-6s %s\n", s.Code, s.Dir.String(), ve, desc)
	}
	return b.String()
}

// Fig2 reproduces the reuse-distance histograms of next-frontier updates
// at each partition count: one series per P, X = log₂ distance bucket
// upper bound, Y = frequency.
func Fig2(g *graph.Graph, partitions []int) *Figure {
	fig := &Figure{
		ID:     "Fig2",
		Title:  "reuse distance distribution of next-frontier updates (COO, partitioning-by-destination)",
		XLabel: "distance<=",
		YLabel: "frequency",
	}
	curves := locality.ReuseCurve(g, partitions)
	for _, p := range partitions {
		h := curves[p]
		s := Series{Name: fmt.Sprintf("P=%d", p)}
		for i := 0; i < h.NonEmpty(); i++ {
			s.X = append(s.X, float64(int64(1)<<uint(i+1)-1))
			s.Y = append(s.Y, float64(h.Buckets[i]))
		}
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("P=%d: max distance %d, mean %.1f", p, h.MaxObserved(), h.Mean()))
	}
	return fig
}

// Fig3 reproduces the replication-factor curves: one series per graph,
// X = partitions, Y = replication factor of the pruned CSR layout.
func Fig3(graphs map[string]*graph.Graph, partitions []int) *Figure {
	fig := &Figure{
		ID:     "Fig3",
		Title:  "replication factor vs number of partitions (partitioning-by-destination)",
		XLabel: "partitions",
		YLabel: "replication factor",
	}
	for name, g := range graphs {
		s := Series{Name: name}
		for _, p := range partitions {
			pt := partition.ByDestination(g, p, partition.BalanceEdges)
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, partition.ReplicationFactor(g, pt))
		}
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: worst case r(|V|)=%.1f",
			name, partition.WorstCaseReplicationFactor(g)))
	}
	return fig
}

// Fig4 reproduces the storage-size curves for one graph: series per
// layout, X = partitions, Y = modelled storage in MiB.
func Fig4(name string, g *graph.Graph, partitions []int) *Figure {
	fig := &Figure{
		ID:     "Fig4",
		Title:  fmt.Sprintf("graph storage size vs partitions (%s)", name),
		XLabel: "partitions",
		YLabel: "MiB",
	}
	curve := partition.Curve(g, partitions)
	mk := func(label string, pick func(partition.ByteSizes) int64) {
		s := Series{Name: label}
		for _, c := range curve {
			s.X = append(s.X, float64(c.P))
			s.Y = append(s.Y, float64(pick(c))/(1<<20))
		}
		fig.Series = append(fig.Series, s)
	}
	mk("CSR", func(c partition.ByteSizes) int64 { return c.CSRUnpruned })
	mk("CSR-pruned", func(c partition.ByteSizes) int64 { return c.CSRPruned })
	mk("COO", func(c partition.ByteSizes) int64 { return c.COO })
	mk("CSC", func(c partition.ByteSizes) int64 { return c.CSC })
	return fig
}

// LayoutConfigs are the four configurations of Figures 5 and 6, in
// legend order.
func LayoutConfigs() []struct {
	Name string
	Opts core.Options
} {
	return []struct {
		Name string
		Opts core.Options
	}{
		{"CSR + a", core.Options{Layout: core.LayoutCSR}},
		{"CSC + na", core.Options{Layout: core.LayoutCSC}},
		{"COO + na", core.Options{Layout: core.LayoutCOO}},
		{"COO + a", core.Options{Layout: core.LayoutCOO, ForceAtomics: true}},
	}
}

// Fig5 reproduces the partition-count sweeps: for each algorithm, a
// figure with one series per layout configuration, X = partitions,
// Y = median execution seconds. Fig. 6 is the same experiment on the
// small graphs, so it shares this implementation.
func Fig5(gname string, g *graph.Graph, codes []string, partitions []int, reps, threads int) map[string]*Figure {
	out := make(map[string]*Figure, len(codes))
	for _, code := range codes {
		out[code] = &Figure{
			ID:     "Fig5/" + code,
			Title:  fmt.Sprintf("%s on %s: execution time vs partitions per layout", code, gname),
			XLabel: "partitions",
			YLabel: "seconds",
		}
	}
	rg := g.Reverse()
	for _, lc := range LayoutConfigs() {
		series := map[string]*Series{}
		for _, code := range codes {
			series[code] = &Series{Name: lc.Name}
		}
		for _, p := range partitions {
			opts := lc.Opts
			opts.Partitions = p
			opts.Threads = threads
			sys := core.NewEngine(g, opts)
			var rsys *core.Engine
			src := algorithms.SourceVertex(g)
			for _, code := range codes {
				spec, ok := algorithms.SpecByCode(code)
				if !ok {
					panic("bench: unknown algorithm " + code)
				}
				if spec.NeedsReverse && rsys == nil {
					rsys = core.NewEngine(rg, opts)
				}
				d := MedianTime(reps, func() { spec.Run(sys, rsys, src) })
				s := series[code]
				s.X = append(s.X, float64(p))
				s.Y = append(s.Y, Seconds(d))
			}
		}
		for _, code := range codes {
			out[code].Series = append(out[code].Series, *series[code])
		}
	}
	return out
}

// Fig7 reproduces the edge sort-order comparison: COO partitions sorted
// by source, Hilbert and destination order, times normalised to source
// order. One series per order; X indexes the algorithm list (see notes).
func Fig7(gname string, g *graph.Graph, codes []string, p, reps, threads int) *Figure {
	fig := &Figure{
		ID:     "Fig7",
		Title:  fmt.Sprintf("edge sort order on %s (normalised to source order, P=%d)", gname, p),
		XLabel: "algorithm#",
		YLabel: "relative time",
	}
	orders := []hilbert.EdgeOrder{hilbert.BySource, hilbert.ByHilbert, hilbert.ByDestination}
	times := make(map[hilbert.EdgeOrder][]time.Duration)
	src := algorithms.SourceVertex(g)
	for _, ord := range orders {
		opts := core.Options{Partitions: p, Threads: threads, Layout: core.LayoutCOO, EdgeOrder: ord}
		sys := core.NewEngine(g, opts)
		var rsys *core.Engine
		for _, code := range codes {
			spec, _ := algorithms.SpecByCode(code)
			if spec.NeedsReverse && rsys == nil {
				rsys = core.NewEngine(g.Reverse(), opts)
			}
			d := MedianTime(reps, func() { spec.Run(sys, rsys, src) })
			times[ord] = append(times[ord], d)
		}
	}
	for _, ord := range orders {
		s := Series{Name: ord.String()}
		for i := range codes {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, Speedup(times[ord][i], times[hilbert.BySource][i]))
		}
		fig.Series = append(fig.Series, s)
	}
	for i, code := range codes {
		fig.Notes = append(fig.Notes, fmt.Sprintf("algorithm#%d = %s", i, code))
	}
	return fig
}

// Fig8 reproduces the MPKI curves: simulated LLC misses per kilo-
// instruction for PR (dense COO), BF (partially-active COO) and BFS
// (backward CSC), X = partitions.
func Fig8(gname string, g *graph.Graph, partitions []int) *Figure {
	fig := &Figure{
		ID:     "Fig8",
		Title:  fmt.Sprintf("simulated MPKI vs partitions (%s)", gname),
		XLabel: "partitions",
		YLabel: "MPKI",
	}
	cfg := locality.AdaptiveLLC(g.NumVertices())
	kinds := []struct {
		name   string
		kind   locality.EdgeTraversalKind
		active int
	}{
		{"PR", locality.KindCOOForward, 1},
		{"BF", locality.KindCOOActive, 4},
		{"BFS", locality.KindCSCBackward, 1},
	}
	for _, k := range kinds {
		res := locality.MeasureMPKI(g, k.kind, k.active, partitions, cfg)
		s := Series{Name: k.name}
		for _, r := range res {
			s.X = append(s.X, float64(r.Partitions))
			s.Y = append(s.Y, r.MPKI)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig9 reproduces the system comparison on one graph: one series per
// system (L, P, GG-v1, GG-v2), X indexes the algorithm list, Y = median
// seconds. ggPartitions is GG-v2's partition count (the paper uses 384).
func Fig9(gname string, g *graph.Graph, codes []string, ggPartitions, reps, threads int) *Figure {
	fig := &Figure{
		ID:     "Fig9/" + gname,
		Title:  fmt.Sprintf("system comparison on %s", gname),
		XLabel: "algorithm#",
		YLabel: "seconds",
	}
	src := algorithms.SourceVertex(g)
	for _, name := range SystemNames() {
		sys, rsys := SystemPair(name, g, ggPartitions, threads)
		s := Series{Name: name}
		for i, code := range codes {
			spec, _ := algorithms.SpecByCode(code)
			d := MedianTime(reps, func() { spec.Run(sys, rsys, src) })
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, Seconds(d))
		}
		fig.Series = append(fig.Series, s)
	}
	for i, code := range codes {
		fig.Notes = append(fig.Notes, fmt.Sprintf("algorithm#%d = %s", i, code))
	}
	return fig
}

// SpeedupSummary derives, from a Fig9-style figure (series per system,
// X = algorithm index), GG-v2's speedup factor over each baseline per
// algorithm, appended to experiment output so EXPERIMENTS.md can quote
// factors directly.
func SpeedupSummary(fig *Figure) string {
	var gg *Series
	for i := range fig.Series {
		if fig.Series[i].Name == "GG-v2" {
			gg = &fig.Series[i]
		}
	}
	if gg == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup of GG-v2 (>1 means GG-v2 faster):\n")
	for _, s := range fig.Series {
		if s.Name == "GG-v2" {
			continue
		}
		fmt.Fprintf(&b, "  vs %-6s", s.Name)
		for i := range gg.X {
			v, ok := s.lookup(gg.X[i])
			if !ok || gg.Y[i] == 0 {
				fmt.Fprintf(&b, " %6s", "-")
				continue
			}
			fmt.Fprintf(&b, " %6.2f", v/gg.Y[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig10 reproduces the PRDelta thread-scalability comparison: one series
// per system, X = threads, Y = median seconds.
func Fig10(gname string, g *graph.Graph, threadCounts []int, ggPartitions, reps int) *Figure {
	fig := &Figure{
		ID:     "Fig10/" + gname,
		Title:  fmt.Sprintf("PRDelta scalability on %s", gname),
		XLabel: "threads",
		YLabel: "seconds",
	}
	for _, name := range SystemNames() {
		s := Series{Name: name}
		for _, th := range threadCounts {
			sys := BuildSystem(name, g, ggPartitions, th)
			d := MedianTime(reps, func() { algorithms.PRDelta(sys, 60) })
			s.X = append(s.X, float64(th))
			s.Y = append(s.Y, Seconds(d))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// AtomicsAblation reproduces the §III.C claim (6.1%–23.7% speedup from
// dropping atomics once every partition is thread-exclusive): COO+a vs
// COO+na per algorithm at partition count p.
func AtomicsAblation(gname string, g *graph.Graph, codes []string, p, reps, threads int) *Figure {
	fig := &Figure{
		ID:     "Atomics",
		Title:  fmt.Sprintf("COO with vs without atomics on %s (P=%d)", gname, p),
		XLabel: "algorithm#",
		YLabel: "seconds",
	}
	src := algorithms.SourceVertex(g)
	configs := []struct {
		name  string
		force bool
	}{{"COO + a", true}, {"COO + na", false}}
	var na, wa []time.Duration
	for _, cfg := range configs {
		opts := core.Options{Partitions: p, Threads: threads, Layout: core.LayoutCOO, ForceAtomics: cfg.force}
		sys := core.NewEngine(g, opts)
		var rsys *core.Engine
		s := Series{Name: cfg.name}
		for i, code := range codes {
			spec, _ := algorithms.SpecByCode(code)
			if spec.NeedsReverse && rsys == nil {
				rsys = core.NewEngine(g.Reverse(), opts)
			}
			d := MedianTime(reps, func() { spec.Run(sys, rsys, src) })
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, Seconds(d))
			if cfg.force {
				wa = append(wa, d)
			} else {
				na = append(na, d)
			}
		}
		fig.Series = append(fig.Series, s)
	}
	for i, code := range codes {
		fig.Notes = append(fig.Notes, fmt.Sprintf("algorithm#%d = %s: no-atomics speedup %.1f%%",
			i, code, (Speedup(wa[i], na[i])-1)*100))
	}
	return fig
}
