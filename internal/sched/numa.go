package sched

// Topology models the NUMA structure of the paper's evaluation machine
// (4 domains). Graph partitions are assigned to domains round-robin —
// the paper allocates equal partition counts per domain — and the
// experiment harness can report per-domain load. Because Go cannot pin
// memory pages, the model's role is bookkeeping: deciding which
// partitions belong together and validating that partition counts are
// multiples of the domain count as the paper requires.
type Topology struct {
	Domains int
}

// DefaultTopology mirrors the paper's 4-socket machine.
func DefaultTopology() Topology { return Topology{Domains: 4} }

// DomainOf returns the domain that owns partition p under round-robin
// assignment.
func (t Topology) DomainOf(p int) int {
	if t.Domains <= 0 {
		return 0
	}
	return p % t.Domains
}

// PartitionsFor rounds the requested partition count up to a multiple of
// the domain count, as §III.D prescribes ("we consider only multiples of
// 4 and allocate the same number of partitions on each NUMA domain").
func (t Topology) PartitionsFor(requested int) int {
	if t.Domains <= 1 || requested <= 0 {
		if requested < 1 {
			return 1
		}
		return requested
	}
	r := requested % t.Domains
	if r == 0 {
		return requested
	}
	return requested + t.Domains - r
}

// DomainLoads aggregates per-partition loads into per-domain loads.
func (t Topology) DomainLoads(partLoads []int64) []int64 {
	d := t.Domains
	if d <= 0 {
		d = 1
	}
	out := make([]int64, d)
	for p, l := range partLoads {
		out[t.DomainOf(p)] += l
	}
	return out
}
