// Package polymer implements the two NUMA-partitioned baselines of the
// paper's Figure 9: Polymer (Zhang, Chen & Chen, PPoPP'15) and
// GraphGrind-v1 (Sun et al., ICS'17). Both partition the graph into as
// many pieces as there are NUMA domains (4 on the paper's machine) and
// keep only CSR/CSC layouts; they differ in the balancing criterion and
// in whether zero-degree vertices are pruned from the partitioned CSR.
//
// Like Ligra, both use a two-way sparse/dense switch and a
// programmer-supplied dense direction. Unlike Ligra, the sparse and
// dense-forward paths run over the *partitioned* CSR, so every active
// vertex is touched once per partition it is replicated in — the work
// increase of §II.F that GraphGrind-v2's unpartitioned sparse path
// avoids.
package polymer

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sched"
)

// Config selects between the Polymer and GraphGrind-v1 variants.
type Config struct {
	// SystemName labels experiment output.
	SystemName string
	// Partitions; 0 means one per modelled NUMA domain.
	Partitions int
	// Criterion: Polymer balances vertices, GG-v1 balances edges (its
	// contribution was load balance of graph partitioning).
	Criterion partition.Criterion
	// Topology models the NUMA domains.
	Topology sched.Topology
}

// Polymer returns the configuration of the Polymer baseline.
func Polymer() Config {
	return Config{SystemName: "Polymer", Criterion: partition.BalanceVertices}
}

// GGv1 returns the configuration of the GraphGrind-v1 baseline.
func GGv1() Config {
	return Config{SystemName: "GG-v1", Criterion: partition.BalanceEdges}
}

// Engine is a NUMA-partitioned CSR/CSC system.
type Engine struct {
	g         *graph.Graph
	cfg       Config
	pool      *sched.Pool
	pt        *partition.Partitioning
	pcsr      *partition.PCSR
	sparseDiv int64
}

var _ api.System = (*Engine)(nil)

// New builds the baseline engine on g with the given parallelism.
func New(g *graph.Graph, cfg Config, threads int) *Engine {
	if cfg.Topology.Domains <= 0 {
		cfg.Topology = sched.DefaultTopology()
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = cfg.Topology.Domains
	}
	e := &Engine{
		g:         g,
		cfg:       cfg,
		pool:      sched.NewPool(threads),
		pt:        partition.ByDestination(g, cfg.Partitions, cfg.Criterion),
		sparseDiv: 20,
	}
	e.pcsr = partition.NewPCSR(g, e.pt)
	return e
}

// Name implements api.System.
func (e *Engine) Name() string { return e.cfg.SystemName }

// Graph implements api.System.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Threads implements api.System.
func (e *Engine) Threads() int { return e.pool.Threads() }

// Partitioning exposes the engine's partitioning for experiments.
func (e *Engine) Partitioning() *partition.Partitioning { return e.pt }

// VertexMap implements api.System.
func (e *Engine) VertexMap(f *frontier.Frontier, fn func(graph.VID)) {
	api.VertexMap(e.pool, f, fn)
}

// VertexFilter implements api.System.
func (e *Engine) VertexFilter(f *frontier.Frontier, pred func(graph.VID) bool) *frontier.Frontier {
	return api.VertexFilter(e.pool, e.g, f, pred)
}

// EdgeMap dispatches on the two-way density test with a programmer-
// supplied dense direction, over the partitioned layouts.
func (e *Engine) EdgeMap(f *frontier.Frontier, op api.EdgeOp, dir api.Direction) *frontier.Frontier {
	if f.Count() == 0 {
		return frontier.New(e.g.NumVertices())
	}
	work := f.Count() + f.OutDegree(e.g)
	if work <= e.g.NumEdges()/e.sparseDiv {
		return e.sparsePartitioned(f, op)
	}
	if dir == api.DirBackward {
		return e.denseBackward(f, op)
	}
	return e.denseForwardPCSR(f, op)
}

// sparsePartitioned applies a sparse frontier against the partitioned
// CSR: each partition task scans the whole active list and applies the
// slice of each vertex's out-edges that lands in its range. Because one
// worker owns each destination range, no atomics are needed, but the
// active list is scanned once per partition — the control overhead
// GraphGrind-v2 removes by keeping an unpartitioned CSR for this case.
func (e *Engine) sparsePartitioned(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	active := f.List()
	next := frontier.NewBitmap(g.NumVertices())
	type acc struct {
		count, outDeg int64
		_             [6]int64
	}
	accs := make([]acc, e.pool.Threads())
	e.pool.ParallelTasks(e.pt.P, func(task, worker int) {
		lo, hi := e.pt.Range(task)
		if lo == hi {
			return
		}
		a := &accs[worker]
		for _, u := range active {
			ns := g.OutNeighbors(u)
			// Narrow to the neighbours inside this partition's range
			// (neighbour lists are sorted by destination).
			start := lowerBound(ns, lo)
			for _, v := range ns[start:] {
				if v >= hi {
					break
				}
				if cond(v) && op.Update(u, v) && !next.Get(v) {
					next.Set(v)
					a.count++
					a.outDeg += g.OutDegree(v)
				}
			}
		}
	})
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(g.NumVertices(), next)
	nf.SetStats(count, outDeg)
	return nf
}

func lowerBound(ns []graph.VID, v graph.VID) int {
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// denseForwardPCSR traverses the partitioned pruned CSR forward. Threads
// parallelise over the replicated sources within each partition, so
// multiple workers can update one destination: atomics are required.
func (e *Engine) denseForwardPCSR(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	type acc struct {
		count, outDeg int64
		_             [6]int64
	}
	accs := make([]acc, e.pool.Threads())
	for _, part := range e.pcsr.Parts {
		verts, off, dsts := part.Verts, part.Off, part.Dst
		e.pool.ParallelForChunks(len(verts), sched.DefaultChunk, func(w, lo, hi int) {
			a := &accs[w]
			for k := lo; k < hi; k++ {
				u := verts[k]
				if !cur.Get(u) {
					continue
				}
				for _, v := range dsts[off[k]:off[k+1]] {
					if cond(v) && op.UpdateAtomic(u, v) && next.TestAndSet(v) {
						a.count++
						a.outDeg += g.OutDegree(v)
					}
				}
			}
		})
	}
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(g.NumVertices(), next)
	nf.SetStats(count, outDeg)
	return nf
}

// denseBackward traverses the whole-graph CSC over the partitioning's
// vertex ranges (one worker per partition; with only ~4 partitions this
// is the limited parallelism the paper's 384-range CSC chunking fixes).
func (e *Engine) denseBackward(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	type acc struct {
		count, outDeg int64
		_             [6]int64
	}
	accs := make([]acc, e.pool.Threads())
	e.pool.ParallelTasks(e.pt.P, func(task, worker int) {
		lo, hi := e.pt.Range(task)
		a := &accs[worker]
		for v := lo; v < hi; v++ {
			if !cond(v) {
				continue
			}
			added := false
			for _, u := range g.InNeighbors(v) {
				if !cur.Get(u) {
					continue
				}
				if op.Update(u, v) {
					if !added {
						next.Set(v)
						a.count++
						a.outDeg += g.OutDegree(v)
						added = true
					}
					if !cond(v) {
						break
					}
				}
			}
		}
	})
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(g.NumVertices(), next)
	nf.SetStats(count, outDeg)
	return nf
}
