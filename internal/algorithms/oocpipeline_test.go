package algorithms

import (
	"reflect"
	"testing"

	"repro/internal/api"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shard"
)

// The OOC pipeline equivalence suite: every algorithm in the repository
// — the eight Table II applications plus the five beyond-Table-II ones
// — must produce bit-identical results on the out-of-core engine across
// the whole concurrency ladder:
//
//   - the strict sequential sweep (NoPrefetch: loads and applies
//     alternate on one goroutine) — the reference;
//   - the k=1 window (the original double buffer's staging depth) with
//     cross-domain concurrent apply;
//   - the k=D window, where up to all four modelled NUMA domains apply
//     shards simultaneously while the stager runs D shards ahead;
//   - the async-read rungs (IODepth 2 and D): the aio reader keeps
//     several uncached shard reads in flight at once, so reads complete
//     out of plan order while admission stays plan-ordered;
//   - the same engine over a store written in the legacy raw (v1)
//     shard-file encoding, so the on-disk format joins the ladder: the
//     compressed (v2) default and the raw layout must decode to
//     per-destination-identical shards, and therefore identical results;
//   - the zigzag and residency-first sweep-order policies over a
//     deliberately tight LRU, so the sweep planner permutes shard plans
//     mid-algorithm: plan order may change only when a shard is read,
//     never what is computed.
//
// This is the strongest form of the concurrency correctness claim:
// neither staging depth nor cross-domain interleaving may change *what*
// is computed, only *when* a shard becomes resident and which domain's
// workers are busy — so even the float64 accumulations (whose results
// depend on per-destination application order) must match exactly, not
// just within tolerance. Run under -race in CI, this doubles as the
// schedule-interleaving sweep for the concurrent apply path.

func TestOOCPipelineBitIdenticalAcrossAllAlgorithms(t *testing.T) {
	directed := gen.TinySocial()
	symmetric := gen.Symmetrise(gen.PowerLaw(1<<9, 1<<12, 2.3, 5))
	src := SourceVertex(directed)
	symSrc := SourceVertex(symmetric)

	// The concurrency ladder, sequential reference first.
	variants := []struct {
		name string
		mk   func(t *testing.T, g *graph.Graph) api.System
	}{
		{"sequential", func(t *testing.T, g *graph.Graph) api.System { return oocNoPrefetchEngine(t, g) }},
		{"prefetch", func(t *testing.T, g *graph.Graph) api.System { return oocEngine(t, g) }},
		{"window-1", func(t *testing.T, g *graph.Graph) api.System { return oocWindowEngine(t, g, 1) }},
		{"window-D", func(t *testing.T, g *graph.Graph) api.System { return oocWindowEngine(t, g, 4) }},
		// Async-read rungs: several uncached reads in flight at once,
		// completions reordering freely, admission still in plan order.
		{"iodepth-2", func(t *testing.T, g *graph.Graph) api.System { return oocIODepthEngine(t, g, 2) }},
		{"iodepth-D", func(t *testing.T, g *graph.Graph) api.System { return oocIODepthEngine(t, g, 4) }},
		// The same ladder endpoint over a raw (v1) store: the on-disk
		// format must change bytes, never results.
		{"v1-store", func(t *testing.T, g *graph.Graph) api.System { return oocV1StoreEngine(t, g) }},
		// Sweep-order rungs: the planner reorders what the stager walks,
		// so these double as interleaving fodder for the concurrent sweep.
		{"order-zigzag", func(t *testing.T, g *graph.Graph) api.System {
			return oocOrderEngine(t, g, shard.OrderZigzag)
		}},
		{"order-residency-first", func(t *testing.T, g *graph.Graph) api.System {
			return oocOrderEngine(t, g, shard.OrderResidencyFirst)
		}},
		// Partition-centric rungs: dense sweeps run scatter (stream each
		// staged shard into per-shard update bins) then gather (each
		// domain replays its own bins), with bins retained across sweeps;
		// sparse sweeps fall back to edge-centric mid-algorithm. Covered
		// at the window extremes and at IODepth D, so the two-phase path
		// composes with every staging configuration on the ladder.
		{"scatter-gather", func(t *testing.T, g *graph.Graph) api.System { return oocScatterGatherEngine(t, g, 1, 1) }},
		{"scatter-gather-window-D", func(t *testing.T, g *graph.Graph) api.System { return oocScatterGatherEngine(t, g, 4, 1) }},
		{"scatter-gather-iodepth-D", func(t *testing.T, g *graph.Graph) api.System { return oocScatterGatherEngine(t, g, 4, 4) }},
		// Eviction-pressure rung: the minimum legal bin budget forces
		// every oversized bin through the spill/replay (or re-scatter)
		// path, so gather correctness under constant eviction and spill
		// round-trips is differentially pinned for all 14 algorithms.
		{"scatter-gather-bin-budget", func(t *testing.T, g *graph.Graph) api.System { return oocBinBudgetEngine(t, g) }},
		{"shared-session", func(t *testing.T, g *graph.Graph) api.System { return oocSharedSessionEngine(t, g) }},
		// Log-structured rungs: the same content reached by mutation —
		// edges held back and re-applied as a batch with foreign edges
		// tombstoned away — served base+delta merged, then compacted.
		// Neither the delta layer nor compaction may change a single bit
		// of any algorithm's result.
		{"delta-store", func(t *testing.T, g *graph.Graph) api.System { return oocMutatedStoreEngine(t, g, false) }},
		{"compacted-store", func(t *testing.T, g *graph.Graph) api.System { return oocMutatedStoreEngine(t, g, true) }},
	}

	// Each entry runs one algorithm to completion through api.System and
	// returns its full result struct for deep comparison. rsys is the
	// engine over the reversed graph, built only for BC — the one
	// algorithm that traverses it.
	runs := []struct {
		name        string
		g           *graph.Graph
		needReverse bool
		run         func(sys, rsys api.System) interface{}
	}{
		{"BC", directed, true, func(sys, rsys api.System) interface{} { return BC(sys, rsys, src) }},
		{"CC", directed, false, func(sys, _ api.System) interface{} { return CC(sys) }},
		{"PR", directed, false, func(sys, _ api.System) interface{} { return PR(sys, 10) }},
		{"BFS", directed, false, func(sys, _ api.System) interface{} { return BFS(sys, src) }},
		{"PRDelta", directed, false, func(sys, _ api.System) interface{} { return PRDelta(sys, 60) }},
		{"SPMV", directed, false, func(sys, _ api.System) interface{} { return SPMV(sys) }},
		{"BF", directed, false, func(sys, _ api.System) interface{} { return BellmanFord(sys, src) }},
		{"BP", directed, false, func(sys, _ api.System) interface{} { return BP(sys, 10) }},
		{"KCore", symmetric, false, func(sys, _ api.System) interface{} { return KCore(sys) }},
		{"MIS", symmetric, false, func(sys, _ api.System) interface{} { return MIS(sys) }},
		{"Radii", symmetric, false, func(sys, _ api.System) interface{} { return Radii(sys) }},
		{"Coloring", symmetric, false, func(sys, _ api.System) interface{} { return Coloring(sys) }},
		{"TC", symmetric, false, func(sys, _ api.System) interface{} { return TriangleCount(sys) }},
		{"BFS-sym", symmetric, false, func(sys, _ api.System) interface{} { return BFS(sys, symSrc) }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			var want interface{}
			for _, v := range variants {
				var rsys api.System
				if r.needReverse {
					rsys = v.mk(t, r.g.Reverse())
				}
				got := r.run(v.mk(t, r.g), rsys)
				if v.name == "sequential" {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s results differ between the sequential sweep and %s:\nsequential: %+v\n%s: %+v",
						r.name, v.name, want, v.name, got)
				}
			}
		})
	}
}
