// Package shard provides GraphChi-style out-of-core processing — the
// system the paper's partitioning-by-destination originates from (§II.B
// cites GraphChi's scheme; out-of-core engines "determine the
// partitioning factor such that individual partitions fit in core
// memory").
//
// The package has two layers. Store is the storage substrate: a graph's
// partitioned COO is written to one file per shard, and iteration
// streams shards from disk so resident edge data is bounded by a single
// shard regardless of |E|. Decoding is defensive end to end — manifests
// and shard files are validated structurally (magic, bounds, alignment,
// edge-count/file-size agreement) before anything is allocated or
// trusted, so corrupt or hostile directories surface as errors, never
// panics.
//
// Engine builds a full api.System on top of the Store, so every
// algorithm written against the engine-neutral API runs unmodified out
// of core. Each EdgeMap is a pipelined sweep in four stages:
//
//	plan     — pick the shard sequence: exact (walk only the active
//	           vertices' out-lists) for sparse frontiers, source-range
//	           summary pruning for dense ones;
//	prefetch — a dedicated staging goroutine loads shard i+1 from disk,
//	           or promotes it from the LRU cache, while shard i is being
//	           applied (a strict double buffer: at most one shard staged
//	           ahead, at most one uncached load in flight);
//	apply    — the resident shard is applied in parallel over 64-aligned
//	           destination sub-ranges by the workers of the modelled
//	           NUMA domain that owns the shard's destination range
//	           (round-robin shard→domain placement, Polymer-style), so
//	           updates are partition-exclusive and need no atomics;
//	publish  — the next frontier and its statistics are assembled once,
//	           after the last shard.
//
// The same partitioning invariant as in-memory processing holds: a
// shard holds all in-edges of its vertex range, so updates from a shard
// sweep are confined to that range — which is also why the per-domain
// placement makes every next-array update domain-local by construction
// (locality.MeasureNUMATraffic quantifies this).
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/partition"
)

// manifest is the on-disk index of a sharded graph.
type manifest struct {
	Magic      string      `json:"magic"`
	Vertices   int         `json:"vertices"`
	Edges      int64       `json:"edges"`
	Shards     int         `json:"shards"`
	Bounds     []graph.VID `json:"bounds"`
	EdgeCounts []int64     `json:"edge_counts"`
	// SrcSummary[i] is a bitset over the P destination ranges: bit j is
	// set iff shard i contains an edge whose source lies in range j. The
	// engine's frontier-aware sweep intersects it with the frontier's
	// active ranges to skip shards. Optional: stores written before the
	// field existed compute it lazily with one streaming pass.
	SrcSummary [][]uint64 `json:"src_summary,omitempty"`
}

const manifestMagic = "ggrind-shards-v1"

// Store is an opened sharded graph directory.
type Store struct {
	dir string
	m   manifest
}

// Write shards g into dir (created if needed) with p partitions by
// destination and returns the opened store.
func Write(dir string, g *graph.Graph, p int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	pcoo := partition.NewPCOO(g, pt)
	m := manifest{
		Magic:    manifestMagic,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Shards:   pt.P,
		Bounds:   pt.Bounds,
	}
	for i, part := range pcoo.Parts {
		m.EdgeCounts = append(m.EdgeCounts, part.NumEdges())
		summary := make([]uint64, summaryWords(pt.P))
		for _, u := range part.Src {
			j := pt.Home(u)
			summary[j/64] |= 1 << (j % 64)
		}
		m.SrcSummary = append(m.SrcSummary, summary)
		if err := writeShardFile(shardPath(dir, i), part); err != nil {
			return nil, err
		}
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		return nil, err
	}
	return &Store{dir: dir, m: m}, nil
}

// Open loads an existing sharded graph directory.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %v", err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("shard: bad magic %q", m.Magic)
	}
	if m.Shards != len(m.EdgeCounts) || len(m.Bounds) != m.Shards+1 {
		return nil, fmt.Errorf("shard: inconsistent manifest")
	}
	if m.Vertices < 0 || m.Edges < 0 {
		return nil, fmt.Errorf("shard: negative sizes in manifest (%d vertices, %d edges)", m.Vertices, m.Edges)
	}
	if m.Bounds[0] != 0 || int(m.Bounds[m.Shards]) != m.Vertices {
		return nil, fmt.Errorf("shard: bounds span [%d,%d], want [0,%d]", m.Bounds[0], m.Bounds[m.Shards], m.Vertices)
	}
	var edgeSum int64
	for i := 0; i < m.Shards; i++ {
		if m.Bounds[i] > m.Bounds[i+1] {
			return nil, fmt.Errorf("shard: bounds not monotone at %d", i)
		}
		// Interior bounds must be BoundaryAlign-aligned (or the exhausted
		// tail |V|): the engine's non-atomic parallel apply relies on
		// ranges never sharing a frontier-bitmap word, so a foreign store
		// violating it would corrupt frontiers silently.
		if i > 0 && int(m.Bounds[i])%partition.BoundaryAlign != 0 && int(m.Bounds[i]) != m.Vertices {
			return nil, fmt.Errorf("shard: bound %d (%d) not aligned to %d vertices", i, m.Bounds[i], partition.BoundaryAlign)
		}
		if m.EdgeCounts[i] < 0 {
			return nil, fmt.Errorf("shard: negative edge count for shard %d", i)
		}
		edgeSum += m.EdgeCounts[i]
	}
	if edgeSum != m.Edges {
		return nil, fmt.Errorf("shard: edge counts sum to %d, manifest says %d", edgeSum, m.Edges)
	}
	if m.SrcSummary != nil {
		if len(m.SrcSummary) != m.Shards {
			return nil, fmt.Errorf("shard: source summary covers %d shards, want %d", len(m.SrcSummary), m.Shards)
		}
		for i, s := range m.SrcSummary {
			if len(s) != summaryWords(m.Shards) {
				return nil, fmt.Errorf("shard: source summary %d has %d words, want %d", i, len(s), summaryWords(m.Shards))
			}
		}
	}
	return &Store{dir: dir, m: m}, nil
}

// NumVertices returns |V|.
func (s *Store) NumVertices() int { return s.m.Vertices }

// NumEdges returns |E|.
func (s *Store) NumEdges() int64 { return s.m.Edges }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return s.m.Shards }

// Range returns shard i's destination vertex range.
func (s *Store) Range(i int) (lo, hi graph.VID) { return s.m.Bounds[i], s.m.Bounds[i+1] }

// Home returns the shard whose destination range contains v.
func (s *Store) Home(v graph.VID) int {
	pt := partition.Partitioning{P: s.m.Shards, Bounds: s.m.Bounds}
	return pt.Home(v)
}

func summaryWords(p int) int { return (p + 63) / 64 }

// SourceSummary returns, per shard, the bitset of destination ranges
// that contain at least one of the shard's edge sources. Stores written
// by this version persist it in the manifest; older directories are
// summarised with one streaming pass, cached for the Store's lifetime.
func (s *Store) SourceSummary() ([][]uint64, error) {
	if s.m.SrcSummary != nil {
		return s.m.SrcSummary, nil
	}
	summary := make([][]uint64, s.m.Shards)
	for i := range summary {
		summary[i] = make([]uint64, summaryWords(s.m.Shards))
		c, err := s.LoadShard(i)
		if err != nil {
			return nil, err
		}
		for _, u := range c.Src {
			j := s.Home(u)
			summary[i][j/64] |= 1 << (j % 64)
		}
	}
	s.m.SrcSummary = summary
	return summary, nil
}

// LoadShard reads shard i's edges from disk, validating that every
// source is a vertex and every destination falls inside the shard's
// range (the invariant the engine's partition-exclusive apply assumes).
func (s *Store) LoadShard(i int) (*graph.COO, error) {
	if i < 0 || i >= s.m.Shards {
		return nil, fmt.Errorf("shard: index %d out of range", i)
	}
	return readShardFile(shardPath(s.dir, i), s.m.Vertices, s.m.Bounds[i], s.m.Bounds[i+1], s.m.EdgeCounts[i])
}

// Sweep streams every shard once, in order, calling fn for each edge.
// Only one shard is resident at a time.
func (s *Store) Sweep(fn func(u, v graph.VID)) error {
	for i := 0; i < s.m.Shards; i++ {
		c, err := s.LoadShard(i)
		if err != nil {
			return err
		}
		for e := range c.Src {
			fn(c.Src[e], c.Dst[e])
		}
	}
	return nil
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.bin", i))
}

func writeShardFile(path string, c *graph.COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := binary.Write(f, binary.LittleEndian, int64(len(c.Src))); err != nil {
		return err
	}
	if err := binary.Write(f, binary.LittleEndian, c.Src); err != nil {
		return err
	}
	return binary.Write(f, binary.LittleEndian, c.Dst)
}

// vidBytes is the on-disk size of one vertex ID (graph.VID = uint32).
const vidBytes = 4

func readShardFile(path string, n int, lo, hi graph.VID, wantEdges int64) (*graph.COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var count int64
	if err := binary.Read(f, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("shard: %s: %v", path, err)
	}
	if count != wantEdges || count < 0 {
		return nil, fmt.Errorf("shard: %s: edge count %d, manifest says %d", path, count, wantEdges)
	}
	// Validate the edge count against the file's actual size before
	// allocating anything sized by it: a corrupt (or hostile) manifest
	// could otherwise declare an absurd count and turn LoadShard into an
	// allocation of arbitrary size. The arithmetic cannot overflow —
	// counts above MaxInt64/(2*vidBytes) are rejected first.
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %v", path, err)
	}
	const maxCount = (1<<63 - 1 - 8) / (2 * vidBytes)
	if count > maxCount || fi.Size() != 8+2*vidBytes*count {
		return nil, fmt.Errorf("shard: %s: file is %d bytes, want %d for %d edges",
			path, fi.Size(), 8+2*vidBytes*count, count)
	}
	c := &graph.COO{N: n, Src: make([]graph.VID, count), Dst: make([]graph.VID, count)}
	if err := binary.Read(f, binary.LittleEndian, c.Src); err != nil {
		return nil, fmt.Errorf("shard: %s: sources: %v", path, err)
	}
	if err := binary.Read(f, binary.LittleEndian, c.Dst); err != nil {
		return nil, fmt.Errorf("shard: %s: destinations: %v", path, err)
	}
	for i := range c.Src {
		if int(c.Src[i]) >= n {
			return nil, fmt.Errorf("shard: %s: source out of range at %d", path, i)
		}
		if c.Dst[i] < lo || c.Dst[i] >= hi {
			return nil, fmt.Errorf("shard: %s: destination %d outside shard range [%d,%d) at %d",
				path, c.Dst[i], lo, hi, i)
		}
	}
	return c, nil
}

// OutDegrees extracts the per-vertex out-degree from the shards in one
// pass (needed when the in-memory graph is gone).
func (s *Store) OutDegrees() ([]int64, error) {
	deg := make([]int64, s.NumVertices())
	err := s.Sweep(func(u, _ graph.VID) { deg[u]++ })
	return deg, err
}
