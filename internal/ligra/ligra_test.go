package ligra

import (
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

func countingOp(n int) (api.EdgeOp, *int64) {
	var edges int64
	seen := make([]int32, n)
	return api.EdgeOp{
		Update: func(u, v graph.VID) bool {
			atomic.AddInt64(&edges, 1)
			return atomic.CompareAndSwapInt32(&seen[v], 0, 1)
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			atomic.AddInt64(&edges, 1)
			return atomic.CompareAndSwapInt32(&seen[v], 0, 1)
		},
	}, &edges
}

func TestDenseForwardAndBackwardAgree(t *testing.T) {
	g := gen.TinySocial()
	e := New(g, 0)
	opF, edgesF := countingOp(g.NumVertices())
	fwd := e.EdgeMap(frontier.All(g), opF, api.DirForward)
	opB, _ := countingOp(g.NumVertices())
	bwd := e.EdgeMap(frontier.All(g), opB, api.DirBackward)
	if fwd.Count() != bwd.Count() {
		t.Fatalf("forward next %d vs backward next %d", fwd.Count(), bwd.Count())
	}
	if *edgesF != g.NumEdges() {
		t.Fatalf("forward applied %d edges, want %d", *edgesF, g.NumEdges())
	}
	// Backward may apply fewer updates because of the early-exit on a
	// saturated Cond, but the resulting frontier membership must match.
	fl, bl := fwd.List(), bwd.List()
	fb := fwd.Bitmap()
	for _, v := range bl {
		if !fb.Get(v) {
			t.Fatalf("vertex %d only in backward frontier", v)
		}
	}
	if len(fl) != len(bl) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(fl), len(bl))
	}
}

func TestSparsePathUsedBelowThreshold(t *testing.T) {
	// One low-degree active vertex on a big graph must take the sparse
	// path and touch only its own out-edges.
	g := gen.TinySocial()
	e := New(g, 0)
	var leaf graph.VID
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VID(v)) == 1 {
			leaf = graph.VID(v)
			break
		}
	}
	op, edges := countingOp(g.NumVertices())
	e.EdgeMap(frontier.FromVertex(g, leaf), op, api.DirForward)
	if *edges != 1 {
		t.Fatalf("sparse path applied %d edges, want 1", *edges)
	}
}

func TestName(t *testing.T) {
	if New(gen.Chain(4), 1).Name() != "Ligra" {
		t.Fatal("name")
	}
}
