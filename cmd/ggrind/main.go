// Command ggrind runs one graph algorithm on one generated graph with a
// chosen engine, layout and partition count, printing timing and engine
// telemetry. It is the interactive counterpart of cmd/experiments.
//
// Examples:
//
//	ggrind -graph twitter-sm -alg PRDelta -system GG-v2 -partitions 384
//	ggrind -graph usaroad-sm -alg BF -system Ligra
//	ggrind -graph livejournal-sm -alg BFS -layout COO -reps 5
//	ggrind -graph yahoo-sm -alg PR -system OOC -partitions 24
//	ggrind -graph twitter-sm -alg PR -system OOC -shardformat v1
//	ggrind -graph livejournal-sm -alg PR -system OOC -cacheshards 12 -order zigzag
//	ggrind -graph yahoo-sm -alg PR -system OOC -cacheshards 8 -iodepth 4
//	ggrind -graph twitter-sm -alg PR -system OOC -cacheshards 8 -sweepmode scatter-gather
//	ggrind -graph twitter-sm -alg PR -system OOC -updates batch.json -compactstore
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/trace"
)

// main delegates to run so deferred cleanup (the OOC temp shard
// directory) still happens on error exits.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		graphName  = flag.String("graph", "twitter-sm", "graph preset: "+strings.Join(gen.PresetNames(), ", "))
		graphFile  = flag.String("file", "", "load graph from file instead of a preset (.el/.adj/.bin[.gz])")
		traceOut   = flag.String("trace", "", "write a per-iteration CSV trace to this file (GG-v2 only)")
		algCode    = flag.String("alg", "PRDelta", "algorithm code: BC CC PR BFS PRDelta SPMV BF BP")
		system     = flag.String("system", "GG-v2", "engine: L, P, GG-v1, GG-v2, OOC (out-of-core)")
		partitions = flag.Int("partitions", 0, "GG-v2/OOC partition count (0 = default)")
		layout     = flag.String("layout", "auto", "GG-v2 forced layout: auto, CSR, CSC, COO")
		atomics    = flag.Bool("atomics", false, "force atomic updates in the COO layout")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		reps       = flag.Int("reps", 3, "repetitions; the median is reported")
		shardDir   = flag.String("sharddir", "", "OOC shard directory (empty = fresh temp dir, removed on exit)")
		cacheSh    = flag.Int("cacheshards", 0, "OOC LRU budget in resident shards (0 = default)")
		noPrefetch = flag.Bool("noprefetch", false, "OOC: disable the sweep pipeline (load and apply alternate)")
		domains    = flag.Int("domains", 0, "OOC modelled NUMA domain count (0 = the paper's 4)")
		window     = flag.Int("window", 0, "OOC staging window depth k: shards staged ahead while up to D domains apply concurrently (0 = max(domains, iodepth), 1 = double buffer; clamped to the LRU budget)")
		ioDepth    = flag.Int("iodepth", 0, "OOC async-read queue depth: uncached shard reads kept in flight at once (0 = 1, the synchronous read path; must be <= the LRU budget)")
		shardFmt   = flag.String("shardformat", shard.DefaultFormat.String(), "OOC shard-file encoding: v1 (raw uint32 pairs) or v2 (delta+uvarint compressed)")
		orderName  = flag.String("order", shard.OrderAscending.String(), "OOC sweep-order policy: ascending, zigzag (boustrophedon across sweeps) or residency-first (cached shards first, then Hilbert order)")
		sweepName  = flag.String("sweepmode", shard.SweepEdgeCentric.String(), "OOC dense-sweep mode: edge-centric (apply each staged shard directly) or scatter-gather (scatter shards into per-partition update bins, retained across sweeps, then gather per domain)")
		binBudget  = flag.Int64("binbudget", 0, "OOC scatter/gather bin budget in bytes: cold bins past it spill to disk and replay sequentially (0 = retain every bin; needs -sweepmode scatter-gather)")
		updates    = flag.String("updates", "", `OOC: apply a JSON edge batch {"insert":[{"src":0,"dst":1},...],"delete":[...]} to the store before running, then rebuild the engine at the new generation`)
		compactSt  = flag.Bool("compactstore", false, "OOC: compact delta shards into a new base generation before running (after -updates, if both are given)")
	)
	flag.Parse()

	// Reject nonsense knob values at parse time, before any graph is
	// built or sharded: a usage error, not a mid-run surprise.
	for _, f := range []struct {
		name string
		val  int
	}{
		{"partitions", *partitions}, {"threads", *threads},
		{"cacheshards", *cacheSh}, {"domains", *domains},
		{"window", *window}, {"iodepth", *ioDepth},
	} {
		if f.val < 0 {
			fmt.Fprintf(os.Stderr, "ggrind: -%s must be >= 0 (0 selects the default), got %d\n", f.name, f.val)
			return 2
		}
	}
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "ggrind: -reps must be >= 1, got %d\n", *reps)
		return 2
	}
	if *binBudget < 0 {
		fmt.Fprintf(os.Stderr, "ggrind: -binbudget must be >= 0 (0 retains every bin), got %d\n", *binBudget)
		return 2
	}
	sweepMode, err := shard.ParseSweepMode(*sweepName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
		return 2
	}
	if (*updates != "" || *compactSt) && *system != "OOC" {
		fmt.Fprintf(os.Stderr, "ggrind: -updates and -compactstore mutate a sharded store and need -system OOC\n")
		return 2
	}

	spec, ok := algorithms.SpecByCode(*algCode)
	if !ok {
		fmt.Fprintf(os.Stderr, "ggrind: unknown algorithm %q\n", *algCode)
		return 2
	}

	var g *graph.Graph
	label := *graphName
	if *graphFile != "" {
		label = *graphFile
		fmt.Printf("loading %s...\n", label)
		var err error
		g, err = gio.Load(*graphFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			return 1
		}
	} else {
		fmt.Printf("building %s...\n", label)
		g = gen.Preset(*graphName)
	}
	st := graph.ComputeStats(label, g)
	fmt.Println(st.String())

	var sys, rsys api.System
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	if *system == "GG-v2" {
		opts := core.Options{Partitions: *partitions, Threads: *threads, ForceAtomics: *atomics, Trace: rec}
		switch strings.ToUpper(*layout) {
		case "AUTO":
		case "CSR":
			opts.Layout = core.LayoutCSR
		case "CSC":
			opts.Layout = core.LayoutCSC
		case "COO":
			opts.Layout = core.LayoutCOO
		default:
			fmt.Fprintf(os.Stderr, "ggrind: unknown layout %q\n", *layout)
			return 2
		}
		eng := core.NewEngine(g, opts)
		fmt.Printf("engine: GG-v2 layout=%v partitions=%d threads=%d\n",
			eng.Options().Layout, eng.Options().Partitions, eng.Threads())
		sys = eng
		if spec.NeedsReverse {
			rsys = core.NewEngine(g.Reverse(), opts)
		}
	} else if *system == "OOC" {
		dir := *shardDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "ggrind-shards-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
				return 1
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		p := *partitions
		if p <= 0 {
			p = 24
		}
		format, err := shard.ParseFormat(*shardFmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			return 2
		}
		order, err := shard.ParseOrder(*orderName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			return 2
		}
		oopts := shard.Options{
			Threads:        *threads,
			CacheShards:    *cacheSh,
			NoPrefetch:     *noPrefetch,
			Window:         *window,
			IODepth:        *ioDepth,
			Topology:       sched.Topology{Domains: *domains},
			Format:         format,
			Order:          order,
			SweepMode:      sweepMode,
			BinBudgetBytes: *binBudget,
		}
		fmt.Printf("sharding to %s (%d partitions, %v files)...\n", dir, p, format)
		eng, err := shard.Build(filepath.Join(dir, "fwd"), g, p, oopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			// A contradictory knob combination (say -iodepth above the
			// LRU budget, or -window below it) is a usage error.
			var oe *shard.OptionsError
			if errors.As(err, &oe) {
				return 2
			}
			return 1
		}
		// Mutations come before any telemetry printing: the run should
		// measure the store as it will actually be swept, base plus
		// deltas (or the compacted generation), not the freshly built
		// base. The engine predates the mutation, so it is rebuilt from
		// the store at its new generation — the same reopen-and-rehost
		// discipline gserve follows.
		if *updates != "" || *compactSt {
			if *updates != "" {
				ins, del, err := loadBatch(*updates)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
					return 2
				}
				res, err := eng.Store().ApplyBatch(ins, del)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
					var be *shard.BatchError
					if errors.As(err, &be) {
						return 2
					}
					return 1
				}
				fmt.Printf("updates: generation %d, +%d/-%d edges, %d dirty shards\n",
					res.Generation, res.Inserted, res.Deleted, len(res.Dirty))
			}
			if *compactSt {
				cg, err := eng.Store().Compact()
				if err != nil {
					fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
					return 1
				}
				fmt.Printf("compacted: base generation %d\n", cg)
			}
			st, err := shard.Open(filepath.Join(dir, "fwd"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
				return 1
			}
			edges := make([]graph.Edge, 0, st.NumEdges())
			if err := st.Sweep(func(u, v graph.VID) {
				edges = append(edges, graph.Edge{Src: u, Dst: v})
			}); err != nil {
				fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
				return 1
			}
			g = graph.FromEdges(st.NumVertices(), edges)
			eng, err = shard.NewEngine(st, g, oopts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
				return 1
			}
			fmt.Printf("merged: %d edges at generation %d, %d delta files pending\n",
				st.NumEdges(), st.Generation(), st.PendingDeltas())
		}
		if disk, err := eng.Store().DiskBytes(); err == nil && g.NumEdges() > 0 {
			fmt.Printf("store: %v format, %.1f KiB on disk (%.2f bytes/edge; raw v1 is 8)\n",
				eng.Store().Format(), float64(disk)/1024, float64(disk)/float64(g.NumEdges()))
		}
		fmt.Printf("engine: OOC shards=%d cache=%d threads=%d prefetch=%v domains=%d window=%d iodepth=%d order=%v sweepmode=%v\n",
			eng.Store().NumShards(), eng.Options().CacheShards, eng.Threads(),
			!eng.Options().NoPrefetch, eng.Topology().Domains, eng.Options().Window,
			eng.Options().IODepth, eng.Options().Order, eng.Options().SweepMode)
		sys = eng
		if spec.NeedsReverse {
			reng, err := shard.Build(filepath.Join(dir, "rev"), g.Reverse(), p, oopts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
				return 1
			}
			rsys = reng
		}
	} else {
		sys = bench.BuildSystem(*system, g, *partitions, *threads)
		if spec.NeedsReverse {
			rsys = bench.BuildSystem(*system, g.Reverse(), *partitions, *threads)
		}
		fmt.Printf("engine: %s threads=%d\n", sys.Name(), sys.Threads())
	}

	src := algorithms.SourceVertex(g)
	fmt.Printf("running %s (source=%d, %d reps)...\n", spec.Code, src, *reps)
	var best time.Duration
	for i := 0; i < *reps; i++ {
		start := time.Now()
		spec.Run(sys, rsys, src)
		d := time.Since(start)
		fmt.Printf("  rep %d: %v\n", i+1, d)
		if best == 0 || d < best {
			best = d
		}
	}
	fmt.Printf("best: %v  (%.1f Medges/s)\n", best,
		float64(g.NumEdges())/best.Seconds()/1e6)
	if eng, ok := sys.(*core.Engine); ok {
		fmt.Printf("telemetry: %s\n", eng.Telemetry().String())
	}
	if eng, ok := sys.(*shard.Engine); ok {
		st := eng.Stats()
		fmt.Printf("ooc: %d dense + %d sparse sweeps, %d disk loads, %d cache hits, %d shard visits skipped\n",
			st.DenseSweeps, st.SparseSweeps, st.ShardLoads, st.CacheHits, st.ShardsSkipped)
		if st.BytesRead > 0 {
			fmt.Printf("ooc io: %.1f KiB read from disk (%.1f KiB at raw v1 pricing, %.2fx compression)\n",
				float64(st.BytesRead)/1024, float64(st.BytesLogical)/1024,
				float64(st.BytesLogical)/float64(st.BytesRead))
		}
		fmt.Printf("ooc order: %v policy, %d planned cache hits, %d reloads avoided vs ascending\n",
			eng.Options().Order, st.PlannedCacheHits, st.ReloadsAvoided)
		if st.ScatterGatherSweeps > 0 {
			fmt.Printf("ooc scatter/gather: %d two-phase sweeps, %d bin reuses, %.1f KiB bins written, %.1f KiB replayed\n",
				st.ScatterGatherSweeps, st.BinShardsReused,
				float64(st.BinBytesWritten)/1024, float64(st.BinBytesRead)/1024)
			if eng.Options().BinBudgetBytes > 0 {
				fmt.Printf("ooc bin budget: %d bytes, %d bins evicted, %.1f KiB spilled to disk, %d spill replays (%.1f KiB sequential reads)\n",
					eng.Options().BinBudgetBytes, st.BinShardsEvicted,
					float64(st.BinBytesSpilled)/1024, st.BinSpillReplays,
					float64(st.BinSpillBytesRead)/1024)
			}
		}
		fmt.Printf("ooc pipeline: %d prefetch loads (%d overlapped an apply), %d prefetch cache promotions\n",
			st.PrefetchLoads, st.OverlappedLoads, st.PrefetchHits)
		fmt.Printf("ooc numa: %d domains, shards applied per domain %v, edges per domain %v\n",
			eng.Topology().Domains, st.DomainShards, st.DomainEdges)
		// The window/stager only exists on the pipelined path; with
		// -noprefetch its depth and histograms would be meaningless.
		if !eng.Options().NoPrefetch {
			fmt.Printf("ooc window: depth k=%d, peak %d concurrent applies, apply levels %v, hand-off depths %v\n",
				eng.Options().Window, st.ConcurrentApplyPeak, st.ApplyLevels, st.WindowDepths)
			fmt.Printf("ooc aio: iodepth=%d, peak %d reads in flight, read depth histogram %v\n",
				eng.Options().IODepth, st.ReadsInFlightPeak, st.ReadDepths)
		}
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			return 1
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			return 1
		}
		fmt.Printf("trace: %s (%s)\n", *traceOut, rec.String())
	}
	return 0
}

// loadBatch reads an edge-update batch from a JSON file: two optional
// edge lists under "insert" and "delete", each edge a {"src","dst"}
// pair. Range checking is the store's job (ApplyBatch rejects
// out-of-range vertex ids with a *shard.BatchError), so this only
// decodes.
func loadBatch(path string) (ins, del []graph.Edge, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var batch struct {
		Insert []struct {
			Src uint32 `json:"src"`
			Dst uint32 `json:"dst"`
		} `json:"insert"`
		Delete []struct {
			Src uint32 `json:"src"`
			Dst uint32 `json:"dst"`
		} `json:"delete"`
	}
	if err := json.Unmarshal(data, &batch); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, e := range batch.Insert {
		ins = append(ins, graph.Edge{Src: graph.VID(e.Src), Dst: graph.VID(e.Dst)})
	}
	for _, e := range batch.Delete {
		del = append(del, graph.Edge{Src: graph.VID(e.Src), Dst: graph.VID(e.Dst)})
	}
	return ins, del, nil
}
