package gio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func TestLoadSaveAllExtensions(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	for _, name := range []string{
		"g.el", "g.txt", "g.edges", "g.adj", "g.bin", "g.ggr",
		"g.el.gz", "g.adj.gz", "g.bin.gz",
	} {
		path := filepath.Join(dir, name)
		if err := Save(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		sameGraph(t, g, got)
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	g := gen.TinySocial()
	dir := t.TempDir()
	plain := filepath.Join(dir, "g.el")
	zipped := filepath.Join(dir, "g.el.gz")
	if err := Save(plain, g); err != nil {
		t.Fatal(err)
	}
	if err := Save(zipped, g); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(zipped)
	if zs.Size() >= ps.Size() {
		t.Fatalf("gzip did not shrink: %d vs %d", zs.Size(), ps.Size())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/path.el"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	weird := filepath.Join(dir, "g.xyz")
	if err := os.WriteFile(weird, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(weird); err == nil {
		t.Fatal("unknown extension accepted")
	}
	// A .gz that is not gzip data.
	fake := filepath.Join(dir, "g.el.gz")
	if err := os.WriteFile(fake, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fake); err == nil {
		t.Fatal("bad gzip accepted")
	}
}

func TestSaveUnknownExtensionFails(t *testing.T) {
	dir := t.TempDir()
	err := Save(filepath.Join(dir, "g.weird"), gen.Chain(4))
	if err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, statErr := os.Stat(filepath.Join(dir, "g.weird")); statErr == nil {
		t.Fatal("failed save left a file behind")
	}
}
