package algorithms

import (
	"repro/internal/api"
	"repro/internal/graph"
)

// Spec is the Table II row for one algorithm: its identity, the dense
// traversal direction the literature prescribes (the hint baselines
// need), its vertex/edge orientation (the classification the paper
// argues actually explains performance), and a uniform runner.
type Spec struct {
	Code         string
	Description  string
	Dir          api.Direction // Table II "Edge traversal" column
	EdgeOriented bool          // Table II "V/E" column: true = E
	NeedsReverse bool          // BC also traverses the reversed graph
	Iterations   string        // fixed-iteration annotation from Table II
	// Run executes the algorithm to completion. rsys is only consulted
	// when NeedsReverse; src only by the rooted algorithms.
	Run func(sys, rsys api.System, src graph.VID)
}

// AllSpecs returns the eight Table II algorithms in paper order.
func AllSpecs() []Spec {
	return []Spec{
		{
			Code: "BC", Description: "betweenness centrality",
			Dir: api.DirBackward, EdgeOriented: false, NeedsReverse: true,
			Run: func(sys, rsys api.System, src graph.VID) { BC(sys, rsys, src) },
		},
		{
			Code: "CC", Description: "connected components via label propagation",
			Dir: api.DirBackward, EdgeOriented: true,
			Run: func(sys, _ api.System, _ graph.VID) { CC(sys) },
		},
		{
			Code: "PR", Description: "PageRank power method", Iterations: "10 iterations",
			Dir: api.DirBackward, EdgeOriented: true,
			Run: func(sys, _ api.System, _ graph.VID) { PR(sys, 10) },
		},
		{
			Code: "BFS", Description: "breadth-first search",
			Dir: api.DirBackward, EdgeOriented: false,
			Run: func(sys, _ api.System, src graph.VID) { BFS(sys, src) },
		},
		{
			Code: "PRDelta", Description: "PageRank forwarding delta updates",
			Dir: api.DirForward, EdgeOriented: true,
			Run: func(sys, _ api.System, _ graph.VID) { PRDelta(sys, 60) },
		},
		{
			Code: "SPMV", Description: "sparse matrix-vector multiplication", Iterations: "1 iteration",
			Dir: api.DirForward, EdgeOriented: true,
			Run: func(sys, _ api.System, _ graph.VID) { SPMV(sys) },
		},
		{
			Code: "BF", Description: "Bellman-Ford single-source shortest paths",
			Dir: api.DirForward, EdgeOriented: false,
			Run: func(sys, _ api.System, src graph.VID) { BellmanFord(sys, src) },
		},
		{
			Code: "BP", Description: "Bayesian belief propagation", Iterations: "10 iterations",
			Dir: api.DirForward, EdgeOriented: true,
			Run: func(sys, _ api.System, _ graph.VID) { BP(sys, 10) },
		},
	}
}

// SpecByCode returns the spec with the given code, or false.
func SpecByCode(code string) (Spec, bool) {
	for _, s := range AllSpecs() {
		if s.Code == code {
			return s, true
		}
	}
	return Spec{}, false
}

// SourceVertex picks the deterministic root used by BFS/BC/BF in all
// experiments: the vertex with the largest out-degree (ties to the
// lowest ID), so traversals cover a large reachable set.
func SourceVertex(g *graph.Graph) graph.VID {
	var best graph.VID
	var bestDeg int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VID(v)); d > bestDeg {
			bestDeg = d
			best = graph.VID(v)
		}
	}
	return best
}
