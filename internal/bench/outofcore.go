package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"time"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/shard"
)

// OutOfCoreResult is one algorithm's in-memory vs. out-of-core timing.
type OutOfCoreResult struct {
	Alg       string
	InMemory  float64 // seconds
	OutOfCore float64 // seconds
	Slowdown  float64 // OutOfCore / InMemory
}

// PrefetchResult is the pipeline ablation: the same cold-cache
// multi-iteration PageRank run with the sweep pipeline on and off. A
// one-shard LRU defeats caching across sweeps, so every iteration
// re-reads (nearly) the whole store and the pipeline's load/apply
// overlap is the only difference between the two columns.
type PrefetchResult struct {
	On      float64 // seconds, prefetch pipeline enabled
	Off     float64 // seconds, loads and applies strictly alternating
	Speedup float64 // Off / On: >1 means the pipeline won
}

// WindowResult is the staging-window occupancy ablation: the same
// multi-iteration PageRank with a 1-deep window (the original double
// buffer's staging depth) and a D-deep window, both with cross-domain
// concurrent apply over the default topology. The peaks report how many
// shards the engine actually had mid-apply simultaneously — the
// Polymer-style all-domains-at-once execution the deeper window is
// meant to feed.
type WindowResult struct {
	K1      float64 // seconds, window depth 1
	KD      float64 // seconds, window depth = Domains
	Speedup float64 // K1 / KD: >1 means the deeper window won
	PeakK1  int64   // max simultaneous applies, k=1 run
	PeakKD  int64   // max simultaneous applies, k=D run
	Domains int     // modelled NUMA domains (= the deep window's k)
}

// IODepthResult is the async-read ablation: the same cold-cache
// multi-iteration PageRank with the aio reader capped at one in-flight
// read (the synchronous pipeline's budget) and at IODepth = D. The LRU
// sits at D shards against a larger store, so every sweep keeps
// reading from disk and the read overlap is the only difference
// between the columns. Admission is plan-ordered either way, so the
// loads and bytes columns must match exactly — depth may change only
// when a read happens, never what is read or computed.
type IODepthResult struct {
	D1      float64 // seconds, IODepth 1
	DN      float64 // seconds, IODepth = Depth
	Speedup float64 // D1 / DN: >1 means the deeper read queue won
	Depth   int     // the deep column's IODepth (= modelled domains)
	PeakD1  int64   // Stats.ReadsInFlightPeak, depth-1 run
	PeakDN  int64   // Stats.ReadsInFlightPeak, depth-D run
	LoadsD1 int64   // Stats.ShardLoads, depth-1 run
	LoadsDN int64   // Stats.ShardLoads, depth-D run
}

// FormatResult is the shard-format ablation: the same graph written as
// a v1 (raw uint32 pairs, 8 bytes/edge) and a v2 (delta+uvarint
// compressed) store, each swept by a cold-cache multi-iteration
// PageRank. Bytes are the engines' Stats.BytesRead — the on-disk size
// of every shard file decoded over the measured runs — so Ratio is the
// live answer to the question the ablation asks: how many fewer bytes
// does each dense sweep pull from disk once the store is compressed?
type FormatResult struct {
	V1Time  float64 // seconds, cold-cache PR over the v1 store
	V2Time  float64 // seconds, cold-cache PR over the v2 store
	Speedup float64 // V1Time / V2Time: >1 means compression won time too

	V1Bytes int64   // bytes decoded from disk across the v1 runs
	V2Bytes int64   // bytes decoded from disk across the v2 runs
	Ratio   float64 // V1Bytes / V2Bytes: the compression ratio

	V1Disk int64 // v1 store size on disk (shard files only)
	V2Disk int64 // v2 store size on disk (shard files only)

	V1BytesPerEdge float64 // V1Disk / |E|
	V2BytesPerEdge float64 // V2Disk / |E|
}

// OrderColumn is one sweep-order policy's column in the order ablation:
// a cold-start multi-iteration dense PageRank over the shared store with
// a half-store LRU, the regime where ascending order's cyclic evictions
// hit hardest.
type OrderColumn struct {
	Order          shard.Order
	Time           float64 // seconds
	Loads          int64   // Stats.ShardLoads across the measured runs
	CacheHits      int64   // Stats.CacheHits across the measured runs
	BytesRead      int64   // Stats.BytesRead across the measured runs
	ReloadsAvoided int64   // Stats.ReloadsAvoided: loads saved vs the whole-run ascending baseline
}

// OrderResult is the sweep-order ablation: the same 10-iteration dense
// PageRank once per Options.Order policy, all over the same store and
// LRU budget, bit-identical by construction — only the disk traffic may
// differ. Columns follows shard.Orders() order: ascending (the
// baseline), zigzag, residency-first.
type OrderResult struct {
	CacheShards int // the LRU budget all columns ran with (NumShards/2)
	Columns     []OrderColumn
}

// ScatterGatherResult is the sweep-mode ablation: the same cold-cache
// 10-iteration dense PageRank over one raw (v1) store — so disk bytes
// are priced identically, 8 per edge — swept edge-centric (the tight
// LRU thrashes, so every iteration re-reads most of the store from
// disk) and scatter/gather (the first iteration scatters each shard
// once into compact delta-encoded update bins; every later iteration
// gathers the retained bins with zero disk traffic). The claim under
// test is bytes moved, not wall-clock: SGMovedBytes — disk reads plus
// bin writes plus bin replays — must come in strictly under the
// edge-centric disk column, while the ranks match float64-bit exactly.
type ScatterGatherResult struct {
	ECTime  float64 // seconds, edge-centric sweeps
	SGTime  float64 // seconds, scatter/gather sweeps
	Speedup float64 // ECTime / SGTime: >1 means two-phase won time too

	CacheShards     int   // the tight LRU budget both columns ran with
	ECDiskBytes     int64 // edge-centric Stats.BytesRead across the measured runs
	SGDiskBytes     int64 // scatter/gather Stats.BytesRead (the cold scatter passes)
	BinBytesWritten int64 // bytes appended to update bins at scatter
	BinBytesRead    int64 // bin bytes replayed at gather
	BinShardsReused int64 // gathers served from retained bins with no scatter
	SGMovedBytes    int64 // SGDiskBytes + BinBytesWritten + BinBytesRead

	RanksIdentical bool // float64-bit-exact PageRank agreement across modes
}

// BinBudgetColumn is one budget setting's column in the bin-budget
// ablation: the same cold-cache 10-iteration dense PageRank over an
// identical raw store in scatter/gather mode, differing only in
// Options.BinBudgetBytes. MovedBytes is the column's total traffic —
// shard bytes decoded for scatter passes, bin bytes appended at
// scatter, bin bytes gathered, bin bytes spilled to disk and spill
// bytes replayed back — the figure the budget is supposed to trade
// against memory footprint.
type BinBudgetColumn struct {
	Budget     int64   // Options.BinBudgetBytes (0 = unbounded)
	Time       float64 // seconds
	Loads      int64   // Stats.ShardLoads across the measured runs
	DiskBytes  int64   // Stats.BytesRead: shard bytes decoded for scatter passes
	BinWrites  int64   // Stats.BinBytesWritten: bytes appended to bins at scatter
	BinReads   int64   // Stats.BinBytesRead: resident bin bytes gathered
	Spilled    int64   // Stats.BinBytesSpilled: bin bytes written to spill files
	SpillReads int64   // Stats.BinSpillBytesRead: spill-file bytes replayed
	Evictions  int64   // Stats.BinShardsEvicted
	Replays    int64   // Stats.BinSpillReplays
	MovedBytes int64   // DiskBytes + BinWrites + BinReads + Spilled + SpillReads
}

// BinBudgetResult is the bin-budget ablation: the scatter/gather sweep
// with the bin store unbounded (the legacy retain-everything footprint),
// budgeted at half the measured footprint, and budgeted at
// MinBinBudgetBytes — too small to hold even one of this store's bins,
// so every gather replays from spill files. The claims under test are
// categorical: the budget must only change where bin bytes live, never
// what is computed (ranks bit-identical across all three columns and
// the edge-centric reference), the half column must move strictly fewer
// bytes than the everything-spills column, and even the worst case —
// every bin replayed from disk every sweep — must pull strictly fewer
// disk bytes than the edge-centric mode's re-reads over the same store.
type BinBudgetResult struct {
	Footprint   int64 // unbounded column's total bin bytes: the budget baseline
	CacheShards int   // the tight LRU budget every column ran with

	Full BinBudgetColumn // BinBudgetBytes = 0, nothing spills
	Half BinBudgetColumn // BinBudgetBytes = Footprint/2, cold tail spills
	Zero BinBudgetColumn // BinBudgetBytes = MinBinBudgetBytes, everything spills

	ECDiskBytes    int64 // edge-centric Stats.BytesRead over the same store
	RanksIdentical bool  // float64-bit-exact PageRank agreement across all columns
}

// UpdateResult is the log-structured-update ablation: the store holds
// two disjoint copies of the graph, an edge batch confined to the
// second copy arrives through ApplyBatch (a delta append, not a
// rebuild), and PageRank is re-converged two ways over the mutated
// store — from scratch, and incrementally from the pre-batch fixed
// point seeded at the batch's dirty shards. Locality is the claim
// under test: the incremental run may only ever sweep the mutated
// copy's shards, so it must load strictly fewer shards than the full
// re-run while landing on the same fixed point to within IncTolerance.
type UpdateResult struct {
	ApplyTime   float64 // seconds: ApplyBatch (delta append + manifest swing)
	CompactTime float64 // seconds: folding the deltas into a new base generation
	Inserted    int64   // edges the batch added
	Deleted     int64   // edge copies the batch tombstoned
	DirtyShards int     // shards the batch left dirty
	TotalShards int

	FullTime   float64 // seconds: re-convergence from scratch on the mutated store
	IncTime    float64 // seconds: incremental re-convergence from the pre-batch ranks
	Speedup    float64 // FullTime / IncTime: >1 means locality won
	FullLoads  int64   // Stats.ShardLoads, full re-run
	IncLoads   int64   // Stats.ShardLoads, incremental re-run
	FullVisits int64   // FixedPoint.ShardVisits, full re-run
	IncVisits  int64   // FixedPoint.ShardVisits, incremental re-run
	MaxDiff    float64 // max |incremental - full| over all ranks
}

// IncTolerance is the per-vertex convergence tolerance the update
// ablation re-converges to; two runs converged this tightly agree to
// well within 1e-12 per rank.
const IncTolerance = 1e-15

// OutOfCore runs a representative algorithm slate on the in-memory
// GG-v2 engine and on the shard.Engine over the same graph, reporting
// the streaming overhead the LRU cache and frontier-aware sweeps are
// meant to bound, plus a stack of ablations on multi-iteration
// PageRank: the prefetch pipeline on/off (cold cache), the staging
// window k=1 vs k=D with concurrent domain apply, the async-read queue
// at IODepth=1 vs IODepth=D, the on-disk format ablation:
// the same store written v1 (raw) vs v2 (delta+uvarint), bytes and time
// per cold-cache sweep, the sweep-order ablation: ascending vs
// zigzag vs residency-first over a half-store LRU, loads and bytes per
// policy, and the sweep-mode ablation: edge-centric vs partition-centric
// scatter/gather over a raw store, total bytes moved per mode and
// bit-exact rank agreement, the bin-budget ablation: the scatter/gather
// bin store unbounded vs half-footprint vs minimum budget, spill
// traffic per column and bit-exact rank agreement, and the log-structured-update ablation:
// an edge batch applied as delta shards, then incremental vs
// from-scratch re-convergence over the mutated store. dir receives the
// shard files; shards and threads 0 select defaults. The returned
// figure has one X index per algorithm (the note lines give the
// mapping) and one series per engine.
func OutOfCore(g *graph.Graph, dir string, shards, threads, reps int) (*Figure, []OutOfCoreResult, PrefetchResult, WindowResult, IODepthResult, FormatResult, OrderResult, ScatterGatherResult, BinBudgetResult, UpdateResult, error) {
	if shards <= 0 {
		shards = 16
	}
	fail := func(err error) (*Figure, []OutOfCoreResult, PrefetchResult, WindowResult, IODepthResult, FormatResult, OrderResult, ScatterGatherResult, BinBudgetResult, UpdateResult, error) {
		return nil, nil, PrefetchResult{}, WindowResult{}, IODepthResult{}, FormatResult{}, OrderResult{}, ScatterGatherResult{}, BinBudgetResult{}, UpdateResult{}, err
	}
	inMem := core.NewEngine(g, core.Options{Threads: threads})
	// Domains: 1 keeps the headline Slowdown column measuring streaming
	// overhead alone, comparable with pre-placement numbers — the
	// default 4-domain topology would confine each apply to a quarter
	// of the pool. The ablations below run the shipped default.
	ooc, err := shard.Build(dir, g, shards, shard.Options{Threads: threads, Topology: sched.Topology{Domains: 1}})
	if err != nil {
		return fail(err)
	}
	runs := []struct {
		alg string
		run func(sys api.System)
	}{
		{"PR", func(sys api.System) { algorithms.PR(sys, 10) }},
		{"BFS", func(sys api.System) { algorithms.BFS(sys, algorithms.SourceVertex(g)) }},
		{"CC", func(sys api.System) { algorithms.CC(sys) }},
		{"SPMV", func(sys api.System) { algorithms.SPMV(sys) }},
	}
	fig := &Figure{
		ID:     "OOC",
		Title:  "in-memory vs. out-of-core engine",
		XLabel: "algorithm#",
		YLabel: "seconds",
		Series: []Series{{Name: "GG-v2"}, {Name: "OOC"}},
	}
	var results []OutOfCoreResult
	for i, r := range runs {
		mem := MedianTime(reps, func() { r.run(inMem) })
		str := MedianTime(reps, func() { r.run(ooc) })
		res := OutOfCoreResult{
			Alg:       r.alg,
			InMemory:  Seconds(mem),
			OutOfCore: Seconds(str),
			Slowdown:  Speedup(str, mem),
		}
		results = append(results, res)
		fig.Series[0].X = append(fig.Series[0].X, float64(i))
		fig.Series[0].Y = append(fig.Series[0].Y, res.InMemory)
		fig.Series[1].X = append(fig.Series[1].X, float64(i))
		fig.Series[1].Y = append(fig.Series[1].Y, res.OutOfCore)
		fig.Notes = append(fig.Notes, fmt.Sprintf("alg %d = %s (%.1fx streaming overhead)", i, r.alg, res.Slowdown))
	}
	st := ooc.Stats()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"OOC engine: %d shards, %d disk loads, %d cache hits, %d shard visits skipped",
		ooc.Store().NumShards(), st.ShardLoads, st.CacheHits, st.ShardsSkipped))

	// Pipeline ablation: cold-cache (one-shard LRU) 10-iteration
	// PageRank, prefetch on vs off over the already-written store,
	// both under the engine's default (4-domain) placement.
	pfOn, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: 1})
	if err != nil {
		return fail(err)
	}
	pfOff, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: 1, NoPrefetch: true})
	if err != nil {
		return fail(err)
	}
	on := MedianTime(reps, func() { algorithms.PR(pfOn, 10) })
	off := MedianTime(reps, func() { algorithms.PR(pfOff, 10) })
	pf := PrefetchResult{On: Seconds(on), Off: Seconds(off), Speedup: Speedup(off, on)}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"cold-cache PR ablation: prefetch on %.3fs vs off %.3fs (%.2fx)", pf.On, pf.Off, pf.Speedup))
	ast := pfOn.Stats()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"OOC pipeline: %d prefetch loads (%d overlapped an apply), %d prefetch cache promotions, domain shards %v",
		ast.PrefetchLoads, ast.OverlappedLoads, ast.PrefetchHits, ast.DomainShards))

	// Occupancy ablation: the same 10-iteration PageRank with a 1-deep
	// vs a D-deep staging window, both with concurrent domain apply and
	// a D-shard LRU (big enough to let the deep window actually fill,
	// small enough against the store to keep the sweep streaming).
	d := sched.DefaultTopology().Domains
	wOne, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: d, Window: 1})
	if err != nil {
		return fail(err)
	}
	wDeep, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: d, Window: d})
	if err != nil {
		return fail(err)
	}
	k1 := MedianTime(reps, func() { algorithms.PR(wOne, 10) })
	kD := MedianTime(reps, func() { algorithms.PR(wDeep, 10) })
	win := WindowResult{
		K1: Seconds(k1), KD: Seconds(kD), Speedup: Speedup(k1, kD),
		PeakK1:  wOne.Stats().ConcurrentApplyPeak,
		PeakKD:  wDeep.Stats().ConcurrentApplyPeak,
		Domains: d,
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"occupancy ablation: window k=1 %.3fs (peak %d concurrent applies) vs k=%d %.3fs (peak %d), %.2fx",
		win.K1, win.PeakK1, win.Domains, win.KD, win.PeakKD, win.Speedup))
	wst := wDeep.Stats()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"OOC window k=%d: apply levels %v, hand-off depth histogram %v",
		win.Domains, wst.ApplyLevels, wst.WindowDepths))

	// Async-read ablation: the same 10-iteration PageRank with one
	// in-flight read (the synchronous budget) vs IODepth = D, both over
	// the D-deep window with a D-shard LRU so the sweep keeps reading
	// from disk. Plan-ordered admission makes the disk traffic columns
	// byte-identical; only the overlap (and the peak) may differ.
	io1, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: d, Window: d, IODepth: 1})
	if err != nil {
		return fail(err)
	}
	ioD, err := shard.NewEngine(ooc.Store(), g, shard.Options{Threads: threads, CacheShards: d, Window: d, IODepth: d})
	if err != nil {
		return fail(err)
	}
	d1 := MedianTime(reps, func() { algorithms.PR(io1, 10) })
	dN := MedianTime(reps, func() { algorithms.PR(ioD, 10) })
	iod := IODepthResult{
		D1: Seconds(d1), DN: Seconds(dN), Speedup: Speedup(d1, dN),
		Depth:   d,
		PeakD1:  io1.Stats().ReadsInFlightPeak,
		PeakDN:  ioD.Stats().ReadsInFlightPeak,
		LoadsD1: io1.Stats().ShardLoads,
		LoadsDN: ioD.Stats().ShardLoads,
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"async-read ablation: iodepth=1 %.3fs (peak %d reads in flight) vs iodepth=%d %.3fs (peak %d), %.2fx; read depth histogram %v",
		iod.D1, iod.PeakD1, iod.Depth, iod.DN, iod.PeakDN, iod.Speedup, ioD.Stats().ReadDepths))

	// Format ablation: the same graph written as a v1 (raw) and a v2
	// (compressed) store, each swept by the cold-cache 10-iteration
	// PageRank. A one-shard LRU makes every iteration re-decode (nearly)
	// the whole store, so BytesRead is ~10× the store size per run and
	// the bytes ratio is exactly the per-sweep disk traffic saved.
	fr, err := formatAblation(g, dir, shards, threads, reps)
	if err != nil {
		return fail(err)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"format ablation: v1 %.2f B/edge on disk vs v2 %.2f B/edge; cold-cache PR read %.2fx fewer bytes (v1 %.3fs, v2 %.3fs, %.2fx)",
		fr.V1BytesPerEdge, fr.V2BytesPerEdge, fr.Ratio, fr.V1Time, fr.V2Time, fr.Speedup))

	// Sweep-order ablation: the same 10-iteration dense PageRank over
	// the shared store under each Options.Order policy, with the LRU at
	// half the shard count — the paper-motivated regime where ascending
	// order evicts the tail of sweep i exactly before sweep i+1 needs it
	// while zigzag and residency-first start each sweep on what is still
	// resident. Results are bit-identical across policies (plan order
	// changes when a shard is read, never what is computed); loads and
	// BytesRead are the whole point.
	or, err := orderAblation(ooc.Store(), g, threads, reps)
	if err != nil {
		return fail(err)
	}
	for _, col := range or.Columns {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"order ablation (%d-shard LRU): %s %.3fs, %d loads, %d cache hits, %.1f KiB read, %d reloads avoided",
			or.CacheShards, col.Order, col.Time, col.Loads, col.CacheHits,
			float64(col.BytesRead)/1024, col.ReloadsAvoided))
	}

	// Sweep-mode ablation: the same cold-cache dense PageRank over a raw
	// (v1) store in both sweep modes, with the LRU tight enough that the
	// edge-centric column re-reads the store every iteration while the
	// scatter/gather column pays one cold pass and then replays retained
	// bins. Bytes moved is the headline; ranks must agree bit for bit.
	sgr, err := scatterGatherAblation(g, dir, shards, threads, reps)
	if err != nil {
		return fail(err)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"scatter/gather ablation (v1 store, %d-shard LRU): edge-centric moved %.1f KiB from disk vs scatter/gather %.1f KiB total (%.1f disk + %.1f bin writes + %.1f bin replays), %d bin reuses, ranks bit-identical=%v",
		sgr.CacheShards, float64(sgr.ECDiskBytes)/1024, float64(sgr.SGMovedBytes)/1024,
		float64(sgr.SGDiskBytes)/1024, float64(sgr.BinBytesWritten)/1024, float64(sgr.BinBytesRead)/1024,
		sgr.BinShardsReused, sgr.RanksIdentical))

	// Bin-budget ablation: the scatter/gather sweep with the bin store
	// unbounded, halved and starved. Budget placement only moves bytes
	// between memory and spill files — ranks must stay bit-identical —
	// and even the everything-spills column's disk traffic must come in
	// under the edge-centric re-reads over the same store.
	bbr, err := binBudgetAblation(g, dir, shards, threads, reps)
	if err != nil {
		return fail(err)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"bin-budget ablation (v1 store, %d-shard LRU, footprint %.1f KiB): unbounded moved %.1f KiB; half budget moved %.1f KiB (%.1f KiB spilled, %d replays); min budget moved %.1f KiB (%.1f KiB spilled, %d replays); edge-centric re-read %.1f KiB; ranks bit-identical=%v",
		bbr.CacheShards, float64(bbr.Footprint)/1024, float64(bbr.Full.MovedBytes)/1024,
		float64(bbr.Half.MovedBytes)/1024, float64(bbr.Half.Spilled)/1024, bbr.Half.Replays,
		float64(bbr.Zero.MovedBytes)/1024, float64(bbr.Zero.Spilled)/1024, bbr.Zero.Replays,
		float64(bbr.ECDiskBytes)/1024, bbr.RanksIdentical))

	// Update ablation: a batch lands as delta shards on one half of a
	// two-copy store; incremental re-convergence sweeps only the dirty
	// half while the from-scratch re-run walks everything. Loads are
	// the headline; the two fixed points must agree to ~1e-12.
	ur, err := updateAblation(g, dir, shards, threads, reps)
	if err != nil {
		return fail(err)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"update ablation: batch +%d/-%d edges dirtied %d/%d shards in %.3fs; incremental re-convergence %.3fs / %d loads / %d visits vs full %.3fs / %d loads / %d visits (%.2fx), max rank diff %.2g; compaction %.3fs",
		ur.Inserted, ur.Deleted, ur.DirtyShards, ur.TotalShards, ur.ApplyTime,
		ur.IncTime, ur.IncLoads, ur.IncVisits, ur.FullTime, ur.FullLoads, ur.FullVisits,
		ur.Speedup, ur.MaxDiff, ur.CompactTime))
	return fig, results, pf, win, iod, fr, or, sgr, bbr, ur, nil
}

// updateAblation builds a store holding two vertex-disjoint copies of
// g with every eighth edge of the second copy held back, converges
// PageRank, then applies the held-back edges as one ApplyBatch — a
// delta append. The mutated store is re-converged from scratch and
// incrementally (pre-batch ranks, seeded at the batch's dirty shards)
// on separate engines with the whole store cache-resident, so
// ShardLoads counts exactly the distinct shards each run touched. The
// copies are vertex-disjoint, so the incremental run can never have a
// reason to sweep the untouched first copy.
func updateAblation(g *graph.Graph, dir string, shards, threads, reps int) (UpdateResult, error) {
	var ur UpdateResult
	n := g.NumVertices()
	base := g.Edges()
	all := make([]graph.Edge, 0, 2*len(base))
	all = append(all, base...)
	for _, e := range base {
		all = append(all, graph.Edge{Src: e.Src + graph.VID(n), Dst: e.Dst + graph.VID(n)})
	}
	// Hold back every eighth edge of the second copy; they arrive later
	// as the update batch.
	var initial, held []graph.Edge
	for i, e := range all {
		if i >= len(base) && i%8 == 0 {
			held = append(held, e)
		} else {
			initial = append(initial, e)
		}
	}

	udir := filepath.Join(dir, "upd")
	st, err := shard.Create(udir, graph.FromEdges(2*n, initial), shard.WriteOptions{Partitions: shards})
	if err != nil {
		return UpdateResult{}, err
	}
	opts := shard.Options{Threads: threads, CacheShards: st.NumShards()}
	pre, err := shard.NewEngine(st, graph.FromEdges(2*n, initial), opts)
	if err != nil {
		return UpdateResult{}, err
	}
	before, err := pre.IncrementalPR(nil, nil, IncTolerance, 1000)
	if err != nil {
		return UpdateResult{}, err
	}

	applyStart := time.Now()
	res, err := st.ApplyBatch(held, nil)
	if err != nil {
		return UpdateResult{}, err
	}
	ur.ApplyTime = Seconds(time.Since(applyStart))
	ur.Inserted, ur.Deleted = res.Inserted, res.Deleted
	ur.DirtyShards, ur.TotalShards = len(res.Dirty), st.NumShards()

	// Both re-convergence engines reopen the store at its mutated
	// generation over the merged topology.
	mst, err := shard.Open(udir)
	if err != nil {
		return UpdateResult{}, err
	}
	merged := graph.FromEdges(2*n, all)
	full, err := shard.NewEngine(mst, merged, opts)
	if err != nil {
		return UpdateResult{}, err
	}
	inc, err := shard.NewEngine(mst, merged, opts)
	if err != nil {
		return UpdateResult{}, err
	}
	var fullFP, incFP *shard.FixedPoint
	fullT := MedianTime(reps, func() {
		fullFP, err = full.IncrementalPR(nil, nil, IncTolerance, 1000)
	})
	if err != nil {
		return UpdateResult{}, err
	}
	incT := MedianTime(reps, func() {
		incFP, err = inc.IncrementalPR(before.Ranks, res.Dirty, IncTolerance, 1000)
	})
	if err != nil {
		return UpdateResult{}, err
	}
	ur.FullTime, ur.IncTime, ur.Speedup = Seconds(fullT), Seconds(incT), Speedup(fullT, incT)
	ur.FullLoads, ur.IncLoads = full.Stats().ShardLoads, inc.Stats().ShardLoads
	ur.FullVisits, ur.IncVisits = fullFP.ShardVisits, incFP.ShardVisits
	for v := range fullFP.Ranks {
		if d := math.Abs(incFP.Ranks[v] - fullFP.Ranks[v]); d > ur.MaxDiff {
			ur.MaxDiff = d
		}
	}

	// Compaction comes last: it bumps the generation, after which the
	// engines above may not be swept again.
	compactStart := time.Now()
	if _, err := mst.Compact(); err != nil {
		return UpdateResult{}, err
	}
	ur.CompactTime = Seconds(time.Since(compactStart))
	return ur, nil
}

// scatterGatherAblation writes its own raw (v1) store — raw pricing
// makes the disk columns comparable byte for byte — and runs the
// cold-cache 10-iteration dense PageRank once per sweep mode over the
// same quarter-store LRU, collecting the movement counters and the
// final ranks from each side.
func scatterGatherAblation(g *graph.Graph, dir string, shards, threads, reps int) (ScatterGatherResult, error) {
	var sgr ScatterGatherResult
	st, err := shard.Create(filepath.Join(dir, "sg-v1"), g, shard.WriteOptions{Partitions: shards, Format: shard.FormatV1})
	if err != nil {
		return ScatterGatherResult{}, err
	}
	sgr.CacheShards = st.NumShards() / 4
	if sgr.CacheShards < 1 {
		sgr.CacheShards = 1
	}
	ec, err := shard.NewEngine(st, g, shard.Options{Threads: threads, CacheShards: sgr.CacheShards})
	if err != nil {
		return ScatterGatherResult{}, err
	}
	sg, err := shard.NewEngine(st, g, shard.Options{
		Threads: threads, CacheShards: sgr.CacheShards, SweepMode: shard.SweepScatterGather,
	})
	if err != nil {
		return ScatterGatherResult{}, err
	}
	var ecRanks, sgRanks []float64
	ecT := MedianTime(reps, func() { ecRanks = algorithms.PR(ec, 10).Ranks })
	sgT := MedianTime(reps, func() { sgRanks = algorithms.PR(sg, 10).Ranks })
	sgr.ECTime, sgr.SGTime, sgr.Speedup = Seconds(ecT), Seconds(sgT), Speedup(ecT, sgT)
	ecs, sgs := ec.Stats(), sg.Stats()
	sgr.ECDiskBytes = ecs.BytesRead
	sgr.SGDiskBytes = sgs.BytesRead
	sgr.BinBytesWritten = sgs.BinBytesWritten
	sgr.BinBytesRead = sgs.BinBytesRead
	sgr.BinShardsReused = sgs.BinShardsReused
	sgr.SGMovedBytes = sgr.SGDiskBytes + sgr.BinBytesWritten + sgr.BinBytesRead
	sgr.RanksIdentical = len(ecRanks) == len(sgRanks)
	for i := 0; sgr.RanksIdentical && i < len(ecRanks); i++ {
		if math.Float64bits(ecRanks[i]) != math.Float64bits(sgRanks[i]) {
			sgr.RanksIdentical = false
		}
	}
	return sgr, nil
}

// binBudgetAblation runs the budget columns, each over its own freshly
// written raw store so one column's spill files can never satisfy
// another column's replays (spill names are generation-suffixed and the
// stores share a generation counter start). The unbounded column runs
// first and its BinWrites — every bin scattered exactly once, retained
// for the engine's lifetime — is the measured footprint the half budget
// derives from. The edge-centric reference runs over the unbounded
// column's store with the same LRU, pricing what the sweeps would have
// re-read with no bins at all.
func binBudgetAblation(g *graph.Graph, dir string, shards, threads, reps int) (BinBudgetResult, error) {
	var br BinBudgetResult
	run := func(sub string, budget int64) (BinBudgetColumn, []float64, *shard.Store, error) {
		st, err := shard.Create(filepath.Join(dir, sub), g, shard.WriteOptions{Partitions: shards, Format: shard.FormatV1})
		if err != nil {
			return BinBudgetColumn{}, nil, nil, err
		}
		cache := st.NumShards() / 4
		if cache < 1 {
			cache = 1
		}
		br.CacheShards = cache
		eng, err := shard.NewEngine(st, g, shard.Options{
			Threads: threads, CacheShards: cache,
			SweepMode: shard.SweepScatterGather, BinBudgetBytes: budget,
		})
		if err != nil {
			return BinBudgetColumn{}, nil, nil, err
		}
		var ranks []float64
		t := MedianTime(reps, func() { ranks = algorithms.PR(eng, 10).Ranks })
		s := eng.Stats()
		col := BinBudgetColumn{
			Budget: budget, Time: Seconds(t), Loads: s.ShardLoads,
			DiskBytes: s.BytesRead, BinWrites: s.BinBytesWritten, BinReads: s.BinBytesRead,
			Spilled: s.BinBytesSpilled, SpillReads: s.BinSpillBytesRead,
			Evictions: s.BinShardsEvicted, Replays: s.BinSpillReplays,
		}
		col.MovedBytes = col.DiskBytes + col.BinWrites + col.BinReads + col.Spilled + col.SpillReads
		return col, ranks, st, nil
	}
	full, fullRanks, fullStore, err := run("bb-full", 0)
	if err != nil {
		return BinBudgetResult{}, err
	}
	br.Full, br.Footprint = full, full.BinWrites
	halfBudget := br.Footprint / 2
	if halfBudget < shard.MinBinBudgetBytes {
		halfBudget = shard.MinBinBudgetBytes
	}
	half, halfRanks, _, err := run("bb-half", halfBudget)
	if err != nil {
		return BinBudgetResult{}, err
	}
	br.Half = half
	zero, zeroRanks, _, err := run("bb-zero", shard.MinBinBudgetBytes)
	if err != nil {
		return BinBudgetResult{}, err
	}
	br.Zero = zero

	ec, err := shard.NewEngine(fullStore, g, shard.Options{Threads: threads, CacheShards: br.CacheShards})
	if err != nil {
		return BinBudgetResult{}, err
	}
	var ecRanks []float64
	MedianTime(reps, func() { ecRanks = algorithms.PR(ec, 10).Ranks })
	br.ECDiskBytes = ec.Stats().BytesRead

	br.RanksIdentical = true
	for _, other := range [][]float64{halfRanks, zeroRanks, ecRanks} {
		if len(other) != len(fullRanks) {
			br.RanksIdentical = false
			break
		}
		for i := range fullRanks {
			if math.Float64bits(other[i]) != math.Float64bits(fullRanks[i]) {
				br.RanksIdentical = false
				break
			}
		}
	}
	return br, nil
}

// orderAblation runs the cold-start order columns over an
// already-written store with a half-store LRU budget.
func orderAblation(st *shard.Store, g *graph.Graph, threads, reps int) (OrderResult, error) {
	or := OrderResult{CacheShards: st.NumShards() / 2}
	if or.CacheShards < 1 {
		or.CacheShards = 1
	}
	for _, order := range shard.Orders() {
		eng, err := shard.NewEngine(st, g, shard.Options{
			Threads: threads, CacheShards: or.CacheShards, Order: order,
		})
		if err != nil {
			return OrderResult{}, err
		}
		t := Seconds(MedianTime(reps, func() { algorithms.PR(eng, 10) }))
		s := eng.Stats()
		or.Columns = append(or.Columns, OrderColumn{
			Order: order, Time: t, Loads: s.ShardLoads, CacheHits: s.CacheHits,
			BytesRead: s.BytesRead, ReloadsAvoided: s.ReloadsAvoided,
		})
	}
	return or, nil
}

// formatAblation writes g in both shard-file formats under dir and
// times a cold-cache PageRank over each, collecting the byte counters.
func formatAblation(g *graph.Graph, dir string, shards, threads, reps int) (FormatResult, error) {
	var fr FormatResult
	type column struct {
		format shard.Format
		time   *float64
		bytes  *int64
		disk   *int64
		bpe    *float64
	}
	cols := []column{
		{shard.FormatV1, &fr.V1Time, &fr.V1Bytes, &fr.V1Disk, &fr.V1BytesPerEdge},
		{shard.FormatV2, &fr.V2Time, &fr.V2Bytes, &fr.V2Disk, &fr.V2BytesPerEdge},
	}
	for _, col := range cols {
		st, err := shard.Create(filepath.Join(dir, "fmt-"+col.format.String()), g, shard.WriteOptions{Partitions: shards, Format: col.format})
		if err != nil {
			return FormatResult{}, err
		}
		eng, err := shard.NewEngine(st, g, shard.Options{Threads: threads, CacheShards: 1})
		if err != nil {
			return FormatResult{}, err
		}
		*col.time = Seconds(MedianTime(reps, func() { algorithms.PR(eng, 10) }))
		*col.bytes = eng.Stats().BytesRead
		if *col.disk, err = st.DiskBytes(); err != nil {
			return FormatResult{}, err
		}
		if e := g.NumEdges(); e > 0 {
			*col.bpe = float64(*col.disk) / float64(e)
		}
	}
	fr.Speedup = fr.V1Time / fr.V2Time
	if fr.V2Bytes > 0 {
		fr.Ratio = float64(fr.V1Bytes) / float64(fr.V2Bytes)
	}
	return fr, nil
}
