package bench

import (
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/shard"
)

func TestOutOfCoreComparisonRuns(t *testing.T) {
	g := gen.TinySocial()
	fig, results, pf, win, err := OutOfCore(g, t.TempDir(), 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, r := range results {
		if r.InMemory <= 0 || r.OutOfCore <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Alg, r)
		}
	}
	// The ablations must produce real timings for every column; which
	// side wins on a micro graph under the OS page cache is not a
	// stable property, so only the shape is asserted here.
	if pf.On <= 0 || pf.Off <= 0 || pf.Speedup <= 0 {
		t.Fatalf("prefetch ablation has non-positive entries: %+v", pf)
	}
	if win.K1 <= 0 || win.KD <= 0 || win.Speedup <= 0 {
		t.Fatalf("window ablation has non-positive timings: %+v", win)
	}
	if win.PeakK1 < 1 || win.PeakKD < 1 {
		t.Fatalf("window ablation recorded no applies: %+v", win)
	}
	if win.Domains < 2 {
		t.Fatalf("window ablation ran with %d domains; the occupancy comparison needs several", win.Domains)
	}
	text := fig.Render()
	for _, want := range []string{"GG-v2", "OOC", "cache hits", "prefetch", "cold-cache PR ablation", "domain shards", "occupancy ablation", "apply levels"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, text)
		}
	}
}

// TestOutOfCoreComparisonAgrees pins the comparison to correctness, not
// just timing: the engine being benchmarked must produce the in-memory
// engine's PageRank.
func TestOutOfCoreComparisonAgrees(t *testing.T) {
	g := gen.TinySocial()
	ooc, err := shard.Build(t.TempDir(), g, 8, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := algorithms.PR(ooc, 10).Ranks
	want := algorithms.SerialPR(g, 10)
	for v := range want {
		diff := got[v] - want[v]
		if diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}
