package api

import (
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Shared VertexMap / VertexFilter implementations. All four engines use
// identical vertex-wise operators; only EdgeMap differs between systems,
// so the baselines and core both delegate here.

// VertexMap applies fn to every active vertex of f using the pool.
func VertexMap(pool *sched.Pool, f *frontier.Frontier, fn func(graph.VID)) {
	if f.Count() == 0 {
		return
	}
	// Dense frontiers iterate the bitmap by 64-vertex words to avoid
	// materialising a list; sparse frontiers iterate the list directly.
	list := f.List()
	pool.ParallelFor(len(list), sched.DefaultChunk, func(i int) {
		fn(list[i])
	})
}

// VertexFilter returns the sub-frontier of f satisfying pred, with |F|
// and Σ out-deg statistics filled from g.
func VertexFilter(pool *sched.Pool, g *graph.Graph, f *frontier.Frontier, pred func(graph.VID) bool) *frontier.Frontier {
	list := f.List()
	if len(list) == 0 {
		return frontier.New(g.NumVertices())
	}
	type acc struct {
		verts  []graph.VID
		outDeg int64
	}
	accs := make([]acc, pool.Threads())
	pool.ParallelRange(len(list), func(w, lo, hi int) {
		a := &accs[w]
		for i := lo; i < hi; i++ {
			v := list[i]
			if pred(v) {
				a.verts = append(a.verts, v)
				a.outDeg += g.OutDegree(v)
			}
		}
	})
	var total int
	var outDeg int64
	for i := range accs {
		total += len(accs[i].verts)
		outDeg += accs[i].outDeg
	}
	merged := make([]graph.VID, 0, total)
	for i := range accs {
		merged = append(merged, accs[i].verts...)
	}
	nf := frontier.FromList(g.NumVertices(), merged)
	nf.SetStats(int64(total), outDeg)
	return nf
}
