// Package locality provides the memory-behaviour instrumentation behind
// Figures 2 and 8: an exact LRU reuse-distance analyzer, a set-
// associative cache simulator, and replayers that regenerate the memory
// access order each graph layout induces. The paper measures these with
// hardware counters on a Xeon; offline, we reproduce the access traces
// the engine would issue and measure them in simulation, which preserves
// the figures' shape (see DESIGN.md §2).
package locality

import "math/bits"

// ReuseAnalyzer computes exact LRU stack distances: for each access, the
// number of *distinct* addresses touched since the previous access to the
// same address (∞ for first accesses). Implementation is the classic
// Bennett–Kruskal algorithm: a Fenwick tree over access time marks the
// most recent access position of every live address; the distance is the
// count of marked positions after the address's previous access.
type ReuseAnalyzer struct {
	last  map[uint64]int // address → time of most recent access
	tree  []int64        // Fenwick tree over times 1..cap
	time  int
	hist  Histogram
	colds int64 // first-touch accesses (infinite distance)
}

// NewReuseAnalyzer returns an analyzer sized for roughly n accesses; it
// grows as needed.
func NewReuseAnalyzer(n int) *ReuseAnalyzer {
	if n < 16 {
		n = 16
	}
	return &ReuseAnalyzer{
		last: make(map[uint64]int),
		tree: make([]int64, n+1),
	}
}

// Access records one access to addr and returns its reuse distance, or
// -1 for a cold (first) access.
func (r *ReuseAnalyzer) Access(addr uint64) int64 {
	r.time++
	t := r.time
	if t >= len(r.tree) {
		r.grow()
	}
	var dist int64 = -1
	if prev, ok := r.last[addr]; ok {
		// Distinct addresses touched strictly after prev: each live
		// address is marked exactly once, at its latest access time.
		dist = r.prefix(t-1) - r.prefix(prev)
		r.add(prev, -1)
	} else {
		r.colds++
	}
	r.add(t, 1)
	r.last[addr] = t
	if dist >= 0 {
		r.hist.Add(dist)
	}
	return dist
}

func (r *ReuseAnalyzer) grow() {
	// Double the tree and rebuild it from the live positions (each live
	// address is marked exactly once, at its latest access time), which
	// is O(live · log n).
	r.tree = make([]int64, 2*len(r.tree))
	for _, t := range r.last {
		r.add(t, 1)
	}
}

func (r *ReuseAnalyzer) add(i int, d int64) {
	for ; i < len(r.tree); i += i & (-i) {
		r.tree[i] += d
	}
}

func (r *ReuseAnalyzer) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += r.tree[i]
	}
	return s
}

// Histogram returns the log₂-bucketed distance histogram accumulated so
// far.
func (r *ReuseAnalyzer) Histogram() Histogram { return r.hist }

// ColdAccesses returns the number of first-touch accesses.
func (r *ReuseAnalyzer) ColdAccesses() int64 { return r.colds }

// Accesses returns the total access count.
func (r *ReuseAnalyzer) Accesses() int64 { return int64(r.time) }

// MaxObserved returns the largest bucketed distance upper bound seen, the
// "worst-case reuse distance" Figure 2 shows contracting with P.
func (r *ReuseAnalyzer) MaxObserved() int64 { return r.hist.MaxObserved() }

// Histogram buckets distances by log₂: bucket i counts distances in
// [2^i, 2^(i+1)), with distance 0 in bucket 0.
type Histogram struct {
	Buckets [64]int64
	maxSeen int64
}

// Add records one distance.
func (h *Histogram) Add(d int64) {
	if d < 0 {
		return
	}
	b := 0
	if d > 0 {
		b = bits.Len64(uint64(d)) - 1
	}
	h.Buckets[b]++
	if d > h.maxSeen {
		h.maxSeen = d
	}
}

// MaxObserved returns the largest distance recorded.
func (h *Histogram) MaxObserved() int64 { return h.maxSeen }

// Total returns the number of recorded distances.
func (h *Histogram) Total() int64 {
	var s int64
	for _, c := range h.Buckets {
		s += c
	}
	return s
}

// NonEmpty returns the index of the highest non-empty bucket + 1.
func (h *Histogram) NonEmpty() int {
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if h.Buckets[i] != 0 {
			return i + 1
		}
	}
	return 0
}

// Mean returns the mean of recorded distances approximated by bucket
// midpoints (exact enough for trend assertions).
func (h *Histogram) Mean() float64 {
	var n, sum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		mid := float64((int64(1)<<uint(i) + (int64(1)<<uint(i+1) - 1)) / 2)
		if i == 0 {
			mid = 0.5
		}
		sum += mid * float64(c)
		n += float64(c)
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
