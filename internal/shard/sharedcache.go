package shard

// The multi-tenant residency layer. A SharedCache is one byte-budgeted,
// refcounted LRU shared by every session of every store a daemon hosts:
// a shard resident for one in-flight query is free for every other
// query on the same store, and eviction considers only shards no query
// is currently applying (refcount zero). Two invariants hold at every
// observation point, not just at quiescence:
//
//   - a pinned shard (refcount > 0) is never evicted, and
//   - the decoded bytes resident in the cache never exceed the budget.
//
// Both follow from the same rule: an insert that cannot fit after
// evicting every cold unpinned shard is *refused* — the load's result
// is still returned to the session that needs it (a transient shard,
// accounted under Rejected) but it is never admitted, so the budget is
// a hard bound rather than a high-water mark. Nothing ever blocks on
// the budget, so sessions cannot deadlock against each other however
// small it is.
//
// Uncached reads are single-flight per (store, shard): concurrent
// sessions missing on the same shard elect one loader and the rest
// share its result (SharedReads), so co-scheduled queries cannot
// multiply disk traffic for the same bytes.

import (
	"container/list"
	"sync"
)

// DefaultCacheBytes is the shared-cache budget a daemon gets when none
// is configured: generous enough to keep a mid-size store's working set
// decoded, small enough to stay out of core in spirit.
const DefaultCacheBytes int64 = 256 << 20

// cacheKey names one shard of one open store. The *Store identity is
// the namespace, so a daemon hosting many stores shares one budget
// without name bookkeeping.
type cacheKey struct {
	st  *Store
	idx int
}

// sharedEntry is one resident shard plus its refcount. pins counts the
// sessions currently holding the shard between fetch and the end of
// its apply; eviction skips any entry with pins > 0.
type sharedEntry struct {
	key   cacheKey
	sh    *resident
	bytes int64
	pins  int
}

// sharedLoad is one in-flight uncached read: the elected loader
// resolves it, waiting sessions share the result.
type sharedLoad struct {
	done chan struct{}
	sh   *resident
	err  error
}

// SharedCacheStats is a point-in-time snapshot of the shared cache.
type SharedCacheStats struct {
	Budget    int64 // configured byte budget
	Bytes     int64 // decoded bytes resident now (always <= Budget)
	PeakBytes int64 // high-water mark of Bytes
	Resident  int64 // shards resident now
	Pinned    int64 // resident shards with refcount > 0 right now
	Hits      int64 // fetches served from residency
	Loads     int64 // disk loads performed (single-flight winners)
	Shared    int64 // reads served by another session's load or a raced insert
	Evictions int64 // unpinned shards evicted to make room
	Rejected  int64 // inserts refused because the cold unpinned set could not cover the bytes
}

// SharedCache is the refcounted, byte-budgeted shard LRU N concurrent
// sessions share. All methods are safe for concurrent use.
type SharedCache struct {
	budget int64

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *sharedEntry
	idx      map[cacheKey]*list.Element
	inflight map[cacheKey]*sharedLoad
	bytes    int64

	peakBytes, hits, loads, shared, evictions, rejected int64
}

// NewSharedCache builds a shared cache with the given byte budget;
// budget <= 0 selects DefaultCacheBytes.
func NewSharedCache(budget int64) *SharedCache {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	return &SharedCache{
		budget:   budget,
		ll:       list.New(),
		idx:      make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*sharedLoad),
	}
}

// residentBytes prices a decoded shard: the bucketed src/dst copies
// plus the task offsets — the memory the budget actually bounds.
func residentBytes(sh *resident) int64 {
	return int64(len(sh.src)+len(sh.dst))*4 + int64(len(sh.off))*8
}

// Budget returns the configured byte budget.
func (c *SharedCache) Budget() int64 { return c.budget }

// Bytes returns the decoded bytes resident right now; by construction
// it never exceeds Budget at any observation point.
func (c *SharedCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a consistent snapshot of the cache counters.
func (c *SharedCache) Stats() SharedCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := SharedCacheStats{
		Budget:    c.budget,
		Bytes:     c.bytes,
		PeakBytes: c.peakBytes,
		Resident:  int64(c.ll.Len()),
		Hits:      c.hits,
		Loads:     c.loads,
		Shared:    c.shared,
		Evictions: c.evictions,
		Rejected:  c.rejected,
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*sharedEntry).pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// releaseFunc builds the one-shot unpin for ent. A pinned entry is
// never evicted, so ent is guaranteed still live when the release runs.
func (c *SharedCache) releaseFunc(ent *sharedEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			ent.pins--
			c.mu.Unlock()
		})
	}
}

// get returns shard k pinned and promoted to most recently used, plus
// its release; the caller must invoke release when the apply is done.
func (c *SharedCache) get(k cacheKey) (*resident, func(), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[k]
	if !ok {
		return nil, nil, false
	}
	ent := el.Value.(*sharedEntry)
	c.ll.MoveToFront(el)
	ent.pins++
	c.hits++
	return ent.sh, c.releaseFunc(ent), true
}

// peek reports whether shard k is resident without promoting or
// pinning it — the stager's issue-time residency prediction.
func (c *SharedCache) peek(k cacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.idx[k]
	return ok
}

// add admits a freshly loaded shard, pinned, evicting cold unpinned
// entries to make room. If another session raced the insert, its entry
// is adopted (promoted and pinned) and sh is dropped. If the bytes
// cannot fit after evicting everything evictable — every other
// resident shard is pinned, or the shard alone exceeds the budget —
// the insert is refused: the returned release is a no-op, admitted is
// false, and the caller simply uses sh uncached (a transient shard).
// The budget is therefore never exceeded, not even transiently.
func (c *SharedCache) add(k cacheKey, sh *resident) (release func(), admitted bool) {
	need := residentBytes(sh)
	c.mu.Lock()
	defer c.mu.Unlock()
	// The shard is reaching (or has reached) residency: retire the
	// resolved single-flight record load retained for the gap between
	// read completion and this insertion. An unresolved record belongs
	// to a newer read for the same key — leave it to its own reap.
	if w, ok := c.inflight[k]; ok {
		select {
		case <-w.done:
			delete(c.inflight, k)
		default:
		}
	}
	if el, ok := c.idx[k]; ok {
		ent := el.Value.(*sharedEntry)
		c.ll.MoveToFront(el)
		ent.pins++
		return c.releaseFunc(ent), true
	}
	for c.bytes+need > c.budget {
		var victim *list.Element
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			if el.Value.(*sharedEntry).pins == 0 {
				victim = el
				break
			}
		}
		if victim == nil {
			c.rejected++
			return func() {}, false
		}
		ent := victim.Value.(*sharedEntry)
		c.ll.Remove(victim)
		delete(c.idx, ent.key)
		c.bytes -= ent.bytes
		c.evictions++
	}
	ent := &sharedEntry{key: k, sh: sh, bytes: need, pins: 1}
	c.idx[k] = c.ll.PushFront(ent)
	c.bytes += need
	if c.bytes > c.peakBytes {
		c.peakBytes = c.bytes
	}
	return c.releaseFunc(ent), true
}

// load is the single-flight read path: if shard k is resident or
// another session's read for it is in flight, the caller shares that
// result (shared = true, no disk touched); otherwise the caller is
// elected loader, runs read, and publishes the outcome to any waiters.
// A waiter inherits the loader's error — read failures are properties
// of the store, not the session.
func (c *SharedCache) load(k cacheKey, read func() (*resident, error)) (sh *resident, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.idx[k]; ok {
		ent := el.Value.(*sharedEntry)
		c.ll.MoveToFront(el)
		c.shared++
		c.mu.Unlock()
		return ent.sh, true, nil
	}
	if w, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-w.done
		if w.err != nil {
			return nil, true, w.err
		}
		c.mu.Lock()
		c.shared++
		c.mu.Unlock()
		return w.sh, true, nil
	}
	w := &sharedLoad{done: make(chan struct{})}
	c.inflight[k] = w
	c.mu.Unlock()

	sh, err = read()
	w.sh, w.err = sh, err

	c.mu.Lock()
	if err != nil {
		// Failed loads retry: nothing will admit this key, so the record
		// must not outlive the attempt (and must not pin the error for
		// a store whose fault might be repaired).
		delete(c.inflight, k)
	} else {
		// Success: keep the resolved record until add admits the shard,
		// so a session missing in the gap between this read's completion
		// and its reap-time insertion shares the result instead of
		// re-reading the disk — without this, "concurrent queries never
		// multiply loads for the same resident bytes" would be a race.
		c.loads++
	}
	c.mu.Unlock()
	close(w.done)
	return sh, false, err
}

// snapshotStore returns st's resident shard indices, most recently
// used first — the per-store view the sweep-order planner consumes.
func (c *SharedCache) snapshotStore(st *Store) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if ent := el.Value.(*sharedEntry); ent.key.st == st {
			out = append(out, ent.key.idx)
		}
	}
	return out
}

// lenStore returns the number of st's shards resident.
func (c *SharedCache) lenStore(st *Store) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*sharedEntry).key.st == st {
			n++
		}
	}
	return n
}

// dropStore evicts every unpinned resident shard of st — the
// close-store path. Shards still pinned by in-flight queries stay
// until released, then age out by LRU like any cold entry.
func (c *SharedCache) dropStore(st *Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, w := range c.inflight {
		if k.st != st {
			continue
		}
		select {
		case <-w.done:
			delete(c.inflight, k)
		default:
		}
	}
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*sharedEntry)
		if ent.key.st == st && ent.pins == 0 {
			c.ll.Remove(el)
			delete(c.idx, ent.key)
			c.bytes -= ent.bytes
			c.evictions++
		}
	}
}

// sessionCache adapts one session's view of the SharedCache to the
// engineCache interface the sweep machinery drives. It tracks the
// release for every pin the session acquires — including the no-op
// release of a refused (transient) insert — so the engine's
// release-by-index calls resolve to the right unpin even when the
// cache declined to admit the shard.
type sessionCache struct {
	c  *SharedCache
	st *Store

	mu  sync.Mutex
	rel map[int][]func()
}

func newSessionCache(c *SharedCache, st *Store) *sessionCache {
	return &sessionCache{c: c, st: st, rel: make(map[int][]func())}
}

func (s *sessionCache) track(i int, release func()) {
	s.mu.Lock()
	s.rel[i] = append(s.rel[i], release)
	s.mu.Unlock()
}

func (s *sessionCache) get(i int) (*resident, bool) {
	sh, release, ok := s.c.get(cacheKey{s.st, i})
	if !ok {
		return nil, false
	}
	s.track(i, release)
	return sh, true
}

func (s *sessionCache) peek(i int) bool {
	return s.c.peek(cacheKey{s.st, i})
}

func (s *sessionCache) put(sh *resident) {
	release, _ := s.c.add(cacheKey{s.st, sh.idx}, sh)
	s.track(sh.idx, release)
}

func (s *sessionCache) release(i int) {
	s.mu.Lock()
	fns := s.rel[i]
	if len(fns) == 0 {
		s.mu.Unlock()
		return
	}
	fn := fns[len(fns)-1]
	if len(fns) == 1 {
		delete(s.rel, i)
	} else {
		s.rel[i] = fns[:len(fns)-1]
	}
	s.mu.Unlock()
	fn()
}

func (s *sessionCache) snapshot() []int { return s.c.snapshotStore(s.st) }

func (s *sessionCache) len() int { return s.c.lenStore(s.st) }
