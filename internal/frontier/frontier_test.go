package frontier

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if b.Count() != 4 {
		t.Fatalf("count = %d", b.Count())
	}
	for _, v := range []graph.VID{0, 63, 64, 129} {
		if !b.Get(v) {
			t.Fatalf("bit %d not set", v)
		}
	}
	if b.Get(1) || b.Get(65) {
		t.Fatal("unexpected bit set")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("clear failed")
	}
}

func TestBitmapTestAndSetClaimsOnce(t *testing.T) {
	b := NewBitmap(64)
	if !b.TestAndSet(5) {
		t.Fatal("first claim failed")
	}
	if b.TestAndSet(5) {
		t.Fatal("second claim succeeded")
	}
}

func TestBitmapTestAndSetConcurrent(t *testing.T) {
	const n = 1 << 12
	const workers = 8
	b := NewBitmap(n)
	wins := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 0; v < n; v++ {
				if b.TestAndSet(graph.VID(v)) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("claims = %d, want exactly %d", total, n)
	}
	if b.Count() != n {
		t.Fatalf("count = %d", b.Count())
	}
}

func TestBitmapForEachAscending(t *testing.T) {
	b := NewBitmap(200)
	want := []graph.VID{3, 64, 65, 127, 128, 199}
	for _, v := range want {
		b.Set(v)
	}
	var got []graph.VID
	b.ForEach(func(v graph.VID) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: CountRange agrees with a brute-force count for random sets
// and ranges.
func TestCountRangeProperty(t *testing.T) {
	f := func(vs []uint16, lo16, hi16 uint16) bool {
		const n = 1 << 10
		b := NewBitmap(n)
		for _, v := range vs {
			b.Set(graph.VID(v % n))
		}
		lo, hi := graph.VID(lo16%n), graph.VID(hi16%n)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want int64
		for v := lo; v < hi; v++ {
			if b.Get(v) {
				want++
			}
		}
		return b.CountRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierConversions(t *testing.T) {
	n := 100
	f := FromList(n, []graph.VID{5, 10, 99})
	if f.Count() != 3 {
		t.Fatalf("count = %d", f.Count())
	}
	bm := f.Bitmap()
	if !bm.Get(5) || !bm.Get(99) || bm.Get(0) {
		t.Fatal("bitmap conversion wrong")
	}
	f2 := FromBitmap(n, bm)
	list := f2.List()
	if len(list) != 3 || list[0] != 5 || list[2] != 99 {
		t.Fatalf("list conversion wrong: %v", list)
	}
}

func TestFrontierAll(t *testing.T) {
	g := gen.TinySocial()
	f := All(g)
	if f.Count() != int64(g.NumVertices()) {
		t.Fatalf("count = %d", f.Count())
	}
	if f.OutDegree(g) != g.NumEdges() {
		t.Fatalf("outdeg = %d, want %d", f.OutDegree(g), g.NumEdges())
	}
	// Tail bits beyond n must not be set.
	if f.Bitmap().Count() != int64(g.NumVertices()) {
		t.Fatal("tail bits leaked")
	}
}

func TestFrontierAllOddSize(t *testing.T) {
	g := gen.Chain(67) // not a multiple of 64
	f := All(g)
	if f.Count() != 67 || f.Bitmap().Count() != 67 {
		t.Fatalf("count = %d bitmapcount=%d", f.Count(), f.Bitmap().Count())
	}
}

func TestClassifyThresholds(t *testing.T) {
	g := gen.Star(1000) // centre has out-degree 999, m=999
	// All active: work = 1000 + 999 > m/2 → dense.
	if c := All(g).Classify(g, 20, 2); c != Dense {
		t.Fatalf("all-active class = %v", c)
	}
	// Single leaf active: work = 1 + 0 ≤ m/20 → sparse.
	leaf := FromVertex(g, 5)
	if c := leaf.Classify(g, 20, 2); c != Sparse {
		t.Fatalf("leaf class = %v", c)
	}
	// Centre active: work = 1 + 999 > m/2 → dense.
	centre := FromVertex(g, 0)
	if c := centre.Classify(g, 20, 2); c != Dense {
		t.Fatalf("centre class = %v", c)
	}
}

func TestClassifyMedium(t *testing.T) {
	// Build a graph where a chosen frontier lands strictly between the
	// thresholds: m = 200 edges; frontier work must be in (10, 100].
	var edges []graph.Edge
	for i := 0; i < 200; i++ {
		edges = append(edges, graph.Edge{Src: graph.VID(i % 10), Dst: graph.VID(10 + i%90)})
	}
	g := graph.FromEdges(100, edges)
	f := FromVertex(g, 0) // out-degree 20 → work 21 ∈ (10,100]
	if c := f.Classify(g, 20, 2); c != Medium {
		t.Fatalf("class = %v, want medium", c)
	}
}

func TestFrontierStats(t *testing.T) {
	g := gen.Star(10)
	f := FromList(g.NumVertices(), []graph.VID{0, 1})
	if f.OutDegree(g) != 9 { // centre 9 + leaf 0
		t.Fatalf("outdeg = %d", f.OutDegree(g))
	}
	f.SetStats(2, 9)
	if f.Count() != 2 || f.OutDegree(g) != 9 {
		t.Fatal("stats lost")
	}
}

func TestFrontierHas(t *testing.T) {
	f := FromList(50, []graph.VID{7, 9})
	if !f.Has(7) || f.Has(8) {
		t.Fatal("sparse Has wrong")
	}
	f.Bitmap()
	if !f.Has(9) || f.Has(10) {
		t.Fatal("dense Has wrong")
	}
}

func TestEmptyFrontier(t *testing.T) {
	f := New(10)
	if !f.IsEmpty() || f.Count() != 0 {
		t.Fatal("new frontier not empty")
	}
	f.ForEach(func(graph.VID) { t.Fatal("unexpected visit") })
}

func TestClassStrings(t *testing.T) {
	if Sparse.String() != "sparse" || Medium.String() != "medium" || Dense.String() != "dense" {
		t.Fatal("class strings wrong")
	}
}

// Property: frontier list↔bitmap conversion round-trips exactly for
// random vertex sets.
func TestFrontierRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 11
		seen := map[graph.VID]bool{}
		var vs []graph.VID
		for _, r := range raw {
			v := graph.VID(r % n)
			if !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
		fr := FromList(n, vs)
		back := FromBitmap(n, fr.Bitmap()).List()
		if len(back) != len(vs) {
			return false
		}
		for _, v := range back {
			if !seen[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountRange sums to Count when tiling [0,n) with aligned
// blocks — the invariant engines rely on when aggregating per-partition
// statistics.
func TestCountRangeTilingProperty(t *testing.T) {
	f := func(raw []uint16, blockRaw uint8) bool {
		const n = 1 << 10
		b := NewBitmap(n)
		for _, r := range raw {
			b.Set(graph.VID(r % n))
		}
		block := 64 * (int(blockRaw%8) + 1)
		var sum int64
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			sum += b.CountRange(graph.VID(lo), graph.VID(hi))
		}
		return sum == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
