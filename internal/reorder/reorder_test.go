package reorder

import (
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPermutationsAreBijections(t *testing.T) {
	g := gen.TinySocial()
	for _, s := range Strategies() {
		perm := Permutation(g, s, 7)
		seen := make([]bool, g.NumVertices())
		for _, p := range perm {
			if seen[p] {
				t.Fatalf("%v: duplicate image %d", s, p)
			}
			seen[p] = true
		}
	}
}

func TestApplyConservesStructure(t *testing.T) {
	g := gen.TinySocial()
	for _, s := range Strategies() {
		perm := Permutation(g, s, 7)
		h := Apply(g, perm)
		if h.NumEdges() != g.NumEdges() || h.NumVertices() != g.NumVertices() {
			t.Fatalf("%v: sizes changed", s)
		}
		// Degree multiset must be preserved: degree of old v equals
		// degree of perm[v].
		for v := 0; v < g.NumVertices(); v++ {
			if g.OutDegree(graph.VID(v)) != h.OutDegree(perm[v]) {
				t.Fatalf("%v: out-degree of %d changed", s, v)
			}
			if g.InDegree(graph.VID(v)) != h.InDegree(perm[v]) {
				t.Fatalf("%v: in-degree of %d changed", s, v)
			}
		}
	}
}

func TestIdentityIsNoop(t *testing.T) {
	g := gen.TinyRoad()
	h := Apply(g, Permutation(g, Identity, 0))
	eg, eh := g.Edges(), h.Edges()
	for i := range eg {
		if eg[i] != eh[i] {
			t.Fatal("identity changed the graph")
		}
	}
}

func TestDegreeDescPlacesHubsFirst(t *testing.T) {
	g := gen.TinySocial()
	perm := Permutation(g, ByDegreeDesc, 0)
	h := Apply(g, perm)
	// New vertex 0 must have the maximum total degree.
	max := int64(0)
	for v := 0; v < h.NumVertices(); v++ {
		if d := h.OutDegree(graph.VID(v)) + h.InDegree(graph.VID(v)); d > max {
			max = d
		}
	}
	if d0 := h.OutDegree(0) + h.InDegree(0); d0 != max {
		t.Fatalf("vertex 0 degree %d, max %d", d0, max)
	}
	// Degrees must be non-increasing along new IDs.
	prev := int64(1 << 62)
	for v := 0; v < h.NumVertices(); v++ {
		d := h.OutDegree(graph.VID(v)) + h.InDegree(graph.VID(v))
		if d > prev {
			t.Fatalf("degrees not sorted at %d", v)
		}
		prev = d
	}
}

func TestBFSReducesRoadBandwidth(t *testing.T) {
	// On a lattice whose IDs were scrambled, BFS ordering must reduce
	// the mean edge gap dramatically.
	g := gen.TinyRoad()
	scrambled := Apply(g, Permutation(g, Random, 99))
	bfsed := Apply(scrambled, Permutation(scrambled, ByBFS, 0))
	if Bandwidth(bfsed) >= Bandwidth(scrambled)/2 {
		t.Fatalf("BFS order bandwidth %.1f not well below random %.1f",
			Bandwidth(bfsed), Bandwidth(scrambled))
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	g := gen.TinySocial()
	a := Permutation(g, Random, 1)
	b := Permutation(g, Random, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical permutations")
	}
	c := Permutation(g, Random, 1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed gave different permutations")
		}
	}
}

func TestApplyPanicsOnNonBijection(t *testing.T) {
	g := gen.Chain(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Apply(g, []graph.VID{0, 0, 1, 2})
}

// Relabelling must not change algorithm results modulo the relabelling:
// PageRank of perm[v] on the reordered graph equals PageRank of v.
func TestReorderingPreservesPageRank(t *testing.T) {
	g := gen.TinySocial()
	base := algorithms.PR(core.NewEngine(g, core.Options{}), 8).Ranks
	for _, s := range Strategies() {
		perm := Permutation(g, s, 3)
		h := Apply(g, perm)
		got := algorithms.PR(core.NewEngine(h, core.Options{}), 8).Ranks
		for v := range base {
			diff := base[v] - got[perm[v]]
			if diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%v: rank of %d changed by %g", s, v, diff)
			}
		}
	}
}

// Property: Apply∘Permutation never loses or duplicates edges for random
// graphs under the random strategy.
func TestApplyEdgeConservationProperty(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		const n = 64
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{Src: graph.VID(raw[i] % n), Dst: graph.VID(raw[i+1] % n)})
		}
		g := graph.FromEdges(n, edges)
		h := Apply(g, Permutation(g, Random, seed))
		return h.NumEdges() == g.NumEdges() && h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{Identity: "identity", ByDegreeDesc: "degree", ByBFS: "bfs", Random: "random"}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%v != %s", s, w)
		}
	}
}
