package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Algorithms beyond Table II. The paper's framework is Ligra-compatible,
// so the classic Ligra applications run unchanged; KCore, MIS and Radii
// are included to demonstrate API generality and exercise frontier
// patterns the Table II set does not (peeling, priority tie-breaking,
// bit-parallel multi-BFS).

// KCoreResult holds per-vertex coreness: the largest k such that the
// vertex survives in the k-core (the maximal subgraph of minimum degree
// ≥ k). MaxCore is the graph's degeneracy.
type KCoreResult struct {
	Coreness []int32
	MaxCore  int32
	Rounds   int
}

// KCore computes coreness by iterative peeling, Ligra-style: for
// k = 1, 2, … repeatedly remove vertices whose residual degree is below
// k, propagating degree decrements along out-edges. Intended for
// symmetric graphs (like Ligra's KCore); on directed input it peels by
// out-degree-induced in-degree.
func KCore(sys api.System) KCoreResult {
	g := sys.Graph()
	n := g.NumVertices()
	deg := NewI32s(n, 0)
	coreness := NewI32s(n, 0)
	alive := make([]bool, n)
	var remaining int64
	for v := 0; v < n; v++ {
		deg.Set(graph.VID(v), int32(g.InDegree(graph.VID(v))))
		alive[v] = true
	}
	remaining = int64(n)

	res := KCoreResult{Coreness: coreness.Slice()}
	all := frontier.All(g)
	for k := int32(1); remaining > 0; k++ {
		// Peel every vertex whose degree dropped below k, cascading
		// until the k-core is stable.
		for {
			peel := sys.VertexFilter(all, func(v graph.VID) bool {
				return alive[v] && deg.Get(v) < k
			})
			if peel.IsEmpty() {
				break
			}
			res.Rounds++
			sys.VertexMap(peel, func(v graph.VID) {
				alive[v] = false
				coreness.Set(v, k-1)
			})
			remaining -= peel.Count()
			dec := api.EdgeOp{
				Cond: func(v graph.VID) bool { return alive[v] },
				Update: func(u, v graph.VID) bool {
					deg.Set(v, deg.Get(v)-1)
					return true
				},
				UpdateAtomic: func(u, v graph.VID) bool {
					// Negative counts are fine: the alive check guards.
					addInt32(deg, v, -1)
					return true
				},
			}
			sys.EdgeMap(peel, dec, api.DirForward)
		}
		if remaining > 0 {
			res.MaxCore = k
		}
	}
	return res
}

// addInt32 atomically adds delta to element i.
func addInt32(a *I32s, i graph.VID, delta int32) {
	for {
		old := a.Get(i)
		if a.AtomicCompareAndSet(i, old, old+delta) {
			return
		}
	}
}

// SerialKCore computes coreness with the Batagelj–Zaveršnik bucket
// algorithm (O(V+E)) as the oracle: repeatedly extract a minimum-degree
// vertex; its coreness is the running maximum of extraction degrees.
func SerialKCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	var maxDeg int32
	for v := 0; v < n; v++ {
		deg[v] = int32(g.InDegree(graph.VID(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket-sorted vertex order with position tracking so degree
	// decrements can move vertices between buckets in O(1).
	binStart := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		binStart[deg[v]+1]++
	}
	for d := int32(1); d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int32, n) // vertex → index in order
	order := make([]graph.VID, n)
	cursor := make([]int32, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = cursor[deg[v]]
		order[pos[v]] = graph.VID(v)
		cursor[deg[v]]++
	}
	coreness := make([]int32, n)
	removed := make([]bool, n)
	cur := int32(0)
	for i := 0; i < n; i++ {
		v := order[i]
		removed[v] = true
		if deg[v] > cur {
			cur = deg[v]
		}
		coreness[v] = cur
		for _, w := range g.OutNeighbors(v) {
			if removed[w] || deg[w] <= deg[v] {
				continue
			}
			// Swap w with the first vertex of its current bucket, then
			// shrink the bucket boundary and decrement.
			dw := deg[w]
			first := binStart[dw]
			u := order[first]
			if u != w {
				order[first], order[pos[w]] = w, u
				pos[u], pos[w] = pos[w], first
			}
			binStart[dw]++
			deg[w]--
		}
	}
	return coreness
}
