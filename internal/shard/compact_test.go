package shard

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// mutatedFixture builds a store with pending deltas and returns its
// dir and the expected (post-batch) edge multiset.
func mutatedFixture(t *testing.T) (string, edgeMultiset) {
	t.Helper()
	g := gen.TinySocial()
	dir := t.TempDir()
	st, err := Create(dir, g, WriteOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := multisetOf(g)
	ins := []graph.Edge{{Src: 0, Dst: 9}, {Src: 9, Dst: 0}, {Src: 3, Dst: 3}}
	del := g.Edges()[:2]
	if _, err := st.ApplyBatch(ins, del); err != nil {
		t.Fatal(err)
	}
	want.apply(ins, del)
	if st.PendingDeltas() == 0 {
		t.Fatal("fixture has no pending deltas")
	}
	return dir, want
}

// TestCrashMidCompactionLeavesOldGeneration is the regression test for
// the half-swapped-generation hole: a compactor killed after writing
// its new base files but before the manifest rename must leave the
// directory reopening as the previous generation, deltas and all, with
// content intact. The property holds because compaction writes its
// bases under fresh generation-suffixed names — were it to rewrite the
// live shard-NNNN.bin files in place, the old manifest would name
// half-new half-old files and this test would read merged garbage.
func TestCrashMidCompactionLeavesOldGeneration(t *testing.T) {
	dir, want := mutatedFixture(t)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen0, pend0 := st.Generation(), st.PendingDeltas()

	// Simulate the crash: run compaction's file-writing half by hand —
	// every new base file durable under its next-generation name — and
	// stop before the manifest swap.
	next := gen0 + 1
	for i := 0; i < st.NumShards(); i++ {
		if len(st.deltas(i)) == 0 {
			continue
		}
		c, _, err := st.loadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeShardFile(filepath.Join(dir, compactedShardName(i, next)), c, st.Format()); err != nil {
			t.Fatal(err)
		}
	}
	// And a torn manifest temp file from the dying rename, plus garbage
	// shard temps — all inert.
	for _, name := range []string{"manifest.json.tmp", compactedShardName(0, next) + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening after a simulated mid-compaction crash: %v", err)
	}
	if reopened.Generation() != gen0 || reopened.PendingDeltas() != pend0 {
		t.Fatalf("reopened at generation %d with %d deltas, want %d with %d",
			reopened.Generation(), reopened.PendingDeltas(), gen0, pend0)
	}
	checkEquivalent(t, reopened, want)

	// The interrupted compaction can simply be rerun — the orphaned
	// gen-files are overwritten or superseded, never load-bearing.
	if _, err := reopened.Compact(); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, reopened, want)
	final, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.PendingDeltas() != 0 {
		t.Fatalf("rerun compaction left %d deltas", final.PendingDeltas())
	}
	checkEquivalent(t, final, want)
}

// TestCompactionKeepsOldFiles pins the retention half of the contract:
// after a successful compaction the previous generation's base and
// delta files are still on disk (pinned sessions keep reading them),
// and the new manifest names only generation-suffixed bases.
func TestCompactionKeepsOldFiles(t *testing.T) {
	dir, want := mutatedFixture(t)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var oldFiles []string
	for i := 0; i < st.NumShards(); i++ {
		oldFiles = append(oldFiles, st.basePath(i))
		for _, ref := range st.deltas(i) {
			oldFiles = append(oldFiles, filepath.Join(dir, ref.File))
		}
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, path := range oldFiles {
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("compaction removed %s: %v", path, err)
		}
	}
	checkEquivalent(t, st, want)
}

// TestManifestRejectsBadDeltaLayer covers Open's validation of the new
// manifest fields: lengths tied to the shard count, file names confined
// to the directory, generations consistent, and counts bounded.
func TestManifestRejectsBadDeltaLayer(t *testing.T) {
	cases := []struct {
		name string
		edit func(*manifest)
	}{
		{"NegativeGeneration", func(m *manifest) { m.Generation = -1 }},
		{"BaseFilesShort", func(m *manifest) { m.BaseFiles = m.BaseFiles[:1] }},
		{"BaseEdgeCountsShort", func(m *manifest) { m.BaseEdgeCounts = m.BaseEdgeCounts[:1] }},
		{"DeltasShort", func(m *manifest) { m.Deltas = m.Deltas[:1] }},
		{"DirtyGenShort", func(m *manifest) { m.DirtyGen = m.DirtyGen[:1] }},
		{"BaseFileEscapesDir", func(m *manifest) { m.BaseFiles[0] = "../evil.bin" }},
		{"BaseFileEmpty", func(m *manifest) { m.BaseFiles[0] = "" }},
		{"DeltaFileEscapesDir", func(m *manifest) { m.Deltas[0][0].File = "/etc/passwd" }},
		{"DeltaGenBeyondManifest", func(m *manifest) { m.Deltas[0][0].Gen = m.Generation + 1 }},
		{"DeltaGenNotIncreasing", func(m *manifest) { m.Deltas[0][0].Gen = 0 }},
		{"DeltaCountNegative", func(m *manifest) { m.Deltas[0][0].Ins = -1 }},
		{"DeltaCountHuge", func(m *manifest) { m.Deltas[0][0].Del = 1 << 62 }},
		{"DirtyGenBeyondManifest", func(m *manifest) { m.DirtyGen[0] = m.Generation + 1 }},
		{"DirtyGenNegative", func(m *manifest) { m.DirtyGen[0] = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := mutatedFixture(t)
			// Materialize every optional field so edits have something
			// to corrupt: compact-then-mutate yields BaseFiles, Deltas
			// and DirtyGen all non-nil.
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			if _, err := st.ApplyBatch([]graph.Edge{{Src: 1, Dst: 0}}, nil); err != nil {
				t.Fatal(err)
			}
			// Normalize so shard 0 definitely carries a delta ref.
			if len(st.deltas(0)) == 0 {
				t.Skip("fixture batch landed on another shard")
			}
			rewriteManifest(t, dir, tc.edit)
			if _, err := Open(dir); err == nil {
				t.Fatal("Open accepted a manifest with a corrupt delta layer")
			}
		})
	}
}
