package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func mkGraph(t *testing.T) *Graph {
	t.Helper()
	edges := []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 0}, {Src: 3, Dst: 3}, {Src: 2, Dst: 2},
	}
	return FromEdges(5, edges)
}

func TestFromEdgesBasics(t *testing.T) {
	g := mkGraph(t)
	if g.NumVertices() != 5 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	g := mkGraph(t)
	wantOut := []int64{2, 1, 2, 1, 0}
	wantIn := []int64{1, 1, 3, 1, 0}
	for v := 0; v < 5; v++ {
		if d := g.OutDegree(VID(v)); d != wantOut[v] {
			t.Errorf("out-degree(%d) = %d, want %d", v, d, wantOut[v])
		}
		if d := g.InDegree(VID(v)); d != wantIn[v] {
			t.Errorf("in-degree(%d) = %d, want %d", v, d, wantIn[v])
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mkGraph(t)
	for v := 0; v < g.NumVertices(); v++ {
		ns := g.OutNeighbors(VID(v))
		for i := 1; i < len(ns); i++ {
			if ns[i-1] > ns[i] {
				t.Fatalf("out-neighbours of %d not sorted: %v", v, ns)
			}
		}
		is := g.InNeighbors(VID(v))
		for i := 1; i < len(is); i++ {
			if is[i-1] > is[i] {
				t.Fatalf("in-neighbours of %d not sorted: %v", v, is)
			}
		}
	}
}

func TestReverseSwapsViews(t *testing.T) {
	g := mkGraph(t)
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatal("reverse changed sizes")
	}
	for v := 0; v < g.NumVertices(); v++ {
		out := g.OutNeighbors(VID(v))
		in := r.InNeighbors(VID(v))
		if len(out) != len(in) {
			t.Fatalf("vertex %d: out %v vs reversed-in %v", v, out, in)
		}
		for i := range out {
			if out[i] != in[i] {
				t.Fatalf("vertex %d: out %v vs reversed-in %v", v, out, in)
			}
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := mkGraph(t)
	g2 := FromEdges(g.NumVertices(), g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g1 := FromEdges(3, nil)
	if g1.MaxOutDegree() != 0 || g1.MaxInDegree() != 0 {
		t.Fatal("edgeless graph has nonzero degree")
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range endpoint")
		}
	}()
	FromEdges(2, []Edge{{Src: 0, Dst: 5}})
}

// Property: CSR and CSC views always describe the same edge multiset,
// for random small graphs.
func TestCSRCSCConsistencyProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: VID(raw[i] % n), Dst: VID(raw[i+1] % n)})
		}
		g := FromEdges(n, edges)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every edge (u,v) of a random graph, v appears in
// OutNeighbors(u) and u in InNeighbors(v).
func TestAdjacencyMembershipProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 24
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: VID(raw[i] % n), Dst: VID(raw[i+1] % n)})
		}
		g := FromEdges(n, edges)
		for _, e := range edges {
			if !HasEdge(g, e.Src, e.Dst) {
				return false
			}
			found := false
			for _, u := range g.InNeighbors(e.Dst) {
				if u == e.Src {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightDeterministicAndPositive(t *testing.T) {
	f := func(u, v uint32) bool {
		w1, w2 := WeightOf(u, v), WeightOf(u, v)
		return w1 == w2 && w1 > 0 && w1 <= 1 && !math.IsNaN(float64(w1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightAsymmetric(t *testing.T) {
	// Not a strict requirement, but (u,v) and (v,u) should almost never
	// collide; check a specific pair.
	if WeightOf(3, 7) == WeightOf(7, 3) {
		t.Fatal("weights suspiciously symmetric")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(12345)
	flipped := Mix64(12345 ^ 1)
	diff := base ^ flipped
	ones := 0
	for i := 0; i < 64; i++ {
		if diff&(1<<uint(i)) != 0 {
			ones++
		}
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("avalanche too weak: %d differing bits", ones)
	}
}

func TestCOOFromGraphCSROrder(t *testing.T) {
	g := mkGraph(t)
	c := COOFromGraph(g)
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("COO edges %d, want %d", c.NumEdges(), g.NumEdges())
	}
	for i := 1; i < len(c.Src); i++ {
		if c.Src[i-1] > c.Src[i] {
			t.Fatal("COO not in source order")
		}
		if c.Src[i-1] == c.Src[i] && c.Dst[i-1] > c.Dst[i] {
			t.Fatal("COO destinations not sorted within source")
		}
	}
}

func TestCOOSlice(t *testing.T) {
	g := mkGraph(t)
	c := COOFromGraph(g)
	s := c.Slice(1, 4)
	if s.NumEdges() != 3 {
		t.Fatalf("slice edges = %d", s.NumEdges())
	}
	if s.Src[0] != c.Src[1] || s.Dst[2] != c.Dst[3] {
		t.Fatal("slice does not alias parent")
	}
}

func TestStatsBasics(t *testing.T) {
	g := mkGraph(t)
	s := ComputeStats("test", g)
	if s.Vertices != 5 || s.Edges != 6 {
		t.Fatalf("stats sizes wrong: %+v", s)
	}
	if s.ZeroOutDeg != 1 || s.ZeroInDeg != 1 {
		t.Fatalf("zero-degree counts wrong: %+v", s)
	}
	if s.AvgDegree != 6.0/5.0 {
		t.Fatalf("avg degree %v", s.AvgDegree)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mkGraph(t)
	buckets, zero := DegreeHistogram(g)
	if zero != 1 {
		t.Fatalf("zero-degree count = %d", zero)
	}
	var total int64
	for _, b := range buckets {
		total += b
	}
	if total != 4 {
		t.Fatalf("histogram total = %d, want 4", total)
	}
}

func TestCheckSymmetric(t *testing.T) {
	sym := FromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1}})
	if !CheckSymmetric(sym) {
		t.Fatal("symmetric graph reported asymmetric")
	}
	asym := FromEdges(3, []Edge{{Src: 0, Dst: 1}})
	if CheckSymmetric(asym) {
		t.Fatal("asymmetric graph reported symmetric")
	}
}

func TestApproxDiameterHint(t *testing.T) {
	// A path graph has diameter n-1 even seen undirected.
	n := 20
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{Src: VID(i), Dst: VID(i + 1)})
	}
	g := FromEdges(n, edges)
	if d := ApproxDiameterHint(g); d != n-1 {
		t.Fatalf("path diameter hint = %d, want %d", d, n-1)
	}
}

func TestGiniBounds(t *testing.T) {
	// Uniform degrees → Gini near 0; star → Gini near 1.
	uniform := make([]Edge, 0)
	for i := 0; i < 16; i++ {
		uniform = append(uniform, Edge{Src: VID(i), Dst: VID((i + 1) % 16)})
	}
	gU := ComputeStats("u", FromEdges(16, uniform))
	if gU.GiniOut > 0.1 {
		t.Fatalf("uniform gini = %v", gU.GiniOut)
	}
	star := make([]Edge, 0)
	for i := 1; i < 64; i++ {
		star = append(star, Edge{Src: 0, Dst: VID(i)})
	}
	gS := ComputeStats("s", FromEdges(64, star))
	if gS.GiniOut < 0.9 {
		t.Fatalf("star gini = %v", gS.GiniOut)
	}
}

func TestViewAccessors(t *testing.T) {
	g := mkGraph(t)
	if len(g.OutOffsets()) != g.NumVertices()+1 || len(g.InOffsets()) != g.NumVertices()+1 {
		t.Fatal("offset lengths")
	}
	if int64(len(g.OutTargets())) != g.NumEdges() || int64(len(g.InSources())) != g.NumEdges() {
		t.Fatal("value lengths")
	}
}

func TestCOOFromEdgesPreservesOrder(t *testing.T) {
	edges := []Edge{{Src: 2, Dst: 0}, {Src: 0, Dst: 1}, {Src: 2, Dst: 0}}
	c := COOFromEdges(3, edges)
	got := c.Edges()
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("order changed at %d", i)
		}
	}
}

func TestSortEdgesExported(t *testing.T) {
	es := []Edge{{Src: 2, Dst: 1}, {Src: 0, Dst: 5}, {Src: 2, Dst: 0}}
	SortEdges(es)
	if es[0].Src != 0 || es[1] != (Edge{Src: 2, Dst: 0}) {
		t.Fatalf("sorted: %v", es)
	}
}

func TestWeightSumOut(t *testing.T) {
	g := mkGraph(t)
	var want float64
	for _, d := range g.OutNeighbors(0) {
		want += float64(WeightOf(0, d))
	}
	if got := g.WeightSumOut(0); got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
}

func TestUniform01Range(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		u := Uniform01(Mix64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01 out of range: %v", u)
		}
	}
}

func TestClampFinite(t *testing.T) {
	if ClampFinite(math.NaN(), 7) != 7 || ClampFinite(math.Inf(1), 7) != 7 {
		t.Fatal("non-finite not clamped")
	}
	if ClampFinite(3.5, 7) != 3.5 {
		t.Fatal("finite value altered")
	}
}
