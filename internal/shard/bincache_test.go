package shard

// The bin-budget battery: the binCache's SharedCache-mirrored
// invariants (budget respected at every observation point, pinned bins
// never evicted, refusal instead of blocking), the spill/replay path's
// bit-identity and byte accounting, corrupt-spill recovery, the
// host-shared budget across concurrent sessions, and the closed-cache
// drain semantics rehosting relies on. Run under -race in CI alongside
// the scatter/gather battery.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// mkTestBin builds a synthetic bin for unit-level cache tests. The
// segment bytes are arbitrary — the cache never decodes them.
func mkTestBin(idx, size int) *binShard {
	return &binShard{
		idx:     idx,
		lo:      0,
		segs:    [][]byte{bytes.Repeat([]byte{0x5A}, size)},
		entries: 1,
		bytes:   int64(size),
	}
}

// binSpillFiles globs the store directory's live spill files.
func binSpillFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "bin-*.spill"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestBinBudgetOptionsValidation pins normalize's typed rejections: a
// negative budget, a positive budget below MinBinBudgetBytes, and a
// budget on the edge-centric sweep (which keeps no bins) are all
// *OptionsError naming BinBudgetBytes — the same contract the CLIs
// lean on for their exit-2 usage errors.
func TestBinBudgetOptionsValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"negative", Options{SweepMode: SweepScatterGather, BinBudgetBytes: -1}, true},
		{"below-minimum", Options{SweepMode: SweepScatterGather, BinBudgetBytes: MinBinBudgetBytes - 1}, true},
		{"edge-centric", Options{BinBudgetBytes: MinBinBudgetBytes}, true},
		{"edge-centric-explicit", Options{SweepMode: SweepEdgeCentric, BinBudgetBytes: 1 << 20}, true},
		{"minimum", Options{SweepMode: SweepScatterGather, BinBudgetBytes: MinBinBudgetBytes}, false},
		{"unbounded-default", Options{}, false},
		{"unbounded-scatter-gather", Options{SweepMode: SweepScatterGather}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v (%T), want *OptionsError", err, err)
			}
			if oe.Field != "BinBudgetBytes" {
				t.Fatalf("OptionsError names field %q, want BinBudgetBytes", oe.Field)
			}
		})
	}
}

// TestBinBudgetCacheInvariants drives the cache directly with synthetic
// bins through the full insert/pin/evict/refuse/replay cycle, checking
// the three SharedCache-mirrored invariants after every step: pinned
// bins are never evicted, resident bytes never exceed the budget, and
// an insert the cold unpinned set cannot cover is refused — spilled,
// not blocked on.
func TestBinBudgetCacheInvariants(t *testing.T) {
	dir := t.TempDir()
	const budget = 10 << 10
	c := newBinCache(budget, dir, 0)
	check := func(step string) {
		t.Helper()
		s := c.Stats()
		if s.Bytes > budget || s.PeakBytes > budget {
			t.Fatalf("%s: resident %d / peak %d bytes exceed the %d budget", step, s.Bytes, s.PeakBytes, budget)
		}
	}

	_, relA, evicted, spilled := c.put(mkTestBin(0, 4<<10))
	if evicted != 0 || spilled != 0 {
		t.Fatalf("first insert evicted %d bins, spilled %d bytes", evicted, spilled)
	}
	check("insert A")
	_, relB, _, _ := c.put(mkTestBin(1, 4<<10))
	check("insert B")

	// Both residents pinned: a third 4 KiB bin cannot fit and nothing is
	// evictable, so the insert is refused and the bin spills.
	trans, relC, evicted, spilled := c.put(mkTestBin(2, 4<<10))
	check("refused C")
	if trans == nil || trans.idx != 2 {
		t.Fatalf("refused insert returned bin %+v, want the caller's own bin", trans)
	}
	if evicted != 0 {
		t.Fatalf("refused insert evicted %d pinned bins", evicted)
	}
	if spilled <= 0 {
		t.Fatal("refused bin was not spilled")
	}
	relC() // no-op
	if s := c.Stats(); s.Rejected != 1 || s.Resident != 2 {
		t.Fatalf("after refusal: %+v, want 1 rejection and 2 residents", s)
	}
	if c.peekBin(2) != nil {
		t.Fatal("refused bin became resident")
	}
	if !c.hasSpill(2) {
		t.Fatal("refused bin has no spill file")
	}

	// Unpin B: now it is cold, and the next insert evicts it — never the
	// still-pinned A.
	relB()
	_, relD, evicted, spilled := c.put(mkTestBin(3, 4<<10))
	check("insert D")
	if evicted != 1 {
		t.Fatalf("insert over a cold bin evicted %d, want 1", evicted)
	}
	if spilled <= 0 {
		t.Fatal("evicted bin was not spilled")
	}
	if c.peekBin(0) == nil {
		t.Fatal("the pinned bin was evicted")
	}
	if c.peekBin(1) != nil {
		t.Fatal("the cold bin survived an eviction that needed its bytes")
	}
	if !c.hasSpill(1) {
		t.Fatal("evicted bin has no spill file")
	}

	// The spilled bin replays exactly.
	rb, n, err := c.loadSpill(1, 0)
	if err != nil {
		t.Fatalf("replaying the evicted bin: %v", err)
	}
	if n <= 0 || rb.idx != 1 || rb.bytes != 4<<10 || !bytes.Equal(rb.segs[0], mkTestBin(1, 4<<10).segs[0]) {
		t.Fatalf("replayed bin differs from the original: %d bytes read, %+v", n, rb)
	}
	if _, _, ok := c.acquire(1); ok {
		t.Fatal("evicted bin still acquirable")
	}
	if b, rel, ok := c.acquire(0); !ok || b.idx != 0 {
		t.Fatal("pinned resident bin not acquirable")
	} else {
		rel()
	}
	c.dropSpill(1)
	if c.hasSpill(1) {
		t.Fatal("dropSpill left the record")
	}
	if _, err := os.Stat(c.spillPath(1)); !os.IsNotExist(err) {
		t.Fatalf("dropSpill left the file: %v", err)
	}

	s := c.Stats()
	if s.Evictions != 1 || s.Rejected != 1 || s.Replays != 1 || s.Hits != 1 {
		t.Fatalf("final counters %+v, want 1 eviction, 1 rejection, 1 replay, 1 hit", s)
	}
	relA()
	relA() // releases are one-shot: a double release must not corrupt the count
	relD()
	if s := c.Stats(); s.Pinned != 0 || s.Bytes != 8<<10 {
		t.Fatalf("after releasing everything: %+v, want 0 pinned and both residents' bytes", s)
	}
}

// TestBinBudgetClosedCacheDrain pins the rehost path's lifecycle: drop
// removes every unpinned bin and every spill file immediately, keeps
// pinned bins alive until their in-flight gathers release them — at
// which point they retire outright instead of aging in an LRU nothing
// will ever hit again — and turns later inserts into unaccounted
// transients, so a drained old host ends at exactly zero bin bytes.
func TestBinBudgetClosedCacheDrain(t *testing.T) {
	dir := t.TempDir()
	c := newBinCache(4096, dir, 0)
	_, relA, _, _ := c.put(mkTestBin(0, 2048))
	_, relB, _, _ := c.put(mkTestBin(1, 2048))
	relB()
	// C evicts the cold B (spilling it) and is admitted pinned.
	_, relC, evicted, spilled := c.put(mkTestBin(2, 2048))
	if evicted != 1 || spilled <= 0 {
		t.Fatalf("setup eviction: evicted %d, spilled %d", evicted, spilled)
	}
	if len(binSpillFiles(t, dir)) == 0 {
		t.Fatal("setup produced no spill file")
	}

	c.drop()
	if got := binSpillFiles(t, dir); len(got) != 0 {
		t.Fatalf("drop left spill files: %v", got)
	}
	s := c.Stats()
	if s.Bytes != 4096 || s.Resident != 2 || s.Pinned != 2 || s.Spilled != 0 {
		t.Fatalf("after drop with two pinned bins: %+v", s)
	}
	if _, _, ok := c.acquire(0); ok {
		t.Fatal("closed cache satisfied an acquire")
	}
	if c.hasSpill(1) {
		t.Fatal("closed cache still advertises a spill")
	}
	// Post-drop inserts are transients: gatherable, never accounted.
	b, rel, evicted, spilled := c.put(mkTestBin(3, 2048))
	if b == nil || evicted != 0 || spilled != 0 {
		t.Fatalf("closed-cache insert: %+v, evicted %d, spilled %d", b, evicted, spilled)
	}
	rel()
	if s := c.Stats(); s.Bytes != 4096 {
		t.Fatalf("closed-cache insert changed accounting: %+v", s)
	}
	// The drain: each release retires its bin.
	relA()
	if s := c.Stats(); s.Bytes != 2048 || s.Resident != 1 {
		t.Fatalf("after first drain release: %+v", s)
	}
	relC()
	if s := c.Stats(); s.Bytes != 0 || s.Resident != 0 || s.Pinned != 0 {
		t.Fatalf("drained cache not empty: %+v", s)
	}
	if got := binSpillFiles(t, dir); len(got) != 0 {
		t.Fatalf("drained cache left spill files: %v", got)
	}
}

// TestBinBudgetNeverExceededDuringSweeps is the engine-level budget
// invariant: a concurrent sampler hammers the cache stats while a
// half-footprint dense PageRank runs, and neither any sample nor the
// lock-accurate PeakBytes high-water mark may ever exceed the budget —
// while the ranks stay bit-identical to the unbounded engine's and the
// overflow demonstrably spilled and replayed.
func TestBinBudgetNeverExceededDuringSweeps(t *testing.T) {
	g := gen.TinySocial()
	const budget = 16 << 10 // about half this store's ~33 KiB bin footprint
	unbounded := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2, SweepMode: SweepScatterGather})
	e := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2, SweepMode: SweepScatterGather, BinBudgetBytes: budget})

	stop := make(chan struct{})
	var worst, samples int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := e.bins.Stats().Bytes; b > atomic.LoadInt64(&worst) {
				atomic.StoreInt64(&worst, b)
			}
			atomic.AddInt64(&samples, 1)
		}
	}()
	want := prOnSystem(unbounded, 10)
	got := prOnSystem(e, 10)
	close(stop)
	wg.Wait()

	if atomic.LoadInt64(&samples) == 0 {
		t.Fatal("sampler never observed the cache")
	}
	if w := atomic.LoadInt64(&worst); w > budget {
		t.Fatalf("sampled %d resident bin bytes, budget is %d", w, budget)
	}
	cs := e.bins.Stats()
	if cs.PeakBytes > budget {
		t.Fatalf("peak resident bin bytes %d exceed the %d budget", cs.PeakBytes, budget)
	}
	if cs.PeakBytes == 0 {
		t.Fatal("budgeted engine retained no bins at all")
	}
	st := e.Stats()
	if st.BinBytesSpilled <= 0 || st.BinSpillReplays <= 0 || st.BinSpillBytesRead <= 0 {
		t.Fatalf("half-footprint budget never exercised the spill path: %+v", st)
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("rank[%d] = %v budgeted vs %v unbounded: the budget changed results", v, got[v], want[v])
		}
	}
}

// TestBinBudgetSharedAcrossSessions is the multi-tenant half of the
// budget claim: two sessions of one host sweeping concurrently share a
// single bin store, so the host-wide resident bytes stay inside the one
// budget — not twice it — while both sessions produce the private
// unbounded engine's exact ranks.
func TestBinBudgetSharedAcrossSessions(t *testing.T) {
	g := gen.TinySocial()
	const budget = 16 << 10
	want := prOnSystem(buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 4, SweepMode: SweepScatterGather}), 10)

	h, err := BuildHost(t.TempDir(), g, 8, nil, Options{
		Threads: 4, CacheShards: 4, SweepMode: SweepScatterGather, BinBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var worst int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := h.BinStats().Bytes; b > atomic.LoadInt64(&worst) {
				atomic.StoreInt64(&worst, b)
			}
		}
	}()
	ranks := make([][]float64, 2)
	var run sync.WaitGroup
	for i := range ranks {
		run.Add(1)
		go func(i int) {
			defer run.Done()
			ranks[i] = prOnSystem(h.NewSession(), 10)
		}(i)
	}
	run.Wait()
	close(stop)
	wg.Wait()

	if w := atomic.LoadInt64(&worst); w > budget {
		t.Fatalf("two concurrent sessions drove resident bin bytes to %d, the shared budget is %d", w, budget)
	}
	bs := h.BinStats()
	if bs.PeakBytes > budget {
		t.Fatalf("host peak bin bytes %d exceed the shared %d budget", bs.PeakBytes, budget)
	}
	if bs.PeakBytes == 0 || bs.Hits == 0 {
		t.Fatalf("sessions never shared a resident bin: %+v", bs)
	}
	for i, got := range ranks {
		for v := range want {
			if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
				t.Fatalf("session %d rank[%d] = %v, want the private engine's %v", i, v, got[v], want[v])
			}
		}
	}
}

// TestBinSpillReplayAvoidsRescatter pins the spill path's bytes-moved
// win: with the budget at its legal minimum (below this store's
// smallest bin) every dense sweep after the first replays spill files
// instead of re-reading shards, so total shard loads stay at one cold
// pass — while an edge-centric engine over the same tight LRU re-reads
// the store every iteration — and the ranks never move a bit.
func TestBinSpillReplayAvoidsRescatter(t *testing.T) {
	g := gen.TinySocial()
	const iters = 5
	// Raw (v1) stores price the comparison the way the paper's claim is
	// stated: 8 bytes per edge re-read edge-centric, against the bins'
	// delta+uvarint encoding replayed from spill files.
	ec := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2, Format: FormatV1})
	sg := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2, Format: FormatV1, SweepMode: SweepScatterGather})
	starved := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 2, Format: FormatV1, SweepMode: SweepScatterGather, BinBudgetBytes: MinBinBudgetBytes})
	ecRanks := prOnSystem(ec, iters)
	prOnSystem(sg, iters)
	stRanks := prOnSystem(starved, iters)

	ecs, sgs, sts := ec.Stats(), sg.Stats(), starved.Stats()
	if sts.BinBytesSpilled <= 0 || sts.BinSpillReplays <= 0 || sts.BinSpillBytesRead <= 0 {
		t.Fatalf("minimum budget never spilled or replayed: %+v", sts)
	}
	// Replays substitute for re-scatters: the starved engine's disk loads
	// must equal the unbounded scatter/gather engine's single cold pass,
	// not the edge-centric engine's per-iteration re-reads.
	if sts.ShardLoads != sgs.ShardLoads {
		t.Fatalf("starved engine loaded %d shards, the unbounded scatter/gather engine %d — spill replays failed to cover the later sweeps",
			sts.ShardLoads, sgs.ShardLoads)
	}
	if sts.ShardLoads*int64(iters) != ecs.ShardLoads {
		t.Fatalf("starved engine loaded %d shards across %d iterations, edge-centric %d; expected exactly one cold pass",
			sts.ShardLoads, iters, ecs.ShardLoads)
	}
	// The replays really came from disk, and cost less than the raw
	// shard re-reads they replaced would have.
	perIterEC := ecs.BytesRead / int64(iters)
	if sts.BinSpillBytesRead >= perIterEC*int64(iters-1) {
		t.Fatalf("spill replays read %d bytes, edge-centric re-reads would have cost %d — the compressed replay should be cheaper",
			sts.BinSpillBytesRead, perIterEC*int64(iters-1))
	}
	for v := range ecRanks {
		if math.Float64bits(stRanks[v]) != math.Float64bits(ecRanks[v]) {
			t.Fatalf("rank[%d] = %v starved vs %v edge-centric: spill replay changed results", v, stRanks[v], ecRanks[v])
		}
	}
}

// TestBinSpillRoundTrip pins the codec: every bin a real dense sweep
// produced survives encodeSpill/decodeSpill byte-exactly, and the
// decoder rejects the three identity mismatches (generation, shard
// index, range base) that would let a file replay against the wrong
// shard.
func TestBinSpillRoundTrip(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 8, Options{Threads: 4, CacheShards: 8, SweepMode: SweepScatterGather})
	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	gen := e.st.Generation()
	checked := 0
	for si := 0; si < e.st.NumShards(); si++ {
		b := e.bins.peekBin(si)
		if b == nil {
			continue
		}
		checked++
		data := encodeSpill(gen, b)
		rb, err := decodeSpill(data, gen, b.idx, b.lo)
		if err != nil {
			t.Fatalf("shard %d: round trip failed: %v", si, err)
		}
		if rb.idx != b.idx || rb.lo != b.lo || rb.entries != b.entries || rb.bytes != b.bytes || !reflect.DeepEqual(rb.segs, b.segs) {
			t.Fatalf("shard %d: decoded bin differs:\n got %+v\nwant %+v", si, rb, b)
		}
		if _, err := decodeSpill(data, gen+1, b.idx, b.lo); err == nil {
			t.Fatalf("shard %d: decoder accepted a stale generation", si)
		}
		if _, err := decodeSpill(data, gen, b.idx+1, b.lo); err == nil {
			t.Fatalf("shard %d: decoder accepted the wrong shard index", si)
		}
		if _, err := decodeSpill(data, gen, b.idx, b.lo+64); err == nil {
			t.Fatalf("shard %d: decoder accepted the wrong range base", si)
		}
	}
	if checked == 0 {
		t.Fatal("dense sweep produced no bins to round-trip")
	}
}

// TestBinSpillCorruptRecovery is the recovery table: every way a spill
// file can rot on disk — truncation, a flipped payload byte, a stomped
// magic, a stale generation with a valid checksum, an emptied file —
// must be absorbed silently: the replay fails, the file is dropped, the
// shard re-scatters from its (intact) base file, and the sweep's
// results are exact. No error surfaces and the file is re-spilled for
// the next sweep.
func TestBinSpillCorruptRecovery(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(data []byte) []byte { return data[:spillHeaderSize/2] }},
		{"payload-flip", func(data []byte) []byte {
			data[len(data)-1] ^= 0xFF
			return data
		}},
		{"bad-magic", func(data []byte) []byte {
			data[0] = 'X'
			return data
		}},
		{"stale-generation", func(data []byte) []byte {
			// A structurally valid file from the wrong generation: bump
			// the gen field and recompute the checksum, modelling a file
			// left behind by an earlier store life.
			binary.LittleEndian.PutUint64(data[12:], binary.LittleEndian.Uint64(data[12:])+1)
			binary.LittleEndian.PutUint32(data[8:12], crc32.ChecksumIEEE(data[12:]))
			return data
		}},
		{"emptied", func(data []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.TinySocial()
			dir := t.TempDir()
			e, err := Build(dir, g, 8, Options{Threads: 4, CacheShards: 2, SweepMode: SweepScatterGather, BinBudgetBytes: MinBinBudgetBytes})
			if err != nil {
				t.Fatal(err)
			}
			e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
			files := binSpillFiles(t, dir)
			if len(files) == 0 {
				t.Fatal("first sweep spilled nothing; the fixture needs spill files to corrupt")
			}
			for _, path := range files {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			counts := make([]int64, g.NumVertices())
			e.EdgeMap(frontier.All(g), api.EdgeOp{
				Update:       func(u, v graph.VID) bool { counts[v]++; return true },
				UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
			}, api.DirAuto)
			indeg := make([]int64, g.NumVertices())
			for _, ed := range g.Edges() {
				indeg[ed.Dst]++
			}
			for v := range counts {
				if counts[v] != indeg[v] {
					t.Fatalf("post-corruption sweep counted %d in-edges for vertex %d, want %d", counts[v], v, indeg[v])
				}
			}
			if got := e.bins.Stats().Replays; got != 0 {
				t.Fatalf("%d corrupted files replayed successfully", got)
			}
			if e.Stats().BinSpillReplays != 0 {
				t.Fatal("engine charged replays for corrupted files")
			}
			// The re-scattered bins spilled again: fresh, valid files for
			// the next sweep.
			if got := binSpillFiles(t, dir); len(got) != len(files) {
				t.Fatalf("recovery left %d spill files, want %d rewritten", len(got), len(files))
			}
		})
	}
}

// TestBinSpillStaleFilesRemovedOnCreate: rebuilding a store in a
// directory must delete leftover spill files (and crashed writers'
// temp files) — a rebuilt store restarts at generation 0 with new
// content, and a stale file that validated against it would replay the
// old graph's edges.
func TestBinSpillStaleFilesRemovedOnCreate(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, fmt.Sprintf("bin-%04d-g%06d.spill", 3, 0))
	tmp := filepath.Join(dir, "bin-spill-12345.tmp")
	for _, p := range []string{stale, tmp} {
		if err := os.WriteFile(p, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Create(dir, gen.TinySocial(), WriteOptions{Partitions: 8}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{stale, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("Create left stale spill artefact %s (%v)", p, err)
		}
	}
}
