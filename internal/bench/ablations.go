package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/locality"
	"repro/internal/reorder"
	"repro/internal/sched"
)

// Ablation experiments for the design choices DESIGN.md calls out. These
// go beyond the paper's figures: they quantify the alternatives the
// paper argues against (vertex reordering instead of edge partitioning;
// different Algorithm 2 thresholds; partitioning-by-source).

// ReorderAblation compares vertex-reordering strategies (the related-work
// family: degree clustering, BFS/RCM order) against
// partitioning-by-destination on the same simulated LLC: for each
// configuration it reports the miss rate of a dense forward traversal.
// The paper's position is that partitioning composes with — and at high
// degree beats — pure reordering; this experiment makes that concrete.
func ReorderAblation(gname string, g *graph.Graph, partitions []int) *Figure {
	fig := &Figure{
		ID:     "Ablation/reorder",
		Title:  fmt.Sprintf("vertex reordering vs partitioning on %s (simulated LLC miss rate)", gname),
		XLabel: "partitions",
		YLabel: "miss rate",
	}
	cfg := locality.AdaptiveLLC(g.NumVertices())
	for _, s := range reorder.Strategies() {
		h := g
		if s != reorder.Identity {
			h = reorder.Apply(g, reorder.Permutation(g, s, 13))
		}
		series := Series{Name: s.String()}
		for _, p := range partitions {
			cache := locality.NewCache(cfg)
			locality.ReplayEdgeTraversal(h, p, locality.KindCOOForward, 1,
				0, locality.ConsumerFunc(func(a uint64) { cache.Access(a) }))
			series.X = append(series.X, float64(p))
			series.Y = append(series.Y, cache.MissRate())
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Notes = append(fig.Notes,
		"identity/degree/bfs/random are vertex orders; every order is also partitioned, showing the effects compose")
	return fig
}

// ThresholdAblation sweeps Algorithm 2's two thresholds around the
// paper's (20, 2) on a BFS+PRDelta mix and reports total runtime. It
// validates the paper's claim that |E|/20 and |E|/2 "work reliably
// across algorithms and graphs".
func ThresholdAblation(gname string, g *graph.Graph, reps, threads int) *Figure {
	fig := &Figure{
		ID:     "Ablation/thresholds",
		Title:  fmt.Sprintf("Algorithm 2 threshold sweep on %s (BFS+PRDelta seconds)", gname),
		XLabel: "config#",
		YLabel: "seconds",
	}
	configs := []struct {
		label string
		opts  core.Options
	}{
		{"paper (20,2)", core.Options{SparseDiv: 20, DenseDiv: 2}},
		{"(10,2)", core.Options{SparseDiv: 10, DenseDiv: 2}},
		{"(40,2)", core.Options{SparseDiv: 40, DenseDiv: 2}},
		{"(20,1) never-dense", core.Options{SparseDiv: 20, DenseDiv: 1}},
		{"(20,4) dense-early", core.Options{SparseDiv: 20, DenseDiv: 4}},
		{"forced COO", core.Options{Layout: core.LayoutCOO}},
		{"forced CSC", core.Options{Layout: core.LayoutCSC}},
	}
	src := algorithms.SourceVertex(g)
	s := Series{Name: "BFS+PRDelta"}
	for i, c := range configs {
		opts := c.opts
		opts.Threads = threads
		sys := core.NewEngine(g, opts)
		d := MedianTime(reps, func() {
			algorithms.BFS(sys, src)
			algorithms.PRDelta(sys, 60)
		})
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, Seconds(d))
		fig.Notes = append(fig.Notes, fmt.Sprintf("config#%d = %s", i, c.label))
	}
	fig.Series = append(fig.Series, s)
	return fig
}

// BySourceAblation contrasts reuse distances under
// partitioning-by-destination and partitioning-by-source (§II.C): the
// by-source series must be flat in P.
func BySourceAblation(gname string, g *graph.Graph, partitions []int) *Figure {
	fig := &Figure{
		ID:     "Ablation/by-source",
		Title:  fmt.Sprintf("mean next-array reuse distance, by-destination vs by-source (%s)", gname),
		XLabel: "partitions",
		YLabel: "mean reuse distance",
	}
	dst := Series{Name: "by-destination"}
	srcS := Series{Name: "by-source"}
	for _, p := range partitions {
		ra := locality.NewReuseAnalyzer(int(g.NumEdges()))
		locality.ReplayNextFrontierCOO(g, p, locality.ConsumerFunc(func(a uint64) { ra.Access(a) }))
		h := ra.Histogram()
		dst.X = append(dst.X, float64(p))
		dst.Y = append(dst.Y, h.Mean())

		rs := locality.NewReuseAnalyzer(int(g.NumEdges()))
		locality.ReplayNextFrontierBySource(g, p, locality.ConsumerFunc(func(a uint64) { rs.Access(a) }))
		hs := rs.Histogram()
		srcS.X = append(srcS.X, float64(p))
		srcS.Y = append(srcS.Y, hs.Mean())
	}
	fig.Series = append(fig.Series, dst, srcS)
	return fig
}

// NUMAFigure reports the modelled NUMA locality of a dense COO iteration
// (§III.D's placement): the fraction of vertex-array accesses that are
// domain-local, per partition count. Partitioning-by-destination pins
// every next-array update to its home domain, so the local share is
// bounded below by 1/2 and the next-update row stays at 100% — the
// placement property Polymer and GraphGrind inherit.
func NUMAFigure(gname string, g *graph.Graph, partitions []int, topo sched.Topology) *Figure {
	fig := &Figure{
		ID:     "Ablation/numa",
		Title:  fmt.Sprintf("modelled NUMA locality on %s (%d domains)", gname, topo.Domains),
		XLabel: "partitions",
		YLabel: "fraction local",
	}
	total := Series{Name: "all-accesses"}
	next := Series{Name: "next-updates"}
	for _, p := range partitions {
		tr := locality.MeasureNUMATraffic(g, p, topo)
		total.X = append(total.X, float64(p))
		total.Y = append(total.Y, tr.LocalShare)
		next.X = append(next.X, float64(p))
		denom := tr.LocalNext + tr.RemoteNext
		if denom == 0 {
			next.Y = append(next.Y, 1)
		} else {
			next.Y = append(next.Y, float64(tr.LocalNext)/float64(denom))
		}
	}
	fig.Series = append(fig.Series, total, next)
	return fig
}
