package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// BCResult holds single-source betweenness-centrality dependency scores
// (Brandes' delta values) and the number of BFS levels processed.
type BCResult struct {
	Scores []float64
	Levels int
}

// BC computes single-source betweenness centrality following Ligra's
// two-phase structure (Table II: vertex-oriented, backward preference):
// a forward phase counts shortest paths level by level, then a backward
// phase propagates dependencies from the deepest level up. The backward
// phase traverses edges in reverse, so it runs on rsys, an engine built
// over the reversed graph (graph.Reverse is a cheap view swap; engines
// rebuild their layouts for it, which mirrors the direction-reversing
// storage of real frameworks).
func BC(sys, rsys api.System, src graph.VID) BCResult {
	g := sys.Graph()
	n := g.NumVertices()
	sigma := NewF64s(n, 0) // shortest-path counts
	sigma.Set(src, 1)
	depth := NewI32s(n, -1)
	depth.Set(src, 0)
	frozen := make([]float64, n)

	fwd := api.EdgeOp{
		Cond: func(v graph.VID) bool { return depth.Get(v) < 0 },
		Update: func(u, v graph.VID) bool {
			sigma.Add(v, frozen[u])
			return true
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			sigma.AtomicAdd(v, frozen[u])
			return true
		},
	}

	levels := []*frontier.Frontier{frontier.FromVertex(g, src)}
	for {
		f := levels[len(levels)-1]
		lvl := int32(len(levels))
		sys.VertexMap(f, func(u graph.VID) { frozen[u] = sigma.Get(u) })
		next := sys.EdgeMap(f, fwd, api.DirBackward)
		if next.IsEmpty() {
			break
		}
		// Claim depths after the EdgeMap: every vertex in next was
		// unreached before this level, so the depth assignment is unique.
		sys.VertexMap(next, func(v graph.VID) { depth.Set(v, lvl) })
		levels = append(levels, next)
	}

	// Backward dependency accumulation: delta[u] += σ(u)/σ(v)·(1+delta[v])
	// over tree/DAG edges u→v with depth(v) = depth(u)+1. Propagation
	// flows v→u, i.e. along the reversed graph's edges.
	delta := NewF64s(n, 0)
	q := make([]float64, n) // frozen (1+delta[v])/σ(v) per level
	for l := len(levels) - 1; l >= 1; l-- {
		f := levels[l]
		want := int32(l - 1)
		rsys.VertexMap(f, func(v graph.VID) {
			q[v] = (1 + delta.Get(v)) / sigma.Get(v)
		})
		bwd := api.EdgeOp{
			Cond: func(u graph.VID) bool { return depth.Get(u) == want },
			Update: func(v, u graph.VID) bool {
				delta.Add(u, sigma.Get(u)*q[v])
				return true
			},
			UpdateAtomic: func(v, u graph.VID) bool {
				delta.AtomicAdd(u, sigma.Get(u)*q[v])
				return true
			},
		}
		rsys.EdgeMap(f, bwd, api.DirBackward)
	}
	return BCResult{Scores: delta.Slice(), Levels: len(levels)}
}
