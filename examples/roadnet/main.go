// Road-network example: single-source shortest paths (Bellman-Ford) on
// the USAroad-like lattice — the high-diameter, low-degree workload the
// paper calls "hard to process for graph analytics frameworks". Frontier
// sizes stay small for hundreds of rounds, so nearly every iteration is
// sparse and the unpartitioned-CSR sparse path dominates.
package main

import (
	"fmt"
	"math"
	"time"

	"repro"
)

func main() {
	g := repro.RoadGrid(256, 256, 7)
	fmt.Printf("graph: road lattice, %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	eng := repro.NewEngine(g, repro.Options{})
	src := repro.VID(0) // a lattice corner: worst-case eccentricity

	start := time.Now()
	dist := repro.ShortestPaths(eng, src)
	elapsed := time.Since(start)

	reach, far := 0, float32(0)
	for _, d := range dist {
		if !math.IsInf(float64(d), 1) {
			reach++
			if d > far {
				far = d
			}
		}
	}
	fmt.Printf("SSSP from corner: reached %d/%d vertices, max distance %.2f, in %v\n",
		reach, g.NumVertices(), far, elapsed)

	tel := eng.Telemetry()
	fmt.Printf("frontier classes: %d dense, %d medium, %d sparse — road networks are sparse-dominated\n",
		tel.DenseIters, tel.MediumIters, tel.SparseIters)

	// Spot-check the triangle inequality on a few sampled edges.
	violations := 0
	for v := 0; v < g.NumVertices(); v += 97 {
		for _, w := range g.OutNeighbors(repro.VID(v)) {
			if dist[w] > dist[v]+repro.WeightOf(repro.VID(v), w)+1e-4 {
				violations++
			}
		}
	}
	fmt.Printf("triangle-inequality violations in sample: %d (0 expected)\n", violations)
}
