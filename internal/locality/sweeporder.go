package locality

// Sweep-order scoring. The out-of-core engine's sweep planner
// (shard.Options.Order) permutes each EdgeMap's shard plan to keep the
// LRU tail of one sweep alive into the next; this file is the offline
// counterpart: given the planned multi-sweep shard schedule, it replays
// the sequence through the exact reuse-distance analyzer and an LRU of
// the engine's shard budget, and scores it against the ascending
// baseline over the same per-sweep shard sets. It answers, without
// running the engine, the question the ordering policies compete on:
// how many shard re-reads does this schedule's locality save?

import "sort"

// SweepOrderScore summarises the shard-granularity locality of one
// multi-sweep schedule at a given LRU budget.
type SweepOrderScore struct {
	Accesses int64 // total shard visits across all sweeps
	Loads    int64 // simulated disk loads: cold first touches plus LRU misses
	Hits     int64 // visits served by the simulated LRU
	// MeanReuse is the mean finite LRU stack distance of the schedule
	// (bucket-midpoint approximation, the package's standard), and
	// MaxReuse the largest distance observed: a schedule whose
	// distances sit below the shard budget is the one the LRU can serve.
	MeanReuse float64
	MaxReuse  int64
}

// SweepOrderComparison scores a planned schedule against the ascending
// baseline over the same per-sweep shard sets — the exact counterfactual
// shard.Stats.ReloadsAvoided tracks live.
type SweepOrderComparison struct {
	CacheShards int
	Planned     SweepOrderScore
	Ascending   SweepOrderScore
	// ReloadsAvoided is Ascending.Loads − Planned.Loads: positive when
	// the planned order needs fewer disk loads than streaming every
	// sweep in ascending shard index.
	ReloadsAvoided int64
}

// MeasureSweepOrder scores a planned multi-sweep shard schedule —
// plans[s] is sweep s's shard sequence, in execution order — against the
// ascending baseline (each sweep's shard set sorted ascending, the
// engine's historical order) at an LRU budget of cacheShards resident
// shards. A visit hits the LRU exactly when its reuse distance is
// finite and below the budget, so the score ties the reuse-distance
// histogram and the load count to the same replay.
func MeasureSweepOrder(plans [][]int, cacheShards int) SweepOrderComparison {
	if cacheShards < 1 {
		cacheShards = 1
	}
	baseline := make([][]int, len(plans))
	for s, plan := range plans {
		baseline[s] = append([]int(nil), plan...)
		sort.Ints(baseline[s])
	}
	planned := scoreSchedule(plans, cacheShards)
	ascending := scoreSchedule(baseline, cacheShards)
	return SweepOrderComparison{
		CacheShards:    cacheShards,
		Planned:        planned,
		Ascending:      ascending,
		ReloadsAvoided: ascending.Loads - planned.Loads,
	}
}

// scoreSchedule replays one schedule through the exact reuse-distance
// analyzer. LRU inclusion: a reference with stack distance d hits a
// cache of capacity C iff 0 <= d < C, so loads are the cold accesses
// plus the distances at or past the budget.
func scoreSchedule(plans [][]int, cacheShards int) SweepOrderScore {
	var n int
	for _, plan := range plans {
		n += len(plan)
	}
	ra := NewReuseAnalyzer(n)
	var score SweepOrderScore
	for _, plan := range plans {
		for _, si := range plan {
			d := ra.Access(uint64(si))
			score.Accesses++
			if d >= 0 && d < int64(cacheShards) {
				score.Hits++
			} else {
				score.Loads++
			}
		}
	}
	hist := ra.Histogram()
	score.MeanReuse = hist.Mean()
	score.MaxReuse = ra.MaxObserved()
	return score
}
