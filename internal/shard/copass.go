package shard

// Cross-query sweep co-scheduling. When N sessions of one Host run
// dense sweeps concurrently, each would walk (most of) the store — the
// same disk pass N times. The passBoard batches them onto one: the
// first dense edge-centric sweep to arrive opens a *pass* and becomes
// its leader; any dense sweep that starts on the same store while the
// pass is open joins as a follower instead of fetching. The leader
// publishes every staged shard as it applies it; a follower applies
// the published shards its own plan needs (its own operator, its own
// frontier, its own vertex state — only the resident bytes are shared)
// and, once the pass closes, fetches just the uncovered remainder
// through its own pipeline, which by then is mostly shared-cache hits.
//
// Correctness rides on the same argument as every other reordering in
// this engine: shards own disjoint 64-aligned destination ranges and
// operators write destination state only, so a follower applying its
// plan as {leader's publication order} + {remainder in plan order} is
// just another permutation of that plan — bit-identical to a solo
// sweep. The leader never blocks on a follower (publications are
// non-blocking sends to bounded channels, dropped when a follower lags
// — the remainder fetch covers anything missed), and a follower never
// blocks past the pass's close (the leader closes it on every exit
// path, panics included), so neither side can deadlock the other.

import (
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// passBoard coordinates co-scheduled sweeps over one store; one lives
// on each Host. The zero value is ready to use.
type passBoard struct {
	mu     sync.Mutex
	active *sweepPass
}

// sweepPass is one open disk pass: the leader's sweep plus the
// followers snooping its publications.
type sweepPass struct {
	board *passBoard
	mu    sync.Mutex
	done  bool
	subs  map[*passSub]struct{}
}

// coShard is one published staged shard.
type coShard struct {
	si int
	sh *resident
}

// passSub is one follower's subscription to a pass.
type passSub struct {
	pass *sweepPass
	ch   chan coShard
}

// lead opens a pass with the caller as leader, or returns nil when a
// pass is already open (the caller should join it instead).
func (b *passBoard) lead() *sweepPass {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.active != nil {
		return nil
	}
	p := &sweepPass{board: b, subs: make(map[*passSub]struct{})}
	b.active = p
	return p
}

// join subscribes to the open pass with a publication buffer of buf
// shards, or returns nil when no pass is open (or it closed while
// joining).
func (b *passBoard) join(buf int) *passSub {
	b.mu.Lock()
	p := b.active
	b.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return nil
	}
	s := &passSub{pass: p, ch: make(chan coShard, buf)}
	p.subs[s] = struct{}{}
	return s
}

// publish offers one staged shard to every follower. Non-blocking by
// design: a follower that cannot keep up misses the shard and fetches
// it in its remainder pass — the leader's latency is never hostage to
// a slow follower.
func (p *sweepPass) publish(si int, sh *resident) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := range p.subs {
		select {
		case s.ch <- coShard{si, sh}:
		default:
		}
	}
}

// close ends the pass: followers' channels close (their snoop loops
// drain and move on to their remainders) and the board frees for the
// next leader. Idempotent; the leader defers it on every exit path.
func (p *sweepPass) close() {
	p.mu.Lock()
	if !p.done {
		p.done = true
		for s := range p.subs {
			close(s.ch)
			delete(p.subs, s)
		}
	}
	p.mu.Unlock()
	p.board.mu.Lock()
	if p.board.active == p {
		p.board.active = nil
	}
	p.board.mu.Unlock()
}

// unsub detaches a follower early — the panic path. Closing the
// channel here is safe: membership in subs means the leader has not
// closed it, and the follower that owns it is no longer receiving.
func (s *passSub) unsub() {
	p := s.pass
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subs[s]; ok {
		delete(p.subs, s)
		close(s.ch)
	}
}

// sweepPipelined runs one EdgeMap's staged, windowed, NUMA-concurrent
// sweep — the default dense/sparse execution path. On shared sessions
// a dense edge-centric sweep additionally co-schedules: it leads a
// pass (publishing every staged shard) or follows one already open.
func (e *Engine) sweepPipelined(plan []int, sparse bool, cur *frontier.Bitmap, cond func(graph.VID) bool, op api.EdgeOp, next *frontier.Bitmap, accs []sweepAccum) {
	if e.board != nil && !sparse && e.opts.SweepMode == SweepEdgeCentric {
		if pass := e.board.lead(); pass != nil {
			// Leader: the normal pipeline, publishing each shard at its
			// apply hand-off. close is deferred before the window's stop,
			// so it runs after the pipeline has fully drained — every
			// publication precedes the close on every exit path.
			defer pass.close()
			if e.onCoLead != nil {
				e.onCoLead()
			}
			plan = e.orderPlan(plan)
			w := e.startSweep(plan, func(sh *resident) {
				pass.publish(sh.idx, sh)
				e.applyShard(sh.idx, sh, cur, cond, op, next, accs)
			})
			defer w.stop()
			w.wait()
			return
		}
		if sub := e.board.join(e.st.NumShards()); sub != nil {
			// Follower: the planner's residency prediction cannot hold
			// for a sweep that applies out of another query's pass, so no
			// accounting is staged (and none left over from an aborted
			// sweep may leak into commitPlan).
			e.pending = nil
			e.coFollow(sub, plan, cur, cond, op, next, accs)
			return
		}
	}
	plan = e.orderPlan(plan)
	w := e.startSweep(plan, func(sh *resident) {
		e.applyShard(sh.idx, sh, cur, cond, op, next, accs)
	})
	// stop is the teardown barrier: it runs even when wait re-raises
	// a load error or an operator panic, so no pipeline goroutine
	// outlives its EdgeMap.
	defer w.stop()
	w.wait()
}

// coFollow executes a dense sweep as a follower of an open pass: apply
// the leader's publications that this plan needs, then fetch the
// uncovered remainder (in plan order) through the session's own
// pipeline. The result is a permutation of the plan — bit-identical.
func (e *Engine) coFollow(sub *passSub, plan []int, cur *frontier.Bitmap, cond func(graph.VID) bool, op api.EdgeOp, next *frontier.Bitmap, accs []sweepAccum) {
	atomic.AddInt64(&e.stats.CoScheduledSweeps, 1)
	if e.onCoFollow != nil {
		e.onCoFollow()
	}
	// If the operator panics mid-snoop, detach so the leader stops
	// publishing into a dead subscription; the panic unwinds to the
	// caller exactly as on the unpipelined path.
	defer sub.unsub()
	need := make(map[int]bool, len(plan))
	for _, si := range plan {
		need[si] = true
	}
	for cs := range sub.ch {
		if !need[cs.si] {
			continue
		}
		delete(need, cs.si)
		atomic.AddInt64(&e.stats.CoSharedShards, 1)
		e.applyShard(cs.si, cs.sh, cur, cond, op, next, accs)
	}
	if len(need) == 0 {
		return
	}
	rest := make([]int, 0, len(need))
	for _, si := range plan {
		if need[si] {
			rest = append(rest, si)
		}
	}
	w := e.startSweep(rest, func(sh *resident) {
		e.applyShard(sh.idx, sh, cur, cond, op, next, accs)
	})
	defer w.stop()
	w.wait()
}
