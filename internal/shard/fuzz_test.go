package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Native fuzz targets for the two decoding surfaces a shard directory
// exposes: the JSON manifest and the binary shard files. The contract
// under fuzz is the one TestStoreFailurePaths pins with fixed fixtures —
// arbitrary bytes must produce an error or a valid store, never a panic
// and never an allocation sized by untrusted input. The corrupt-input
// table tests seeded the committed corpora under testdata/fuzz (see
// TestRegenFuzzCorpus).

// FuzzManifest feeds arbitrary bytes to Open as manifest.json. When Open
// accepts, the resulting store's accessors and shard loading must also
// be panic-free (shard files are absent, so loads error).
func FuzzManifest(f *testing.F) {
	for _, seed := range manifestSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			return
		}
		for i := 0; i < st.NumShards(); i++ {
			lo, hi := st.Range(i)
			if lo > hi || int(hi) > st.NumVertices() {
				t.Fatalf("Open accepted shard %d with range [%d,%d) over %d vertices", i, lo, hi, st.NumVertices())
			}
			if _, err := st.LoadShard(i); err == nil {
				t.Fatalf("LoadShard(%d) succeeded with no shard file on disk", i)
			}
		}
	})
}

// FuzzShardFile feeds arbitrary bytes to the shard-file decoder. The
// declared edge count is read from the fuzzed header itself and passed
// as the manifest's expectation — modelling a hostile directory whose
// manifest and shard header agree — so the decoder's only defence is
// validating the declared count against the file's actual size before
// allocating.
func FuzzShardFile(f *testing.F) {
	for _, seed := range shardFileSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "shard-0000.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var want int64
		if len(data) >= 8 {
			want = int64(binary.LittleEndian.Uint64(data[:8]))
		}
		const n, lo, hi = 256, 64, 128
		c, err := readShardFile(path, n, lo, hi, want)
		if err != nil {
			return
		}
		// Acceptance means every decoded edge satisfies the invariants
		// the engine's partition-exclusive apply assumes.
		if int64(len(c.Src)) != want || int64(len(c.Dst)) != want {
			t.Fatalf("decoded %d/%d edges, header says %d", len(c.Src), len(c.Dst), want)
		}
		for i := range c.Src {
			if int(c.Src[i]) >= n {
				t.Fatalf("accepted source %d >= %d vertices", c.Src[i], n)
			}
			if c.Dst[i] < lo || c.Dst[i] >= hi {
				t.Fatalf("accepted destination %d outside [%d,%d)", c.Dst[i], lo, hi)
			}
		}
	})
}

// manifestSeeds returns the corpus: one valid manifest plus the corrupt
// shapes TestStoreFailurePaths enumerates, serialised to bytes.
func manifestSeeds() [][]byte {
	valid := validManifest()
	mutate := func(edit func(*manifest)) []byte {
		m := valid
		// Deep-copy the slices an edit may alias.
		m.Bounds = append([]graph.VID(nil), valid.Bounds...)
		m.EdgeCounts = append([]int64(nil), valid.EdgeCounts...)
		m.SrcSummary = append([][]uint64(nil), valid.SrcSummary...)
		edit(&m)
		data, err := json.Marshal(m)
		if err != nil {
			panic(err)
		}
		return data
	}
	return [][]byte{
		mutate(func(*manifest) {}),
		[]byte("{"),
		[]byte("null"),
		[]byte(`{"magic":"ggrind-shards-v1"}`),
		mutate(func(m *manifest) { m.Magic = "not-a-shard-store" }),
		mutate(func(m *manifest) { m.EdgeCounts = m.EdgeCounts[:1] }),
		mutate(func(m *manifest) { m.Bounds = m.Bounds[:2] }),
		mutate(func(m *manifest) { m.SrcSummary = m.SrcSummary[:1] }),
		mutate(func(m *manifest) { m.Bounds[1] = graph.VID(m.Vertices) + 64 }),
		mutate(func(m *manifest) { m.Bounds[1], m.Bounds[2] = m.Bounds[2], m.Bounds[1] }),
		mutate(func(m *manifest) { m.EdgeCounts[0]++ }),
		mutate(func(m *manifest) { m.Bounds[1] += 3 }),
		mutate(func(m *manifest) { m.Vertices = -1 }),
		mutate(func(m *manifest) { m.Edges = 1 << 60; m.EdgeCounts[0] = 1 << 60 }),
	}
}

// validManifest writes a real 4-shard store and returns its manifest.
func validManifest() manifest {
	dir, err := os.MkdirTemp("", "shard-fuzz-seed-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st, err := Write(dir, gen.Chain(256), 4)
	if err != nil {
		panic(err)
	}
	return st.m
}

// shardFileSeeds returns the corpus: a real shard file plus the header
// and payload corruptions from the fixed-fixture tests.
func shardFileSeeds() [][]byte {
	dir, err := os.MkdirTemp("", "shard-fuzz-seed-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	g := gen.Chain(256)
	if _, err := Write(dir, g, 4); err != nil {
		panic(err)
	}
	// Shard 1 of Chain(256) owns destinations [64,128) — the range the
	// fuzz target decodes against.
	valid, err := os.ReadFile(filepath.Join(dir, "shard-0001.bin"))
	if err != nil {
		panic(err)
	}
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	hugeCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeCount[:8], 1<<60)
	badDst := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badDst[len(badDst)-4:], 200)
	empty := make([]byte, 8) // zero edges, consistent size
	return [][]byte{valid, truncated, hugeCount, badDst, empty, {1, 2, 3}}
}

// TestRegenFuzzCorpus rewrites the committed seed corpora under
// testdata/fuzz from the seed generators above. It is a no-op unless
// REGEN_FUZZ_CORPUS=1, so the corpora stay deterministic artefacts of
// the table tests rather than hand-maintained binaries.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "1" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzManifest", manifestSeeds())
	write("FuzzShardFile", shardFileSeeds())
}
