// Package serve is the multi-tenant graph-serving daemon core: a
// registry of open shard stores hosted behind one byte-budgeted,
// refcounted shard LRU, serving concurrent queries over HTTP/JSON.
// Opening a store builds a shard.Host (the construction half of the
// engine); each submitted query stamps out a session (the execution
// half) with its own vertex-state arrays while sharing the cache, the
// I/O budget and the co-scheduling pass board with every other query
// on the same store. A shard resident for one in-flight query is free
// for all others; eviction touches only shards no query is applying.
//
// Results carry an FNV-1a digest of the raw value bits, so clients —
// and the trace replayer in internal/bench — can assert bit-identity
// between served, co-scheduled runs and solo runs without shipping
// whole vertex arrays; passing "values": true returns the arrays too.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/graph"
	"repro/internal/shard"
)

// Config parameterizes a Server.
type Config struct {
	// CacheBytes is the daemon-wide shared-cache budget; <= 0 selects
	// shard.DefaultCacheBytes. All stores share this one budget.
	CacheBytes int64
	// Options is the engine option set every hosted store resolves at
	// open time (Threads, IODepth, sweep mode, ...). The zero value is
	// the engine's defaults.
	Options shard.Options
}

// Server hosts stores and runs queries. All methods are safe for
// concurrent use; it serves its HTTP API via Handler.
type Server struct {
	cache *shard.SharedCache
	opts  shard.Options

	mu      sync.Mutex
	stores  map[string]*hostedStore
	queries map[string]*query
	seq     int
}

type hostedStore struct {
	name string
	dir  string
	host *shard.Host
}

// query is one submitted unit of work and its lifecycle record.
type query struct {
	id    string
	store string
	algo  string

	mu       sync.Mutex
	done     chan struct{}
	status   string // "running", "done", "failed"
	err      string
	digest   string
	loads    int64
	wall     time.Duration
	values   any // populated only when the submission asked for values
	submitAt time.Time
}

// New builds an empty server.
func New(cfg Config) *Server {
	return &Server{
		cache:   shard.NewSharedCache(cfg.CacheBytes),
		opts:    cfg.Options,
		stores:  make(map[string]*hostedStore),
		queries: make(map[string]*query),
	}
}

// OpenStore opens the sharded store in dir under the given name and
// hosts it on the shared cache. The vertex topology is rebuilt from
// the store itself (one sweep over the shard files), so a store opens
// from its directory alone.
func (s *Server) OpenStore(name, dir string) error {
	if name == "" {
		return fmt.Errorf("serve: store name must be non-empty")
	}
	s.mu.Lock()
	if _, ok := s.stores[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: store %q already open", name)
	}
	s.mu.Unlock()

	st, err := shard.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: open store %q: %w", name, err)
	}
	edges := make([]graph.Edge, 0, st.NumEdges())
	if err := st.Sweep(func(u, v graph.VID) {
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}); err != nil {
		return fmt.Errorf("serve: rebuild topology of %q: %w", name, err)
	}
	g := graph.FromEdges(st.NumVertices(), edges)
	host, err := shard.NewHost(st, g, s.cache, s.opts)
	if err != nil {
		return fmt.Errorf("serve: host store %q: %w", name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stores[name]; ok {
		return fmt.Errorf("serve: store %q already open", name)
	}
	s.stores[name] = &hostedStore{name: name, dir: dir, host: host}
	return nil
}

// CloseStore unregisters the store and drops its unpinned shards from
// the shared LRU; shards pinned by in-flight queries stay until those
// queries release them, then age out.
func (s *Server) CloseStore(name string) error {
	s.mu.Lock()
	hs, ok := s.stores[name]
	if ok {
		delete(s.stores, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: store %q not open", name)
	}
	hs.host.Evict()
	return nil
}

// Session returns a fresh api.System over an open store — the
// conformance adapter: one served session is a complete engine from
// the API's point of view, and the differential test ladder runs
// through exactly this.
func (s *Server) Session(store string) (api.System, error) {
	s.mu.Lock()
	hs, ok := s.stores[store]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: store %q not open", store)
	}
	return hs.host.NewSession(), nil
}

// QuerySpec is one query submission.
type QuerySpec struct {
	Store string `json:"store"`
	Algo  string `json:"algo"`            // pagerank | bfs | cc | spmv
	Iters int    `json:"iters,omitempty"` // pagerank; default 10
	Src   uint32 `json:"src,omitempty"`   // bfs
	// Values asks for the full result arrays in the status response
	// (digest-only otherwise).
	Values bool `json:"values,omitempty"`
}

// Submit starts spec asynchronously and returns its query ID. The
// query runs on its own session; a panicking operator fails that query
// alone.
func (s *Server) Submit(spec QuerySpec) (string, error) {
	run, err := algoFor(spec)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	hs, ok := s.stores[spec.Store]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("serve: store %q not open", spec.Store)
	}
	s.seq++
	q := &query{
		id:       fmt.Sprintf("q%d", s.seq),
		store:    spec.Store,
		algo:     spec.Algo,
		status:   "running",
		done:     make(chan struct{}),
		submitAt: time.Now(),
	}
	s.queries[q.id] = q
	s.mu.Unlock()

	sess := hs.host.NewSession()
	go func() {
		defer close(q.done)
		defer func() {
			if r := recover(); r != nil {
				q.mu.Lock()
				q.status = "failed"
				q.err = fmt.Sprintf("query panicked: %v", r)
				q.mu.Unlock()
			}
		}()
		start := time.Now()
		values, digest := run(sess)
		wall := time.Since(start)
		q.mu.Lock()
		q.status = "done"
		q.digest = digest
		q.loads = sess.Stats().ShardLoads
		q.wall = wall
		if spec.Values {
			q.values = values
		}
		q.mu.Unlock()
	}()
	return q.id, nil
}

// Wait blocks until query id finishes (however it finishes).
func (s *Server) Wait(id string) error {
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no query %q", id)
	}
	<-q.done
	return nil
}

// algoFor resolves a spec to its runner: the algorithm over one
// session, returning the raw values and their bit digest.
func algoFor(spec QuerySpec) (func(api.System) (any, string), error) {
	switch spec.Algo {
	case "pagerank":
		iters := spec.Iters
		if iters <= 0 {
			iters = 10
		}
		return func(sys api.System) (any, string) {
			r := algorithms.PR(sys, iters)
			return r.Ranks, digestF64(r.Ranks)
		}, nil
	case "bfs":
		return func(sys api.System) (any, string) {
			r := algorithms.BFS(sys, graph.VID(spec.Src))
			return r.Parents, digestI32(r.Parents)
		}, nil
	case "cc":
		return func(sys api.System) (any, string) {
			r := algorithms.CC(sys)
			return r.Labels, digestI32(r.Labels)
		}, nil
	case "spmv":
		return func(sys api.System) (any, string) {
			r := algorithms.SPMV(sys)
			return r.Y, digestF64(r.Y)
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown algorithm %q (want pagerank, bfs, cc or spmv)", spec.Algo)
	}
}

// digestF64 hashes the exact bit patterns, so two runs digest equal iff
// their float64 results are bit-identical.
func digestF64(xs []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func digestI32(xs []int32) string {
	h := fnv.New64a()
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// storeInfo is the wire form of one hosted store.
type storeInfo struct {
	Name     string `json:"name"`
	Dir      string `json:"dir"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Shards   int    `json:"shards"`
}

func (s *Server) storeInfoLocked(hs *hostedStore) storeInfo {
	st := hs.host.Store()
	return storeInfo{
		Name: hs.name, Dir: hs.dir,
		Vertices: st.NumVertices(), Edges: st.NumEdges(), Shards: st.NumShards(),
	}
}

// queryInfo is the wire form of one query's status.
type queryInfo struct {
	ID     string  `json:"id"`
	Store  string  `json:"store"`
	Algo   string  `json:"algo"`
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Digest string  `json:"digest,omitempty"`
	Loads  int64   `json:"loads"`
	WallMS float64 `json:"wall_ms"`
	Values any     `json:"values,omitempty"`
}

func (q *query) info() queryInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	return queryInfo{
		ID: q.id, Store: q.store, Algo: q.algo, Status: q.status,
		Error: q.err, Digest: q.digest, Loads: q.loads,
		WallMS: float64(q.wall) / float64(time.Millisecond),
		Values: q.values,
	}
}

// statsInfo is the wire form of GET /v1/stats.
type statsInfo struct {
	Cache   shard.SharedCacheStats `json:"cache"`
	Stores  []storeInfo            `json:"stores"`
	Queries int                    `json:"queries"`
}

// Stats snapshots the daemon: the shared-cache counters (budget,
// resident and pinned bytes, hits, loads, shared reads, evictions,
// rejections) plus the hosted stores and total queries submitted.
func (s *Server) Stats() statsInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := statsInfo{Cache: s.cache.Stats(), Queries: len(s.queries)}
	for _, hs := range s.stores {
		out.Stores = append(out.Stores, s.storeInfoLocked(hs))
	}
	sort.Slice(out.Stores, func(i, j int) bool { return out.Stores[i].Name < out.Stores[j].Name })
	return out
}

// Cache exposes the daemon-wide shared cache (tests and the bench
// replayer read its counters).
func (s *Server) Cache() *shard.SharedCache { return s.cache }

// Handler returns the HTTP/JSON API:
//
//	POST   /v1/stores        {"name": "...", "dir": "..."}  open a store
//	GET    /v1/stores                                       list open stores
//	DELETE /v1/stores/{name}                                close a store
//	POST   /v1/queries       QuerySpec                      submit; returns {"id": "..."}
//	GET    /v1/queries/{id}[?wait=1]                        status / result
//	GET    /v1/stats                                        cache + registry snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/stores", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
			Dir  string `json:"dir"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.OpenStore(req.Name, req.Dir); err != nil {
			httpErr(w, http.StatusConflict, err)
			return
		}
		s.mu.Lock()
		info := s.storeInfoLocked(s.stores[req.Name])
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/stores", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats().Stores)
	})

	mux.HandleFunc("DELETE /v1/stores/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CloseStore(r.PathValue("name")); err != nil {
			httpErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/queries", func(w http.ResponseWriter, r *http.Request) {
		var spec QuerySpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /v1/queries/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		q, ok := s.queries[id]
		s.mu.Unlock()
		if !ok {
			httpErr(w, http.StatusNotFound, fmt.Errorf("serve: no query %q", id))
			return
		}
		if r.URL.Query().Get("wait") != "" {
			select {
			case <-q.done:
			case <-r.Context().Done():
				httpErr(w, http.StatusRequestTimeout, r.Context().Err())
				return
			}
		}
		writeJSON(w, http.StatusOK, q.info())
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
