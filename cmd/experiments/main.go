// Command experiments regenerates every table and figure of the paper's
// evaluation section (§IV) on the scaled dataset substitutes. Output is
// plain text, one block per experiment, suitable for diffing against
// EXPERIMENTS.md.
//
// Run everything:
//
//	experiments -all
//
// Or individual experiments:
//
//	experiments -table1 -fig3 -fig5 -quick
//
// -quick shrinks graphs, sweeps and repetitions for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

type config struct {
	quick   bool
	threads int
	reps    int
	csvDir  string
}

// emit prints a figure and, when -csv is set, also writes it as CSV named
// after its ID.
func (c config) emit(fig *bench.Figure) {
	fmt.Println(fig.Render())
	if c.csvDir == "" {
		return
	}
	name := strings.NewReplacer("/", "_", " ", "_").Replace(fig.ID) + ".csv"
	f, err := os.Create(filepath.Join(c.csvDir, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fig.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		table1 = flag.Bool("table1", false, "Table I: graph characteristics")
		table2 = flag.Bool("table2", false, "Table II: algorithms")
		fig2   = flag.Bool("fig2", false, "Fig 2: reuse distance distributions")
		fig3   = flag.Bool("fig3", false, "Fig 3: replication factor")
		fig4   = flag.Bool("fig4", false, "Fig 4: storage size")
		fig5   = flag.Bool("fig5", false, "Fig 5: layout sweeps on twitter-sm")
		fig6   = flag.Bool("fig6", false, "Fig 6: layout sweeps on small graphs")
		fig7   = flag.Bool("fig7", false, "Fig 7: edge sort order")
		fig8   = flag.Bool("fig8", false, "Fig 8: simulated MPKI")
		fig9   = flag.Bool("fig9", false, "Fig 9: system comparison")
		fig10  = flag.Bool("fig10", false, "Fig 10: thread scalability")
		atom   = flag.Bool("atomics", false, "atomics ablation (§III.C)")
		ablate = flag.Bool("ablations", false, "design-choice ablations (reorder, thresholds, by-source)")
		quick  = flag.Bool("quick", false, "shrink everything for a smoke pass")
		reps   = flag.Int("reps", 3, "timing repetitions (median reported)")
		csvDir = flag.String("csv", "", "also write each figure as CSV into this directory")
	)
	flag.Parse()
	cfg := config{quick: *quick, threads: 0, reps: *reps, csvDir: *csvDir}
	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.quick {
		cfg.reps = 1
	}

	ran := false
	run := func(enabled bool, fn func(config)) {
		if *all || enabled {
			fn(cfg)
			ran = true
		}
	}
	run(*table1, runTable1)
	run(*table2, runTable2)
	run(*fig2, runFig2)
	run(*fig3, runFig3)
	run(*fig4, runFig4)
	run(*fig5, runFig5)
	run(*fig6, runFig6)
	run(*fig7, runFig7)
	run(*fig8, runFig8)
	run(*fig9, runFig9)
	run(*fig10, runFig10)
	run(*atom, runAtomics)
	run(*ablate, runAblations)
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// mainGraph is the Twitter stand-in used by the single-graph figures.
func mainGraph(cfg config) (string, *graph.Graph) {
	if cfg.quick {
		return "tiny-social", gen.TinySocial()
	}
	return "twitter-sm", gen.Preset("twitter-sm")
}

func sweep(cfg config) []int {
	if cfg.quick {
		return []int{4, 16, 64}
	}
	return bench.PartitionSweep()
}

func allCodes() []string {
	return []string{"BC", "CC", "PR", "BFS", "PRDelta", "SPMV", "BF", "BP"}
}

func runTable1(cfg config) {
	if cfg.quick {
		g := gen.TinySocial()
		fmt.Println("== Table I (quick): tiny-social ==")
		fmt.Println(graph.ComputeStats("tiny-social", g).String())
		return
	}
	fmt.Println(bench.Table1())
}

func runTable2(config) { fmt.Println(bench.Table2()) }

func runFig2(cfg config) {
	name, g := mainGraph(cfg)
	ps := []int{1, 4, 8, 24, 192, 384}
	if cfg.quick {
		ps = []int{1, 8, 64}
	}
	fig := bench.Fig2(g, ps)
	fig.Title += " (" + name + ")"
	cfg.emit(fig)
}

func runFig3(cfg config) {
	graphs := map[string]*graph.Graph{}
	if cfg.quick {
		graphs["tiny-social"] = gen.TinySocial()
		graphs["tiny-road"] = gen.TinyRoad()
	} else {
		for _, n := range []string{"twitter-sm", "friendster-sm", "orkut-sm", "usaroad-sm", "livejournal-sm", "powerlaw-sm"} {
			graphs[n] = gen.Preset(n)
		}
	}
	cfg.emit(bench.Fig3(graphs, sweep(cfg)))
}

func runFig4(cfg config) {
	name, g := mainGraph(cfg)
	cfg.emit(bench.Fig4(name, g, sweep(cfg)))
	if !cfg.quick {
		cfg.emit(bench.Fig4("friendster-sm", gen.Preset("friendster-sm"), sweep(cfg)))
	}
}

func runFig5(cfg config) {
	name, g := mainGraph(cfg)
	codes := allCodes()
	if cfg.quick {
		codes = []string{"BFS", "PR"}
	}
	for _, fig := range orderedFigs(bench.Fig5(name, g, codes, sweep(cfg), cfg.reps, cfg.threads), codes) {
		cfg.emit(fig)
	}
}

func runFig6(cfg config) {
	type gspec struct {
		name  string
		codes []string
	}
	specs := []gspec{{"livejournal-sm", []string{"BFS", "BP"}}, {"yahoo-sm", []string{"BFS", "BP"}}}
	if cfg.quick {
		specs = []gspec{{"tiny-road", []string{"BFS"}}}
	}
	for _, s := range specs {
		var g *graph.Graph
		if s.name == "tiny-road" {
			g = gen.TinyRoad()
		} else {
			g = gen.Preset(s.name)
		}
		for _, fig := range orderedFigs(bench.Fig5(s.name, g, s.codes, sweep(cfg), cfg.reps, cfg.threads), s.codes) {
			fig.ID = "Fig6/" + fig.ID + "/" + s.name
			cfg.emit(fig)
		}
	}
}

func runFig7(cfg config) {
	name, g := mainGraph(cfg)
	codes := []string{"CC", "PR", "PRDelta", "SPMV", "BP"}
	p := 384
	if cfg.quick {
		codes = []string{"PR", "SPMV"}
		p = 16
	}
	cfg.emit(bench.Fig7(name, g, codes, p, cfg.reps, cfg.threads))
	if !cfg.quick {
		cfg.emit(bench.Fig7("friendster-sm", gen.Preset("friendster-sm"), codes, p, cfg.reps, cfg.threads))
	}
}

func runFig8(cfg config) {
	name, g := mainGraph(cfg)
	cfg.emit(bench.Fig8(name, g, sweep(cfg)))
	if !cfg.quick {
		cfg.emit(bench.Fig8("friendster-sm", gen.Preset("friendster-sm"), sweep(cfg)))
	}
}

func runFig9(cfg config) {
	names := gen.PresetNames()
	codes := allCodes()
	if cfg.quick {
		names = nil
		codes = []string{"BFS", "PR"}
		fig := bench.Fig9("tiny-social", gen.TinySocial(), codes, 64, cfg.reps, cfg.threads)
		cfg.emit(fig)
		fmt.Println(bench.SpeedupSummary(fig))
	}
	for _, n := range names {
		fig := bench.Fig9(n, gen.Preset(n), codes, 384, cfg.reps, cfg.threads)
		cfg.emit(fig)
		fmt.Println(bench.SpeedupSummary(fig))
	}
}

func runFig10(cfg config) {
	name, g := mainGraph(cfg)
	max := runtime.GOMAXPROCS(0)
	var threads []int
	for _, t := range []int{1, 2, 4, 8, 16, 24, 48} {
		if t <= max {
			threads = append(threads, t)
		}
	}
	if cfg.quick {
		threads = []int{1, 2}
	}
	cfg.emit(bench.Fig10(name, g, threads, 384, cfg.reps))
}

func runAtomics(cfg config) {
	name, g := mainGraph(cfg)
	codes := allCodes()
	p := 384
	if cfg.quick {
		codes = []string{"PR", "CC"}
		p = 16
	}
	cfg.emit(bench.AtomicsAblation(name, g, codes, p, cfg.reps, cfg.threads))
}

func runAblations(cfg config) {
	name, g := mainGraph(cfg)
	ps := sweep(cfg)
	cfg.emit(bench.ReorderAblation(name, g, ps))
	cfg.emit(bench.BySourceAblation(name, g, ps))
	cfg.emit(bench.NUMAFigure(name, g, ps, sched.DefaultTopology()))
	cfg.emit(bench.ThresholdAblation(name, g, cfg.reps, cfg.threads))
}

// orderedFigs returns map values in codes order for deterministic output.
func orderedFigs(m map[string]*bench.Figure, codes []string) []*bench.Figure {
	out := make([]*bench.Figure, 0, len(m))
	for _, c := range codes {
		if f, ok := m[c]; ok {
			out = append(out, f)
		}
	}
	return out
}
