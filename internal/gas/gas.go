// Package gas adapts the engines' Ligra-style EdgeMap interface to the
// gather-apply-scatter model of PowerGraph/Pregel (§II.A: "these
// algorithms follow the Pregel or gather-apply-scatter model"). A GAS
// program supplies three functions:
//
//	Gather:  per in-edge of an active vertex, a contribution from the
//	         source's frozen value (pull over ALL in-edges)
//	Apply:   combine the summed contributions into the vertex's new value
//	Scatter: decide, from old and new value, whether the change signals
//	         the vertex's out-neighbours (they become active next round)
//
// Run executes supersteps until the active set empties or MaxIters is
// reached. The adapter demonstrates that the paper's engine subsumes the
// GAS abstraction: the pull-gather maps onto a backward EdgeMap whose
// Cond selects active destinations, Apply onto VertexFilter, and Scatter
// onto a forward EdgeMap that activates out-neighbours.
package gas

import (
	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Program is one gather-apply-scatter computation over float64 vertex
// state.
type Program struct {
	// Init sets vertex v's initial value.
	Init func(v graph.VID) float64
	// Gather produces the contribution of in-edge (u,v) given u's frozen
	// value. It must not mutate shared state.
	Gather func(u, v graph.VID, uVal float64) float64
	// Apply combines a vertex's old value with its gathered sum into the
	// new value.
	Apply func(v graph.VID, old, gathered float64) float64
	// Scatter reports whether v's change should activate its
	// out-neighbours (e.g. |new-old| > ε).
	Scatter func(v graph.VID, old, nw float64) bool
	// MaxIters bounds the superstep count; 0 means until quiescence.
	MaxIters int
}

// Result holds the final vertex values and superstep count.
type Result struct {
	Values []float64
	Iters  int
}

// Run executes the program on the system, starting with every vertex
// active.
func Run(sys api.System, p Program) Result {
	g := sys.Graph()
	n := g.NumVertices()
	vals := algorithms.NewF64s(n, 0)
	acc := algorithms.NewF64s(n, 0)
	frozen := make([]float64, n)
	for v := 0; v < n; v++ {
		vals.Set(graph.VID(v), p.Init(graph.VID(v)))
	}

	all := frontier.All(g)
	var activeBm *frontier.Bitmap
	gather := api.EdgeOp{
		Cond: func(v graph.VID) bool { return activeBm.Get(v) },
		Update: func(u, v graph.VID) bool {
			acc.Add(v, p.Gather(u, v, frozen[u]))
			return true
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			acc.AtomicAdd(v, p.Gather(u, v, frozen[u]))
			return true
		},
	}
	activate := api.EdgeOp{
		Update:       func(_, _ graph.VID) bool { return true },
		UpdateAtomic: func(_, _ graph.VID) bool { return true },
	}

	f := all
	res := Result{}
	for !f.IsEmpty() && (p.MaxIters == 0 || res.Iters < p.MaxIters) {
		// Freeze every vertex's value: the pull-gather reads arbitrary
		// sources, not just active ones.
		sys.VertexMap(all, func(u graph.VID) { frozen[u] = vals.Get(u) })
		acc.Fill(0)
		activeBm = f.Bitmap()
		// Pull: every source offers its edges; Cond keeps only active
		// destinations, which therefore gather over ALL their in-edges.
		sys.EdgeMap(all, gather, api.DirBackward)

		// Apply to the active set; Scatter selects the signalling
		// vertices. The filter predicate performs the apply as a side
		// effect: each vertex appears exactly once in f.
		changed := sys.VertexFilter(f, func(v graph.VID) bool {
			o := vals.Get(v)
			nw := p.Apply(v, o, acc.Get(v))
			vals.Set(v, nw)
			return p.Scatter(v, o, nw)
		})
		// Signal: out-neighbours of changed vertices are active next
		// superstep.
		f = sys.EdgeMap(changed, activate, api.DirForward)
		res.Iters++
	}
	res.Values = vals.Slice()
	return res
}

// PageRankProgram is the canonical GAS PageRank, used by tests to verify
// the adapter reaches the same fixed point as the native power method.
// epsilon bounds the per-vertex change below which a vertex stops
// signalling.
func PageRankProgram(g *graph.Graph, epsilon float64) Program {
	n := float64(g.NumVertices())
	const d = algorithms.Damping
	return Program{
		Init: func(graph.VID) float64 { return 1 / n },
		Gather: func(u, _ graph.VID, uVal float64) float64 {
			deg := g.OutDegree(u)
			if deg == 0 {
				return 0
			}
			return uVal / float64(deg)
		},
		Apply: func(_ graph.VID, _, gathered float64) float64 {
			return (1-d)/n + d*gathered
		},
		Scatter: func(_ graph.VID, old, nw float64) bool {
			diff := nw - old
			if diff < 0 {
				diff = -diff
			}
			return diff > epsilon
		},
	}
}

// DegreeProgram computes each vertex's in-degree in one superstep — the
// "hello world" of GAS, used in tests.
func DegreeProgram() Program {
	return Program{
		Init:     func(graph.VID) float64 { return 0 },
		Gather:   func(_, _ graph.VID, _ float64) float64 { return 1 },
		Apply:    func(_ graph.VID, _, gathered float64) float64 { return gathered },
		Scatter:  func(_ graph.VID, _, _ float64) bool { return false },
		MaxIters: 1,
	}
}
