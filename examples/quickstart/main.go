// Quickstart: build a small graph, run BFS and PageRank on the
// GraphGrind-v2 engine, and print a few results. This is the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A directed R-MAT graph with 2^14 vertices and ~2^18 edges.
	g := repro.RMAT(14, 16, 0.57, 0.19, 0.19, 1)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// The engine builds three layout copies (CSR, CSC, partitioned COO)
	// and picks a traversal per iteration from frontier density.
	eng := repro.NewEngine(g, repro.Options{})
	fmt.Printf("engine: %d partitions, %d threads\n",
		eng.Options().Partitions, eng.Threads())

	// BFS from the highest-degree vertex.
	src := repro.SourceVertex(g)
	parents := repro.BFS(eng, src)
	reached := 0
	for _, p := range parents {
		if p >= 0 {
			reached++
		}
	}
	fmt.Printf("BFS from %d reached %d/%d vertices\n", src, reached, g.NumVertices())

	// PageRank, 10 power iterations.
	ranks := repro.PageRank(eng, 10)
	best, bestRank := repro.VID(0), 0.0
	for v, r := range ranks {
		if r > bestRank {
			best, bestRank = repro.VID(v), r
		}
	}
	fmt.Printf("top PageRank vertex: %d (rank %.5f, out-degree %d)\n",
		best, bestRank, g.OutDegree(best))

	// The telemetry shows which frontier classes the runs used.
	fmt.Printf("edge-map telemetry: %s\n", eng.Telemetry().String())
}
