// Command gpart analyses a partitioning without running any algorithm:
// per-partition vertex/edge loads, balance, replication factor, modelled
// layout storage, and the heuristic partition count. It answers "what
// does Algorithm 1 do to this graph at this P?" — the Figures 3 and 4
// view of one configuration.
//
// Examples:
//
//	gpart -graph twitter-sm -partitions 384
//	gpart -graph usaroad-sm -partitions 48 -criterion vertices
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/locality"
	"repro/internal/partition"
	"repro/internal/sched"
)

func main() {
	var (
		graphName  = flag.String("graph", "twitter-sm", "graph preset: "+strings.Join(gen.PresetNames(), ", "))
		partitions = flag.Int("partitions", 0, "partition count (0 = locality heuristic)")
		criterion  = flag.String("criterion", "edges", "balance criterion: edges or vertices")
		scheme     = flag.String("by", "destination", "partitioning scheme: destination or source")
	)
	flag.Parse()

	g := gen.Preset(*graphName)
	fmt.Println(graph.ComputeStats(*graphName, g).String())

	crit := partition.BalanceEdges
	if *criterion == "vertices" {
		crit = partition.BalanceVertices
	} else if *criterion != "edges" {
		fmt.Fprintf(os.Stderr, "gpart: unknown criterion %q\n", *criterion)
		os.Exit(2)
	}
	p := *partitions
	if p <= 0 {
		p = core.HeuristicPartitions(g, core.HeuristicConfig{})
		fmt.Printf("heuristic partition count: %d\n", p)
	}

	var pt *partition.Partitioning
	switch *scheme {
	case "destination":
		pt = partition.ByDestination(g, p, crit)
	case "source":
		pt = partition.BySource(g, p, crit)
	default:
		fmt.Fprintf(os.Stderr, "gpart: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	inLoads := pt.InEdgeCounts(g)
	outLoads := pt.OutEdgeCounts(g)
	fmt.Printf("partitions: %d (criterion: %s, by %s)\n", pt.P, crit, *scheme)
	fmt.Printf("in-edge balance:  max/mean = %.3f\n", partition.Imbalance(inLoads))
	fmt.Printf("out-edge balance: max/mean = %.3f\n", partition.Imbalance(outLoads))

	r := partition.ReplicationFactor(g, pt)
	fmt.Printf("replication factor r(%d) = %.2f (worst case r(|V|) = %.1f)\n",
		pt.P, r, partition.WorstCaseReplicationFactor(g))

	sizes := partition.Model(g, pt.P, partition.DefaultBe, partition.DefaultBv)
	fmt.Printf("modelled storage at P=%d:\n", pt.P)
	fmt.Printf("  CSR (pruned)   %8.2f MiB\n", mib(sizes.CSRPruned))
	fmt.Printf("  CSR (unpruned) %8.2f MiB\n", mib(sizes.CSRUnpruned))
	fmt.Printf("  CSC            %8.2f MiB\n", mib(sizes.CSC))
	fmt.Printf("  COO            %8.2f MiB\n", mib(sizes.COO))

	// Load histogram: smallest, median, largest partitions by in-edges.
	small, median, large := spread(inLoads)
	fmt.Printf("in-edges per partition: min=%d median=%d max=%d\n", small, median, large)

	if *scheme == "destination" {
		topo := sched.DefaultTopology()
		tr := locality.MeasureNUMATraffic(g, pt.P, topo)
		fmt.Printf("modelled NUMA (%d domains): %.1f%% of vertex-array accesses domain-local "+
			"(next-array updates: %d local / %d remote)\n",
			topo.Domains, 100*tr.LocalShare, tr.LocalNext, tr.RemoteNext)
	}
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

func spread(loads []int64) (min, median, max int64) {
	if len(loads) == 0 {
		return
	}
	sorted := append([]int64(nil), loads...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
}
