// Package partition implements the paper's graph partitioning (Section
// II): partitioning-by-destination (Algorithm 1) and -by-source, with
// edge-balanced or vertex-balanced criteria, the partitioned COO and CSR
// layouts, the replication-factor computation behind Figure 3 and the
// storage-size model behind Figure 4.
//
// A Partitioning assigns each vertex a home partition; homes are
// contiguous vertex ranges, exactly as Algorithm 1 produces by scanning
// vertices in order and cutting when the running edge count reaches
// |E|/P. Contiguity is what confines the random accesses of a partition's
// traversal to a bounded vertex range, which is the locality mechanism
// the paper exploits.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Criterion selects how Algorithm 1 balances partitions.
type Criterion int

const (
	// BalanceEdges cuts so each partition holds ~|E|/P edges — the choice
	// for edge-oriented algorithms and always for the COO layout.
	BalanceEdges Criterion = iota
	// BalanceVertices cuts so each partition holds ~|V|/P vertices — the
	// choice for vertex-oriented algorithms (BFS, BC, BF).
	BalanceVertices
)

func (c Criterion) String() string {
	switch c {
	case BalanceEdges:
		return "edges"
	case BalanceVertices:
		return "vertices"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Partitioning is a division of the vertex set into P contiguous ranges.
// Partition i owns vertices [Bounds[i], Bounds[i+1]).
type Partitioning struct {
	P      int
	Bounds []graph.VID // length P+1; Bounds[0]=0, Bounds[P]=|V|
}

// ByDestination runs Algorithm 1: it assigns contiguous vertex ranges so
// that the in-edges of each range total approximately |E|/P (BalanceEdges)
// or the ranges have equal vertex counts (BalanceVertices). All in-edges
// of a vertex land in its home partition. Boundaries are aligned to
// BoundaryAlign vertices so engines can write frontier bitmaps without
// atomics (see BoundaryAlign).
func ByDestination(g *graph.Graph, p int, crit Criterion) *Partitioning {
	return split(g.NumVertices(), g.NumEdges(), p, crit, BoundaryAlign, func(v graph.VID) int64 {
		return g.InDegree(v)
	})
}

// ByDestinationUnaligned is Algorithm 1 with exact (unaligned) cut
// points, matching the paper's pseudocode line for line. It is used by
// the analysis functions and tests against the Figure 1 worked example;
// engines must use ByDestination.
func ByDestinationUnaligned(g *graph.Graph, p int, crit Criterion) *Partitioning {
	return split(g.NumVertices(), g.NumEdges(), p, crit, 1, func(v graph.VID) int64 {
		return g.InDegree(v)
	})
}

// BySource is the symmetric scheme: all out-edges of a vertex land in its
// home partition. The paper analyses it (§II.B) but does not use it; it is
// provided for the ablation benches.
func BySource(g *graph.Graph, p int, crit Criterion) *Partitioning {
	return split(g.NumVertices(), g.NumEdges(), p, crit, BoundaryAlign, func(v graph.VID) int64 {
		return g.OutDegree(v)
	})
}

// BoundaryAlign is the vertex alignment of every partition boundary.
// Frontier bitmaps pack 64 vertices per word; engines rely on partitions
// never sharing a bitmap word so the partition-exclusive paths can set
// next-frontier bits without atomics. Aligning cut points to 64 vertices
// guarantees word exclusivity while perturbing balance by at most 63
// vertices per partition.
const BoundaryAlign = 64

func alignUp(v, n, align int) graph.VID {
	v = (v + align - 1) &^ (align - 1)
	if v > n {
		v = n
	}
	return graph.VID(v)
}

// split is Algorithm 1 generalised over the per-vertex weight (in-degree
// for by-destination, out-degree for by-source, 1 for vertex balancing).
// Cut points are aligned to align vertices (a power of two).
func split(n int, m int64, p int, crit Criterion, align int, degree func(graph.VID) int64) *Partitioning {
	if p < 1 {
		panic("partition: need at least 1 partition")
	}
	if p > n && n > 0 {
		p = n // more partitions than vertices degenerates to singletons
	}
	pt := &Partitioning{P: p, Bounds: make([]graph.VID, p+1)}
	pt.Bounds[p] = graph.VID(n)
	if p == 1 || n == 0 {
		for i := 1; i < p; i++ {
			pt.Bounds[i] = graph.VID(n)
		}
		return pt
	}
	if crit == BalanceVertices {
		for i := 1; i < p; i++ {
			b := alignUp(i*n/p, n, align)
			if b < pt.Bounds[i-1] {
				b = pt.Bounds[i-1]
			}
			pt.Bounds[i] = b
		}
		return pt
	}
	avg := m / int64(p)
	if avg == 0 {
		avg = 1
	}
	var acc int64
	i := 0
	for v := 0; v < n; v++ {
		if acc >= avg && i < p-1 && v%align == 0 {
			i++
			pt.Bounds[i] = graph.VID(v)
			acc = 0
		}
		acc += degree(graph.VID(v))
	}
	// Ranges for partitions never reached stay empty at the end.
	for j := i + 1; j < p; j++ {
		pt.Bounds[j] = graph.VID(n)
	}
	return pt
}

// Home returns the home partition of vertex v (binary search over the
// bounds; O(log P)).
func (pt *Partitioning) Home(v graph.VID) int {
	// Find the last bound <= v.
	idx := sort.Search(pt.P, func(i int) bool { return pt.Bounds[i+1] > v })
	return idx
}

// Range returns the vertex range [lo,hi) owned by partition i.
func (pt *Partitioning) Range(i int) (lo, hi graph.VID) {
	return pt.Bounds[i], pt.Bounds[i+1]
}

// VertexCount returns the number of vertices owned by partition i.
func (pt *Partitioning) VertexCount(i int) int {
	return int(pt.Bounds[i+1] - pt.Bounds[i])
}

// InEdgeCounts returns, per partition, the number of in-edges of its
// vertex range — the edge load of a by-destination partitioning.
func (pt *Partitioning) InEdgeCounts(g *graph.Graph) []int64 {
	counts := make([]int64, pt.P)
	off := g.InOffsets()
	for i := 0; i < pt.P; i++ {
		lo, hi := pt.Range(i)
		counts[i] = off[hi] - off[lo]
	}
	return counts
}

// OutEdgeCounts returns, per partition, the number of out-edges of its
// vertex range.
func (pt *Partitioning) OutEdgeCounts(g *graph.Graph) []int64 {
	counts := make([]int64, pt.P)
	off := g.OutOffsets()
	for i := 0; i < pt.P; i++ {
		lo, hi := pt.Range(i)
		counts[i] = off[hi] - off[lo]
	}
	return counts
}

// Validate checks partitioning invariants: bounds are monotone, cover
// [0,n] exactly, and Home agrees with Range.
func (pt *Partitioning) Validate(n int) error {
	if len(pt.Bounds) != pt.P+1 {
		return fmt.Errorf("partition: bounds length %d, want %d", len(pt.Bounds), pt.P+1)
	}
	if pt.Bounds[0] != 0 || int(pt.Bounds[pt.P]) != n {
		return fmt.Errorf("partition: bounds span [%d,%d], want [0,%d]", pt.Bounds[0], pt.Bounds[pt.P], n)
	}
	for i := 0; i < pt.P; i++ {
		if pt.Bounds[i] > pt.Bounds[i+1] {
			return fmt.Errorf("partition: bounds not monotone at %d", i)
		}
	}
	return nil
}

// Imbalance returns max(load)/mean(load) for the given per-partition
// loads; 1.0 is perfect balance. Empty partitionings return 1.
func Imbalance(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}
