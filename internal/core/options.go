// Package core implements the paper's primary contribution: the
// GraphGrind-v2 traversal engine. It stores three graph layouts —
// unpartitioned CSR for sparse frontiers, unpartitioned CSC traversed in
// partitioned computation ranges for medium-dense frontiers, and an
// aggressively partitioned COO for dense frontiers — and dispatches each
// EdgeMap through Algorithm 2's density thresholds. With one worker per
// partition the COO and CSC paths update every destination from exactly
// one goroutine, so they run without hardware atomics.
package core

import (
	"runtime"

	"repro/internal/hilbert"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Layout forces a single traversal layout for every EdgeMap, used by the
// Figure 5/6 sweeps. LayoutAuto is the paper's Algorithm 2.
type Layout int

const (
	// LayoutAuto selects per-iteration via the density thresholds.
	LayoutAuto Layout = iota
	// LayoutCSR always traverses the partitioned pruned CSR forward
	// (with atomics — the paper's "CSR + a" configuration).
	LayoutCSR
	// LayoutCSC always traverses the whole-graph CSC backward over
	// partitioned ranges ("CSC + na").
	LayoutCSC
	// LayoutCOO always traverses the partitioned COO ("COO + a" or
	// "COO + na" depending on Options.ForceAtomics).
	LayoutCOO
)

func (l Layout) String() string {
	switch l {
	case LayoutCSR:
		return "CSR"
	case LayoutCSC:
		return "CSC"
	case LayoutCOO:
		return "COO"
	default:
		return "auto"
	}
}

// Options configures an Engine.
type Options struct {
	// Partitions is the COO/CSC partition count. 0 selects the default:
	// max(8×threads rounded to a topology multiple, 32). The paper finds
	// 384 optimal on 48 threads.
	Partitions int
	// Threads is the worker count; 0 selects GOMAXPROCS.
	Threads int
	// Layout forces a layout for all iterations (Figure 5 sweeps);
	// LayoutAuto is the paper's adaptive engine.
	Layout Layout
	// ForceAtomics makes the dense COO path use atomic updates with
	// edge-chunk parallelism instead of partition-exclusive workers —
	// the "+a" configurations of Figures 5 and 6.
	ForceAtomics bool
	// SparseDiv and DenseDiv are Algorithm 2's thresholds: a frontier is
	// sparse below |E|/SparseDiv of active edge work and dense above
	// |E|/DenseDiv. 0 selects the paper's 20 and 2.
	SparseDiv, DenseDiv int64
	// EdgeOrder sorts each COO partition's edges (Figure 7). Default
	// BySource (CSR order).
	EdgeOrder hilbert.EdgeOrder
	// Criterion balances partitions by in-edges (edge-oriented
	// algorithms) or vertices (vertex-oriented). Default BalanceEdges.
	Criterion partition.Criterion
	// Topology is the modelled NUMA layout; partition counts are rounded
	// to a multiple of its domains as in §III.D.
	Topology sched.Topology
	// BuildCSRPartitions also materialises the pruned partitioned CSR.
	// It is required for LayoutCSR and costs r(p)·|V| extra storage, so
	// the auto engine leaves it off.
	BuildCSRPartitions bool
	// Trace, when non-nil, records one event per EdgeMap (class chosen,
	// frontier statistics, duration).
	Trace *trace.Recorder
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Topology.Domains <= 0 {
		o.Topology = sched.DefaultTopology()
	}
	if o.Partitions <= 0 {
		p := 8 * o.Threads
		if p < 32 {
			p = 32
		}
		o.Partitions = p
	}
	o.Partitions = o.Topology.PartitionsFor(o.Partitions)
	if o.SparseDiv <= 0 {
		o.SparseDiv = 20
	}
	if o.DenseDiv <= 0 {
		o.DenseDiv = 2
	}
	if o.Layout == LayoutCSR {
		o.BuildCSRPartitions = true
	}
	return o
}
