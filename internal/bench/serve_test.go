package bench

import (
	"testing"

	"repro/internal/gen"
)

// TestReplayServeSmoke is the CI gate on the daemon replay: a small
// many-client trace must complete, report plausible latency and
// throughput numbers, keep every served result bit-identical to its
// solo baseline, and perform strictly fewer shard loads than the
// unshared trace would.
func TestReplayServeSmoke(t *testing.T) {
	const clients, rounds = 4, 2
	res, err := ReplayServe(gen.TinySocial(), 8, clients, rounds)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())

	if want := clients * rounds * 3; res.Queries != want {
		t.Fatalf("replay completed %d queries, want %d", res.Queries, want)
	}
	if !(res.P50 > 0) || res.P99 < res.P50 {
		t.Fatalf("latency percentiles implausible: p50 %v p99 %v", res.P50, res.P99)
	}
	if !(res.QPS > 0) {
		t.Fatalf("replay reports %v QPS", res.QPS)
	}
	if !res.BitIdentical {
		t.Fatal("a served query's digest diverged from its solo baseline")
	}
	if res.ServedLoads <= 0 || res.ServedLoads >= res.SoloLoads {
		t.Fatalf("shared daemon performed %d loads for a trace that costs %d solo, want 0 < shared < solo",
			res.ServedLoads, res.SoloLoads)
	}
}
