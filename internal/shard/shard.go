// Package shard provides GraphChi-style out-of-core processing — the
// system the paper's partitioning-by-destination originates from (§II.B
// cites GraphChi's scheme; out-of-core engines "determine the
// partitioning factor such that individual partitions fit in core
// memory"). A graph's partitioned COO is written to one file per shard;
// iteration then streams shards from disk one at a time, so resident
// memory is bounded by the per-vertex arrays plus a single shard
// regardless of |E|.
//
// The same partitioning invariant as in-memory processing holds: a
// shard holds all in-edges of its vertex range, so updates from a shard
// sweep are confined to that range.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/partition"
)

// manifest is the on-disk index of a sharded graph.
type manifest struct {
	Magic      string      `json:"magic"`
	Vertices   int         `json:"vertices"`
	Edges      int64       `json:"edges"`
	Shards     int         `json:"shards"`
	Bounds     []graph.VID `json:"bounds"`
	EdgeCounts []int64     `json:"edge_counts"`
}

const manifestMagic = "ggrind-shards-v1"

// Store is an opened sharded graph directory.
type Store struct {
	dir string
	m   manifest
}

// Write shards g into dir (created if needed) with p partitions by
// destination and returns the opened store.
func Write(dir string, g *graph.Graph, p int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	pt := partition.ByDestination(g, p, partition.BalanceEdges)
	pcoo := partition.NewPCOO(g, pt)
	m := manifest{
		Magic:    manifestMagic,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Shards:   pt.P,
		Bounds:   pt.Bounds,
	}
	for i, part := range pcoo.Parts {
		m.EdgeCounts = append(m.EdgeCounts, part.NumEdges())
		if err := writeShardFile(shardPath(dir, i), part); err != nil {
			return nil, err
		}
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		return nil, err
	}
	return &Store{dir: dir, m: m}, nil
}

// Open loads an existing sharded graph directory.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %v", err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("shard: bad magic %q", m.Magic)
	}
	if m.Shards != len(m.EdgeCounts) || len(m.Bounds) != m.Shards+1 {
		return nil, fmt.Errorf("shard: inconsistent manifest")
	}
	return &Store{dir: dir, m: m}, nil
}

// NumVertices returns |V|.
func (s *Store) NumVertices() int { return s.m.Vertices }

// NumEdges returns |E|.
func (s *Store) NumEdges() int64 { return s.m.Edges }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return s.m.Shards }

// Range returns shard i's destination vertex range.
func (s *Store) Range(i int) (lo, hi graph.VID) { return s.m.Bounds[i], s.m.Bounds[i+1] }

// LoadShard reads shard i's edges from disk.
func (s *Store) LoadShard(i int) (*graph.COO, error) {
	if i < 0 || i >= s.m.Shards {
		return nil, fmt.Errorf("shard: index %d out of range", i)
	}
	return readShardFile(shardPath(s.dir, i), s.m.Vertices, s.m.EdgeCounts[i])
}

// Sweep streams every shard once, in order, calling fn for each edge.
// Only one shard is resident at a time.
func (s *Store) Sweep(fn func(u, v graph.VID)) error {
	for i := 0; i < s.m.Shards; i++ {
		c, err := s.LoadShard(i)
		if err != nil {
			return err
		}
		for e := range c.Src {
			fn(c.Src[e], c.Dst[e])
		}
	}
	return nil
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.bin", i))
}

func writeShardFile(path string, c *graph.COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := binary.Write(f, binary.LittleEndian, int64(len(c.Src))); err != nil {
		return err
	}
	if err := binary.Write(f, binary.LittleEndian, c.Src); err != nil {
		return err
	}
	return binary.Write(f, binary.LittleEndian, c.Dst)
}

func readShardFile(path string, n int, wantEdges int64) (*graph.COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var count int64
	if err := binary.Read(f, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("shard: %s: %v", path, err)
	}
	if count != wantEdges || count < 0 {
		return nil, fmt.Errorf("shard: %s: edge count %d, manifest says %d", path, count, wantEdges)
	}
	c := &graph.COO{N: n, Src: make([]graph.VID, count), Dst: make([]graph.VID, count)}
	if err := binary.Read(f, binary.LittleEndian, c.Src); err != nil {
		return nil, fmt.Errorf("shard: %s: sources: %v", path, err)
	}
	if err := binary.Read(f, binary.LittleEndian, c.Dst); err != nil {
		return nil, fmt.Errorf("shard: %s: destinations: %v", path, err)
	}
	for i := range c.Src {
		if int(c.Src[i]) >= n || int(c.Dst[i]) >= n {
			return nil, fmt.Errorf("shard: %s: endpoint out of range at %d", path, i)
		}
	}
	return c, nil
}

// PageRank runs the power method out-of-core: per iteration one
// sequential pass over the shards, with resident memory bounded by the
// two rank arrays plus one shard. Matches algorithms.PR numerically
// (same damping and dangling handling).
func PageRank(s *Store, iters int, outDeg []int64) ([]float64, error) {
	n := s.NumVertices()
	if len(outDeg) != n {
		return nil, fmt.Errorf("shard: out-degree array length %d, want %d", len(outDeg), n)
	}
	const damping = 0.85
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	acc := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += ranks[v]
				contrib[v] = 0
			} else {
				contrib[v] = ranks[v] / float64(outDeg[v])
			}
			acc[v] = 0
		}
		if err := s.Sweep(func(u, v graph.VID) { acc[v] += contrib[u] }); err != nil {
			return nil, err
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			ranks[v] = base + damping*acc[v]
		}
	}
	return ranks, nil
}

// OutDegrees extracts the per-vertex out-degree from the shards in one
// pass (needed by PageRank when the in-memory graph is gone).
func (s *Store) OutDegrees() ([]int64, error) {
	deg := make([]int64, s.NumVertices())
	err := s.Sweep(func(u, _ graph.VID) { deg[u]++ })
	return deg, err
}
