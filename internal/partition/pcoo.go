package partition

import (
	"repro/internal/graph"
)

// PCOO is the partitioned COO layout: partition i holds exactly the edges
// whose destination's home partition is i. With one worker per partition,
// update sets are disjoint, so traversal needs no atomics. Storage is
// 2|E|·b_v regardless of P (§II.E).
type PCOO struct {
	Part  *Partitioning
	Parts []*graph.COO
}

// NewPCOO buckets g's edges by the home partition of their destination.
// Within a partition, edges retain CSR order (sorted by source) — the
// default "Source" sort order of Figure 7; see the hilbert package for
// re-sorting by destination or Hilbert order.
func NewPCOO(g *graph.Graph, pt *Partitioning) *PCOO {
	p := pt.P
	counts := pt.InEdgeCounts(g)
	parts := make([]*graph.COO, p)
	for i := 0; i < p; i++ {
		parts[i] = &graph.COO{
			N:   g.NumVertices(),
			Src: make([]graph.VID, 0, counts[i]),
			Dst: make([]graph.VID, 0, counts[i]),
		}
	}
	// Iterate in CSR order; out-neighbour lists are sorted by destination
	// and homes are contiguous ranges, so each vertex's edges split into
	// runs per partition, advanced with a linear scan.
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.OutNeighbors(graph.VID(v)) {
			h := pt.Home(d)
			parts[h].Src = append(parts[h].Src, graph.VID(v))
			parts[h].Dst = append(parts[h].Dst, d)
		}
	}
	return &PCOO{Part: pt, Parts: parts}
}

// NumEdges returns the total edge count across partitions.
func (pc *PCOO) NumEdges() int64 {
	var m int64
	for _, p := range pc.Parts {
		m += p.NumEdges()
	}
	return m
}

// EdgeCounts returns per-partition edge counts.
func (pc *PCOO) EdgeCounts() []int64 {
	out := make([]int64, len(pc.Parts))
	for i, p := range pc.Parts {
		out[i] = p.NumEdges()
	}
	return out
}
