package algorithms

import (
	"reflect"
	"testing"

	"repro/internal/api"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The OOC-prefetch equivalence suite: every algorithm in the repository
// — the eight Table II applications plus the five beyond-Table-II ones —
// must produce bit-identical results on the out-of-core engine with the
// sweep pipeline on and off. This is the strongest form of the pipeline
// correctness claim: prefetching may only change *when* a shard becomes
// resident, never what is computed, so even the float64 accumulations
// (whose results depend on application order) must match exactly, not
// just within tolerance.

func TestOOCPipelineBitIdenticalAcrossAllAlgorithms(t *testing.T) {
	directed := gen.TinySocial()
	symmetric := gen.Symmetrise(gen.PowerLaw(1<<9, 1<<12, 2.3, 5))
	src := SourceVertex(directed)
	symSrc := SourceVertex(symmetric)

	// Each entry runs one algorithm to completion through api.System and
	// returns its full result struct for deep comparison. rsys is the
	// engine over the reversed graph, built only for BC — the one
	// algorithm that traverses it.
	runs := []struct {
		name        string
		g           *graph.Graph
		needReverse bool
		run         func(sys, rsys api.System) interface{}
	}{
		{"BC", directed, true, func(sys, rsys api.System) interface{} { return BC(sys, rsys, src) }},
		{"CC", directed, false, func(sys, _ api.System) interface{} { return CC(sys) }},
		{"PR", directed, false, func(sys, _ api.System) interface{} { return PR(sys, 10) }},
		{"BFS", directed, false, func(sys, _ api.System) interface{} { return BFS(sys, src) }},
		{"PRDelta", directed, false, func(sys, _ api.System) interface{} { return PRDelta(sys, 60) }},
		{"SPMV", directed, false, func(sys, _ api.System) interface{} { return SPMV(sys) }},
		{"BF", directed, false, func(sys, _ api.System) interface{} { return BellmanFord(sys, src) }},
		{"BP", directed, false, func(sys, _ api.System) interface{} { return BP(sys, 10) }},
		{"KCore", symmetric, false, func(sys, _ api.System) interface{} { return KCore(sys) }},
		{"MIS", symmetric, false, func(sys, _ api.System) interface{} { return MIS(sys) }},
		{"Radii", symmetric, false, func(sys, _ api.System) interface{} { return Radii(sys) }},
		{"Coloring", symmetric, false, func(sys, _ api.System) interface{} { return Coloring(sys) }},
		{"TC", symmetric, false, func(sys, _ api.System) interface{} { return TriangleCount(sys) }},
		{"BFS-sym", symmetric, false, func(sys, _ api.System) interface{} { return BFS(sys, symSrc) }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			var rsysOn, rsysOff api.System
			if r.needReverse {
				rg := r.g.Reverse()
				rsysOn, rsysOff = oocEngine(t, rg), oocNoPrefetchEngine(t, rg)
			}
			withPrefetch := r.run(oocEngine(t, r.g), rsysOn)
			withoutPrefetch := r.run(oocNoPrefetchEngine(t, r.g), rsysOff)
			if !reflect.DeepEqual(withPrefetch, withoutPrefetch) {
				t.Fatalf("%s results differ between prefetch on and off:\non:  %+v\noff: %+v",
					r.name, withPrefetch, withoutPrefetch)
			}
		})
	}
}
