package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The engine's frontier sequences must be deterministic run to run even
// under full parallelism: the set of activated vertices per round is a
// pure function of graph + operator, and the non-atomic paths must not
// lose updates to scheduling races (the bug class the 64-vertex boundary
// alignment exists to prevent).
func TestFrontierSequenceDeterministic(t *testing.T) {
	g := gen.TinySocial()
	run := func() []int64 {
		e := NewEngine(g, Options{})
		n := g.NumVertices()
		parents := make([]int32, n)
		for i := range parents {
			parents[i] = -1
		}
		src := graph.VID(0)
		parents[src] = int32(src)
		op := api.EdgeOp{
			Cond: func(v graph.VID) bool { return atomic.LoadInt32(&parents[v]) < 0 },
			Update: func(u, v graph.VID) bool {
				return atomic.CompareAndSwapInt32(&parents[v], -1, int32(u))
			},
			UpdateAtomic: func(u, v graph.VID) bool {
				return atomic.CompareAndSwapInt32(&parents[v], -1, int32(u))
			},
		}
		var sizes []int64
		f := frontier.FromVertex(g, src)
		for !f.IsEmpty() {
			f = e.EdgeMap(f, op, api.DirAuto)
			sizes = append(sizes, f.Count())
		}
		return sizes
	}
	want := run()
	for i := 0; i < 10; i++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d rounds vs %d", i, len(got), len(want))
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("run %d round %d: frontier %d vs %d", i, r, got[r], want[r])
			}
		}
	}
}
