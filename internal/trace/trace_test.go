package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := New()
	r.Record("dense", 100, 5000, 2*time.Millisecond)
	r.Record("dense", 80, 4000, time.Millisecond)
	r.Record("sparse", 3, 10, 100*time.Microsecond)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	ev := r.Events()
	if ev[0].Seq != 0 || ev[2].Seq != 2 {
		t.Fatal("sequence numbering wrong")
	}
	if ev[2].Class != "sparse" || ev[2].FrontierSz != 3 {
		t.Fatalf("event content wrong: %+v", ev[2])
	}
}

func TestSummarise(t *testing.T) {
	r := New()
	r.Record("dense", 100, 0, 2*time.Millisecond)
	r.Record("sparse", 5, 0, time.Millisecond)
	r.Record("dense", 500, 0, 3*time.Millisecond)
	sums := r.Summarise()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Class != "dense" || sums[0].Count != 2 || sums[0].Total != 5*time.Millisecond {
		t.Fatalf("dense summary wrong: %+v", sums[0])
	}
	if sums[0].MaxFront != 500 {
		t.Fatalf("max frontier %d", sums[0].MaxFront)
	}
}

func TestWriteCSV(t *testing.T) {
	r := New()
	r.Record("medium", 42, 99, 1500*time.Microsecond)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "seq,class,frontier,activedeg,micros\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,medium,42,99,1500") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestResetAndString(t *testing.T) {
	r := New()
	r.Record("dense", 1, 1, time.Millisecond)
	if r.String() == "" {
		t.Fatal("empty render")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}
