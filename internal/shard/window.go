package shard

// The sweep pipeline's concurrency model (PCPM-style pipelining,
// Lakhotia et al., generalised to Polymer's all-sockets-at-once
// execution): a sweep's shard plan is known up front, so a single
// staging goroutine walks it in order, loading each shard from disk —
// or promoting it from the LRU — and handing it to the apply goroutine
// of the modelled NUMA domain that owns the shard's destination range.
// Up to min(D, Threads) shards are applied simultaneously, one per
// domain, each by its own domain's worker view (the cap keeps
// aggregate parallelism at the pool size when domains outnumber
// workers); this is safe, and bit-identical to a sequential sweep,
// because shards own disjoint 64-aligned destination ranges and every
// operator writes destination state only, so no two concurrent applies
// ever touch the same vertex or the same next-frontier bitmap word.
//
// The stager is throttled by a bounded window: at most
// max(1, min(Window, CacheShards − in-flight applies)) shards may sit
// staged ahead (loading or loaded, not yet begun applying), and staged
// plus mid-apply shards together never exceed CacheShards + 1, the
// engine's documented footprint of "the LRU budget plus the one being
// loaded". The double buffer of the original pipeline is the Window = 1
// floor, and deeper windows model an io_uring submission queue of
// depth k. All loads still happen sequentially on the one staging
// goroutine, so the engine's "at most one uncached load in flight"
// invariant survives every configuration.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// loadFailure wraps a shard-read error so teardown can tell it apart
// from an operator panic: load failures are surfaced with the engine's
// "shard: engine sweep:" prefix, operator panics are re-raised verbatim.
type loadFailure struct{ err error }

// sweepWindow owns one sweep's pipeline: the staging goroutine, the
// per-domain apply goroutines and the bounded-window accounting that
// couples them to the LRU budget.
type sweepWindow struct {
	e        *Engine
	k        int // window depth cap (Options.Window, already bounded by the LRU budget)
	applyCap int // max simultaneous applies: min(Domains, Pool.Threads())

	mu       sync.Mutex
	cond     *sync.Cond
	staged   int // shards holding a window credit: loading or loaded, not yet begun applying
	applying int // shards mid-apply across all domains
	aborted  bool
	cause    any // first failure: a loadFailure or an operator panic value

	queues     []chan *resident // per-domain hand-off, capacity = that domain's plan share
	applyWG    sync.WaitGroup   // one count per running apply goroutine
	stagerDone chan struct{}    // closed when the staging goroutine has exited
}

// startSweep launches the pipeline for a planned shard sequence: one
// apply goroutine per domain with work, fed in plan order through
// per-domain queues, plus the staging goroutine. apply runs one
// resident shard (it is the closure over this EdgeMap's frontier and
// operator state). The caller must invoke wait, and should defer stop
// as the teardown barrier — stop is idempotent and returns only after
// every pipeline goroutine has exited, so no sweep leaks goroutines
// even when wait re-raises a failure.
func (e *Engine) startSweep(plan []int, apply func(*resident)) *sweepWindow {
	w := &sweepWindow{e: e, k: e.opts.Window, stagerDone: make(chan struct{})}
	// Concurrency never exceeds the pool: a machine modelled with T
	// workers runs at most T domain applies at once, so Threads keeps
	// meaning total parallelism even when Split had to deal borrowed
	// worker IDs to more domains than workers.
	w.applyCap = len(e.domains)
	if t := e.pool.Threads(); t < w.applyCap {
		w.applyCap = t
	}
	if w.applyCap < 1 {
		w.applyCap = 1
	}
	w.cond = sync.NewCond(&w.mu)
	perDomain := make([]int, len(e.domains))
	for _, si := range plan {
		perDomain[e.domainOf[si]]++
	}
	w.queues = make([]chan *resident, len(e.domains))
	for d, n := range perDomain {
		if n == 0 {
			continue
		}
		// Full-capacity queues: the stager never blocks on a hand-off,
		// only on window credits, so teardown has a single wake-up path.
		w.queues[d] = make(chan *resident, n)
		w.applyWG.Add(1)
		go w.applyLoop(d, apply)
	}
	go w.stage(plan)
	return w
}

// stage is the staging goroutine: plan order, one fetch at a time, each
// behind a window credit. On a load failure or an abort it closes the
// queues early; the apply goroutines drain and exit.
func (w *sweepWindow) stage(plan []int) {
	defer close(w.stagerDone)
	defer func() {
		for _, q := range w.queues {
			if q != nil {
				close(q)
			}
		}
	}()
	for _, si := range plan {
		if !w.acquire() {
			return
		}
		sh, err := w.e.fetch(si, true)
		if err != nil {
			w.release()
			w.fail(loadFailure{err})
			return
		}
		w.recordStaged(si)
		w.queues[w.e.domainOf[si]] <- sh
	}
}

// applyLoop is one domain's apply goroutine: it applies the domain's
// shards strictly in plan order, concurrently with the other domains'
// loops. An operator panic is captured, recorded as the sweep's failure
// and re-raised later on the sweep goroutine by wait — the loop keeps
// draining its queue so the stager can never wedge on teardown.
func (w *sweepWindow) applyLoop(d int, apply func(*resident)) {
	defer w.applyWG.Done()
	for sh := range w.queues[d] {
		w.beginApply()
		func() {
			defer w.endApply()
			defer func() {
				if r := recover(); r != nil {
					w.fail(r)
				}
			}()
			if !w.isAborted() {
				apply(sh)
			}
		}()
	}
}

// limitLocked is the dynamic window bound: the configured depth k,
// shrunk so staged shards plus in-flight applies stay inside the LRU
// budget, floored at one so the double buffer always survives (with a
// one-shard budget the original pipeline already kept one shard staged
// ahead of the apply; the floor preserves exactly that).
func (w *sweepWindow) limitLocked() int {
	l := w.e.opts.CacheShards - w.applying
	if l > w.k {
		l = w.k
	}
	if l < 1 {
		l = 1
	}
	return l
}

// acquire blocks until a window credit is free and claims it; false
// means the sweep aborted while waiting. Besides the per-window bound,
// the total of staged plus mid-apply shards is held to CacheShards + 1
// — the engine's documented footprint of "the LRU budget plus the one
// being loaded" — so the depth floor can never pile live decoded
// shards past the contract even when every domain is busy.
func (w *sweepWindow) acquire() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.aborted &&
		(w.staged >= w.limitLocked() || w.staged+w.applying > w.e.opts.CacheShards) {
		w.cond.Wait()
	}
	if w.aborted {
		return false
	}
	w.staged++
	return true
}

// release returns an unused credit (the fetch behind it failed).
func (w *sweepWindow) release() {
	w.mu.Lock()
	w.staged--
	w.cond.Broadcast()
	w.mu.Unlock()
}

// recordStaged samples the window depth right after a shard became
// resident, feeding the WindowDepths histogram and the test hook.
func (w *sweepWindow) recordStaged(si int) {
	w.mu.Lock()
	depth, applying := w.staged, w.applying
	w.mu.Unlock()
	if depth >= 1 && depth < len(w.e.stats.WindowDepths) {
		atomic.AddInt64(&w.e.stats.WindowDepths[depth], 1)
	}
	if h := w.e.onStage; h != nil {
		h(si, depth, applying)
	}
}

// beginApply moves one shard from the window into the applying set,
// freeing its credit so the stager can run ahead. It blocks while the
// engine is already running applyCap simultaneous applies, so aggregate
// apply parallelism never exceeds the pool's Threads (an abort lifts
// the wait; the caller then skips the apply and drains).
func (w *sweepWindow) beginApply() {
	w.mu.Lock()
	for !w.aborted && w.applying >= w.applyCap {
		w.cond.Wait()
	}
	w.staged--
	w.applying++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// endApply retires one in-flight apply, which can widen the dynamic
// window bound.
func (w *sweepWindow) endApply() {
	w.mu.Lock()
	w.applying--
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *sweepWindow) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}

// fail records the sweep's first failure and aborts the pipeline; later
// failures (a second domain panicking while the first unwinds) are
// dropped, matching errgroup-style first-error semantics.
func (w *sweepWindow) fail(cause any) {
	w.mu.Lock()
	if !w.aborted {
		w.aborted = true
		w.cause = cause
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// wait blocks until the pipeline has fully drained, then re-raises the
// sweep's failure — if any — on the calling (sweep) goroutine: load
// errors with the engine's panic prefix, operator panics verbatim.
// EdgeMap cannot return an error through api.System, so this is the
// same surfacing the unpipelined path uses.
func (w *sweepWindow) wait() {
	<-w.stagerDone
	w.applyWG.Wait()
	w.mu.Lock()
	cause := w.cause
	w.mu.Unlock()
	switch c := cause.(type) {
	case nil:
	case loadFailure:
		panic(fmt.Sprintf("shard: engine sweep: %v", c.err))
	default:
		panic(c)
	}
}

// stop is the teardown barrier: it aborts whatever is still pending and
// returns only after the staging goroutine and every apply goroutine
// have exited, so no further cache or stats mutation happens. It is
// idempotent and safe after wait.
func (w *sweepWindow) stop() {
	w.mu.Lock()
	w.aborted = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.stagerDone
	w.applyWG.Wait()
}
