package shard

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// passOp is the no-op operator dense-sweep tests drive the engine with.
func passOp() api.EdgeOp {
	return api.EdgeOp{
		Update:       func(u, v graph.VID) bool { return true },
		UpdateAtomic: func(u, v graph.VID) bool { return true },
	}
}

// TestPrefetchOverlapOccurs instruments the load and apply hooks to
// prove the pipeline actually overlaps: the staging goroutine's disk
// load of the second planned shard is held until the sweep goroutine
// has begun applying the first, so when the load proceeds an apply is
// in progress by construction — and the engine must count it as
// overlapped. With a sequential load-then-apply loop this
// synchronisation would deadlock; the timeout converts that into a
// failure.
func TestPrefetchOverlapOccurs(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 8, Options{CacheShards: 1})

	applyStarted := make(chan struct{})
	secondLoadDone := make(chan struct{})
	var applyOnce, loadOnce sync.Once
	var loads int64
	e.onApplyBegin = func(int) {
		// Hold the first apply open until the staged load of the next
		// shard has fully completed, so the two provably ran at the
		// same time (and the overlap sampling is deterministic).
		applyOnce.Do(func() {
			close(applyStarted)
			select {
			case <-secondLoadDone:
			case <-time.After(10 * time.Second):
				t.Error("next shard's load never completed while the first apply was held open: pipeline is sequential")
			}
		})
	}
	e.onLoadBegin = func(int) {
		// The first load must proceed unconditionally (nothing is being
		// applied yet); every later load waits for an apply to start.
		if atomic.AddInt64(&loads, 1) == 1 {
			return
		}
		select {
		case <-applyStarted:
		case <-time.After(10 * time.Second):
			t.Error("load of a later shard never saw an apply begin: pipeline is sequential")
		}
	}
	e.onLoadEnd = func(int) {
		if atomic.LoadInt64(&loads) >= 2 {
			loadOnce.Do(func() { close(secondLoadDone) })
		}
	}

	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)

	st := e.Stats()
	if st.PrefetchLoads < 2 {
		t.Fatalf("only %d prefetch loads; the plan should span several shards", st.PrefetchLoads)
	}
	if st.OverlappedLoads == 0 {
		t.Fatal("no load overlapped an apply despite the enforced interleaving")
	}
	if st.OverlappedLoads >= st.PrefetchLoads {
		t.Fatalf("%d of %d loads overlapped; the first load precedes any apply and cannot overlap",
			st.OverlappedLoads, st.PrefetchLoads)
	}
}

// TestNoPrefetchIsSequential: with the pipeline off, loads and applies
// strictly alternate on one goroutine and no pipeline counter moves.
func TestNoPrefetchIsSequential(t *testing.T) {
	g := gen.TinySocial()
	e := buildTestEngine(t, g, 8, Options{CacheShards: 1, NoPrefetch: true})
	var applying int32
	e.onApplyBegin = func(int) { atomic.StoreInt32(&applying, 1) }
	e.onApplyEnd = func(int) { atomic.StoreInt32(&applying, 0) }
	e.onLoadBegin = func(si int) {
		if atomic.LoadInt32(&applying) != 0 {
			t.Errorf("shard %d loaded while an apply was in progress with NoPrefetch", si)
		}
	}
	e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	st := e.Stats()
	if st.PrefetchLoads != 0 || st.PrefetchHits != 0 || st.OverlappedLoads != 0 {
		t.Fatalf("pipeline counters moved with NoPrefetch: %+v", st)
	}
	if st.ShardLoads == 0 {
		t.Fatal("no loads recorded")
	}
}

// TestPrefetchServesFromCache: when the LRU covers the store, later
// sweeps stage every shard from the cache and the prefetcher reads no
// files.
func TestPrefetchServesFromCache(t *testing.T) {
	g := gen.TinySocial()
	const p = 6
	e := buildTestEngine(t, g, p, Options{CacheShards: p})
	for i := 0; i < 3; i++ {
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}
	st := e.Stats()
	if st.PrefetchLoads > int64(p) {
		t.Fatalf("%d prefetch loads across 3 sweeps, want at most %d", st.PrefetchLoads, p)
	}
	if st.PrefetchHits == 0 {
		t.Fatal("no staged shard was promoted from the LRU across repeat sweeps")
	}
}

// TestPrefetchTeardownLeaksNoGoroutines is the hand-rolled goleak check:
// after full sweeps, a panicking mid-sweep load, and a panicking
// operator, the goroutine count settles back to the baseline — no
// staging goroutine outlives its EdgeMap.
func TestPrefetchTeardownLeaksNoGoroutines(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	dir := t.TempDir()
	e, err := Build(dir, g, 12, Options{Threads: 1, CacheShards: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy sweeps, dense and (after the first) cache-assisted.
	for i := 0; i < 3; i++ {
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}

	// A panicking operator unwinds the sweep mid-plan; the deferred
	// pipeline stop must still reap the staging and apply goroutines.
	// (sched.runTasks re-raises worker panics on its caller and the
	// apply loop forwards them to the sweep goroutine, so this is
	// recoverable at any thread count; Threads=1 here just keeps the
	// fixture minimal.)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panicking operator did not propagate")
			}
		}()
		e.EdgeMap(frontier.All(g), api.EdgeOp{
			Update:       func(u, v graph.VID) bool { panic("operator boom") },
			UpdateAtomic: func(u, v graph.VID) bool { panic("operator boom") },
		}, api.DirAuto)
	}()

	// A mid-sweep load failure: delete a shard file, defeat the cache,
	// and sweep again. The staging goroutine delivers the error, the
	// sweep re-panics it, and teardown still reaps everything.
	if err := os.Remove(filepath.Join(dir, "shard-0005.bin")); err != nil {
		t.Fatal(err)
	}
	e.cache = newLRUCache(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mid-sweep load failure did not panic")
			}
		}()
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after teardown:\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}
}

// settledGoroutines samples the goroutine count after a GC pass, which
// retires already-finished goroutines' bookkeeping.
func settledGoroutines() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// TestPrefetchOnOffBitIdentical is the engine-level determinism core of
// the cross-engine differential suite's OOC-prefetch variant: an
// iterative CAS traversal — the most schedule-sensitive workload —
// produces identical frontier sequences and identical parents with the
// pipeline on and off, under full parallelism.
func TestPrefetchOnOffBitIdentical(t *testing.T) {
	g := gen.TinySocial()
	run := func(noPrefetch bool) ([]int64, []int32) {
		e := buildTestEngine(t, g, 10, Options{CacheShards: 2, NoPrefetch: noPrefetch})
		parents := make([]int32, g.NumVertices())
		for i := range parents {
			parents[i] = -1
		}
		src := graph.VID(0)
		parents[src] = int32(src)
		var sizes []int64
		f := frontier.FromVertex(g, src)
		for !f.IsEmpty() {
			f = e.EdgeMap(f, bfsOp(parents), api.DirAuto)
			sizes = append(sizes, f.Count())
		}
		return sizes, parents
	}
	onSizes, onParents := run(false)
	offSizes, offParents := run(true)
	if len(onSizes) != len(offSizes) {
		t.Fatalf("prefetch on ran %d rounds, off ran %d", len(onSizes), len(offSizes))
	}
	for r := range onSizes {
		if onSizes[r] != offSizes[r] {
			t.Fatalf("round %d: frontier %d with prefetch vs %d without", r, onSizes[r], offSizes[r])
		}
	}
	for v := range onParents {
		if onParents[v] != offParents[v] {
			t.Fatalf("parent[%d] = %d with prefetch vs %d without", v, onParents[v], offParents[v])
		}
	}
}

// TestConcurrentTeardownOnOperatorPanic is the k > 1 fault-path check:
// a multi-threaded, multi-domain sweep with several shards staged ahead
// is torn down cleanly when the operator panics mid-apply — the panic
// propagates to the EdgeMap caller (recoverable), no pipeline goroutine
// leaks, the LRU stays inside its budget, and the engine remains fully
// serviceable: a subsequent healthy sweep produces correct counts.
func TestConcurrentTeardownOnOperatorPanic(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	const budget = 4
	e := buildTestEngine(t, g, 12, Options{Threads: 8, CacheShards: budget, Window: 4})
	boom := api.EdgeOp{
		Update:       func(u, v graph.VID) bool { panic("operator boom") },
		UpdateAtomic: func(u, v graph.VID) bool { panic("operator boom") },
	}
	// Several rounds so teardown is exercised against different cache
	// temperatures (cold, then partially warm).
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Error("operator panic did not propagate from the concurrent sweep")
				} else if s, ok := r.(string); !ok || s != "operator boom" {
					t.Errorf("recovered %v, want the original operator panic value", r)
				}
			}()
			e.EdgeMap(frontier.All(g), boom, api.DirAuto)
		}()
		if n := e.cache.len(); n > budget {
			t.Fatalf("round %d: LRU holds %d shards after the panic, budget is %d", i, n, budget)
		}
	}

	// The engine must still work: count in-edges and check them against
	// the graph (concurrent domains write disjoint destination ranges,
	// so the plain increment is exact).
	counts := make([]int64, g.NumVertices())
	e.EdgeMap(frontier.All(g), api.EdgeOp{
		Update:       func(u, v graph.VID) bool { counts[v]++; return true },
		UpdateAtomic: func(u, v graph.VID) bool { atomic.AddInt64(&counts[v], 1); return true },
	}, api.DirAuto)
	indeg := make([]int64, g.NumVertices())
	for _, ed := range g.Edges() {
		indeg[ed.Dst]++
	}
	for v := range counts {
		if counts[v] != indeg[v] {
			t.Fatalf("post-panic sweep counted %d in-edges for vertex %d, want %d", counts[v], v, indeg[v])
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after concurrent teardown:\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}
}

// TestConcurrentTeardownOnLoadError: a shard-read error with k > 1
// shards staged ahead aborts the whole pipeline — the error surfaces as
// the engine's sweep panic, the apply goroutines drain without applying
// stale work twice, no goroutine leaks, and the LRU budget is intact.
func TestConcurrentTeardownOnLoadError(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	dir := t.TempDir()
	const budget = 2
	e, err := Build(dir, g, 12, Options{Threads: 4, CacheShards: budget, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 5 is mid-plan for this graph (shards 0..6 carry edges), so
	// the failure strikes with earlier shards already staged and
	// applying.
	if err := os.Remove(filepath.Join(dir, "shard-0005.bin")); err != nil {
		t.Fatal(err)
	}
	applied := make(map[int]int)
	var mu sync.Mutex
	e.onApplyBegin = func(si int) {
		mu.Lock()
		applied[si]++
		mu.Unlock()
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("mid-sweep load failure did not panic")
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "shard: engine sweep:") {
				t.Errorf("recovered %v, want the engine's sweep panic prefix", r)
			}
		}()
		e.EdgeMap(frontier.All(g), passOp(), api.DirAuto)
	}()

	mu.Lock()
	for si, n := range applied {
		if n != 1 {
			t.Errorf("shard %d applied %d times during the aborted sweep", si, n)
		}
		if si == 5 {
			t.Error("the unreadable shard was applied")
		}
	}
	mu.Unlock()
	if n := e.cache.len(); n > budget {
		t.Fatalf("LRU holds %d shards after the failed sweep, budget is %d", n, budget)
	}

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after load-error teardown:\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}
}
