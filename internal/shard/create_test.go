package shard

import (
	"errors"
	"testing"

	"repro/internal/gen"
)

// TestCreateOptionValidation pins the redesigned writer's contract:
// zero values select defaults, negative or unknown knobs come back as
// *OptionsError naming the field, and the deprecated wrappers remain
// exact aliases.
func TestCreateOptionValidation(t *testing.T) {
	g := gen.TinySocial()

	t.Run("ZeroValuesSelectDefaults", func(t *testing.T) {
		st, err := Create(t.TempDir(), g, WriteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if st.NumShards() != DefaultPartitions {
			t.Fatalf("zero Partitions built %d shards, want DefaultPartitions=%d", st.NumShards(), DefaultPartitions)
		}
		if st.Format() != DefaultFormat {
			t.Fatalf("zero Format built %v, want %v", st.Format(), DefaultFormat)
		}
	})

	t.Run("NegativePartitions", func(t *testing.T) {
		_, err := Create(t.TempDir(), g, WriteOptions{Partitions: -1})
		var oe *OptionsError
		if !errors.As(err, &oe) || oe.Field != "Partitions" {
			t.Fatalf("got %v, want *OptionsError for Partitions", err)
		}
	})

	t.Run("UnknownFormat", func(t *testing.T) {
		_, err := Create(t.TempDir(), g, WriteOptions{Format: Format(99)})
		var oe *OptionsError
		if !errors.As(err, &oe) || oe.Field != "Format" {
			t.Fatalf("got %v, want *OptionsError for Format", err)
		}
	})

	t.Run("DeprecatedWrappersAlias", func(t *testing.T) {
		a, err := Write(t.TempDir(), g, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := WriteFormat(t.TempDir(), g, 4, FormatV1)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumShards() != 4 || b.NumShards() != 4 {
			t.Fatalf("wrappers built %d/%d shards, want 4", a.NumShards(), b.NumShards())
		}
		if a.Format() != DefaultFormat || b.Format() != FormatV1 {
			t.Fatalf("wrappers built formats %v/%v", a.Format(), b.Format())
		}
		if _, err := WriteFormat(t.TempDir(), g, 4, Format(7)); err == nil {
			t.Fatal("WriteFormat accepted an unknown format")
		}
	})
}
