// Package ligra is the Ligra baseline (Shun & Blelloch, PPoPP'13) the
// paper compares against: an unpartitioned CSR+CSC engine with the
// classic two-way sparse/dense frontier switch at |F|+Σout-deg > |E|/20
// and a *programmer-supplied* traversal direction for dense frontiers
// (Table II's forward/backward column). There is no partitioning, no
// medium-dense class and no COO layout.
package ligra

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Engine is the Ligra-style system.
type Engine struct {
	g         *graph.Graph
	pool      *sched.Pool
	sparseDiv int64
}

var _ api.System = (*Engine)(nil)

// New builds a Ligra engine on g with the given parallelism (0 =
// GOMAXPROCS).
func New(g *graph.Graph, threads int) *Engine {
	return &Engine{g: g, pool: sched.NewPool(threads), sparseDiv: 20}
}

// Name implements api.System.
func (e *Engine) Name() string { return "Ligra" }

// Graph implements api.System.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Threads implements api.System.
func (e *Engine) Threads() int { return e.pool.Threads() }

// VertexMap implements api.System.
func (e *Engine) VertexMap(f *frontier.Frontier, fn func(graph.VID)) {
	api.VertexMap(e.pool, f, fn)
}

// VertexFilter implements api.System.
func (e *Engine) VertexFilter(f *frontier.Frontier, pred func(graph.VID) bool) *frontier.Frontier {
	return api.VertexFilter(e.pool, e.g, f, pred)
}

// EdgeMap dispatches on the two-way density test; dense traversal honours
// the programmer's direction hint (DirAuto falls back to forward, which
// is Ligra's default when no direction flag is given).
func (e *Engine) EdgeMap(f *frontier.Frontier, op api.EdgeOp, dir api.Direction) *frontier.Frontier {
	if f.Count() == 0 {
		return frontier.New(e.g.NumVertices())
	}
	work := f.Count() + f.OutDegree(e.g)
	if work <= e.g.NumEdges()/e.sparseDiv {
		return e.sparse(f, op)
	}
	if dir == api.DirBackward {
		return e.denseBackward(f, op)
	}
	return e.denseForward(f, op)
}

// sparse is edgeMapSparse: forward over the active list with atomic
// updates and test-and-set deduplication.
func (e *Engine) sparse(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	active := f.List()
	claimed := frontier.NewBitmap(g.NumVertices())

	type out struct {
		verts  []graph.VID
		outDeg int64
		_      [7]int64
	}
	outs := make([]out, e.pool.Threads())
	e.pool.ParallelForChunks(len(active), 16, func(w, lo, hi int) {
		o := &outs[w]
		for i := lo; i < hi; i++ {
			u := active[i]
			for _, v := range g.OutNeighbors(u) {
				if cond(v) && op.UpdateAtomic(u, v) && claimed.TestAndSet(v) {
					o.verts = append(o.verts, v)
					o.outDeg += g.OutDegree(v)
				}
			}
		}
	})
	var total int
	var outDeg int64
	for i := range outs {
		total += len(outs[i].verts)
		outDeg += outs[i].outDeg
	}
	merged := make([]graph.VID, 0, total)
	for i := range outs {
		merged = append(merged, outs[i].verts...)
	}
	nf := frontier.FromList(g.NumVertices(), merged)
	nf.SetStats(int64(total), outDeg)
	return nf
}

// denseForward is edgeMapDense in forward direction: every vertex is
// checked for membership; active vertices push along out-edges with
// atomics. Work is divided by vertex count, which is the load-imbalance
// behaviour §IV.A attributes to unpartitioned layouts.
func (e *Engine) denseForward(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	type acc struct {
		count, outDeg int64
		_             [6]int64
	}
	accs := make([]acc, e.pool.Threads())
	e.pool.ParallelForChunks(g.NumVertices(), sched.DefaultChunk, func(w, lo, hi int) {
		a := &accs[w]
		for vi := lo; vi < hi; vi++ {
			u := graph.VID(vi)
			if !cur.Get(u) {
				continue
			}
			for _, v := range g.OutNeighbors(u) {
				if cond(v) && op.UpdateAtomic(u, v) && next.TestAndSet(v) {
					a.count++
					a.outDeg += g.OutDegree(v)
				}
			}
		}
	})
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(g.NumVertices(), next)
	nf.SetStats(count, outDeg)
	return nf
}

// denseBackward is edgeMapDense in backward direction: every destination
// whose Cond holds pulls from in-edges with active sources. Each
// destination is written by exactly one worker, so plain updates suffice,
// and the scan exits as soon as Cond(v) turns false.
func (e *Engine) denseBackward(f *frontier.Frontier, op api.EdgeOp) *frontier.Frontier {
	g := e.g
	cond := op.CondOf()
	cur := f.Bitmap()
	next := frontier.NewBitmap(g.NumVertices())
	type acc struct {
		count, outDeg int64
		_             [6]int64
	}
	accs := make([]acc, e.pool.Threads())
	e.pool.ParallelForChunks(g.NumVertices(), sched.DefaultChunk, func(w, lo, hi int) {
		a := &accs[w]
		for vi := lo; vi < hi; vi++ {
			v := graph.VID(vi)
			if !cond(v) {
				continue
			}
			added := false
			for _, u := range g.InNeighbors(v) {
				if !cur.Get(u) {
					continue
				}
				if op.Update(u, v) {
					if !added {
						next.Set(v)
						a.count++
						a.outDeg += g.OutDegree(v)
						added = true
					}
					if !cond(v) {
						break
					}
				}
			}
		}
	})
	var count, outDeg int64
	for i := range accs {
		count += accs[i].count
		outDeg += accs[i].outDeg
	}
	nf := frontier.FromBitmap(g.NumVertices(), next)
	nf.SetStats(count, outDeg)
	return nf
}
