// Command ggrind runs one graph algorithm on one generated graph with a
// chosen engine, layout and partition count, printing timing and engine
// telemetry. It is the interactive counterpart of cmd/experiments.
//
// Examples:
//
//	ggrind -graph twitter-sm -alg PRDelta -system GG-v2 -partitions 384
//	ggrind -graph usaroad-sm -alg BF -system Ligra
//	ggrind -graph livejournal-sm -alg BFS -layout COO -reps 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/trace"
)

func main() {
	var (
		graphName  = flag.String("graph", "twitter-sm", "graph preset: "+strings.Join(gen.PresetNames(), ", "))
		graphFile  = flag.String("file", "", "load graph from file instead of a preset (.el/.adj/.bin[.gz])")
		traceOut   = flag.String("trace", "", "write a per-iteration CSV trace to this file (GG-v2 only)")
		algCode    = flag.String("alg", "PRDelta", "algorithm code: BC CC PR BFS PRDelta SPMV BF BP")
		system     = flag.String("system", "GG-v2", "engine: L, P, GG-v1, GG-v2")
		partitions = flag.Int("partitions", 0, "GG-v2 partition count (0 = default)")
		layout     = flag.String("layout", "auto", "GG-v2 forced layout: auto, CSR, CSC, COO")
		atomics    = flag.Bool("atomics", false, "force atomic updates in the COO layout")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		reps       = flag.Int("reps", 3, "repetitions; the median is reported")
	)
	flag.Parse()

	spec, ok := algorithms.SpecByCode(*algCode)
	if !ok {
		fmt.Fprintf(os.Stderr, "ggrind: unknown algorithm %q\n", *algCode)
		os.Exit(2)
	}

	var g *graph.Graph
	label := *graphName
	if *graphFile != "" {
		label = *graphFile
		fmt.Printf("loading %s...\n", label)
		var err error
		g, err = gio.Load(*graphFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("building %s...\n", label)
		g = gen.Preset(*graphName)
	}
	st := graph.ComputeStats(label, g)
	fmt.Println(st.String())

	var sys, rsys api.System
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	if *system == "GG-v2" {
		opts := core.Options{Partitions: *partitions, Threads: *threads, ForceAtomics: *atomics, Trace: rec}
		switch strings.ToUpper(*layout) {
		case "AUTO":
		case "CSR":
			opts.Layout = core.LayoutCSR
		case "CSC":
			opts.Layout = core.LayoutCSC
		case "COO":
			opts.Layout = core.LayoutCOO
		default:
			fmt.Fprintf(os.Stderr, "ggrind: unknown layout %q\n", *layout)
			os.Exit(2)
		}
		eng := core.NewEngine(g, opts)
		fmt.Printf("engine: GG-v2 layout=%v partitions=%d threads=%d\n",
			eng.Options().Layout, eng.Options().Partitions, eng.Threads())
		sys = eng
		if spec.NeedsReverse {
			rsys = core.NewEngine(g.Reverse(), opts)
		}
	} else {
		sys = bench.BuildSystem(*system, g, *partitions, *threads)
		if spec.NeedsReverse {
			rsys = bench.BuildSystem(*system, g.Reverse(), *partitions, *threads)
		}
		fmt.Printf("engine: %s threads=%d\n", sys.Name(), sys.Threads())
	}

	src := algorithms.SourceVertex(g)
	fmt.Printf("running %s (source=%d, %d reps)...\n", spec.Code, src, *reps)
	var best time.Duration
	for i := 0; i < *reps; i++ {
		start := time.Now()
		spec.Run(sys, rsys, src)
		d := time.Since(start)
		fmt.Printf("  rep %d: %v\n", i+1, d)
		if best == 0 || d < best {
			best = d
		}
	}
	fmt.Printf("best: %v  (%.1f Medges/s)\n", best,
		float64(g.NumEdges())/best.Seconds()/1e6)
	if eng, ok := sys.(*core.Engine); ok {
		fmt.Printf("telemetry: %s\n", eng.Telemetry().String())
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ggrind: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (%s)\n", *traceOut, rec.String())
	}
}
