// Package frontier implements the three frontier representations of the
// paper: sparse vertex lists, dense bitmaps, and the density statistics
// (|F| + Σ out-deg) that Algorithm 2 uses to pick a traversal.
package frontier

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
)

// Bitmap is a fixed-size bitset over vertex IDs with both plain and
// atomic mutation. Engines use atomic set when multiple workers may
// target the same word (forward traversals) and plain set on the
// partition-exclusive paths where the paper drops atomics.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty bitmap over n vertices.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of vertices the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Get reports whether v is set.
func (b *Bitmap) Get(v graph.VID) bool {
	return b.words[v>>6]&(1<<(v&63)) != 0
}

// Set sets v without synchronisation. Safe when each word is written by
// at most one goroutine (disjoint vertex ranges).
func (b *Bitmap) Set(v graph.VID) {
	b.words[v>>6] |= 1 << (v & 63)
}

// TestAndSet atomically sets v and reports whether this call changed it
// from 0 to 1. Used to claim a vertex exactly once across workers.
func (b *Bitmap) TestAndSet(v graph.VID) bool {
	w := &b.words[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Clear resets all bits.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// CountRange returns the number of set bits in [lo,hi).
func (b *Bitmap) CountRange(lo, hi graph.VID) int64 {
	if lo >= hi {
		return 0
	}
	var c int64
	loW, hiW := lo>>6, (hi-1)>>6
	if loW == hiW {
		mask := (^uint64(0) << (lo & 63)) & (^uint64(0) >> (63 - (hi-1)&63))
		return int64(bits.OnesCount64(b.words[loW] & mask))
	}
	c += int64(bits.OnesCount64(b.words[loW] & (^uint64(0) << (lo & 63))))
	for w := loW + 1; w < hiW; w++ {
		c += int64(bits.OnesCount64(b.words[w]))
	}
	c += int64(bits.OnesCount64(b.words[hiW] & (^uint64(0) >> (63 - (hi-1)&63))))
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(graph.VID)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			v := graph.VID(wi*64 + bit)
			if int(v) < b.n {
				fn(v)
			}
			w &= w - 1
		}
	}
}

// ToList materialises the set bits as a sorted vertex list.
func (b *Bitmap) ToList() []graph.VID {
	out := make([]graph.VID, 0, b.Count())
	b.ForEach(func(v graph.VID) { out = append(out, v) })
	return out
}

// Words exposes the backing word array (64 vertices per word, vertex v
// in bit v&63 of word v>>6). Callers must treat it as read-only; engines
// use it to test 64-vertex blocks for activity without per-bit calls.
func (b *Bitmap) Words() []uint64 { return b.words }

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	nb := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(nb.words, b.words)
	return nb
}
