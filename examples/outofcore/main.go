// Out-of-core example: shard a graph to disk GraphChi-style (the system
// the paper's partitioning-by-destination comes from) and run PageRank
// with one sequential shard pass per iteration — resident memory is
// bounded by the rank arrays plus a single shard, independent of |E|.
package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/shard"
)

func main() {
	g := repro.Preset("livejournal-sm")
	fmt.Printf("graph: livejournal-sm, %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	dir := filepath.Join(os.TempDir(), "ggrind-shards")
	defer os.RemoveAll(dir)

	st, err := shard.Write(dir, g, 24)
	if err != nil {
		panic(err)
	}
	var bytes int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			bytes += info.Size()
		}
	}
	fmt.Printf("sharded to %s: %d shards, %.1f MiB on disk\n",
		dir, st.NumShards(), float64(bytes)/(1<<20))

	outDeg, err := st.OutDegrees()
	if err != nil {
		panic(err)
	}
	ooc, err := shard.PageRank(st, 10, outDeg)
	if err != nil {
		panic(err)
	}

	// Cross-check against the in-memory engine.
	inMem := repro.PageRank(repro.NewEngine(g, repro.Options{}), 10)
	var maxDiff float64
	for v := range ooc {
		if d := math.Abs(ooc[v] - inMem[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("out-of-core vs in-memory PageRank: max diff %.2e\n", maxDiff)
	if maxDiff > 1e-9 {
		panic("results diverge")
	}
	fmt.Println("out-of-core sweep matches the in-memory engine ✓")
}
