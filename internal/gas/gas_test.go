package gas

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ligra"
)

func TestGASDegreeProgram(t *testing.T) {
	g := gen.TinySocial()
	res := Run(core.NewEngine(g, core.Options{}), DegreeProgram())
	if res.Iters != 1 {
		t.Fatalf("iters = %d", res.Iters)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if res.Values[v] != float64(g.InDegree(graph.VID(v))) {
			t.Fatalf("degree[%d] = %v, want %d", v, res.Values[v], g.InDegree(graph.VID(v)))
		}
	}
}

func TestGASPageRankReachesFixedPoint(t *testing.T) {
	// SmallWorld has no dangling vertices, so GAS PR (no dangling
	// redistribution) and the plain power method share a fixed point.
	g := gen.SmallWorld(512, 8, 0.2, 3)
	want := algorithms.SerialPR(g, 200) // essentially converged (0.85^200)
	for _, sys := range []api.System{
		core.NewEngine(g, core.Options{}),
		ligra.New(g, 0),
	} {
		res := Run(sys, PageRankProgram(g, 1e-13))
		if res.Iters < 5 {
			t.Fatalf("%s: converged suspiciously fast (%d iters)", sys.Name(), res.Iters)
		}
		for v := range want {
			if math.Abs(res.Values[v]-want[v]) > 1e-8 {
				t.Fatalf("%s: GAS PR diverges at %d: %v vs %v",
					sys.Name(), v, res.Values[v], want[v])
			}
		}
	}
}

func TestGASQuiescence(t *testing.T) {
	// A program whose Scatter is always false stops after one superstep
	// regardless of MaxIters.
	g := gen.Chain(32)
	calls := 0
	p := Program{
		Init:    func(graph.VID) float64 { return 1 },
		Gather:  func(_, _ graph.VID, x float64) float64 { calls++; return x },
		Apply:   func(_ graph.VID, _, s float64) float64 { return s },
		Scatter: func(_ graph.VID, _, _ float64) bool { return false },
	}
	res := Run(core.NewEngine(g, core.Options{Threads: 1}), p)
	if res.Iters != 1 {
		t.Fatalf("iters = %d, want 1", res.Iters)
	}
	if calls != 31 { // one gather per edge
		t.Fatalf("gather calls = %d, want 31", calls)
	}
}

func TestGASMaxIters(t *testing.T) {
	g := gen.Complete(8)
	p := PageRankProgram(g, 0) // never quiesces on its own
	p.MaxIters = 3
	res := Run(core.NewEngine(g, core.Options{Threads: 2}), p)
	if res.Iters != 3 {
		t.Fatalf("iters = %d, want 3", res.Iters)
	}
}
