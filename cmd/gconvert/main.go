// Command gconvert converts graphs between the supported on-disk
// formats (see internal/gio): SNAP edge lists (.el/.txt/.edges), Ligra
// AdjacencyGraph (.adj), and the compact binary format (.bin/.ggr), each
// optionally gzip-compressed (.gz). It can also materialise a generated
// preset to disk, which is how the repo's datasets are exported for use
// with the original C++ systems.
//
// Examples:
//
//	gconvert -in graph.el -out graph.adj
//	gconvert -preset twitter-sm -out twitter.bin.gz
//	gconvert -in big.adj -out big.el.gz -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph file")
		preset = flag.String("preset", "", "generate this preset instead of reading a file: "+strings.Join(gen.PresetNames(), ", "))
		out    = flag.String("out", "", "output graph file (required)")
		stats  = flag.Bool("stats", false, "print graph statistics")
	)
	flag.Parse()
	if *out == "" || (*in == "") == (*preset == "") {
		fmt.Fprintln(os.Stderr, "gconvert: need -out and exactly one of -in / -preset")
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	var label string
	if *in != "" {
		label = *in
		var err error
		g, err = gio.Load(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
			os.Exit(1)
		}
	} else {
		label = *preset
		g = gen.Preset(*preset)
	}

	if *stats {
		fmt.Println(graph.ComputeStats(label, g).String())
	}
	if err := gio.Save(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
		os.Exit(1)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gconvert: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, %.1f KiB\n",
		*out, g.NumVertices(), g.NumEdges(), float64(fi.Size())/1024)
}
