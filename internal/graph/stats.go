package graph

import (
	"fmt"
	"math/bits"
)

// Stats summarises a graph in the style of the paper's Table I.
type Stats struct {
	Name         string
	Vertices     int
	Edges        int64
	AvgDegree    float64
	MaxOutDegree int64
	MaxInDegree  int64
	ZeroOutDeg   int     // vertices with no out-edges
	ZeroInDeg    int     // vertices with no in-edges
	GiniOut      float64 // degree-inequality coefficient; ≈0 uniform, →1 skewed
}

// ComputeStats computes summary statistics for g.
func ComputeStats(name string, g *Graph) Stats {
	s := Stats{
		Name:     name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Vertices)
	}
	s.MaxOutDegree = g.MaxOutDegree()
	s.MaxInDegree = g.MaxInDegree()
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(VID(v)) == 0 {
			s.ZeroOutDeg++
		}
		if g.InDegree(VID(v)) == 0 {
			s.ZeroInDeg++
		}
	}
	s.GiniOut = giniOutDegree(g)
	return s
}

// giniOutDegree computes the Gini coefficient of the out-degree
// distribution using a counting sort over degree values, O(V + maxDeg).
func giniOutDegree(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return 0
	}
	maxDeg := g.MaxOutDegree()
	counts := make([]int64, maxDeg+1)
	for v := 0; v < n; v++ {
		counts[g.OutDegree(VID(v))]++
	}
	// Gini = 1 - 2·Σ_i (cumulative share of degree mass) / n, computed on
	// the sorted sequence of degrees (ascending by construction here).
	var cum, weighted int64
	var rank int64
	for d := int64(0); d <= maxDeg; d++ {
		for c := int64(0); c < counts[d]; c++ {
			rank++
			cum += d
			weighted += cum
		}
	}
	total := float64(cum)
	if total == 0 {
		return 0
	}
	return 1 - 2*float64(weighted)/(float64(n)*total) + 1/float64(n)
}

// DegreeHistogram returns counts of out-degrees bucketed by log2: bucket i
// counts vertices with out-degree in [2^i, 2^(i+1)); bucket 0 also counts
// degree-0 vertices separately in the returned zero count.
func DegreeHistogram(g *Graph) (buckets []int64, zero int64) {
	buckets = make([]int64, 33)
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(VID(v))
		if d == 0 {
			zero++
			continue
		}
		buckets[bits.Len64(uint64(d))-1]++
	}
	// Trim trailing empty buckets.
	last := len(buckets)
	for last > 0 && buckets[last-1] == 0 {
		last--
	}
	return buckets[:last], zero
}

// String renders stats as a Table-I-style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-16s |V|=%-9d |E|=%-10d avg=%.2f maxOut=%d maxIn=%d gini=%.3f",
		s.Name, s.Vertices, s.Edges, s.AvgDegree, s.MaxOutDegree, s.MaxInDegree, s.GiniOut)
}

// ApproxDiameterHint returns a crude lower bound on the graph diameter by
// running a double-sweep BFS from vertex 0 (ignoring direction). It exists
// for test assertions that road-like graphs have much larger diameter than
// social-like graphs; it is not used by any engine.
func ApproxDiameterHint(g *Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	far, _ := bfsFarthest(g, 0)
	_, d := bfsFarthest(g, far)
	return d
}

func bfsFarthest(g *Graph, start VID) (VID, int) {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []VID{start}
	last, lastD := start, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
				if int(dist[w]) > lastD {
					lastD = int(dist[w])
					last = w
				}
			}
		}
		for _, w := range g.InNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
				if int(dist[w]) > lastD {
					lastD = int(dist[w])
					last = w
				}
			}
		}
	}
	return last, lastD
}

// CheckSymmetric reports whether for every edge (u,v) the reverse edge
// (v,u) is present; undirected datasets in Table I are stored as two
// directed arcs.
func CheckSymmetric(g *Graph) bool {
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(VID(v)) {
			if !hasEdge(g, w, VID(v)) {
				return false
			}
		}
	}
	return true
}

func hasEdge(g *Graph, u, v VID) bool {
	ns := g.OutNeighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

// HasEdge reports whether the directed edge (u,v) exists (binary search on
// the sorted adjacency list).
func HasEdge(g *Graph, u, v VID) bool { return hasEdge(g, u, v) }
