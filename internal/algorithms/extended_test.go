package algorithms

import (
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ligra"
)

// Tests for the beyond-Table-II applications (KCore, MIS, Radii).

func symmetricTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"orkutish": gen.Symmetrise(gen.PowerLaw(1<<10, 1<<13, 2.3, 11)),
		"road":     gen.TinyRoad(),
		"clique":   gen.Complete(12),
	}
}

func extendedSystems(t *testing.T, g *graph.Graph) map[string]api.System {
	return map[string]api.System{
		"ggv2":     core.NewEngine(g, core.Options{}),
		"ggv2-coo": core.NewEngine(g, core.Options{Layout: core.LayoutCOO}),
		"ligra":    ligra.New(g, 0),
		"ooc":      oocEngine(t, g),
		"ooc-nopf": oocNoPrefetchEngine(t, g),
		"ooc-win":  oocWindowEngine(t, g, 4),
	}
}

func TestKCoreAgreesWithSerial(t *testing.T) {
	for gname, g := range symmetricTestGraphs() {
		want := SerialKCore(g)
		for sname, sys := range extendedSystems(t, g) {
			res := KCore(sys)
			for v := range want {
				if res.Coreness[v] != want[v] {
					t.Fatalf("%s/%s: coreness[%d] = %d, want %d",
						gname, sname, v, res.Coreness[v], want[v])
				}
			}
		}
	}
}

func TestKCoreClique(t *testing.T) {
	// A k-clique has coreness k-1 everywhere and degeneracy k-1.
	g := gen.Complete(8)
	res := KCore(core.NewEngine(g, core.Options{}))
	for v, c := range res.Coreness {
		if c != 7 {
			t.Fatalf("clique coreness[%d] = %d, want 7", v, c)
		}
	}
	if res.MaxCore != 7 {
		t.Fatalf("max core %d, want 7", res.MaxCore)
	}
}

func TestKCoreStar(t *testing.T) {
	// A symmetric star is 1-degenerate: everything has coreness 1.
	g := gen.Symmetrise(gen.Star(32))
	res := KCore(core.NewEngine(g, core.Options{}))
	for v, c := range res.Coreness {
		if c != 1 {
			t.Fatalf("star coreness[%d] = %d, want 1", v, c)
		}
	}
}

func TestMISValidOnAllEnginesAndGraphs(t *testing.T) {
	for gname, g := range symmetricTestGraphs() {
		for sname, sys := range extendedSystems(t, g) {
			res := MIS(sys)
			if msg := VerifyMIS(g, res.InSet); msg != "" {
				t.Fatalf("%s/%s: invalid MIS: %s", gname, sname, msg)
			}
		}
	}
}

func TestMISDeterministicAcrossEngines(t *testing.T) {
	// Priorities are deterministic, so the chosen set must be identical
	// on every engine.
	g := gen.TinyRoad()
	var want []bool
	for sname, sys := range extendedSystems(t, g) {
		res := MIS(sys)
		if want == nil {
			want = res.InSet
			continue
		}
		for v := range want {
			if res.InSet[v] != want[v] {
				t.Fatalf("%s: MIS differs at vertex %d", sname, v)
			}
		}
	}
}

func TestMISCliquePicksExactlyOne(t *testing.T) {
	g := gen.Complete(10)
	res := MIS(core.NewEngine(g, core.Options{}))
	count := 0
	for _, in := range res.InSet {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("clique MIS size %d, want 1", count)
	}
}

func TestRadiiAgreesWithSerial(t *testing.T) {
	for gname, g := range symmetricTestGraphs() {
		want := SerialRadii(g)
		for sname, sys := range extendedSystems(t, g) {
			res := Radii(sys)
			for v := range want {
				if res.Ecc[v] != want[v] {
					t.Fatalf("%s/%s: ecc[%d] = %d, want %d",
						gname, sname, v, res.Ecc[v], want[v])
				}
			}
		}
	}
}

func TestRadiiRoadDiameterLarge(t *testing.T) {
	// The lattice's estimated diameter must reflect its large true
	// diameter (≥ grid side).
	g := gen.TinyRoad()
	res := Radii(core.NewEngine(g, core.Options{}))
	if res.DiameterEst < 40 {
		t.Fatalf("road diameter estimate %d implausibly small", res.DiameterEst)
	}
	social := gen.Symmetrise(gen.PowerLaw(1<<10, 1<<13, 2.3, 11))
	sres := Radii(core.NewEngine(social, core.Options{}))
	if sres.DiameterEst >= res.DiameterEst {
		t.Fatalf("social diameter %d should be far below road %d",
			sres.DiameterEst, res.DiameterEst)
	}
}

func TestTopKByOutDegree(t *testing.T) {
	g := gen.Star(100)
	top := topKByOutDegree(g, 3)
	if len(top) != 3 || top[0] != 0 {
		t.Fatalf("top = %v, want centre first", top)
	}
	small := gen.Chain(3)
	if got := topKByOutDegree(small, 64); len(got) != 3 {
		t.Fatalf("k capped at n: %d", len(got))
	}
}

func TestColoringProperOnAllGraphs(t *testing.T) {
	for gname, g := range symmetricTestGraphs() {
		for sname, sys := range extendedSystems(t, g) {
			res := Coloring(sys)
			if msg := VerifyColoring(g, res.Colors); msg != "" {
				t.Fatalf("%s/%s: invalid colouring: %s", gname, sname, msg)
			}
			if res.NumColors < 2 && g.NumEdges() > 0 {
				t.Fatalf("%s/%s: %d colours implausible", gname, sname, res.NumColors)
			}
		}
	}
}

func TestColoringCliqueNeedsNColors(t *testing.T) {
	g := gen.Complete(7)
	res := Coloring(core.NewEngine(g, core.Options{}))
	if res.NumColors != 7 {
		t.Fatalf("clique coloured with %d colours, want 7", res.NumColors)
	}
}

func TestColoringDeterministicAcrossEngines(t *testing.T) {
	g := gen.TinyRoad()
	var want []int32
	for sname, sys := range extendedSystems(t, g) {
		res := Coloring(sys)
		if want == nil {
			want = res.Colors
			continue
		}
		for v := range want {
			if res.Colors[v] != want[v] {
				t.Fatalf("%s: colour differs at %d", sname, v)
			}
		}
	}
}

func TestTriangleCountAgreesWithSerial(t *testing.T) {
	for gname, g := range symmetricTestGraphs() {
		want := SerialTriangleCount(g)
		for sname, sys := range extendedSystems(t, g) {
			got := TriangleCount(sys).Triangles
			if got != want {
				t.Fatalf("%s/%s: %d triangles, want %d", gname, sname, got, want)
			}
		}
	}
}

func TestTriangleCountClosedForms(t *testing.T) {
	// K_n has C(n,3) triangles.
	g := gen.Complete(9)
	if got := TriangleCount(core.NewEngine(g, core.Options{})).Triangles; got != 84 {
		t.Fatalf("K9 triangles = %d, want 84", got)
	}
	// A tree has none.
	road := gen.Symmetrise(gen.Chain(64))
	if got := TriangleCount(core.NewEngine(road, core.Options{})).Triangles; got != 0 {
		t.Fatalf("path triangles = %d, want 0", got)
	}
}
