package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 8, 0.57, 0.19, 0.19, 1)
	b := RMAT(8, 8, 0.57, 0.19, 0.19, 1)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed diverges at edge %d", i)
		}
	}
	c := RMAT(8, 8, 0.57, 0.19, 0.19, 2)
	different := c.NumEdges() != a.NumEdges()
	if !different {
		ec := c.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				different = true
				break
			}
		}
	}
	if !different {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSizes(t *testing.T) {
	g := RMAT(10, 16, 0.57, 0.19, 0.19, 3)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 16*1024 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATIsSkewed(t *testing.T) {
	g := RMAT(12, 16, 0.57, 0.19, 0.19, 4)
	s := graph.ComputeStats("rmat", g)
	if s.GiniOut < 0.5 {
		t.Fatalf("RMAT should be skewed, gini = %v", s.GiniOut)
	}
	if s.MaxOutDegree < 10*int64(s.AvgDegree) {
		t.Fatalf("RMAT should have hubs: max %d, avg %v", s.MaxOutDegree, s.AvgDegree)
	}
}

func TestPowerLawDegreesSkewed(t *testing.T) {
	g := PowerLaw(1<<12, 1<<16, 2.0, 5)
	if g.NumVertices() != 1<<12 || g.NumEdges() != 1<<16 {
		t.Fatalf("sizes: %d/%d", g.NumVertices(), g.NumEdges())
	}
	s := graph.ComputeStats("pl", g)
	if s.GiniOut < 0.5 {
		t.Fatalf("power-law should be skewed, gini = %v", s.GiniOut)
	}
}

func TestRoadGridShape(t *testing.T) {
	g := RoadGrid(20, 30, 6)
	if g.NumVertices() != 600 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !graph.CheckSymmetric(g) {
		t.Fatal("road grid should be symmetric")
	}
	if d := g.MaxOutDegree(); d > 4 {
		t.Fatalf("lattice degree %d > 4", d)
	}
	// Lattice diameter is near rows+cols, far larger than a social
	// graph's.
	if dia := graph.ApproxDiameterHint(g); dia < 30 {
		t.Fatalf("road diameter hint too small: %d", dia)
	}
}

func TestRoadVsSocialDiameter(t *testing.T) {
	road := TinyRoad()
	social := TinySocial()
	dr := graph.ApproxDiameterHint(road)
	ds := graph.ApproxDiameterHint(social)
	if dr < 4*ds {
		t.Fatalf("road diameter (%d) should dwarf social (%d)", dr, ds)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(512, 4096, 7)
	if g.NumEdges() != 4096 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	s := graph.ComputeStats("er", g)
	if s.GiniOut > 0.5 {
		t.Fatalf("ER should be near-uniform, gini = %v", s.GiniOut)
	}
}

func TestSymmetrise(t *testing.T) {
	g := Chain(4) // 0→1→2→3
	s := Symmetrise(g)
	if !graph.CheckSymmetric(s) {
		t.Fatal("symmetrise failed")
	}
	if s.NumEdges() != 6 {
		t.Fatalf("m = %d, want 6", s.NumEdges())
	}
}

func TestFixtures(t *testing.T) {
	if g := Chain(5); g.NumEdges() != 4 || g.OutDegree(4) != 0 {
		t.Fatal("chain malformed")
	}
	if g := Star(5); g.OutDegree(0) != 4 || g.InDegree(0) != 0 {
		t.Fatal("star malformed")
	}
	if g := Complete(4); g.NumEdges() != 12 {
		t.Fatal("complete malformed")
	}
}

func TestPaperExampleMatchesFigure1(t *testing.T) {
	g := PaperExample()
	if g.NumVertices() != 6 || g.NumEdges() != 14 {
		t.Fatalf("paper example: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	// CSR offsets from Figure 1: 0 5 5 6 8 9 14.
	want := []int64{0, 5, 5, 6, 8, 9, 14}
	off := g.OutOffsets()
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("CSR offsets %v, want %v", off, want)
		}
	}
	// CSC offsets from Figure 1: 0 1 3 5 7 11 14.
	wantIn := []int64{0, 1, 3, 5, 7, 11, 14}
	inOff := g.InOffsets()
	for i := range wantIn {
		if inOff[i] != wantIn[i] {
			t.Fatalf("CSC offsets %v, want %v", inOff, wantIn)
		}
	}
}

func TestAllPresetsBuildAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("presets are large; skipped in -short")
	}
	for _, p := range Presets() {
		g := p.Build()
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", p.Name)
		}
		if p.Directed == false && !graph.CheckSymmetric(g) {
			t.Fatalf("%s: declared undirected but not symmetric", p.Name)
		}
	}
}

func TestPresetNamesStable(t *testing.T) {
	names := PresetNames()
	if len(names) != 8 {
		t.Fatalf("want 8 presets (Table I), got %d", len(names))
	}
	if names[0] != "twitter-sm" {
		t.Fatalf("first preset %q", names[0])
	}
}

func TestPresetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Preset("nope")
}

func TestSortedPresetKinds(t *testing.T) {
	kinds := SortedPresetKinds()
	if len(kinds) == 0 {
		t.Fatal("no kinds")
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatal("kinds not sorted/unique")
		}
	}
}

func TestPresetsDeterministicAcrossCalls(t *testing.T) {
	// Presets must rebuild identically: experiments in different
	// processes compare results on "the same" graph.
	a := Preset("yahoo-sm")
	b := Preset("yahoo-sm")
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("preset edge count varies")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("preset diverges at edge %d", i)
		}
	}
}
