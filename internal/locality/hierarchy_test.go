package locality

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hilbert"
)

func TestHierarchyInnerHitsShieldOuter(t *testing.T) {
	h := NewHierarchy(
		LevelConfig{Name: "L2", Config: CacheConfig{SizeBytes: 1 << 12, LineBytes: 64, Assoc: 4}},
		LevelConfig{Name: "LLC", Config: CacheConfig{SizeBytes: 1 << 14, LineBytes: 64, Assoc: 8}},
	)
	// Touch one line repeatedly: outer level sees exactly one access.
	for i := 0; i < 100; i++ {
		h.Access(0)
	}
	st := h.Stats()
	if st[0].Accesses != 100 || st[0].Misses != 1 {
		t.Fatalf("L2 stats: %+v", st[0])
	}
	if st[1].Accesses != 1 {
		t.Fatalf("LLC should see only the L2 miss, saw %d", st[1].Accesses)
	}
	if h.MemoryAccesses() != 1 {
		t.Fatalf("memory accesses = %d", h.MemoryAccesses())
	}
}

func TestHierarchyMidWorkingSet(t *testing.T) {
	// A working set bigger than L2 but inside LLC: L2 thrashes on a
	// cyclic scan, LLC absorbs everything after warmup.
	h := NewHierarchy(
		LevelConfig{Name: "L2", Config: CacheConfig{SizeBytes: 1 << 12, LineBytes: 64, Assoc: 4}},   // 64 lines
		LevelConfig{Name: "LLC", Config: CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Assoc: 16}}, // 1024 lines
	)
	const lines = 256 // 4× L2, ¼ LLC
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < lines; i++ {
			h.Access(uint64(i * 64))
		}
	}
	st := h.Stats()
	if st[0].MissRate < 0.9 {
		t.Fatalf("L2 should thrash: %.2f", st[0].MissRate)
	}
	if h.MemoryAccesses() != lines {
		t.Fatalf("memory accesses %d, want %d cold misses only", h.MemoryAccesses(), lines)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := TypicalHierarchy(1 << 16)
	h.Access(0)
	h.Reset()
	for _, s := range h.Stats() {
		if s.Accesses != 0 || s.Misses != 0 {
			t.Fatalf("level %s not reset", s.Name)
		}
	}
}

func TestHierarchyEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHierarchy()
}

func TestHierarchyOnTraversalTrace(t *testing.T) {
	// Partitioning must reduce DRAM traffic in the two-level model just
	// as in the single-level one.
	// Levels scaled to the graph: next array (256 KiB at n=65536) dwarfs
	// both levels, as the paper's arrays dwarf a real L2/LLC.
	g := gen.Preset("livejournal-sm")
	dram := func(p int) int64 {
		h := NewHierarchy(
			LevelConfig{Name: "L2", Config: CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 8}},
			LevelConfig{Name: "LLC", Config: CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 16}},
		)
		ReplayEdgeTraversal(g, p, KindCOOForward, 1, hilbert.BySource,
			ConsumerFunc(func(a uint64) { h.Access(a) }))
		return h.MemoryAccesses()
	}
	if d48 := dram(48); d48 >= dram(4) {
		t.Fatalf("partitioning did not reduce DRAM traffic: P=4 %d vs P=48 %d", dram(4), d48)
	}
}
