// Package trace records per-iteration execution telemetry: for every
// EdgeMap, the frontier statistics going in, the class/layout chosen,
// and the wall time. Traces explain *why* a run performed as it did —
// the PRDelta dense→medium→sparse progression of the paper's §IV.A is
// directly visible in a trace — and export to CSV for offline plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded EdgeMap iteration.
type Event struct {
	Seq        int
	Class      string // sparse / medium / dense (or a forced layout)
	FrontierSz int64
	ActiveDeg  int64 // Σ out-degree over the frontier
	Duration   time.Duration
}

// Recorder accumulates events; safe for concurrent use (engines call it
// from the coordinating goroutine, but tools may read concurrently).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record appends one event, assigning its sequence number.
func (r *Recorder) Record(class string, frontierSz, activeDeg int64, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{
		Seq: len(r.events), Class: class,
		FrontierSz: frontierSz, ActiveDeg: activeDeg, Duration: d,
	})
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// WriteCSV emits "seq,class,frontier,activedeg,micros" rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seq,class,frontier,activedeg,micros"); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d\n",
			e.Seq, e.Class, e.FrontierSz, e.ActiveDeg, e.Duration.Microseconds()); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a trace per class.
type Summary struct {
	Class    string
	Count    int
	Total    time.Duration
	MaxFront int64
}

// Summarise groups events by class, ordered by first appearance.
func (r *Recorder) Summarise() []Summary {
	events := r.Events()
	byClass := map[string]*Summary{}
	var order []string
	for _, e := range events {
		s, ok := byClass[e.Class]
		if !ok {
			s = &Summary{Class: e.Class}
			byClass[e.Class] = s
			order = append(order, e.Class)
		}
		s.Count++
		s.Total += e.Duration
		if e.FrontierSz > s.MaxFront {
			s.MaxFront = e.FrontierSz
		}
	}
	out := make([]Summary, 0, len(order))
	for _, c := range order {
		out = append(out, *byClass[c])
	}
	return out
}

// String renders the summary compactly, classes sorted for stability.
func (r *Recorder) String() string {
	sums := r.Summarise()
	sort.Slice(sums, func(i, j int) bool { return sums[i].Class < sums[j].Class })
	var b strings.Builder
	for i, s := range sums {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s×%d (%.1fms, max|F|=%d)",
			s.Class, s.Count, s.Total.Seconds()*1000, s.MaxFront)
	}
	return b.String()
}
