package partition

import "repro/internal/graph"

// Storage-size model of §II.E / Figure 4. b_e is the bytes per edge-list
// index (we use 8: int64 offsets) and b_v the bytes per vertex ID (4:
// uint32).

// ByteSizes holds the modelled storage of each layout at a given P.
type ByteSizes struct {
	P           int
	CSRPruned   int64 // r(p)·|V|·(b_e+b_v) + |E|·b_v
	CSRUnpruned int64 // p·|V|·b_e + |E|·b_v  (Polymer: zero-degree kept)
	CSC         int64 // |E|·b_v + |V|·b_e    (unpartitioned, §II.C)
	COO         int64 // 2·|E|·b_v            (independent of p)
}

// Model evaluates the storage model for graph g at partition count p with
// the given index/vertex byte widths.
func Model(g *graph.Graph, p int, be, bv int64) ByteSizes {
	v, e := int64(g.NumVertices()), g.NumEdges()
	pt := ByDestination(g, p, BalanceEdges)
	r := ReplicationFactor(g, pt)
	return ByteSizes{
		P:           p,
		CSRPruned:   int64(r*float64(v)*float64(be+bv)) + e*bv,
		CSRUnpruned: int64(p)*v*be + e*bv,
		CSC:         e*bv + v*be,
		COO:         2 * e * bv,
	}
}

// DefaultBe and DefaultBv are the widths used throughout the repo.
const (
	DefaultBe = 8 // int64 edge-list offsets
	DefaultBv = 4 // uint32 vertex IDs
)

// Curve evaluates the model over a sweep of partition counts, reproducing
// Figure 4 for one graph.
func Curve(g *graph.Graph, ps []int) []ByteSizes {
	out := make([]ByteSizes, len(ps))
	for i, p := range ps {
		out[i] = Model(g, p, DefaultBe, DefaultBv)
	}
	return out
}

// MeasuredPCSRBytes returns the actual bytes consumed by a built pruned
// PCSR (IDs + offsets + targets), for validating the analytic model.
func MeasuredPCSRBytes(pc *PCSR) int64 {
	var b int64
	for _, p := range pc.Parts {
		b += int64(len(p.Verts))*DefaultBv + int64(len(p.Off))*DefaultBe + int64(len(p.Dst))*DefaultBv
	}
	return b
}

// MeasuredPCOOBytes returns the actual bytes of a built PCOO.
func MeasuredPCOOBytes(pc *PCOO) int64 {
	var b int64
	for _, p := range pc.Parts {
		b += int64(len(p.Src))*DefaultBv + int64(len(p.Dst))*DefaultBv
	}
	return b
}
