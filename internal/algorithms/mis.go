package algorithms

import (
	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// MISResult holds a maximal independent set as a membership array.
type MISResult struct {
	InSet  []bool
	Rounds int
}

// misPriority is the deterministic random priority used to break ties;
// lower wins.
func misPriority(v graph.VID) uint64 { return graph.Mix64(uint64(v) + 0x15ca1e) }

// MIS computes a maximal independent set with Luby's algorithm over
// deterministic priorities: a vertex joins the set when no undecided
// neighbour has a lower priority, and its neighbours drop out. Intended
// for symmetric graphs (independence is an undirected notion).
func MIS(sys api.System) MISResult {
	g := sys.Graph()
	n := g.NumVertices()
	const (
		undecided int32 = 0
		inSet     int32 = 1
		outOfSet  int32 = 2
	)
	state := NewI32s(n, undecided)
	// blocked[v] = 1 when an undecided in-neighbour with lower priority
	// exists this round; rebuilt each round via EdgeMap. Stored as an
	// atomic int array because the sparse path writes it from several
	// workers (all writers store the same value).
	blocked := NewI32s(n, 0)

	mark := api.EdgeOp{
		Cond: func(v graph.VID) bool { return state.Get(v) == undecided },
		Update: func(u, v graph.VID) bool {
			if misPriority(u) < misPriority(v) {
				blocked.Set(v, 1)
			}
			return false
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			if misPriority(u) < misPriority(v) {
				blocked.Set(v, 1)
			}
			return false
		},
	}
	exclude := api.EdgeOp{
		Cond: func(v graph.VID) bool { return state.Get(v) == undecided },
		Update: func(u, v graph.VID) bool {
			return state.CompareAndSet(v, undecided, outOfSet)
		},
		UpdateAtomic: func(u, v graph.VID) bool {
			return state.AtomicCompareAndSet(v, undecided, outOfSet)
		},
	}

	res := MISResult{}
	all := frontier.All(g)
	undecidedF := sys.VertexFilter(all, func(v graph.VID) bool { return true })
	for !undecidedF.IsEmpty() {
		res.Rounds++
		sys.VertexMap(undecidedF, func(v graph.VID) { blocked.Set(v, 0) })
		sys.EdgeMap(undecidedF, mark, api.DirForward)
		// Winners: undecided and not blocked by any undecided neighbour.
		winners := sys.VertexFilter(undecidedF, func(v graph.VID) bool {
			return state.Get(v) == undecided && blocked.Get(v) == 0
		})
		sys.VertexMap(winners, func(v graph.VID) { state.Set(v, inSet) })
		sys.EdgeMap(winners, exclude, api.DirForward)
		undecidedF = sys.VertexFilter(undecidedF, func(v graph.VID) bool {
			return state.Get(v) == undecided
		})
		if res.Rounds > n+1 {
			panic("algorithms: MIS failed to converge")
		}
	}
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		out[v] = state.Get(graph.VID(v)) == inSet
	}
	return MISResult{InSet: out, Rounds: res.Rounds}
}

// VerifyMIS checks independence (no edge inside the set) and maximality
// (every non-member has a member neighbour) on a symmetric graph.
// Returns "" when valid, else a description of the violation.
func VerifyMIS(g *graph.Graph, inSet []bool) string {
	for v := 0; v < g.NumVertices(); v++ {
		if inSet[v] {
			for _, w := range g.OutNeighbors(graph.VID(v)) {
				if int(w) != v && inSet[w] {
					return "edge inside set"
				}
			}
		} else {
			covered := false
			for _, w := range g.OutNeighbors(graph.VID(v)) {
				if inSet[w] {
					covered = true
					break
				}
			}
			if !covered && g.OutDegree(graph.VID(v)) > 0 {
				return "non-member with no member neighbour"
			}
			if g.OutDegree(graph.VID(v)) == 0 {
				return "isolated vertex excluded"
			}
		}
	}
	return ""
}
