package algorithms

import (
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// TCResult holds the triangle count of a symmetric graph.
type TCResult struct {
	Triangles int64
}

// TriangleCount counts triangles on a symmetric graph with the standard
// per-edge sorted-adjacency intersection (Ligra's TC): each triangle
// {a<b<c} is counted once via its smallest-vertex orientation. The
// parallel loop is a VertexMap over all vertices; the intersection work
// per vertex is proportional to Σ deg(neighbours), so the engine's
// chunk self-scheduling provides the load balance.
func TriangleCount(sys api.System) TCResult {
	g := sys.Graph()
	var total int64
	sys.VertexMap(frontier.All(g), func(u graph.VID) {
		var local int64
		nu := higherNeighbors(g, u)
		for _, v := range nu {
			local += intersectCount(nu, higherNeighbors(g, v))
		}
		if local != 0 {
			atomic.AddInt64(&total, local)
		}
	})
	return TCResult{Triangles: total}
}

// higherNeighbors returns u's distinct out-neighbours with ID > u
// (adjacency lists are sorted; duplicates collapse).
func higherNeighbors(g *graph.Graph, u graph.VID) []graph.VID {
	ns := g.OutNeighbors(u)
	lo := 0
	for lo < len(ns) && ns[lo] <= u {
		lo++
	}
	ns = ns[lo:]
	// Deduplicate multi-edges in place-free fashion (lists are sorted).
	out := make([]graph.VID, 0, len(ns))
	for i, v := range ns {
		if i == 0 || ns[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// intersectCount counts common elements of two sorted duplicate-free
// lists with the two-pointer walk.
func intersectCount(a, b []graph.VID) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// SerialTriangleCount is the oracle: brute-force enumeration over edge
// pairs via a hash set, O(Σ deg²).
func SerialTriangleCount(g *graph.Graph) int64 {
	n := g.NumVertices()
	adj := make(map[uint64]bool)
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(graph.VID(u)) {
			adj[uint64(u)<<32|uint64(v)] = true
		}
	}
	var count int64
	for u := 0; u < n; u++ {
		nu := higherNeighbors(g, graph.VID(u)) // sorted, deduplicated
		for _, v := range nu {
			for _, w := range higherNeighbors(g, v) {
				if adj[uint64(u)<<32|uint64(w)] {
					count++
				}
			}
		}
	}
	return count
}
