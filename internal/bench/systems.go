package bench

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/polymer"
)

// SystemNames lists the four systems of Figure 9 in the paper's legend
// order: Ligra (L), Polymer (P), GraphGrind-v1 (GG-v1) and
// GraphGrind-v2 (GG-v2).
func SystemNames() []string { return []string{"L", "P", "GG-v1", "GG-v2"} }

// BuildSystem constructs the named system over g. partitions only
// affects GG-v2 (the baselines fix their partition counts by design:
// Ligra none, Polymer/GG-v1 one per NUMA domain). threads 0 means
// GOMAXPROCS.
func BuildSystem(name string, g *graph.Graph, partitions, threads int) api.System {
	switch name {
	case "L", "Ligra":
		return ligra.New(g, threads)
	case "P", "Polymer":
		return polymer.New(g, polymer.Polymer(), threads)
	case "GG-v1":
		return polymer.New(g, polymer.GGv1(), threads)
	case "GG-v2":
		return core.NewEngine(g, core.Options{Partitions: partitions, Threads: threads})
	default:
		panic(fmt.Sprintf("bench: unknown system %q (have %v)", name, SystemNames()))
	}
}

// SystemPair builds the forward system and, for algorithms that need it
// (BC), the matching reverse system.
func SystemPair(name string, g *graph.Graph, partitions, threads int) (fwd, rev api.System) {
	return BuildSystem(name, g, partitions, threads),
		BuildSystem(name, g.Reverse(), partitions, threads)
}
