package shard

// The shared-cache concurrency battery: the refcount/budget property
// test (sequential randomized ops with invariants checked at every
// observation point, then a concurrent hammer under -race), the
// two-query hammer over real host sessions, the co-scheduling
// accounting regression (concurrent dense PR + CC strictly cheaper
// than the sum of solo runs), and the mid-sweep operator-panic
// teardown with a second session surviving on the same store.

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fakeResident builds a resident shard of exactly edges edges for cache
// property tests (residentBytes = edges*8 + 16).
func fakeResident(idx, edges int) *resident {
	return &resident{
		idx: idx,
		src: make([]graph.VID, edges),
		dst: make([]graph.VID, edges),
		off: []int{0, edges},
	}
}

// checkInvariants asserts the cache's structural invariants — the ones
// the tentpole promises hold at every observation point: accounted
// bytes match the resident set and never exceed the budget, the index
// and the LRU list agree, and no refcount is negative.
func checkInvariants(t *testing.T, c *SharedCache) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*sharedEntry)
		sum += ent.bytes
		n++
		if ent.pins < 0 {
			t.Fatalf("shard %v has negative refcount %d", ent.key.idx, ent.pins)
		}
		if got, ok := c.idx[ent.key]; !ok || got != el {
			t.Fatalf("LRU list and index disagree on shard %v", ent.key.idx)
		}
	}
	if n != len(c.idx) {
		t.Fatalf("LRU holds %d entries but index holds %d", n, len(c.idx))
	}
	if sum != c.bytes {
		t.Fatalf("accounted bytes %d != resident sum %d", c.bytes, sum)
	}
	if c.bytes > c.budget {
		t.Fatalf("resident bytes %d exceed budget %d", c.bytes, c.budget)
	}
}

// TestSharedCacheRefcountProperty drives a randomized op sequence —
// pinning gets, pinned adds, releases — against a budget that can only
// hold a few shards, checking after every single operation that bytes
// never exceed the budget and that no pinned shard has been evicted.
// Shard sizes vary so eviction has to reason in bytes, not counts, and
// some shards exceed the whole budget so the transient (refused
// insert) path is exercised too.
func TestSharedCacheRefcountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	st := &Store{}
	const budget = 1 << 12 // a few mid-size shards
	c := NewSharedCache(budget)

	type pin struct {
		key      cacheKey
		release  func()
		admitted bool
	}
	var pins []pin
	sizeOf := func(i int) int { return 8 + (i%40)*20 } // 8..788 edges; some shards near/over budget alone

	for step := 0; step < 5000; step++ {
		i := rng.Intn(24)
		k := cacheKey{st, i}
		switch op := rng.Intn(10); {
		case op < 4: // fetch-hit path
			if sh, release, ok := c.get(k); ok {
				if sh.idx != i {
					t.Fatalf("get(%d) returned shard %d", i, sh.idx)
				}
				pins = append(pins, pin{k, release, true})
			}
		case op < 7: // load-and-admit path
			release, admitted := c.add(k, fakeResident(i, sizeOf(i)))
			pins = append(pins, pin{k, release, admitted})
		default: // finish an apply
			if len(pins) > 0 {
				j := rng.Intn(len(pins))
				pins[j].release()
				pins = append(pins[:j], pins[j+1:]...)
			}
		}
		checkInvariants(t, c)
		for _, p := range pins {
			if p.admitted && !c.peek(p.key) {
				t.Fatalf("step %d: shard %d evicted while pinned", step, p.key.idx)
			}
		}
	}
	for _, p := range pins {
		p.release()
	}
	checkInvariants(t, c)
	s := c.Stats()
	if s.Pinned != 0 {
		t.Fatalf("all pins released but Stats reports %d pinned", s.Pinned)
	}
	if s.Rejected == 0 {
		t.Fatal("the op mix never exercised the refused-insert (transient) path")
	}
	if s.Evictions == 0 || s.Hits == 0 {
		t.Fatalf("op mix too tame: evictions=%d hits=%d", s.Evictions, s.Hits)
	}
}

// TestSharedCacheConcurrentPins is the same property under real
// concurrency: workers pin, hold and release shards while a sampler
// asserts the byte budget at arbitrary observation points. Each worker
// additionally asserts its own admitted pins stay resident while held
// — under -race this also proves the locking discipline.
func TestSharedCacheConcurrentPins(t *testing.T) {
	st := &Store{}
	const budget = 1 << 12
	c := NewSharedCache(budget)

	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if b := c.Bytes(); b > budget {
					t.Errorf("observed %d resident bytes over budget %d", b, budget)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 2000; step++ {
				i := rng.Intn(16)
				k := cacheKey{st, i}
				sh, release, ok := c.get(k)
				admitted := ok
				if !ok {
					release, admitted = c.add(k, fakeResident(i, 8+(i%40)*20))
				} else if sh.idx != i {
					t.Errorf("get(%d) returned shard %d", i, sh.idx)
				}
				if admitted && !c.peek(k) {
					t.Errorf("shard %d not resident while this worker pins it", i)
				}
				release()
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(stop)
	samplerWG.Wait()
	checkInvariants(t, c)
	if s := c.Stats(); s.Pinned != 0 {
		t.Fatalf("workers done but %d shards still pinned", s.Pinned)
	}
}

// buildHostOver writes g into a fresh store and opens a Host over it
// with the given shared-cache budget.
func buildHostOver(t *testing.T, g *graph.Graph, p int, budget int64, opts Options) *Host {
	t.Helper()
	h, err := BuildHost(t.TempDir(), g, p, NewSharedCache(budget), opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSharedSessionsTwoQueryHammer runs PageRank and an iterative
// connected-components traversal concurrently, repeatedly, over two
// sessions of one host with a byte budget far below the store — so
// eviction, refused inserts and single-flight sharing all fire under
// contention — and requires both queries' results to stay bit-identical
// to private solo engines. CI runs this under -race -count=2.
func TestSharedSessionsTwoQueryHammer(t *testing.T) {
	g := gen.TinySocial()
	const shards = 12
	// Budget two average shards: heavy eviction traffic.
	var budget int64 = 2 * (int64(g.NumEdges())/shards*8 + 16)
	h := buildHostOver(t, g, shards, budget, Options{Threads: 4})

	solo, err := Build(t.TempDir(), g, shards, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRanks := prOnSystem(solo, 5)
	wantLabels := ccOnSystem(solo)

	for round := 0; round < 2; round++ {
		pr := h.NewSession()
		cc := h.NewSession()
		var wg sync.WaitGroup
		var gotRanks []float64
		var gotLabels []int32
		wg.Add(2)
		go func() { defer wg.Done(); gotRanks = prOnSystem(pr, 5) }()
		go func() { defer wg.Done(); gotLabels = ccOnSystem(cc) }()
		wg.Wait()
		for v := range wantRanks {
			if math.Float64bits(gotRanks[v]) != math.Float64bits(wantRanks[v]) {
				t.Fatalf("round %d: rank[%d] = %v, want %v (not bit-identical)", round, v, gotRanks[v], wantRanks[v])
			}
		}
		for v := range wantLabels {
			if gotLabels[v] != wantLabels[v] {
				t.Fatalf("round %d: label[%d] = %d, want %d", round, v, gotLabels[v], wantLabels[v])
			}
		}
		checkInvariants(t, h.Cache())
		if s := h.Cache().Stats(); s.Pinned != 0 {
			t.Fatalf("round %d: queries done but %d shards still pinned", round, s.Pinned)
		}
	}
}

// ccOnSystem is a label-propagation connected components (the min-label
// fixpoint the algorithms package uses), here engine-local so shard
// tests need no import cycle.
func ccOnSystem(sys api.System) []int32 {
	g := sys.Graph()
	n := g.NumVertices()
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	f := frontier.All(g)
	for rounds := 0; f.Count() > 0 && rounds < n; rounds++ {
		f = sys.EdgeMap(f, api.EdgeOp{
			Update: func(u, v graph.VID) bool {
				if labels[u] < labels[v] {
					labels[v] = labels[u]
					return true
				}
				return false
			},
			UpdateAtomic: func(u, v graph.VID) bool {
				if labels[u] < labels[v] {
					labels[v] = labels[u]
					return true
				}
				return false
			},
		}, api.DirAuto)
	}
	return labels
}

// TestCoSchedulingFewerLoadsThanSoloSum is the accounting regression
// the tentpole claims: concurrent dense PageRank + connected components
// on one store must total strictly fewer performed shard loads than the
// sum of the two queries run in isolation. The budget holds the whole
// store, which makes the bound deterministic rather than a race: in the
// shared run each shard is loaded at most once ever (residency plus
// single-flight cover every later fetch, whatever the interleaving),
// while the isolated runs each pay for their own full pass.
func TestCoSchedulingFewerLoadsThanSoloSum(t *testing.T) {
	g := gen.TinySocial()
	const shards = 12
	const budget = 64 << 20

	soloLoads := int64(0)
	for _, run := range []func(api.System){
		func(s api.System) { prOnSystem(s, 5) },
		func(s api.System) { ccOnSystem(s) },
	} {
		h := buildHostOver(t, g, shards, budget, Options{Threads: 4})
		sess := h.NewSession()
		run(sess)
		soloLoads += sess.Stats().ShardLoads
	}

	h := buildHostOver(t, g, shards, budget, Options{Threads: 4})
	pr := h.NewSession()
	cc := h.NewSession()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); prOnSystem(pr, 5) }()
	go func() { defer wg.Done(); ccOnSystem(cc) }()
	wg.Wait()

	concurrent := h.Cache().Stats().Loads
	if pr.Stats().ShardLoads+cc.Stats().ShardLoads != concurrent {
		t.Fatalf("session loads %d+%d do not sum to the cache's %d performed loads",
			pr.Stats().ShardLoads, cc.Stats().ShardLoads, concurrent)
	}
	if concurrent >= soloLoads {
		t.Fatalf("co-scheduled PR+CC performed %d loads, want strictly fewer than the isolated sum %d",
			concurrent, soloLoads)
	}
	if concurrent > int64(shards) {
		t.Fatalf("whole-store budget but %d loads for %d shards: a shard was read twice", concurrent, shards)
	}
}

// TestSharedSessionPanicTeardown is the battery's fault rung: one
// session's operator panics mid-sweep while a second session keeps
// running PageRank on the same store. The panic must surface on the
// panicking session only; the survivor's ranks stay bit-identical; no
// pipeline goroutine outlives the queries; and the shared LRU is
// restored — zero pinned shards, bytes within budget, and the store
// still serviceable (the panicking session runs a clean query after).
func TestSharedSessionPanicTeardown(t *testing.T) {
	baseline := settledGoroutines()

	g := gen.TinySocial()
	h := buildHostOver(t, g, 12, 64<<20, Options{Threads: 4})
	solo, err := Build(t.TempDir(), g, 12, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := prOnSystem(solo, 5)

	boom := h.NewSession()
	survivor := h.NewSession()

	var wg sync.WaitGroup
	var got []float64
	panicked := make(chan any, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() { panicked <- recover() }()
		boom.EdgeMap(frontier.All(g), api.EdgeOp{
			Update:       func(u, v graph.VID) bool { panic("operator boom") },
			UpdateAtomic: func(u, v graph.VID) bool { panic("operator boom") },
		}, api.DirAuto)
	}()
	go func() { defer wg.Done(); got = prOnSystem(survivor, 5) }()
	wg.Wait()

	if r := <-panicked; r == nil {
		t.Fatal("operator panic did not propagate out of the panicking session")
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("survivor rank[%d] = %v, want %v after peer panic", v, got[v], want[v])
		}
	}

	// LRU restored: nothing pinned, budget honoured, store serviceable
	// — including by the session that panicked.
	checkInvariants(t, h.Cache())
	if s := h.Cache().Stats(); s.Pinned != 0 {
		t.Fatalf("peer panic leaked %d pinned shards", s.Pinned)
	}
	reRanks := prOnSystem(boom, 5)
	for v := range want {
		if math.Float64bits(reRanks[v]) != math.Float64bits(want[v]) {
			t.Fatalf("panicked session not reusable: rank[%d] = %v, want %v", v, reRanks[v], want[v])
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for settledGoroutines() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := settledGoroutines(); now > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines grew from %d to %d after shared-session teardown:\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}
}
