package shard

// The sweep-order planner. planSparse/planDense decide *which* shards a
// sweep must visit; this file decides *in what order* — the lever PCPM
// (Lakhotia et al.) and the locality-reordering literature show recovers
// a large fraction of the partitioning win without touching the on-disk
// format. The default ascending order is pathological for iterative
// dense algorithms: a cyclic reference pattern over P shards against an
// LRU of C < P shards hits never — the tail the cache kept alive at the
// end of sweep i is evicted exactly before sweep i+1 reaches it.
// Reordering the plan is free to do and free to prove: shards own
// disjoint 64-aligned destination ranges and operators write destination
// state only, so any permutation of the plan is bit-identical (the same
// argument that makes the cross-domain concurrent apply safe), and the
// planner runs strictly before startSweep, so the k-deep window and the
// per-domain apply discipline see an ordered plan exactly as they would
// an ascending one.

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/hilbert"
)

// Order selects the sweep-order policy: how the planner permutes a
// sweep's shard plan before the staging goroutine walks it.
type Order int

const (
	// OrderAscending streams the plan in ascending shard index — the
	// historical behaviour and the differential baseline every other
	// policy must match bit for bit.
	OrderAscending Order = iota
	// OrderZigzag alternates sweep direction across consecutive EdgeMaps
	// (boustrophedon): sweep i+1 starts on the shards sweep i finished
	// with — precisely the ones the LRU still holds — so an iterative
	// dense algorithm gets CacheShards hits per sweep where ascending
	// order gets none.
	OrderZigzag
	// OrderResidencyFirst schedules the plan greedily for the cache as it
	// stands: shards currently resident in the LRU run first (all hits,
	// and hits never evict), then the remainder in Hilbert order over
	// (shard index, source-range centroid), so consecutive uncached
	// shards read from nearby source ranges.
	OrderResidencyFirst
)

func (o Order) valid() bool { return o >= OrderAscending && o <= OrderResidencyFirst }

func (o Order) String() string {
	switch o {
	case OrderAscending:
		return "ascending"
	case OrderZigzag:
		return "zigzag"
	case OrderResidencyFirst:
		return "residency-first"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Orders lists every sweep-order policy, ascending baseline first — the
// iteration order ablations and CLIs use.
func Orders() []Order { return []Order{OrderAscending, OrderZigzag, OrderResidencyFirst} }

// ParseOrder resolves the CLI spelling of a sweep-order policy.
func ParseOrder(s string) (Order, error) {
	for _, o := range Orders() {
		if s == o.String() {
			return o, nil
		}
	}
	return 0, fmt.Errorf("shard: unknown sweep order %q (have ascending, zigzag, residency-first)", s)
}

// plannedStats is one ordered sweep's pending planner accounting,
// committed only after the sweep completes (see commitPlan).
type plannedStats struct {
	hits, baseHits int64
	shadowAfter    []int
}

// orderPlan permutes a sweep's baseline plan (always ascending, as
// planSparse/planDense emit it) according to Options.Order, and stages
// the planner stats: PlannedCacheHits is the exact number of LRU hits
// the ordered plan will collect from the cache as it stands right now
// (the planner and the sweep see the same deterministic LRU, so the
// prediction is exact, not a heuristic), and ReloadsAvoided is the net
// number of loads the chosen order saves against the whole-run
// ascending baseline. Applies to sparse and dense plans alike. The
// stats are only *staged* here — commitPlan publishes them after the
// sweep completes, so a sweep aborted mid-plan (operator panic, load
// failure) charges nothing and does not advance the baseline shadow
// past fetches that never happened.
func (e *Engine) orderPlan(plan []int) []int {
	sweep := e.sweepSeq
	e.sweepSeq++
	e.pending = nil // drop any accounting an aborted sweep left staged
	if len(plan) == 0 {
		return plan
	}
	resident := e.cache.snapshot()
	ordered := plan
	switch e.opts.Order {
	case OrderZigzag:
		if sweep%2 == 1 {
			ordered = make([]int, len(plan))
			for i, si := range plan {
				ordered[len(plan)-1-i] = si
			}
		}
	case OrderResidencyFirst:
		ordered = e.residencyFirst(plan, resident)
	}
	hits := simulateLRU(ordered, resident, e.opts.CacheShards)
	// The shadow cache replays the baseline plan from the state a pure
	// ascending run would be in by now, so the accumulated delta is the
	// whole-run saving, not a per-sweep counterfactual: reordering one
	// sweep also changes which shards the *next* sweep finds resident.
	// Replay a clone; the persistent shadow advances only on commit.
	base := e.shadow.clone()
	baseHits := base.replay(plan)
	e.pending = &plannedStats{hits: int64(hits), baseHits: int64(baseHits), shadowAfter: base.mru}
	return ordered
}

// commitPlan publishes the accounting orderPlan staged, once the sweep
// it described has completed. Like the rest of the planner state it is
// called only from EdgeMap on the sweep goroutine.
func (e *Engine) commitPlan() {
	p := e.pending
	if p == nil {
		return
	}
	e.pending = nil
	atomic.AddInt64(&e.stats.PlannedCacheHits, p.hits)
	atomic.AddInt64(&e.stats.ReloadsAvoided, p.hits-p.baseHits)
	e.shadow.mru = p.shadowAfter
}

// residencyFirst splits the plan into the shards the LRU currently holds
// (kept in ascending order; they are all hits and hits never evict, so
// their relative order cannot cost a load) followed by the uncached
// remainder sorted by the engine's precomputed Hilbert key.
func (e *Engine) residencyFirst(plan []int, resident []int) []int {
	res := make(map[int]bool, len(resident))
	for _, si := range resident {
		res[si] = true
	}
	ordered := make([]int, 0, len(plan))
	rest := make([]int, 0, len(plan))
	for _, si := range plan {
		if res[si] {
			ordered = append(ordered, si)
		} else {
			rest = append(rest, si)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if e.hilbertKey[rest[a]] != e.hilbertKey[rest[b]] {
			return e.hilbertKey[rest[a]] < e.hilbertKey[rest[b]]
		}
		return rest[a] < rest[b]
	})
	return append(ordered, rest...)
}

// hilbertKeys precomputes each shard's position on the Hilbert curve
// over (shard index, source-range centroid): y is the mean index of the
// destination ranges the shard's edge sources fall in (from the store's
// source summary), so shards adjacent on the curve read from nearby
// source ranges and their current-array accesses overlap.
func hilbertKeys(feeds [][]uint64, p int) []uint64 {
	ord := hilbert.OrderFor(p)
	keys := make([]uint64, p)
	for i, words := range feeds {
		var sum, n int
		for w, word := range words {
			for word != 0 {
				sum += w*64 + bits.TrailingZeros64(word)
				n++
				word &= word - 1
			}
		}
		centroid := 0
		if n > 0 {
			centroid = sum / n
		}
		keys[i] = hilbert.XY2D(ord, uint32(i), uint32(centroid))
	}
	return keys
}

// shadowLRU is an index-only model of the shard cache's exact policy —
// hit promotes to the front, miss inserts at the front and evicts the
// back. The planner uses it two ways: seeded from the live cache's
// snapshot to predict the sweep it just ordered (during a sweep only the
// plan's fetches touch the cache, in plan order, so the prediction is
// exact), and as the engine's persistent shadow of the cache a
// whole-run ascending baseline would have, which ReloadsAvoided is
// measured against.
type shadowLRU struct {
	cap int
	mru []int
}

func newShadowLRU(capacity int) *shadowLRU {
	if capacity < 1 {
		capacity = 1 // mirror newLRUCache's floor
	}
	return &shadowLRU{cap: capacity}
}

// seed resets the model to the given resident set, most recently used
// first.
func (s *shadowLRU) seed(resident []int) {
	s.mru = s.mru[:0]
	for _, si := range resident {
		if len(s.mru) < s.cap {
			s.mru = append(s.mru, si)
		}
	}
}

// clone returns an independent copy of the model.
func (s *shadowLRU) clone() *shadowLRU {
	return &shadowLRU{cap: s.cap, mru: append([]int(nil), s.mru...)}
}

// replay runs plan through the model, mutating it, and returns the hit
// count.
func (s *shadowLRU) replay(plan []int) int {
	hits := 0
	for _, si := range plan {
		pos := -1
		for i, r := range s.mru {
			if r == si {
				pos = i
				break
			}
		}
		if pos >= 0 {
			hits++
			copy(s.mru[1:pos+1], s.mru[:pos])
			s.mru[0] = si
			continue
		}
		if len(s.mru) < s.cap {
			s.mru = append(s.mru, 0)
		}
		copy(s.mru[1:], s.mru)
		s.mru[0] = si
	}
	return hits
}

// simulateLRU predicts the hits one planned sweep will collect from a
// cache currently holding resident (MRU first).
func simulateLRU(plan []int, resident []int, capacity int) int {
	sim := newShadowLRU(capacity)
	sim.seed(resident)
	return sim.replay(plan)
}
